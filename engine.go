package setconsensus

import (
	"context"
	"fmt"
	"sync"

	"setconsensus/internal/knowledge"
	"setconsensus/internal/model"
)

// Engine is the context-aware entry point to every execution backend. It
// resolves protocols by name through a Registry, runs them on the
// configured Backend, shares and caches knowledge graphs, and batches
// whole protocol × adversary sweeps over a worker pool.
//
//	eng := setconsensus.New(setconsensus.WithDegree(2), setconsensus.WithCrashBound(3))
//	res, err := eng.Run(ctx, "optmin", adv)
//	results, err := eng.Sweep(ctx, []string{"optmin", "upmin", "floodmin"}, advs)
//
// Workloads too large to materialize stream through Engine.SweepSource,
// which shards a Source across the same worker pool and folds results
// into a constant-memory Summary.
type Engine struct {
	params  EngineParams
	reg     *Registry
	backend Backend
	err     error // construction error, surfaced by every call

	mu         sync.Mutex
	graphs     map[graphKey]*knowledge.Graph
	graphOrder []graphKey // FIFO eviction
	fps        map[*model.Adversary]string
	fpOrder    []*model.Adversary // FIFO eviction, same bound as graphs
}

// graphKey identifies a cached knowledge graph by the adversary's
// canonical fingerprint — not its pointer — so structurally equal
// adversaries built by different calls share one cached graph.
type graphKey struct {
	fingerprint string
	horizon     int
}

// New builds an Engine from the defaults plus the given options. Invalid
// configurations are not lost: every Run/Sweep on a misconfigured engine
// returns the validation error.
func New(opts ...Option) *Engine {
	cfg := engineConfig{params: DefaultEngineParams(), reg: DefaultRegistry()}
	for _, o := range opts {
		o(&cfg)
	}
	e := &Engine{
		params: cfg.params,
		reg:    cfg.reg,
		graphs: make(map[graphKey]*knowledge.Graph),
		fps:    make(map[*model.Adversary]string),
	}
	if cfg.reg == nil {
		e.err = fmt.Errorf("engine: nil registry")
		return e
	}
	if err := cfg.params.Validate(); err != nil {
		e.err = err
		return e
	}
	e.backend, e.err = backendFor(cfg.params.Backend)
	return e
}

// Params returns the engine's validated configuration.
func (e *Engine) Params() EngineParams { return e.params }

// Registry returns the registry the engine resolves protocol names in.
func (e *Engine) Registry() *Registry { return e.reg }

// runParams completes the per-run protocol parameters: n comes from the
// adversary, t and k from the engine configuration (t = n−1 when unset,
// the adversary's own failure count under PatternCrashBound).
func (e *Engine) runParams(adv *model.Adversary) (Params, error) {
	if adv == nil {
		return Params{}, fmt.Errorf("engine: nil adversary")
	}
	t := e.params.T
	switch {
	case t == PatternCrashBound:
		t = adv.Pattern.NumFailures()
	case t < 0:
		t = adv.N() - 1
	}
	p := Params{N: adv.N(), T: t, K: e.params.K}
	if err := p.Validate(); err != nil {
		return Params{}, err
	}
	return p, nil
}

// horizonFor picks the simulation horizon for a set of protocols on one
// parameterization: the engine override if set, otherwise the largest
// registered worst-case decision time.
func (e *Engine) horizonFor(specs []*ProtocolSpec, p Params) int {
	if e.params.Horizon > 0 {
		return e.params.Horizon
	}
	h := 0
	for _, s := range specs {
		if wc := s.WorstCaseTime(p); wc > h {
			h = wc
		}
	}
	return h
}

// fingerprintFor memoizes Adversary.Fingerprint by pointer identity:
// canonicalizing the failure pattern is ~10% of a cached sweep, and
// repeated Run/Sweep calls overwhelmingly reuse the same adversary
// value. Streamed sources yield fresh pointers and never hit, but their
// miss cost (one map insert + eviction under a lock held for
// nanoseconds) is noise next to the fingerprint computation itself,
// which a miss pays either way. Bounded FIFO like the graph cache.
func (e *Engine) fingerprintFor(adv *model.Adversary) string {
	e.mu.Lock()
	if fp, ok := e.fps[adv]; ok {
		e.mu.Unlock()
		return fp
	}
	e.mu.Unlock()
	fp := adv.Fingerprint()
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.fps[adv]; !ok {
		for len(e.fpOrder) >= e.params.GraphCache {
			oldest := e.fpOrder[0]
			e.fpOrder = e.fpOrder[1:]
			delete(e.fps, oldest)
		}
		e.fps[adv] = fp
		e.fpOrder = append(e.fpOrder, adv)
	}
	return fp
}

// graphFor returns the knowledge graph of adv at horizon, from the cache
// when possible. Graphs are immutable after construction, so sharing is
// safe across goroutines.
func (e *Engine) graphFor(adv *model.Adversary, horizon int) *knowledge.Graph {
	if e.params.GraphCache == 0 {
		return knowledge.New(adv, horizon)
	}
	key := graphKey{e.fingerprintFor(adv), horizon}
	e.mu.Lock()
	if g, ok := e.graphs[key]; ok {
		e.mu.Unlock()
		return g
	}
	e.mu.Unlock()
	g := knowledge.New(adv, horizon)
	e.mu.Lock()
	defer e.mu.Unlock()
	if cached, ok := e.graphs[key]; ok {
		return cached // another goroutine won the race; keep one copy
	}
	for len(e.graphOrder) >= e.params.GraphCache {
		oldest := e.graphOrder[0]
		e.graphOrder = e.graphOrder[1:]
		delete(e.graphs, oldest)
	}
	e.graphs[key] = g
	e.graphOrder = append(e.graphOrder, key)
	return g
}

// CachedGraphs reports how many knowledge graphs the engine currently
// holds.
func (e *Engine) CachedGraphs() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.graphs)
}

// Run resolves ref in the registry and executes it against adv on the
// configured backend.
func (e *Engine) Run(ctx context.Context, ref string, adv *Adversary) (*Result, error) {
	if e.err != nil {
		return nil, e.err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	spec, err := e.reg.Lookup(ref)
	if err != nil {
		return nil, err
	}
	p, err := e.runParams(adv)
	if err != nil {
		return nil, err
	}
	var g *knowledge.Graph
	if e.backend.NeedsGraph() {
		g = e.graphFor(adv, e.horizonFor([]*ProtocolSpec{spec}, p))
	}
	return e.backend.Run(ctx, ref, spec, p, adv, g)
}

// Sweep runs every named protocol against every adversary and returns
// the results in deterministic order: adversary-major, protocol-minor
// (results[a*len(refs)+p]). Adversaries are distributed over a worker
// pool of the configured parallelism; within one adversary all protocols
// share a single knowledge graph. The first error (including context
// cancellation) aborts the sweep.
//
// Empty input handling is asymmetric by design: refs name the experiment
// and must be non-empty (an error), while advs is the workload and may
// legitimately be empty — the sweep returns an empty, non-nil slice and
// no error.
func (e *Engine) Sweep(ctx context.Context, refs []string, advs []*Adversary) ([]*Result, error) {
	results := make([]*Result, len(refs)*len(advs))
	err := e.sweep(ctx, refs, SliceSource(advs...), func(advIdx, refIdx int, r *Result) {
		results[advIdx*len(refs)+refIdx] = r
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// SweepStream is Sweep with streaming delivery: emit is called once per
// finished run, in completion order, from a single goroutine at a time.
// Cancelling ctx aborts the stream promptly and returns ctx.Err().
func (e *Engine) SweepStream(ctx context.Context, refs []string, advs []*Adversary, emit func(*Result)) error {
	return e.SweepSourceStream(ctx, refs, SliceSource(advs...), emit)
}

// SweepSource streams every adversary of src through every named
// protocol and folds the results online into a Summary. The source is
// sharded across the worker pool in deterministic chunks and never
// materialized: memory is bounded by the Summary, the in-flight chunks,
// and whatever the source itself retains (an exhaustive SpaceSource
// keeps its canonical-pattern dedup set) — never by the number of
// results. Per adversary, all protocols share one knowledge graph, as
// in Sweep.
func (e *Engine) SweepSource(ctx context.Context, refs []string, src Source) (*Summary, error) {
	if e.err != nil {
		return nil, e.err
	}
	if src == nil {
		return nil, fmt.Errorf("engine: nil source")
	}
	agg, err := e.NewAggregator(src.Label(), refs)
	if err != nil {
		return nil, err
	}
	if err := e.sweep(ctx, refs, src, func(_, _ int, r *Result) { agg.Add(r) }); err != nil {
		return nil, err
	}
	return agg.Summary(), nil
}

// SweepSourceStream is SweepSource with per-result delivery instead of
// aggregation: emit is called once per finished run, in completion
// order, from a single goroutine at a time.
func (e *Engine) SweepSourceStream(ctx context.Context, refs []string, src Source, emit func(*Result)) error {
	if src == nil {
		return fmt.Errorf("engine: nil source")
	}
	var mu sync.Mutex
	return e.sweep(ctx, refs, src, func(_, _ int, r *Result) {
		mu.Lock()
		defer mu.Unlock()
		emit(r)
	})
}

// sourceChunk bounds how many adversaries a worker claims at once from a
// streamed source. Chunking amortizes channel handoffs on huge spaces
// without starving workers on small ones.
const sourceChunk = 32

// chunkSizeFor picks the shard size: small known workloads go one
// adversary at a time (maximum parallelism), large or unknown ones in
// fixed chunks.
func chunkSizeFor(count int, known bool, workers int) int {
	if !known {
		return sourceChunk
	}
	c := count / (workers * 4)
	if c < 1 {
		return 1
	}
	if c > sourceChunk {
		return sourceChunk
	}
	return c
}

// sweepChunk is one work unit: a run of consecutive adversaries and the
// global index of the first.
type sweepChunk struct {
	base int
	advs []*Adversary
}

// sweep is the shared executor behind Sweep, SweepStream, and the source
// variants: a feeder goroutine cuts the source into deterministic chunks,
// a worker pool runs sweepOne per adversary, deliver receives every
// result tagged with its global adversary and protocol indices.
func (e *Engine) sweep(ctx context.Context, refs []string, src Source, deliver func(advIdx, refIdx int, r *Result)) error {
	if e.err != nil {
		return e.err
	}
	if len(refs) == 0 {
		return fmt.Errorf("engine: sweep with no protocols")
	}
	specs := make([]*ProtocolSpec, len(refs))
	for i, ref := range refs {
		spec, err := e.reg.Lookup(ref)
		if err != nil {
			return err
		}
		specs[i] = spec
	}
	count, known := src.Count()
	if known && count <= 0 {
		return ctx.Err()
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := e.params.Parallelism
	if known && workers > count {
		workers = count
	}
	chunkSize := chunkSizeFor(count, known, workers)

	jobs := make(chan sweepChunk)
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		cancel()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for chunk := range jobs {
				for i, adv := range chunk.advs {
					if err := e.sweepOne(ctx, refs, specs, adv, chunk.base+i, deliver); err != nil {
						fail(err)
						return
					}
				}
			}
		}()
	}

	// The feeder pulls from the source iterator and hands out chunks; it
	// runs aside the workers so unbounded sources never buffer more than
	// one chunk ahead.
	go func() {
		defer close(jobs)
		next := 0
		chunk := sweepChunk{base: 0, advs: make([]*Adversary, 0, chunkSize)}
		flush := func() bool {
			if len(chunk.advs) == 0 {
				return true
			}
			select {
			case jobs <- chunk:
				chunk = sweepChunk{base: next, advs: make([]*Adversary, 0, chunkSize)}
				return true
			case <-ctx.Done():
				return false
			}
		}
		for adv := range src.Seq() {
			chunk.advs = append(chunk.advs, adv)
			next++
			if len(chunk.advs) == chunkSize {
				if !flush() {
					return
				}
			}
		}
		flush()
	}()

	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// sweepOne runs all protocols of a sweep against one adversary, sharing
// one knowledge graph across them on graph-consuming backends.
func (e *Engine) sweepOne(ctx context.Context, refs []string, specs []*ProtocolSpec, adv *Adversary, advIdx int, deliver func(advIdx, refIdx int, r *Result)) error {
	p, err := e.runParams(adv)
	if err != nil {
		return err
	}
	var g *knowledge.Graph
	if e.backend.NeedsGraph() {
		g = e.graphFor(adv, e.horizonFor(specs, p))
	}
	for refIdx, spec := range specs {
		if err := ctx.Err(); err != nil {
			return err
		}
		res, err := e.backend.Run(ctx, refs[refIdx], spec, p, adv, g)
		if err != nil {
			return err
		}
		deliver(advIdx, refIdx, res)
	}
	return nil
}
