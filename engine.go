package setconsensus

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"setconsensus/internal/agg"
	"setconsensus/internal/govern"
	"setconsensus/internal/knowledge"
	"setconsensus/internal/model"
)

// Engine is the context-aware entry point to every execution backend. It
// resolves protocols by name through a Registry, runs them on the
// configured Backend, shares and caches knowledge graphs, and batches
// whole protocol × adversary sweeps over a worker pool.
//
//	eng := setconsensus.New(setconsensus.WithDegree(2), setconsensus.WithCrashBound(3))
//	res, err := eng.Run(ctx, "optmin", adv)
//	results, err := eng.Sweep(ctx, []string{"optmin", "upmin", "floodmin"}, advs)
//
// Workloads too large to materialize stream through Engine.SweepSource,
// which shards a Source across the same worker pool and folds results
// into a constant-memory Summary.
//
// # Recycle contract
//
// The aggregating path (SweepSource) is allocation-free per run, which
// rests on three reuse rules:
//
//   - RunBuffer: the Result a Backend.RunInto call returns aliases the
//     buffer — the engine folds it into the per-worker accumulators and
//     never lets it escape. Anything that retains Results (Run, Sweep,
//     the stream variants) goes through Backend.Run instead.
//   - Knowledge graphs: with the graph cache disabled, each aggregating
//     worker rebuilds graphs in one reused Builder arena and releases
//     them as soon as the adversary's runs are folded; consecutive
//     adversaries sharing a failure pattern revive the previous arena
//     and recompute only the value layer. Cached graphs are shared and
//     retained, so recycling never applies to them.
//   - Summary shards: each worker folds into private agg.Acc
//     accumulators and merges them into the Aggregator exactly once,
//     when its shard is drained (Summary.Merge is the public form of
//     the same contract). Nothing a worker retains outlives the merge.
type Engine struct {
	params   EngineParams
	reg      *Registry
	analyses *AnalysisRegistry
	backend  Backend
	err      error // construction error, surfaced by every call

	// gov, when set, meters the byte capacity of everything the engine
	// recycles (builder arenas, run-kit slabs, sweep chunks) and gates
	// retention: while the governor sheds, release paths free buffers to
	// the GC instead of pooling them. nil means ungoverned.
	gov ResourceGovernor

	// kitMu/kitFree recycle the per-worker aggregation state (RunBuffer,
	// knowledge Builder) across SweepSource calls, so repeated sweeps on
	// one engine pay no per-sweep warm-up allocations. An explicit
	// bounded freelist instead of a sync.Pool: the governor's account
	// must see every buffer enter and leave, and sync.Pool's GC shedding
	// would strand accounted bytes it silently dropped.
	kitMu   sync.Mutex
	kitFree []*runKit

	// chunkMu/chunkFree recycle the feeder's sweepChunk arrays, bounded
	// the same way; chunkBytes is the engine's receipt of every chunk
	// byte currently accounted to the governor (pooled or in flight), so
	// Close can return the remainder even for chunks a panic dropped.
	chunkMu    sync.Mutex
	chunkFree  []*sweepChunk
	chunkBytes atomic.Int64

	// statBuilt/statRevived/statPatched accumulate the builder counts
	// harvested when a worker returns its kit — the engine-wide "graphs
	// rebuilt vs revived vs delta-patched" observability counters behind
	// Stats. They only move on the recycling path (graph cache disabled,
	// or an analysis compile); cached graphs are counted by CachedGraphs
	// instead.
	statBuilt   atomic.Int64
	statRevived atomic.Int64
	statPatched atomic.Int64

	// Pool hit-rate counters: a hit is a checkout served from the
	// freelist, a miss a fresh allocation. statKit* meters the
	// per-worker runKit pool (RunBuffer + builder arena — the expensive
	// warm-up state), statChunk* the feeder's sweepChunk pool. While the
	// governor sheds, release paths drop buffers instead of repooling
	// them, so a falling hit rate is the observable symptom of sweeps
	// running over the soft memory ceiling.
	statKitHit    atomic.Int64
	statKitMiss   atomic.Int64
	statChunkHit  atomic.Int64
	statChunkMiss atomic.Int64

	mu         sync.Mutex
	graphs     map[graphKey]*knowledge.Graph
	graphOrder []graphKey // FIFO eviction
	fps        map[*model.Adversary]string
	fpOrder    []*model.Adversary // FIFO eviction, same bound as graphs
	protos     map[protoKey]protoEntry
	protoOrder []protoKey // FIFO eviction, bounded by protoCacheBound
}

// protoKey identifies a constructed protocol instance: same registry ref,
// same parameters, same (stateless) decision rule.
type protoKey struct {
	ref string
	p   Params
}

// protoEntry caches the outcome of ProtocolSpec.New for one key: the
// shared instance and its runtime name, or the construction error. The
// oracle backend consumes proto/err, the compact backends only the name.
type protoEntry struct {
	proto Protocol
	name  string
	err   error
}

// protoCacheBound bounds the protocol-instance cache. Keys vary only in
// (ref, n, t, k), so workloads hit a handful of entries; the bound just
// keeps pathological parameter sweeps from growing the map forever.
const protoCacheBound = 512

// insertBounded adds key→val to a FIFO-bounded cache, evicting oldest
// entries until the bound holds. It is the single home of the eviction
// invariant for all three engine caches (graphs, fingerprints,
// protocols): bound ≤ 0 disables insertion outright rather than evicting
// forever, and an existing key is left in place. Eviction copies the
// order slice down and zeroes the vacated tail slot — re-slicing the
// front off (order = order[1:]) would keep every evicted key reachable
// through the backing array, pinning adversaries and graph keys for the
// life of the engine. Callers hold e.mu.
func insertBounded[K comparable, V any](m map[K]V, order *[]K, key K, val V, bound int) {
	if bound <= 0 {
		return
	}
	if _, ok := m[key]; ok {
		return
	}
	for len(*order) >= bound {
		delete(m, (*order)[0])
		n := copy(*order, (*order)[1:])
		var zero K
		(*order)[n] = zero
		*order = (*order)[:n]
	}
	m[key] = val
	*order = append(*order, key)
}

// graphKey identifies a cached knowledge graph by the adversary's
// canonical fingerprint — not its pointer — so structurally equal
// adversaries built by different calls share one cached graph.
type graphKey struct {
	fingerprint string
	horizon     int
}

// New builds an Engine from the defaults plus the given options. Invalid
// configurations are not lost: every Run/Sweep on a misconfigured engine
// returns the validation error.
func New(opts ...Option) *Engine {
	cfg := engineConfig{params: DefaultEngineParams(), reg: DefaultRegistry(), analyses: DefaultAnalyses()}
	for _, o := range opts {
		o(&cfg)
	}
	return newEngine(cfg)
}

// NewEngine is the params-first constructor: it builds an Engine from a
// fully specified EngineParams and surfaces out-of-range values as an
// error immediately, instead of deferring them to the first Run/Sweep
// the way New's option form does. Long-running callers (the job service,
// anything that validates configuration at startup) should prefer it;
// the functional Options remain thin wrappers over the same struct.
// Additional options (registry overrides, field tweaks) apply on top of
// p before validation.
func NewEngine(p EngineParams, opts ...Option) (*Engine, error) {
	cfg := engineConfig{params: p, reg: DefaultRegistry(), analyses: DefaultAnalyses()}
	for _, o := range opts {
		o(&cfg)
	}
	e := newEngine(cfg)
	if e.err != nil {
		return nil, e.err
	}
	return e, nil
}

// newEngine is the shared construction path behind New and NewEngine.
func newEngine(cfg engineConfig) *Engine {
	e := &Engine{
		params:   cfg.params,
		reg:      cfg.reg,
		analyses: cfg.analyses,
		gov:      cfg.gov,
		graphs:   make(map[graphKey]*knowledge.Graph),
		fps:      make(map[*model.Adversary]string),
		protos:   make(map[protoKey]protoEntry),
	}
	if cfg.reg == nil {
		e.err = fmt.Errorf("engine: nil registry")
		return e
	}
	if cfg.analyses == nil {
		e.err = fmt.Errorf("engine: nil analysis registry")
		return e
	}
	if err := cfg.params.Validate(); err != nil {
		e.err = err
		return e
	}
	e.backend, e.err = backendFor(cfg.params.Backend)
	return e
}

// Params returns the engine's validated configuration.
func (e *Engine) Params() EngineParams { return e.params }

// Registry returns the registry the engine resolves protocol names in.
func (e *Engine) Registry() *Registry { return e.reg }

// runParams completes the per-run protocol parameters: n comes from the
// adversary, t and k from the engine configuration (t = n−1 when unset,
// the adversary's own failure count under PatternCrashBound).
func (e *Engine) runParams(adv *model.Adversary) (Params, error) {
	if adv == nil {
		return Params{}, fmt.Errorf("engine: nil adversary")
	}
	t := e.params.T
	switch {
	case t == PatternCrashBound:
		t = adv.Pattern.NumFailures()
	case t < 0:
		t = adv.N() - 1
	}
	p := Params{N: adv.N(), T: t, K: e.params.K}
	if err := p.Validate(); err != nil {
		return Params{}, err
	}
	return p, nil
}

// horizonFor picks the simulation horizon for a set of protocols on one
// parameterization: the engine override if set, otherwise the largest
// registered worst-case decision time.
func (e *Engine) horizonFor(specs []*ProtocolSpec, p Params) int {
	if e.params.Horizon > 0 {
		return e.params.Horizon
	}
	h := 0
	for _, s := range specs {
		if wc := s.WorstCaseTime(p); wc > h {
			h = wc
		}
	}
	return h
}

// advString returns a lazily-memoized renderer of adv.String, shared by
// every run of one adversary in a sweep: the string is built at most
// once per adversary, and only when a Result that carries it is
// actually materialized.
func advString(adv *Adversary) func() string {
	var s string
	return func() string {
		if s == "" {
			s = adv.String()
		}
		return s
	}
}

// fingerprintFor memoizes Adversary.Fingerprint by pointer identity:
// even with the compact binary encoding (varints + delivery-mask words,
// hashed once by the cache map instead of the old fmt-rendered string),
// deriving the key walks the whole failure pattern, and repeated
// Run/Sweep calls overwhelmingly reuse the same adversary value.
// Streamed sources yield fresh pointers and never hit, but their miss
// cost (one map insert + eviction under a lock held for nanoseconds) is
// noise next to the fingerprint computation itself, which a miss pays
// either way. Bounded FIFO like the graph cache.
func (e *Engine) fingerprintFor(adv *model.Adversary) string {
	e.mu.Lock()
	if fp, ok := e.fps[adv]; ok {
		e.mu.Unlock()
		return fp
	}
	e.mu.Unlock()
	fp := adv.Fingerprint()
	e.mu.Lock()
	defer e.mu.Unlock()
	insertBounded(e.fps, &e.fpOrder, adv, fp, e.params.GraphCache)
	return fp
}

// graphFor returns the knowledge graph of adv at horizon, from the cache
// when possible. Graphs are immutable after construction, so sharing is
// safe across goroutines.
func (e *Engine) graphFor(adv *model.Adversary, horizon int) *knowledge.Graph {
	if e.params.GraphCache == 0 {
		return knowledge.New(adv, horizon)
	}
	key := graphKey{e.fingerprintFor(adv), horizon}
	e.mu.Lock()
	if g, ok := e.graphs[key]; ok {
		e.mu.Unlock()
		return g
	}
	e.mu.Unlock()
	g := knowledge.New(adv, horizon)
	e.mu.Lock()
	defer e.mu.Unlock()
	if cached, ok := e.graphs[key]; ok {
		return cached // another goroutine won the race; keep one copy
	}
	insertBounded(e.graphs, &e.graphOrder, key, g, e.params.GraphCache)
	return g
}

// protoFor resolves the shared protocol instance and runtime name for
// (ref, p), constructing and caching on first use. Protocol instances
// are pure decision rules (sim.Protocol's contract), so one instance
// serves every worker concurrently; the cache turns a per-run
// construct-and-format into a map hit.
func (e *Engine) protoFor(ref string, spec *ProtocolSpec, p Params) protoEntry {
	key := protoKey{ref: ref, p: p}
	e.mu.Lock()
	if ent, ok := e.protos[key]; ok {
		e.mu.Unlock()
		return ent
	}
	e.mu.Unlock()
	ent := protoEntry{name: spec.Name}
	if proto, err := spec.New(p); err == nil {
		ent.proto, ent.name = proto, proto.Name()
	} else {
		ent.err = err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if cached, ok := e.protos[key]; ok {
		return cached
	}
	insertBounded(e.protos, &e.protoOrder, key, ent, protoCacheBound)
	return ent
}

// CachedGraphs reports how many knowledge graphs the engine currently
// holds.
func (e *Engine) CachedGraphs() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.graphs)
}

// EngineStats is a point-in-time snapshot of an engine's observability
// counters — the measurement feed behind the job service's expvar
// surface. GraphsRebuilt, GraphsRevived, and GraphsPatched count full
// knowledge-graph builds, same-pattern revives (value layer refilled),
// and delta patches (only the value rows touched by a single changed
// input rewritten) on the arena-recycling path (graph cache disabled,
// and every analysis compile stage); CachedGraphs is the current cache
// population on the caching path.
// The pool hit-rate pairs meter the two freelists behind aggregating
// sweeps: RunKitHits/RunKitMisses count per-worker runKit (RunBuffer +
// builder arena) checkouts served warm from the pool versus freshly
// allocated, and ChunkHits/ChunkMisses the same for the feeder's
// sweepChunk arrays. A steady sweep's hit rate converges to ~1; misses
// growing mid-sweep mean the governor is shedding pooled buffers over
// the soft memory ceiling.
type EngineStats struct {
	GraphsRebuilt int64 `json:"graphsRebuilt"`
	GraphsRevived int64 `json:"graphsRevived"`
	GraphsPatched int64 `json:"graphsPatched"`
	CachedGraphs  int   `json:"cachedGraphs"`
	RunKitHits    int64 `json:"runKitHits"`
	RunKitMisses  int64 `json:"runKitMisses"`
	ChunkHits     int64 `json:"chunkHits"`
	ChunkMisses   int64 `json:"chunkMisses"`
}

// Stats snapshots the engine's counters. Worker-local builder counts
// fold in when a sweep or analysis returns its kit, so a snapshot taken
// mid-sweep may trail the in-flight work by up to one worker shard.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		GraphsRebuilt: e.statBuilt.Load(),
		GraphsRevived: e.statRevived.Load(),
		GraphsPatched: e.statPatched.Load(),
		CachedGraphs:  e.CachedGraphs(),
		RunKitHits:    e.statKitHit.Load(),
		RunKitMisses:  e.statKitMiss.Load(),
		ChunkHits:     e.statChunkHit.Load(),
		ChunkMisses:   e.statChunkMiss.Load(),
	}
}

// Run resolves ref in the registry and executes it against adv on the
// configured backend.
func (e *Engine) Run(ctx context.Context, ref string, adv *Adversary) (*Result, error) {
	if e.err != nil {
		return nil, e.err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	spec, err := e.reg.Lookup(ref)
	if err != nil {
		return nil, err
	}
	p, err := e.runParams(adv)
	if err != nil {
		return nil, err
	}
	var g *knowledge.Graph
	if e.backend.NeedsGraph() {
		g = e.graphFor(adv, e.horizonFor([]*ProtocolSpec{spec}, p))
	}
	ent := e.protoFor(ref, spec, p)
	return e.backend.Run(ctx, newRunRequest(ref, spec, ent, p, adv, advString(adv), g))
}

// newRunRequest is the single place a protoEntry is wired into a
// RunRequest, shared by the single-run and sweep paths.
func newRunRequest(ref string, spec *ProtocolSpec, ent protoEntry, p Params, adv *Adversary, advStr func() string, g *knowledge.Graph) *RunRequest {
	return &RunRequest{
		Ref: ref, Spec: spec,
		Proto: ent.proto, ProtoErr: ent.err, Name: ent.name,
		Params: p, Adv: adv, AdvStr: advStr, Graph: g,
	}
}

// Sweep runs every named protocol against every adversary and returns
// the results in deterministic order: adversary-major, protocol-minor
// (results[a*len(refs)+p]). Adversaries are distributed over a worker
// pool of the configured parallelism; within one adversary all protocols
// share a single knowledge graph. The first error (including context
// cancellation) aborts the sweep.
//
// Empty input handling is asymmetric by design: refs name the experiment
// and must be non-empty (an error), while advs is the workload and may
// legitimately be empty — the sweep returns an empty, non-nil slice and
// no error.
func (e *Engine) Sweep(ctx context.Context, refs []string, advs []*Adversary) ([]*Result, error) {
	results := make([]*Result, len(refs)*len(advs))
	err := e.sweep(ctx, refs, SliceSource(advs...), func(advIdx, refIdx int, r *Result) {
		results[advIdx*len(refs)+refIdx] = r
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// SweepStream is Sweep with streaming delivery: emit is called once per
// finished run, in completion order, from a single goroutine at a time.
// Cancelling ctx aborts the stream promptly and returns ctx.Err().
func (e *Engine) SweepStream(ctx context.Context, refs []string, advs []*Adversary, emit func(*Result)) error {
	return e.SweepSourceStream(ctx, refs, SliceSource(advs...), emit)
}

// SweepSource streams every adversary of src through every named
// protocol and folds the results online into a Summary. The source is
// sharded across the worker pool in deterministic chunks and never
// materialized: memory is bounded by the Summary, the in-flight chunks,
// and whatever the source itself retains (an exhaustive SpaceSource
// keeps its canonical-pattern dedup set) — never by the number of
// results. Per adversary, all protocols share one knowledge graph, as
// in Sweep.
//
// This is the allocation-free sweep variant: every run goes through the
// pooled Backend.RunInto path, each worker folds its shard into private
// accumulators, and the shards merge into the Summary once per worker —
// there is no per-run aggregator lock, so throughput scales with
// Parallelism.
func (e *Engine) SweepSource(ctx context.Context, refs []string, src Source) (*Summary, error) {
	return e.SweepSourceProgress(ctx, refs, src, 0, nil)
}

// SweepSourceStream is SweepSource with per-result delivery instead of
// aggregation: emit is called once per finished run, in completion
// order, from a single goroutine at a time. Emitted Results are fresh
// (emit may retain them), so this path pays the per-run allocations the
// aggregating SweepSource avoids.
func (e *Engine) SweepSourceStream(ctx context.Context, refs []string, src Source, emit func(*Result)) error {
	if src == nil {
		return fmt.Errorf("engine: nil source")
	}
	var mu sync.Mutex
	return e.sweep(ctx, refs, src, func(_, _ int, r *Result) {
		mu.Lock()
		defer mu.Unlock()
		emit(r)
	})
}

// sourceChunk bounds how many adversaries a worker claims at once from a
// streamed source. Chunking amortizes channel handoffs on huge spaces
// without starving workers on small ones.
const sourceChunk = 32

// chunkSizeFor picks the shard size: small known workloads go one
// adversary at a time (maximum parallelism), large or unknown ones in
// fixed chunks. Degenerate counts fall back to the streaming chunk
// size: a Source whose Count lies (reports known with count ≤ 0 yet
// yields adversaries) or a clamped-to-zero worker total must degrade to
// the unknown-count behavior, not divide by zero or starve the pool.
//
// block, when > 1, is the source's pattern-block stride (PatternBlocked):
// the enumeration changes failure pattern exactly at multiples of it, so
// the chunk size is aligned to keep every chunk boundary on a block
// boundary — a worker full-builds there anyway. A misaligned chunk would
// instead start mid-block, paying a spurious full build where the
// previous chunk's worker could have patched.
func chunkSizeFor(count int, known bool, workers, block int) int {
	c := sourceChunk
	if known && count > 0 {
		if workers < 1 {
			workers = 1
		}
		c = count / (workers * 4)
		if c < 1 {
			c = 1
		}
		if c > sourceChunk {
			c = sourceChunk
		}
	}
	return alignChunk(c, block)
}

// alignChunk aligns a chunk size to a pattern-block stride: the largest
// multiple of block not exceeding c when a whole block fits, else the
// largest divisor of block not exceeding c (consecutive chunks of a
// divisor tile each block exactly). Either way every chunk boundary
// lands on a block boundary; c is returned unchanged when no alignment
// is possible or needed.
func alignChunk(c, block int) int {
	if block <= 1 || c <= 1 {
		return c
	}
	if c >= block {
		return c - c%block
	}
	for d := c; d > 1; d-- {
		if block%d == 0 {
			return d
		}
	}
	return c
}

// sweepChunk is one work unit: a run of consecutive adversaries and the
// global index of the first. Chunks recycle through the engine's
// bounded freelist — the feeder takes one, fills it, and hands it to a
// worker, which releases it after its last adversary is processed — so
// a streaming sweep allocates a bounded handful of chunk arrays
// regardless of workload size. metered is the chunk's share of the
// governor's account (8 bytes per pointer of capacity), zero on
// ungoverned engines.
type sweepChunk struct {
	base    int
	advs    []*Adversary
	metered int64
}

// chunkPoolBound bounds the chunk freelist: at most workers+feeder
// chunks are ever in flight, so anything beyond that headroom is churn
// from a finished sweep.
func (e *Engine) chunkPoolBound() int { return e.params.Parallelism + 2 }

// newChunk takes a pooled chunk ready to hold size adversaries starting
// at global index base, metering the engine's chunk-pool hit rate and,
// under a governor, the array capacity it creates.
func (e *Engine) newChunk(base, size int) *sweepChunk {
	e.chunkMu.Lock()
	var c *sweepChunk
	if n := len(e.chunkFree); n > 0 {
		c = e.chunkFree[n-1]
		e.chunkFree[n-1] = nil
		e.chunkFree = e.chunkFree[:n-1]
	}
	e.chunkMu.Unlock()
	if c == nil {
		c = new(sweepChunk)
		e.statChunkMiss.Add(1)
	} else {
		e.statChunkHit.Add(1)
	}
	c.base = base
	if cap(c.advs) < size {
		c.advs = make([]*Adversary, 0, size)
		if e.gov != nil {
			if d := 8*int64(cap(c.advs)) - c.metered; d != 0 {
				e.gov.Grow(d)
				e.chunkBytes.Add(d)
				c.metered += d
			}
		}
	} else {
		c.advs = c.advs[:0]
	}
	return c
}

// dropChunk returns a retired chunk's accounted bytes to the governor.
func (e *Engine) dropChunk(c *sweepChunk) {
	if e.gov != nil && c.metered != 0 {
		e.gov.Shrink(c.metered)
		e.chunkBytes.Add(-c.metered)
		c.metered = 0
	}
}

// releaseChunk clears the adversary pointers — a pooled array must not
// pin a dropped workload — and returns the chunk to the freelist,
// unless the governor is shedding (or the freelist is full), in which
// case the chunk is dropped and its bytes returned to the account.
func (e *Engine) releaseChunk(c *sweepChunk) {
	clear(c.advs[:cap(c.advs)])
	c.advs = c.advs[:0]
	if e.gov != nil && !e.gov.Retain() {
		e.dropChunk(c)
		return
	}
	e.chunkMu.Lock()
	if len(e.chunkFree) < e.chunkPoolBound() {
		e.chunkFree = append(e.chunkFree, c)
		e.chunkMu.Unlock()
		return
	}
	e.chunkMu.Unlock()
	e.dropChunk(c)
}

// sweepExec is the shared executor skeleton behind every sweep variant:
// it resolves the protocol specs, spins the worker pool and the feeder
// goroutine that cuts the source into deterministic pooled chunks, and
// funnels out the first error (or context cancellation). body runs once
// per worker, owns all worker-local state, and must release every chunk
// it drains.
func (e *Engine) sweepExec(ctx context.Context, refs []string, src Source, body func(ctx context.Context, specs []*ProtocolSpec, jobs <-chan *sweepChunk) error) error {
	if e.err != nil {
		return e.err
	}
	if len(refs) == 0 {
		return fmt.Errorf("engine: sweep with no protocols")
	}
	specs := make([]*ProtocolSpec, len(refs))
	for i, ref := range refs {
		spec, err := e.reg.Lookup(ref)
		if err != nil {
			return err
		}
		specs[i] = spec
	}
	count, known := src.Count()

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := e.params.Parallelism
	if workers < 1 {
		workers = 1
	}
	// A known count bounds useful parallelism — but only a trustworthy
	// one: a lying count of zero must not clamp the pool to nothing
	// while the stream yields adversaries anyway.
	if known && count > 0 && workers > count {
		workers = count
	}
	block := 1
	if pb, ok := src.(PatternBlocked); ok {
		block = pb.PatternBlock()
	}
	chunkSize := chunkSizeFor(count, known, workers, block)

	jobs := make(chan *sweepChunk)
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		cancel()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := body(ctx, specs, jobs); err != nil {
				fail(err)
			}
		}()
	}

	// The feeder pulls from the source iterator and hands out chunks; it
	// runs aside the workers so unbounded sources never buffer more than
	// one chunk ahead. Source iterators run arbitrary workload code, so
	// a panic there is converted into a typed sweep failure rather than
	// a process crash; the recovery defer runs before close(jobs), so
	// the workers still drain and exit cleanly.
	go func() {
		defer close(jobs)
		defer func() {
			if pe := govern.Recovered("engine: sweep feeder", recover()); pe != nil {
				fail(pe)
			}
		}()
		next := 0
		var chunk *sweepChunk
		send := func() bool {
			select {
			case jobs <- chunk:
				chunk = nil
				return true
			case <-ctx.Done():
				e.releaseChunk(chunk)
				chunk = nil
				return false
			}
		}
		for adv := range src.Seq() {
			if chunk == nil {
				chunk = e.newChunk(next, chunkSize)
			}
			chunk.advs = append(chunk.advs, adv)
			next++
			if len(chunk.advs) == chunkSize && !send() {
				return
			}
		}
		if chunk != nil {
			send()
		}
	}()

	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// sweep is the materializing executor behind Sweep and the stream
// variants: a worker pool runs sweepOne per adversary, and deliver
// receives every fresh Result tagged with its global adversary and
// protocol indices. Aggregating sweeps use sweepAggregate instead,
// which replaces deliver with per-worker folding.
func (e *Engine) sweep(ctx context.Context, refs []string, src Source, deliver func(advIdx, refIdx int, r *Result)) error {
	return e.sweepExec(ctx, refs, src, func(ctx context.Context, specs []*ProtocolSpec, jobs <-chan *sweepChunk) (err error) {
		// Worker-level panic isolation: a panicking protocol becomes a
		// typed sweep error (stack captured at the recovery site), the
		// other workers drain via the shared cancel, and the process
		// lives on.
		defer govern.Capture("engine: sweep worker", &err)
		var memo protoMemo
		for chunk := range jobs {
			for i, adv := range chunk.advs {
				if err := e.sweepOne(ctx, refs, specs, adv, chunk.base+i, deliver, &memo); err != nil {
					return err
				}
			}
			e.releaseChunk(chunk)
		}
		return nil
	})
}

// sweepAggregate is the aggregating executor behind SweepSource. Each
// worker owns a pooled runKit (RunBuffer + knowledge Builder) and a
// private shard of agg.Acc accumulators — one per protocol — and folds
// every run into them with plain integer bumps: no Result escapes, no
// lock is taken, no map is written. A worker merges its shard into the
// Aggregator exactly once, when the job channel is drained; the merge
// is the only synchronization point of the whole sweep, so throughput
// scales with Parallelism instead of flatlining on an aggregator lock.
func (e *Engine) sweepAggregate(ctx context.Context, refs []string, src Source, a *Aggregator) error {
	recycleGraphs := e.params.GraphCache == 0 && e.backend.NeedsGraph()
	return e.sweepExec(ctx, refs, src, func(ctx context.Context, specs []*ProtocolSpec, jobs <-chan *sweepChunk) (err error) {
		kit := e.getKit(recycleGraphs)
		// Worker-level panic isolation, innermost so the captured stack
		// keeps the panic-origin frames: a panicking protocol run
		// becomes a typed sweep error, and the kit — possibly left
		// mid-mutation — is discarded rather than repooled.
		defer func() {
			if pe := govern.Recovered("engine: sweep worker", recover()); pe != nil {
				err = pe
				e.discardKit(kit)
				return
			}
			e.putKit(kit)
		}()
		shard := make([]agg.Acc, len(refs))
		var memo protoMemo
		for chunk := range jobs {
			for _, adv := range chunk.advs {
				if err := e.foldOne(ctx, refs, specs, adv, a, shard, kit, &memo); err != nil {
					return err
				}
			}
			e.releaseChunk(chunk)
		}
		a.mergeShard(shard)
		return nil
	})
}

// runKit is the pooled per-worker state of an aggregating sweep: the
// RunBuffer behind Backend.RunInto and, when graph recycling applies,
// the worker's knowledge Builder. Kits recycle through the engine's
// bounded freelist so repeated sweeps reuse warmed-up buffers; bufBytes
// is the RunBuffer capacity last reported to the governor.
type runKit struct {
	buf      *RunBuffer
	builder  *knowledge.Builder
	bufBytes int64
}

// kitPoolBound bounds the kit freelist: one sweep checks out at most
// Parallelism kits, so that is the steady-state working set worth
// keeping warm.
func (e *Engine) kitPoolBound() int { return e.params.Parallelism }

func (e *Engine) getKit(recycleGraphs bool) *runKit {
	e.kitMu.Lock()
	var kit *runKit
	if n := len(e.kitFree); n > 0 {
		kit = e.kitFree[n-1]
		e.kitFree[n-1] = nil
		e.kitFree = e.kitFree[:n-1]
	}
	e.kitMu.Unlock()
	if kit == nil {
		kit = &runKit{buf: NewRunBuffer()}
		e.statKitMiss.Add(1)
	} else {
		e.statKitHit.Add(1)
	}
	if recycleGraphs && kit.builder == nil {
		kit.builder = knowledge.NewBuilder()
		if e.gov != nil {
			kit.builder.SetMeter(e.gov)
		}
	}
	return kit
}

// putKit harvests the kit's builder counters, settles its RunBuffer
// byte account, and returns it to the freelist — unless the governor is
// shedding (or the freelist is full), in which case the kit is
// discarded and every byte it held goes back to the account.
func (e *Engine) putKit(kit *runKit) {
	e.harvestKit(kit)
	if e.gov != nil {
		if d := kit.buf.Bytes() - kit.bufBytes; d != 0 {
			e.gov.Grow(d)
			kit.bufBytes += d
		}
		if !e.gov.Retain() {
			e.dropKit(kit)
			return
		}
	}
	e.kitMu.Lock()
	if len(e.kitFree) < e.kitPoolBound() {
		e.kitFree = append(e.kitFree, kit)
		e.kitMu.Unlock()
		return
	}
	e.kitMu.Unlock()
	e.dropKit(kit)
}

// harvestKit folds the kit's builder counts into the engine counters.
func (e *Engine) harvestKit(kit *runKit) {
	if kit.builder != nil {
		built, revived, patched := kit.builder.TakeCounts()
		e.statBuilt.Add(int64(built))
		e.statRevived.Add(int64(revived))
		e.statPatched.Add(int64(patched))
	}
}

// dropKit releases a retired kit's accounted bytes: the builder's whole
// storage account (covering graphs a panic never Released) and the
// RunBuffer capacity.
func (e *Engine) dropKit(kit *runKit) {
	if kit.builder != nil {
		kit.builder.Discard()
		kit.builder = nil
	}
	if e.gov != nil && kit.bufBytes != 0 {
		e.gov.Shrink(kit.bufBytes)
		kit.bufBytes = 0
	}
}

// discardKit retires a kit whose state may be corrupt (a recovered
// panic mid-fold): counters are still harvested, then everything the
// kit holds is released rather than repooled.
func (e *Engine) discardKit(kit *runKit) {
	e.harvestKit(kit)
	e.dropKit(kit)
}

// Close releases every pooled buffer the engine retains — warm kits and
// sweep chunks — and returns their accounted bytes to the governor,
// including bytes from chunks a panicking worker dropped mid-sweep. The
// engine stays usable afterwards (pools just start cold); long-running
// processes that build per-job engines against one shared governor must
// call it when the job ends, or the account would drift upward with
// every retired engine's warm buffers. Safe to call repeatedly.
func (e *Engine) Close() {
	e.kitMu.Lock()
	kits := e.kitFree
	e.kitFree = nil
	e.kitMu.Unlock()
	for _, kit := range kits {
		e.dropKit(kit)
	}
	e.chunkMu.Lock()
	e.chunkFree = nil
	e.chunkMu.Unlock()
	if e.gov != nil {
		if b := e.chunkBytes.Swap(0); b != 0 {
			e.gov.Shrink(b)
		}
	}
}

// protoMemo is a worker-local memo of the resolved protocol entries and
// shared horizon for one Params value. Within a sweep the params only
// change when the workload varies n or t per adversary, so the memo
// keeps the hot loop off the engine-global cache mutex entirely.
type protoMemo struct {
	valid   bool
	p       Params
	horizon int
	entries []protoEntry
}

// memoFor refreshes the memo when the params change.
func (e *Engine) memoFor(memo *protoMemo, refs []string, specs []*ProtocolSpec, p Params) {
	if memo.valid && memo.p == p {
		return
	}
	memo.entries = memo.entries[:0]
	for refIdx, spec := range specs {
		memo.entries = append(memo.entries, e.protoFor(refs[refIdx], spec, p))
	}
	memo.horizon = e.horizonFor(specs, p)
	memo.p, memo.valid = p, true
}

// sweepOne runs all protocols of a sweep against one adversary, sharing
// one knowledge graph and one memoized adversary-string renderer across
// them, and delivers each fresh Result.
func (e *Engine) sweepOne(ctx context.Context, refs []string, specs []*ProtocolSpec, adv *Adversary, advIdx int, deliver func(advIdx, refIdx int, r *Result), memo *protoMemo) error {
	p, err := e.runParams(adv)
	if err != nil {
		return err
	}
	e.memoFor(memo, refs, specs, p)
	var g *knowledge.Graph
	if e.backend.NeedsGraph() {
		g = e.graphFor(adv, memo.horizon)
	}
	advStr := advString(adv)
	for refIdx, spec := range specs {
		if err := ctx.Err(); err != nil {
			return err
		}
		res, err := e.backend.Run(ctx, newRunRequest(refs[refIdx], spec, memo.entries[refIdx], p, adv, advStr, g))
		if err != nil {
			return err
		}
		deliver(advIdx, refIdx, res)
	}
	return nil
}

// foldOne runs all protocols of an aggregating sweep against one
// adversary through the pooled RunInto path and folds each outcome into
// the worker's shard. The context is polled once per adversary (RunInto
// deliberately skips the per-run check); the knowledge graph is built
// in the worker's reused arena and released as soon as the adversary's
// runs are folded — safe because nothing escapes the fold.
func (e *Engine) foldOne(ctx context.Context, refs []string, specs []*ProtocolSpec, adv *Adversary, a *Aggregator, shard []agg.Acc, kit *runKit, memo *protoMemo) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	p, err := e.runParams(adv)
	if err != nil {
		return err
	}
	e.memoFor(memo, refs, specs, p)
	var g *knowledge.Graph
	if e.backend.NeedsGraph() {
		if kit.builder != nil {
			g = kit.builder.Build(adv, memo.horizon)
			defer g.Release()
		} else {
			g = e.graphFor(adv, memo.horizon)
		}
	}
	req := &kit.buf.req
	for refIdx, spec := range specs {
		ent := &memo.entries[refIdx]
		*req = RunRequest{
			Ref: refs[refIdx], Spec: spec,
			Proto: ent.proto, ProtoErr: ent.err, Name: ent.name,
			Params: p, Adv: adv, Graph: g,
		}
		res, err := e.backend.RunInto(ctx, req, kit.buf)
		if err != nil {
			return err
		}
		a.fold(&shard[refIdx], refIdx, res, kit.buf)
	}
	a.advDone()
	return nil
}

// sweepProgressInterval is the default snapshot period of
// SweepSourceProgress when the caller passes every ≤ 0.
const sweepProgressInterval = 100 * time.Millisecond

// SweepSourceProgress is SweepSource with a streaming progress feed —
// the aggregating-sweep analogue of AnalyzeStream. While the sweep runs,
// progress receives throttled SweepProgress snapshots every interval
// (every ≤ 0 means the 100ms default), serialized from one goroutine at
// a time, followed by exactly one final snapshot after the last run has
// folded. The run path itself is untouched: workers bump one atomic per
// adversary and a side ticker reads it, so progress costs the hot loop
// nothing measurable. Cancelling ctx aborts the sweep promptly.
func (e *Engine) SweepSourceProgress(ctx context.Context, refs []string, src Source, every time.Duration, progress func(SweepProgress)) (*Summary, error) {
	if e.err != nil {
		return nil, e.err
	}
	if src == nil {
		return nil, fmt.Errorf("engine: nil source")
	}
	a, err := e.NewAggregator(src.Label(), refs)
	if err != nil {
		return nil, err
	}
	var stop, done chan struct{}
	if progress != nil {
		if every <= 0 {
			every = sweepProgressInterval
		}
		stop, done = make(chan struct{}), make(chan struct{})
		go func() {
			defer close(done)
			t := time.NewTicker(every)
			defer t.Stop()
			last := SweepProgress{Adversaries: -1}
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					if p := a.Progress(); p != last {
						last = p
						progress(p)
					}
				}
			}
		}()
	}
	err = e.sweepAggregate(ctx, refs, src, a)
	if progress != nil {
		// Quiesce the ticker before the closing snapshot so emission
		// stays serialized and the final snapshot is the last delivered.
		close(stop)
		<-done
	}
	if err != nil {
		return nil, err
	}
	if progress != nil {
		progress(a.Progress())
	}
	return a.Summary(), nil
}
