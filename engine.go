package setconsensus

import (
	"context"
	"fmt"
	"sync"

	"setconsensus/internal/knowledge"
	"setconsensus/internal/model"
)

// Engine is the context-aware entry point to every execution backend. It
// resolves protocols by name through a Registry, runs them on the
// configured Backend, shares and caches knowledge graphs, and batches
// whole protocol × adversary sweeps over a worker pool.
//
//	eng := setconsensus.New(setconsensus.WithDegree(2), setconsensus.WithCrashBound(3))
//	res, err := eng.Run(ctx, "optmin", adv)
//	results, err := eng.Sweep(ctx, []string{"optmin", "upmin", "floodmin"}, advs)
//
// Workloads too large to materialize stream through Engine.SweepSource,
// which shards a Source across the same worker pool and folds results
// into a constant-memory Summary.
type Engine struct {
	params  EngineParams
	reg     *Registry
	backend Backend
	err     error // construction error, surfaced by every call

	mu         sync.Mutex
	graphs     map[graphKey]*knowledge.Graph
	graphOrder []graphKey // FIFO eviction
	fps        map[*model.Adversary]string
	fpOrder    []*model.Adversary // FIFO eviction, same bound as graphs
	protos     map[protoKey]protoEntry
	protoOrder []protoKey // FIFO eviction, bounded by protoCacheBound
}

// protoKey identifies a constructed protocol instance: same registry ref,
// same parameters, same (stateless) decision rule.
type protoKey struct {
	ref string
	p   Params
}

// protoEntry caches the outcome of ProtocolSpec.New for one key: the
// shared instance and its runtime name, or the construction error. The
// oracle backend consumes proto/err, the compact backends only the name.
type protoEntry struct {
	proto Protocol
	name  string
	err   error
}

// protoCacheBound bounds the protocol-instance cache. Keys vary only in
// (ref, n, t, k), so workloads hit a handful of entries; the bound just
// keeps pathological parameter sweeps from growing the map forever.
const protoCacheBound = 512

// insertBounded adds key→val to a FIFO-bounded cache, evicting oldest
// entries until the bound holds. It is the single home of the eviction
// invariant for all three engine caches (graphs, fingerprints,
// protocols): bound ≤ 0 disables insertion outright rather than evicting
// forever, and an existing key is left in place. Callers hold e.mu.
func insertBounded[K comparable, V any](m map[K]V, order *[]K, key K, val V, bound int) {
	if bound <= 0 {
		return
	}
	if _, ok := m[key]; ok {
		return
	}
	for len(*order) >= bound {
		delete(m, (*order)[0])
		*order = (*order)[1:]
	}
	m[key] = val
	*order = append(*order, key)
}

// graphKey identifies a cached knowledge graph by the adversary's
// canonical fingerprint — not its pointer — so structurally equal
// adversaries built by different calls share one cached graph.
type graphKey struct {
	fingerprint string
	horizon     int
}

// New builds an Engine from the defaults plus the given options. Invalid
// configurations are not lost: every Run/Sweep on a misconfigured engine
// returns the validation error.
func New(opts ...Option) *Engine {
	cfg := engineConfig{params: DefaultEngineParams(), reg: DefaultRegistry()}
	for _, o := range opts {
		o(&cfg)
	}
	e := &Engine{
		params: cfg.params,
		reg:    cfg.reg,
		graphs: make(map[graphKey]*knowledge.Graph),
		fps:    make(map[*model.Adversary]string),
		protos: make(map[protoKey]protoEntry),
	}
	if cfg.reg == nil {
		e.err = fmt.Errorf("engine: nil registry")
		return e
	}
	if err := cfg.params.Validate(); err != nil {
		e.err = err
		return e
	}
	e.backend, e.err = backendFor(cfg.params.Backend)
	return e
}

// Params returns the engine's validated configuration.
func (e *Engine) Params() EngineParams { return e.params }

// Registry returns the registry the engine resolves protocol names in.
func (e *Engine) Registry() *Registry { return e.reg }

// runParams completes the per-run protocol parameters: n comes from the
// adversary, t and k from the engine configuration (t = n−1 when unset,
// the adversary's own failure count under PatternCrashBound).
func (e *Engine) runParams(adv *model.Adversary) (Params, error) {
	if adv == nil {
		return Params{}, fmt.Errorf("engine: nil adversary")
	}
	t := e.params.T
	switch {
	case t == PatternCrashBound:
		t = adv.Pattern.NumFailures()
	case t < 0:
		t = adv.N() - 1
	}
	p := Params{N: adv.N(), T: t, K: e.params.K}
	if err := p.Validate(); err != nil {
		return Params{}, err
	}
	return p, nil
}

// horizonFor picks the simulation horizon for a set of protocols on one
// parameterization: the engine override if set, otherwise the largest
// registered worst-case decision time.
func (e *Engine) horizonFor(specs []*ProtocolSpec, p Params) int {
	if e.params.Horizon > 0 {
		return e.params.Horizon
	}
	h := 0
	for _, s := range specs {
		if wc := s.WorstCaseTime(p); wc > h {
			h = wc
		}
	}
	return h
}

// fingerprintFor memoizes Adversary.Fingerprint by pointer identity:
// even with the compact binary encoding (varints + delivery-mask words,
// hashed once by the cache map instead of the old fmt-rendered string),
// deriving the key walks the whole failure pattern, and repeated
// Run/Sweep calls overwhelmingly reuse the same adversary value.
// Streamed sources yield fresh pointers and never hit, but their miss
// cost (one map insert + eviction under a lock held for nanoseconds) is
// noise next to the fingerprint computation itself, which a miss pays
// either way. Bounded FIFO like the graph cache.
func (e *Engine) fingerprintFor(adv *model.Adversary) string {
	e.mu.Lock()
	if fp, ok := e.fps[adv]; ok {
		e.mu.Unlock()
		return fp
	}
	e.mu.Unlock()
	fp := adv.Fingerprint()
	e.mu.Lock()
	defer e.mu.Unlock()
	insertBounded(e.fps, &e.fpOrder, adv, fp, e.params.GraphCache)
	return fp
}

// graphFor returns the knowledge graph of adv at horizon, from the cache
// when possible. Graphs are immutable after construction, so sharing is
// safe across goroutines.
func (e *Engine) graphFor(adv *model.Adversary, horizon int) *knowledge.Graph {
	if e.params.GraphCache == 0 {
		return knowledge.New(adv, horizon)
	}
	key := graphKey{e.fingerprintFor(adv), horizon}
	e.mu.Lock()
	if g, ok := e.graphs[key]; ok {
		e.mu.Unlock()
		return g
	}
	e.mu.Unlock()
	g := knowledge.New(adv, horizon)
	e.mu.Lock()
	defer e.mu.Unlock()
	if cached, ok := e.graphs[key]; ok {
		return cached // another goroutine won the race; keep one copy
	}
	insertBounded(e.graphs, &e.graphOrder, key, g, e.params.GraphCache)
	return g
}

// protoFor resolves the shared protocol instance and runtime name for
// (ref, p), constructing and caching on first use. Protocol instances
// are pure decision rules (sim.Protocol's contract), so one instance
// serves every worker concurrently; the cache turns a per-run
// construct-and-format into a map hit.
func (e *Engine) protoFor(ref string, spec *ProtocolSpec, p Params) protoEntry {
	key := protoKey{ref: ref, p: p}
	e.mu.Lock()
	if ent, ok := e.protos[key]; ok {
		e.mu.Unlock()
		return ent
	}
	e.mu.Unlock()
	ent := protoEntry{name: spec.Name}
	if proto, err := spec.New(p); err == nil {
		ent.proto, ent.name = proto, proto.Name()
	} else {
		ent.err = err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if cached, ok := e.protos[key]; ok {
		return cached
	}
	insertBounded(e.protos, &e.protoOrder, key, ent, protoCacheBound)
	return ent
}

// CachedGraphs reports how many knowledge graphs the engine currently
// holds.
func (e *Engine) CachedGraphs() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.graphs)
}

// Run resolves ref in the registry and executes it against adv on the
// configured backend.
func (e *Engine) Run(ctx context.Context, ref string, adv *Adversary) (*Result, error) {
	if e.err != nil {
		return nil, e.err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	spec, err := e.reg.Lookup(ref)
	if err != nil {
		return nil, err
	}
	p, err := e.runParams(adv)
	if err != nil {
		return nil, err
	}
	var g *knowledge.Graph
	if e.backend.NeedsGraph() {
		g = e.graphFor(adv, e.horizonFor([]*ProtocolSpec{spec}, p))
	}
	ent := e.protoFor(ref, spec, p)
	return e.backend.Run(ctx, newRunRequest(ref, spec, ent, p, adv, adv.String(), g))
}

// newRunRequest is the single place a protoEntry is wired into a
// RunRequest, shared by the single-run and sweep paths.
func newRunRequest(ref string, spec *ProtocolSpec, ent protoEntry, p Params, adv *Adversary, advStr string, g *knowledge.Graph) *RunRequest {
	return &RunRequest{
		Ref: ref, Spec: spec,
		Proto: ent.proto, ProtoErr: ent.err, Name: ent.name,
		Params: p, Adv: adv, AdvStr: advStr, Graph: g,
	}
}

// Sweep runs every named protocol against every adversary and returns
// the results in deterministic order: adversary-major, protocol-minor
// (results[a*len(refs)+p]). Adversaries are distributed over a worker
// pool of the configured parallelism; within one adversary all protocols
// share a single knowledge graph. The first error (including context
// cancellation) aborts the sweep.
//
// Empty input handling is asymmetric by design: refs name the experiment
// and must be non-empty (an error), while advs is the workload and may
// legitimately be empty — the sweep returns an empty, non-nil slice and
// no error.
func (e *Engine) Sweep(ctx context.Context, refs []string, advs []*Adversary) ([]*Result, error) {
	results := make([]*Result, len(refs)*len(advs))
	err := e.sweep(ctx, refs, SliceSource(advs...), func(advIdx, refIdx int, r *Result) {
		results[advIdx*len(refs)+refIdx] = r
	}, false)
	if err != nil {
		return nil, err
	}
	return results, nil
}

// SweepStream is Sweep with streaming delivery: emit is called once per
// finished run, in completion order, from a single goroutine at a time.
// Cancelling ctx aborts the stream promptly and returns ctx.Err().
func (e *Engine) SweepStream(ctx context.Context, refs []string, advs []*Adversary, emit func(*Result)) error {
	return e.SweepSourceStream(ctx, refs, SliceSource(advs...), emit)
}

// SweepSource streams every adversary of src through every named
// protocol and folds the results online into a Summary. The source is
// sharded across the worker pool in deterministic chunks and never
// materialized: memory is bounded by the Summary, the in-flight chunks,
// and whatever the source itself retains (an exhaustive SpaceSource
// keeps its canonical-pattern dedup set) — never by the number of
// results. Per adversary, all protocols share one knowledge graph, as
// in Sweep.
func (e *Engine) SweepSource(ctx context.Context, refs []string, src Source) (*Summary, error) {
	if e.err != nil {
		return nil, e.err
	}
	if src == nil {
		return nil, fmt.Errorf("engine: nil source")
	}
	agg, err := e.NewAggregator(src.Label(), refs)
	if err != nil {
		return nil, err
	}
	// This is the one sweep variant whose results provably do not escape:
	// every Result is folded into the aggregator inside the deliver call
	// and dropped. That makes graph recycling safe, so each worker reuses
	// one arena across its whole shard when the cache is off.
	if err := e.sweep(ctx, refs, src, func(_, _ int, r *Result) { agg.Add(r) }, true); err != nil {
		return nil, err
	}
	return agg.Summary(), nil
}

// SweepSourceStream is SweepSource with per-result delivery instead of
// aggregation: emit is called once per finished run, in completion
// order, from a single goroutine at a time.
func (e *Engine) SweepSourceStream(ctx context.Context, refs []string, src Source, emit func(*Result)) error {
	if src == nil {
		return fmt.Errorf("engine: nil source")
	}
	var mu sync.Mutex
	return e.sweep(ctx, refs, src, func(_, _ int, r *Result) {
		mu.Lock()
		defer mu.Unlock()
		emit(r)
	}, false) // emit may retain results (and their graphs): never recycle
}

// sourceChunk bounds how many adversaries a worker claims at once from a
// streamed source. Chunking amortizes channel handoffs on huge spaces
// without starving workers on small ones.
const sourceChunk = 32

// chunkSizeFor picks the shard size: small known workloads go one
// adversary at a time (maximum parallelism), large or unknown ones in
// fixed chunks.
func chunkSizeFor(count int, known bool, workers int) int {
	if !known {
		return sourceChunk
	}
	c := count / (workers * 4)
	if c < 1 {
		return 1
	}
	if c > sourceChunk {
		return sourceChunk
	}
	return c
}

// sweepChunk is one work unit: a run of consecutive adversaries and the
// global index of the first.
type sweepChunk struct {
	base int
	advs []*Adversary
}

// sweep is the shared executor behind Sweep, SweepStream, and the source
// variants: a feeder goroutine cuts the source into deterministic chunks,
// a worker pool runs sweepOne per adversary, deliver receives every
// result tagged with its global adversary and protocol indices.
//
// recycle declares that deliver drops every Result before returning (the
// aggregating path). Combined with a disabled graph cache it lets each
// worker rebuild its knowledge graphs in one reused arena instead of
// allocating a fresh one per adversary; with caching on, graphs are
// shared and retained, so recycling never applies.
func (e *Engine) sweep(ctx context.Context, refs []string, src Source, deliver func(advIdx, refIdx int, r *Result), recycle bool) error {
	if e.err != nil {
		return e.err
	}
	if len(refs) == 0 {
		return fmt.Errorf("engine: sweep with no protocols")
	}
	specs := make([]*ProtocolSpec, len(refs))
	for i, ref := range refs {
		spec, err := e.reg.Lookup(ref)
		if err != nil {
			return err
		}
		specs[i] = spec
	}
	count, known := src.Count()
	if known && count <= 0 {
		return ctx.Err()
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := e.params.Parallelism
	if known && workers > count {
		workers = count
	}
	chunkSize := chunkSizeFor(count, known, workers)

	jobs := make(chan sweepChunk)
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		cancel()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var builder *knowledge.Builder
			if recycle && e.params.GraphCache == 0 && e.backend.NeedsGraph() {
				builder = knowledge.NewBuilder()
			}
			var memo protoMemo
			for chunk := range jobs {
				for i, adv := range chunk.advs {
					if err := e.sweepOne(ctx, refs, specs, adv, chunk.base+i, deliver, builder, &memo); err != nil {
						fail(err)
						return
					}
				}
			}
		}()
	}

	// The feeder pulls from the source iterator and hands out chunks; it
	// runs aside the workers so unbounded sources never buffer more than
	// one chunk ahead.
	go func() {
		defer close(jobs)
		next := 0
		chunk := sweepChunk{base: 0, advs: make([]*Adversary, 0, chunkSize)}
		flush := func() bool {
			if len(chunk.advs) == 0 {
				return true
			}
			select {
			case jobs <- chunk:
				chunk = sweepChunk{base: next, advs: make([]*Adversary, 0, chunkSize)}
				return true
			case <-ctx.Done():
				return false
			}
		}
		for adv := range src.Seq() {
			chunk.advs = append(chunk.advs, adv)
			next++
			if len(chunk.advs) == chunkSize {
				if !flush() {
					return
				}
			}
		}
		flush()
	}()

	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// protoMemo is a worker-local memo of the resolved protocol entries for
// one Params value. Within a sweep the params only change when the
// workload varies n or t per adversary, so the memo keeps the hot loop
// off the engine-global cache mutex entirely.
type protoMemo struct {
	valid   bool
	p       Params
	entries []protoEntry
}

// sweepOne runs all protocols of a sweep against one adversary, sharing
// one knowledge graph and one rendered adversary string across them. A
// non-nil builder rebuilds the graph in the worker's reused arena and
// releases it once every protocol's result has been delivered — callers
// pass one only when deliver provably drops each Result (see sweep).
func (e *Engine) sweepOne(ctx context.Context, refs []string, specs []*ProtocolSpec, adv *Adversary, advIdx int, deliver func(advIdx, refIdx int, r *Result), builder *knowledge.Builder, memo *protoMemo) error {
	p, err := e.runParams(adv)
	if err != nil {
		return err
	}
	if !memo.valid || memo.p != p {
		memo.entries = memo.entries[:0]
		for refIdx, spec := range specs {
			memo.entries = append(memo.entries, e.protoFor(refs[refIdx], spec, p))
		}
		memo.p, memo.valid = p, true
	}
	var g *knowledge.Graph
	if e.backend.NeedsGraph() {
		horizon := e.horizonFor(specs, p)
		if builder != nil {
			g = builder.Build(adv, horizon)
			defer g.Release()
		} else {
			g = e.graphFor(adv, horizon)
		}
	}
	advStr := adv.String()
	for refIdx, spec := range specs {
		if err := ctx.Err(); err != nil {
			return err
		}
		res, err := e.backend.Run(ctx, newRunRequest(refs[refIdx], spec, memo.entries[refIdx], p, adv, advStr, g))
		if err != nil {
			return err
		}
		deliver(advIdx, refIdx, res)
	}
	return nil
}
