package setconsensus

import (
	"context"
	"fmt"
	"sync"

	"setconsensus/internal/knowledge"
	"setconsensus/internal/model"
)

// Engine is the context-aware entry point to every execution backend. It
// resolves protocols by name through a Registry, runs them on the
// configured Backend, shares and caches knowledge graphs, and batches
// whole protocol × adversary sweeps over a worker pool.
//
//	eng := setconsensus.New(setconsensus.WithDegree(2), setconsensus.WithCrashBound(3))
//	res, err := eng.Run(ctx, "optmin", adv)
//	results, err := eng.Sweep(ctx, []string{"optmin", "upmin", "floodmin"}, advs)
type Engine struct {
	params  EngineParams
	reg     *Registry
	backend Backend
	err     error // construction error, surfaced by every call

	mu         sync.Mutex
	graphs     map[graphKey]*knowledge.Graph
	graphOrder []graphKey // FIFO eviction
}

type graphKey struct {
	adv     *model.Adversary
	horizon int
}

// New builds an Engine from the defaults plus the given options. Invalid
// configurations are not lost: every Run/Sweep on a misconfigured engine
// returns the validation error.
func New(opts ...Option) *Engine {
	cfg := engineConfig{params: DefaultEngineParams(), reg: DefaultRegistry()}
	for _, o := range opts {
		o(&cfg)
	}
	e := &Engine{params: cfg.params, reg: cfg.reg, graphs: make(map[graphKey]*knowledge.Graph)}
	if cfg.reg == nil {
		e.err = fmt.Errorf("engine: nil registry")
		return e
	}
	if err := cfg.params.Validate(); err != nil {
		e.err = err
		return e
	}
	e.backend, e.err = backendFor(cfg.params.Backend)
	return e
}

// Params returns the engine's validated configuration.
func (e *Engine) Params() EngineParams { return e.params }

// Registry returns the registry the engine resolves protocol names in.
func (e *Engine) Registry() *Registry { return e.reg }

// runParams completes the per-run protocol parameters: n comes from the
// adversary, t and k from the engine configuration (t = n−1 when unset).
func (e *Engine) runParams(adv *model.Adversary) (Params, error) {
	if adv == nil {
		return Params{}, fmt.Errorf("engine: nil adversary")
	}
	t := e.params.T
	if t < 0 {
		t = adv.N() - 1
	}
	p := Params{N: adv.N(), T: t, K: e.params.K}
	if err := p.Validate(); err != nil {
		return Params{}, err
	}
	return p, nil
}

// horizonFor picks the simulation horizon for a set of protocols on one
// parameterization: the engine override if set, otherwise the largest
// registered worst-case decision time.
func (e *Engine) horizonFor(specs []*ProtocolSpec, p Params) int {
	if e.params.Horizon > 0 {
		return e.params.Horizon
	}
	h := 0
	for _, s := range specs {
		if wc := s.WorstCaseTime(p); wc > h {
			h = wc
		}
	}
	return h
}

// graphFor returns the knowledge graph of adv at horizon, from the cache
// when possible. Graphs are immutable after construction, so sharing is
// safe across goroutines.
func (e *Engine) graphFor(adv *model.Adversary, horizon int) *knowledge.Graph {
	if e.params.GraphCache == 0 {
		return knowledge.New(adv, horizon)
	}
	key := graphKey{adv, horizon}
	e.mu.Lock()
	if g, ok := e.graphs[key]; ok {
		e.mu.Unlock()
		return g
	}
	e.mu.Unlock()
	g := knowledge.New(adv, horizon)
	e.mu.Lock()
	defer e.mu.Unlock()
	if cached, ok := e.graphs[key]; ok {
		return cached // another goroutine won the race; keep one copy
	}
	for len(e.graphOrder) >= e.params.GraphCache {
		oldest := e.graphOrder[0]
		e.graphOrder = e.graphOrder[1:]
		delete(e.graphs, oldest)
	}
	e.graphs[key] = g
	e.graphOrder = append(e.graphOrder, key)
	return g
}

// CachedGraphs reports how many knowledge graphs the engine currently
// holds.
func (e *Engine) CachedGraphs() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.graphs)
}

// Run resolves ref in the registry and executes it against adv on the
// configured backend.
func (e *Engine) Run(ctx context.Context, ref string, adv *Adversary) (*Result, error) {
	if e.err != nil {
		return nil, e.err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	spec, err := e.reg.Lookup(ref)
	if err != nil {
		return nil, err
	}
	p, err := e.runParams(adv)
	if err != nil {
		return nil, err
	}
	var g *knowledge.Graph
	if e.backend.NeedsGraph() {
		g = e.graphFor(adv, e.horizonFor([]*ProtocolSpec{spec}, p))
	}
	return e.backend.Run(ctx, ref, spec, p, adv, g)
}

// Sweep runs every named protocol against every adversary and returns
// the results in deterministic order: adversary-major, protocol-minor
// (results[a*len(refs)+p]). Adversaries are distributed over a worker
// pool of the configured parallelism; within one adversary all protocols
// share a single knowledge graph. The first error (including context
// cancellation) aborts the sweep.
func (e *Engine) Sweep(ctx context.Context, refs []string, advs []*Adversary) ([]*Result, error) {
	results := make([]*Result, len(refs)*len(advs))
	err := e.sweep(ctx, refs, advs, func(advIdx, refIdx int, r *Result) {
		results[advIdx*len(refs)+refIdx] = r
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// SweepStream is Sweep with streaming delivery: emit is called once per
// finished run, in completion order, from a single goroutine at a time.
func (e *Engine) SweepStream(ctx context.Context, refs []string, advs []*Adversary, emit func(*Result)) error {
	var mu sync.Mutex
	return e.sweep(ctx, refs, advs, func(_, _ int, r *Result) {
		mu.Lock()
		defer mu.Unlock()
		emit(r)
	})
}

// sweep is the shared batch executor behind Sweep and SweepStream.
func (e *Engine) sweep(ctx context.Context, refs []string, advs []*Adversary, deliver func(advIdx, refIdx int, r *Result)) error {
	if e.err != nil {
		return e.err
	}
	if len(refs) == 0 {
		return fmt.Errorf("engine: sweep with no protocols")
	}
	specs := make([]*ProtocolSpec, len(refs))
	for i, ref := range refs {
		spec, err := e.reg.Lookup(ref)
		if err != nil {
			return err
		}
		specs[i] = spec
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	jobs := make(chan int)
	workers := e.params.Parallelism
	if workers > len(advs) {
		workers = len(advs)
	}
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		cancel()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for advIdx := range jobs {
				if err := e.sweepOne(ctx, refs, specs, advs[advIdx], advIdx, deliver); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
feed:
	for a := range advs {
		select {
		case jobs <- a:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// sweepOne runs all protocols of a sweep against one adversary, sharing
// one knowledge graph across them on graph-consuming backends.
func (e *Engine) sweepOne(ctx context.Context, refs []string, specs []*ProtocolSpec, adv *Adversary, advIdx int, deliver func(advIdx, refIdx int, r *Result)) error {
	p, err := e.runParams(adv)
	if err != nil {
		return err
	}
	var g *knowledge.Graph
	if e.backend.NeedsGraph() {
		g = e.graphFor(adv, e.horizonFor(specs, p))
	}
	for refIdx, spec := range specs {
		if err := ctx.Err(); err != nil {
			return err
		}
		res, err := e.backend.Run(ctx, refs[refIdx], spec, p, adv, g)
		if err != nil {
			return err
		}
		deliver(advIdx, refIdx, res)
	}
	return nil
}
