// Command experiments regenerates the paper-reproduction tables E1–E10
// (one per figure/theorem; see DESIGN.md §4 and EXPERIMENTS.md) through
// the library facade, and runs ad-hoc workload sweeps in the same table
// format.
//
// Usage:
//
//	experiments                  # run everything
//	experiments -id E4           # run one experiment
//	experiments -list            # list experiment ids and titles
//
//	# Ad-hoc sweep: stream a named workload through named protocols and
//	# print the online-aggregated summary table.
//	experiments -workload "collapse:k=3,r=2..8" -protocols upmin,floodmin -k 3
//	experiments -workload "space:n=4,t=2,r=2,v=0..1" -protocols optmin -t 2
//
//	# Named unbeatability analyses on the Engine's pipeline, same table
//	# format:
//	experiments -analyze "search:upmin:n=3,t=2,r=2,width=2"
//	experiments -analyze "lemma2" -k 3
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	setconsensus "setconsensus"
	"setconsensus/internal/cli"
)

func main() {
	id := flag.String("id", "", "experiment id (E1..E10); empty runs all")
	list := flag.Bool("list", false, "list experiments and exit")
	analyze := flag.String("analyze", "", "run a named analysis family instead of E1..E10 (see setconsensus -list-analyses)")
	workload := flag.String("workload", "", "sweep a named workload instead of running E1..E10 (see setconsensus -list-workloads)")
	protocols := flag.String("protocols", "optmin,upmin", "comma-separated protocols for -workload sweeps")
	backendName := flag.String("backend", "oracle", "execution backend for -workload sweeps")
	k := flag.Int("k", 1, "coordination degree k for -workload sweeps")
	t := flag.Int("t", -1, "crash bound t for -workload sweeps (default: each adversary's failure count)")
	timeout := flag.Duration("timeout", 0, "abort -workload/-analyze after this duration (0 = no limit); exits 130 on expiry, like SIGINT/SIGTERM")
	flag.Parse()

	// Long sweeps and analyses cancel cleanly on SIGINT/SIGTERM or
	// -timeout — the engine drains its worker pool and the run exits
	// with the distinct cancellation code instead of dying mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *analyze != "" {
		if *workload != "" {
			fmt.Fprintln(os.Stderr, "-analyze and -workload are mutually exclusive")
			os.Exit(1)
		}
		backend, err := setconsensus.ParseBackend(*backendName)
		if err == nil {
			var rep *setconsensus.AnalysisReport
			if rep, err = cli.RunAnalysis(ctx, os.Stdout, *analyze, backend, *k); err == nil && !rep.OK() {
				err = fmt.Errorf("analysis FAILED: %s", rep)
			}
		}
		if err != nil {
			fail(err)
		}
		return
	}

	if *workload != "" {
		if err := sweep(ctx, *workload, *protocols, *backendName, *k, *t); err != nil {
			fail(err)
		}
		return
	}

	ids := setconsensus.ExperimentIDs()
	if *id != "" {
		ids = []string{*id}
	}
	for _, eid := range ids {
		tbl, err := setconsensus.Experiment(eid)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", eid, err)
			os.Exit(1)
		}
		if *list {
			fmt.Printf("%-4s %s\n", eid, tbl.Title)
			continue
		}
		fmt.Println(tbl.Render())
	}
}

// fail reports a runtime failure, exiting with the distinct
// cancellation code when the context was cut short.
func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	if cli.Cancelled(err) {
		os.Exit(cli.ExitCancelled)
	}
	os.Exit(1)
}

// sweep streams the workload through the protocols and prints the
// summary in the experiment table format.
func sweep(ctx context.Context, workload, protocols, backendName string, k, t int) error {
	backend, err := setconsensus.ParseBackend(backendName)
	if err != nil {
		return err
	}
	sum, err := cli.SweepWorkload(ctx, os.Stdout, workload, cli.SplitList(protocols), backend, k, t)
	if err != nil {
		return err
	}
	if v, u := sum.Violations(), sum.Undecided(); v > 0 || u > 0 {
		return fmt.Errorf("%d task verification failures, %d undecided runs", v, u)
	}
	return nil
}
