// Command experiments regenerates the paper-reproduction tables E1–E10
// (one per figure/theorem; see DESIGN.md §4 and EXPERIMENTS.md).
//
// Usage:
//
//	experiments             # run everything
//	experiments -id E4      # run one experiment
//	experiments -list       # list experiment ids and titles
package main

import (
	"flag"
	"fmt"
	"os"

	"setconsensus/internal/experiments"
)

func main() {
	id := flag.String("id", "", "experiment id (E1..E10); empty runs all")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			tbl, err := e.Gen()
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
				os.Exit(1)
			}
			fmt.Printf("%-4s %s\n", e.ID, tbl.Title)
		}
		return
	}
	if *id != "" {
		tbl, err := experiments.Run(*id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(tbl.Render())
		return
	}
	for _, e := range experiments.Registry() {
		tbl, err := e.Gen()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println(tbl.Render())
	}
}
