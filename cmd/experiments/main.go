// Command experiments regenerates the paper-reproduction tables E1–E10
// (one per figure/theorem; see DESIGN.md §4 and EXPERIMENTS.md) through
// the library facade.
//
// Usage:
//
//	experiments             # run everything
//	experiments -id E4      # run one experiment
//	experiments -list       # list experiment ids and titles
package main

import (
	"flag"
	"fmt"
	"os"

	setconsensus "setconsensus"
)

func main() {
	id := flag.String("id", "", "experiment id (E1..E10); empty runs all")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	ids := setconsensus.ExperimentIDs()
	if *id != "" {
		ids = []string{*id}
	}
	for _, eid := range ids {
		tbl, err := setconsensus.Experiment(eid)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", eid, err)
			os.Exit(1)
		}
		if *list {
			fmt.Printf("%-4s %s\n", eid, tbl.Title)
			continue
		}
		fmt.Println(tbl.Render())
	}
}
