// Command setconsensus runs a k-set consensus protocol against an
// adversary described on the command line and prints the decision table.
//
// Examples:
//
//	# Optmin[2] on 6 processes with inputs 0,2,2,2,2,2 and one silent
//	# round-1 crash of process 1:
//	setconsensus -protocol optmin -k 2 -t 3 -inputs 0,2,2,2,2,2 -crash "1@1:"
//
//	# u-Pmin[3] on the Fig. 4 collapse family with R=4:
//	setconsensus -protocol upmin -collapse-k 3 -collapse-r 4
//
// Crash syntax: "p@r:a,b" crashes process p in round r delivering only to
// a and b; "p@r:" is a silent crash; "p@r:*" is a complete send. Multiple
// crashes are separated by ';'.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	setconsensus "setconsensus"
)

func main() {
	protoName := flag.String("protocol", "optmin", "optmin | upmin | floodmin | earlycount | u-earlycount | perround | u-perround")
	k := flag.Int("k", 1, "coordination degree k")
	t := flag.Int("t", -1, "crash bound t (default n−1)")
	inputsFlag := flag.String("inputs", "", "comma-separated initial values")
	crashFlag := flag.String("crash", "", "crash spec, e.g. \"1@1:2;3@2:*\"")
	collapseK := flag.Int("collapse-k", 0, "build the Fig. 4 collapse family with this k instead of -inputs/-crash")
	collapseR := flag.Int("collapse-r", 3, "collapse family crash rounds R")
	flag.Parse()

	adv, tBound, err := buildAdversary(*inputsFlag, *crashFlag, *collapseK, *collapseR, *t)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	p := setconsensus.Params{N: adv.N(), T: tBound, K: *k}
	if *collapseK > 0 {
		p.K = *collapseK
	}
	proto, uniform, err := buildProtocol(*protoName, p)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	res := setconsensus.Run(proto, adv)
	fmt.Printf("adversary: %s\n", adv)
	fmt.Printf("protocol:  %s (n=%d, t=%d, k=%d)\n\n", proto.Name(), p.N, p.T, p.K)
	fmt.Println("proc  decision  time")
	for i := 0; i < adv.N(); i++ {
		d := res.Decisions[i]
		status := ""
		if adv.Pattern.Faulty(i) {
			status = fmt.Sprintf("  (crashes in round %d)", adv.Pattern.CrashRound(i))
		}
		if d == nil {
			fmt.Printf("%4d  %8s  %4s%s\n", i, "⊥", "-", status)
		} else {
			fmt.Printf("%4d  %8d  %4d%s\n", i, d.Value, d.Time, status)
		}
	}
	task := setconsensus.Task{K: p.K, Uniform: uniform}
	if err := setconsensus.Verify(res, task); err != nil {
		fmt.Printf("\nverification: FAILED: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\nverification: %s satisfied\n", task)
}

func buildAdversary(inputs, crash string, collapseK, collapseR, t int) (*setconsensus.Adversary, int, error) {
	if collapseK > 0 {
		cp := setconsensus.CollapseParams{K: collapseK, R: collapseR, ExtraCorrect: collapseK + 2}
		adv, err := setconsensus.Collapse(cp)
		return adv, setconsensus.CollapseT(cp), err
	}
	if inputs == "" {
		return nil, 0, fmt.Errorf("need -inputs (or -collapse-k)")
	}
	var vals []int
	for _, f := range strings.Split(inputs, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, 0, fmt.Errorf("bad input %q: %v", f, err)
		}
		vals = append(vals, v)
	}
	n := len(vals)
	b := setconsensus.NewBuilder(n, 0).Inputs(vals...)
	if crash != "" {
		for _, spec := range strings.Split(crash, ";") {
			if err := applyCrash(b, spec, n); err != nil {
				return nil, 0, err
			}
		}
	}
	adv, err := b.Build()
	if err != nil {
		return nil, 0, err
	}
	if t < 0 {
		t = n - 1
	}
	return adv, t, nil
}

func applyCrash(b *setconsensus.Builder, spec string, n int) error {
	at := strings.SplitN(spec, "@", 2)
	if len(at) != 2 {
		return fmt.Errorf("bad crash spec %q (want p@r:recv)", spec)
	}
	colon := strings.SplitN(at[1], ":", 2)
	if len(colon) != 2 {
		return fmt.Errorf("bad crash spec %q (want p@r:recv)", spec)
	}
	p, err := strconv.Atoi(strings.TrimSpace(at[0]))
	if err != nil {
		return fmt.Errorf("bad process in %q", spec)
	}
	r, err := strconv.Atoi(strings.TrimSpace(colon[0]))
	if err != nil {
		return fmt.Errorf("bad round in %q", spec)
	}
	recv := strings.TrimSpace(colon[1])
	switch recv {
	case "":
		b.CrashSilent(p, r)
	case "*":
		b.CrashSendingToAll(p, r)
	default:
		var rs []int
		for _, f := range strings.Split(recv, ",") {
			q, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || q < 0 || q >= n {
				return fmt.Errorf("bad receiver %q in %q", f, spec)
			}
			rs = append(rs, q)
		}
		b.CrashSendingTo(p, r, rs...)
	}
	return nil
}

func buildProtocol(name string, p setconsensus.Params) (setconsensus.Protocol, bool, error) {
	switch strings.ToLower(name) {
	case "optmin":
		proto, err := setconsensus.NewOptmin(p)
		return proto, false, err
	case "upmin":
		proto, err := setconsensus.NewUPmin(p)
		return proto, true, err
	case "floodmin":
		proto, err := setconsensus.NewBaseline(setconsensus.FloodMin, p)
		return proto, true, err
	case "earlycount":
		proto, err := setconsensus.NewBaseline(setconsensus.EarlyCount, p)
		return proto, false, err
	case "u-earlycount":
		proto, err := setconsensus.NewBaseline(setconsensus.UEarlyCount, p)
		return proto, true, err
	case "perround":
		proto, err := setconsensus.NewBaseline(setconsensus.PerRound, p)
		return proto, false, err
	case "u-perround":
		proto, err := setconsensus.NewBaseline(setconsensus.UPerRound, p)
		return proto, true, err
	}
	return nil, false, fmt.Errorf("unknown protocol %q", name)
}
