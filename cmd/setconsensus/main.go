// Command setconsensus runs a k-set consensus protocol against an
// adversary described on the command line and prints the decision table.
//
// Protocols are resolved by name in the library's Registry — run with
// -list to see every registered protocol — and executed through the
// Engine facade on any of the three backends: the full-information
// oracle simulator (default), the goroutine message-passing engine, or
// the compact wire protocol with bit accounting.
//
// Examples:
//
//	# Optmin[2] on 6 processes with inputs 0,2,2,2,2,2 and one silent
//	# round-1 crash of process 1:
//	setconsensus -protocol optmin -k 2 -t 3 -inputs 0,2,2,2,2,2 -crash "1@1:"
//
//	# u-Pmin[3] on the Fig. 4 collapse family with R=4:
//	setconsensus -protocol upmin -collapse-k 3 -collapse-r 4
//
//	# The same run on the compact wire backend, with bandwidth stats:
//	setconsensus -protocol upmin -collapse-k 3 -collapse-r 4 -backend wire
//
// Crash syntax: "p@r:a,b" crashes process p in round r delivering only to
// a and b; "p@r:" is a silent crash; "p@r:*" is a complete send. Multiple
// crashes are separated by ';'.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	setconsensus "setconsensus"
)

func main() {
	protoName := flag.String("protocol", "optmin", "protocol name in the registry (see -list)")
	backendName := flag.String("backend", "oracle", "execution backend: oracle | goroutines | wire")
	k := flag.Int("k", 1, "coordination degree k")
	t := flag.Int("t", -1, "crash bound t (default n−1)")
	inputsFlag := flag.String("inputs", "", "comma-separated initial values")
	crashFlag := flag.String("crash", "", "crash spec, e.g. \"1@1:2;3@2:*\"")
	collapseK := flag.Int("collapse-k", 0, "build the Fig. 4 collapse family with this k instead of -inputs/-crash")
	collapseR := flag.Int("collapse-r", 3, "collapse family crash rounds R")
	list := flag.Bool("list", false, "list registered protocols and exit")
	flag.Parse()

	if *list {
		for _, spec := range setconsensus.DefaultRegistry().Specs() {
			wire := ""
			if spec.WireCapable() {
				wire = "  [wire-capable]"
			}
			fmt.Printf("%-14s %s%s\n", spec.Name, spec.Summary, wire)
		}
		return
	}

	adv, tBound, err := buildAdversary(*inputsFlag, *crashFlag, *collapseK, *collapseR, *t)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	degree := *k
	if *collapseK > 0 {
		degree = *collapseK
	}
	backend, err := setconsensus.ParseBackend(*backendName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	spec, err := setconsensus.LookupProtocol(*protoName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	eng := setconsensus.New(
		setconsensus.WithBackend(backend),
		setconsensus.WithCrashBound(tBound),
		setconsensus.WithDegree(degree),
	)
	res, err := eng.Run(context.Background(), spec.Name, adv)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	fmt.Printf("adversary: %s\n", adv)
	fmt.Printf("protocol:  %s on %s backend (n=%d, t=%d, k=%d)\n\n",
		res.Protocol, res.Backend, res.Params.N, res.Params.T, res.Params.K)
	fmt.Println("proc  decision  time")
	for i := 0; i < adv.N(); i++ {
		d := res.Decisions[i]
		status := ""
		if adv.Pattern.Faulty(i) {
			status = fmt.Sprintf("  (crashes in round %d)", adv.Pattern.CrashRound(i))
		}
		if d == nil {
			fmt.Printf("%4d  %8s  %4s%s\n", i, "⊥", "-", status)
		} else {
			fmt.Printf("%4d  %8d  %4d%s\n", i, d.Value, d.Time, status)
		}
	}
	if res.Bits != nil {
		fmt.Printf("\nbandwidth: max %d bits on any link, %d bits total\n", res.Bits.MaxPair, res.Bits.Total)
	}
	task := spec.Task(degree)
	if err := res.Verify(task); err != nil {
		fmt.Printf("\nverification: FAILED: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\nverification: %s satisfied\n", task)
}

func buildAdversary(inputs, crash string, collapseK, collapseR, t int) (*setconsensus.Adversary, int, error) {
	if collapseK > 0 {
		cp := setconsensus.CollapseParams{K: collapseK, R: collapseR, ExtraCorrect: collapseK + 2}
		adv, err := setconsensus.Collapse(cp)
		return adv, setconsensus.CollapseT(cp), err
	}
	if inputs == "" {
		return nil, 0, fmt.Errorf("need -inputs (or -collapse-k)")
	}
	var vals []int
	for _, f := range strings.Split(inputs, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, 0, fmt.Errorf("bad input %q: %v", f, err)
		}
		vals = append(vals, v)
	}
	n := len(vals)
	b := setconsensus.NewBuilder(n, 0).Inputs(vals...)
	if crash != "" {
		for _, spec := range strings.Split(crash, ";") {
			if err := applyCrash(b, spec, n); err != nil {
				return nil, 0, err
			}
		}
	}
	adv, err := b.Build()
	if err != nil {
		return nil, 0, err
	}
	if t < 0 {
		t = n - 1
	}
	return adv, t, nil
}

func applyCrash(b *setconsensus.Builder, spec string, n int) error {
	at := strings.SplitN(spec, "@", 2)
	if len(at) != 2 {
		return fmt.Errorf("bad crash spec %q (want p@r:recv)", spec)
	}
	colon := strings.SplitN(at[1], ":", 2)
	if len(colon) != 2 {
		return fmt.Errorf("bad crash spec %q (want p@r:recv)", spec)
	}
	p, err := strconv.Atoi(strings.TrimSpace(at[0]))
	if err != nil {
		return fmt.Errorf("bad process in %q", spec)
	}
	r, err := strconv.Atoi(strings.TrimSpace(colon[0]))
	if err != nil {
		return fmt.Errorf("bad round in %q", spec)
	}
	recv := strings.TrimSpace(colon[1])
	switch recv {
	case "":
		b.CrashSilent(p, r)
	case "*":
		b.CrashSendingToAll(p, r)
	default:
		var rs []int
		for _, f := range strings.Split(recv, ",") {
			q, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || q < 0 || q >= n {
				return fmt.Errorf("bad receiver %q in %q", f, spec)
			}
			rs = append(rs, q)
		}
		b.CrashSendingTo(p, r, rs...)
	}
	return nil
}
