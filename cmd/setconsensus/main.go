// Command setconsensus runs k-set consensus protocols against a single
// adversary described on the command line, or against a whole named
// workload, and prints the decision table or the sweep summary.
//
// Protocols are resolved by name in the library's Registry — run with
// -list to see every registered protocol — and executed through the
// Engine facade on any of the three backends: the full-information
// oracle simulator (default), the goroutine message-passing engine, or
// the compact wire protocol with bit accounting. Workloads are resolved
// the same way in the WorkloadRegistry (-list-workloads), so adversary
// families are named, not hand-rolled.
//
// Examples:
//
//	# Optmin[2] on 6 processes with inputs 0,2,2,2,2,2 and one silent
//	# round-1 crash of process 1:
//	setconsensus -protocol optmin -k 2 -t 3 -inputs 0,2,2,2,2,2 -crash "1@1:"
//
//	# Sweep three protocols over the Fig. 4 collapse family, R = 2..6:
//	setconsensus -protocol upmin,optmin,floodmin -k 3 -workload "collapse:k=3,r=2..6"
//
//	# Exhaustive conformance sweep, streamed in constant memory:
//	setconsensus -protocol optmin -t 2 -workload "space:n=4,t=2,r=2,v=0..1"
//
//	# The compact wire backend with bandwidth stats:
//	setconsensus -protocol upmin -k 3 -workload "collapse:k=3" -backend wire
//
//	# Unbeatability analyses (deviation search, Lemma 1/2/3 certificates)
//	# on the same engine; see -list-analyses for the families:
//	setconsensus -analyze "search:optmin:n=3,t=2,r=3,width=2"
//	setconsensus -analyze "forced" -k 3
//
//	# Submit the same sweep to a running setconsensusd as a remote job —
//	# output is identical to executing locally:
//	setconsensus -server http://127.0.0.1:8372 -protocol optmin -t 2 \
//	    -workload "space:n=4,t=2,r=2,v=0..1"
//
//	# Coordinate the sweep across 4 local workers with checkpointed
//	# resume: killed mid-flight, the same invocation picks up where the
//	# checkpoint left off, and the final table is byte-identical to the
//	# single-process run. -join enlists setconsensusd servers as extra
//	# workers via range-scoped jobs.
//	setconsensus -coordinate -workers 4 -checkpoint sweep.ckpt \
//	    -protocol optmin -t 2 -workload "space:n=4,t=2,r=2,v=0..1"
//	setconsensus -coordinate -join http://10.0.0.2:8372,http://10.0.0.3:8372 \
//	    -protocol optmin -t 2 -workload "space:n=4,t=2,r=2,v=0..1"
//
//	# The same sweep under a seeded fault schedule (crashes, stragglers,
//	# one torn checkpoint write): the table is still byte-identical, the
//	# fault tally and breaker/retry counters go to stderr.
//	setconsensus -coordinate -workers 3 -checkpoint sweep.ckpt \
//	    -chaos "seed=7,crash=0.1,straggler=0.2,torn#1" \
//	    -protocol optmin -t 2 -workload "space:n=4,t=2,r=2,v=0..1"
//
// Crash syntax: "p@r:a,b" crashes process p in round r delivering only to
// a and b; "p@r:" is a silent crash; "p@r:*" is a complete send. Multiple
// crashes are separated by ';'. Workload syntax: "name" or
// "name:key=val,...", where integer values may be ranges like "2..6".
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime/debug"
	"strconv"
	"strings"
	"syscall"

	setconsensus "setconsensus"
	"setconsensus/internal/cli"
	"setconsensus/internal/govern"
)

func main() {
	protoNames := flag.String("protocol", "optmin", "comma-separated protocol names in the registry (see -list)")
	backendName := flag.String("backend", "oracle", "execution backend: oracle | goroutines | wire")
	k := flag.Int("k", 1, "coordination degree k")
	t := flag.Int("t", -1, "crash bound t (single run: default n−1; workload sweeps: default each adversary's failure count)")
	inputsFlag := flag.String("inputs", "", "comma-separated initial values (single-run mode)")
	crashFlag := flag.String("crash", "", "crash spec, e.g. \"1@1:2;3@2:*\" (single-run mode)")
	workload := flag.String("workload", "", "named workload to sweep, e.g. \"collapse:k=3,r=2..6\" (see -list-workloads)")
	coordinate := flag.Bool("coordinate", false, "shard the -workload sweep across workers with leases and checkpointed resume")
	workers := flag.Int("workers", 0, "coordinated sweep: number of in-process engine workers (default 2 when -join is empty)")
	join := flag.String("join", "", "coordinated sweep: comma-separated setconsensusd base URLs to enlist as remote workers")
	checkpoint := flag.String("checkpoint", "", "coordinated sweep: checkpoint file; written atomically per completed range, resumed from when it exists")
	rangeSize := flag.Int("range-size", 0, "coordinated sweep: adversaries per work range (0 = default)")
	lease := flag.Duration("lease", 0, "coordinated sweep: per-range worker lease before re-issue (0 = default)")
	chaosSpec := flag.String("chaos", "", "coordinated sweep: fault-injection spec, e.g. \"seed=7,crash=0.1,straggler=0.2,delay=20ms,torn#1\"; faults tally to stderr, output stays byte-identical")
	analyze := flag.String("analyze", "", "named analysis to run, e.g. \"search:optmin:width=2\" or \"forced:k=3\" (see -list-analyses)")
	server := flag.String("server", "", "setconsensusd base URL; -workload/-analyze submit as remote jobs, e.g. http://127.0.0.1:8372")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit); exits 130 on expiry, like SIGINT/SIGTERM")
	memLimit := flag.String("memlimit", "", "Go runtime memory limit (GOMEMLIMIT), e.g. 4GiB; empty = unlimited")
	list := flag.Bool("list", false, "list registered protocols and exit")
	listWorkloads := flag.Bool("list-workloads", false, "list registered workloads and exit")
	listAnalyses := flag.Bool("list-analyses", false, "list registered analysis families and exit")
	flag.Parse()

	if *memLimit != "" {
		n, err := govern.ParseBytes(*memLimit)
		if err != nil {
			fmt.Fprintf(os.Stderr, "setconsensus: -memlimit: %v\n", err)
			os.Exit(2)
		}
		if n > 0 {
			debug.SetMemoryLimit(n)
		}
	}

	// A long sweep or analysis must cancel cleanly — worker pools
	// drained, summaries unwritten rather than half-written — instead of
	// dying mid-write: SIGINT/SIGTERM and -timeout all flow through one
	// context, and cancellation exits with its own code (130).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *list {
		for _, spec := range setconsensus.DefaultRegistry().Specs() {
			wire := ""
			if spec.WireCapable() {
				wire = "  [wire-capable]"
			}
			fmt.Printf("%-14s %s%s\n", spec.Name, spec.Summary, wire)
		}
		return
	}
	if *listWorkloads {
		for _, spec := range setconsensus.DefaultWorkloads().Specs() {
			fmt.Printf("%-14s %s\n", spec.Name, spec.Summary)
			fmt.Printf("%-14s   params: %s\n", "", spec.Params)
		}
		return
	}
	if *listAnalyses {
		cli.ListAnalyses(os.Stdout)
		return
	}

	backend, err := setconsensus.ParseBackend(*backendName)
	if err != nil {
		fatal(err)
	}

	if *analyze != "" {
		if *workload != "" || *inputsFlag != "" || *crashFlag != "" {
			fatal(fmt.Errorf("-analyze and -workload/-inputs/-crash are mutually exclusive"))
		}
		var rep *setconsensus.AnalysisReport
		var err error
		if *server != "" {
			rep, err = cli.RunAnalysisRemote(ctx, os.Stdout, *server, *analyze, backend, *k)
		} else {
			rep, err = cli.RunAnalysis(ctx, os.Stdout, *analyze, backend, *k)
		}
		if err != nil {
			fatalRun(err)
		}
		// Same exit contract as the sweep modes: 1 = the paper's claim
		// failed to verify (a beating deviation or an uncertified node),
		// 2 = bad invocation.
		if !rep.OK() {
			fmt.Fprintf(os.Stderr, "analysis: FAILED: %s\n", rep)
			os.Exit(1)
		}
		return
	}
	refs := cli.SplitList(*protoNames)
	if len(refs) == 0 {
		fatal(fmt.Errorf("need -protocol"))
	}
	if *coordinate && *workload == "" {
		fatal(fmt.Errorf("-coordinate requires -workload"))
	}
	if *chaosSpec != "" && !*coordinate {
		fatal(fmt.Errorf("-chaos injects faults into coordinated sweeps; it requires -coordinate"))
	}

	if *workload != "" {
		if *inputsFlag != "" || *crashFlag != "" {
			fatal(fmt.Errorf("-workload and -inputs/-crash are mutually exclusive"))
		}
		var sum *setconsensus.Summary
		var err error
		switch {
		case *coordinate:
			if *server != "" {
				fatal(fmt.Errorf("-coordinate runs the coordinator here; enlist servers with -join, not -server"))
			}
			opts := cli.CoordinateOpts{
				Workers:    *workers,
				Join:       cli.SplitList(*join),
				Checkpoint: *checkpoint,
				RangeSize:  *rangeSize,
				Lease:      *lease,
				Chaos:      *chaosSpec,
			}
			if opts.Workers == 0 && len(opts.Join) == 0 {
				opts.Workers = 2
			}
			sum, err = cli.CoordinateWorkload(ctx, os.Stdout, *workload, refs, backend, *k, *t, opts)
		case *server != "":
			sum, err = cli.SweepWorkloadRemote(ctx, os.Stdout, *server, *workload, refs, backend, *k, *t)
		default:
			sum, err = cli.SweepWorkload(ctx, os.Stdout, *workload, refs, backend, *k, *t)
		}
		if err != nil {
			fatalRun(err)
		}
		// Same exit contract as single-run mode: 1 = task violation
		// (including a correct process never deciding), 2 = bad
		// invocation.
		if v, u := sum.Violations(), sum.Undecided(); v > 0 || u > 0 {
			fmt.Fprintf(os.Stderr, "verification: FAILED: %d task violations, %d undecided runs\n", v, u)
			os.Exit(1)
		}
		return
	}

	if len(refs) > 1 {
		fatal(fmt.Errorf("single-run mode takes one -protocol (got %d); use -workload to sweep", len(refs)))
	}
	if *server != "" {
		fatal(fmt.Errorf("-server submits -workload sweeps and -analyze jobs; single runs execute locally"))
	}
	adv, tBound, err := buildAdversary(*inputsFlag, *crashFlag, *t)
	if err != nil {
		fatal(err)
	}
	if err := runSingle(ctx, refs[0], adv, backend, *k, tBound); err != nil {
		fatalRun(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}

// fatalRun reports a runtime failure, distinguishing cancellation
// (SIGINT/SIGTERM/-timeout → 130) from bad invocations (2).
func fatalRun(err error) {
	fmt.Fprintln(os.Stderr, err)
	if cli.Cancelled(err) {
		os.Exit(cli.ExitCancelled)
	}
	os.Exit(2)
}

// runSingle executes one protocol against one adversary and prints the
// decision table.
func runSingle(ctx context.Context, ref string, adv *setconsensus.Adversary, backend setconsensus.BackendKind, k, tBound int) error {
	spec, err := setconsensus.LookupProtocol(ref)
	if err != nil {
		return err
	}
	eng := setconsensus.New(
		setconsensus.WithBackend(backend),
		setconsensus.WithCrashBound(tBound),
		setconsensus.WithDegree(k),
	)
	res, err := eng.Run(ctx, spec.Name, adv)
	if err != nil {
		return err
	}

	fmt.Printf("adversary: %s\n", adv)
	fmt.Printf("protocol:  %s on %s backend (n=%d, t=%d, k=%d)\n\n",
		res.Protocol, res.Backend, res.Params.N, res.Params.T, res.Params.K)
	fmt.Println("proc  decision  time")
	for i := 0; i < adv.N(); i++ {
		d := res.Decisions[i]
		status := ""
		if adv.Pattern.Faulty(i) {
			status = fmt.Sprintf("  (crashes in round %d)", adv.Pattern.CrashRound(i))
		}
		if d == nil {
			fmt.Printf("%4d  %8s  %4s%s\n", i, "⊥", "-", status)
		} else {
			fmt.Printf("%4d  %8d  %4d%s\n", i, d.Value, d.Time, status)
		}
	}
	if res.Bits != nil {
		fmt.Printf("\nbandwidth: max %d bits on any link, %d bits total\n", res.Bits.MaxPair, res.Bits.Total)
	}
	task := spec.Task(k)
	if err := res.Verify(task); err != nil {
		fmt.Printf("\nverification: FAILED: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\nverification: %s satisfied\n", task)
	return nil
}

func buildAdversary(inputs, crash string, t int) (*setconsensus.Adversary, int, error) {
	if inputs == "" {
		return nil, 0, fmt.Errorf("need -inputs (or -workload)")
	}
	var vals []int
	for _, f := range strings.Split(inputs, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, 0, fmt.Errorf("bad input %q: %v", f, err)
		}
		vals = append(vals, v)
	}
	n := len(vals)
	b := setconsensus.NewBuilder(n, 0).Inputs(vals...)
	if crash != "" {
		for _, spec := range strings.Split(crash, ";") {
			if err := applyCrash(b, spec, n); err != nil {
				return nil, 0, err
			}
		}
	}
	adv, err := b.Build()
	if err != nil {
		return nil, 0, err
	}
	if t < 0 {
		t = n - 1
	}
	return adv, t, nil
}

func applyCrash(b *setconsensus.Builder, spec string, n int) error {
	at := strings.SplitN(spec, "@", 2)
	if len(at) != 2 {
		return fmt.Errorf("bad crash spec %q (want p@r:recv)", spec)
	}
	colon := strings.SplitN(at[1], ":", 2)
	if len(colon) != 2 {
		return fmt.Errorf("bad crash spec %q (want p@r:recv)", spec)
	}
	p, err := strconv.Atoi(strings.TrimSpace(at[0]))
	if err != nil {
		return fmt.Errorf("bad process in %q", spec)
	}
	r, err := strconv.Atoi(strings.TrimSpace(colon[0]))
	if err != nil {
		return fmt.Errorf("bad round in %q", spec)
	}
	recv := strings.TrimSpace(colon[1])
	switch recv {
	case "":
		b.CrashSilent(p, r)
	case "*":
		b.CrashSendingToAll(p, r)
	default:
		var rs []int
		for _, f := range strings.Split(recv, ",") {
			q, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || q < 0 || q >= n {
				return fmt.Errorf("bad receiver %q in %q", f, spec)
			}
			rs = append(rs, q)
		}
		b.CrashSendingTo(p, r, rs...)
	}
	return nil
}
