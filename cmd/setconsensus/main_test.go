package main

import (
	"context"
	"io"
	"strings"
	"testing"

	setconsensus "setconsensus"
	"setconsensus/internal/cli"
)

func TestBuildAdversaryFromFlags(t *testing.T) {
	adv, tb, err := buildAdversary("0,1,1,1", "0@1:1;2@2:*", -1)
	if err != nil {
		t.Fatal(err)
	}
	if adv.N() != 4 || tb != 3 {
		t.Fatalf("n=%d t=%d", adv.N(), tb)
	}
	if adv.Inputs[0] != 0 || adv.Inputs[1] != 1 {
		t.Errorf("inputs = %v", adv.Inputs)
	}
	if adv.Pattern.CrashRound(0) != 1 || adv.Pattern.CrashRound(2) != 2 {
		t.Errorf("crash rounds wrong: %s", adv.Pattern)
	}
	if !adv.Pattern.Delivered(0, 1, 1) || adv.Pattern.Delivered(0, 3, 1) {
		t.Error("delivery set of 0 wrong")
	}
	if !adv.Pattern.Delivered(2, 0, 2) {
		t.Error("complete send of 2 wrong")
	}
}

func TestBuildAdversarySilent(t *testing.T) {
	adv, _, err := buildAdversary("1,1,1", "1@1:", 2)
	if err != nil {
		t.Fatal(err)
	}
	if adv.Pattern.Delivered(1, 0, 1) || adv.Pattern.Delivered(1, 2, 1) {
		t.Error("silent crash must deliver nothing")
	}
}

// TestWorkloadModeReplacesCollapseFlags pins the -workload replacement
// for the old hand-rolled -collapse-k/-collapse-r construction: the
// collapse family is now selected by name, with the same shape.
func TestWorkloadModeReplacesCollapseFlags(t *testing.T) {
	src, err := setconsensus.ParseWorkload("collapse:k=2,r=3")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for adv := range src.Seq() {
		n++
		if adv.N() != 12 {
			t.Fatalf("collapse k=2 r=3: n=%d, want 12", adv.N())
		}
	}
	if n != 1 {
		t.Fatalf("pinned collapse yielded %d adversaries", n)
	}
	sum, err := cli.SweepWorkload(context.Background(), io.Discard, "collapse:k=2,r=2..4", []string{"upmin", "optmin"}, setconsensus.Oracle, 2, -1)
	if err != nil {
		t.Fatalf("SweepWorkload: %v", err)
	}
	if sum.Adversaries() != 3 || sum.Violations() != 0 {
		t.Fatalf("collapse r=2..4 sweep: %d adversaries, %d violations", sum.Adversaries(), sum.Violations())
	}
	if _, err := cli.SweepWorkload(context.Background(), io.Discard, "nonsense", []string{"optmin"}, setconsensus.Oracle, 1, -1); err == nil {
		t.Error("unknown workload must error")
	}
}

func TestBuildAdversaryErrors(t *testing.T) {
	cases := []struct{ inputs, crash string }{
		{"", ""},             // no inputs and no workload
		{"a,b", ""},          // junk values
		{"1,1", "0@x:"},      // junk round
		{"1,1", "0:1"},       // missing @
		{"1,1", "0@1"},       // missing :
		{"1,1", "0@1:9"},     // receiver out of range
		{"1,1", "zz@1:"},     // junk process
		{"1,1", "0@1:;0@2:"}, // double crash
	}
	for _, c := range cases {
		if _, _, err := buildAdversary(c.inputs, c.crash, -1); err == nil {
			t.Errorf("inputs=%q crash=%q must error", c.inputs, c.crash)
		}
	}
}

// TestRegistryResolvesAllCLINames pins the CLI's protocol surface: every
// historical -protocol value resolves in the registry with the right
// uniformity, and constructs.
func TestRegistryResolvesAllCLINames(t *testing.T) {
	p := setconsensus.Params{N: 4, T: 2, K: 2}
	uniformByName := map[string]bool{
		"optmin": false, "upmin": true, "floodmin": true,
		"earlycount": false, "u-earlycount": true, "perround": false, "u-perround": true,
	}
	for name, wantUniform := range uniformByName {
		spec, err := setconsensus.LookupProtocol(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if spec.Uniform != wantUniform {
			t.Errorf("%s: uniform=%v", name, spec.Uniform)
		}
		proto, err := spec.New(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if proto.Name() == "" {
			t.Errorf("%s: empty protocol name", name)
		}
	}
	if _, err := setconsensus.LookupProtocol("nonsense"); err == nil {
		t.Error("unknown protocol must error")
	}
	if _, err := setconsensus.LookupProtocol("OPTMIN"); err != nil {
		t.Error("protocol lookup should be case-insensitive")
	}
	if !strings.Contains(strings.ToLower("Optmin"), "optmin") {
		t.Fatal("sanity")
	}
}
