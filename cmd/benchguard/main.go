// Command benchguard compares `go test -bench` output against a labeled
// entry of BENCH_baseline.json and fails on ns/op regressions beyond a
// tolerance. It is the CI regression gate behind the committed benchmark
// trajectory: benchstat renders the human-readable comparison (feed it
// the synthetic old-style file from -emit-old), benchguard enforces the
// threshold.
//
//	benchguard -baseline BENCH_baseline.json -label pr4_post \
//	    -input bench.txt -tolerance 0.20 \
//	    -require BenchmarkSweepSource,BenchmarkGraphBuilderReuse
//
// The comparison is deliberately soft: benchmarks present in the input
// but absent from the baseline entry (or vice versa) are reported and
// skipped, allocation counts are informational, and only a ns/op
// regression beyond the tolerance fails the run. Across-machine noise is
// why the default tolerance is generous; -require guards against the
// silent failure mode of a bench regex matching nothing.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// baselineFile mirrors the committed BENCH_baseline.json shape.
type baselineFile struct {
	History []struct {
		Label      string               `json:"label"`
		Benchmarks map[string]baseEntry `json:"benchmarks"`
	} `json:"history"`
}

type baseEntry struct {
	NsOp     float64 `json:"ns_op"`
	BOp      float64 `json:"b_op"`
	AllocsOp float64 `json:"allocs_op"`
}

// sample is one parsed benchmark line.
type sample struct {
	nsOp     float64
	allocsOp float64
	hasAlloc bool
}

var benchSuffix = regexp.MustCompile(`-\d+$`)

// parseBench reads `go test -bench` output and returns, per benchmark
// name (GOMAXPROCS suffix stripped), the minimum ns/op over its samples
// — the steadiest statistic for a regression gate — and the matching
// allocs/op.
func parseBench(r io.Reader) (map[string]sample, error) {
	best := make(map[string]sample)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		name := benchSuffix.ReplaceAllString(f[0], "")
		s := sample{nsOp: -1}
		for i := 2; i < len(f); i++ {
			switch f[i] {
			case "ns/op":
				v, err := strconv.ParseFloat(f[i-1], 64)
				if err != nil {
					return nil, fmt.Errorf("benchguard: bad ns/op in %q", sc.Text())
				}
				s.nsOp = v
			case "allocs/op":
				v, err := strconv.ParseFloat(f[i-1], 64)
				if err != nil {
					return nil, fmt.Errorf("benchguard: bad allocs/op in %q", sc.Text())
				}
				s.allocsOp, s.hasAlloc = v, true
			}
		}
		if s.nsOp < 0 {
			continue
		}
		if prev, ok := best[name]; !ok || s.nsOp < prev.nsOp {
			best[name] = s
		}
	}
	return best, sc.Err()
}

// loadBaseline returns the benchmarks of the labeled history entry.
func loadBaseline(path, label string) (map[string]baseEntry, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf baselineFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		return nil, fmt.Errorf("benchguard: %s: %w", path, err)
	}
	for _, h := range bf.History {
		if h.Label == label {
			return h.Benchmarks, nil
		}
	}
	return nil, fmt.Errorf("benchguard: no history entry labeled %q in %s", label, path)
}

// emitOld writes the baseline entry as synthetic `go test -bench` output
// so benchstat can diff it against a fresh run.
func emitOld(w io.Writer, base map[string]baseEntry) {
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := base[name]
		// Package-qualified names ("internal/knowledge.BenchmarkX") are
		// trajectory bookkeeping, not comparable lines.
		if strings.Contains(name, ".") {
			continue
		}
		fmt.Fprintf(w, "%s 1 %g ns/op %g B/op %g allocs/op\n", name, b.NsOp, b.BOp, b.AllocsOp)
	}
}

// guard compares and reports; it returns the names that regressed beyond
// the tolerance.
func guard(w io.Writer, base map[string]baseEntry, got map[string]sample, tolerance float64) []string {
	names := make([]string, 0, len(got))
	for name := range got {
		names = append(names, name)
	}
	sort.Strings(names)
	var regressed []string
	for _, name := range names {
		b, ok := base[name]
		if !ok {
			fmt.Fprintf(w, "%-40s %12.0f ns/op  (not in baseline, skipped)\n", name, got[name].nsOp)
			continue
		}
		s := got[name]
		ratio := s.nsOp / b.NsOp
		verdict := "ok"
		if ratio > 1+tolerance {
			verdict = "REGRESSION"
			regressed = append(regressed, name)
		}
		fmt.Fprintf(w, "%-40s %12.0f ns/op  vs baseline %12.0f  (%+.1f%%)  %s\n",
			name, s.nsOp, b.NsOp, (ratio-1)*100, verdict)
		if s.hasAlloc && b.AllocsOp > 0 && s.allocsOp > b.AllocsOp {
			fmt.Fprintf(w, "%-40s %12.0f allocs/op vs baseline %.0f (informational)\n", "", s.allocsOp, b.AllocsOp)
		}
	}
	return regressed
}

func run() error {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "path to the committed baseline trajectory")
	label := flag.String("label", "", "history entry to compare against")
	input := flag.String("input", "", "go test -bench output to check (omit with -emit-old)")
	tolerance := flag.Float64("tolerance", 0.20, "allowed fractional ns/op regression")
	require := flag.String("require", "", "comma-separated benchmarks that must appear in the input")
	emitOldPath := flag.String("emit-old", "", "write the baseline entry as synthetic bench output for benchstat, then exit")
	flag.Parse()

	if *label == "" {
		return fmt.Errorf("benchguard: -label is required")
	}
	base, err := loadBaseline(*baselinePath, *label)
	if err != nil {
		return err
	}
	if *emitOldPath != "" {
		f, err := os.Create(*emitOldPath)
		if err != nil {
			return err
		}
		emitOld(f, base)
		return f.Close()
	}
	if *input == "" {
		return fmt.Errorf("benchguard: -input is required (or use -emit-old)")
	}
	f, err := os.Open(*input)
	if err != nil {
		return err
	}
	defer f.Close()
	got, err := parseBench(f)
	if err != nil {
		return err
	}
	if *require != "" {
		for _, name := range strings.Split(*require, ",") {
			if _, ok := got[strings.TrimSpace(name)]; !ok {
				return fmt.Errorf("benchguard: required benchmark %q missing from %s (bench regex matched nothing?)", name, *input)
			}
		}
	}
	if regressed := guard(os.Stdout, base, got, *tolerance); len(regressed) > 0 {
		return fmt.Errorf("benchguard: ns/op regression beyond %.0f%% in: %s",
			*tolerance*100, strings.Join(regressed, ", "))
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
