package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: setconsensus
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSweepSource-8   	    2420	    991168 ns/op	  142354 B/op	    1636 allocs/op
BenchmarkSweepSource-8   	    2400	    995001 ns/op	  142354 B/op	    1636 allocs/op
BenchmarkGraphBuilderReuse 	  448645	      5620 ns/op	       0 B/op	       0 allocs/op
PASS
`

func TestParseBenchTakesMinAndStripsSuffix(t *testing.T) {
	got, err := parseBench(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	s, ok := got["BenchmarkSweepSource"]
	if !ok {
		t.Fatalf("suffix not stripped: %v", got)
	}
	if s.nsOp != 991168 {
		t.Fatalf("min ns/op = %v, want 991168", s.nsOp)
	}
	if !s.hasAlloc || s.allocsOp != 1636 {
		t.Fatalf("allocs/op = %v", s.allocsOp)
	}
	if g := got["BenchmarkGraphBuilderReuse"]; g.nsOp != 5620 {
		t.Fatalf("unsuffixed benchmark ns/op = %v", g.nsOp)
	}
}

func writeBaseline(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "baseline.json")
	const body = `{
	  "history": [
	    {"label": "old", "benchmarks": {"BenchmarkSweepSource": {"ns_op": 3434075, "b_op": 1583885, "allocs_op": 29308}}},
	    {"label": "new", "benchmarks": {
	      "BenchmarkSweepSource": {"ns_op": 1000000, "b_op": 142354, "allocs_op": 1636},
	      "BenchmarkGraphBuilderReuse": {"ns_op": 5600, "b_op": 0, "allocs_op": 0},
	      "internal/knowledge.BenchmarkBuildArena": {"ns_op": 20000, "b_op": 1, "allocs_op": 1}
	    }}
	  ]
	}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadBaselineByLabel(t *testing.T) {
	path := writeBaseline(t)
	base, err := loadBaseline(path, "new")
	if err != nil {
		t.Fatal(err)
	}
	if base["BenchmarkSweepSource"].NsOp != 1000000 {
		t.Fatalf("wrong entry loaded: %+v", base)
	}
	if _, err := loadBaseline(path, "missing"); err == nil {
		t.Fatal("unknown label must error")
	}
}

func TestGuardToleranceBoundary(t *testing.T) {
	path := writeBaseline(t)
	base, err := loadBaseline(path, "new")
	if err != nil {
		t.Fatal(err)
	}
	within := map[string]sample{
		"BenchmarkSweepSource":       {nsOp: 1_150_000}, // +15% < 20%: fine
		"BenchmarkGraphBuilderReuse": {nsOp: 5000},
		"BenchmarkUnknown":           {nsOp: 1}, // not in baseline: skipped
	}
	if regressed := guard(os.Stderr, base, within, 0.20); len(regressed) != 0 {
		t.Fatalf("within-tolerance run flagged: %v", regressed)
	}
	over := map[string]sample{
		"BenchmarkSweepSource": {nsOp: 1_250_000}, // +25% > 20%
	}
	regressed := guard(os.Stderr, base, over, 0.20)
	if len(regressed) != 1 || regressed[0] != "BenchmarkSweepSource" {
		t.Fatalf("regression not flagged: %v", regressed)
	}
}

func TestEmitOldSkipsQualifiedNames(t *testing.T) {
	path := writeBaseline(t)
	base, err := loadBaseline(path, "new")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	emitOld(&sb, base)
	out := sb.String()
	if !strings.Contains(out, "BenchmarkSweepSource 1 1e+06 ns/op") {
		t.Fatalf("missing synthetic line:\n%s", out)
	}
	if strings.Contains(out, "internal/knowledge") {
		t.Fatalf("package-qualified bookkeeping leaked into benchstat input:\n%s", out)
	}
	// Round-trip: benchstat-style files are also parseable by our own
	// reader, so the gate and the report read the same numbers.
	parsed, err := parseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if parsed["BenchmarkSweepSource"].nsOp != 1000000 {
		t.Fatalf("round-trip lost ns/op: %+v", parsed)
	}
}
