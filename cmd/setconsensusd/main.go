// Command setconsensusd is the long-running job service over the Engine:
// it accepts sweep and analysis jobs over HTTP/JSON, runs them on a
// bounded queue with per-job deadlines and a configurable worker pool,
// streams incremental progress snapshots over SSE, and serves finished
// Summary/AnalysisReport JSON from a bounded in-memory result store.
//
// Endpoints (see the README's Service section for payload shapes):
//
//	POST   /v1/jobs             submit {kind, refs, workload|analysis, params}
//	GET    /v1/jobs             list retained jobs
//	GET    /v1/jobs/{id}        job status + result when finished
//	GET    /v1/jobs/{id}/events SSE progress stream (terminal event closes it)
//	DELETE /v1/jobs/{id}        cancel an active job / remove a finished one
//	GET    /v1/stats            service counters (queue depth, runs/s, ...)
//	GET    /metrics             the same counters in Prometheus text exposition
//	GET    /healthz             liveness
//	GET    /readyz              readiness: 503 while draining or shedding over -memlimit-soft
//	GET    /debug/vars          expvar (includes the "setconsensusd" map)
//	GET    /debug/pprof/        pprof profiles
//
// Sweep jobs may carry an offset window ({"offset": O, "limit": L}) to
// run only the range [O, O+L) of the workload's enumeration order —
// the work unit `setconsensus -coordinate -join` fans out across
// servers. Range-scoped jobs are admitted against -max-space by their
// window, not the full space, so a fleet can collectively sweep a
// space far beyond any single server's per-job budget.
//
// Every budget is a flag: worker count, queue depth, per-job deadline,
// max adversary space per job, retained results. SIGINT/SIGTERM drain
// gracefully — submissions are rejected immediately, queued jobs are
// cancelled, running jobs get -drain-grace to finish before their
// contexts are cancelled.
//
// Example:
//
//	setconsensusd -addr :8372 -workers 2 -deadline 10m
//	curl -s localhost:8372/v1/jobs -d '{"kind":"sweep","refs":["optmin"],"workload":"space:n=4,t=2,r=2,v=0..1"}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime/debug"
	"syscall"
	"time"

	"setconsensus/internal/chaos"
	"setconsensus/internal/govern"
	"setconsensus/internal/service"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatal(err)
	}
}

func run() error {
	def := service.Default()
	addr := flag.String("addr", def.Addr, "listen address")
	workers := flag.Int("workers", def.Workers, "concurrent jobs")
	queue := flag.Int("queue", def.QueueDepth, "queued-job bound")
	maxSpace := flag.Int("max-space", def.MaxSpaceSize, "per-job adversary-space budget (enumeration upper bound)")
	deadline := flag.Duration("deadline", def.JobDeadline, "hard per-job deadline")
	results := flag.Int("results", def.ResultBound, "retained finished jobs")
	parallelism := flag.Int("parallelism", def.EngineParallelism, "per-job engine worker-pool size")
	progressEvery := flag.Duration("progress-interval", def.ProgressInterval, "progress snapshot period")
	drainGrace := flag.Duration("drain-grace", 30*time.Second, "how long running jobs may finish after SIGTERM")
	memLimit := flag.String("memlimit", "", "hard memory ceiling, e.g. 2GiB: admissions over it are rejected 429, and the Go runtime memory limit (GOMEMLIMIT) is set to match; empty = unlimited")
	memSoft := flag.String("memlimit-soft", "", "soft memory ceiling, e.g. 1500MiB: over it the server stops recycling pooled buffers, sheds submissions 429, and flips /readyz to 503; empty = unlimited")
	progressDeadline := flag.Duration("progress-deadline", 0, "stuck-job watchdog: cancel a running job whose progress has not advanced within this duration (0 = off)")
	chaosSpec := flag.String("chaos", "", "fault-injection spec, e.g. \"panic#1\" (panic inside the first job's worker); test/smoke surface")
	flag.Parse()

	hardMem, err := govern.ParseBytes(*memLimit)
	if err != nil {
		return fmt.Errorf("setconsensusd: -memlimit: %w", err)
	}
	softMem, err := govern.ParseBytes(*memSoft)
	if err != nil {
		return fmt.Errorf("setconsensusd: -memlimit-soft: %w", err)
	}
	var injector chaos.Injector
	if *chaosSpec != "" {
		inj, err := chaos.ParseSpec(*chaosSpec)
		if err != nil {
			return err
		}
		injector = inj
	}

	p := service.Params{
		Addr:              *addr,
		Workers:           *workers,
		QueueDepth:        *queue,
		MaxSpaceSize:      *maxSpace,
		JobDeadline:       *deadline,
		ResultBound:       *results,
		EngineParallelism: *parallelism,
		ProgressInterval:  *progressEvery,
		SoftMemBytes:      softMem,
		HardMemBytes:      hardMem,
		ProgressDeadline:  *progressDeadline,
		Chaos:             injector,
	}
	srv, err := service.New(p)
	if err != nil {
		return err
	}
	if hardMem > 0 {
		// The admission ceiling meters arena/pool bytes; the runtime
		// limit is the GC-level backstop covering everything else the
		// process allocates. Same number, two enforcement layers.
		debug.SetMemoryLimit(hardMem)
	}
	srv.Start()

	hs := &http.Server{Addr: p.Addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("setconsensusd: listening on %s (workers=%d queue=%d deadline=%v max-space=%d)",
			p.Addr, p.Workers, p.QueueDepth, p.JobDeadline, p.MaxSpaceSize)
		if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	log.Printf("setconsensusd: draining (grace %v)", *drainGrace)
	grace, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	if err := srv.Shutdown(grace); err != nil {
		log.Printf("setconsensusd: drain grace expired; running jobs cancelled (%v)", err)
	}
	// Close the listener after the drain so in-flight SSE streams see
	// their terminal events.
	httpGrace, hcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer hcancel()
	if err := hs.Shutdown(httpGrace); err != nil {
		return fmt.Errorf("setconsensusd: http shutdown: %w", err)
	}
	log.Printf("setconsensusd: drained")
	return nil
}
