package setconsensus_test

import (
	"context"

	"testing"

	setconsensus "setconsensus"
)

func TestFacadeQuickstart(t *testing.T) {
	adv := setconsensus.NewBuilder(5, 2).Input(0, 0).MustBuild()
	proto, err := setconsensus.NewOptmin(setconsensus.Params{N: 5, T: 2, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	res := setconsensus.Run(proto, adv)
	if err := setconsensus.Verify(res, setconsensus.Task{K: 2}); err != nil {
		t.Fatal(err)
	}
	if d := res.Decisions[0]; d == nil || d.Value != 0 || d.Time != 0 {
		t.Fatalf("low holder: %+v", d)
	}
}

func TestFacadeUniformAndBaselines(t *testing.T) {
	p := setconsensus.Params{N: 6, T: 3, K: 2}
	adv := setconsensus.NewBuilder(6, 2).MustBuild()
	u, err := setconsensus.NewUPmin(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := setconsensus.Verify(setconsensus.Run(u, adv), setconsensus.Task{K: 2, Uniform: true}); err != nil {
		t.Fatal(err)
	}
	for _, kind := range []setconsensus.BaselineKind{
		setconsensus.FloodMin, setconsensus.EarlyCount, setconsensus.UEarlyCount,
		setconsensus.PerRound, setconsensus.UPerRound,
	} {
		b, err := setconsensus.NewBaseline(kind, p)
		if err != nil {
			t.Fatal(err)
		}
		task := setconsensus.Task{K: 2, Uniform: kind.Uniform()}
		if err := setconsensus.Verify(setconsensus.Run(b, adv), task); err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
	}
}

func TestFacadeFamiliesAndKnowledge(t *testing.T) {
	adv, err := setconsensus.HiddenPath(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := setconsensus.NewGraph(adv, 2)
	if hc := g.HiddenCapacity(0, 2); hc < 1 {
		t.Fatalf("HC = %d", hc)
	}
	chains, err := setconsensus.HiddenChains(12, 3, 2, []int{3, 3, 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	gc := setconsensus.NewGraph(chains, 2)
	cert, err := setconsensus.CannotDecide(context.Background(), gc, 0, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cert.Forced) != 3 {
		t.Fatalf("certificate: %d forced witnesses", len(cert.Forced))
	}
}

func TestFacadeCollapseAndWire(t *testing.T) {
	cp := setconsensus.CollapseParams{K: 2, R: 2, ExtraCorrect: 3}
	adv, err := setconsensus.Collapse(cp)
	if err != nil {
		t.Fatal(err)
	}
	p := setconsensus.Params{N: adv.N(), T: setconsensus.CollapseT(cp), K: 2}
	res, err := setconsensus.RunWire(p, adv)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxPairBits() == 0 {
		t.Fatal("no bits accounted")
	}
}

func TestFacadeExperiment(t *testing.T) {
	tbl, err := setconsensus.Experiment("E1")
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("empty experiment table")
	}
}
