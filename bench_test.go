package setconsensus_test

// One benchmark per experiment (DESIGN.md §4) plus the ablation benches
// of DESIGN.md §7. Each BenchmarkEN regenerates the full table for its
// figure/theorem; the per-operation time is the cost of reproducing that
// piece of the paper end to end.

import (
	"context"
	"testing"

	setconsensus "setconsensus"
	"setconsensus/internal/core"
	"setconsensus/internal/experiments"
	"setconsensus/internal/govern"
	"setconsensus/internal/knowledge"
	"setconsensus/internal/model"
	"setconsensus/internal/sim"
	"setconsensus/internal/wire"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1HiddenPath(b *testing.B)       { benchExperiment(b, "E1") }
func BenchmarkE2HiddenCapacity(b *testing.B)   { benchExperiment(b, "E2") }
func BenchmarkE3ForcedDecisions(b *testing.B)  { benchExperiment(b, "E3") }
func BenchmarkE4Separation(b *testing.B)       { benchExperiment(b, "E4") }
func BenchmarkE5Sperner(b *testing.B)          { benchExperiment(b, "E5") }
func BenchmarkE6Bounds(b *testing.B)           { benchExperiment(b, "E6") }
func BenchmarkE7Unbeatability(b *testing.B)    { benchExperiment(b, "E7") }
func BenchmarkE8StarConnectivity(b *testing.B) { benchExperiment(b, "E8") }
func BenchmarkE9LastDecider(b *testing.B)      { benchExperiment(b, "E9") }
func BenchmarkE10WireCost(b *testing.B)        { benchExperiment(b, "E10") }

// Ablation: the knowledge-graph hidden-capacity tables (precomputed,
// word-parallel bitsets) vs a naive per-query rescan.
func BenchmarkHCPrecomputed(b *testing.B) {
	adv, err := model.Collapse(model.CollapseParams{K: 3, R: 6, ExtraCorrect: 4})
	if err != nil {
		b.Fatal(err)
	}
	g := knowledge.New(adv, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for p := 0; p < adv.N(); p++ {
			g.HiddenCapacity(p, 8)
		}
	}
}

func BenchmarkHCNaive(b *testing.B) {
	adv, err := model.Collapse(model.CollapseParams{K: 3, R: 6, ExtraCorrect: 4})
	if err != nil {
		b.Fatal(err)
	}
	g := knowledge.New(adv, 8)
	naive := func(i, m int) int {
		hc := adv.N()
		for l := 0; l <= m; l++ {
			c := 0
			for j := 0; j < adv.N(); j++ {
				if g.Hidden(i, m, j, l) {
					c++
				}
			}
			if c < hc {
				hc = c
			}
		}
		return hc
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for p := 0; p < adv.N(); p++ {
			naive(p, 8)
		}
	}
}

// Graph construction: the arena-backed knowledge.New on a mid-size
// collapse adversary. Allocations are the headline number — the build is
// a handful of slab allocations regardless of n and horizon.
func BenchmarkGraphNew(b *testing.B) {
	adv, err := model.Collapse(model.CollapseParams{K: 3, R: 6, ExtraCorrect: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		knowledge.New(adv, 8)
	}
}

// Graph construction through one Builder with Release between builds:
// the steady state of an aggregating sweep shard, where the arena is
// recycled and the build allocates (almost) nothing. The alternating
// adversaries share a pattern but differ in two inputs, pinning the
// measurement to the revive path — an identical vector would ride the
// zero-diff skip and a single diff the patch kernel, both far cheaper
// than the value-layer refill this benchmark tracks.
func BenchmarkGraphBuilderReuse(b *testing.B) {
	adv, err := model.Collapse(model.CollapseParams{K: 3, R: 6, ExtraCorrect: 4})
	if err != nil {
		b.Fatal(err)
	}
	inputs := make([]model.Value, len(adv.Inputs))
	copy(inputs, adv.Inputs)
	inputs[0] ^= 1
	inputs[1] ^= 1
	other := &model.Adversary{Inputs: inputs, Pattern: adv.Pattern}
	builder := knowledge.NewBuilder()
	builder.Build(adv, 8).Release()
	pair := [2]*model.Adversary{other, adv}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		builder.Build(pair[i&1], 8).Release()
	}
}

// View fingerprinting: the binary encoding over every process at the
// horizon, the interning workload of the unbeatability search.
func BenchmarkFingerprint(b *testing.B) {
	adv, err := model.Collapse(model.CollapseParams{K: 3, R: 6, ExtraCorrect: 4})
	if err != nil {
		b.Fatal(err)
	}
	g := knowledge.New(adv, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for p := 0; p < adv.N(); p++ {
			g.Fingerprint(p, 8)
		}
	}
}

// Adversary fingerprinting: the binary graph-cache key in the Engine.
func BenchmarkAdversaryFingerprint(b *testing.B) {
	adv, err := model.Collapse(model.CollapseParams{K: 3, R: 6, ExtraCorrect: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adv.Fingerprint()
	}
}

// Ablation: full-information oracle vs compact wire protocol on the same
// run (decision-time-identical; the wire pays message handling, the
// oracle pays view union).
func BenchmarkOracleOptmin(b *testing.B) {
	cp := model.CollapseParams{K: 3, R: 5, ExtraCorrect: 4}
	adv, err := model.Collapse(cp)
	if err != nil {
		b.Fatal(err)
	}
	proto := core.MustOptmin(core.Params{N: adv.N(), T: model.CollapseT(cp), K: 3})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(proto, adv)
	}
}

func BenchmarkWireOptmin(b *testing.B) {
	cp := model.CollapseParams{K: 3, R: 5, ExtraCorrect: 4}
	adv, err := model.Collapse(cp)
	if err != nil {
		b.Fatal(err)
	}
	p := core.Params{N: adv.N(), T: model.CollapseT(cp), K: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wire.Run(wire.RuleOptmin, p, adv); err != nil {
			b.Fatal(err)
		}
	}
}

// Sweep ablation: Engine.Sweep shares one knowledge graph per adversary
// across all protocols; the naive loop recomputes the graph for every
// (protocol, adversary) pair. The gap is the graph-sharing win that the
// batch facade exists for.
var sweepRefs = []string{
	"optmin", "upmin", "floodmin", "earlycount", "u-earlycount", "perround", "u-perround",
}

func sweepAdversary(b *testing.B) (*setconsensus.Adversary, int) {
	b.Helper()
	cp := model.CollapseParams{K: 3, R: 6, ExtraCorrect: 4}
	adv, err := model.Collapse(cp)
	if err != nil {
		b.Fatal(err)
	}
	return adv, model.CollapseT(cp)
}

func BenchmarkSweepSharedGraph(b *testing.B) {
	adv, tb := sweepAdversary(b)
	// Cache off: every iteration pays for exactly one graph, shared by
	// all protocols of the sweep.
	eng := setconsensus.New(
		setconsensus.WithCrashBound(tb),
		setconsensus.WithDegree(3),
		setconsensus.WithGraphCache(0),
		setconsensus.WithParallelism(1),
	)
	ctx := context.Background()
	advs := []*setconsensus.Adversary{adv}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Sweep(ctx, sweepRefs, advs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepNaivePerRunGraphs(b *testing.B) {
	adv, tb := sweepAdversary(b)
	p := core.Params{N: adv.N(), T: tb, K: 3}
	protos := make([]setconsensus.Protocol, len(sweepRefs))
	for i, ref := range sweepRefs {
		proto, err := setconsensus.NewProtocol(ref, p)
		if err != nil {
			b.Fatal(err)
		}
		protos[i] = proto
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, proto := range protos {
			setconsensus.Run(proto, adv) // knowledge.New per run
		}
	}
}

// Source-vs-slice ablation: the same exhaustive space swept through the
// same protocols, once materialized into a slice for Sweep and once
// streamed through SweepSource. The pair is the acceptance gate that the
// constant-memory streaming path costs no throughput.
var sweepSpaceRefs = []string{"optmin", "upmin"}

func sweepSpace() setconsensus.Space {
	return setconsensus.Space{N: 3, T: 2, MaxRound: 2, Values: []int{0, 1}}
}

func sweepSpaceEngine() *setconsensus.Engine {
	// Cache off: both paths pay one fresh graph per adversary, so the
	// comparison isolates the delivery machinery.
	return setconsensus.New(
		setconsensus.WithCrashBound(2),
		setconsensus.WithGraphCache(0),
	)
}

func BenchmarkSweepSlice(b *testing.B) {
	advs, err := sweepSpace().Adversaries()
	if err != nil {
		b.Fatal(err)
	}
	eng := sweepSpaceEngine()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Sweep(ctx, sweepSpaceRefs, advs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepSource(b *testing.B) {
	src, err := setconsensus.SpaceSource(sweepSpace())
	if err != nil {
		b.Fatal(err)
	}
	eng := sweepSpaceEngine()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.SweepSource(ctx, sweepSpaceRefs, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGovernedSweep is BenchmarkSweepSource with a resource
// governor attached (unlimited ceilings, so the retain path stays hot):
// its distance from BenchmarkSweepSource is the whole cost of byte
// metering on the sweep path. The governance acceptance is <2% ns/op
// and zero extra allocations — metering rides the existing ensure/pool
// choke points, it does not add per-run work.
func BenchmarkGovernedSweep(b *testing.B) {
	src, err := setconsensus.SpaceSource(sweepSpace())
	if err != nil {
		b.Fatal(err)
	}
	gov := govern.New(0, 0)
	eng := setconsensus.New(
		setconsensus.WithCrashBound(2),
		setconsensus.WithGraphCache(0),
		setconsensus.WithGovernor(gov),
	)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.SweepSource(ctx, sweepSpaceRefs, src); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if gov.Live() == 0 {
		b.Fatal("governed sweep metered zero bytes — metering is not wired")
	}
}

// Analysis pipeline: the staged deviation search (compile on the pooled
// run path, candidate testing sharded over the worker pool) through
// Engine.Analyze, on the seeded uniform n=4 space whose candidate
// testing is heavy enough to exercise the reworked stage. The
// pre-refactor sequential unbeat.Search on this space is retained as
// internal/unbeat's BenchmarkSearchReference — the ≥3x acceptance
// denominator; BenchmarkAnalyzeSequential isolates what the pipeline
// buys before parallel speedup.
func benchAnalyze(b *testing.B, parallelism int) {
	b.Helper()
	eng := setconsensus.New(setconsensus.WithParallelism(parallelism))
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := eng.Analyze(ctx, "search:upmin:n=4,t=2,r=2,width=2")
		if err != nil {
			b.Fatal(err)
		}
		if rep.Search.Beaten {
			b.Fatal("u-Pmin beaten — analysis broken")
		}
	}
}

func BenchmarkAnalyze(b *testing.B)           { benchAnalyze(b, 4) }
func BenchmarkAnalyzeSequential(b *testing.B) { benchAnalyze(b, 1) }

func BenchmarkSweepCachedGraphs(b *testing.B) {
	adv, tb := sweepAdversary(b)
	// Cache on: after the first iteration the graph is a map hit.
	eng := setconsensus.New(
		setconsensus.WithCrashBound(tb),
		setconsensus.WithDegree(3),
		setconsensus.WithParallelism(1),
	)
	ctx := context.Background()
	advs := []*setconsensus.Adversary{adv}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Sweep(ctx, sweepRefs, advs); err != nil {
			b.Fatal(err)
		}
	}
}
