package setconsensus

import (
	"encoding/json"
	"fmt"

	"setconsensus/internal/check"
	"setconsensus/internal/knowledge"
	"setconsensus/internal/model"
	"setconsensus/internal/sim"
	"setconsensus/internal/wire"
)

// BitStats is the wire backend's bandwidth accounting (Lemma 6: O(n·log n)
// bits per ordered pair over the whole run).
type BitStats struct {
	// MaxPair is the largest total over any ordered pair of processes.
	MaxPair int `json:"maxPair"`
	// Total is the sum over all ordered pairs.
	Total int `json:"total"`
}

// GraphStats summarizes the knowledge graph an oracle run consulted.
type GraphStats struct {
	Horizon int `json:"horizon"`
	// MaxHiddenCapacity is the largest HC⟨i,horizon⟩ over processes
	// active at the horizon (Definition 2) — the obstruction that delays
	// decisions.
	MaxHiddenCapacity int `json:"maxHiddenCapacity"`
}

// Result is the unified outcome of running one protocol against one
// adversary on any backend. It marshals to JSON for batch pipelines;
// backend-specific extras (bit accounting, graph stats) are present only
// when the backend produces them.
type Result struct {
	// Protocol is the runtime name, e.g. "Optmin[2]"; Ref is the registry
	// name it was resolved from, e.g. "optmin".
	Protocol string `json:"protocol"`
	Ref      string `json:"ref"`
	Backend  string `json:"backend"`
	Params   Params `json:"params"`
	// Adversary renders the input vector and failure pattern.
	Adversary string `json:"adversary"`
	// Decisions[i] is nil if process i never decided (it crashed first,
	// or the protocol failed to decide within the horizon).
	Decisions []*Decision `json:"decisions"`
	// MaxCorrectTime is the latest decision time among correct processes,
	// or −1 if some correct process never decided.
	MaxCorrectTime int `json:"maxCorrectTime"`
	// Bits is set by the Wire backend.
	Bits *BitStats `json:"bits,omitempty"`
	// GraphStats is set by the Oracle backend.
	GraphStats *GraphStats `json:"graphStats,omitempty"`

	adv   *model.Adversary
	graph *knowledge.Graph
}

// Adv returns the adversary the run was executed against.
func (r *Result) Adv() *Adversary { return r.adv }

// KnowledgeGraph returns the knowledge graph an Oracle-backend run
// consulted (nil on other backends). Sweep runs against the same
// adversary return the identical graph.
func (r *Result) KnowledgeGraph() *Graph { return r.graph }

// DecisionTime returns the time at which process i decided, or −1.
func (r *Result) DecisionTime(i int) int {
	if i < 0 || i >= len(r.Decisions) || r.Decisions[i] == nil {
		return -1
	}
	return r.Decisions[i].Time
}

// Verify checks the run against a task specification (Decision /
// Validity / (Uniform) k-Agreement, §2.3).
func (r *Result) Verify(task Task) error {
	return check.VerifyRun(r.simResult(), task)
}

// simResult adapts the unified result to the checker's shape.
func (r *Result) simResult() *sim.Result {
	return &sim.Result{
		ProtocolName: r.Protocol,
		Adv:          r.adv,
		Graph:        r.graph,
		Decisions:    r.Decisions,
	}
}

// String renders the decision table compactly.
func (r *Result) String() string {
	s := fmt.Sprintf("%s/%s:", r.Protocol, r.Backend)
	for i, d := range r.Decisions {
		if d == nil {
			s += fmt.Sprintf(" %d:⊥", i)
		} else {
			s += fmt.Sprintf(" %d:%d@%d", i, d.Value, d.Time)
		}
	}
	return s
}

// MarshalJSON is the default marshaling; it exists so the set of exported
// fields above is the documented wire format.
func (r *Result) MarshalJSON() ([]byte, error) {
	type plain Result // strip methods to avoid recursion
	return json.Marshal((*plain)(r))
}

// newResult assembles the backend-independent part of a Result from the
// prepared request: the runtime name, the protocol instance, and the
// memoized adversary-string renderer were all derived (and cached) by
// the Engine, not re-derived per run.
func newResult(req *RunRequest, backend BackendKind, decisions []*Decision) *Result {
	r := &Result{
		Protocol:  req.Name,
		Ref:       req.Ref,
		Backend:   backend.String(),
		Params:    req.Params,
		Decisions: decisions,
		adv:       req.Adv,
	}
	if req.AdvStr != nil {
		r.Adversary = req.AdvStr()
	}
	sr := sim.Result{Adv: req.Adv, Decisions: decisions}
	r.MaxCorrectTime = sr.MaxCorrectDecisionTime()
	return r
}

// newResultInto is newResult into the buffer's pooled Result: identical
// fields, no per-run heap objects. The Adversary display string is
// deliberately never rendered on this path — aggregation reads counts,
// and violation diagnostics render the adversary from Result.Adv()
// directly. The returned pointer is &buf.res; it is overwritten by the
// next RunInto on the same buffer.
func newResultInto(buf *RunBuffer, req *RunRequest, backend BackendKind, decisions []*Decision) *Result {
	r := &buf.res
	*r = Result{
		Protocol:  req.Name,
		Ref:       req.Ref,
		Backend:   backend.String(),
		Params:    req.Params,
		Decisions: decisions,
		adv:       req.Adv,
	}
	buf.simres.ProtocolName, buf.simres.Adv, buf.simres.Graph, buf.simres.Decisions =
		req.Name, req.Adv, nil, decisions
	r.MaxCorrectTime = buf.simres.MaxCorrectDecisionTime()
	return r
}

// graphStats derives the oracle extras from a knowledge graph.
func graphStats(g *knowledge.Graph) *GraphStats {
	gs := &GraphStats{Horizon: g.Horizon}
	for i := 0; i < g.Adv.N(); i++ {
		if !g.Active(i, g.Horizon) {
			continue
		}
		if hc := g.HiddenCapacity(i, g.Horizon); hc > gs.MaxHiddenCapacity {
			gs.MaxHiddenCapacity = hc
		}
	}
	return gs
}

// bitStatsInto derives the wire extras from the compact runner's
// accounting into dst, so the pooled run path reuses one BitStats.
func bitStatsInto(dst *BitStats, res *wire.Result) {
	*dst = BitStats{MaxPair: res.MaxPairBits()}
	for _, row := range res.BitsSent {
		for _, b := range row {
			dst.Total += b
		}
	}
}
