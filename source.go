package setconsensus

import (
	"fmt"
	"iter"
	"math/rand"

	"setconsensus/internal/model"
)

// Source is the workload side of the public API: a restartable,
// deterministic stream of adversaries. Where protocols are selected by
// name in a Registry, workloads are selected by name in a
// WorkloadRegistry and flow into Engine.SweepSource as Sources, so
// exhaustive or unbounded adversary spaces never have to be materialized
// into a slice.
//
// Implementations must be deterministic: two calls to Seq yield the same
// adversaries in the same order. Count reports the exact stream length
// when it is known without enumeration — exhaustive spaces, whose
// canonical size is only discovered by walking them, report unknown.
type Source interface {
	// Label names the workload for summaries and tables.
	Label() string
	// Seq returns a fresh iterator over the workload. Every call restarts
	// from the beginning.
	Seq() iter.Seq[*Adversary]
	// Count returns the number of adversaries the stream yields, when
	// known without enumeration.
	Count() (n int, known bool)
}

// RangeSeq is the optional Source refinement behind offset-scoped
// sweeps: SeqRange yields the window [offset, offset+limit) of the
// stream without the caller enumerating (and discarding) the prefix.
// SpaceSource implements it by resuming the enumeration mid-stream
// (enum.Space.Range), SliceSource by reslicing; RangeSource falls back
// to skip-by-enumeration for sources that do not implement it. The
// windows must tile: concatenating SeqRange(0, c), SeqRange(c, c), ...
// reproduces Seq exactly.
type RangeSeq interface {
	SeqRange(offset, limit int) iter.Seq[*Adversary]
}

// PatternBlocked is the optional Source refinement behind delta-aware
// chunking: PatternBlock reports the stride (in stream offsets) at which
// the source's failure pattern changes. Within a stride every adversary
// after the first differs from its predecessor in a single input value
// (the enumeration's Gray-code delta order), so sweep executors align
// worker chunk boundaries to multiples of it — full knowledge-graph
// builds then happen only where the pattern changes, and every other
// adversary rides the builder's patch kernel. Sources with no such
// structure report 1 (or simply do not implement the interface).
type PatternBlocked interface {
	PatternBlock() int
}

// rangeSource scopes another source to an offset window — the work unit
// of a coordinated sweep: each worker sweeps one range of the shared
// space and the coordinator merges the partial Summaries.
type rangeSource struct {
	src           Source
	offset, limit int
}

// RangeSource yields the window [offset, offset+limit) of src — at most
// limit adversaries beginning with the offset-th. Sources implementing
// RangeSeq (exhaustive spaces, slices) enter mid-stream; anything else
// pays an enumerate-and-discard skip of the prefix, which is still
// correct because every Source is deterministic and restartable.
// Negative offsets and limits clamp to zero (an empty window, not an
// error: a coordinator may legitimately issue a range past the end of a
// space whose true size it has not discovered yet).
func RangeSource(src Source, offset, limit int) Source {
	if offset < 0 {
		offset = 0
	}
	if limit < 0 {
		limit = 0
	}
	return &rangeSource{src: src, offset: offset, limit: limit}
}

func (s *rangeSource) Label() string {
	return fmt.Sprintf("%s@%d+%d", s.src.Label(), s.offset, s.limit)
}

func (s *rangeSource) Count() (int, bool) {
	c, ok := s.src.Count()
	if !ok {
		// The window cannot be sized without enumerating, but it is still
		// bounded by the limit; CountUpperBound carries that bound.
		return 0, false
	}
	c -= s.offset
	if c < 0 {
		c = 0
	}
	if c > s.limit {
		c = s.limit
	}
	return c, true
}

// CountUpperBound bounds the window for admission controllers: never
// more than the limit, and never more than whatever bound the
// underlying source reports. This is what lets a range-scoped job over
// a space far beyond a server's MaxSpaceSize budget pass admission —
// the job only ever sweeps its window.
func (s *rangeSource) CountUpperBound() float64 {
	ub := float64(s.limit)
	if b, ok := s.src.(interface{ CountUpperBound() float64 }); ok {
		if sub := b.CountUpperBound(); sub < ub {
			ub = sub
		}
	}
	return ub
}

// PatternBlock forwards the underlying source's pattern-block stride
// when this window starts on a block boundary — a coordinator carving a
// space into block-aligned ranges keeps delta-aware chunking in every
// shard. A window starting mid-block reports 1: its local offsets are
// shifted against the stride, so alignment would be wrong.
func (s *rangeSource) PatternBlock() int {
	if pb, ok := s.src.(PatternBlocked); ok {
		if b := pb.PatternBlock(); b > 1 && s.offset%b == 0 {
			return b
		}
	}
	return 1
}

func (s *rangeSource) Seq() iter.Seq[*Adversary] {
	if r, ok := s.src.(RangeSeq); ok {
		return r.SeqRange(s.offset, s.limit)
	}
	return func(yield func(*Adversary) bool) {
		if s.limit == 0 {
			return
		}
		skip, left := s.offset, s.limit
		for a := range s.src.Seq() {
			if skip > 0 {
				skip--
				continue
			}
			if !yield(a) {
				return
			}
			if left--; left == 0 {
				return
			}
		}
	}
}

// sliceSource adapts a materialized slice.
type sliceSource struct {
	label string
	advs  []*Adversary
}

// SliceSource wraps an already materialized adversary slice as a Source.
// It is the bridge from the slice-based Sweep world: Sweep itself runs on
// top of it.
func SliceSource(advs ...*Adversary) Source {
	return &sliceSource{label: fmt.Sprintf("slice[%d]", len(advs)), advs: advs}
}

func (s *sliceSource) Label() string      { return s.label }
func (s *sliceSource) Count() (int, bool) { return len(s.advs), true }
func (s *sliceSource) SeqRange(offset, limit int) iter.Seq[*Adversary] {
	lo, hi := offset, offset+limit
	if lo > len(s.advs) {
		lo = len(s.advs)
	}
	if hi > len(s.advs) || hi < 0 { // hi < 0: offset+limit overflowed
		hi = len(s.advs)
	}
	return func(yield func(*Adversary) bool) {
		for _, a := range s.advs[lo:hi] {
			if !yield(a) {
				return
			}
		}
	}
}
func (s *sliceSource) Seq() iter.Seq[*Adversary] {
	return func(yield func(*Adversary) bool) {
		for _, a := range s.advs {
			if !yield(a) {
				return
			}
		}
	}
}

// spaceSource streams an exhaustive enum.Space without materializing it.
type spaceSource struct{ space Space }

// SpaceSource wraps an exhaustive adversary space as a Source. The
// stream is the canonical enumeration of Space.All; its length is
// unknown up front (canonical deduplication happens during the walk), so
// Count reports unknown and Space.CountUpperBound remains the guard
// against accidentally huge spaces.
func SpaceSource(s Space) (Source, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &spaceSource{space: s}, nil
}

func (s *spaceSource) Label() string      { return s.space.Label() }
func (s *spaceSource) Count() (int, bool) { return 0, false }

// CountUpperBound reports the space's pre-deduplication size bound
// (Space.CountUpperBound). Admission controllers — the job service's
// max-space budget — discover it through the optional
//
//	interface{ CountUpperBound() float64 }
//
// so unknown-count sources can still be bounded before a single
// adversary is enumerated.
func (s *spaceSource) CountUpperBound() float64 { return s.space.CountUpperBound() }

// PatternBlock reports the space's pattern-block stride, len(Values)^N:
// the enumeration emits each canonical failure pattern's input vectors
// as that many consecutive offsets, in Gray-code delta order.
func (s *spaceSource) PatternBlock() int { return s.space.PatternBlock() }

// SeqRange resumes the canonical enumeration at offset and yields at
// most limit adversaries (enum.Space.Range) — the RangeSeq refinement
// that lets coordinated sweeps shard one exhaustive space into offset
// windows without each worker walking the prefix's input vectors.
func (s *spaceSource) SeqRange(offset, limit int) iter.Seq[*Adversary] {
	return func(yield func(*Adversary) bool) {
		for _, a := range s.space.Range(offset, limit) {
			if !yield(a) {
				return
			}
		}
	}
}

func (s *spaceSource) Seq() iter.Seq[*Adversary] {
	return func(yield func(*Adversary) bool) {
		for _, a := range s.space.All() {
			if !yield(a) {
				return
			}
		}
	}
}

// randomSource samples seeded random adversaries; every Seq call
// re-derives the generator from the seed, keeping the stream restartable.
type randomSource struct {
	seed  int64
	count int
	p     RandomParams
}

// RandomSource yields count seeded random adversaries drawn from p
// (uniform inputs, crash count, crash rounds, and delivery subsets). The
// stream is deterministic in the seed and restartable. Like SpaceSource,
// invalid parameters are rejected here, at construction — model.Random
// panics on them, and a panic mid-sweep is unrecoverable.
func RandomSource(seed int64, count int, p RandomParams) (Source, error) {
	if p.N < 2 || p.T < 0 || p.T > p.N-1 || p.MaxValue < 0 || p.MaxRound < 1 || count < 0 {
		return nil, fmt.Errorf("setconsensus: invalid random source (n=%d t=%d maxv=%d maxr=%d count=%d)",
			p.N, p.T, p.MaxValue, p.MaxRound, count)
	}
	return &randomSource{seed: seed, count: count, p: p}, nil
}

func (s *randomSource) Label() string {
	return fmt.Sprintf("random:n=%d,t=%d,count=%d,seed=%d", s.p.N, s.p.T, s.count, s.seed)
}
func (s *randomSource) Count() (int, bool) { return s.count, true }
func (s *randomSource) Seq() iter.Seq[*Adversary] {
	return func(yield func(*Adversary) bool) {
		rng := rand.New(rand.NewSource(s.seed))
		for i := 0; i < s.count; i++ {
			if !yield(model.Random(rng, s.p)) {
				return
			}
		}
	}
}

// limitSource truncates another source.
type limitSource struct {
	src Source
	n   int
}

// LimitSource yields at most n adversaries of src — the standard way to
// bound an exhaustive space to a budget. Negative limits clamp to zero.
func LimitSource(src Source, n int) Source {
	if n < 0 {
		n = 0
	}
	return &limitSource{src: src, n: n}
}

func (s *limitSource) Label() string { return fmt.Sprintf("%s[:%d]", s.src.Label(), s.n) }
func (s *limitSource) Count() (int, bool) {
	// The underlying stream may be shorter than the limit; without a
	// known count the limit is only an upper bound.
	c, ok := s.src.Count()
	if !ok {
		return 0, false
	}
	if c < s.n {
		return c, true
	}
	return s.n, true
}

// PatternBlock forwards the underlying stride: truncation keeps the
// stream aligned (it always starts at offset 0).
func (s *limitSource) PatternBlock() int {
	if pb, ok := s.src.(PatternBlocked); ok {
		return pb.PatternBlock()
	}
	return 1
}

func (s *limitSource) Seq() iter.Seq[*Adversary] {
	return func(yield func(*Adversary) bool) {
		// Check the budget before pulling: producing the element past the
		// limit can be expensive (a space walks duplicate patterns to
		// reach its next canonical adversary) just to be discarded.
		left := s.n
		if left == 0 {
			return
		}
		for a := range s.src.Seq() {
			if !yield(a) {
				return
			}
			if left--; left == 0 {
				return
			}
		}
	}
}

// concatSource chains sources back to back.
type concatSource struct{ srcs []Source }

// ConcatSources chains several workloads into one stream, in order.
func ConcatSources(srcs ...Source) Source {
	return &concatSource{srcs: srcs}
}

func (s *concatSource) Label() string {
	label := ""
	for i, src := range s.srcs {
		if i > 0 {
			label += "+"
		}
		label += src.Label()
	}
	if label == "" {
		return "empty"
	}
	return label
}
func (s *concatSource) Count() (int, bool) {
	total := 0
	for _, src := range s.srcs {
		c, ok := src.Count()
		if !ok {
			return 0, false
		}
		total += c
	}
	return total, true
}
func (s *concatSource) Seq() iter.Seq[*Adversary] {
	return func(yield func(*Adversary) bool) {
		for _, src := range s.srcs {
			for a := range src.Seq() {
				if !yield(a) {
					return
				}
			}
		}
	}
}

// funcSource adapts a raw iterator.
type funcSource struct {
	label string
	count int
	seq   iter.Seq[*Adversary]
}

// FuncSource adapts a raw iterator as a Source for custom workloads.
// Pass count < 0 when the stream length is unknown. The iterator must be
// restartable and deterministic, like every Source.
func FuncSource(label string, count int, seq iter.Seq[*Adversary]) Source {
	return &funcSource{label: label, count: count, seq: seq}
}

func (s *funcSource) Label() string { return s.label }
func (s *funcSource) Count() (int, bool) {
	if s.count < 0 {
		return 0, false
	}
	return s.count, true
}
func (s *funcSource) Seq() iter.Seq[*Adversary] { return s.seq }
