package setconsensus_test

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"testing"

	setconsensus "setconsensus"
	"setconsensus/internal/model"
)

func collapseAdv(t testing.TB, k, r int) (*setconsensus.Adversary, int) {
	t.Helper()
	cp := setconsensus.CollapseParams{K: k, R: r, ExtraCorrect: k + 2}
	adv, err := setconsensus.Collapse(cp)
	if err != nil {
		t.Fatal(err)
	}
	return adv, setconsensus.CollapseT(cp)
}

func TestEngineRunAllBackendsAgree(t *testing.T) {
	adv, tb := collapseAdv(t, 2, 3)
	ctx := context.Background()
	for _, ref := range []string{"optmin", "upmin"} {
		var results []*setconsensus.Result
		for _, bk := range []setconsensus.BackendKind{setconsensus.Oracle, setconsensus.Goroutines, setconsensus.Wire} {
			eng := setconsensus.New(
				setconsensus.WithBackend(bk),
				setconsensus.WithCrashBound(tb),
				setconsensus.WithDegree(2),
			)
			res, err := eng.Run(ctx, ref, adv)
			if err != nil {
				t.Fatalf("%s/%s: %v", ref, bk, err)
			}
			results = append(results, res)
		}
		ref0 := results[0]
		for _, res := range results[1:] {
			for i := range ref0.Decisions {
				a, b := ref0.Decisions[i], res.Decisions[i]
				if (a == nil) != (b == nil) || (a != nil && *a != *b) {
					t.Fatalf("%s: %s and %s disagree at process %d: %+v vs %+v",
						ref, ref0.Backend, res.Backend, i, a, b)
				}
			}
		}
	}
}

func TestEngineOracleVsGoroutinesRandomAdversaries(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ctx := context.Background()
	oracle := setconsensus.New(setconsensus.WithCrashBound(3), setconsensus.WithDegree(2))
	engine := setconsensus.New(
		setconsensus.WithBackend(setconsensus.Goroutines),
		setconsensus.WithCrashBound(3),
		setconsensus.WithDegree(2),
	)
	for trial := 0; trial < 50; trial++ {
		adv := model.Random(rng, model.RandomParams{N: 6, T: 3, MaxValue: 2, MaxRound: 3})
		for _, ref := range []string{"optmin", "upmin"} {
			a, err := oracle.Run(ctx, ref, adv)
			if err != nil {
				t.Fatal(err)
			}
			b, err := engine.Run(ctx, ref, adv)
			if err != nil {
				t.Fatal(err)
			}
			for i := range a.Decisions {
				da, db := a.Decisions[i], b.Decisions[i]
				if (da == nil) != (db == nil) || (da != nil && *da != *db) {
					t.Fatalf("%s trial %d process %d: oracle %+v goroutines %+v (%s)",
						ref, trial, i, da, db, adv)
				}
			}
		}
	}
}

func TestEngineSweepSharesOneGraphPerAdversary(t *testing.T) {
	adv1, tb := collapseAdv(t, 2, 3)
	adv2 := setconsensus.NewBuilder(adv1.N(), 1).Input(0, 0).MustBuild()
	refs := []string{"optmin", "upmin", "floodmin", "u-earlycount"}
	eng := setconsensus.New(setconsensus.WithCrashBound(tb), setconsensus.WithDegree(2))
	results, err := eng.Sweep(context.Background(), refs, []*setconsensus.Adversary{adv1, adv2})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(refs)*2 {
		t.Fatalf("got %d results", len(results))
	}
	// Deterministic order: adversary-major, protocol-minor.
	for a := 0; a < 2; a++ {
		for p, ref := range refs {
			if got := results[a*len(refs)+p].Ref; got != ref {
				t.Fatalf("result[%d]: ref %q, want %q", a*len(refs)+p, got, ref)
			}
		}
	}
	// All protocols of one adversary consulted the identical graph.
	g1 := results[0].KnowledgeGraph()
	if g1 == nil {
		t.Fatal("oracle result without knowledge graph")
	}
	for p := 1; p < len(refs); p++ {
		if results[p].KnowledgeGraph() != g1 {
			t.Fatalf("protocol %s did not share adversary 1's graph", refs[p])
		}
	}
	g2 := results[len(refs)].KnowledgeGraph()
	if g2 == g1 {
		t.Fatal("distinct adversaries must not share a graph")
	}
	for p := 1; p < len(refs); p++ {
		if results[len(refs)+p].KnowledgeGraph() != g2 {
			t.Fatalf("protocol %s did not share adversary 2's graph", refs[p])
		}
	}
}

func TestEngineGraphCacheAcrossRuns(t *testing.T) {
	adv, tb := collapseAdv(t, 2, 2)
	ctx := context.Background()

	cached := setconsensus.New(setconsensus.WithCrashBound(tb), setconsensus.WithDegree(2))
	r1, err := cached.Run(ctx, "optmin", adv)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := cached.Run(ctx, "upmin", adv)
	if err != nil {
		t.Fatal(err)
	}
	if r1.KnowledgeGraph() != r2.KnowledgeGraph() {
		t.Error("graph cache must reuse the graph across Run calls")
	}
	if cached.CachedGraphs() != 1 {
		t.Errorf("cache holds %d graphs, want 1", cached.CachedGraphs())
	}

	uncached := setconsensus.New(
		setconsensus.WithCrashBound(tb),
		setconsensus.WithDegree(2),
		setconsensus.WithGraphCache(0),
	)
	u1, err := uncached.Run(ctx, "optmin", adv)
	if err != nil {
		t.Fatal(err)
	}
	u2, err := uncached.Run(ctx, "optmin", adv)
	if err != nil {
		t.Fatal(err)
	}
	if u1.KnowledgeGraph() == u2.KnowledgeGraph() {
		t.Error("WithGraphCache(0) must disable cross-call reuse")
	}
	if uncached.CachedGraphs() != 0 {
		t.Errorf("disabled cache holds %d graphs", uncached.CachedGraphs())
	}
}

// TestEngineGraphCacheSharedAcrossEqualAdversaries pins the fingerprint
// cache key: two structurally equal adversaries built by different calls
// must hit the same cached knowledge graph.
func TestEngineGraphCacheSharedAcrossEqualAdversaries(t *testing.T) {
	build := func() *setconsensus.Adversary {
		return setconsensus.NewBuilder(5, 1).Input(0, 0).CrashSendingTo(4, 1, 3).MustBuild()
	}
	a, b := build(), build()
	if a == b {
		t.Fatal("sanity: distinct pointers required")
	}
	eng := setconsensus.New(setconsensus.WithCrashBound(2), setconsensus.WithDegree(1))
	ctx := context.Background()
	r1, err := eng.Run(ctx, "optmin", a)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := eng.Run(ctx, "optmin", b)
	if err != nil {
		t.Fatal(err)
	}
	if r1.KnowledgeGraph() != r2.KnowledgeGraph() {
		t.Error("structurally equal adversaries must share one cached graph")
	}
	if n := eng.CachedGraphs(); n != 1 {
		t.Errorf("cache holds %d graphs, want 1", n)
	}
	// Observably equal but structurally different (extra delivery to a
	// dead receiver) also shares, via canonicalization.
	c := setconsensus.NewBuilder(5, 1).Input(0, 0).CrashSendingTo(4, 1, 3).CrashSilent(3, 1).MustBuild()
	d := setconsensus.NewBuilder(5, 1).Input(0, 0).CrashSendingTo(4, 1, 3, 3).CrashSilent(3, 1).MustBuild()
	r3, err := eng.Run(ctx, "optmin", c)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := eng.Run(ctx, "optmin", d)
	if err != nil {
		t.Fatal(err)
	}
	if r3.KnowledgeGraph() != r4.KnowledgeGraph() {
		t.Error("observably equal adversaries must share one cached graph")
	}
}

// TestEngineSweepEmptyInputs pins the documented asymmetry: no protocols
// is an error, no adversaries is an empty result.
func TestEngineSweepEmptyInputs(t *testing.T) {
	eng := setconsensus.New()
	ctx := context.Background()
	if _, err := eng.Sweep(ctx, nil, []*setconsensus.Adversary{setconsensus.NewBuilder(3, 0).MustBuild()}); err == nil {
		t.Error("empty refs must error")
	}
	results, err := eng.Sweep(ctx, []string{"optmin"}, nil)
	if err != nil {
		t.Fatalf("empty advs must not error: %v", err)
	}
	if results == nil || len(results) != 0 {
		t.Errorf("empty advs: want empty non-nil slice, got %v", results)
	}
	if err := eng.SweepStream(ctx, []string{"optmin"}, nil, func(*setconsensus.Result) {
		t.Error("empty advs must emit nothing")
	}); err != nil {
		t.Fatalf("empty advs stream: %v", err)
	}
}

func TestParseBackendCaseInsensitive(t *testing.T) {
	for name, want := range map[string]setconsensus.BackendKind{
		"oracle": setconsensus.Oracle, "Oracle": setconsensus.Oracle, "ORACLE": setconsensus.Oracle,
		" wire ": setconsensus.Wire, "GoRoutines": setconsensus.Goroutines,
	} {
		got, err := setconsensus.ParseBackend(name)
		if err != nil || got != want {
			t.Errorf("ParseBackend(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := setconsensus.ParseBackend("quantum"); err == nil {
		t.Error("unknown backend must error")
	}
}

// TestEngineSweepStreamCancelAfterFirstEmit cancels the context after the
// very first emitted result; the stream must abort promptly and return
// ctx.Err().
func TestEngineSweepStreamCancelAfterFirstEmit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var advs []*setconsensus.Adversary
	for i := 0; i < 60; i++ {
		advs = append(advs, model.Random(rng, model.RandomParams{N: 5, T: 2, MaxValue: 1, MaxRound: 2}))
	}
	refs := []string{"optmin", "upmin"}
	eng := setconsensus.New(
		setconsensus.WithCrashBound(2),
		setconsensus.WithParallelism(2),
	)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	emitted := 0
	err := eng.SweepStream(ctx, refs, advs, func(*setconsensus.Result) {
		emitted++
		if emitted == 1 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if emitted >= len(refs)*len(advs) {
		t.Fatalf("cancellation did not stop the stream: %d results", emitted)
	}
}

func TestEngineSweepCancellationMidSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var advs []*setconsensus.Adversary
	for i := 0; i < 40; i++ {
		advs = append(advs, model.Random(rng, model.RandomParams{N: 5, T: 2, MaxValue: 1, MaxRound: 2}))
	}
	refs := []string{"optmin", "upmin", "floodmin"}
	eng := setconsensus.New(
		setconsensus.WithCrashBound(2),
		setconsensus.WithParallelism(1),
	)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	emitted := 0
	err := eng.SweepStream(ctx, refs, advs, func(*setconsensus.Result) {
		emitted++
		if emitted == 2 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if emitted >= len(refs)*len(advs) {
		t.Fatalf("cancellation did not stop the sweep: %d results", emitted)
	}
}

func TestEngineSweepParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var advs []*setconsensus.Adversary
	for i := 0; i < 12; i++ {
		advs = append(advs, model.Random(rng, model.RandomParams{N: 6, T: 3, MaxValue: 2, MaxRound: 3}))
	}
	refs := []string{"optmin", "upmin", "floodmin", "earlycount", "perround"}
	serial := setconsensus.New(setconsensus.WithCrashBound(3), setconsensus.WithDegree(2), setconsensus.WithParallelism(1))
	parallel := setconsensus.New(setconsensus.WithCrashBound(3), setconsensus.WithDegree(2), setconsensus.WithParallelism(8))
	ctx := context.Background()
	sres, err := serial.Sweep(ctx, refs, advs)
	if err != nil {
		t.Fatal(err)
	}
	pres, err := parallel.Sweep(ctx, refs, advs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sres {
		if sres[i].String() != pres[i].String() {
			t.Fatalf("result %d differs:\n  serial:   %s\n  parallel: %s", i, sres[i], pres[i])
		}
	}
}

func TestEngineErrorsNotPanics(t *testing.T) {
	adv := setconsensus.NewBuilder(4, 1).MustBuild()
	ctx := context.Background()

	if _, err := setconsensus.New(setconsensus.WithDegree(0)).Run(ctx, "optmin", adv); err == nil {
		t.Error("invalid degree must surface from Run")
	}
	if _, err := setconsensus.New(setconsensus.WithParallelism(0)).Sweep(ctx, []string{"optmin"}, []*setconsensus.Adversary{adv}); err == nil {
		t.Error("invalid parallelism must surface from Sweep")
	}
	if _, err := setconsensus.New().Run(ctx, "unknown-proto", adv); err == nil {
		t.Error("unknown protocol must error")
	}
	if _, err := setconsensus.New().Run(ctx, "optmin", nil); err == nil {
		t.Error("nil adversary must error")
	}
	// Full-information-only protocols cannot run on compact backends.
	wireEng := setconsensus.New(setconsensus.WithBackend(setconsensus.Wire))
	if _, err := wireEng.Run(ctx, "floodmin", adv); err == nil {
		t.Error("floodmin on the wire backend must error")
	}
	if _, err := setconsensus.New().Sweep(ctx, nil, []*setconsensus.Adversary{adv}); err == nil {
		t.Error("sweep with no protocols must error")
	}
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := setconsensus.New().Run(canceled, "optmin", adv); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled context: %v", err)
	}
}

func TestResultJSONRoundTrip(t *testing.T) {
	adv, tb := collapseAdv(t, 2, 2)
	ctx := context.Background()
	for _, bk := range []setconsensus.BackendKind{setconsensus.Oracle, setconsensus.Wire} {
		eng := setconsensus.New(
			setconsensus.WithBackend(bk),
			setconsensus.WithCrashBound(tb),
			setconsensus.WithDegree(2),
		)
		res, err := eng.Run(ctx, "upmin", adv)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Verify(setconsensus.Task{K: 2, Uniform: true}); err != nil {
			t.Fatalf("%s: %v", bk, err)
		}
		blob, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		var m map[string]any
		if err := json.Unmarshal(blob, &m); err != nil {
			t.Fatal(err)
		}
		for _, field := range []string{"protocol", "ref", "backend", "params", "adversary", "decisions", "maxCorrectTime"} {
			if _, ok := m[field]; !ok {
				t.Errorf("%s: JSON missing %q: %s", bk, field, blob)
			}
		}
		if bk == setconsensus.Wire {
			if _, ok := m["bits"]; !ok {
				t.Errorf("wire JSON missing bits: %s", blob)
			}
		} else {
			if _, ok := m["graphStats"]; !ok {
				t.Errorf("oracle JSON missing graphStats: %s", blob)
			}
			if _, ok := m["bits"]; ok {
				t.Error("oracle JSON must omit bits")
			}
		}
	}
}

func TestEngineParamsDefaultsValidate(t *testing.T) {
	def := setconsensus.DefaultEngineParams()
	if err := def.Validate(); err != nil {
		t.Fatalf("defaults must validate: %v", err)
	}
	if def.Backend != setconsensus.Oracle || def.T != -1 || def.K != 1 || def.GraphCache != 64 {
		t.Errorf("unexpected defaults: %+v", def)
	}
	bad := []setconsensus.EngineParams{
		{Backend: 99, T: -1, K: 1, GraphCache: 1, Parallelism: 1},
		{T: -3, K: 1, GraphCache: 1, Parallelism: 1},
		{T: -1, K: 0, GraphCache: 1, Parallelism: 1},
		{T: -1, K: 1, Horizon: -1, GraphCache: 1, Parallelism: 1},
		{Backend: setconsensus.Wire, T: -1, K: 1, Horizon: 2, GraphCache: 1, Parallelism: 1},
		{T: -1, K: 1, GraphCache: -1, Parallelism: 1},
		{T: -1, K: 1, GraphCache: 1, Parallelism: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: %+v must not validate", i, p)
		}
	}
}
