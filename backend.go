package setconsensus

import (
	"context"
	"fmt"

	"setconsensus/internal/knowledge"
	"setconsensus/internal/model"
	"setconsensus/internal/runtime"
	"setconsensus/internal/sim"
	"setconsensus/internal/wire"
)

// Backend executes one protocol run. The three implementations adapt the
// oracle simulator (internal/sim), the goroutine message-passing engine
// (internal/runtime), and the compact wire runner (internal/wire) to one
// contract: resolve the spec, run it against the adversary, return a
// unified Result — errors, never panics.
type Backend interface {
	// Kind identifies the backend.
	Kind() BackendKind
	// NeedsGraph reports whether Run requires a precomputed knowledge
	// graph; the Engine supplies (and shares) one when it does.
	NeedsGraph() bool
	// Run executes spec against adv under params p. g is non-nil exactly
	// when NeedsGraph reports true.
	Run(ctx context.Context, ref string, spec *ProtocolSpec, p Params, adv *model.Adversary, g *knowledge.Graph) (*Result, error)
}

// backendFor maps a kind to its implementation.
func backendFor(k BackendKind) (Backend, error) {
	switch k {
	case Oracle:
		return oracleBackend{}, nil
	case Goroutines:
		return goroutineBackend{}, nil
	case Wire:
		return wireBackend{}, nil
	}
	return nil, fmt.Errorf("engine: unknown backend %d", int(k))
}

// requireWireCapable gates the compact backends to the protocols the
// Appendix E encoding can carry.
func requireWireCapable(spec *ProtocolSpec, kind BackendKind) error {
	if !spec.WireCapable() {
		return fmt.Errorf("engine: protocol %q is full-information only and cannot run on the %s backend (use Oracle)",
			spec.Name, kind)
	}
	return nil
}

// oracleBackend runs the deterministic full-information simulator over a
// shared knowledge graph.
type oracleBackend struct{}

func (oracleBackend) Kind() BackendKind { return Oracle }
func (oracleBackend) NeedsGraph() bool  { return true }

func (oracleBackend) Run(ctx context.Context, ref string, spec *ProtocolSpec, p Params, adv *model.Adversary, g *knowledge.Graph) (*Result, error) {
	proto, err := spec.New(p)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	simRes := sim.RunWithGraph(proto, g)
	res := newResult(ref, proto.Name(), Oracle, p, adv, simRes.Decisions)
	res.graph = g
	res.GraphStats = graphStats(g)
	return res, nil
}

// goroutineBackend runs the concurrent message-passing engine.
type goroutineBackend struct{}

func (goroutineBackend) Kind() BackendKind { return Goroutines }
func (goroutineBackend) NeedsGraph() bool  { return false }

func (goroutineBackend) Run(ctx context.Context, ref string, spec *ProtocolSpec, p Params, adv *model.Adversary, _ *knowledge.Graph) (*Result, error) {
	if err := requireWireCapable(spec, Goroutines); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rtRes, err := runtime.Run(spec.WireRule, p, adv)
	if err != nil {
		return nil, err
	}
	decisions := make([]*Decision, len(rtRes.Decisions))
	for i, d := range rtRes.Decisions {
		if d != nil {
			decisions[i] = &Decision{Value: d.Value, Time: d.Time}
		}
	}
	return newResult(ref, protocolRuntimeName(spec, p), Goroutines, p, adv, decisions), nil
}

// wireBackend runs the deterministic compact-protocol runner with bit
// accounting.
type wireBackend struct{}

func (wireBackend) Kind() BackendKind { return Wire }
func (wireBackend) NeedsGraph() bool  { return false }

func (wireBackend) Run(ctx context.Context, ref string, spec *ProtocolSpec, p Params, adv *model.Adversary, _ *knowledge.Graph) (*Result, error) {
	if err := requireWireCapable(spec, Wire); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	wRes, err := wire.Run(spec.WireRule, p, adv)
	if err != nil {
		return nil, err
	}
	decisions := make([]*Decision, len(wRes.Decisions))
	for i, d := range wRes.Decisions {
		if d != nil {
			decisions[i] = &Decision{Value: d.Value, Time: d.Time}
		}
	}
	res := newResult(ref, protocolRuntimeName(spec, p), Wire, p, adv, decisions)
	res.Bits = bitStats(wRes)
	return res, nil
}
