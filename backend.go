package setconsensus

import (
	"context"
	"fmt"

	"setconsensus/internal/knowledge"
	"setconsensus/internal/model"
	"setconsensus/internal/runtime"
	"setconsensus/internal/sim"
	"setconsensus/internal/wire"
)

// RunRequest carries everything one protocol run needs. The Engine
// assembles it once per (protocol, adversary) pair and shares the
// expensive parts across the runs of a sweep: the knowledge graph and
// the rendered adversary string are per-adversary, the constructed
// protocol instance and its runtime name are cached per (ref, params).
type RunRequest struct {
	// Ref is the registry name the protocol was resolved from.
	Ref  string
	Spec *ProtocolSpec
	// Proto is the constructed full-information protocol instance, nil
	// when construction fails under these params (ProtoErr then holds
	// why; the compact backends can still run their wire rule).
	// Instances are cached and shared across runs and workers: decision
	// rules are pure functions of the view, so sharing is safe by
	// construction.
	Proto    Protocol
	ProtoErr error
	// Name is the runtime display name ("Optmin[2]").
	Name   string
	Params Params
	Adv    *model.Adversary
	// AdvStr is Adv.String(), rendered once per adversary rather than
	// once per run.
	AdvStr string
	// Graph is non-nil exactly when the backend's NeedsGraph reports
	// true.
	Graph *knowledge.Graph
}

// Backend executes one protocol run. The three implementations adapt the
// oracle simulator (internal/sim), the goroutine message-passing engine
// (internal/runtime), and the compact wire runner (internal/wire) to one
// contract: run the prepared request, return a unified Result — errors,
// never panics.
type Backend interface {
	// Kind identifies the backend.
	Kind() BackendKind
	// NeedsGraph reports whether Run requires a precomputed knowledge
	// graph; the Engine supplies (and shares) one when it does.
	NeedsGraph() bool
	// Run executes the request.
	Run(ctx context.Context, req *RunRequest) (*Result, error)
}

// backendFor maps a kind to its implementation.
func backendFor(k BackendKind) (Backend, error) {
	switch k {
	case Oracle:
		return oracleBackend{}, nil
	case Goroutines:
		return goroutineBackend{}, nil
	case Wire:
		return wireBackend{}, nil
	}
	return nil, fmt.Errorf("engine: unknown backend %d", int(k))
}

// requireWireCapable gates the compact backends to the protocols the
// Appendix E encoding can carry.
func requireWireCapable(spec *ProtocolSpec, kind BackendKind) error {
	if !spec.WireCapable() {
		return fmt.Errorf("engine: protocol %q is full-information only and cannot run on the %s backend (use Oracle)",
			spec.Name, kind)
	}
	return nil
}

// oracleBackend runs the deterministic full-information simulator over a
// shared knowledge graph.
type oracleBackend struct{}

func (oracleBackend) Kind() BackendKind { return Oracle }
func (oracleBackend) NeedsGraph() bool  { return true }

func (oracleBackend) Run(ctx context.Context, req *RunRequest) (*Result, error) {
	if req.Proto == nil {
		return nil, req.ProtoErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	simRes := sim.RunWithGraph(req.Proto, req.Graph)
	res := newResult(req, Oracle, simRes.Decisions)
	res.graph = req.Graph
	res.GraphStats = graphStats(req.Graph)
	return res, nil
}

// goroutineBackend runs the concurrent message-passing engine.
type goroutineBackend struct{}

func (goroutineBackend) Kind() BackendKind { return Goroutines }
func (goroutineBackend) NeedsGraph() bool  { return false }

func (goroutineBackend) Run(ctx context.Context, req *RunRequest) (*Result, error) {
	if err := requireWireCapable(req.Spec, Goroutines); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rtRes, err := runtime.Run(req.Spec.WireRule, req.Params, req.Adv)
	if err != nil {
		return nil, err
	}
	decisions := make([]*Decision, len(rtRes.Decisions))
	for i, d := range rtRes.Decisions {
		if d != nil {
			decisions[i] = &Decision{Value: d.Value, Time: d.Time}
		}
	}
	return newResult(req, Goroutines, decisions), nil
}

// wireBackend runs the deterministic compact-protocol runner with bit
// accounting.
type wireBackend struct{}

func (wireBackend) Kind() BackendKind { return Wire }
func (wireBackend) NeedsGraph() bool  { return false }

func (wireBackend) Run(ctx context.Context, req *RunRequest) (*Result, error) {
	if err := requireWireCapable(req.Spec, Wire); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	wRes, err := wire.Run(req.Spec.WireRule, req.Params, req.Adv)
	if err != nil {
		return nil, err
	}
	decisions := make([]*Decision, len(wRes.Decisions))
	for i, d := range wRes.Decisions {
		if d != nil {
			decisions[i] = &Decision{Value: d.Value, Time: d.Time}
		}
	}
	res := newResult(req, Wire, decisions)
	res.Bits = bitStats(wRes)
	return res, nil
}
