package setconsensus

import (
	"context"
	"fmt"

	"setconsensus/internal/check"
	"setconsensus/internal/knowledge"
	"setconsensus/internal/model"
	"setconsensus/internal/runtime"
	"setconsensus/internal/sim"
	"setconsensus/internal/wire"
)

// RunRequest carries everything one protocol run needs. The Engine
// assembles it once per (protocol, adversary) pair and shares the
// expensive parts across the runs of a sweep: the knowledge graph and
// the adversary-string renderer are per-adversary, the constructed
// protocol instance and its runtime name are cached per (ref, params).
type RunRequest struct {
	// Ref is the registry name the protocol was resolved from.
	Ref  string
	Spec *ProtocolSpec
	// Proto is the constructed full-information protocol instance, nil
	// when construction fails under these params (ProtoErr then holds
	// why; the compact backends can still run their wire rule).
	// Instances are cached and shared across runs and workers: decision
	// rules are pure functions of the view, so sharing is safe by
	// construction.
	Proto    Protocol
	ProtoErr error
	// Name is the runtime display name ("Optmin[2]").
	Name   string
	Params Params
	Adv    *model.Adversary
	// AdvStr lazily renders the adversary's display string. The Engine
	// passes one memoized closure per adversary, so the string is built
	// at most once per adversary — and only when a Result that carries
	// it is actually materialized. It is nil on the aggregating fold
	// path (RunInto), whose pooled Results never render it.
	AdvStr func() string
	// Graph is non-nil exactly when the backend's NeedsGraph reports
	// true.
	Graph *knowledge.Graph
}

// RunBuffer is the per-worker scratch behind Backend.RunInto: one
// reusable Result, pooled decision storage, reusable verification sets,
// and the backend-extra structs. A RunBuffer serves one goroutine; the
// Result a RunInto call returns aliases the buffer and is valid only
// until the next RunInto with the same buffer. See the recycle contract
// in engine.go for who may retain what.
type RunBuffer struct {
	req    RunRequest
	res    Result
	sim    sim.Scratch
	simres sim.Result
	verify check.Scratch
	bits   BitStats
}

// NewRunBuffer returns an empty buffer ready for RunInto.
func NewRunBuffer() *RunBuffer { return &RunBuffer{} }

// Bytes reports the pooled scratch capacity the buffer pins — the
// decision slab and the verification sets, the parts that grow with the
// workload. The fixed-size struct shell is noise and not counted.
func (b *RunBuffer) Bytes() int64 { return b.sim.Bytes() + b.verify.Bytes() }

// verifyResult checks a pooled result against task using only the
// buffer's reusable storage; nothing allocates unless a violation
// renders its diagnostic.
func (b *RunBuffer) verifyResult(r *Result, task Task) error {
	b.simres.ProtocolName, b.simres.Adv, b.simres.Graph, b.simres.Decisions =
		r.Protocol, r.adv, r.graph, r.Decisions
	return b.verify.VerifyRun(&b.simres, task)
}

// Backend executes one protocol run. The three implementations adapt the
// oracle simulator (internal/sim), the goroutine message-passing engine
// (internal/runtime), and the compact wire runner (internal/wire) to one
// contract: run the prepared request, return a unified Result — errors,
// never panics.
type Backend interface {
	// Kind identifies the backend.
	Kind() BackendKind
	// NeedsGraph reports whether Run requires a precomputed knowledge
	// graph; the Engine supplies (and shares) one when it does.
	NeedsGraph() bool
	// Run executes the request into a fresh Result the caller may retain.
	Run(ctx context.Context, req *RunRequest) (*Result, error)
	// RunInto executes the request into buf's pooled storage and returns
	// buf's Result, valid only until the next RunInto on the same
	// buffer. It is the fold-oriented entry point of aggregating sweeps:
	// no per-run heap objects, and no display extras — the Result's
	// Adversary string and GraphStats are omitted (fold consumers read
	// Result.Adv() when they need identity). RunInto does not poll the
	// context either; the aggregating engine checks it once per
	// adversary rather than once per run.
	RunInto(ctx context.Context, req *RunRequest, buf *RunBuffer) (*Result, error)
}

// backendFor maps a kind to its implementation.
func backendFor(k BackendKind) (Backend, error) {
	switch k {
	case Oracle:
		return oracleBackend{}, nil
	case Goroutines:
		return goroutineBackend{}, nil
	case Wire:
		return wireBackend{}, nil
	}
	return nil, fmt.Errorf("engine: unknown backend %d", int(k))
}

// requireWireCapable gates the compact backends to the protocols the
// Appendix E encoding can carry.
func requireWireCapable(spec *ProtocolSpec, kind BackendKind) error {
	if !spec.WireCapable() {
		return fmt.Errorf("engine: protocol %q is full-information only and cannot run on the %s backend (use Oracle)",
			spec.Name, kind)
	}
	return nil
}

// oracleBackend runs the deterministic full-information simulator over a
// shared knowledge graph.
type oracleBackend struct{}

func (oracleBackend) Kind() BackendKind { return Oracle }
func (oracleBackend) NeedsGraph() bool  { return true }

func (oracleBackend) Run(ctx context.Context, req *RunRequest) (*Result, error) {
	if req.Proto == nil {
		return nil, req.ProtoErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	simRes := sim.RunWithGraph(req.Proto, req.Graph)
	res := newResult(req, Oracle, simRes.Decisions)
	res.graph = req.Graph
	res.GraphStats = graphStats(req.Graph)
	return res, nil
}

func (oracleBackend) RunInto(_ context.Context, req *RunRequest, buf *RunBuffer) (*Result, error) {
	if req.Proto == nil {
		return nil, req.ProtoErr
	}
	sim.RunWithGraphInto(req.Proto, req.Graph, &buf.sim, &buf.simres)
	res := newResultInto(buf, req, Oracle, buf.simres.Decisions)
	res.graph = req.Graph
	return res, nil
}

// goroutineBackend runs the concurrent message-passing engine.
type goroutineBackend struct{}

func (goroutineBackend) Kind() BackendKind { return Goroutines }
func (goroutineBackend) NeedsGraph() bool  { return false }

func (goroutineBackend) Run(ctx context.Context, req *RunRequest) (*Result, error) {
	if err := requireWireCapable(req.Spec, Goroutines); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rtRes, err := runtime.Run(req.Spec.WireRule, req.Params, req.Adv)
	if err != nil {
		return nil, err
	}
	decisions := make([]*Decision, len(rtRes.Decisions))
	for i, d := range rtRes.Decisions {
		if d != nil {
			decisions[i] = &Decision{Value: d.Value, Time: d.Time}
		}
	}
	return newResult(req, Goroutines, decisions), nil
}

func (goroutineBackend) RunInto(_ context.Context, req *RunRequest, buf *RunBuffer) (*Result, error) {
	if err := requireWireCapable(req.Spec, Goroutines); err != nil {
		return nil, err
	}
	rtRes, err := runtime.Run(req.Spec.WireRule, req.Params, req.Adv)
	if err != nil {
		return nil, err
	}
	decs := buf.sim.Reset(len(rtRes.Decisions))
	for i, d := range rtRes.Decisions {
		if d != nil {
			buf.sim.Put(i, Decision{Value: d.Value, Time: d.Time})
		}
	}
	return newResultInto(buf, req, Goroutines, decs), nil
}

// wireBackend runs the deterministic compact-protocol runner with bit
// accounting.
type wireBackend struct{}

func (wireBackend) Kind() BackendKind { return Wire }
func (wireBackend) NeedsGraph() bool  { return false }

func (wireBackend) Run(ctx context.Context, req *RunRequest) (*Result, error) {
	if err := requireWireCapable(req.Spec, Wire); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	wRes, err := wire.Run(req.Spec.WireRule, req.Params, req.Adv)
	if err != nil {
		return nil, err
	}
	decisions := make([]*Decision, len(wRes.Decisions))
	for i, d := range wRes.Decisions {
		if d != nil {
			decisions[i] = &Decision{Value: d.Value, Time: d.Time}
		}
	}
	res := newResult(req, Wire, decisions)
	bs := &BitStats{}
	bitStatsInto(bs, wRes)
	res.Bits = bs
	return res, nil
}

func (wireBackend) RunInto(_ context.Context, req *RunRequest, buf *RunBuffer) (*Result, error) {
	if err := requireWireCapable(req.Spec, Wire); err != nil {
		return nil, err
	}
	wRes, err := wire.Run(req.Spec.WireRule, req.Params, req.Adv)
	if err != nil {
		return nil, err
	}
	decs := buf.sim.Reset(len(wRes.Decisions))
	for i, d := range wRes.Decisions {
		if d != nil {
			buf.sim.Put(i, Decision{Value: d.Value, Time: d.Time})
		}
	}
	res := newResultInto(buf, req, Wire, decs)
	bitStatsInto(&buf.bits, wRes)
	res.Bits = &buf.bits
	return res, nil
}
