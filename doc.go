// Package setconsensus is a complete implementation of
// "Unbeatable Set Consensus via Topological and Combinatorial Reasoning"
// (Castañeda, Gonczarowski, Moses — PODC 2016): the unbeatable protocol
// Optmin[k] for nonuniform k-set consensus and the early-deciding uniform
// protocol u-Pmin[k] in the synchronous message-passing model with crash
// failures, together with every substrate the paper's analysis uses —
// the knowledge calculus (seen / guaranteed-crashed / hidden nodes,
// hidden capacity), the literature baselines, the Lemma 2 hidden-run
// construction and the Lemma 1/3 unbeatability certificates, the
// combinatorial-topology machinery (subdivisions, Sperner's lemma,
// protocol complexes, star-complex connectivity), the Appendix E compact
// wire protocol, and a goroutine message-passing runtime.
//
// This package is the public facade; subsystems live under internal/ and
// are re-exported here as needed by the examples and tools. Start with:
//
//	adv := setconsensus.NewBuilder(5, 2).Input(0, 0).MustBuild()
//	proto, _ := setconsensus.NewOptmin(setconsensus.Params{N: 5, T: 2, K: 2})
//	res := setconsensus.Run(proto, adv)
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for the
// measured reproduction of every figure and theorem.
package setconsensus
