// Package setconsensus is a complete implementation of
// "Unbeatable Set Consensus via Topological and Combinatorial Reasoning"
// (Castañeda, Gonczarowski, Moses — PODC 2016): the unbeatable protocol
// Optmin[k] for nonuniform k-set consensus and the early-deciding uniform
// protocol u-Pmin[k] in the synchronous message-passing model with crash
// failures, together with every substrate the paper's analysis uses —
// the knowledge calculus (seen / guaranteed-crashed / hidden nodes,
// hidden capacity), the literature baselines, the Lemma 2 hidden-run
// construction and the Lemma 1/3 unbeatability certificates, the
// combinatorial-topology machinery (subdivisions, Sperner's lemma,
// protocol complexes, star-complex connectivity), the Appendix E compact
// wire protocol, and a goroutine message-passing runtime.
//
// # Engine and Registry
//
// The public API is the Engine facade: one context-aware entry point over
// all three execution backends. Protocols are resolved by name in a
// Registry — no consumer switches on protocol names — and every run
// returns the same JSON-marshalable Result regardless of backend:
//
//	adv := setconsensus.NewBuilder(6, 2).Input(0, 0).MustBuild()
//	eng := setconsensus.New(
//		setconsensus.WithCrashBound(3),
//		setconsensus.WithDegree(2),
//	)
//	res, err := eng.Run(ctx, "optmin", adv)       // one protocol, one adversary
//	err = res.Verify(setconsensus.Task{K: 2})
//
// Batch workloads — the all-protocols-vs-all-adversaries comparisons that
// unbeatability is defined by — go through Engine.Sweep, which fans the
// cross product out over a worker pool, shares a single knowledge graph
// per adversary across all protocols, honors context cancellation, and
// can stream results as they finish:
//
//	results, err := eng.Sweep(ctx, setconsensus.Protocols(), advs)
//	err = eng.SweepStream(ctx, refs, advs, func(r *setconsensus.Result) { ... })
//
// # Workloads and Sources
//
// The workload side mirrors the protocol side: adversary families are
// named, parameterized, and registered. A Source is a restartable
// iter.Seq stream of adversaries; a WorkloadRegistry resolves references
// like "collapse:k=3,r=2..6" (integer parameters accept lo..hi ranges)
// into Sources; and Engine.SweepSource shards a Source across the worker
// pool in deterministic chunks, folding every run online into a Summary
// — per-protocol decision-time histograms, undecided and task-violation
// counts, and wire-bit totals — whose size is bounded by protocols and
// horizon, never by results, so exhaustive spaces sweep without ever
// materializing:
//
//	src, err := setconsensus.ParseWorkload("space:n=4,t=2,r=2,v=0..1")
//	sum, err := eng.SweepSource(ctx, []string{"optmin", "upmin"}, src)
//	fmt.Println(setconsensus.SummaryTable(sum).Render())
//
// The built-in workloads are the paper's families plus the exhaustive
// enumeration:
//
//	hiddenpath    Fig. 1 hidden path            depth=1..4 n=maxdepth+2
//	hiddenchains  Fig. 2 / Lemma 2 chains       c=1..3 m=2 extra=2
//	collapse      Fig. 4 separation family      k=2 r=2..4 extra=k+2 low=false
//	silentrounds  tight worst-case family       k=2 r=1..4 extra=k+1
//	random        seeded random adversaries     n=6 t=3 maxv=2 maxr=3 count=100 seed=1
//	space         exhaustive canonical space    n=3 t=2 r=2 v=0..1
//
// Sources compose: SliceSource bridges materialized slices (Sweep itself
// runs on it), SpaceSource streams an enum.Space, RandomSource samples a
// seed deterministically, LimitSource bounds a stream to a budget,
// ConcatSources chains workloads, and FuncSource adapts any custom
// iterator. Aggregation is reusable outside SweepSource via
// Engine.NewAggregator plus Aggregator.Add.
//
// The three backends (selected with WithBackend) are:
//
//	Oracle      the deterministic full-information simulator — the
//	            reference semantics (internal/sim)
//	Goroutines  one goroutine per process, channels as links, a router
//	            applying the failure pattern (internal/runtime)
//	Wire        the Appendix E compact protocol with per-link bit
//	            accounting (internal/wire)
//
// All three agree bit for bit on decisions; the equivalence is asserted
// by the engine tests and demonstrated by examples/messagepassing.
//
// # Options
//
// New applies functional options over DefaultEngineParams; EngineParams
// .Validate rejects out-of-range values and the error is returned by
// every Run/Sweep on the misconfigured engine. The defaults:
//
//	Option            default  meaning
//	WithBackend       Oracle   execution backend (Oracle | Goroutines | Wire)
//	WithCrashBound    -1       crash bound t; -1 means n−1 per adversary
//	WithDegree        1        coordination degree k (1 = consensus)
//	WithHorizon       0        0 = each protocol's registered worst case (override: Oracle only)
//	WithGraphCache    64       cached knowledge graphs; 0 disables
//	WithParallelism   NumCPU   Sweep/Analyze worker-pool size
//	WithRegistry      default  protocol name resolution
//	WithAnalyses      default  analysis family resolution
//
// The Registry ships with every protocol in the repository — "optmin",
// "upmin", their k=1 specializations "opt0" and "uopt0", and the five
// literature baselines "floodmin", "earlycount", "u-earlycount",
// "perround", "u-perround" — each with metadata (uniform task or not,
// worst-case decision time, wire capability). Register adds custom
// protocols, on the default registry or a private one passed via
// WithRegistry. DefaultWorkloads is the analogous registry of workload
// names; WorkloadRegistry.Register adds custom adversary families.
//
// Lower-level constructors (NewOptmin, NewBaseline, Run, NewGraph, …)
// remain exported for single-shot use and for the analysis tooling
// (certificates, searches, topology).
//
// # Analyses
//
// The paper's unbeatability machinery rides the same facade. Analyses
// are named, parameterized families in an AnalysisRegistry — resolved
// exactly like workloads, with family names that may themselves contain
// colons — and run through Engine.Analyze / Engine.AnalyzeStream:
//
//	rep, err := eng.Analyze(ctx, "search:optmin:n=3,t=2,r=3,width=2")
//	rep, err = eng.AnalyzeStream(ctx, "forced:k=3", func(p setconsensus.AnalysisProgress) {
//		log.Printf("%s %d/%d", p.Stage, p.Done, p.Total)
//	})
//	fmt.Println(setconsensus.AnalysisTable(rep).Render())
//
// The built-in families:
//
//	search:optmin  bounded deviation search vs Optmin[k]   n=3 t=2 k=<engine k> r=t+1 v=0..k width=2
//	search:upmin   bounded deviation search vs u-Pmin[k]   same, uniform agreement
//	lemma2         hidden-run construction + verification  c=<engine k> m=2 extra=2
//	forced         Lemma 1/3 cannot-decide certificates    k=<engine k> m=2 extra=2
//
// An analysis is a staged pipeline owned by the Engine. The search
// families compile every run of an exhaustive space through the pooled
// Backend.RunInto path (knowledge graphs rebuilt in a recycled Builder
// arena, view sequences interned by zero-copy binary fingerprints into
// slab-carved compiled runs), then stride the deviation candidates
// across the worker pool: each worker owns scratch and private counters
// merged once, candidates simulate only the runs their views occur in,
// and the first dominating candidate in canonical order short-circuits
// the remaining work. The certificate families shard graph nodes across
// the same pool. Reports are deterministic in the configuration alone —
// Engine.Analyze with Parallelism 1 and Parallelism N return identical
// AnalysisReports, pinned by tests under -race.
//
// The AnalysisReport schema is typed end to end: search outcomes carry a
// SearchReport whose Witness (if any) is the deviation list plus the
// strict-win adversary's canonical fingerprint — data, not prose; every
// report type renders through String. A beaten search's counters cover
// the canonical enumeration prefix through the minimal dominating
// candidate. cmd/setconsensus -analyze and cmd/experiments -analyze
// drive the same families from the command line (exit 1 when a claim
// fails to verify), and -list-analyses lists the registry.
//
// # Jobs and the Service
//
// Everything above is also operable as a long-running job service:
// cmd/setconsensusd accepts sweep and analysis jobs over HTTP/JSON,
// runs them on a bounded queue with per-job context deadlines and a
// configurable worker pool, and streams progress over SSE. A job is a
// kind ("sweep" | "analysis") plus the same references the CLIs take —
// protocol refs and a workload reference, or an analysis reference —
// resolved through the same registries, so anything expressible as
// `setconsensus -workload/-analyze` is expressible as a job. Its
// lifecycle is queued → running → done | failed | cancelled; DELETE
// cancels through the job's context, terminal results (the same Summary
// / AnalysisReport JSON) are retained in a bounded in-memory store, and
// every budget — worker count, queue depth, per-job deadline, max
// adversary space per job, retained results — is a validated
// service.Params field with a typed rejection error. Engine progress
// plumbs through: SweepSourceProgress emits throttled SweepProgress
// snapshots (adversaries and runs folded so far) that the service
// relays as SSE "progress" events, and AnalyzeStream's stage snapshots
// stream the same way. `setconsensus -server URL` submits sweeps and
// analyses as remote jobs and renders the returned result through the
// identical table path, byte-for-byte. internal/service holds the
// embeddable Server and Client; /debug/vars (expvar), GET /metrics
// (Prometheus text exposition), and /debug/pprof expose counters
// (queue depth, runs/s, graphs revived vs rebuilt, run-kit and chunk
// pool hit rates) and profiles.
//
// # Distributed Sweeps
//
// One exhaustive sweep can be sharded across many workers through the
// internal/coord coordinator (CLI surface: setconsensus -coordinate).
// Its vocabulary:
//
//	range       a window [offset, offset+limit) of the workload's
//	            canonical enumeration order — the unit of distribution,
//	            swept via RangeSource
//	lease       a time-bounded grant of one range to one worker; an
//	            expired lease (stalled or vanished worker) is re-issued,
//	            and duplicate completions merge idempotently by offset
//	checkpoint  the coordinator's state — done ranges with their partial
//	            Summaries, pending ranges with attempt counts, the
//	            enumeration frontier — written atomically to a JSON file
//	            after every completed range
//	resume      re-running the same invocation against an existing
//	            checkpoint: the file is validated against the workload,
//	            protocol refs, and range size, finished ranges are
//	            merged without re-sweeping, and only unfinished ranges
//	            run
//
// The fault-tolerance vocabulary layered on top (PR 8):
//
//	chaos       deterministic fault injection (internal/chaos): a seeded
//	            injector with named points — worker crash, straggler
//	            stall, dropped/duplicated completion, transient HTTP
//	            error, SSE disconnect, torn checkpoint write — threaded
//	            through the coordinator, both worker transports, and the
//	            service client; nil (the default) never fires. CLI
//	            surface: setconsensus -coordinate -chaos SPEC, tallies
//	            on stderr only
//	quarantine  the open state of a worker's circuit breaker: after
//	            BreakerThreshold consecutive failures the worker draws
//	            no new ranges, and the failure that tripped it refunds
//	            the range's attempt (the fault is attributed to the
//	            worker, not the range)
//	probation   re-admission from quarantine: once the probation window
//	            passes, the worker gets exactly one trial range —
//	            success closes the breaker, failure re-opens it with a
//	            doubled window
//	.bak        the last-good checkpoint sibling: checkpoints embed a
//	            CRC-32 of their own JSON, intact writes refresh the
//	            .bak, and a torn or tampered primary falls back to it
//	            automatically on resume (version and identity
//	            mismatches still reject with typed errors)
//
// The resource-governance vocabulary (PR 9, internal/govern):
//
//	ceiling     a byte limit over the governor's live account of metered
//	            arena/pool bytes: the soft ceiling stops pool retention
//	            and starts shedding, the hard ceiling rejects new
//	            admissions with the typed ErrMemoryBudget — running
//	            work is never aborted for memory
//	shedding    the over-soft-ceiling mode: pools free released buffers
//	            instead of recycling them and the service answers new
//	            submissions 429 with Retry-After; latched with
//	            ShedHoldoff of hysteresis so the signal decays by time,
//	            not with the microsecond-scale oscillation of the
//	            account
//	readiness   GET /readyz: 200 when accepting work, 503 while
//	            shedding or draining — the load-balancer signal, as
//	            opposed to /healthz liveness
//	watchdog    the stuck-job monitor: progress callbacks Touch an
//	            atomic clock, and a job whose clock stops advancing for
//	            the progress deadline is cancelled with the typed
//	            ErrStalled cause; a recovered worker panic likewise
//	            becomes a typed *PanicError job failure with the
//	            panic-origin stack retained, never a dead daemon
//
// Workers come in two transports behind one interface: in-process
// Engines sweeping RangeSource windows, and setconsensusd servers
// (-join) receiving range-scoped jobs — a JobRequest carrying offset
// and limit, admitted against the server's space budget by the window
// rather than the full space, so a fleet collectively sweeps spaces no
// single server would admit. Because Summary.Merge is associative and
// commutative and the enumeration order is canonical, any partition of
// the offset space merges to the byte-identical monolithic summary
// (pinned by TestRangePartitionEquivalence); kill-and-resume
// byte-equality is drilled end-to-end by scripts/smoke_coord.sh in CI,
// and scripts/smoke_chaos.sh re-drills it under an armed fault schedule
// with a torn-checkpoint recovery leg.
//
// # Performance
//
// The fleet-wide hot path is knowledge-graph construction: every oracle
// run pays one graph per adversary, and SweepSource streams tens of
// thousands of adversaries through it. The graph is therefore
// arena-backed: all layer bitsets and value sets live in a single
// []uint64 slab, the derived tables (known crashes, hidden counts,
// hidden capacity, failure counts, minima) are flat []int slabs indexed
// by stride arithmetic, and the paper's Definition 2/3 set computations
// run word-parallel over the arena (internal/bitset supplies the
// AndNotCount / OrCount / CopyFrom kernels). Building a graph costs six
// allocations regardless of n and horizon; a knowledge.Builder with
// Graph.Release recycles even those, and aggregating sweeps
// (SweepSource with the graph cache disabled) give each worker a
// private builder so a whole shard reuses one arena. Because an
// exhaustive enumeration yields every input vector of one canonical
// failure pattern consecutively, the Builder additionally revives a
// released same-pattern graph: the views, known-crash, and hidden
// tables are reused verbatim and only the value layer is recomputed, so
// the steady state of a pattern block is an allocation-free ~1µs
// rebuild. Equivalence with the retained naive implementation is
// enforced node-for-node over randomized adversaries
// (internal/knowledge/equiv_test.go, revive_test.go).
//
// The delta layer (PR 10) sharpens the same observation into incremental
// graph maintenance — its vocabulary:
//
//	delta order    within one pattern block the enumeration emits input
//	               vectors in reflected (mixed-radix) Gray-code order, so
//	               consecutive adversaries differ in exactly one process's
//	               initial value; Space.DeltaOrder / DeltaRange annotate
//	               each adversary with that changed process (-1 at block
//	               boundaries and resume entry points), at the same
//	               offsets All and Range address
//	patch          the one-diff Build path (Builder.Patch is the explicit
//	               form): when the parked spare shares the pattern and the
//	               inputs differ in a single process, only the value and
//	               knowledge words of the views that ever see that process
//	               are rewritten — the layer bitsets, crash tables, and
//	               untouched views are bit-for-bit the spare's
//	               (internal/knowledge/patch_test.go pins this node for
//	               node); a zero-diff rebuild skips entirely
//	touched views  the CSR table built once per full build that maps each
//	               process to the views it reaches — the patch kernel's
//	               worklist, so a patch is O(views seeing the change), not
//	               O(graph)
//
// Sweep executors align worker chunk boundaries to multiples of the
// pattern-block stride (PatternBlocked / Space.PatternBlock), so a chunk
// pays one full build at its first adversary and patches the rest;
// Engine.Stats meters the split exactly (GraphsRebuilt = one per
// canonical pattern, GraphsPatched = everything else, pinned by
// TestSweepSourceMetersPatches). The unbeatability compile stage rides
// the same order: Compiler.Add diffs consecutive adversaries and copies
// interned view ids forward for every view the changed process never
// reaches, skipping fingerprint encoding and interning for the bulk of
// each block.
//
// The aggregating sweep itself is sharded and pooled. Each SweepSource
// worker folds its runs into private per-protocol accumulators
// (internal/agg.Acc — plain integer bumps, no maps, no locks) and
// merges them into the shared Summary exactly once, when its shard is
// drained (Summary.Merge is the public form of the same operation), so
// throughput scales with Parallelism instead of serializing on an
// aggregator mutex. Runs go through Backend.RunInto, which executes
// into a per-worker RunBuffer: one reused Result, slab-backed
// decisions, scratch-set task verification (internal/check.Scratch),
// and no rendered adversary strings — the display string is a memoized
// lazy closure, materialized only when a retained Result actually needs
// it. Enumeration feeds workers through pooled chunks and dedups
// canonical failure patterns on compact binary fingerprints
// (FailurePattern.AppendFingerprint) built in one reused buffer,
// carving adversaries out of slab blocks. The aggregating path
// allocates ~2 objects per adversary, all of them the adversary itself.
//
// Cache keys are compact binary encodings, not rendered strings: both
// the per-view Fingerprint (view interning in the unbeatability search
// and protocol complexes) and Adversary.Fingerprint (the engine's graph
// cache) encode varints plus raw bitset words and are hashed once by
// the map that holds them. Protocol instances are cached per
// (ref, params) — decision rules are pure functions of the view, so one
// instance serves all workers.
//
// The analysis pipeline reuses all of it: search compilation runs on
// RunInto with Builder-revived graphs and interns views through
// Graph.AppendFingerprint (the zero-copy form of Fingerprint — map
// lookup via string(bytes), key materialized only on a miss), compiled
// runs are carved from slabs, and candidate testing is allocation-free
// per candidate (per-worker testScratch; pinned by
// internal/unbeat/scratch_test.go). The pre-pipeline search is retained
// verbatim as internal/unbeat/reference.go, enforced report-for-report
// by equivalence tests and measured by the
// BenchmarkAnalyze/BenchmarkSearchReference ablation pair.
//
// BENCH_baseline.json records the measured trajectory per PR
// (pr4_post is the sharded/pooled sweep: BenchmarkSweepSource 3.4ms →
// 1.0ms and 29.3k → 1.6k allocs/op vs pr3_post; pr5_post is the
// analysis pipeline: the seeded deviation search 112.2ms/1.21M allocs →
// 29.2ms/22.3k through Engine.Analyze; pr6_post adds the job service —
// BenchmarkServiceSubmit puts the full job lifecycle at ~76µs/202
// allocs over the underlying sweep); CI uploads benchstat-comparable
// output per run and gates >20% ns/op regressions on the sweep,
// analysis, and service hot paths via cmd/benchguard. To profile
// locally:
//
//	go test -run xxx -bench BenchmarkSweepSource -cpuprofile cpu.out .
//	go tool pprof -top cpu.out
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for the
// measured reproduction of every figure and theorem.
package setconsensus
