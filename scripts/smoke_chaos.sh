#!/usr/bin/env bash
# Chaos smoke test, run by the CI `smoke-chaos` job and runnable
# locally: build the CLI, take a faultless single-process sweep as the
# reference, then (1) run a coordinated sweep under a seeded fault
# schedule — worker crashes, stragglers, dropped and duplicated
# completions, one torn checkpoint write — and assert its stdout is
# byte-identical to the reference while the stderr tally proves faults
# actually fired; (2) truncate the primary checkpoint as a torn write
# would and assert the re-run falls back to the .bak of the last good
# state and still renders the identical table.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
cleanup() {
    # No background processes today, but failure paths must stay clean
    # if one is ever added: sweep the job table before removing state.
    stray=$(jobs -p)
    [ -n "$stray" ] && kill $stray 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build"
go build -o "$workdir/setconsensus" ./cmd/setconsensus

# Same sizing as smoke_coord.sh: ~64 ranges, O(seconds) in CI. The
# lease is short so dropped completions re-issue quickly instead of
# stalling the run for the default 30s.
workload="space:n=5,t=2,r=2,v=0..1"
protocols="optmin,upmin"
range_size=2048
ckpt="$workdir/chaos.ckpt"
spec="seed=1337,crash=0.04,straggler=0.15,delay=5ms,drop=0.5#2,dup=0.1,torn#1"

echo "== faultless single-process reference sweep"
"$workdir/setconsensus" -protocol "$protocols" -workload "$workload" \
    >"$workdir/mono.txt"

echo "== coordinated sweep under chaos: $spec"
"$workdir/setconsensus" -coordinate -workers 3 -range-size "$range_size" \
    -lease 1s -chaos "$spec" -checkpoint "$ckpt" \
    -protocol "$protocols" -workload "$workload" \
    >"$workdir/chaos.txt" 2>"$workdir/chaos.err"
diff -u "$workdir/mono.txt" "$workdir/chaos.txt"
echo "   chaotic output identical to faultless single-process run"

grep '^chaos: injected ' "$workdir/chaos.err" || {
    echo "FAIL: no chaos tally on stderr"
    cat "$workdir/chaos.err"
    exit 1
}
if grep -q '^chaos: injected none$' "$workdir/chaos.err"; then
    echo "FAIL: fault schedule fired nothing"
    cat "$workdir/chaos.err"
    exit 1
fi
# The torn#1 budget guarantees at least the torn-write fault fired.
grep -q '^chaos: injected .*torn=1' "$workdir/chaos.err" || {
    echo "FAIL: torn checkpoint write did not fire"
    cat "$workdir/chaos.err"
    exit 1
}
grep '^coord: ' "$workdir/chaos.err"

echo "== checkpoint integrity: v2 schema, sealed, with a .bak sibling"
python3 - "$ckpt.bak" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d['version'] == 2, d['version']
assert d.get('checksum'), 'no integrity checksum'
assert d['exhausted'] and not d['pending'], 'final .bak is not the completed state'
print('   .bak holds the sealed final state (%d ranges done)' % len(d['done']))
EOF

echo "== truncate the primary checkpoint; re-run must fall back to .bak"
python3 - "$ckpt" <<'EOF'
import sys
blob = open(sys.argv[1], 'rb').read()
open(sys.argv[1], 'wb').write(blob[:len(blob)//2])
EOF
"$workdir/setconsensus" -coordinate -workers 3 -range-size "$range_size" \
    -lease 1s -chaos "seed=7" -checkpoint "$ckpt" \
    -protocol "$protocols" -workload "$workload" \
    >"$workdir/resumed.txt" 2>"$workdir/resumed.err"
diff -u "$workdir/mono.txt" "$workdir/resumed.txt"
grep -q 'ckpt-fallbacks=1' "$workdir/resumed.err" || {
    echo "FAIL: resume did not report the .bak fallback"
    cat "$workdir/resumed.err"
    exit 1
}
echo "   torn primary recovered from .bak; output identical"

echo "smoke ok"
