#!/usr/bin/env bash
# Smoke test for setconsensusd, run by the CI `smoke` job and runnable
# locally: build the server and the CLI, start the server on a random
# port, submit a sweep and an analysis job over raw HTTP, poll both to
# completion, check that `setconsensus -server` output is byte-identical
# to the local run (analysis output modulo the timing-dependent
# "stage ..." progress lines), verify the expvar/stats counters are
# live and moving, and drain gracefully on SIGTERM.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
daemon=""
cleanup() {
    [ -n "$daemon" ] && kill "$daemon" 2>/dev/null || true
    # Whatever failure path got us here, nothing this shell spawned may
    # outlive it: sweep the job table, then reap before removing state.
    stray=$(jobs -p)
    [ -n "$stray" ] && kill $stray 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build"
go build -o "$workdir/setconsensusd" ./cmd/setconsensusd
go build -o "$workdir/setconsensus" ./cmd/setconsensus

json() { python3 -c "import json,sys; print(json.load(sys.stdin)$1)"; }

echo "== start"
base=""
for attempt in 1 2 3; do
    port=$(( (RANDOM % 20000) + 20000 ))
    addr="127.0.0.1:$port"
    "$workdir/setconsensusd" -addr "$addr" -workers 2 -deadline 2m \
        -drain-grace 30s >"$workdir/daemon.log" 2>&1 &
    daemon=$!
    for _ in $(seq 1 50); do
        if curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then
            base="http://$addr"
            break 2
        fi
        if ! kill -0 "$daemon" 2>/dev/null; then
            daemon=""
            break # bind failure (port taken): try another port
        fi
        sleep 0.1
    done
    [ -n "$daemon" ] && kill "$daemon" 2>/dev/null && wait "$daemon" 2>/dev/null || true
    daemon=""
done
if [ -z "$base" ]; then
    echo "FAIL: server did not come up"
    cat "$workdir/daemon.log"
    exit 1
fi
echo "   listening on $base"

workload="space:n=4,t=2,r=2,v=0..1"
analysis="search:optmin:n=3,t=2,r=2,width=2"

echo "== submit jobs"
sweep_id=$(curl -fsS "$base/v1/jobs" -H 'Content-Type: application/json' -d "{
    \"kind\":\"sweep\",\"refs\":[\"optmin\",\"upmin\"],
    \"workload\":\"$workload\",\"params\":{\"t\":2}}" | json '["id"]')
analysis_id=$(curl -fsS "$base/v1/jobs" -H 'Content-Type: application/json' -d "{
    \"kind\":\"analysis\",\"analysis\":\"$analysis\"}" | json '["id"]')
echo "   sweep=$sweep_id analysis=$analysis_id"

echo "== expvar live while jobs are in flight"
curl -fsS "$base/debug/vars" | python3 -c '
import json, sys
m = json.load(sys.stdin)["setconsensusd"]
for k in ("jobs_queued", "jobs_running", "jobs_done", "queue_depth",
          "runs_total", "runs_per_sec", "graphs_rebuilt", "graphs_revived"):
    assert k in m, f"expvar missing {k}: {m}"
assert m["jobs_queued"] >= 2, m
print("   expvar ok:", {k: m[k] for k in sorted(m)})
'

poll() {
    local id=$1 state
    for _ in $(seq 1 600); do
        state=$(curl -fsS "$base/v1/jobs/$id" | json '["state"]')
        case "$state" in done|failed|cancelled) echo "$state"; return ;; esac
        sleep 0.1
    done
    echo timeout
}

echo "== poll to completion"
for id in "$sweep_id" "$analysis_id"; do
    state=$(poll "$id")
    if [ "$state" != done ]; then
        echo "FAIL: job $id finished '$state'"
        curl -fsS "$base/v1/jobs/$id"
        exit 1
    fi
    echo "   $id done"
done

echo "== CLI parity: local output == -server output"
"$workdir/setconsensus" -protocol optmin,upmin -t 2 -workload "$workload" \
    >"$workdir/sweep-local.txt"
"$workdir/setconsensus" -server "$base" -protocol optmin,upmin -t 2 \
    -workload "$workload" >"$workdir/sweep-remote.txt"
diff -u "$workdir/sweep-local.txt" "$workdir/sweep-remote.txt"
echo "   sweep output identical"

"$workdir/setconsensus" -analyze "$analysis" | grep -v '^stage ' \
    >"$workdir/analysis-local.txt"
"$workdir/setconsensus" -server "$base" -analyze "$analysis" | grep -v '^stage ' \
    >"$workdir/analysis-remote.txt"
diff -u "$workdir/analysis-local.txt" "$workdir/analysis-remote.txt"
echo "   analysis output identical (modulo stage progress lines)"

echo "== stats counters moved"
curl -fsS "$base/v1/stats" | python3 -c '
import json, sys
s = json.load(sys.stdin)
assert s["jobs_done"] >= 4, s   # 2 curl jobs + 2 -server jobs
assert s["jobs_failed"] == 0 and s["jobs_cancelled"] == 0, s
assert s["runs_total"] > 0, s
print("   stats ok:", s)
'

echo "== SIGTERM graceful drain"
kill -TERM "$daemon"
for _ in $(seq 1 100); do
    kill -0 "$daemon" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$daemon" 2>/dev/null; then
    echo "FAIL: daemon still alive 10s after SIGTERM"
    exit 1
fi
daemon=""
grep -q "drained" "$workdir/daemon.log" || {
    echo "FAIL: no drain log line"
    cat "$workdir/daemon.log"
    exit 1
}
echo "smoke ok"
