#!/usr/bin/env bash
# Smoke test for coordinated sweeps, run by the CI `smoke-coord` job and
# runnable locally: build the CLI and the server, take a single-process
# sweep as the reference output, then (1) start a coordinated sweep with
# a checkpoint file, SIGKILL it mid-flight once at least one range has
# completed, assert the checkpoint holds a resumable partial state,
# re-run the identical invocation and check the resumed output is
# byte-identical to the reference; (2) run a coordinated sweep that
# enlists a live setconsensusd via -join and check that distributed
# output is byte-identical too, with the server's /metrics reflecting
# the range jobs it ran.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
daemon=""
coordpid=""
cleanup() {
    [ -n "$daemon" ] && kill "$daemon" 2>/dev/null || true
    [ -n "$coordpid" ] && kill -KILL "$coordpid" 2>/dev/null || true
    # Whatever failure path got us here, nothing this shell spawned may
    # outlive it: sweep the job table, then reap before removing state.
    stray=$(jobs -p)
    [ -n "$stray" ] && kill $stray 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build"
go build -o "$workdir/setconsensus" ./cmd/setconsensus
go build -o "$workdir/setconsensusd" ./cmd/setconsensusd

# Big enough that the coordinated run takes O(seconds) split across
# ~64 ranges (so a mid-flight SIGKILL reliably lands on a partial
# checkpoint), small enough to stay friendly to CI.
workload="space:n=5,t=2,r=2,v=0..1"
protocols="optmin,upmin"
range_size=2048
ckpt="$workdir/sweep.ckpt"

echo "== single-process reference sweep"
"$workdir/setconsensus" -protocol "$protocols" -workload "$workload" \
    >"$workdir/mono.txt"

echo "== coordinated sweep, SIGKILL mid-flight"
"$workdir/setconsensus" -coordinate -workers 2 -range-size "$range_size" \
    -checkpoint "$ckpt" -protocol "$protocols" -workload "$workload" \
    >"$workdir/killed.txt" 2>&1 &
coordpid=$!
killed=""
for _ in $(seq 1 500); do
    if ! kill -0 "$coordpid" 2>/dev/null; then
        break # finished before we could kill it: resume still must work
    fi
    if [ -s "$ckpt" ] && python3 -c "
import json, sys
try:
    d = json.load(open('$ckpt'))
except Exception:
    sys.exit(1)  # mid-rename or partial read: poll again
sys.exit(0 if len(d.get('done', [])) >= 1 else 1)
" 2>/dev/null; then
        kill -KILL "$coordpid"
        killed=yes
        break
    fi
    sleep 0.01
done
wait "$coordpid" 2>/dev/null || true
coordpid=""
if [ -z "$killed" ]; then
    echo "WARN: sweep finished before SIGKILL landed; resume will be a no-op merge"
else
    echo "   killed with $(python3 -c "
import json
print(len(json.load(open('$ckpt'))['done']))") ranges done"
    python3 -c "
import json, sys
d = json.load(open('$ckpt'))
assert d['version'] == 2, d['version']
assert d.get('checksum'), 'checkpoint carries no integrity checksum'
assert len(d['done']) >= 1, 'no completed ranges in checkpoint'
assert d['pending'] or not d['exhausted'], 'checkpoint already complete; kill landed too late'
print('   checkpoint is a resumable partial state')
"
fi

echo "== resume from checkpoint"
"$workdir/setconsensus" -coordinate -workers 2 -range-size "$range_size" \
    -checkpoint "$ckpt" -protocol "$protocols" -workload "$workload" \
    >"$workdir/resumed.txt"
diff -u "$workdir/mono.txt" "$workdir/resumed.txt"
echo "   resumed output identical to single-process run"

echo "== start setconsensusd for the -join leg"
base=""
for attempt in 1 2 3; do
    port=$(( (RANDOM % 20000) + 20000 ))
    addr="127.0.0.1:$port"
    "$workdir/setconsensusd" -addr "$addr" -workers 2 -deadline 2m \
        >"$workdir/daemon.log" 2>&1 &
    daemon=$!
    for _ in $(seq 1 50); do
        if curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then
            base="http://$addr"
            break 2
        fi
        if ! kill -0 "$daemon" 2>/dev/null; then
            daemon=""
            break # bind failure (port taken): try another port
        fi
        sleep 0.1
    done
    [ -n "$daemon" ] && kill "$daemon" 2>/dev/null && wait "$daemon" 2>/dev/null || true
    daemon=""
done
if [ -z "$base" ]; then
    echo "FAIL: server did not come up"
    cat "$workdir/daemon.log"
    exit 1
fi
echo "   listening on $base"

echo "== coordinated sweep with remote workers"
"$workdir/setconsensus" -coordinate -workers 1 -join "$base" \
    -range-size "$range_size" -protocol "$protocols" -workload "$workload" \
    >"$workdir/joined.txt"
diff -u "$workdir/mono.txt" "$workdir/joined.txt"
echo "   distributed output identical to single-process run"

echo "== server /metrics saw the range jobs"
curl -fsS "$base/metrics" >"$workdir/metrics.txt"
grep -q '^setconsensusd_jobs_done [1-9]' "$workdir/metrics.txt" || {
    echo "FAIL: /metrics shows no completed jobs"
    cat "$workdir/metrics.txt"
    exit 1
}
grep -q '^# TYPE setconsensusd_runs_total counter$' "$workdir/metrics.txt"
echo "   $(grep '^setconsensusd_jobs_done' "$workdir/metrics.txt")"

kill "$daemon" 2>/dev/null || true
wait "$daemon" 2>/dev/null || true
daemon=""
echo "smoke ok"
