#!/usr/bin/env bash
# Resource-governance smoke test, run by the CI `smoke-govern` job and
# runnable locally: build the daemon and CLI, then (1) start a daemon
# with a one-byte soft memory ceiling so any running sweep flips it to
# shedding — assert submissions during the sweep are rejected 429 with
# Retry-After and /readyz reports 503, assert the sweep's own output is
# byte-identical to a local run despite the pools shedding the whole
# way, and assert the governor gauges moved in /metrics; (2) restart the
# daemon with the chaos "panic" point armed — assert the panicked job
# fails typed with its stack retained while the daemon keeps serving the
# next job clean.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
daemon=""
cleanup() {
    [ -n "$daemon" ] && kill "$daemon" 2>/dev/null || true
    # Whatever failure path got us here, nothing this shell spawned may
    # outlive it: sweep the job table, then reap before removing state.
    stray=$(jobs -p)
    [ -n "$stray" ] && kill $stray 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build"
go build -o "$workdir/setconsensusd" ./cmd/setconsensusd
go build -o "$workdir/setconsensus" ./cmd/setconsensus

json() { python3 -c "import json,sys; print(json.load(sys.stdin)$1)"; }

# start <extra daemon flags...>: boot a daemon on a random port, retrying
# bind collisions, and set $base/$daemon.
start() {
    base=""
    for attempt in 1 2 3; do
        port=$(( (RANDOM % 20000) + 20000 ))
        addr="127.0.0.1:$port"
        "$workdir/setconsensusd" -addr "$addr" -deadline 2m -drain-grace 30s \
            "$@" >"$workdir/daemon.log" 2>&1 &
        daemon=$!
        for _ in $(seq 1 50); do
            if curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then
                base="http://$addr"
                break 2
            fi
            if ! kill -0 "$daemon" 2>/dev/null; then
                daemon=""
                break # bind failure (port taken): try another port
            fi
            sleep 0.1
        done
        [ -n "$daemon" ] && kill "$daemon" 2>/dev/null && wait "$daemon" 2>/dev/null || true
        daemon=""
    done
    if [ -z "$base" ]; then
        echo "FAIL: server did not come up"
        cat "$workdir/daemon.log"
        exit 1
    fi
    echo "   listening on $base"
}

stop() {
    kill -TERM "$daemon" 2>/dev/null || true
    for _ in $(seq 1 100); do
        kill -0 "$daemon" 2>/dev/null || break
        sleep 0.1
    done
    daemon=""
}

poll() {
    local id=$1 state
    for _ in $(seq 1 600); do
        state=$(curl -fsS "$base/v1/jobs/$id" | json '["state"]')
        case "$state" in done|failed|cancelled) echo "$state"; return ;; esac
        sleep 0.1
    done
    echo timeout
}

workload="space:n=5,t=2,r=2,v=0..1"
protocols='"optmin","upmin"'

echo "== leg 1: shedding under a one-byte soft ceiling"
start -workers 1 -memlimit-soft 1 -memlimit 512MiB

echo "== local reference sweep"
"$workdir/setconsensus" -protocol optmin,upmin -t 2 -workload "$workload" \
    >"$workdir/sweep-local.txt"

echo "== submit the governed sweep"
sweep_id=$(curl -fsS "$base/v1/jobs" -H 'Content-Type: application/json' -d "{
    \"kind\":\"sweep\",\"refs\":[$protocols],
    \"workload\":\"$workload\",\"params\":{\"t\":2}}" | json '["id"]')
echo "   sweep=$sweep_id"

echo "== overflow while it runs: 429 + Retry-After, /readyz 503"
# The governor latches shedding for its holdoff window, so while the
# sweep allocates over the one-byte ceiling both surfaces answer
# deterministically; the loop only rides out job startup.
shed_seen=""
ready_seen=""
for _ in $(seq 1 600); do
    state=$(curl -fsS "$base/v1/jobs/$sweep_id" | json '["state"]')
    [ "$state" = done ] && break
    if [ -z "$shed_seen" ]; then
        curl -sS -D "$workdir/overflow.hdr" -o "$workdir/overflow.body" \
            "$base/v1/jobs" -H 'Content-Type: application/json' \
            -d '{"kind":"sweep","refs":["optmin"],"workload":"collapse:k=1,r=2"}'
        if grep -q "^HTTP/1.1 429" "$workdir/overflow.hdr"; then
            grep -qi "^Retry-After:" "$workdir/overflow.hdr" || {
                echo "FAIL: 429 without Retry-After"; cat "$workdir/overflow.hdr"; exit 1
            }
            grep -q "shedding" "$workdir/overflow.body" || {
                echo "FAIL: 429 body is not the shed rejection:"; cat "$workdir/overflow.body"; exit 1
            }
            shed_seen=yes
        fi
    fi
    if [ -z "$ready_seen" ]; then
        ready=$(curl -s -o /dev/null -w "%{http_code}" "$base/readyz")
        [ "$ready" = 503 ] && ready_seen=yes
    fi
    [ -n "$shed_seen" ] && [ -n "$ready_seen" ] && break
    sleep 0.02
done
if [ -z "$shed_seen" ] || [ -z "$ready_seen" ]; then
    echo "FAIL: mid-sweep observations incomplete (429 shed: ${shed_seen:-no}, /readyz 503: ${ready_seen:-no})"
    cat "$workdir/overflow.hdr" 2>/dev/null || true
    exit 1
fi
echo "   429 + Retry-After and /readyz 503 observed mid-sweep"

echo "== admitted job byte-identical despite shedding"
state=$(poll "$sweep_id")
if [ "$state" != done ]; then
    echo "FAIL: governed sweep finished '$state'"
    curl -fsS "$base/v1/jobs/$sweep_id"
    exit 1
fi
"$workdir/setconsensus" -server "$base" -protocol optmin,upmin -t 2 \
    -workload "$workload" >"$workdir/sweep-remote.txt"
diff -u "$workdir/sweep-local.txt" "$workdir/sweep-remote.txt"
echo "   output identical"

echo "== governor gauges in /metrics"
curl -fsS "$base/metrics" >"$workdir/metrics.txt"
for key in mem_live_bytes mem_soft_limit_bytes mem_hard_limit_bytes \
           mem_sheds panics_recovered watchdog_cancels; do
    grep -q "^setconsensusd_$key " "$workdir/metrics.txt" || {
        echo "FAIL: /metrics missing $key"; cat "$workdir/metrics.txt"; exit 1
    }
done
sheds=$(awk '$1 == "setconsensusd_mem_sheds" {print $2}' "$workdir/metrics.txt")
[ "$sheds" -ge 1 ] || { echo "FAIL: mem_sheds=$sheds, want >= 1"; exit 1; }
echo "   gauges present, mem_sheds=$sheds"
stop

echo "== leg 2: daemon survives an injected job panic"
start -workers 1 -chaos panic#1

panic_id=$(curl -fsS "$base/v1/jobs" -H 'Content-Type: application/json' -d '{
    "kind":"sweep","refs":["optmin"],"workload":"collapse:k=1,r=2"}' | json '["id"]')
state=$(poll "$panic_id")
[ "$state" = failed ] || { echo "FAIL: panicked job finished '$state', want failed"; exit 1; }
curl -fsS "$base/v1/jobs/$panic_id" | json '["error"]' >"$workdir/panic.err"
grep -q "panic" "$workdir/panic.err" || {
    echo "FAIL: panicked job error carries no panic:"; cat "$workdir/panic.err"; exit 1
}
echo "   panicked job failed typed: $(head -c 80 "$workdir/panic.err")..."

kill -0 "$daemon" || { echo "FAIL: daemon died with the panicking job"; exit 1; }
clean_id=$(curl -fsS "$base/v1/jobs" -H 'Content-Type: application/json' -d '{
    "kind":"sweep","refs":["optmin"],"workload":"collapse:k=1,r=2"}' | json '["id"]')
state=$(poll "$clean_id")
[ "$state" = done ] || { echo "FAIL: post-panic job finished '$state', want done"; exit 1; }
recovered=$(curl -fsS "$base/metrics" | awk '$1 == "setconsensusd_panics_recovered" {print $2}')
[ "$recovered" -ge 1 ] || { echo "FAIL: panics_recovered=$recovered, want >= 1"; exit 1; }
echo "   daemon survived: next job done, panics_recovered=$recovered"
stop

echo "PASS: resource-governance smoke"
