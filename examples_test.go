package setconsensus_test

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestExamplesBuildAndRun smoke-tests every examples/ binary: each must
// build and run to completion without error output. The examples are the
// documented entry points to the Engine/Registry facade, so a compile
// break or runtime failure there is an API regression.
func TestExamplesBuildAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke test skipped in -short mode")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no examples found")
	}
	binDir := t.TempDir()
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			bin := filepath.Join(binDir, name)
			build := exec.Command("go", "build", "-o", bin, "./"+filepath.Join("examples", name))
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build: %v\n%s", err, out)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			run := exec.CommandContext(ctx, bin)
			out, err := run.CombinedOutput()
			if err != nil {
				t.Fatalf("run: %v\n%s", err, out)
			}
			if len(out) == 0 {
				t.Fatal("example produced no output")
			}
		})
	}
}
