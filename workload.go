package setconsensus

import (
	"fmt"
	"iter"
	"sort"
	"strconv"
	"strings"
	"sync"

	"setconsensus/internal/model"
)

// WorkloadSpec describes one named, parameterized adversary family: how
// to build a Source from string arguments and the metadata consumers
// need to list and document it. Workloads are registered in a
// WorkloadRegistry and selected by reference strings of the form
// "name" or "name:key=val,key=val", so CLIs and experiments pick
// workloads exactly the way they pick protocols.
//
// Scalar integer parameters accept ranges ("r=2..5" sweeps r over 2, 3,
// 4, 5, one adversary per step), which is how a single reference names a
// whole family curve.
type WorkloadSpec struct {
	// Name is the canonical lookup key, e.g. "collapse". Lookups are
	// case-insensitive.
	Name string
	// Aliases are additional lookup keys.
	Aliases []string
	// Summary is a one-line description for listings.
	Summary string
	// Params documents the accepted keys, e.g. "k=2 r=2..4 extra=k+2
	// low=false". Purely descriptive; parsing happens in New.
	Params string
	// New builds the Source for one parsed argument set.
	New func(args WorkloadArgs) (Source, error)
}

// WorkloadArgs is the parsed key=value argument list of a workload
// reference. The typed getters consume keys; Finish errors on leftovers
// so misspelled parameters never pass silently.
type WorkloadArgs struct {
	kind string // "workload" or "analysis", for error messages
	ref  string
	vals map[string]string
	used map[string]bool
}

func newWorkloadArgs(kind, ref string, vals map[string]string) WorkloadArgs {
	return WorkloadArgs{kind: kind, ref: ref, vals: vals, used: make(map[string]bool)}
}

// Int consumes an integer parameter, returning def when absent.
func (a WorkloadArgs) Int(key string, def int) (int, error) {
	a.used[key] = true
	s, ok := a.vals[key]
	if !ok {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("%s %q: parameter %s=%q is not an integer", a.kind, a.ref, key, s)
	}
	return v, nil
}

// Int64 consumes a 64-bit integer parameter (seeds), returning def when
// absent.
func (a WorkloadArgs) Int64(key string, def int64) (int64, error) {
	a.used[key] = true
	s, ok := a.vals[key]
	if !ok {
		return def, nil
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%s %q: parameter %s=%q is not an integer", a.kind, a.ref, key, s)
	}
	return v, nil
}

// Bool consumes a boolean parameter, returning def when absent.
func (a WorkloadArgs) Bool(key string, def bool) (bool, error) {
	a.used[key] = true
	s, ok := a.vals[key]
	if !ok {
		return def, nil
	}
	v, err := strconv.ParseBool(s)
	if err != nil {
		return false, fmt.Errorf("%s %q: parameter %s=%q is not a boolean", a.kind, a.ref, key, s)
	}
	return v, nil
}

// Range consumes an integer-or-range parameter ("3" or "2..5"),
// returning [defLo, defHi] when absent. Lo ≤ Hi is enforced.
func (a WorkloadArgs) Range(key string, defLo, defHi int) (lo, hi int, err error) {
	a.used[key] = true
	s, ok := a.vals[key]
	if !ok {
		return defLo, defHi, nil
	}
	parse := func(part string) (int, error) {
		v, err := strconv.Atoi(part)
		if err != nil {
			return 0, fmt.Errorf("%s %q: parameter %s=%q is not an integer or lo..hi range", a.kind, a.ref, key, s)
		}
		return v, nil
	}
	if loS, hiS, isRange := strings.Cut(s, ".."); isRange {
		if lo, err = parse(loS); err != nil {
			return 0, 0, err
		}
		if hi, err = parse(hiS); err != nil {
			return 0, 0, err
		}
	} else {
		if lo, err = parse(s); err != nil {
			return 0, 0, err
		}
		hi = lo
	}
	if lo > hi {
		return 0, 0, fmt.Errorf("%s %q: empty range %s=%q", a.kind, a.ref, key, s)
	}
	return lo, hi, nil
}

// Finish errors if any supplied parameter was never consumed.
func (a WorkloadArgs) Finish() error {
	var unknown []string
	for k := range a.vals {
		if !a.used[k] {
			unknown = append(unknown, k)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return fmt.Errorf("%s %q: unknown parameter(s) %s", a.kind, a.ref, strings.Join(unknown, ", "))
	}
	return nil
}

// specRegistry is the shared name-resolution core behind the workload
// and analysis registries: case-insensitive canonical names plus
// aliases, registration order, and reference splitting. Registry names
// may themselves contain ':' (the analysis families "search:optmin",
// "search:upmin" do), so splitRef resolves the longest registered
// colon-prefix of a reference and treats the remainder as the argument
// list. All methods are safe for concurrent use.
type specRegistry[S any] struct {
	kind  string // "workloads" / "analyses", for error messages
	mu    sync.RWMutex
	specs map[string]S
	alias map[string]string
	order []string
}

func newSpecRegistry[S any](kind string) *specRegistry[S] {
	return &specRegistry[S]{
		kind:  kind,
		specs: make(map[string]S),
		alias: make(map[string]string),
	}
}

// register adds a spec under its canonical name and aliases. It fails on
// empty or duplicate names, including alias collisions.
func (r *specRegistry[S]) register(name string, aliases []string, spec S) error {
	if name == "" {
		return fmt.Errorf("%s: spec with empty name", r.kind)
	}
	key := strings.ToLower(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.specs[key]; dup {
		return fmt.Errorf("%s: %q already registered", r.kind, name)
	}
	if _, dup := r.alias[key]; dup {
		return fmt.Errorf("%s: name %q already registered as an alias", r.kind, name)
	}
	for _, a := range aliases {
		ak := strings.ToLower(a)
		if _, dup := r.specs[ak]; dup {
			return fmt.Errorf("%s: alias %q collides with a registered name", r.kind, a)
		}
		if _, dup := r.alias[ak]; dup {
			return fmt.Errorf("%s: alias %q already registered", r.kind, a)
		}
	}
	r.specs[key] = spec
	for _, a := range aliases {
		r.alias[strings.ToLower(a)] = key
	}
	r.order = append(r.order, key)
	return nil
}

// lookup resolves an exact name or alias, case-insensitively.
func (r *specRegistry[S]) lookup(name string) (S, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	r.mu.RLock()
	defer r.mu.RUnlock()
	if s, ok := r.specs[key]; ok {
		return s, nil
	}
	if canon, ok := r.alias[key]; ok {
		return r.specs[canon], nil
	}
	var zero S
	known := make([]string, 0, len(r.specs))
	for k := range r.specs {
		known = append(known, k)
	}
	sort.Strings(known)
	return zero, fmt.Errorf("%s: unknown name %q (known: %s)", r.kind, name, strings.Join(known, ", "))
}

// splitRef resolves a reference "name" or "name:key=val,..." against the
// registered names, matching the longest ':'-separated prefix that names
// a spec, and returns the spec plus the unparsed argument remainder.
func (r *specRegistry[S]) splitRef(ref string) (S, string, error) {
	trimmed := strings.TrimSpace(ref)
	segs := strings.Split(trimmed, ":")
	var firstErr error
	for i := len(segs); i >= 1; i-- {
		name := strings.Join(segs[:i], ":")
		s, err := r.lookup(name)
		if err == nil {
			return s, strings.Join(segs[i:], ":"), nil
		}
		if firstErr == nil {
			firstErr = err // the full-reference miss lists the known names
		}
	}
	var zero S
	return zero, "", firstErr
}

// names returns the canonical names in registration order.
func (r *specRegistry[S]) names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}

// all returns the specs in registration order.
func (r *specRegistry[S]) all() []S {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]S, 0, len(r.order))
	for _, k := range r.order {
		out = append(out, r.specs[k])
	}
	return out
}

// parseArgPairs parses the "key=val,key=val" remainder of a reference
// into the WorkloadArgs value map, rejecting malformed and duplicate
// keys. kind labels the reference in errors ("workload" or "analysis").
func parseArgPairs(kind, ref, argStr string) (map[string]string, error) {
	vals := make(map[string]string)
	if argStr == "" {
		return vals, nil
	}
	for _, pair := range strings.Split(argStr, ",") {
		k, v, ok := strings.Cut(pair, "=")
		k = strings.ToLower(strings.TrimSpace(k))
		if !ok || k == "" {
			return nil, fmt.Errorf("%s %q: malformed parameter %q (want key=value)", kind, ref, pair)
		}
		if _, dup := vals[k]; dup {
			return nil, fmt.Errorf("%s %q: duplicate parameter %q", kind, ref, k)
		}
		vals[k] = strings.TrimSpace(v)
	}
	return vals, nil
}

// WorkloadRegistry maps workload names to specs. The zero value is not
// usable; call NewWorkloadRegistry. All methods are safe for concurrent
// use.
type WorkloadRegistry struct {
	reg *specRegistry[*WorkloadSpec]
}

// NewWorkloadRegistry returns an empty workload registry.
func NewWorkloadRegistry() *WorkloadRegistry {
	return &WorkloadRegistry{reg: newSpecRegistry[*WorkloadSpec]("workloads")}
}

// Register adds a spec. It fails on empty or duplicate names (including
// alias collisions) and on specs missing a constructor.
func (r *WorkloadRegistry) Register(spec WorkloadSpec) error {
	if spec.New == nil {
		return fmt.Errorf("workloads: %s: nil constructor", spec.Name)
	}
	s := spec
	return r.reg.register(spec.Name, spec.Aliases, &s)
}

// MustRegister is Register for static registrations.
func (r *WorkloadRegistry) MustRegister(spec WorkloadSpec) {
	if err := r.Register(spec); err != nil {
		panic(err)
	}
}

// Lookup resolves a workload name or alias, case-insensitively.
func (r *WorkloadRegistry) Lookup(name string) (*WorkloadSpec, error) {
	return r.reg.lookup(name)
}

// Names returns the canonical workload names in registration order.
func (r *WorkloadRegistry) Names() []string { return r.reg.names() }

// Specs returns all registered specs in registration order.
func (r *WorkloadRegistry) Specs() []*WorkloadSpec { return r.reg.all() }

// Parse resolves a workload reference — "name" or
// "name:key=val,key=val" — into a Source.
func (r *WorkloadRegistry) Parse(ref string) (Source, error) {
	spec, argStr, err := r.reg.splitRef(ref)
	if err != nil {
		return nil, err
	}
	vals, err := parseArgPairs("workload", ref, argStr)
	if err != nil {
		return nil, err
	}
	return spec.New(newWorkloadArgs("workload", ref, vals))
}

// stepSource is a named family swept over one scalar parameter: one
// adversary per step, built lazily so only one lives at a time. Every
// step is validated eagerly — the same constructions the stream will
// make — so a bad parameterization anywhere in the range surfaces at
// Parse time and the stream can never silently come up short.
func stepSource(label string, lo, hi int, build func(step int) (*Adversary, error)) (Source, error) {
	for step := lo; step <= hi; step++ {
		if _, err := build(step); err != nil {
			return nil, err
		}
	}
	seq := func(yield func(*Adversary) bool) {
		for step := lo; step <= hi; step++ {
			adv, err := build(step)
			if err != nil {
				return // unreachable: every step validated at construction
			}
			if !yield(adv) {
				return
			}
		}
	}
	return FuncSource(label, hi-lo+1, iter.Seq[*Adversary](seq)), nil
}

// defaultWorkloads wires every named adversary family of internal/model
// (see model.Families) plus the exhaustive "space" enumeration into a
// registry. Summaries come from the model package's registration
// metadata, keeping it the single source of truth.
var defaultWorkloads = func() *WorkloadRegistry {
	summaries := make(map[string]string)
	for _, f := range model.Families() {
		summaries[f.Name] = f.Summary
	}
	r := NewWorkloadRegistry()
	r.MustRegister(WorkloadSpec{
		Name:    "hiddenpath",
		Summary: summaries["hiddenpath"],
		Params:  "depth=1..4 n=maxdepth+2",
		New: func(args WorkloadArgs) (Source, error) {
			lo, hi, err := args.Range("depth", 1, 4)
			if err != nil {
				return nil, err
			}
			n, err := args.Int("n", hi+2)
			if err != nil {
				return nil, err
			}
			if err := args.Finish(); err != nil {
				return nil, err
			}
			label := fmt.Sprintf("hiddenpath:n=%d,depth=%d..%d", n, lo, hi)
			return stepSource(label, lo, hi, func(depth int) (*Adversary, error) {
				return model.HiddenPath(n, depth)
			})
		},
	})
	r.MustRegister(WorkloadSpec{
		Name:    "hiddenchains",
		Summary: summaries["hiddenchains"],
		Params:  "c=1..3 m=2 extra=2 (n=1+c*(m+1)+extra, chain values high)",
		New: func(args WorkloadArgs) (Source, error) {
			lo, hi, err := args.Range("c", 1, 3)
			if err != nil {
				return nil, err
			}
			m, err := args.Int("m", 2)
			if err != nil {
				return nil, err
			}
			extra, err := args.Int("extra", 2)
			if err != nil {
				return nil, err
			}
			if err := args.Finish(); err != nil {
				return nil, err
			}
			label := fmt.Sprintf("hiddenchains:c=%d..%d,m=%d,extra=%d", lo, hi, m, extra)
			return stepSource(label, lo, hi, func(c int) (*Adversary, error) {
				values := make([]int, c)
				for b := range values {
					values[b] = c // all chains start high, as in Fig. 2
				}
				return model.HiddenChains(1+c*(m+1)+extra, c, m, values, c)
			})
		},
	})
	r.MustRegister(WorkloadSpec{
		Name:    "collapse",
		Summary: summaries["collapse"],
		Params:  "k=2 r=2..4 extra=k+2 low=false (t=k*(r+1))",
		New: func(args WorkloadArgs) (Source, error) {
			k, err := args.Int("k", 2)
			if err != nil {
				return nil, err
			}
			lo, hi, err := args.Range("r", 2, 4)
			if err != nil {
				return nil, err
			}
			extra, err := args.Int("extra", k+2)
			if err != nil {
				return nil, err
			}
			low, err := args.Bool("low", false)
			if err != nil {
				return nil, err
			}
			if err := args.Finish(); err != nil {
				return nil, err
			}
			label := fmt.Sprintf("collapse:k=%d,r=%d..%d,extra=%d,low=%v", k, lo, hi, extra, low)
			return stepSource(label, lo, hi, func(r int) (*Adversary, error) {
				return model.Collapse(model.CollapseParams{K: k, R: r, ExtraCorrect: extra, LowVariant: low})
			})
		},
	})
	r.MustRegister(WorkloadSpec{
		Name:    "silentrounds",
		Summary: summaries["silentrounds"],
		Params:  "k=2 r=1..4 extra=k+1",
		New: func(args WorkloadArgs) (Source, error) {
			k, err := args.Int("k", 2)
			if err != nil {
				return nil, err
			}
			lo, hi, err := args.Range("r", 1, 4)
			if err != nil {
				return nil, err
			}
			extra, err := args.Int("extra", k+1)
			if err != nil {
				return nil, err
			}
			if err := args.Finish(); err != nil {
				return nil, err
			}
			label := fmt.Sprintf("silentrounds:k=%d,r=%d..%d,extra=%d", k, lo, hi, extra)
			return stepSource(label, lo, hi, func(r int) (*Adversary, error) {
				return model.SilentRounds(k, r, extra)
			})
		},
	})
	r.MustRegister(WorkloadSpec{
		Name:    "random",
		Summary: summaries["random"],
		Params:  "n=6 t=3 maxv=2 maxr=3 count=100 seed=1",
		New: func(args WorkloadArgs) (Source, error) {
			n, err := args.Int("n", 6)
			if err != nil {
				return nil, err
			}
			t, err := args.Int("t", 3)
			if err != nil {
				return nil, err
			}
			maxv, err := args.Int("maxv", 2)
			if err != nil {
				return nil, err
			}
			maxr, err := args.Int("maxr", 3)
			if err != nil {
				return nil, err
			}
			count, err := args.Int("count", 100)
			if err != nil {
				return nil, err
			}
			seed, err := args.Int64("seed", 1)
			if err != nil {
				return nil, err
			}
			if err := args.Finish(); err != nil {
				return nil, err
			}
			src, err := RandomSource(seed, count, RandomParams{N: n, T: t, MaxValue: maxv, MaxRound: maxr})
			if err != nil {
				return nil, fmt.Errorf("workload %q: %w", args.ref, err)
			}
			return src, nil
		},
	})
	r.MustRegister(WorkloadSpec{
		Name:    "space",
		Summary: "exhaustive canonical adversary enumeration — every run of the model",
		Params:  "n=3 t=2 r=2 v=0..1 (values range; count unknown up front)",
		New: func(args WorkloadArgs) (Source, error) {
			n, err := args.Int("n", 3)
			if err != nil {
				return nil, err
			}
			t, err := args.Int("t", 2)
			if err != nil {
				return nil, err
			}
			maxRound, err := args.Int("r", 2)
			if err != nil {
				return nil, err
			}
			vLo, vHi, err := args.Range("v", 0, 1)
			if err != nil {
				return nil, err
			}
			if err := args.Finish(); err != nil {
				return nil, err
			}
			values := make([]int, 0, vHi-vLo+1)
			for v := vLo; v <= vHi; v++ {
				values = append(values, v)
			}
			return SpaceSource(Space{N: n, T: t, MaxRound: maxRound, Values: values})
		},
	})
	return r
}()

// DefaultWorkloads returns the registry holding every built-in workload:
// the named adversary families of the paper ("hiddenpath",
// "hiddenchains", "collapse", "silentrounds", "random") and the
// exhaustive "space" enumeration. Callers may Register additional
// workloads on it.
func DefaultWorkloads() *WorkloadRegistry { return defaultWorkloads }

// ParseWorkload resolves a workload reference in the default registry,
// e.g. "collapse:k=3,r=2..5" or "space:n=4,t=2,r=2,v=0..1".
func ParseWorkload(ref string) (Source, error) { return defaultWorkloads.Parse(ref) }

// Workloads returns the canonical names in the default registry.
func Workloads() []string { return defaultWorkloads.Names() }
