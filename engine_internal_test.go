package setconsensus

import "testing"

// TestInsertBoundedEviction pins the FIFO invariant: at most bound live
// entries, oldest evicted first, duplicate keys left in place.
func TestInsertBoundedEviction(t *testing.T) {
	m := map[int]int{}
	var order []int
	const bound = 4
	for k := 0; k < 10; k++ {
		insertBounded(m, &order, k, k*k, bound)
	}
	if len(m) != bound || len(order) != bound {
		t.Fatalf("cache holds %d/%d entries, want %d", len(m), len(order), bound)
	}
	for i, k := range order {
		if want := 6 + i; k != want {
			t.Fatalf("order[%d] = %d, want %d", i, k, want)
		}
		if m[k] != k*k {
			t.Fatalf("m[%d] = %d, want %d", k, m[k], k*k)
		}
	}
	// Re-inserting an existing key neither duplicates nor reorders.
	insertBounded(m, &order, 7, -1, bound)
	if len(order) != bound || m[7] != 49 {
		t.Fatalf("duplicate insert mutated the cache: order=%v m[7]=%d", order, m[7])
	}
	// bound ≤ 0 disables insertion outright.
	var order0 []int
	m0 := map[int]int{}
	insertBounded(m0, &order0, 1, 1, 0)
	if len(m0) != 0 || len(order0) != 0 {
		t.Fatalf("bound 0 inserted anyway: %v %v", m0, order0)
	}
}

// TestInsertBoundedReleasesEvicted is the regression test for the
// FIFO-eviction slice leak: the old *order = (*order)[1:] advanced the
// slice window but kept every evicted key alive in the backing array
// prefix, pinning adversary pointers and graph keys for the life of the
// engine. Eviction now copies down and zeroes the vacated slot, so the
// backing array holds live keys only and its capacity stays bounded
// forever.
func TestInsertBoundedReleasesEvicted(t *testing.T) {
	m := map[*int]int{}
	var order []*int
	const bound = 8
	for k := 0; k < bound; k++ {
		insertBounded(m, &order, new(int), k, bound)
	}
	capAtBound := cap(order)
	for k := 0; k < 100*bound; k++ {
		insertBounded(m, &order, new(int), k, bound)
	}
	// Copy-down reuses the same backing array forever: once the slice
	// reached the bound it never grows again, where the [1:] version
	// marched through the array and reallocated repeatedly.
	if cap(order) != capAtBound {
		t.Errorf("backing array grew from %d to %d; eviction is not in place", capAtBound, cap(order))
	}
	if len(order) != bound {
		t.Fatalf("order holds %d keys, want %d", len(order), bound)
	}
	// No stale pointers beyond the live window: everything in the backing
	// array past len is zeroed, so evicted keys are collectable.
	full := order[:cap(order)]
	for i := len(order); i < len(full); i++ {
		if full[i] != nil {
			t.Fatalf("evicted key still pinned at backing slot %d", i)
		}
	}
}

// TestChunkSizeForDegenerate covers the degenerate source-count cases:
// a lying Count (known with count ≤ 0), a zero worker total, and the
// boundary where count barely exceeds the workers.
func TestChunkSizeForDegenerate(t *testing.T) {
	cases := []struct {
		count   int
		known   bool
		workers int
		block   int
		want    int
	}{
		{count: 0, known: false, workers: 4, block: 1, want: sourceChunk}, // unknown stream
		{count: 0, known: true, workers: 4, block: 1, want: sourceChunk},  // lying Count: stream anyway
		{count: -3, known: true, workers: 4, block: 1, want: sourceChunk}, // nonsense negative count
		{count: 5, known: true, workers: 0, block: 1, want: 1},            // clamped worker total
		{count: 5, known: true, workers: 4, block: 1, want: 1},            // count slightly above workers
		{count: 1000000, known: true, workers: 4, block: 1, want: sourceChunk},
		{count: 64, known: true, workers: 4, block: 1, want: 4},
	}
	for _, c := range cases {
		if got := chunkSizeFor(c.count, c.known, c.workers, c.block); got != c.want {
			t.Errorf("chunkSizeFor(%d, %v, %d, %d) = %d, want %d", c.count, c.known, c.workers, c.block, got, c.want)
		}
	}
}

// TestChunkSizeForBlockAlignment pins the delta-order alignment rule:
// chunk boundaries land on pattern-block boundaries whenever the block
// stride makes that possible, so workers only full-build where the
// pattern changes anyway.
func TestChunkSizeForBlockAlignment(t *testing.T) {
	cases := []struct {
		count   int
		known   bool
		workers int
		block   int
		want    int
	}{
		{count: 0, known: false, workers: 4, block: 8, want: 32},  // 8 | 32: already aligned
		{count: 0, known: false, workers: 4, block: 27, want: 27}, // round down to one block
		{count: 0, known: false, workers: 4, block: 16, want: 32},
		{count: 0, known: false, workers: 4, block: 81, want: 27},  // divisor of an oversized block
		{count: 0, known: false, workers: 4, block: 625, want: 25}, // 5^4: largest divisor ≤ 32
		{count: 200, known: true, workers: 2, block: 8, want: 24},  // 200/8=25 → down to 24
		{count: 64, known: true, workers: 4, block: 8, want: 4},    // chunk 4 divides block 8
		{count: 5, known: true, workers: 4, block: 8, want: 1},     // single-adversary chunks stay
	}
	for _, c := range cases {
		if got := chunkSizeFor(c.count, c.known, c.workers, c.block); got != c.want {
			t.Errorf("chunkSizeFor(%d, %v, %d, %d) = %d, want %d", c.count, c.known, c.workers, c.block, got, c.want)
		}
	}
}
