module setconsensus

go 1.24
