package setconsensus_test

import (
	"testing"

	setconsensus "setconsensus"
)

func drain(t *testing.T, src setconsensus.Source) []string {
	t.Helper()
	var out []string
	for adv := range src.Seq() {
		out = append(out, adv.String())
	}
	return out
}

func TestSliceSource(t *testing.T) {
	a := setconsensus.NewBuilder(3, 0).MustBuild()
	b := setconsensus.NewBuilder(3, 1).MustBuild()
	src := setconsensus.SliceSource(a, b)
	if n, ok := src.Count(); !ok || n != 2 {
		t.Fatalf("Count = %d,%v", n, ok)
	}
	got := drain(t, src)
	if len(got) != 2 || got[0] != a.String() || got[1] != b.String() {
		t.Fatalf("stream = %v", got)
	}
	// Restartable: a second pass yields the same stream.
	if again := drain(t, src); len(again) != 2 || again[0] != got[0] {
		t.Fatal("second Seq pass differs")
	}
	if n, ok := setconsensus.SliceSource().Count(); !ok || n != 0 {
		t.Fatalf("empty slice source Count = %d,%v", n, ok)
	}
}

func TestSpaceSourceMatchesEnumeration(t *testing.T) {
	space := setconsensus.Space{N: 3, T: 1, MaxRound: 2, Values: []int{0, 1}}
	src, err := setconsensus.SpaceSource(space)
	if err != nil {
		t.Fatal(err)
	}
	if _, known := src.Count(); known {
		t.Error("exhaustive space count must be unknown up front")
	}
	var want []string
	if err := space.ForEach(func(a *setconsensus.Adversary) bool {
		want = append(want, a.String())
		return true
	}); err != nil {
		t.Fatal(err)
	}
	got := drain(t, src)
	if len(got) != len(want) {
		t.Fatalf("source yielded %d, enumeration %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("diverges at %d: %s vs %s", i, got[i], want[i])
		}
	}
	if _, err := setconsensus.SpaceSource(setconsensus.Space{N: 1}); err == nil {
		t.Error("invalid space must be rejected at construction")
	}
}

func TestRandomSourceDeterministicAndRestartable(t *testing.T) {
	p := setconsensus.RandomParams{N: 5, T: 2, MaxValue: 2, MaxRound: 2}
	src, err := setconsensus.RandomSource(7, 20, p)
	if err != nil {
		t.Fatal(err)
	}
	if n, ok := src.Count(); !ok || n != 20 {
		t.Fatalf("Count = %d,%v", n, ok)
	}
	first := drain(t, src)
	second := drain(t, src)
	if len(first) != 20 {
		t.Fatalf("yielded %d adversaries", len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("restarted stream diverges at %d", i)
		}
	}
	reseeded, err := setconsensus.RandomSource(8, 20, p)
	if err != nil {
		t.Fatal(err)
	}
	other := drain(t, reseeded)
	same := true
	for i := range first {
		if first[i] != other[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
	// Invalid parameters are rejected at construction, not mid-sweep.
	for _, bad := range []setconsensus.RandomParams{
		{N: 1, T: 0, MaxValue: 1, MaxRound: 1},
		{N: 5, T: 5, MaxValue: 1, MaxRound: 1},
		{N: 5, T: 2, MaxValue: -1, MaxRound: 1},
		{N: 5, T: 2, MaxValue: 1, MaxRound: 0},
	} {
		if _, err := setconsensus.RandomSource(1, 5, bad); err == nil {
			t.Errorf("params %+v must be rejected", bad)
		}
	}
	if _, err := setconsensus.RandomSource(1, -1, p); err == nil {
		t.Error("negative count must be rejected")
	}
}

func TestLimitAndConcatSources(t *testing.T) {
	p := setconsensus.RandomParams{N: 4, T: 1, MaxValue: 1, MaxRound: 1}
	base, err := setconsensus.RandomSource(1, 10, p)
	if err != nil {
		t.Fatal(err)
	}
	limited := setconsensus.LimitSource(base, 3)
	if n, ok := limited.Count(); !ok || n != 3 {
		t.Fatalf("limited Count = %d,%v", n, ok)
	}
	if got := drain(t, limited); len(got) != 3 {
		t.Fatalf("limit yielded %d", len(got))
	}
	// Limit beyond the stream length reports the shorter count.
	if n, ok := setconsensus.LimitSource(base, 99).Count(); !ok || n != 10 {
		t.Fatalf("over-limit Count = %d,%v", n, ok)
	}
	cat := setconsensus.ConcatSources(limited, base)
	if n, ok := cat.Count(); !ok || n != 13 {
		t.Fatalf("concat Count = %d,%v", n, ok)
	}
	if got := drain(t, cat); len(got) != 13 {
		t.Fatalf("concat yielded %d", len(got))
	}
	// Unknown counts poison the sum.
	space, err := setconsensus.SpaceSource(setconsensus.Space{N: 2, T: 0, MaxRound: 1, Values: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, known := setconsensus.ConcatSources(base, space).Count(); known {
		t.Error("concat with an unknown-count source must report unknown")
	}
}
