package setconsensus

import (
	"fmt"
	goruntime "runtime"
	"strings"
)

// BackendKind selects which of the three execution backends an Engine
// runs protocols on.
type BackendKind int

// The execution backends.
const (
	// Oracle is the deterministic full-information simulator
	// (internal/sim): the reference semantics. It computes one knowledge
	// graph per adversary and consults the protocol's decision rule at
	// every node; graphs are shared across protocols and cached.
	Oracle BackendKind = iota
	// Goroutines is the concurrent message-passing engine
	// (internal/runtime): one goroutine per process, channels as links, a
	// router applying the failure pattern. Only wire-capable protocols
	// (Optmin/u-Pmin rules) can run on it.
	Goroutines
	// Wire is the deterministic Appendix E compact-protocol runner
	// (internal/wire), which additionally accounts bits per link. Only
	// wire-capable protocols can run on it.
	Wire
)

// String names the backend.
func (b BackendKind) String() string {
	switch b {
	case Oracle:
		return "oracle"
	case Goroutines:
		return "goroutines"
	case Wire:
		return "wire"
	}
	return fmt.Sprintf("BackendKind(%d)", int(b))
}

// ParseBackend resolves a backend name ("oracle", "goroutines", "wire"),
// case-insensitively and ignoring surrounding whitespace.
func ParseBackend(name string) (BackendKind, error) {
	key := strings.TrimSpace(name)
	for _, b := range []BackendKind{Oracle, Goroutines, Wire} {
		if strings.EqualFold(b.String(), key) {
			return b, nil
		}
	}
	return 0, fmt.Errorf("unknown backend %q (want oracle | goroutines | wire)", name)
}

// PatternCrashBound is the WithCrashBound value that sets t per run to
// the adversary's own failure count — the exact bound the named family
// curves are designed for (the collapse family's t = k(r+1) is precisely
// its crasher count), where a fixed t cannot fit a range-swept workload.
const PatternCrashBound = -2

// EngineParams is the full configuration of an Engine. Construct it via
// DefaultEngineParams and the functional Options; New validates it.
//
// Defaults (DefaultEngineParams):
//
//	Backend      Oracle   reference full-information simulator
//	T            -1       crash bound; -1 means n−1 per adversary,
//	                      PatternCrashBound (-2) the adversary's failure count
//	K            1        coordination degree (1 = consensus)
//	Horizon      0        0 means each protocol's WorstCaseTime
//	GraphCache   64       cached knowledge graphs; 0 disables
//	Parallelism  NumCPU   Sweep worker-pool size
type EngineParams struct {
	Backend     BackendKind
	T           int
	K           int
	Horizon     int
	GraphCache  int
	Parallelism int
}

// DefaultEngineParams returns the documented defaults.
func DefaultEngineParams() EngineParams {
	return EngineParams{
		Backend:     Oracle,
		T:           -1,
		K:           1,
		Horizon:     0,
		GraphCache:  64,
		Parallelism: goruntime.NumCPU(),
	}
}

// Validate ensures the supplied parameters fall within operating ranges.
func (p EngineParams) Validate() error {
	switch p.Backend {
	case Oracle, Goroutines, Wire:
	default:
		return fmt.Errorf("engine: unknown backend %d", int(p.Backend))
	}
	if p.T < PatternCrashBound {
		return fmt.Errorf("engine: crash bound t must be ≥ 0 (or -1 for n−1, -2 for the pattern's failure count), got %d", p.T)
	}
	if p.K < 1 {
		return fmt.Errorf("engine: need degree k ≥ 1, got %d", p.K)
	}
	if p.Horizon < 0 {
		return fmt.Errorf("engine: horizon must be ≥ 0 (0 = worst case), got %d", p.Horizon)
	}
	if p.Horizon > 0 && p.Backend != Oracle {
		return fmt.Errorf("engine: WithHorizon is only honored by the Oracle backend; the %s backend always runs the compact protocol to its own horizon", p.Backend)
	}
	if p.GraphCache < 0 {
		return fmt.Errorf("engine: graph cache size must be ≥ 0, got %d", p.GraphCache)
	}
	if p.Parallelism < 1 {
		return fmt.Errorf("engine: need parallelism ≥ 1, got %d", p.Parallelism)
	}
	return nil
}

// ResourceGovernor is the engine's hook into a process-wide memory
// governor (internal/govern.Governor implements it): Grow/Shrink meter
// the byte capacity the engine's pooled buffers and builder arenas
// create and free, Retain gates pool recycling (false = release to the
// GC instead), and Admit checks headroom under a hard ceiling. Every
// method must be safe for concurrent use. A nil governor means
// ungoverned: no metering, pools always retain.
type ResourceGovernor interface {
	Grow(bytes int64)
	Shrink(bytes int64)
	Retain() bool
	Admit(bytes int64) error
}

// Option configures an Engine at construction.
type Option func(*engineConfig)

type engineConfig struct {
	params   EngineParams
	reg      *Registry
	analyses *AnalysisRegistry
	gov      ResourceGovernor
}

// WithBackend selects the execution backend (Oracle, Goroutines, Wire).
func WithBackend(b BackendKind) Option {
	return func(c *engineConfig) { c.params.Backend = b }
}

// WithCrashBound sets the a-priori crash bound t used for every run.
// Pass -1 (the default) to use n−1 for each adversary, or
// PatternCrashBound to use each adversary's own failure count — the
// designed bound of the named family workloads.
func WithCrashBound(t int) Option {
	return func(c *engineConfig) { c.params.T = t }
}

// WithDegree sets the coordination degree k (k-set consensus; 1 =
// consensus).
func WithDegree(k int) Option {
	return func(c *engineConfig) { c.params.K = k }
}

// WithHorizon overrides the simulation horizon. The default 0 runs each
// protocol to its registered WorstCaseTime; experiments that examine
// prefixes set an explicit horizon. Only the Oracle backend supports an
// override — the compact backends run their protocol to its own horizon,
// and New rejects the combination.
func WithHorizon(h int) Option {
	return func(c *engineConfig) { c.params.Horizon = h }
}

// WithGraphCache bounds the number of knowledge graphs the engine keeps
// across calls (keyed by adversary and horizon). 0 disables caching;
// Sweep still shares one graph per adversary within a sweep.
func WithGraphCache(entries int) Option {
	return func(c *engineConfig) { c.params.GraphCache = entries }
}

// WithParallelism sets the Sweep worker-pool size.
func WithParallelism(workers int) Option {
	return func(c *engineConfig) { c.params.Parallelism = workers }
}

// WithRegistry resolves protocol names against reg instead of the
// default registry.
func WithRegistry(reg *Registry) Option {
	return func(c *engineConfig) { c.reg = reg }
}

// WithAnalyses resolves Engine.Analyze references against reg instead of
// the default analysis registry.
func WithAnalyses(reg *AnalysisRegistry) Option {
	return func(c *engineConfig) { c.analyses = reg }
}

// WithGovernor attaches a resource governor: the engine meters the byte
// capacity of its recycled buffers (knowledge arenas, run-kit slabs,
// sweep chunks) through it and stops retaining pooled buffers while the
// governor refuses retention. Long-running processes that share one
// governor across many engines should call Engine.Close when an engine
// is retired, so its pooled bytes return to the account.
func WithGovernor(g ResourceGovernor) Option {
	return func(c *engineConfig) { c.gov = g }
}
