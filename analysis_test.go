package setconsensus_test

import (
	"context"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	setconsensus "setconsensus"
	"setconsensus/internal/topology"
)

func analysisEngine(par int, opts ...setconsensus.Option) *setconsensus.Engine {
	return setconsensus.New(append([]setconsensus.Option{setconsensus.WithParallelism(par)}, opts...)...)
}

// TestAnalyzeParallelEquivalence pins the acceptance contract:
// Engine.Analyze with Parallelism 1 and Parallelism N produce identical
// AnalysisReports, field for field, for every built-in family. Run with
// -race in CI this also exercises the sharded candidate testing and
// certificate accumulators.
func TestAnalyzeParallelEquivalence(t *testing.T) {
	refs := []string{
		"search:optmin:n=3,t=2,r=2,width=2",
		"search:upmin:n=3,t=2,r=2,width=2",
		"lemma2:c=2",
		"forced:k=2",
	}
	ctx := context.Background()
	for _, ref := range refs {
		t.Run(ref, func(t *testing.T) {
			seq, err := analysisEngine(1).Analyze(ctx, ref)
			if err != nil {
				t.Fatal(err)
			}
			for _, par := range []int{2, 4} {
				got, err := analysisEngine(par).Analyze(ctx, ref)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(seq, got) {
					t.Fatalf("parallelism %d diverges:\nseq: %+v\npar: %+v", par, seq, got)
				}
			}
		})
	}
}

// TestAnalyzeSearchMatchesDirectSearch pins that the Engine's pooled
// compile path produces exactly the report of the direct sequential
// Search over the same configuration.
func TestAnalyzeSearchMatchesDirectSearch(t *testing.T) {
	ctx := context.Background()
	rep, err := analysisEngine(4).Analyze(ctx, "search:optmin:n=3,t=2,r=3,width=2")
	if err != nil {
		t.Fatal(err)
	}
	base, err := setconsensus.NewProtocol("optmin", setconsensus.Params{N: 3, T: 2, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := setconsensus.Search(ctx, base, setconsensus.SearchParams{
		Space: setconsensus.Space{N: 3, T: 2, MaxRound: 3, Values: []int{0, 1}},
		K:     1, T: 2, Width: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Search, direct) {
		t.Fatalf("engine compile path diverges from direct search:\nengine: %+v\ndirect: %+v", rep.Search, direct)
	}
}

func TestAnalyzeCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, ref := range []string{"search:optmin", "search:upmin", "lemma2", "forced"} {
		if _, err := analysisEngine(2).Analyze(ctx, ref); err != context.Canceled {
			t.Errorf("%s: cancelled analysis returned %v, want context.Canceled", ref, err)
		}
	}
}

func TestAnalyzeCertificateFamilies(t *testing.T) {
	ctx := context.Background()
	forced, err := analysisEngine(4, setconsensus.WithDegree(3)).Analyze(ctx, "forced")
	if err != nil {
		t.Fatal(err)
	}
	if forced.Nodes == 0 || forced.Certified != forced.Nodes || forced.Orders == 0 {
		t.Fatalf("degenerate forced report: %+v", forced)
	}
	if !forced.OK() {
		t.Fatalf("forced analysis not OK: %+v", forced)
	}
	lemma2, err := analysisEngine(4, setconsensus.WithDegree(3)).Analyze(ctx, "lemma2")
	if err != nil {
		t.Fatal(err)
	}
	if lemma2.Nodes == 0 || lemma2.Certified != lemma2.Nodes {
		t.Fatalf("degenerate lemma2 report: %+v", lemma2)
	}
}

func TestAnalyzeStreamProgressStages(t *testing.T) {
	var stages []string
	lastDone := -1
	_, err := analysisEngine(1).AnalyzeStream(context.Background(), "search:optmin:n=3,t=2,r=2,width=2",
		func(p setconsensus.AnalysisProgress) {
			if len(stages) == 0 || stages[len(stages)-1] != p.Stage {
				stages = append(stages, p.Stage)
				lastDone = -1
			}
			if p.Done < lastDone {
				t.Fatalf("stage %s: done went backwards (%d after %d)", p.Stage, p.Done, lastDone)
			}
			lastDone = p.Done
		})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"compile", "width-1", "width-2"}
	if !reflect.DeepEqual(stages, want) {
		t.Fatalf("stages = %v, want %v", stages, want)
	}
}

func TestAnalysisRegistryParse(t *testing.T) {
	cases := []struct {
		ref     string
		wantErr string
	}{
		{"search:optmin", ""},
		{"search:optmin:width=1,n=3", ""},
		{"search", ""}, // alias
		{"SEARCH:UPMIN", ""},
		{"forced:k=2,m=1", ""},
		{"nonsense", "unknown name"},
		{"search:optmin:bogus=1", "unknown parameter"},
		{"search:optmin:width", "malformed parameter"},
		{"forced:k=2,k=3", "duplicate parameter"},
	}
	for _, c := range cases {
		_, err := setconsensus.ParseAnalysis(c.ref)
		switch {
		case c.wantErr == "" && err != nil:
			t.Errorf("%q: unexpected error %v", c.ref, err)
		case c.wantErr != "" && (err == nil || !strings.Contains(err.Error(), c.wantErr)):
			t.Errorf("%q: error %v, want containing %q", c.ref, err, c.wantErr)
		}
	}
}

func TestAnalyzeRejectsNonOracleBackend(t *testing.T) {
	eng := setconsensus.New(setconsensus.WithBackend(setconsensus.Wire))
	_, err := eng.Analyze(context.Background(), "search:optmin")
	if err == nil || !strings.Contains(err.Error(), "Oracle") {
		t.Fatalf("wire-backend search analysis returned %v, want Oracle-backend error", err)
	}
}

// TestAnalyzeSpernerCrossCheck is the randomized topology cross-check:
// for small k, every random Sperner coloring of Div σ has an odd (hence
// nonzero) number of fully colored simplices — the combinatorial
// obstruction behind Theorem 1 — and, consistently, the deviation search
// over a small (n,k) space finds the base protocol unbeaten. A beating
// deviation would contradict the nonzero Sperner count: it would decide
// k+1 distinct values among correct processes on some run.
func TestAnalyzeSpernerCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ctx := context.Background()
	for _, k := range []int{1, 2} {
		div, err := setconsensus.DivK(k)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 8; trial++ {
			cnt, err := div.SpernerCount(div.RandomColoring(rng))
			if err != nil {
				t.Fatal(err)
			}
			if cnt%2 == 0 || cnt < 1 {
				t.Fatalf("k=%d trial %d: Sperner count %d — want odd ≥ 1", k, trial, cnt)
			}
		}
		// Matching search side: n = k+2 processes, t = k crashes.
		ref := map[int]string{
			1: "search:optmin:n=3,t=1,r=1,k=1,width=2",
			2: "search:optmin:n=4,t=2,r=1,k=2,width=1",
		}[k]
		rep, err := analysisEngine(2).Analyze(ctx, ref)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Search.Beaten {
			t.Fatalf("k=%d: search found a beat (%s) while the Sperner count is nonzero — the two disagree",
				k, rep.Search.Witness)
		}
		var _ *topology.Subdivision = div
	}
}
