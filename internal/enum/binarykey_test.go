package enum

import (
	"testing"

	"setconsensus/internal/model"
)

// TestBinaryKeyedDedupMatchesCanonicalStrings re-derives the canonical
// enumeration the slow way — materializing Canonical() and keying the
// dedup set on its rendered string, the scheme the binary fingerprint
// replaced — and requires the streamed iterator to agree adversary for
// adversary, offset for offset. A fingerprint collision or a missed
// canonical equivalence diverges here.
func TestBinaryKeyedDedupMatchesCanonicalStrings(t *testing.T) {
	spaces := []Space{
		{N: 3, T: 2, MaxRound: 2, Values: []model.Value{0, 1}},
		{N: 4, T: 1, MaxRound: 3, Values: []model.Value{0, 1, 2}},
		{N: 2, T: 1, MaxRound: 1, Values: []model.Value{0}},
	}
	for _, s := range spaces {
		type entry struct {
			offset int
			adv    string
		}
		var want []entry
		block := s.inputCount()
		seen := make(map[string]struct{})
		idx := 0
		s.forEachPattern(func(fp *model.FailurePattern, _ []model.Proc) bool {
			canon := fp.Canonical()
			key := canon.String()
			if _, dup := seen[key]; dup {
				return true
			}
			seen[key] = struct{}{}
			s.forEachInputsFrom(0, func(i int, inputs []model.Value) bool {
				want = append(want, entry{idx + i, model.NewAdversary(inputs, canon).String()})
				return true
			})
			idx += block
			return true
		})

		var got []entry
		for off, adv := range s.All() {
			got = append(got, entry{off, adv.String()})
		}
		if len(got) != len(want) {
			t.Fatalf("%+v: binary-keyed walk yields %d adversaries, canonical-string walk %d", s, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%+v: walks diverge at %d: got %+v, want %+v", s, i, got[i], want[i])
			}
		}
	}
}

// TestAdversariesAreIndependent pins the slab carving: every yielded
// adversary owns its inputs — retaining some while the enumeration
// continues must not let later vectors overwrite earlier ones.
func TestAdversariesAreIndependent(t *testing.T) {
	s := Space{N: 3, T: 1, MaxRound: 1, Values: []model.Value{0, 1}}
	var advs []*model.Adversary
	var rendered []string
	for _, a := range s.All() {
		advs = append(advs, a)
		rendered = append(rendered, a.String())
	}
	for i, a := range advs {
		if a.String() != rendered[i] {
			t.Fatalf("adversary %d mutated after the walk: %s vs %s", i, a.String(), rendered[i])
		}
	}
}
