package enum

import (
	"testing"

	"setconsensus/internal/model"
)

func TestValidate(t *testing.T) {
	good := Space{N: 3, T: 2, MaxRound: 2, Values: []model.Value{0, 1}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Space{
		{N: 1, T: 0, MaxRound: 1, Values: []model.Value{0}},
		{N: 3, T: 3, MaxRound: 1, Values: []model.Value{0}},
		{N: 3, T: 1, MaxRound: 0, Values: []model.Value{0}},
		{N: 3, T: 1, MaxRound: 1, Values: nil},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("space %+v must be invalid", bad)
		}
	}
	if err := (Space{N: 1}).ForEach(func(*model.Adversary) bool { return true }); err == nil {
		t.Error("ForEach must propagate validation errors")
	}
}

func TestNoFailureSpace(t *testing.T) {
	s := Space{N: 2, T: 0, MaxRound: 1, Values: []model.Value{0, 1}}
	advs, err := s.Adversaries()
	if err != nil {
		t.Fatal(err)
	}
	// One (empty) pattern × 4 input vectors.
	if len(advs) != 4 {
		t.Fatalf("got %d adversaries, want 4", len(advs))
	}
	for _, a := range advs {
		if a.Pattern.NumFailures() != 0 {
			t.Error("T=0 space produced a crash")
		}
	}
}

func TestSingleCrasherCount(t *testing.T) {
	// N=2, T=1, MaxRound=1, one value: patterns are the empty one plus,
	// for each process, crash in round 1 delivering to the other or not:
	// canonically 1 + 2·2 = 5.
	s := Space{N: 2, T: 1, MaxRound: 1, Values: []model.Value{0}}
	advs, err := s.Adversaries()
	if err != nil {
		t.Fatal(err)
	}
	if len(advs) != 5 {
		for _, a := range advs {
			t.Log(a)
		}
		t.Fatalf("got %d adversaries, want 5", len(advs))
	}
}

func TestCanonicalizationDedups(t *testing.T) {
	// N=3, T=2, rounds ≤ 2: a round-1 crasher delivering to another
	// round-1 crasher is indistinguishable from not delivering — the
	// enumeration must not produce both.
	s := Space{N: 3, T: 2, MaxRound: 2, Values: []model.Value{0}}
	seen := map[string]int{}
	err := s.ForEach(func(a *model.Adversary) bool {
		seen[a.Pattern.String()]++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	for k, c := range seen {
		if c > 1 {
			t.Errorf("pattern %s produced %d times", k, c)
		}
	}
	// Spot-check: a crash-round delivery to a dead receiver never appears.
	for k := range seen {
		_ = k
	}
	err = s.ForEach(func(a *model.Adversary) bool {
		for p, c := range a.Pattern.Crashes {
			c.Delivered.ForEach(func(q int) bool {
				if !a.Pattern.Active(q, c.Round) {
					t.Errorf("pattern %s delivers from %d to dead %d", a.Pattern, p, q)
				}
				return true
			})
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicOrder(t *testing.T) {
	s := Space{N: 3, T: 1, MaxRound: 2, Values: []model.Value{0, 1}}
	var a, b []string
	if err := s.ForEach(func(adv *model.Adversary) bool { a = append(a, adv.String()); return true }); err != nil {
		t.Fatal(err)
	}
	if err := s.ForEach(func(adv *model.Adversary) bool { b = append(b, adv.String()); return true }); err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order differs at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := Space{N: 3, T: 2, MaxRound: 2, Values: []model.Value{0, 1}}
	count := 0
	if err := s.ForEach(func(*model.Adversary) bool { count++; return count < 10 }); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("stopped after %d, want 10", count)
	}
}

func TestAllAdversariesValid(t *testing.T) {
	s := Space{N: 3, T: 2, MaxRound: 2, Values: []model.Value{0, 1}}
	total := 0
	err := s.ForEach(func(a *model.Adversary) bool {
		total++
		if err := a.Validate(s.T, 1); err != nil {
			t.Fatalf("invalid adversary: %v", err)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if total == 0 {
		t.Fatal("empty enumeration")
	}
	if ub := s.CountUpperBound(); float64(total) > ub {
		t.Errorf("enumerated %d > upper bound %.0f", total, ub)
	}
	t.Logf("space N=3 T=2 R=2 |V|=2: %d canonical adversaries (bound %.0f)", total, s.CountUpperBound())
}
