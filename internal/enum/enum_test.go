package enum

import (
	"testing"

	"setconsensus/internal/model"
)

func TestValidate(t *testing.T) {
	good := Space{N: 3, T: 2, MaxRound: 2, Values: []model.Value{0, 1}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Space{
		{N: 1, T: 0, MaxRound: 1, Values: []model.Value{0}},
		{N: 3, T: 3, MaxRound: 1, Values: []model.Value{0}},
		{N: 3, T: 1, MaxRound: 0, Values: []model.Value{0}},
		{N: 3, T: 1, MaxRound: 1, Values: nil},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("space %+v must be invalid", bad)
		}
	}
	if err := (Space{N: 1}).ForEach(func(*model.Adversary) bool { return true }); err == nil {
		t.Error("ForEach must propagate validation errors")
	}
}

func TestNoFailureSpace(t *testing.T) {
	s := Space{N: 2, T: 0, MaxRound: 1, Values: []model.Value{0, 1}}
	advs, err := s.Adversaries()
	if err != nil {
		t.Fatal(err)
	}
	// One (empty) pattern × 4 input vectors.
	if len(advs) != 4 {
		t.Fatalf("got %d adversaries, want 4", len(advs))
	}
	for _, a := range advs {
		if a.Pattern.NumFailures() != 0 {
			t.Error("T=0 space produced a crash")
		}
	}
}

func TestSingleCrasherCount(t *testing.T) {
	// N=2, T=1, MaxRound=1, one value: patterns are the empty one plus,
	// for each process, crash in round 1 delivering to the other or not:
	// canonically 1 + 2·2 = 5.
	s := Space{N: 2, T: 1, MaxRound: 1, Values: []model.Value{0}}
	advs, err := s.Adversaries()
	if err != nil {
		t.Fatal(err)
	}
	if len(advs) != 5 {
		for _, a := range advs {
			t.Log(a)
		}
		t.Fatalf("got %d adversaries, want 5", len(advs))
	}
}

func TestCanonicalizationDedups(t *testing.T) {
	// N=3, T=2, rounds ≤ 2: a round-1 crasher delivering to another
	// round-1 crasher is indistinguishable from not delivering — the
	// enumeration must not produce both.
	s := Space{N: 3, T: 2, MaxRound: 2, Values: []model.Value{0}}
	seen := map[string]int{}
	err := s.ForEach(func(a *model.Adversary) bool {
		seen[a.Pattern.String()]++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	for k, c := range seen {
		if c > 1 {
			t.Errorf("pattern %s produced %d times", k, c)
		}
	}
	// Spot-check: a crash-round delivery to a dead receiver never appears.
	for k := range seen {
		_ = k
	}
	err = s.ForEach(func(a *model.Adversary) bool {
		for p, c := range a.Pattern.Crashes {
			c.Delivered.ForEach(func(q int) bool {
				if !a.Pattern.Active(q, c.Round) {
					t.Errorf("pattern %s delivers from %d to dead %d", a.Pattern, p, q)
				}
				return true
			})
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicOrder(t *testing.T) {
	s := Space{N: 3, T: 1, MaxRound: 2, Values: []model.Value{0, 1}}
	var a, b []string
	if err := s.ForEach(func(adv *model.Adversary) bool { a = append(a, adv.String()); return true }); err != nil {
		t.Fatal(err)
	}
	if err := s.ForEach(func(adv *model.Adversary) bool { b = append(b, adv.String()); return true }); err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order differs at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := Space{N: 3, T: 2, MaxRound: 2, Values: []model.Value{0, 1}}
	count := 0
	if err := s.ForEach(func(*model.Adversary) bool { count++; return count < 10 }); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("stopped after %d, want 10", count)
	}
}

func TestAllMatchesForEach(t *testing.T) {
	s := Space{N: 3, T: 2, MaxRound: 2, Values: []model.Value{0, 1}}
	var viaForEach []string
	if err := s.ForEach(func(a *model.Adversary) bool { viaForEach = append(viaForEach, a.String()); return true }); err != nil {
		t.Fatal(err)
	}
	i := 0
	for idx, a := range s.All() {
		if idx != i {
			t.Fatalf("offset %d at position %d", idx, i)
		}
		if a.String() != viaForEach[i] {
			t.Fatalf("All[%d] = %s, ForEach = %s", i, a, viaForEach[i])
		}
		i++
	}
	if i != len(viaForEach) {
		t.Fatalf("All yielded %d, ForEach %d", i, len(viaForEach))
	}
}

func TestFromResumesAtOffset(t *testing.T) {
	s := Space{N: 3, T: 2, MaxRound: 2, Values: []model.Value{0, 1}}
	var all []string
	for _, a := range s.All() {
		all = append(all, a.String())
	}
	// Resume at every offset across the first few input blocks plus the
	// tail; each suffix must match the full enumeration exactly.
	offsets := []int{0, 1, 7, 8, 9, len(all) / 2, len(all) - 1, len(all)}
	for _, off := range offsets {
		i := off
		for idx, a := range s.From(off) {
			if idx != i {
				t.Fatalf("From(%d): offset %d at position %d", off, idx, i)
			}
			if a.String() != all[i] {
				t.Fatalf("From(%d)[%d] = %s, want %s", off, i, a, all[i])
			}
			i++
		}
		if i != len(all) {
			t.Fatalf("From(%d) yielded up to %d, want %d", off, i, len(all))
		}
	}
	for range s.From(len(all) + 10) {
		t.Fatal("offset past the end must yield nothing")
	}
	for range s.From(-1) {
		t.Fatal("negative offset must yield nothing")
	}
}

func TestFromEarlyStopAndResume(t *testing.T) {
	// Pause after consuming a prefix, resume from the recorded offset, and
	// check the two halves concatenate to the full enumeration.
	s := Space{N: 3, T: 1, MaxRound: 2, Values: []model.Value{0, 1}}
	var all []string
	for _, a := range s.All() {
		all = append(all, a.String())
	}
	var got []string
	next := 0
	for idx, a := range s.All() {
		got = append(got, a.String())
		next = idx + 1
		if len(got) == 11 {
			break
		}
	}
	for _, a := range s.From(next) {
		got = append(got, a.String())
	}
	if len(got) != len(all) {
		t.Fatalf("pause/resume yielded %d, want %d", len(got), len(all))
	}
	for i := range got {
		if got[i] != all[i] {
			t.Fatalf("pause/resume diverges at %d: %s vs %s", i, got[i], all[i])
		}
	}
}

func TestAllAdversariesValid(t *testing.T) {
	s := Space{N: 3, T: 2, MaxRound: 2, Values: []model.Value{0, 1}}
	total := 0
	err := s.ForEach(func(a *model.Adversary) bool {
		total++
		if err := a.Validate(s.T, 1); err != nil {
			t.Fatalf("invalid adversary: %v", err)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if total == 0 {
		t.Fatal("empty enumeration")
	}
	if ub := s.CountUpperBound(); float64(total) > ub {
		t.Errorf("enumerated %d > upper bound %.0f", total, ub)
	}
	t.Logf("space N=3 T=2 R=2 |V|=2: %d canonical adversaries (bound %.0f)", total, s.CountUpperBound())
}

func TestRangeTilesTheSpace(t *testing.T) {
	s := Space{N: 3, T: 2, MaxRound: 2, Values: []model.Value{0, 1}}
	var all []string
	for _, a := range s.All() {
		all = append(all, a.String())
	}
	// Consecutive windows of every size must tile the enumeration exactly,
	// including the short final window and windows past the end.
	for _, size := range []int{1, 3, 7, len(all), len(all) + 5} {
		var got []string
		for off := 0; off < len(all)+size; off += size {
			for idx, a := range s.Range(off, size) {
				if idx < off || idx >= off+size {
					t.Fatalf("Range(%d,%d): offset %d outside window", off, size, idx)
				}
				got = append(got, a.String())
			}
		}
		if len(got) != len(all) {
			t.Fatalf("size %d: tiling yielded %d, want %d", size, len(got), len(all))
		}
		for i := range got {
			if got[i] != all[i] {
				t.Fatalf("size %d: tiling diverges at %d", size, i)
			}
		}
	}
	for range s.Range(3, 0) {
		t.Fatal("non-positive limit must yield nothing")
	}
	for range s.Range(len(all)+1, 4) {
		t.Fatal("window past the end must yield nothing")
	}
}

func TestDeltaOrderMatchesAll(t *testing.T) {
	// DeltaOrder must yield exactly the adversaries of All, at the same
	// offsets, with Changed reporting the unique flipped input inside each
	// pattern block and -1 at block boundaries.
	for _, s := range []Space{
		{N: 3, T: 2, MaxRound: 2, Values: []model.Value{0, 1}},
		{N: 3, T: 1, MaxRound: 2, Values: []model.Value{0, 1, 2}},
		{N: 2, T: 1, MaxRound: 1, Values: []model.Value{0}},
	} {
		var all []*model.Adversary
		for _, a := range s.All() {
			all = append(all, a)
		}
		block := s.PatternBlock()
		i := 0
		for idx, d := range s.DeltaOrder(0) {
			if idx != i {
				t.Fatalf("%s: offset %d at position %d", s.Label(), idx, i)
			}
			if d.Adv.String() != all[i].String() {
				t.Fatalf("%s: DeltaOrder[%d] = %s, All = %s", s.Label(), i, d.Adv, all[i])
			}
			if idx%block == 0 {
				if d.Changed != -1 {
					t.Fatalf("%s: block start %d has Changed=%d, want -1", s.Label(), idx, d.Changed)
				}
			} else {
				diffs := 0
				for p := range d.Adv.Inputs {
					if d.Adv.Inputs[p] != all[i-1].Inputs[p] {
						diffs++
						if p != d.Changed {
							t.Fatalf("%s: offset %d flips input %d but Changed=%d", s.Label(), idx, p, d.Changed)
						}
					}
				}
				if diffs != 1 {
					t.Fatalf("%s: offset %d differs from predecessor in %d inputs, want 1", s.Label(), idx, diffs)
				}
			}
			i++
		}
		if i != len(all) {
			t.Fatalf("%s: DeltaOrder yielded %d, All %d", s.Label(), i, len(all))
		}
	}
}

func TestDeltaOrderResumesMidBlock(t *testing.T) {
	s := Space{N: 3, T: 2, MaxRound: 2, Values: []model.Value{0, 1}}
	var all []string
	for _, a := range s.All() {
		all = append(all, a.String())
	}
	for _, off := range []int{0, 1, 5, 8, 13, len(all) - 3} {
		i := off
		first := true
		for idx, d := range s.DeltaOrder(off) {
			if idx != i {
				t.Fatalf("DeltaOrder(%d): offset %d at position %d", off, idx, i)
			}
			if d.Adv.String() != all[i] {
				t.Fatalf("DeltaOrder(%d)[%d] = %s, want %s", off, i, d.Adv, all[i])
			}
			if first && d.Changed != -1 {
				t.Fatalf("DeltaOrder(%d): resume entry has Changed=%d, want -1", off, d.Changed)
			}
			first = false
			i++
		}
		if i != len(all) {
			t.Fatalf("DeltaOrder(%d) yielded up to %d, want %d", off, i, len(all))
		}
	}
}

func TestDeltaRangeTilesLikeRange(t *testing.T) {
	s := Space{N: 3, T: 2, MaxRound: 2, Values: []model.Value{0, 1}}
	var all []string
	for _, a := range s.All() {
		all = append(all, a.String())
	}
	for _, size := range []int{1, 3, 8, 11} {
		var got []string
		for off := 0; off < len(all); off += size {
			first := true
			for idx, d := range s.DeltaRange(off, size) {
				if idx < off || idx >= off+size {
					t.Fatalf("DeltaRange(%d,%d): offset %d outside window", off, size, idx)
				}
				if first && d.Changed != -1 {
					t.Fatalf("DeltaRange(%d,%d): window entry has Changed=%d, want -1", off, size, d.Changed)
				}
				first = false
				got = append(got, d.Adv.String())
			}
		}
		if len(got) != len(all) {
			t.Fatalf("size %d: tiling yielded %d, want %d", size, len(got), len(all))
		}
		for i := range got {
			if got[i] != all[i] {
				t.Fatalf("size %d: tiling diverges at %d", size, i)
			}
		}
	}
}
