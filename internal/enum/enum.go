// Package enum enumerates adversaries exhaustively for small systems.
// The unbeatability and conformance experiments quantify over "all runs";
// for small (n, t, rounds, values) the adversary space is finite and this
// package walks all of it, canonicalizing away unobservable differences
// (deliveries to processes that are dead at receipt time).
package enum

import (
	"fmt"
	"math"

	"setconsensus/internal/bitset"
	"setconsensus/internal/model"
)

// Space bounds an exhaustive adversary enumeration.
type Space struct {
	N        int           // number of processes
	T        int           // maximum number of crashes
	MaxRound int           // crash rounds range over 1..MaxRound
	Values   []model.Value // every input vector over this set is produced
}

// Validate sanity-checks the space.
func (s Space) Validate() error {
	if s.N < 2 || s.T < 0 || s.T > s.N-1 || s.MaxRound < 1 || len(s.Values) == 0 {
		return fmt.Errorf("enum: invalid space %+v", s)
	}
	return nil
}

// CountUpperBound returns a loose upper bound on the number of adversaries
// the space can yield before canonical deduplication (input vectors ×
// failure patterns). It guards tests against accidentally huge spaces.
func (s Space) CountUpperBound() float64 {
	perCrasher := float64(s.MaxRound) * math.Pow(2, float64(s.N-1))
	patterns := 1.0
	choose := 1.0
	for size := 1; size <= s.T; size++ {
		choose = choose * float64(s.N-size+1) / float64(size)
		patterns += choose * math.Pow(perCrasher, float64(size))
	}
	return patterns * math.Pow(float64(len(s.Values)), float64(s.N))
}

// ForEach calls fn for every canonically distinct adversary in the space,
// in a deterministic order, until fn returns false. Two adversaries are
// canonically identical when they differ only in crash-round deliveries
// to processes that are already dead at receipt time (such deliveries are
// unobservable: dead processes never read).
func (s Space) ForEach(fn func(*model.Adversary) bool) error {
	if err := s.Validate(); err != nil {
		return err
	}
	seen := make(map[string]struct{})
	cont := true
	s.forEachPattern(func(fp *model.FailurePattern) bool {
		canon := canonicalize(fp)
		key := canon.String()
		if _, dup := seen[key]; dup {
			return true
		}
		seen[key] = struct{}{}
		s.forEachInputs(func(inputs []model.Value) bool {
			adv := model.NewAdversary(inputs, canon)
			cont = fn(adv)
			return cont
		})
		return cont
	})
	return nil
}

// Adversaries materializes the space. Intended for spaces known small.
func (s Space) Adversaries() ([]*model.Adversary, error) {
	var out []*model.Adversary
	err := s.ForEach(func(a *model.Adversary) bool {
		out = append(out, a)
		return true
	})
	return out, err
}

// forEachPattern enumerates failure patterns: every subset of processes of
// size ≤ T, every assignment of crash rounds, every delivery subset.
func (s Space) forEachPattern(fn func(*model.FailurePattern) bool) {
	var crashers []model.Proc
	var rec func(next int) bool
	rec = func(next int) bool {
		// Current subset (possibly empty): enumerate its configurations.
		if !s.forEachConfig(crashers, fn) {
			return false
		}
		if len(crashers) == s.T {
			return true
		}
		for p := next; p < s.N; p++ {
			crashers = append(crashers, p)
			ok := rec(p + 1)
			crashers = crashers[:len(crashers)-1]
			if !ok {
				return false
			}
		}
		return true
	}
	rec(0)
}

// forEachConfig enumerates, for a fixed crasher subset, all crash rounds
// and delivery sets.
func (s Space) forEachConfig(crashers []model.Proc, fn func(*model.FailurePattern) bool) bool {
	fp := model.NewFailurePattern(s.N)
	var rec func(idx int) bool
	rec = func(idx int) bool {
		if idx == len(crashers) {
			return fn(fp)
		}
		p := crashers[idx]
		others := make([]model.Proc, 0, s.N-1)
		for q := 0; q < s.N; q++ {
			if q != p {
				others = append(others, q)
			}
		}
		for round := 1; round <= s.MaxRound; round++ {
			for mask := 0; mask < 1<<uint(len(others)); mask++ {
				d := bitset.New(s.N)
				for b, q := range others {
					if mask&(1<<uint(b)) != 0 {
						d.Add(q)
					}
				}
				fp.Crashes[p] = model.Crash{Round: round, Delivered: d}
				if !rec(idx + 1) {
					return false
				}
			}
		}
		delete(fp.Crashes, p)
		return true
	}
	return rec(0)
}

// forEachInputs enumerates input vectors over s.Values.
func (s Space) forEachInputs(fn func([]model.Value) bool) bool {
	inputs := make([]model.Value, s.N)
	var rec func(idx int) bool
	rec = func(idx int) bool {
		if idx == s.N {
			return fn(inputs)
		}
		for _, v := range s.Values {
			inputs[idx] = v
			if !rec(idx + 1) {
				return false
			}
		}
		return true
	}
	return rec(0)
}

// canonicalize strips unobservable deliveries: a crash-round message to a
// receiver that is dead at receipt time is never read, and a delivery to
// oneself is implicit. The result is a fresh pattern.
func canonicalize(fp *model.FailurePattern) *model.FailurePattern {
	out := model.NewFailurePattern(fp.N)
	for p, c := range fp.Crashes {
		d := bitset.New(fp.N)
		c.Delivered.ForEach(func(q int) bool {
			if q != p && fp.Active(q, c.Round) {
				d.Add(q)
			}
			return true
		})
		out.Crashes[p] = model.Crash{Round: c.Round, Delivered: d}
	}
	return out
}
