// Package enum enumerates adversaries exhaustively for small systems.
// The unbeatability and conformance experiments quantify over "all runs";
// for small (n, t, rounds, values) the adversary space is finite and this
// package walks all of it, canonicalizing away unobservable differences
// (deliveries to processes that are dead at receipt time).
//
// The enumeration is exposed as a resumable iterator: All yields every
// canonical adversary paired with its offset in the deterministic order,
// and From(offset) resumes mid-stream, so unbounded sweeps can checkpoint
// with nothing but an integer.
//
// Within each failure pattern's block the input vectors follow a
// reflected Gray code over Values (delta order): consecutive adversaries
// differ in exactly one process's initial value. DeltaOrder and DeltaRange
// expose the changed index alongside each adversary so incremental
// consumers (knowledge-graph patch kernels) can rewrite only the state
// that depends on the flipped input; the offset→adversary decode is
// shared with From/Range, so delta traversals checkpoint and tile
// identically to the canonical ones.
package enum

import (
	"fmt"
	"iter"
	"math"

	"setconsensus/internal/bitset"
	"setconsensus/internal/model"
)

// Space bounds an exhaustive adversary enumeration.
type Space struct {
	N        int           // number of processes
	T        int           // maximum number of crashes
	MaxRound int           // crash rounds range over 1..MaxRound
	Values   []model.Value // every input vector over this set is produced
}

// Validate sanity-checks the space.
func (s Space) Validate() error {
	if s.N < 2 || s.T < 0 || s.T > s.N-1 || s.MaxRound < 1 || len(s.Values) == 0 {
		return fmt.Errorf("enum: invalid space %+v", s)
	}
	return nil
}

// Label renders the space's canonical display name, shared by workload
// sources and analysis reports.
func (s Space) Label() string {
	return fmt.Sprintf("space:n=%d,t=%d,r=%d,|v|=%d", s.N, s.T, s.MaxRound, len(s.Values))
}

// CountUpperBound returns a loose upper bound on the number of adversaries
// the space can yield before canonical deduplication (input vectors ×
// failure patterns). It guards tests against accidentally huge spaces.
func (s Space) CountUpperBound() float64 {
	perCrasher := float64(s.MaxRound) * math.Pow(2, float64(s.N-1))
	patterns := 1.0
	choose := 1.0
	for size := 1; size <= s.T; size++ {
		choose = choose * float64(s.N-size+1) / float64(size)
		patterns += choose * math.Pow(perCrasher, float64(size))
	}
	return patterns * math.Pow(float64(len(s.Values)), float64(s.N))
}

// inputCount returns the number of input vectors, len(Values)^N.
func (s Space) inputCount() int {
	c := 1
	for i := 0; i < s.N; i++ {
		c *= len(s.Values)
	}
	return c
}

// All returns a deterministic iterator over every canonically distinct
// adversary in the space, paired with its offset in the enumeration
// order. Two adversaries are canonically identical when they differ only
// in crash-round deliveries to processes that are already dead at receipt
// time (such deliveries are unobservable: dead processes never read).
//
// The walk never materializes adversaries, but canonical deduplication
// retains one key per distinct failure pattern seen — the compact binary
// fingerprint of FailurePattern.AppendFingerprint, built in a reused
// buffer, not a rendered string — so a full pass holds O(#patterns)
// memory, a factor len(Values)^N below the adversary count, never
// proportional to it. Duplicate patterns are rejected on the raw
// fingerprint alone: the canonical pattern is only materialized for
// patterns that survive deduplication.
//
// The iterator requires a valid space; an invalid one yields nothing —
// callers that need the error use Validate or ForEach.
func (s Space) All() iter.Seq2[int, *model.Adversary] { return s.From(0) }

// advSlabSize is how many adversaries share one Inputs/struct slab in
// the enumeration: big enough to amortize allocation to noise, small
// enough that a consumer retaining one adversary pins only a sliver.
const advSlabSize = 64

// advSlab carves adversaries out of block allocations so the
// enumeration costs two allocations per advSlabSize adversaries instead
// of two per adversary. Carved adversaries are independent values; the
// slab is only the backing memory.
type advSlab struct {
	advs   []model.Adversary
	inputs []model.Value
}

func (sl *advSlab) carve(inputs []model.Value, pattern *model.FailurePattern) *model.Adversary {
	n := len(inputs)
	if len(sl.advs) == 0 {
		sl.advs = make([]model.Adversary, advSlabSize)
	}
	if len(sl.inputs) < n {
		sl.inputs = make([]model.Value, n*advSlabSize)
	}
	in := sl.inputs[:n:n]
	sl.inputs = sl.inputs[n:]
	copy(in, inputs)
	adv := &sl.advs[0]
	sl.advs = sl.advs[1:]
	adv.Inputs, adv.Pattern = in, pattern
	return adv
}

// From resumes the enumeration of All at the given offset: it yields the
// suffix beginning with the offset-th canonical adversary, with the same
// offsets All would have paired them with. Recording the last offset seen
// plus one is therefore enough state to pause and resume an unbounded
// sweep. Whole failure-pattern blocks before the offset are skipped
// without enumerating their input vectors (each canonical pattern spans
// len(Values)^N consecutive offsets); partially consumed blocks re-enter
// the input Gray code directly at the right vector.
func (s Space) From(offset int) iter.Seq2[int, *model.Adversary] {
	return func(yield func(int, *model.Adversary) bool) {
		s.deltaFrom(offset, func(idx int, adv *model.Adversary, _ int) bool {
			return yield(idx, adv)
		})
	}
}

// Delta pairs an adversary with the index of the process whose initial
// value changed relative to the previous adversary of the same traversal.
// Changed is -1 when no single-input relationship holds: at the first
// adversary yielded (including mid-block resume entry points) and at every
// pattern-block boundary, where the failure pattern itself changes.
type Delta struct {
	Adv     *model.Adversary
	Changed int
}

// DeltaOrder resumes the enumeration of All at the given offset exactly
// as From does — same adversaries, same offsets — but additionally
// reports, for each adversary, which process's input changed since the
// previous one. Within a pattern block consecutive adversaries differ in
// exactly one process's initial value (the input vectors follow a
// reflected Gray code over Values), so incremental consumers can patch
// per-process state instead of rebuilding it; Changed = -1 marks the
// points where they must rebuild from scratch.
func (s Space) DeltaOrder(offset int) iter.Seq2[int, Delta] {
	return func(yield func(int, Delta) bool) {
		s.deltaFrom(offset, func(idx int, adv *model.Adversary, changed int) bool {
			return yield(idx, Delta{Adv: adv, Changed: changed})
		})
	}
}

// DeltaRange yields the window [offset, offset+limit) of DeltaOrder, the
// delta-annotated analogue of Range: the same adversaries at the same
// offsets, with the first adversary of the window marked Changed = -1.
// Consecutive DeltaRange windows therefore tile the space byte-identically
// to Range windows while letting workers patch within each window.
func (s Space) DeltaRange(offset, limit int) iter.Seq2[int, Delta] {
	return func(yield func(int, Delta) bool) {
		if limit <= 0 {
			return
		}
		left := limit
		s.deltaFrom(offset, func(idx int, adv *model.Adversary, changed int) bool {
			if !yield(idx, Delta{Adv: adv, Changed: changed}) {
				return false
			}
			left--
			return left > 0
		})
	}
}

// deltaFrom is the shared core of From, DeltaOrder, and DeltaRange: the
// canonical offset-addressed walk, annotated with the changed process
// index (-1 at block starts and resume entry points).
func (s Space) deltaFrom(offset int, yield func(int, *model.Adversary, int) bool) {
	if s.Validate() != nil || offset < 0 {
		return
	}
	block := s.inputCount()
	seen := make(map[string]struct{})
	keyBuf := make([]byte, 0, 64)
	var slab advSlab
	idx := 0
	s.forEachPattern(func(fp *model.FailurePattern, crashers []model.Proc) bool {
		// Dedup on the raw pattern's binary fingerprint: it strips
		// unobservable deliveries during encoding, so it equals the
		// canonical pattern's fingerprint without building it. The
		// enumeration hands over the crasher subset already sorted, so
		// the fingerprint skips its map-collect-and-sort prologue.
		keyBuf = fp.AppendFingerprintSorted(keyBuf[:0], crashers)
		if _, dup := seen[string(keyBuf)]; dup {
			return true
		}
		seen[string(keyBuf)] = struct{}{}
		if idx+block <= offset {
			idx += block // fast-skip: the whole block precedes the offset
			return true
		}
		canon := fp.Canonical()
		start := 0
		if idx < offset {
			start = offset - idx
		}
		cont := true
		s.forEachInputsDeltaFrom(start, func(i int, inputs []model.Value, changed int) bool {
			cont = yield(idx+i, slab.carve(inputs, canon), changed)
			return cont
		})
		idx += block
		return cont
	})
}

// PatternBlock returns the number of consecutive offsets each canonical
// failure pattern spans in the enumeration order: len(Values)^N. Sharded
// consumers align chunk boundaries to multiples of it so that within a
// chunk every adversary after the first differs from its predecessor in a
// single input value.
func (s Space) PatternBlock() int {
	if s.Validate() != nil {
		return 1
	}
	return s.inputCount()
}

// Range yields the window [offset, offset+limit) of the enumeration of
// All: at most limit canonical adversaries beginning at the offset-th,
// paired with the same offsets All would have paired them with. It is
// the unit of work of sharded sweeps — a coordinator carves a space
// into consecutive Range windows and hands each to a worker, and the
// windows tile the space exactly: concatenating Range(0, c), Range(c, c),
// ... reproduces All. A window past the end of the space yields nothing;
// a non-positive limit yields nothing.
func (s Space) Range(offset, limit int) iter.Seq2[int, *model.Adversary] {
	return func(yield func(int, *model.Adversary) bool) {
		if limit <= 0 {
			return
		}
		left := limit
		for idx, adv := range s.From(offset) {
			if !yield(idx, adv) {
				return
			}
			if left--; left == 0 {
				return
			}
		}
	}
}

// ForEach calls fn for every canonically distinct adversary in the space,
// in the deterministic order of All, until fn returns false.
func (s Space) ForEach(fn func(*model.Adversary) bool) error {
	if err := s.Validate(); err != nil {
		return err
	}
	for _, adv := range s.All() {
		if !fn(adv) {
			break
		}
	}
	return nil
}

// Adversaries materializes the space. Intended for spaces known small.
func (s Space) Adversaries() ([]*model.Adversary, error) {
	var out []*model.Adversary
	err := s.ForEach(func(a *model.Adversary) bool {
		out = append(out, a)
		return true
	})
	return out, err
}

// forEachPattern enumerates failure patterns: every subset of processes of
// size ≤ T, every assignment of crash rounds, every delivery subset. fn
// additionally receives the crasher subset in increasing order — exactly
// the pattern's faulty set — so dedup consumers fingerprint without
// re-collecting it from the pattern's map.
func (s Space) forEachPattern(fn func(*model.FailurePattern, []model.Proc) bool) {
	var crashers []model.Proc
	var rec func(next int) bool
	rec = func(next int) bool {
		// Current subset (possibly empty): enumerate its configurations.
		if !s.forEachConfig(crashers, fn) {
			return false
		}
		if len(crashers) == s.T {
			return true
		}
		for p := next; p < s.N; p++ {
			crashers = append(crashers, p)
			ok := rec(p + 1)
			crashers = crashers[:len(crashers)-1]
			if !ok {
				return false
			}
		}
		return true
	}
	rec(0)
}

// forEachConfig enumerates, for a fixed crasher subset, all crash rounds
// and delivery sets. The pattern handed to fn is mutated in place between
// calls — its delivery sets included — so fn must not retain it (dedup
// survivors materialize a Canonical copy).
func (s Space) forEachConfig(crashers []model.Proc, fn func(*model.FailurePattern, []model.Proc) bool) bool {
	fp := model.NewFailurePattern(s.N)
	var rec func(idx int) bool
	rec = func(idx int) bool {
		if idx == len(crashers) {
			return fn(fp, crashers)
		}
		p := crashers[idx]
		d := bitset.New(s.N)
		dw := d.Words()
		for round := 1; round <= s.MaxRound; round++ {
			for mask := 0; mask < 1<<uint(s.N-1); mask++ {
				// The mask enumerates delivery subsets of the other N−1
				// processes; spreading it around a zero bit at p maps mask
				// bit b to process b for b < p and to b+1 past it — the
				// same assignment the per-bit loop over "others" made, as
				// one word operation when the set is single-word.
				if len(dw) == 1 {
					low := uint64(mask) & (1<<uint(p) - 1)
					dw[0] = low | uint64(mask)>>uint(p)<<uint(p+1)
				} else {
					d.Clear()
					for b := 0; b < s.N-1; b++ {
						if mask&(1<<uint(b)) != 0 {
							q := b
							if b >= p {
								q = b + 1
							}
							d.Add(q)
						}
					}
				}
				fp.Crashes[p] = model.Crash{Round: round, Delivered: d}
				if !rec(idx + 1) {
					return false
				}
			}
		}
		delete(fp.Crashes, p)
		return true
	}
	return rec(0)
}

// forEachInputsFrom enumerates input vectors over s.Values beginning at
// the start-th vector, calling fn with each vector's index within the
// block. It is forEachInputsDeltaFrom with the changed index discarded.
func (s Space) forEachInputsFrom(start int, fn func(int, []model.Value) bool) bool {
	return s.forEachInputsDeltaFrom(start, func(i int, inputs []model.Value, _ int) bool {
		return fn(i, inputs)
	})
}

// forEachInputsDeltaFrom enumerates input vectors over s.Values beginning
// at the start-th vector, calling fn with each vector's index within the
// block and the index of the single process whose value differs from the
// previous vector (-1 for the first vector yielded, which has no
// predecessor in this traversal).
//
// The order is the reflected mixed-radix Gray code over base len(Values)
// with process 0 as the most significant digit: consecutive vectors differ
// in exactly one digit, by one position up or down s.Values. The vector at
// index i is decoded directly from the plain base-b expansion a[0..N-1] of
// i: scanning most-significant first with a reflection flag that starts
// clear, digit j is a[j] (flag clear) or b-1-a[j] (flag set), and the flag
// toggles whenever the decoded digit is odd — an odd digit at level j
// means the levels below run through their sub-sequence reversed. Resuming
// mid-block therefore costs O(N), and the flag at each level is the
// digit's current sweep direction.
func (s Space) forEachInputsDeltaFrom(start int, fn func(int, []model.Value, int) bool) bool {
	base := len(s.Values)
	// One backing array for both per-digit tables: this runs once per
	// pattern block, and the enumeration's allocation profile is pinned
	// by benchmarks.
	scratch := make([]int, 2*s.N)
	digits, dirs := scratch[:s.N], scratch[s.N:]
	for i, rem := s.N-1, start; i >= 0; i-- {
		digits[i] = rem % base
		rem /= base
	}
	flip := false
	for j := 0; j < s.N; j++ {
		if flip {
			digits[j] = base - 1 - digits[j]
			dirs[j] = -1
		} else {
			dirs[j] = 1
		}
		if digits[j]&1 == 1 {
			flip = !flip
		}
	}
	inputs := make([]model.Value, s.N)
	for j, d := range digits {
		inputs[j] = s.Values[d]
	}
	changed := -1
	for i := start; ; i++ {
		if !fn(i, inputs, changed) {
			return false
		}
		// Step: move the least significant digit that can advance in its
		// current direction; digits that cannot reverse direction instead.
		// A step changes exactly one digit — that digit's process index is
		// reported as changed. No digit able to move ends the block.
		j := s.N - 1
		for ; j >= 0; j-- {
			if next := digits[j] + dirs[j]; next >= 0 && next < base {
				digits[j] = next
				inputs[j] = s.Values[next]
				break
			}
			dirs[j] = -dirs[j]
		}
		if j < 0 {
			return true
		}
		changed = j
	}
}
