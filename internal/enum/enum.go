// Package enum enumerates adversaries exhaustively for small systems.
// The unbeatability and conformance experiments quantify over "all runs";
// for small (n, t, rounds, values) the adversary space is finite and this
// package walks all of it, canonicalizing away unobservable differences
// (deliveries to processes that are dead at receipt time).
//
// The enumeration is exposed as a resumable iterator: All yields every
// canonical adversary paired with its offset in the deterministic order,
// and From(offset) resumes mid-stream, so unbounded sweeps can checkpoint
// with nothing but an integer.
package enum

import (
	"fmt"
	"iter"
	"math"

	"setconsensus/internal/bitset"
	"setconsensus/internal/model"
)

// Space bounds an exhaustive adversary enumeration.
type Space struct {
	N        int           // number of processes
	T        int           // maximum number of crashes
	MaxRound int           // crash rounds range over 1..MaxRound
	Values   []model.Value // every input vector over this set is produced
}

// Validate sanity-checks the space.
func (s Space) Validate() error {
	if s.N < 2 || s.T < 0 || s.T > s.N-1 || s.MaxRound < 1 || len(s.Values) == 0 {
		return fmt.Errorf("enum: invalid space %+v", s)
	}
	return nil
}

// Label renders the space's canonical display name, shared by workload
// sources and analysis reports.
func (s Space) Label() string {
	return fmt.Sprintf("space:n=%d,t=%d,r=%d,|v|=%d", s.N, s.T, s.MaxRound, len(s.Values))
}

// CountUpperBound returns a loose upper bound on the number of adversaries
// the space can yield before canonical deduplication (input vectors ×
// failure patterns). It guards tests against accidentally huge spaces.
func (s Space) CountUpperBound() float64 {
	perCrasher := float64(s.MaxRound) * math.Pow(2, float64(s.N-1))
	patterns := 1.0
	choose := 1.0
	for size := 1; size <= s.T; size++ {
		choose = choose * float64(s.N-size+1) / float64(size)
		patterns += choose * math.Pow(perCrasher, float64(size))
	}
	return patterns * math.Pow(float64(len(s.Values)), float64(s.N))
}

// inputCount returns the number of input vectors, len(Values)^N.
func (s Space) inputCount() int {
	c := 1
	for i := 0; i < s.N; i++ {
		c *= len(s.Values)
	}
	return c
}

// All returns a deterministic iterator over every canonically distinct
// adversary in the space, paired with its offset in the enumeration
// order. Two adversaries are canonically identical when they differ only
// in crash-round deliveries to processes that are already dead at receipt
// time (such deliveries are unobservable: dead processes never read).
//
// The walk never materializes adversaries, but canonical deduplication
// retains one key per distinct failure pattern seen — the compact binary
// fingerprint of FailurePattern.AppendFingerprint, built in a reused
// buffer, not a rendered string — so a full pass holds O(#patterns)
// memory, a factor len(Values)^N below the adversary count, never
// proportional to it. Duplicate patterns are rejected on the raw
// fingerprint alone: the canonical pattern is only materialized for
// patterns that survive deduplication.
//
// The iterator requires a valid space; an invalid one yields nothing —
// callers that need the error use Validate or ForEach.
func (s Space) All() iter.Seq2[int, *model.Adversary] { return s.From(0) }

// advSlabSize is how many adversaries share one Inputs/struct slab in
// the enumeration: big enough to amortize allocation to noise, small
// enough that a consumer retaining one adversary pins only a sliver.
const advSlabSize = 64

// advSlab carves adversaries out of block allocations so the
// enumeration costs two allocations per advSlabSize adversaries instead
// of two per adversary. Carved adversaries are independent values; the
// slab is only the backing memory.
type advSlab struct {
	advs   []model.Adversary
	inputs []model.Value
}

func (sl *advSlab) carve(inputs []model.Value, pattern *model.FailurePattern) *model.Adversary {
	n := len(inputs)
	if len(sl.advs) == 0 {
		sl.advs = make([]model.Adversary, advSlabSize)
	}
	if len(sl.inputs) < n {
		sl.inputs = make([]model.Value, n*advSlabSize)
	}
	in := sl.inputs[:n:n]
	sl.inputs = sl.inputs[n:]
	copy(in, inputs)
	adv := &sl.advs[0]
	sl.advs = sl.advs[1:]
	adv.Inputs, adv.Pattern = in, pattern
	return adv
}

// From resumes the enumeration of All at the given offset: it yields the
// suffix beginning with the offset-th canonical adversary, with the same
// offsets All would have paired them with. Recording the last offset seen
// plus one is therefore enough state to pause and resume an unbounded
// sweep. Whole failure-pattern blocks before the offset are skipped
// without enumerating their input vectors (each canonical pattern spans
// len(Values)^N consecutive offsets); partially consumed blocks re-enter
// the input odometer directly at the right vector.
func (s Space) From(offset int) iter.Seq2[int, *model.Adversary] {
	return func(yield func(int, *model.Adversary) bool) {
		if s.Validate() != nil || offset < 0 {
			return
		}
		block := s.inputCount()
		seen := make(map[string]struct{})
		keyBuf := make([]byte, 0, 64)
		var slab advSlab
		idx := 0
		s.forEachPattern(func(fp *model.FailurePattern) bool {
			// Dedup on the raw pattern's binary fingerprint: it strips
			// unobservable deliveries during encoding, so it equals the
			// canonical pattern's fingerprint without building it.
			keyBuf = fp.AppendFingerprint(keyBuf[:0])
			if _, dup := seen[string(keyBuf)]; dup {
				return true
			}
			seen[string(keyBuf)] = struct{}{}
			if idx+block <= offset {
				idx += block // fast-skip: the whole block precedes the offset
				return true
			}
			canon := fp.Canonical()
			start := 0
			if idx < offset {
				start = offset - idx
			}
			cont := true
			s.forEachInputsFrom(start, func(i int, inputs []model.Value) bool {
				cont = yield(idx+i, slab.carve(inputs, canon))
				return cont
			})
			idx += block
			return cont
		})
	}
}

// Range yields the window [offset, offset+limit) of the enumeration of
// All: at most limit canonical adversaries beginning at the offset-th,
// paired with the same offsets All would have paired them with. It is
// the unit of work of sharded sweeps — a coordinator carves a space
// into consecutive Range windows and hands each to a worker, and the
// windows tile the space exactly: concatenating Range(0, c), Range(c, c),
// ... reproduces All. A window past the end of the space yields nothing;
// a non-positive limit yields nothing.
func (s Space) Range(offset, limit int) iter.Seq2[int, *model.Adversary] {
	return func(yield func(int, *model.Adversary) bool) {
		if limit <= 0 {
			return
		}
		left := limit
		for idx, adv := range s.From(offset) {
			if !yield(idx, adv) {
				return
			}
			if left--; left == 0 {
				return
			}
		}
	}
}

// ForEach calls fn for every canonically distinct adversary in the space,
// in the deterministic order of All, until fn returns false.
func (s Space) ForEach(fn func(*model.Adversary) bool) error {
	if err := s.Validate(); err != nil {
		return err
	}
	for _, adv := range s.All() {
		if !fn(adv) {
			break
		}
	}
	return nil
}

// Adversaries materializes the space. Intended for spaces known small.
func (s Space) Adversaries() ([]*model.Adversary, error) {
	var out []*model.Adversary
	err := s.ForEach(func(a *model.Adversary) bool {
		out = append(out, a)
		return true
	})
	return out, err
}

// forEachPattern enumerates failure patterns: every subset of processes of
// size ≤ T, every assignment of crash rounds, every delivery subset.
func (s Space) forEachPattern(fn func(*model.FailurePattern) bool) {
	var crashers []model.Proc
	var rec func(next int) bool
	rec = func(next int) bool {
		// Current subset (possibly empty): enumerate its configurations.
		if !s.forEachConfig(crashers, fn) {
			return false
		}
		if len(crashers) == s.T {
			return true
		}
		for p := next; p < s.N; p++ {
			crashers = append(crashers, p)
			ok := rec(p + 1)
			crashers = crashers[:len(crashers)-1]
			if !ok {
				return false
			}
		}
		return true
	}
	rec(0)
}

// forEachConfig enumerates, for a fixed crasher subset, all crash rounds
// and delivery sets.
func (s Space) forEachConfig(crashers []model.Proc, fn func(*model.FailurePattern) bool) bool {
	fp := model.NewFailurePattern(s.N)
	var rec func(idx int) bool
	rec = func(idx int) bool {
		if idx == len(crashers) {
			return fn(fp)
		}
		p := crashers[idx]
		others := make([]model.Proc, 0, s.N-1)
		for q := 0; q < s.N; q++ {
			if q != p {
				others = append(others, q)
			}
		}
		for round := 1; round <= s.MaxRound; round++ {
			for mask := 0; mask < 1<<uint(len(others)); mask++ {
				d := bitset.New(s.N)
				for b, q := range others {
					if mask&(1<<uint(b)) != 0 {
						d.Add(q)
					}
				}
				fp.Crashes[p] = model.Crash{Round: round, Delivered: d}
				if !rec(idx + 1) {
					return false
				}
			}
		}
		delete(fp.Crashes, p)
		return true
	}
	return rec(0)
}

// forEachInputsFrom enumerates input vectors over s.Values beginning at
// the start-th vector, calling fn with each vector's index within the
// block. The order is big-endian base-len(Values): process 0 is the most
// significant digit, so the vector at index i is decoded directly instead
// of enumerated up to.
func (s Space) forEachInputsFrom(start int, fn func(int, []model.Value) bool) bool {
	base := len(s.Values)
	digits := make([]int, s.N)
	for i, rem := s.N-1, start; i >= 0; i-- {
		digits[i] = rem % base
		rem /= base
	}
	inputs := make([]model.Value, s.N)
	for i := start; ; i++ {
		for j, d := range digits {
			inputs[j] = s.Values[d]
		}
		if !fn(i, inputs) {
			return false
		}
		// Increment the odometer; carry past digit 0 ends the block.
		j := s.N - 1
		for ; j >= 0; j-- {
			digits[j]++
			if digits[j] < base {
				break
			}
			digits[j] = 0
		}
		if j < 0 {
			return true
		}
	}
}
