package coord

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	setconsensus "setconsensus"
)

// checkpointVersion guards the on-disk schema.
const checkpointVersion = 1

// checkpointDone is one completed range in the checkpoint file.
type checkpointDone struct {
	Range
	Count   int                   `json:"count"`
	Summary *setconsensus.Summary `json:"summary"`
}

// checkpointPending is one not-yet-completed range. Leases are
// deliberately not persisted: on resume every outstanding range is
// pending again (at-least-once semantics make the re-run harmless), but
// the attempt count survives so a poisoned range still hits MaxAttempts
// across restarts.
type checkpointPending struct {
	Range
	Attempts int `json:"attempts,omitempty"`
}

// checkpoint is the coordinator's durable state. Workload, Refs, and
// RangeSize identify the sweep; resuming under different ones is
// rejected, since ranges from differently-sized partitions don't tile.
type checkpoint struct {
	Version   int                 `json:"version"`
	Workload  string              `json:"workload"`
	Refs      []string            `json:"refs"`
	RangeSize int                 `json:"rangeSize"`
	Next      int                 `json:"nextOffset"`
	Exhausted bool                `json:"exhausted,omitempty"`
	End       int                 `json:"end,omitempty"`
	Done      []checkpointDone    `json:"done"`
	Pending   []checkpointPending `json:"pending"`
}

// writeCheckpointLocked atomically persists the current state: marshal,
// write to a temp file in the same directory, rename over the target.
// A crash at any point leaves either the previous checkpoint or the new
// one, never a torn file. No-op without a configured path.
func (c *Coordinator) writeCheckpointLocked() error {
	if c.params.CheckpointPath == "" {
		return nil
	}
	cp := checkpoint{
		Version:   checkpointVersion,
		Workload:  c.workload,
		Refs:      c.refs,
		RangeSize: c.params.RangeSize,
		Next:      c.next,
		Exhausted: c.exhausted,
		End:       c.end,
		Done:      make([]checkpointDone, 0, len(c.done)),
		Pending:   make([]checkpointPending, 0, len(c.pending)+len(c.leased)),
	}
	offs := make([]int, 0, len(c.done))
	for off := range c.done {
		offs = append(offs, off)
	}
	sort.Ints(offs)
	for _, off := range offs {
		d := c.done[off]
		cp.Done = append(cp.Done, checkpointDone{Range: d.Range, Count: d.Count, Summary: d.Summary})
	}
	// Outstanding = queued + leased: a lease does not survive the
	// process, so it checkpoints as pending work.
	for _, rs := range c.pending {
		cp.Pending = append(cp.Pending, checkpointPending{Range: rs.Range, Attempts: rs.attempts})
	}
	for _, rs := range c.leased {
		cp.Pending = append(cp.Pending, checkpointPending{Range: rs.Range, Attempts: rs.attempts})
	}
	sort.Slice(cp.Pending, func(i, j int) bool { return cp.Pending[i].Offset < cp.Pending[j].Offset })

	blob, err := json.Marshal(&cp)
	if err != nil {
		return fmt.Errorf("coord: marshaling checkpoint: %w", err)
	}
	dir, base := filepath.Split(c.params.CheckpointPath)
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return fmt.Errorf("coord: checkpoint temp file: %w", err)
	}
	_, werr := tmp.Write(blob)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("coord: writing checkpoint: %w", werr)
	}
	if err := os.Rename(tmp.Name(), c.params.CheckpointPath); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("coord: committing checkpoint: %w", err)
	}
	return nil
}

// loadCheckpoint resumes the coordinator from path. A missing file is a
// fresh start, not an error; an unreadable or mismatched one is.
func (c *Coordinator) loadCheckpoint(path string) error {
	blob, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("coord: reading checkpoint: %w", err)
	}
	var cp checkpoint
	if err := json.Unmarshal(blob, &cp); err != nil {
		return fmt.Errorf("coord: parsing checkpoint %s: %w", path, err)
	}
	if cp.Version != checkpointVersion {
		return fmt.Errorf("coord: checkpoint %s has version %d, want %d", path, cp.Version, checkpointVersion)
	}
	if cp.Workload != c.workload {
		return fmt.Errorf("coord: checkpoint %s is for workload %q, not %q", path, cp.Workload, c.workload)
	}
	if !equalStrings(cp.Refs, c.refs) {
		return fmt.Errorf("coord: checkpoint %s is for refs %v, not %v", path, cp.Refs, c.refs)
	}
	if cp.RangeSize != c.params.RangeSize {
		return fmt.Errorf("coord: checkpoint %s uses range size %d, not %d", path, cp.RangeSize, c.params.RangeSize)
	}
	c.next = cp.Next
	c.exhausted = cp.Exhausted
	c.end = cp.End
	for i := range cp.Done {
		d := cp.Done[i]
		if d.Summary == nil {
			return fmt.Errorf("coord: checkpoint %s: done range %s has no summary", path, d.Range)
		}
		c.done[d.Offset] = &doneRange{Range: d.Range, Count: d.Count, Summary: d.Summary}
		c.doneAdv += d.Count
		c.doneRuns += d.Summary.Runs()
	}
	for _, p := range cp.Pending {
		if _, dup := c.done[p.Offset]; dup {
			continue
		}
		c.pending = append(c.pending, &rangeState{Range: p.Range, attempts: p.Attempts})
	}
	return nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
