package coord

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	setconsensus "setconsensus"
	"setconsensus/internal/chaos"
)

// checkpointVersion guards the on-disk schema. Version 2 added the
// embedded checksum and the .bak of the last good file; version 1 files
// carry no integrity evidence, so they are rejected rather than trusted.
const checkpointVersion = 2

// bakSuffix names the last-good copy kept beside the primary
// checkpoint. It is refreshed only by intact writes, so a torn or
// corrupted primary always has a loadable sibling.
const bakSuffix = ".bak"

// The typed checkpoint-load errors. Corrupt is recoverable (the .bak
// fallback engages); version and identity mismatches are deliberate
// hard rejections — the file is intact, it just answers a different
// question.
var (
	// ErrCheckpointCorrupt marks a checkpoint that is unparseable,
	// truncated, or failing its embedded checksum.
	ErrCheckpointCorrupt = errors.New("coord: checkpoint corrupt")
	// ErrCheckpointVersion marks an intact checkpoint written under a
	// different schema version.
	ErrCheckpointVersion = errors.New("coord: checkpoint version mismatch")
	// ErrCheckpointMismatch marks an intact checkpoint written for a
	// different workload, ref set, or range size.
	ErrCheckpointMismatch = errors.New("coord: checkpoint identity mismatch")
)

// checkpointDone is one completed range in the checkpoint file.
type checkpointDone struct {
	Range
	Count   int                   `json:"count"`
	Summary *setconsensus.Summary `json:"summary"`
}

// checkpointPending is one not-yet-completed range. Leases are
// deliberately not persisted: on resume every outstanding range is
// pending again (at-least-once semantics make the re-run harmless), but
// the attempt count survives so a poisoned range still hits MaxAttempts
// across restarts.
type checkpointPending struct {
	Range
	Attempts int `json:"attempts,omitempty"`
}

// checkpoint is the coordinator's durable state. Workload, Refs, and
// RangeSize identify the sweep; resuming under different ones is
// rejected, since ranges from differently-sized partitions don't tile.
// Checksum is the CRC-32 (IEEE) of the file's own JSON with the
// Checksum field emptied — cheap tamper/truncation evidence, relying on
// encoding/json's stable field order and map-key sorting (the same
// byte-stability the resume tests already pin for Summary).
type checkpoint struct {
	Version   int                 `json:"version"`
	Checksum  string              `json:"checksum,omitempty"`
	Workload  string              `json:"workload"`
	Refs      []string            `json:"refs"`
	RangeSize int                 `json:"rangeSize"`
	Next      int                 `json:"nextOffset"`
	Exhausted bool                `json:"exhausted,omitempty"`
	End       int                 `json:"end,omitempty"`
	Done      []checkpointDone    `json:"done"`
	Pending   []checkpointPending `json:"pending"`
}

// sealCheckpoint embeds the checksum and returns the final blob.
func sealCheckpoint(cp *checkpoint) ([]byte, error) {
	cp.Checksum = ""
	bare, err := json.Marshal(cp)
	if err != nil {
		return nil, fmt.Errorf("coord: marshaling checkpoint: %w", err)
	}
	cp.Checksum = fmt.Sprintf("%08x", crc32.ChecksumIEEE(bare))
	blob, err := json.Marshal(cp)
	if err != nil {
		return nil, fmt.Errorf("coord: marshaling checkpoint: %w", err)
	}
	return blob, nil
}

// atomicWrite writes blob to path via a same-directory temp file and
// rename, so readers never observe a partial file.
func atomicWrite(path string, blob []byte) error {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return fmt.Errorf("coord: checkpoint temp file: %w", err)
	}
	_, werr := tmp.Write(blob)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("coord: writing checkpoint: %w", werr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("coord: committing checkpoint: %w", err)
	}
	return nil
}

// writeCheckpointLocked persists the current state: marshal with an
// embedded checksum, atomically replace the primary, then refresh the
// .bak with the same bytes. Because the .bak is only ever written with
// a sealed blob, it always holds the last good state even if the
// primary is later torn. No-op without a configured path.
func (c *Coordinator) writeCheckpointLocked() error {
	if c.params.CheckpointPath == "" {
		return nil
	}
	cp := checkpoint{
		Version:   checkpointVersion,
		Workload:  c.workload,
		Refs:      c.refs,
		RangeSize: c.params.RangeSize,
		Next:      c.next,
		Exhausted: c.exhausted,
		End:       c.end,
		Done:      make([]checkpointDone, 0, len(c.done)),
		Pending:   make([]checkpointPending, 0, len(c.pending)+len(c.leased)),
	}
	offs := make([]int, 0, len(c.done))
	for off := range c.done {
		offs = append(offs, off)
	}
	sort.Ints(offs)
	for _, off := range offs {
		d := c.done[off]
		cp.Done = append(cp.Done, checkpointDone{Range: d.Range, Count: d.Count, Summary: d.Summary})
	}
	// Outstanding = queued + leased: a lease does not survive the
	// process, so it checkpoints as pending work.
	for _, rs := range c.pending {
		cp.Pending = append(cp.Pending, checkpointPending{Range: rs.Range, Attempts: rs.attempts})
	}
	for _, rs := range c.leased {
		cp.Pending = append(cp.Pending, checkpointPending{Range: rs.Range, Attempts: rs.attempts})
	}
	sort.Slice(cp.Pending, func(i, j int) bool { return cp.Pending[i].Offset < cp.Pending[j].Offset })

	blob, err := sealCheckpoint(&cp)
	if err != nil {
		return err
	}
	if fire, _ := chaos.Fire(c.params.Chaos, chaos.PointTornCheckpoint); fire {
		// Injected torn write: half the blob lands on the primary with no
		// atomic rename and no .bak refresh — the failure the checksum
		// and .bak fallback exist to absorb. The write "succeeds" from
		// the coordinator's point of view, exactly like a real torn write
		// under power loss.
		return os.WriteFile(c.params.CheckpointPath, blob[:len(blob)/2], 0o644)
	}
	if err := atomicWrite(c.params.CheckpointPath, blob); err != nil {
		return err
	}
	return atomicWrite(c.params.CheckpointPath+bakSuffix, blob)
}

// readCheckpoint reads and fully validates one checkpoint file against
// the coordinator's identity. Errors wrap the typed sentinels above;
// a missing file surfaces as os.ErrNotExist.
func (c *Coordinator) readCheckpoint(path string) (*checkpoint, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cp checkpoint
	if err := json.Unmarshal(blob, &cp); err != nil {
		return nil, fmt.Errorf("%w: parsing %s: %v", ErrCheckpointCorrupt, path, err)
	}
	if cp.Version != checkpointVersion {
		return nil, fmt.Errorf("%w: %s has version %d, want %d", ErrCheckpointVersion, path, cp.Version, checkpointVersion)
	}
	want := cp.Checksum
	if want == "" {
		return nil, fmt.Errorf("%w: %s has no checksum", ErrCheckpointCorrupt, path)
	}
	cp.Checksum = ""
	bare, err := json.Marshal(&cp)
	if err != nil {
		return nil, fmt.Errorf("coord: remarshaling checkpoint %s: %w", path, err)
	}
	if got := fmt.Sprintf("%08x", crc32.ChecksumIEEE(bare)); got != want {
		return nil, fmt.Errorf("%w: %s checksum %s, file claims %s", ErrCheckpointCorrupt, path, got, want)
	}
	if cp.Workload != c.workload {
		return nil, fmt.Errorf("%w: %s is for workload %q, not %q", ErrCheckpointMismatch, path, cp.Workload, c.workload)
	}
	if !equalStrings(cp.Refs, c.refs) {
		return nil, fmt.Errorf("%w: %s is for refs %v, not %v", ErrCheckpointMismatch, path, cp.Refs, c.refs)
	}
	if cp.RangeSize != c.params.RangeSize {
		return nil, fmt.Errorf("%w: %s uses range size %d, not %d", ErrCheckpointMismatch, path, cp.RangeSize, c.params.RangeSize)
	}
	for i := range cp.Done {
		if cp.Done[i].Summary == nil {
			return nil, fmt.Errorf("%w: %s: done range %s has no summary", ErrCheckpointCorrupt, path, cp.Done[i].Range)
		}
	}
	return &cp, nil
}

// loadCheckpoint resumes the coordinator from path. A missing file is a
// fresh start, not an error. A corrupt or truncated primary falls back
// to the .bak of the last good write; anything else — version or
// identity mismatch, or both copies corrupt — rejects cleanly.
func (c *Coordinator) loadCheckpoint(path string) error {
	cp, err := c.readCheckpoint(path)
	switch {
	case err == nil:
	case errors.Is(err, os.ErrNotExist):
		// No primary. A .bak alone means the last run died between a torn
		// primary being cleaned up and nothing else — resume beats
		// restarting, so try it; absent both, fresh start.
		bak, bakErr := c.readCheckpoint(path + bakSuffix)
		if errors.Is(bakErr, os.ErrNotExist) {
			return nil
		}
		if bakErr != nil {
			return bakErr
		}
		cp = bak
		c.statCkptFallbak++
	case errors.Is(err, ErrCheckpointCorrupt):
		bak, bakErr := c.readCheckpoint(path + bakSuffix)
		if bakErr != nil {
			return fmt.Errorf("%w (and no good backup: %v)", err, bakErr)
		}
		cp = bak
		c.statCkptFallbak++
	default:
		return err
	}
	c.applyCheckpoint(cp)
	return nil
}

// applyCheckpoint installs a validated checkpoint as the coordinator's
// starting state.
func (c *Coordinator) applyCheckpoint(cp *checkpoint) {
	c.next = cp.Next
	c.exhausted = cp.Exhausted
	c.end = cp.End
	for i := range cp.Done {
		d := cp.Done[i]
		c.done[d.Offset] = &doneRange{Range: d.Range, Count: d.Count, Summary: d.Summary}
		c.doneAdv += d.Count
		c.doneRuns += d.Summary.Runs()
	}
	for _, p := range cp.Pending {
		if _, dup := c.done[p.Offset]; dup {
			continue
		}
		c.pending = append(c.pending, &rangeState{Range: p.Range, attempts: p.Attempts})
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
