package coord

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"setconsensus/internal/agg"
	"setconsensus/internal/chaos"
)

// seedCheckpoint runs a fake sweep to completion with a checkpoint
// configured, leaving a valid primary file and its .bak behind, and
// returns the golden summary JSON the resume must reproduce.
func seedCheckpoint(t *testing.T, cp string) string {
	t.Helper()
	p := testParams(5)
	p.CheckpointPath = cp
	c, err := New("fake", testRefs, p)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := c.Run(context.Background(), []Worker{plainFake("seed")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{cp, cp + bakSuffix} {
		if _, err := os.Stat(f); err != nil {
			t.Fatalf("seed run left no %s: %v", f, err)
		}
	}
	return summaryJSON(t, sum)
}

// truncate rewrites path with its first third — a torn write's shape.
func truncate(t *testing.T, path string) {
	t.Helper()
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, blob[:len(blob)/3], 0o644); err != nil {
		t.Fatal(err)
	}
}

// tamper flips a content field without resealing, so the file stays
// valid JSON of the current version but fails its checksum.
func tamper(t *testing.T, path string) {
	t.Helper()
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(blob, &m); err != nil {
		t.Fatal(err)
	}
	m["nextOffset"] = m["nextOffset"].(float64) + 5
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

// setVersion rewrites the file's schema version in place.
func setVersion(t *testing.T, path string, v int) {
	t.Helper()
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(blob, &m); err != nil {
		t.Fatal(err)
	}
	m["version"] = v
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointFailureModes is the failure-mode table: a corrupt or
// truncated primary falls back to the .bak and the resumed sweep still
// produces the golden bytes; an intact file of the wrong version, or
// corruption with no good backup, rejects cleanly with the typed error.
func TestCheckpointFailureModes(t *testing.T) {
	for _, tc := range []struct {
		name         string
		corrupt      func(t *testing.T, cp string)
		wantErr      error // nil: New must succeed
		wantFallback bool
	}{
		{
			name:         "truncated JSON falls back to bak",
			corrupt:      func(t *testing.T, cp string) { truncate(t, cp) },
			wantFallback: true,
		},
		{
			name:         "bad checksum falls back to bak",
			corrupt:      func(t *testing.T, cp string) { tamper(t, cp) },
			wantFallback: true,
		},
		{
			name:         "missing primary falls back to bak",
			corrupt:      func(t *testing.T, cp string) { os.Remove(cp) },
			wantFallback: true,
		},
		{
			name:    "version mismatch rejects even with good bak",
			corrupt: func(t *testing.T, cp string) { setVersion(t, cp, checkpointVersion-1) },
			wantErr: ErrCheckpointVersion,
		},
		{
			name: "truncated primary without bak rejects",
			corrupt: func(t *testing.T, cp string) {
				truncate(t, cp)
				os.Remove(cp + bakSuffix)
			},
			wantErr: ErrCheckpointCorrupt,
		},
		{
			name: "both copies truncated rejects",
			corrupt: func(t *testing.T, cp string) {
				truncate(t, cp)
				truncate(t, cp+bakSuffix)
			},
			wantErr: ErrCheckpointCorrupt,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cp := filepath.Join(t.TempDir(), "sweep.ckpt")
			golden := seedCheckpoint(t, cp)
			tc.corrupt(t, cp)

			p := testParams(5)
			p.CheckpointPath = cp
			c, err := New("fake", testRefs, p)
			if tc.wantErr != nil {
				if err == nil {
					t.Fatal("corrupt checkpoint accepted")
				}
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("error %v, want %v", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("resume with good bak failed: %v", err)
			}
			if got := c.Stats().CheckpointFallbacks; (got > 0) != tc.wantFallback {
				t.Errorf("CheckpointFallbacks = %d, want fallback=%v", got, tc.wantFallback)
			}
			sum, err := c.Run(context.Background(), []Worker{plainFake("resume")}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got := summaryJSON(t, sum); got != golden {
				t.Errorf("resumed summary differs from golden:\n got %s\nwant %s", got, golden)
			}
		})
	}
}

// TestCheckpointVersionOneRejected pins the schema gate against the
// previous on-disk format: a v1 file (no checksum) must reject with the
// version error, never be half-trusted.
func TestCheckpointVersionOneRejected(t *testing.T) {
	cp := filepath.Join(t.TempDir(), "sweep.ckpt")
	seedCheckpoint(t, cp)
	setVersion(t, cp, 1)
	os.Remove(cp + bakSuffix)
	p := testParams(5)
	p.CheckpointPath = cp
	if _, err := New("fake", testRefs, p); !errors.Is(err, ErrCheckpointVersion) {
		t.Fatalf("v1 checkpoint: err = %v, want %v", err, ErrCheckpointVersion)
	}
}

// TestCheckpointIdentityMismatchTyped: the identity rejections carry
// ErrCheckpointMismatch so callers can branch on them.
func TestCheckpointIdentityMismatchTyped(t *testing.T) {
	cp := filepath.Join(t.TempDir(), "sweep.ckpt")
	seedCheckpoint(t, cp)
	p := testParams(5)
	p.CheckpointPath = cp
	if _, err := New("other", testRefs, p); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("workload mismatch: err = %v, want %v", err, ErrCheckpointMismatch)
	}
}

// TestTornWriteInjectionRecovers drives the chaos torn-checkpoint point
// end to end: one completion checkpoints cleanly (refreshing the .bak),
// the next completion's write is torn — a truncated blob lands on the
// primary as if power died mid-write — and the interrupted sweep must
// resume from the .bak, re-sweep only what the torn write lost, and
// still merge to the golden bytes.
func TestTornWriteInjectionRecovers(t *testing.T) {
	cp := filepath.Join(t.TempDir(), "sweep.ckpt")
	p := testParams(5)
	p.CheckpointPath = cp
	c1, err := New("fake", testRefs, p)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rs1, ok, err := c1.claim(ctx, "w")
	if err != nil || !ok {
		t.Fatalf("claim: ok=%v err=%v", ok, err)
	}
	c1.complete(ctx, "w", rs1, fakeSum(rs1.Offset, rs1.Limit), nil) // good write + .bak

	inj := mustSpec(t, "torn#1")
	c1.params.Chaos = inj
	rs2, ok, err := c1.claim(ctx, "w")
	if err != nil || !ok {
		t.Fatalf("claim: ok=%v err=%v", ok, err)
	}
	c1.complete(ctx, "w", rs2, fakeSum(rs2.Offset, rs2.Limit), nil) // torn write
	if got := inj.Counts()[chaos.PointTornCheckpoint]; got != 1 {
		t.Fatalf("torn writes fired %d times, want 1", got)
	}

	// "Process death" here: resume from disk. The torn primary must fall
	// back to the .bak (which knows only the first completion), and the
	// resumed sweep redoes the lost range plus the rest.
	p.Chaos = nil
	c2, err := New("fake", testRefs, p)
	if err != nil {
		t.Fatalf("resume after torn write: %v", err)
	}
	if got := c2.Stats().CheckpointFallbacks; got != 1 {
		t.Errorf("CheckpointFallbacks = %d, want 1", got)
	}
	if len(c2.done) != 1 {
		t.Errorf("resume loaded %d done ranges, want 1 (the pre-torn state)", len(c2.done))
	}
	sum, err := c2.Run(context.Background(), []Worker{plainFake("resume")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := summaryJSON(t, sum); got != goldenFake(t) {
		t.Errorf("post-torn resume summary differs from golden:\n got %s\nwant %s", got, goldenFake(t))
	}
}

// goldenFake is the full synthetic-space summary the fake harness
// sweeps must merge to.
func goldenFake(t *testing.T) string {
	t.Helper()
	s := agg.New("fake", testRefs)
	if err := s.Merge(fakeSum(0, fakeTotal)); err != nil {
		t.Fatal(err)
	}
	return summaryJSON(t, s)
}
