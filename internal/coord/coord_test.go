package coord

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	setconsensus "setconsensus"
	"setconsensus/internal/agg"
	"setconsensus/internal/service"
)

// The real-engine tests sweep this exhaustive space; the coordinator's
// merged summary must be byte-identical to a monolithic SweepSource.
const testWorkload = "space:n=3,t=1,r=2,v=0..1"

var testRefs = []string{"optmin", "floodmin"}

// testEngine mirrors the job service's sweep-engine configuration so
// in-process, remote, and monolithic summaries all agree.
func testEngine(t *testing.T) *setconsensus.Engine {
	t.Helper()
	p := setconsensus.DefaultEngineParams()
	p.T = setconsensus.PatternCrashBound
	p.GraphCache = 0
	eng, err := setconsensus.NewEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func testSource(t *testing.T) setconsensus.Source {
	t.Helper()
	src, err := setconsensus.ParseWorkload(testWorkload)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

// monolithic computes the single-process golden summary.
func monolithic(t *testing.T) *setconsensus.Summary {
	t.Helper()
	sum, err := testEngine(t).SweepSource(context.Background(), testRefs, testSource(t))
	if err != nil {
		t.Fatal(err)
	}
	return sum
}

func summaryJSON(t *testing.T, s *setconsensus.Summary) string {
	t.Helper()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func testParams(rangeSize int) Params {
	p := Default()
	p.RangeSize = rangeSize
	p.ProgressInterval = time.Millisecond
	return p
}

func engineWorkers(t *testing.T, n int) []Worker {
	t.Helper()
	src := testSource(t)
	ws := make([]Worker, n)
	for i := range ws {
		ws[i] = NewEngineWorker(fmt.Sprintf("engine-%d", i), testEngine(t), testRefs, src, time.Millisecond)
	}
	return ws
}

// TestEngineWorkersMatchMonolithic is the partition-equivalence core:
// three in-process workers over small ranges merge to the exact bytes
// of the monolithic sweep.
func TestEngineWorkersMatchMonolithic(t *testing.T) {
	src := testSource(t)
	c, err := New(src.Label(), testRefs, testParams(7))
	if err != nil {
		t.Fatal(err)
	}
	var snaps atomic.Int32
	sum, err := c.Run(context.Background(), engineWorkers(t, 3), func(setconsensus.SweepProgress) {
		snaps.Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := monolithic(t)
	if got, w := summaryJSON(t, sum), summaryJSON(t, want); got != w {
		t.Errorf("merged summary differs from monolithic:\n got %s\nwant %s", got, w)
	}
	if snaps.Load() == 0 {
		t.Error("no progress snapshots delivered")
	}
	if sum.Adversaries() == 0 {
		t.Fatal("empty sweep")
	}
}

// TestKillAndResumeEngine interrupts a coordinated sweep after its
// first completed range, then resumes from the checkpoint with fresh
// workers; the final summary must be byte-identical to the monolithic
// one, and the resumed run must not redo completed ranges.
func TestKillAndResumeEngine(t *testing.T) {
	cp := filepath.Join(t.TempDir(), "sweep.ckpt")
	src := testSource(t)
	p := testParams(5)
	p.CheckpointPath = cp

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c1, err := New(src.Label(), testRefs, p)
	if err != nil {
		t.Fatal(err)
	}
	// Completion forces a progress emit; the first one "kills" the run.
	_, err = c1.Run(ctx, engineWorkers(t, 2), func(setconsensus.SweepProgress) { cancel() })
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: %v", err)
	}
	blob, rerr := os.ReadFile(cp)
	if rerr != nil {
		t.Fatalf("no checkpoint after interrupt: %v", rerr)
	}
	var saved checkpoint
	if err := json.Unmarshal(blob, &saved); err != nil {
		t.Fatalf("checkpoint not valid JSON: %v", err)
	}

	c2, err := New(src.Label(), testRefs, p)
	if err != nil {
		t.Fatal(err)
	}
	doneBefore := len(c2.done)
	if err == nil && len(saved.Done) != doneBefore {
		t.Errorf("resume loaded %d done ranges, checkpoint has %d", doneBefore, len(saved.Done))
	}
	var redone atomic.Int32
	sum, err := c2.Run(context.Background(), countingWorkers(engineWorkers(t, 2), doneBefore, &redone), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, w := summaryJSON(t, sum), summaryJSON(t, monolithic(t)); got != w {
		t.Errorf("resumed summary differs from monolithic:\n got %s\nwant %s", got, w)
	}
	if n := redone.Load(); n > 0 {
		t.Errorf("resumed run re-swept %d already-completed ranges", n)
	}
}

// countingWorkers wraps workers to count sweeps of ranges already in
// the done set at resume time.
func countingWorkers(ws []Worker, _ int, redone *atomic.Int32) []Worker {
	out := make([]Worker, len(ws))
	for i, w := range ws {
		out[i] = &watchWorker{Worker: w, redone: redone}
	}
	return out
}

type watchWorker struct {
	Worker
	redone *atomic.Int32
	seen   sync.Map
}

func (w *watchWorker) Sweep(ctx context.Context, r Range, progress func(setconsensus.SweepProgress)) (*setconsensus.Summary, error) {
	if _, dup := w.seen.LoadOrStore(r.Offset, true); dup {
		w.redone.Add(1)
	}
	return w.Worker.Sweep(ctx, r, progress)
}

// --- fake-space harness: coordinator logic without engine cost ---

const fakeTotal = 23

// fakeSum builds the summary a worker would return for the window
// [off, off+lim) of a synthetic 23-adversary space with deterministic
// per-adversary decision times.
func fakeSum(off, lim int) *setconsensus.Summary {
	s := agg.New("fake", testRefs)
	for i := off; i < off+lim && i < fakeTotal; i++ {
		for _, ref := range testRefs {
			_ = s.Observe(ref, agg.Obs{Time: i % 3})
		}
	}
	return s
}

// fakeWorker sweeps the synthetic space, with optional per-call hooks.
type fakeWorker struct {
	name  string
	sweep func(ctx context.Context, r Range) (*setconsensus.Summary, error)
}

func (w *fakeWorker) Name() string { return w.name }
func (w *fakeWorker) Sweep(ctx context.Context, r Range, _ func(setconsensus.SweepProgress)) (*setconsensus.Summary, error) {
	return w.sweep(ctx, r)
}

func plainFake(name string) *fakeWorker {
	return &fakeWorker{name: name, sweep: func(_ context.Context, r Range) (*setconsensus.Summary, error) {
		return fakeSum(r.Offset, r.Limit), nil
	}}
}

// TestLeaseExpiryReissues stalls one worker past its lease; the range
// must be re-issued to the healthy worker and the merged result stay
// exact — the stalled worker's late failure is ignored.
func TestLeaseExpiryReissues(t *testing.T) {
	p := testParams(5)
	p.Lease = 20 * time.Millisecond
	p.MaxAttempts = 5
	c, err := New("fake", testRefs, p)
	if err != nil {
		t.Fatal(err)
	}
	var stalled atomic.Bool
	slow := &fakeWorker{name: "slow", sweep: func(ctx context.Context, r Range) (*setconsensus.Summary, error) {
		if stalled.CompareAndSwap(false, true) {
			time.Sleep(150 * time.Millisecond) // well past the lease
			return nil, fmt.Errorf("stalled worker gave up on %s", r)
		}
		return fakeSum(r.Offset, r.Limit), nil
	}}
	sum, err := c.Run(context.Background(), []Worker{slow, plainFake("fast")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, w := summaryJSON(t, sum), summaryJSON(t, func() *setconsensus.Summary {
		s := agg.New("fake", testRefs)
		_ = s.Merge(fakeSum(0, fakeTotal))
		return s
	}()); got != w {
		t.Errorf("merged summary wrong after lease turnover:\n got %s\nwant %s", got, w)
	}
	if sum.Adversaries() != fakeTotal {
		t.Errorf("adversaries = %d, want %d (duplicate or lost range)", sum.Adversaries(), fakeTotal)
	}
}

// TestDuplicateCompletionIsIdempotent feeds the same range result twice
// (as a re-issue race would); the second completion must be dropped.
func TestDuplicateCompletionIsIdempotent(t *testing.T) {
	c, err := New("fake", testRefs, testParams(5))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rs, ok, err := c.claim(ctx, "a")
	if err != nil || !ok {
		t.Fatalf("claim: ok=%v err=%v", ok, err)
	}
	c.complete(ctx, "a", rs, fakeSum(rs.Offset, rs.Limit), nil)
	before := c.doneAdv
	// A stale duplicate of the same range from another holder.
	dup := &rangeState{Range: rs.Range, attempts: 1, worker: "b"}
	c.complete(ctx, "b", dup, fakeSum(rs.Offset, rs.Limit), nil)
	if c.doneAdv != before {
		t.Fatalf("duplicate completion double-counted: %d -> %d", before, c.doneAdv)
	}
	sum, err := c.Run(ctx, []Worker{plainFake("finish")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Adversaries() != fakeTotal {
		t.Errorf("adversaries = %d, want %d", sum.Adversaries(), fakeTotal)
	}
}

// TestBoundedRetry: a flaky worker fails each range once then succeeds
// (within MaxAttempts); a hopeless worker exhausts the attempt budget
// and fails the run with the range named.
func TestBoundedRetry(t *testing.T) {
	p := testParams(5)
	p.MaxAttempts = 3
	p.RetryBackoff = time.Millisecond
	c, err := New("fake", testRefs, p)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	failed := map[int]bool{}
	flaky := &fakeWorker{name: "flaky", sweep: func(_ context.Context, r Range) (*setconsensus.Summary, error) {
		mu.Lock()
		first := !failed[r.Offset]
		failed[r.Offset] = true
		mu.Unlock()
		if first {
			return nil, fmt.Errorf("transient fault on %s", r)
		}
		return fakeSum(r.Offset, r.Limit), nil
	}}
	sum, err := c.Run(context.Background(), []Worker{flaky}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Adversaries() != fakeTotal {
		t.Errorf("adversaries = %d, want %d", sum.Adversaries(), fakeTotal)
	}

	p.MaxAttempts = 2
	c2, err := New("fake", testRefs, p)
	if err != nil {
		t.Fatal(err)
	}
	hopeless := &fakeWorker{name: "hopeless", sweep: func(_ context.Context, r Range) (*setconsensus.Summary, error) {
		return nil, fmt.Errorf("permanent fault")
	}}
	if _, err := c2.Run(context.Background(), []Worker{hopeless}, nil); err == nil {
		t.Fatal("run with always-failing worker succeeded")
	} else if !strings.Contains(err.Error(), "after 2 attempts") {
		t.Errorf("error %q does not name the attempt budget", err)
	}
}

// TestCheckpointMismatchRejected: resuming under a different workload,
// ref set, or range size must fail loudly instead of merging apples
// into oranges.
func TestCheckpointMismatchRejected(t *testing.T) {
	cp := filepath.Join(t.TempDir(), "sweep.ckpt")
	p := testParams(5)
	p.CheckpointPath = cp
	c, err := New("fake", testRefs, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background(), []Worker{plainFake("w")}, nil); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name     string
		workload string
		refs     []string
		size     int
	}{
		{"workload", "other", testRefs, 5},
		{"refs", "fake", []string{"optmin"}, 5},
		{"range size", "fake", testRefs, 7},
	} {
		q := testParams(tc.size)
		q.CheckpointPath = cp
		if _, err := New(tc.workload, tc.refs, q); err == nil {
			t.Errorf("%s mismatch accepted on resume", tc.name)
		}
	}
}

// --- remote transport ---

// remoteHarness mounts a real job service over httptest and returns
// worker constructors against it.
func remoteHarness(t *testing.T) string {
	t.Helper()
	srv, err := service.New(service.Default())
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	hts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return hts.URL
}

func remoteWorkers(base string, n int) []Worker {
	ws := make([]Worker, n)
	for i := range ws {
		ws[i] = NewRemoteWorker(fmt.Sprintf("remote-%d", i), base,
			service.JobRequest{Refs: testRefs, Workload: testWorkload})
	}
	return ws
}

// TestRemoteWorkersMatchMonolithic drives the coordinator over the
// HTTP job service: range-scoped jobs, SSE waits, merged bytes equal
// to the monolithic sweep.
func TestRemoteWorkersMatchMonolithic(t *testing.T) {
	base := remoteHarness(t)
	src := testSource(t)
	c, err := New(src.Label(), testRefs, testParams(7))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := c.Run(context.Background(), remoteWorkers(base, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, w := summaryJSON(t, sum), summaryJSON(t, monolithic(t)); got != w {
		t.Errorf("remote merged summary differs from monolithic:\n got %s\nwant %s", got, w)
	}
}

// TestKillAndResumeRemote is the remote half of the resume acceptance
// criterion: interrupt after the first completed range-job, resume
// against the same server, and match the monolithic bytes.
func TestKillAndResumeRemote(t *testing.T) {
	base := remoteHarness(t)
	cp := filepath.Join(t.TempDir(), "sweep.ckpt")
	src := testSource(t)
	p := testParams(5)
	p.CheckpointPath = cp

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c1, err := New(src.Label(), testRefs, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Run(ctx, remoteWorkers(base, 2), func(setconsensus.SweepProgress) { cancel() }); err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: %v", err)
	}
	if _, err := os.Stat(cp); err != nil {
		t.Fatalf("no checkpoint after interrupt: %v", err)
	}

	c2, err := New(src.Label(), testRefs, p)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := c2.Run(context.Background(), remoteWorkers(base, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, w := summaryJSON(t, sum), summaryJSON(t, monolithic(t)); got != w {
		t.Errorf("resumed remote summary differs from monolithic:\n got %s\nwant %s", got, w)
	}
}
