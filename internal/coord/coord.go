// Package coord implements distributed checkpointed sweeps: a
// coordinator that shards one exhaustive adversary space across workers
// by offset range, hands out time-bounded leases, merges the returned
// partial Summaries, and checkpoints its state as atomic JSON so a
// killed sweep resumes where it left off.
//
// # Vocabulary
//
// A range is the unit of work: the window [offset, offset+limit) of a
// workload's deterministic enumeration order, exactly what
// enum.Space.Range and setconsensus.RangeSource yield. Ranges are
// minted lazily — the coordinator does not need to know the space's
// size up front; a range that comes back with fewer adversaries than
// its limit pins the end of the space.
//
// A lease is a time-bounded claim on one range by one worker. A lease
// that expires before its result arrives puts the range back in the
// pending queue for re-issue; semantics are at-least-once, and
// completions deduplicate by range offset, so a slow worker's late
// result and a re-issue's result merge exactly once.
//
// A checkpoint is the coordinator's durable state: the merged Summary
// of every completed range plus the pending set (leases are deliberately
// not persisted — on resume every outstanding range is pending again).
// Checkpoints are written atomically (temp file + rename) on every
// completion, carry an embedded checksum, and keep a .bak of the last
// good file, so a SIGKILL — or a torn write — at any instant leaves a
// loadable state.
//
// Resume is New with a CheckpointPath whose file exists: the
// coordinator validates the checksum (falling back to the .bak when the
// primary is corrupt or truncated), checks that workload, refs, and
// range size match, then continues from the recorded frontier. The
// final merged Summary is byte-identical to a single-process
// Engine.SweepSource over the whole workload, because Summary.Merge is
// associative and commutative over the partition.
//
// # Fault tolerance
//
// Failed ranges are re-issued with capped exponential backoff and full
// jitter, bounded by MaxAttempts per range. A circuit breaker per
// worker quarantines a worker after BreakerThreshold consecutive
// failures, so a persistently bad worker stops burning range attempts
// and the sweep degrades gracefully to the healthy fleet; the failure
// that trips the breaker refunds its range attempt, attributing the
// fault to the worker rather than the range. A quarantined worker
// re-enters on probation after BreakerProbation (doubling per
// consecutive trip, capped at 8×): it gets exactly one trial range —
// success closes the breaker, failure re-quarantines. Every decision
// point is observable through Stats and the "setconsensuscoord" expvar
// map, and deterministically testable through the chaos.Injector
// threaded behind Params.Chaos.
package coord

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	setconsensus "setconsensus"
	"setconsensus/internal/agg"
	"setconsensus/internal/chaos"
	"setconsensus/internal/service"
)

// The typed parameter errors. Validate wraps them with the offending
// values, so callers branch with errors.Is while logs keep the numbers.
var (
	// ErrRangeSize rejects a non-positive range size.
	ErrRangeSize = errors.New("coord: need a positive range size")
	// ErrLease rejects a non-positive lease duration.
	ErrLease = errors.New("coord: need a positive lease")
	// ErrMaxAttempts rejects a non-positive per-range attempt budget.
	ErrMaxAttempts = errors.New("coord: need a positive attempt budget")
	// ErrRetryBackoff rejects a negative retry backoff base.
	ErrRetryBackoff = errors.New("coord: negative retry backoff")
	// ErrBackoffCap rejects a retry backoff cap that is negative or
	// below the base — an exponential schedule that can never grow is a
	// misconfiguration, not a mode.
	ErrBackoffCap = errors.New("coord: bad retry backoff cap")
	// ErrBreaker rejects negative circuit-breaker parameters.
	ErrBreaker = errors.New("coord: bad circuit-breaker parameters")
)

// Range is the unit of distributed work: the window
// [Offset, Offset+Limit) of the workload's enumeration order.
type Range struct {
	Offset int `json:"offset"`
	Limit  int `json:"limit"`
}

func (r Range) String() string { return fmt.Sprintf("[%d,%d)", r.Offset, r.Offset+r.Limit) }

// Params configures a Coordinator.
type Params struct {
	// RangeSize is the number of adversaries per minted range. Resume
	// requires the same size the checkpoint was written with.
	RangeSize int
	// Lease bounds how long a worker may hold a range before it is
	// re-issued to another worker.
	Lease time.Duration
	// MaxAttempts bounds how many times one range may be issued (first
	// grant included) before the sweep fails. Lease expiries count;
	// failures that trip a worker's breaker are refunded.
	MaxAttempts int
	// RetryBackoff is the base delay before re-issuing a failed range.
	// The actual delay grows exponentially with the attempt count,
	// capped at RetryBackoffCap, with full jitter (uniform in
	// [0, capped backoff]) so a burst of failures does not re-issue in
	// lockstep.
	RetryBackoff time.Duration
	// RetryBackoffCap caps the exponential re-issue backoff. Zero means
	// "no growth" (every delay jitters within the base); a non-zero cap
	// below the base is rejected by Validate with ErrBackoffCap.
	RetryBackoffCap time.Duration
	// BreakerThreshold is the number of consecutive failures (lease
	// expiries included) that quarantines a worker. Zero disables the
	// per-worker circuit breaker.
	BreakerThreshold int
	// BreakerProbation is how long a tripped worker sits quarantined
	// before it is re-admitted for a single trial range. Consecutive
	// trips double it, capped at 8× the configured value.
	BreakerProbation time.Duration
	// CheckpointPath, when non-empty, enables durable state: the file is
	// loaded on New when it exists (resume) and written atomically on
	// every range completion, with a .bak of the last good state.
	CheckpointPath string
	// ProgressInterval throttles the aggregated progress feed.
	ProgressInterval time.Duration
	// Total is the workload's adversary count when known up front
	// (0 = unknown); it only feeds progress snapshots.
	Total int
	// Chaos, when non-nil, injects faults at the coordinator's named
	// injection points (dropped and duplicated completions, torn
	// checkpoint writes). Nil — the default — never fires. Workers
	// carry their own injector via WithChaos.
	Chaos chaos.Injector
}

// Default returns the coordinator defaults; RangeSize suits spaces of
// thousands of adversaries, tune down for coarse fault-injection tests.
func Default() Params {
	return Params{
		RangeSize:        256,
		Lease:            30 * time.Second,
		MaxAttempts:      3,
		RetryBackoff:     250 * time.Millisecond,
		RetryBackoffCap:  5 * time.Second,
		BreakerThreshold: 3,
		BreakerProbation: 5 * time.Second,
		ProgressInterval: 100 * time.Millisecond,
	}
}

// Validate rejects unusable parameter combinations, wrapping the typed
// errors above.
func (p Params) Validate() error {
	if p.RangeSize <= 0 {
		return fmt.Errorf("%w (got %d)", ErrRangeSize, p.RangeSize)
	}
	if p.Lease <= 0 {
		return fmt.Errorf("%w (got %v)", ErrLease, p.Lease)
	}
	if p.MaxAttempts <= 0 {
		return fmt.Errorf("%w (got %d)", ErrMaxAttempts, p.MaxAttempts)
	}
	if p.RetryBackoff < 0 {
		return fmt.Errorf("%w (got %v)", ErrRetryBackoff, p.RetryBackoff)
	}
	if p.RetryBackoffCap < 0 {
		return fmt.Errorf("%w: negative cap %v", ErrBackoffCap, p.RetryBackoffCap)
	}
	if p.RetryBackoffCap > 0 && p.RetryBackoffCap < p.RetryBackoff {
		return fmt.Errorf("%w: cap %v below base %v", ErrBackoffCap, p.RetryBackoffCap, p.RetryBackoff)
	}
	if p.BreakerThreshold < 0 {
		return fmt.Errorf("%w: negative threshold %d", ErrBreaker, p.BreakerThreshold)
	}
	if p.BreakerProbation < 0 {
		return fmt.Errorf("%w: negative probation %v", ErrBreaker, p.BreakerProbation)
	}
	if p.Total < 0 {
		return fmt.Errorf("coord: negative total %d", p.Total)
	}
	return nil
}

// rangeState tracks one minted, not-yet-completed range through the
// pending → leased (→ pending …) lifecycle. One record exists per
// offset; a re-issued range reuses it, so the attempt count survives
// lease turnover.
type rangeState struct {
	Range
	attempts  int       // grants so far, bounded by MaxAttempts
	overloads int       // consecutive shed/429 returns, scales backoff
	notBefore time.Time // earliest re-issue after a failure
	worker    string    // current leaseholder, "" when pending
	expiry    time.Time // lease expiry when leased
	liveAdv   int       // leaseholder's latest progress snapshot
	liveRuns  int
}

// doneRange is one completed range: its summary and the adversary count
// it actually contained (short count = the space ended inside it).
type doneRange struct {
	Range
	Count   int
	Summary *setconsensus.Summary
}

// breakerState is the lifecycle of one worker's circuit breaker:
// closed (healthy) → open (quarantined) → half-open (one probation
// trial in flight) → closed on success, open again on failure.
type breakerState uint8

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is the per-worker failure ledger behind quarantine decisions.
type breaker struct {
	state       breakerState
	consecFails int       // consecutive failures while closed
	trips       int       // consecutive opens; scales probation
	reopenAt    time.Time // open: earliest probation trial
}

// Coordinator shards one workload across workers. Build with New, run
// with Run; a Coordinator is single-use.
type Coordinator struct {
	params   Params
	workload string // workload reference; also the merged Summary's label
	refs     []string

	mu        sync.Mutex
	next      int                 // next unminted offset
	exhausted bool                // the space's end has been observed
	end       int                 // space size, valid once exhausted
	pending   []*rangeState       // claimable (possibly backoff-delayed), any order
	leased    map[int]*rangeState // offset → outstanding lease
	done      map[int]*doneRange  // offset → completed range
	breakers  map[string]*breaker // worker name → circuit breaker
	doneAdv   int                 // adversaries across done ranges
	doneRuns  int                 // runs across done ranges
	fatal     error               // first unrecoverable error
	lastEmit  time.Time           // progress throttle
	progress  func(setconsensus.SweepProgress)
	cancel    context.CancelFunc // cancels the run on fatal

	// Robustness counters, snapshotted by Stats.
	statRetries     int64 // failed ranges re-queued for another attempt
	statRefunds     int64 // range attempts refunded on breaker trips
	statOverloads   int64 // overloaded (shedding/429) returns backed off
	statExpiries    int64 // leases expired and re-issued
	statTrips       int64 // breaker transitions into quarantine
	statProbations  int64 // probation trial ranges granted
	statCkptFallbak int64 // checkpoint loads served from the .bak
}

// New builds a coordinator for one workload. workload is both the
// reference remote workers submit and the label of the merged Summary —
// pass the same string a single-process `-workload` run would use, so
// the merged result is byte-identical to the monolithic one. When
// p.CheckpointPath names an existing file, the coordinator resumes from
// it (and rejects a checkpoint written for a different workload, ref
// set, or range size).
func New(workload string, refs []string, p Params) (*Coordinator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if workload == "" {
		return nil, fmt.Errorf("coord: empty workload reference")
	}
	if len(refs) == 0 {
		return nil, fmt.Errorf("coord: no protocol refs")
	}
	c := &Coordinator{
		params:   p,
		workload: workload,
		refs:     append([]string(nil), refs...),
		leased:   make(map[int]*rangeState),
		done:     make(map[int]*doneRange),
		breakers: make(map[string]*breaker),
	}
	if p.CheckpointPath != "" {
		if err := c.loadCheckpoint(p.CheckpointPath); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Stats is a point-in-time snapshot of the coordinator's robustness
// counters — the coordinator's analogue of Engine.Stats, published
// process-wide through the "setconsensuscoord" expvar map.
type Stats struct {
	// RangesDone is the completed-range count so far.
	RangesDone int64 `json:"rangesDone"`
	// RangeRetries counts failed ranges re-queued for another attempt.
	RangeRetries int64 `json:"rangeRetries"`
	// AttemptsRefunded counts range attempts refunded because the
	// failure tripped the worker's breaker (fault attributed to the
	// worker, not the range).
	AttemptsRefunded int64 `json:"attemptsRefunded"`
	// OverloadBackoffs counts range returns classified as worker
	// overload (queue-full/shedding 429, draining 503): the attempt is
	// refunded and the range re-queued with backoff, without charging
	// the worker's breaker — a governed fleet sheds, it does not
	// quarantine healthy-but-busy workers.
	OverloadBackoffs int64 `json:"overloadBackoffs"`
	// LeaseExpiries counts leases that expired and were re-issued.
	LeaseExpiries int64 `json:"leaseExpiries"`
	// BreakerTrips counts transitions into quarantine.
	BreakerTrips int64 `json:"breakerTrips"`
	// ProbationGrants counts trial ranges granted to quarantined
	// workers after probation.
	ProbationGrants int64 `json:"probationGrants"`
	// QuarantinedWorkers is the gauge of workers currently open or on a
	// probation trial.
	QuarantinedWorkers int64 `json:"quarantinedWorkers"`
	// CheckpointFallbacks counts checkpoint loads served from the .bak
	// after a corrupt or truncated primary.
	CheckpointFallbacks int64 `json:"checkpointFallbacks"`
	// FaultsInjected totals the chaos injector's fired faults, when one
	// is configured and countable.
	FaultsInjected int64 `json:"faultsInjected"`
}

// Stats snapshots the coordinator's robustness counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{
		RangesDone:          int64(len(c.done)),
		RangeRetries:        c.statRetries,
		AttemptsRefunded:    c.statRefunds,
		OverloadBackoffs:    c.statOverloads,
		LeaseExpiries:       c.statExpiries,
		BreakerTrips:        c.statTrips,
		ProbationGrants:     c.statProbations,
		CheckpointFallbacks: c.statCkptFallbak,
	}
	for _, b := range c.breakers {
		if b.state != breakerClosed {
			s.QuarantinedWorkers++
		}
	}
	if t, ok := c.params.Chaos.(interface{ Total() int64 }); ok {
		s.FaultsInjected = t.Total()
	}
	return s
}

// expvar publication is process-global and append-only, while tests
// build many coordinators — so the package publishes one
// "setconsensuscoord" Func reading whichever coordinator ran most
// recently, mirroring the service package's expvar shape.
var (
	expvarOnce  sync.Once
	activeCoord atomic.Pointer[Coordinator]
)

func publishExpvar(c *Coordinator) {
	activeCoord.Store(c)
	expvarOnce.Do(func() {
		expvar.Publish("setconsensuscoord", expvar.Func(func() any {
			if c := activeCoord.Load(); c != nil {
				return c.Stats()
			}
			return Stats{}
		}))
	})
}

// claimPoll bounds how often a waiting worker rescans for expired
// leases, matured backoffs, and probation re-admissions.
func (c *Coordinator) claimPoll() time.Duration {
	poll := c.params.Lease / 4
	if poll > 50*time.Millisecond {
		poll = 50 * time.Millisecond
	}
	if poll < time.Millisecond {
		poll = time.Millisecond
	}
	return poll
}

// claim hands worker the next range: an expired or matured pending
// range first, else a freshly minted one. It blocks (polling) while
// every candidate is leased out or backing off — or while the worker
// itself is quarantined — returns ok=false when the sweep is complete,
// and an error when the run is cancelled or has failed fatally.
func (c *Coordinator) claim(ctx context.Context, worker string) (*rangeState, bool, error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		c.mu.Lock()
		if c.fatal != nil {
			err := c.fatal
			c.mu.Unlock()
			return nil, false, err
		}
		now := time.Now()
		c.expireLeasesLocked(now)
		if admitted, trial := c.workerAdmitLocked(worker, now); admitted {
			if rs := c.takePendingLocked(now); rs != nil {
				c.grantLocked(rs, worker, now, trial)
				c.mu.Unlock()
				return rs, true, nil
			}
			if !c.exhausted {
				rs := &rangeState{Range: Range{Offset: c.next, Limit: c.params.RangeSize}}
				c.next += c.params.RangeSize
				c.grantLocked(rs, worker, now, trial)
				c.mu.Unlock()
				return rs, true, nil
			}
		}
		idle := c.exhausted && len(c.leased) == 0 && len(c.pending) == 0
		c.mu.Unlock()
		if idle {
			return nil, false, nil
		}
		select {
		case <-ctx.Done():
			return nil, false, ctx.Err()
		case <-time.After(c.claimPoll()):
		}
	}
}

// workerAdmitLocked decides whether worker may be granted a range right
// now. A quarantined worker is admitted once its probation matured;
// trial=true then marks the grant as the breaker's half-open trial.
func (c *Coordinator) workerAdmitLocked(worker string, now time.Time) (admitted, trial bool) {
	if c.params.BreakerThreshold <= 0 {
		return true, false
	}
	b := c.breakers[worker]
	if b == nil || b.state == breakerClosed {
		return true, false
	}
	if b.state == breakerOpen && !now.Before(b.reopenAt) {
		return true, true
	}
	return false, false // quarantined, or a probation trial already in flight
}

// expireLeasesLocked returns every expired lease to the pending queue
// and charges the silent leaseholder's breaker — an unresponsive worker
// is indistinguishable from a crashed one.
func (c *Coordinator) expireLeasesLocked(now time.Time) {
	for off, rs := range c.leased {
		if now.After(rs.expiry) {
			holder := rs.worker
			rs.worker, rs.liveAdv, rs.liveRuns = "", 0, 0
			delete(c.leased, off)
			c.pending = append(c.pending, rs)
			c.statExpiries++
			if c.noteWorkerFailureLocked(holder, now) && rs.attempts > 0 {
				rs.attempts--
				c.statRefunds++
			}
		}
	}
}

// takePendingLocked removes and returns the lowest-offset pending range
// whose backoff has matured, or nil.
func (c *Coordinator) takePendingLocked(now time.Time) *rangeState {
	best := -1
	for i, rs := range c.pending {
		if rs.notBefore.After(now) {
			continue
		}
		if best < 0 || rs.Offset < c.pending[best].Offset {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	rs := c.pending[best]
	c.pending = append(c.pending[:best], c.pending[best+1:]...)
	return rs
}

// grantLocked leases rs to worker and counts the attempt. A trial grant
// moves the worker's breaker to half-open: one range decides whether it
// re-joins the fleet or goes back into quarantine.
func (c *Coordinator) grantLocked(rs *rangeState, worker string, now time.Time, trial bool) {
	rs.attempts++
	rs.worker = worker
	rs.expiry = now.Add(c.params.Lease)
	rs.liveAdv, rs.liveRuns = 0, 0
	c.leased[rs.Offset] = rs
	if trial {
		c.breakerFor(worker).state = breakerHalfOpen
		c.statProbations++
	}
}

func (c *Coordinator) breakerFor(worker string) *breaker {
	b := c.breakers[worker]
	if b == nil {
		b = &breaker{}
		c.breakers[worker] = b
	}
	return b
}

// noteWorkerFailureLocked records one failure against worker's breaker
// and reports whether this failure tripped it closed → open — the
// signal to refund the range attempt, attributing the fault to the
// worker rather than the range. A failed half-open trial re-opens with
// escalated probation and no refund, so a poisoned range still runs
// into MaxAttempts eventually.
func (c *Coordinator) noteWorkerFailureLocked(worker string, now time.Time) (refund bool) {
	if c.params.BreakerThreshold <= 0 {
		return false
	}
	b := c.breakerFor(worker)
	if b.state == breakerHalfOpen {
		b.trips++
		b.state = breakerOpen
		b.reopenAt = now.Add(c.probationFor(b.trips))
		c.statTrips++
		return false
	}
	b.consecFails++
	if b.consecFails >= c.params.BreakerThreshold {
		b.consecFails = 0
		b.trips++
		b.state = breakerOpen
		b.reopenAt = now.Add(c.probationFor(b.trips))
		c.statTrips++
		return true
	}
	return false
}

// noteWorkerSuccessLocked closes worker's breaker: any success resets
// the consecutive-failure ledger and the probation escalation.
func (c *Coordinator) noteWorkerSuccessLocked(worker string) {
	if b := c.breakers[worker]; b != nil {
		b.state = breakerClosed
		b.consecFails, b.trips = 0, 0
	}
}

// probationFor scales the quarantine by consecutive trips: doubling per
// trip, capped at 8× the configured probation.
func (c *Coordinator) probationFor(trips int) time.Duration {
	p := c.params.BreakerProbation
	for i := 1; i < trips && i < 4; i++ {
		p *= 2
	}
	return p
}

// backoffFor computes the re-issue delay after a failed attempt:
// exponential in the attempt count from the RetryBackoff base, capped
// at RetryBackoffCap, with full jitter (uniform in [0, backoff]) so
// simultaneous failures do not re-issue in lockstep.
func (c *Coordinator) backoffFor(attempts int) time.Duration {
	base := c.params.RetryBackoff
	if base <= 0 {
		return 0
	}
	ceil := c.params.RetryBackoffCap
	if ceil <= 0 {
		ceil = base
	}
	d := base
	for i := 1; i < attempts && d < ceil; i++ {
		d *= 2
	}
	if d > ceil {
		d = ceil
	}
	return time.Duration(rand.Int64N(int64(d) + 1))
}

// complete records one worker's outcome for rs. Success merges the
// summary (idempotently: a duplicate completion of an already-done
// offset is dropped), detects exhaustion from a short count, and
// checkpoints. Failure charges the worker's breaker, then re-queues the
// range with jittered exponential backoff until MaxAttempts grants are
// spent, then fails the whole run.
func (c *Coordinator) complete(ctx context.Context, worker string, rs *rangeState, sum *setconsensus.Summary, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	off := rs.Offset

	if err != nil {
		// A cancelled run is not a worker failure: leave the range to the
		// checkpoint's pending set (leases are not persisted) and exit.
		if ctx.Err() != nil || errors.Is(err, context.Canceled) {
			return
		}
		// The lease may have expired and been re-issued while this worker
		// struggled; if someone else now owns or completed the range, this
		// stale failure is moot.
		if cur, ok := c.leased[off]; !ok || cur.worker != worker {
			return
		}
		if _, ok := c.done[off]; ok {
			return
		}
		now := time.Now()
		// Overload (queue-full/shedding 429, draining 503) is the worker
		// governing itself, not failing: refund the attempt, skip the
		// breaker, and re-queue with backoff scaled by consecutive
		// overloads so a ceilinged fleet drains instead of thrashing.
		if service.IsOverload(err) {
			rs.overloads++
			c.statOverloads++
			if rs.attempts > 0 {
				rs.attempts--
			}
			rs.worker, rs.liveAdv, rs.liveRuns = "", 0, 0
			rs.notBefore = now.Add(c.backoffFor(rs.overloads))
			delete(c.leased, off)
			c.pending = append(c.pending, rs)
			return
		}
		rs.overloads = 0
		if c.noteWorkerFailureLocked(worker, now) && rs.attempts > 0 {
			rs.attempts--
			c.statRefunds++
		}
		if rs.attempts >= c.params.MaxAttempts {
			c.fatal = fmt.Errorf("coord: range %s failed after %d attempts: %w", rs.Range, rs.attempts, err)
			if c.cancel != nil {
				c.cancel()
			}
			return
		}
		rs.worker, rs.liveAdv, rs.liveRuns = "", 0, 0
		rs.notBefore = now.Add(c.backoffFor(rs.attempts))
		delete(c.leased, off)
		c.pending = append(c.pending, rs)
		c.statRetries++
		return
	}

	c.noteWorkerSuccessLocked(worker)
	if _, dup := c.done[off]; dup {
		return // duplicate completion after a re-issue: first result won
	}
	delete(c.leased, off)
	c.dropPendingLocked(off)
	count := sum.Adversaries()
	c.done[off] = &doneRange{Range: rs.Range, Count: count, Summary: sum}
	c.doneAdv += count
	c.doneRuns += sum.Runs()
	if count < rs.Limit && (!c.exhausted || off+count < c.end) {
		// The space ended inside this range: stop minting and drop pending
		// ranges that lie wholly past the end (they could only be empty).
		c.exhausted = true
		c.end = off + count
		kept := c.pending[:0]
		for _, p := range c.pending {
			if p.Offset < c.end {
				kept = append(kept, p)
			}
		}
		c.pending = kept
	}
	if werr := c.writeCheckpointLocked(); werr != nil && c.fatal == nil {
		c.fatal = werr
		if c.cancel != nil {
			c.cancel()
		}
		return
	}
	c.emitProgressLocked(true)
}

// dropPendingLocked removes any queued re-issue of offset off.
func (c *Coordinator) dropPendingLocked(off int) {
	kept := c.pending[:0]
	for _, p := range c.pending {
		if p.Offset != off {
			kept = append(kept, p)
		}
	}
	c.pending = kept
}

// liveProgress folds one worker's in-range progress snapshot into the
// aggregated feed.
func (c *Coordinator) liveProgress(off int, p setconsensus.SweepProgress) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if rs, ok := c.leased[off]; ok {
		rs.liveAdv, rs.liveRuns = p.Adversaries, p.Runs
	}
	c.emitProgressLocked(false)
}

// emitProgressLocked streams the aggregated snapshot — completed ranges
// plus every live lease — throttled to ProgressInterval unless forced.
func (c *Coordinator) emitProgressLocked(force bool) {
	if c.progress == nil {
		return
	}
	now := time.Now()
	if !force && now.Sub(c.lastEmit) < c.params.ProgressInterval {
		return
	}
	c.lastEmit = now
	p := setconsensus.SweepProgress{Adversaries: c.doneAdv, Runs: c.doneRuns, Total: c.totalLocked()}
	for _, rs := range c.leased {
		p.Adversaries += rs.liveAdv
		p.Runs += rs.liveRuns
	}
	c.progress(p)
}

func (c *Coordinator) totalLocked() int {
	if c.exhausted {
		return c.end
	}
	return c.params.Total
}

// Run executes the sweep on the given workers until the space is
// exhausted and every range completed, then returns the merged Summary.
// progress, when non-nil, receives throttled aggregate SweepProgress
// snapshots. On cancellation Run returns ctx's error with the
// checkpoint (when configured) holding everything completed so far; a
// later Run resumes from it.
func (c *Coordinator) Run(ctx context.Context, workers []Worker, progress func(setconsensus.SweepProgress)) (*setconsensus.Summary, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("coord: no workers")
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	publishExpvar(c)

	c.mu.Lock()
	c.progress = progress
	c.cancel = cancel
	// Seed the checkpoint eagerly: a kill before the first completion
	// must still leave a loadable file.
	if err := c.writeCheckpointLocked(); err != nil {
		c.mu.Unlock()
		return nil, err
	}
	c.mu.Unlock()

	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w Worker) {
			defer wg.Done()
			for {
				rs, ok, err := c.claim(runCtx, w.Name())
				if err != nil || !ok {
					return
				}
				sum, serr := w.Sweep(runCtx, rs.Range, func(p setconsensus.SweepProgress) {
					c.liveProgress(rs.Offset, p)
				})
				if serr == nil {
					// The completion path is itself an injection surface:
					// a dropped completion loses a finished range on the
					// way back (the lease expiry re-issues it), a
					// duplicated completion delivers it twice (the merge
					// must stay idempotent).
					if fire, _ := chaos.Fire(c.params.Chaos, chaos.PointDropCompletion); fire {
						continue
					}
					if fire, _ := chaos.Fire(c.params.Chaos, chaos.PointDupCompletion); fire {
						c.complete(runCtx, w.Name(), rs, sum, nil)
					}
				}
				c.complete(runCtx, w.Name(), rs, sum, serr)
			}
		}(w)
	}
	wg.Wait()

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fatal != nil {
		return nil, c.fatal
	}
	if err := ctx.Err(); err != nil {
		// Interrupted: persist the frontier once more (cheap, idempotent)
		// so the resume sees the freshest state.
		_ = c.writeCheckpointLocked()
		return nil, err
	}
	sum, err := c.mergedLocked()
	if err != nil {
		return nil, err
	}
	if progress != nil {
		c.progress = nil // final snapshot below supersedes the feed
		progress(setconsensus.SweepProgress{Adversaries: c.doneAdv, Runs: c.doneRuns, Total: c.totalLocked()})
	}
	return sum, nil
}

// mergedLocked verifies that the done set tiles [0, end) and folds the
// per-range summaries, in offset order, into one Summary labeled with
// the workload — the same label a monolithic sweep would carry.
func (c *Coordinator) mergedLocked() (*setconsensus.Summary, error) {
	if !c.exhausted {
		return nil, fmt.Errorf("coord: sweep finished without observing the end of the space")
	}
	for off := 0; off < c.end; off += c.params.RangeSize {
		d, ok := c.done[off]
		if !ok {
			return nil, fmt.Errorf("coord: range at offset %d missing from completed set", off)
		}
		want := c.end - off
		if want > c.params.RangeSize {
			want = c.params.RangeSize
		}
		if d.Count != want {
			return nil, fmt.Errorf("coord: range %s yielded %d adversaries, want %d", d.Range, d.Count, want)
		}
	}
	offs := make([]int, 0, len(c.done))
	for off := range c.done {
		offs = append(offs, off)
	}
	sort.Ints(offs)
	merged := agg.New(c.workload, c.refs)
	for _, off := range offs {
		if err := merged.Merge(c.done[off].Summary); err != nil {
			return nil, fmt.Errorf("coord: merging range at offset %d: %w", off, err)
		}
	}
	return merged, nil
}
