package coord

import (
	"context"
	"fmt"
	"time"

	setconsensus "setconsensus"
	"setconsensus/internal/chaos"
	"setconsensus/internal/service"
)

// Worker executes one range of the sweep and returns its partial
// Summary. Implementations must be safe for the coordinator to call
// Sweep repeatedly (one range at a time per worker); the two transports
// are EngineWorker (in-process) and RemoteWorker (a setconsensusd
// server reached through service.Client). Sweep's progress callback,
// when invoked, carries the worker's in-range snapshot — the
// coordinator aggregates snapshots across workers itself.
type Worker interface {
	Name() string
	Sweep(ctx context.Context, r Range, progress func(setconsensus.SweepProgress)) (*setconsensus.Summary, error)
}

// injectWorkerFaults runs the two worker-side injection points shared
// by both transports: a straggler stall before the range (exercising
// lease expiry) and a crash that kills the attempt outright (exercising
// retry and the circuit breaker).
func injectWorkerFaults(ctx context.Context, inj chaos.Injector, name string, r Range) error {
	if fire, d := chaos.Fire(inj, chaos.PointStraggler); fire {
		if err := chaos.Sleep(ctx, d); err != nil {
			return err
		}
	}
	if fire, _ := chaos.Fire(inj, chaos.PointWorkerCrash); fire {
		return fmt.Errorf("chaos: injected crash of worker %s on range %s", name, r)
	}
	return nil
}

// EngineWorker runs ranges on an in-process Engine: each range becomes
// an Engine.SweepSourceProgress over the workload source scoped with
// setconsensus.RangeSource. Give each worker its own Engine (engines
// recycle per-sweep state); the Source may be shared — sources are
// read-only and build fresh iteration state per Seq call.
type EngineWorker struct {
	name   string
	engine *setconsensus.Engine
	refs   []string
	src    setconsensus.Source
	every  time.Duration
	chaos  chaos.Injector
}

// NewEngineWorker builds an in-process worker. every throttles the
// engine's progress feed (≤ 0 means the engine default).
func NewEngineWorker(name string, engine *setconsensus.Engine, refs []string, src setconsensus.Source, every time.Duration) *EngineWorker {
	return &EngineWorker{name: name, engine: engine, refs: append([]string(nil), refs...), src: src, every: every}
}

// WithChaos threads a fault injector into the worker's sweep path and
// returns the worker. Nil (the default) never fires.
func (w *EngineWorker) WithChaos(inj chaos.Injector) *EngineWorker {
	w.chaos = inj
	return w
}

func (w *EngineWorker) Name() string { return w.name }

func (w *EngineWorker) Sweep(ctx context.Context, r Range, progress func(setconsensus.SweepProgress)) (*setconsensus.Summary, error) {
	if err := injectWorkerFaults(ctx, w.chaos, w.name, r); err != nil {
		return nil, err
	}
	return w.engine.SweepSourceProgress(ctx, w.refs,
		setconsensus.RangeSource(w.src, r.Offset, r.Limit), w.every, progress)
}

// RemoteWorker runs ranges on a setconsensusd server: each range is
// submitted as a range-scoped sweep job (JobRequest.Offset/Limit) and
// awaited over the job's SSE stream. The request template carries the
// workload reference, protocol refs, and engine params; the coordinator
// fills the window per range.
type RemoteWorker struct {
	name   string
	client *service.Client
	req    service.JobRequest
	chaos  chaos.Injector
}

// NewRemoteWorker builds a worker speaking to the server at base (e.g.
// "http://127.0.0.1:8372"). req is the job template — Kind is forced to
// sweep, Offset/Limit are overwritten per range.
func NewRemoteWorker(name, base string, req service.JobRequest) *RemoteWorker {
	req.Kind = service.KindSweep
	return &RemoteWorker{name: name, client: &service.Client{Base: base}, req: req}
}

// WithChaos threads a fault injector into both the worker's own sweep
// path (straggler, crash) and its service.Client (transient HTTP
// errors, SSE disconnects), and returns the worker.
func (w *RemoteWorker) WithChaos(inj chaos.Injector) *RemoteWorker {
	w.chaos = inj
	w.client.Chaos = inj
	return w
}

// Client exposes the worker's underlying service client for transport
// tuning (timeouts, retry budget).
func (w *RemoteWorker) Client() *service.Client { return w.client }

func (w *RemoteWorker) Name() string { return w.name }

func (w *RemoteWorker) Sweep(ctx context.Context, r Range, progress func(setconsensus.SweepProgress)) (*setconsensus.Summary, error) {
	if err := injectWorkerFaults(ctx, w.chaos, w.name, r); err != nil {
		return nil, err
	}
	req := w.req
	req.Offset, req.Limit = r.Offset, r.Limit
	st, err := w.client.SubmitAndWait(ctx, req, func(p service.JobProgress) {
		if progress != nil {
			progress(setconsensus.SweepProgress{Adversaries: p.Adversaries, Runs: p.Runs, Total: p.Total})
		}
	})
	if err != nil {
		return nil, fmt.Errorf("coord: remote %s: %w", w.name, err)
	}
	if st.State != service.StateDone {
		return nil, fmt.Errorf("coord: remote %s: job %s ended %s: %s", w.name, st.ID, st.State, st.Error)
	}
	if st.Summary == nil {
		return nil, fmt.Errorf("coord: remote %s: job %s finished without a summary", w.name, st.ID)
	}
	return st.Summary, nil
}
