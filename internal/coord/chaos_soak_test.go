package coord

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	setconsensus "setconsensus"
	"setconsensus/internal/chaos"
	"setconsensus/internal/service"
)

func mustSpec(t *testing.T, spec string) *chaos.Seeded {
	t.Helper()
	inj, err := chaos.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

// soakParams are the shared knobs of the soak runs: short leases so
// stragglers and dropped completions turn over quickly, a generous
// attempt budget (refunded on breaker trips anyway), fast jittered
// backoff, and a breaker tight enough to actually trip under the
// schedule.
func soakParams(rangeSize int) Params {
	p := testParams(rangeSize)
	p.Lease = 60 * time.Millisecond
	p.MaxAttempts = 10
	p.RetryBackoff = time.Millisecond
	p.RetryBackoffCap = 8 * time.Millisecond
	p.BreakerThreshold = 3
	p.BreakerProbation = 10 * time.Millisecond
	return p
}

// TestChaosSoakEngine is the headline acceptance test: a seeded fault
// schedule — worker crashes, stragglers past the lease, dropped and
// duplicated completions, and one torn checkpoint write — over
// in-process engine workers must still complete and merge to the
// byte-identical monolithic Summary. The test then resumes from the
// surviving checkpoint state (possibly the .bak, if the torn write was
// the last) to prove the on-disk trail stayed loadable throughout.
func TestChaosSoakEngine(t *testing.T) {
	inj := mustSpec(t, "seed=1337,crash=0.12,straggler=0.2,delay=90ms,drop=0.1,dup=0.15,torn#1")
	cp := filepath.Join(t.TempDir(), "sweep.ckpt")
	src := testSource(t)
	p := soakParams(7)
	p.CheckpointPath = cp
	p.Chaos = inj

	c, err := New(src.Label(), testRefs, p)
	if err != nil {
		t.Fatal(err)
	}
	ws := make([]Worker, 3)
	for i := range ws {
		ws[i] = NewEngineWorker(fmt.Sprintf("engine-%d", i), testEngine(t), testRefs, src, time.Millisecond).WithChaos(inj)
	}
	sum, err := c.Run(context.Background(), ws, nil)
	if err != nil {
		t.Fatalf("chaotic sweep failed: %v (faults: %s)", err, inj)
	}
	if got, want := summaryJSON(t, sum), summaryJSON(t, monolithic(t)); got != want {
		t.Errorf("chaotic merged summary differs from monolithic:\n got %s\nwant %s", got, want)
	}
	if inj.Total() == 0 {
		t.Fatal("fault schedule fired nothing — the soak proved nothing")
	}
	t.Logf("faults injected: %s; coordinator stats: %+v", inj, c.Stats())

	// The checkpoint trail must still be loadable — through the .bak if
	// the torn write was the last one standing.
	p.Chaos = nil
	c2, err := New(src.Label(), testRefs, p)
	if err != nil {
		t.Fatalf("checkpoint unusable after chaotic run: %v", err)
	}
	sum2, err := c2.Run(context.Background(), engineWorkers(t, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := summaryJSON(t, sum2), summaryJSON(t, monolithic(t)); got != want {
		t.Errorf("post-chaos resume differs from monolithic:\n got %s\nwant %s", got, want)
	}
}

// TestChaosSoakRemote runs the schedule over the HTTP transport: client
// requests fail transiently, SSE streams sever mid-job, workers crash
// and straggle — the client's retry/reconnect plus the coordinator's
// retry/breaker must still converge on the monolithic bytes.
func TestChaosSoakRemote(t *testing.T) {
	inj := mustSpec(t, "seed=4242,crash=0.1,straggler=0.15,delay=90ms,http=0.15,sse=0.25")
	base := remoteHarness(t)
	src := testSource(t)
	p := soakParams(7)

	c, err := New(src.Label(), testRefs, p)
	if err != nil {
		t.Fatal(err)
	}
	ws := make([]Worker, 2)
	for i := range ws {
		w := NewRemoteWorker(fmt.Sprintf("remote-%d", i), base,
			service.JobRequest{Refs: testRefs, Workload: testWorkload}).WithChaos(inj)
		w.Client().RetryBase = time.Millisecond
		w.Client().RetryCap = 10 * time.Millisecond
		w.Client().Retries = 5
		ws[i] = w
	}
	sum, err := c.Run(context.Background(), ws, nil)
	if err != nil {
		t.Fatalf("chaotic remote sweep failed: %v (faults: %s)", err, inj)
	}
	if got, want := summaryJSON(t, sum), summaryJSON(t, monolithic(t)); got != want {
		t.Errorf("chaotic remote summary differs from monolithic:\n got %s\nwant %s", got, want)
	}
	if inj.Total() == 0 {
		t.Fatal("fault schedule fired nothing")
	}
	var retries, reconnects int64
	for _, w := range ws {
		st := w.(*RemoteWorker).Client().Stats()
		retries += st.HTTPRetries
		reconnects += st.SSEReconnects
	}
	t.Logf("faults: %s; client retries=%d reconnects=%d; coordinator: %+v", inj, retries, reconnects, c.Stats())
}

// TestQuarantineAllButOne is the degradation acceptance criterion: with
// every worker but one persistently failing, the breaker must
// quarantine the bad fleet (refunding their range attempts) and the
// lone healthy worker must still finish the exact sweep.
func TestQuarantineAllButOne(t *testing.T) {
	p := testParams(5)
	p.MaxAttempts = 4
	p.RetryBackoff = time.Millisecond
	p.RetryBackoffCap = 4 * time.Millisecond
	p.BreakerThreshold = 2
	p.BreakerProbation = time.Minute // longer than the test: no re-admission
	c, err := New("fake", testRefs, p)
	if err != nil {
		t.Fatal(err)
	}
	bad := func(name string) *fakeWorker {
		return &fakeWorker{name: name, sweep: func(_ context.Context, r Range) (*setconsensus.Summary, error) {
			return nil, fmt.Errorf("%s is broken", name)
		}}
	}
	// The good worker stalls its first range until both bad workers have
	// tripped their breakers, so the sweep provably ran against a fully
	// quarantined fleet rather than simply outracing it.
	var gated atomic.Bool
	good := &fakeWorker{name: "good", sweep: func(ctx context.Context, r Range) (*setconsensus.Summary, error) {
		if gated.CompareAndSwap(false, true) {
			deadline := time.Now().Add(5 * time.Second)
			for c.Stats().BreakerTrips < 2 && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
		}
		return fakeSum(r.Offset, r.Limit), nil
	}}
	sum, err := c.Run(context.Background(), []Worker{bad("bad-1"), bad("bad-2"), good}, nil)
	if err != nil {
		t.Fatalf("sweep with quarantined fleet failed: %v (stats %+v)", err, c.Stats())
	}
	if got := summaryJSON(t, sum); got != goldenFake(t) {
		t.Errorf("degraded sweep summary wrong:\n got %s\nwant %s", got, goldenFake(t))
	}
	st := c.Stats()
	if st.BreakerTrips < 2 {
		t.Errorf("BreakerTrips = %d, want ≥ 2 (both bad workers)", st.BreakerTrips)
	}
	if st.QuarantinedWorkers != 2 {
		t.Errorf("QuarantinedWorkers = %d, want 2", st.QuarantinedWorkers)
	}
	if st.AttemptsRefunded == 0 {
		t.Error("no attempts refunded despite breaker trips")
	}
}

// TestProbationReadmission: a worker that fails long enough to trip the
// breaker but then recovers must be re-admitted after probation via a
// half-open trial, close its breaker on success, and participate again.
func TestProbationReadmission(t *testing.T) {
	p := testParams(5)
	p.MaxAttempts = 6
	p.RetryBackoff = time.Millisecond
	p.RetryBackoffCap = 4 * time.Millisecond
	p.BreakerThreshold = 2
	p.BreakerProbation = 15 * time.Millisecond
	c, err := New("fake", testRefs, p)
	if err != nil {
		t.Fatal(err)
	}
	var fails atomic.Int32
	flaky := &fakeWorker{name: "flaky", sweep: func(_ context.Context, r Range) (*setconsensus.Summary, error) {
		if fails.Add(1) <= 2 {
			return nil, fmt.Errorf("warming up")
		}
		return fakeSum(r.Offset, r.Limit), nil
	}}
	sum, err := c.Run(context.Background(), []Worker{flaky}, nil)
	if err != nil {
		t.Fatalf("run: %v (stats %+v)", err, c.Stats())
	}
	if got := summaryJSON(t, sum); got != goldenFake(t) {
		t.Errorf("summary wrong after probation round-trip:\n got %s\nwant %s", got, goldenFake(t))
	}
	st := c.Stats()
	if st.BreakerTrips == 0 {
		t.Error("breaker never tripped")
	}
	if st.ProbationGrants == 0 {
		t.Error("no probation trial granted")
	}
	if st.QuarantinedWorkers != 0 {
		t.Errorf("QuarantinedWorkers = %d after recovery, want 0", st.QuarantinedWorkers)
	}
}

// TestDropAndDupInjection: dropped completions come back via lease
// expiry, duplicated ones merge idempotently — adversary counts stay
// exact either way.
func TestDropAndDupInjection(t *testing.T) {
	inj := mustSpec(t, "drop#1,dup#1")
	p := testParams(5)
	p.Lease = 30 * time.Millisecond
	p.MaxAttempts = 6
	p.RetryBackoff = time.Millisecond
	p.Chaos = inj
	c, err := New("fake", testRefs, p)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := c.Run(context.Background(), []Worker{plainFake("a"), plainFake("b")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := summaryJSON(t, sum); got != goldenFake(t) {
		t.Errorf("summary wrong under drop/dup injection:\n got %s\nwant %s", got, goldenFake(t))
	}
	counts := inj.Counts()
	if counts[chaos.PointDropCompletion] != 1 || counts[chaos.PointDupCompletion] != 1 {
		t.Errorf("injection counts = %v, want one drop and one dup", counts)
	}
}

// TestBackoffBounds pins the jittered exponential schedule: every delay
// stays within [0, cap], and the first attempt within [0, base].
func TestBackoffBounds(t *testing.T) {
	p := testParams(5)
	p.RetryBackoff = 8 * time.Millisecond
	p.RetryBackoffCap = 20 * time.Millisecond
	c, err := New("fake", testRefs, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if d := c.backoffFor(1); d < 0 || d > 8*time.Millisecond {
			t.Fatalf("backoffFor(1) = %v outside [0, base]", d)
		}
		if d := c.backoffFor(10); d < 0 || d > 20*time.Millisecond {
			t.Fatalf("backoffFor(10) = %v outside [0, cap]", d)
		}
	}
}

// TestParamsValidateTyped pins the typed validation errors.
func TestParamsValidateTyped(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*Params)
		want error
	}{
		{"cap below base", func(p *Params) { p.RetryBackoff = time.Second; p.RetryBackoffCap = time.Millisecond }, ErrBackoffCap},
		{"negative cap", func(p *Params) { p.RetryBackoffCap = -time.Second }, ErrBackoffCap},
		{"negative threshold", func(p *Params) { p.BreakerThreshold = -1 }, ErrBreaker},
		{"negative probation", func(p *Params) { p.BreakerProbation = -time.Second }, ErrBreaker},
		{"zero range size", func(p *Params) { p.RangeSize = 0 }, ErrRangeSize},
		{"zero lease", func(p *Params) { p.Lease = 0 }, ErrLease},
		{"zero attempts", func(p *Params) { p.MaxAttempts = 0 }, ErrMaxAttempts},
		{"negative backoff", func(p *Params) { p.RetryBackoff = -time.Second }, ErrRetryBackoff},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := Default()
			tc.mut(&p)
			if err := p.Validate(); !errors.Is(err, tc.want) {
				t.Errorf("Validate() = %v, want %v", err, tc.want)
			}
		})
	}
	if err := Default().Validate(); err != nil {
		t.Errorf("defaults invalid: %v", err)
	}
}
