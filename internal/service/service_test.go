package service

import (
	"context"
	"encoding/json"
	"io"
	"iter"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	setconsensus "setconsensus"
)

// newTestServer builds a started server with test-sized budgets mounted
// on httptest, plus a client pointed at it. Cleanup drains the server
// and fails the test if the drain grace expires — a worker slot still
// held at teardown is a bug, not a shrug.
func newTestServer(t *testing.T, mutate func(*Params)) (*Server, *Client) {
	t.Helper()
	p := Default()
	p.Workers = 2
	p.QueueDepth = 8
	p.MaxSpaceSize = 1_000_000
	p.JobDeadline = 30 * time.Second
	p.ResultBound = 16
	p.EngineParallelism = 2
	p.ProgressInterval = 2 * time.Millisecond
	if mutate != nil {
		mutate(&p)
	}
	s, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	c := &Client{Base: ts.URL, HTTP: ts.Client()}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown did not drain cleanly: %v", err)
		}
		ts.Close()
	})
	return s, c
}

// The slow test workload: an unknown-count source that yields one
// failure-free 3-process adversary per step with a per-step delay, so
// tests can hold a worker slot deterministically and exercise the
// runtime space budget (unknown count bypasses admission sizing).
// Parameters: steps=<n> delayus=<µs>.
const slowWorkload = "svc-test-slow"

var registerSlowOnce sync.Once

func registerSlowWorkload(t *testing.T) {
	t.Helper()
	registerSlowOnce.Do(func() {
		setconsensus.DefaultWorkloads().MustRegister(setconsensus.WorkloadSpec{
			Name:    slowWorkload,
			Summary: "test-only slow unknown-count source",
			Params:  "steps=1000 delayus=1000",
			New: func(args setconsensus.WorkloadArgs) (setconsensus.Source, error) {
				steps, err := args.Int("steps", 1000)
				if err != nil {
					return nil, err
				}
				delayus, err := args.Int("delayus", 1000)
				if err != nil {
					return nil, err
				}
				if err := args.Finish(); err != nil {
					return nil, err
				}
				delay := time.Duration(delayus) * time.Microsecond
				seq := iter.Seq[*setconsensus.Adversary](func(yield func(*setconsensus.Adversary) bool) {
					adv, err := setconsensus.NewBuilder(3, 0).Inputs(0, 1, 2).Build()
					if err != nil {
						panic(err)
					}
					for i := 0; i < steps; i++ {
						time.Sleep(delay)
						if !yield(adv) {
							return
						}
					}
				})
				return setconsensus.FuncSource(slowWorkload, -1, seq), nil
			},
		})
	})
}

// TestSweepJobMatchesLocalEngine pins the service's core contract: a
// sweep submitted as a job returns the same Summary — rendered through
// the same table — as the same references swept on a local Engine.
func TestSweepJobMatchesLocalEngine(t *testing.T) {
	_, c := newTestServer(t, nil)
	ctx := context.Background()
	refs := []string{"optmin", "upmin"}
	const workload = "space:n=3,t=1,r=2,v=0..1"

	st, err := c.SubmitAndWait(ctx, JobRequest{
		Kind: KindSweep, Refs: refs, Workload: workload,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("job %s finished %s (%s)", st.ID, st.State, st.Error)
	}
	if st.Summary == nil {
		t.Fatal("done sweep job carries no summary")
	}

	eng := setconsensus.New(
		setconsensus.WithCrashBound(setconsensus.PatternCrashBound),
	)
	src, err := setconsensus.ParseWorkload(workload)
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.SweepSource(ctx, refs, src)
	if err != nil {
		t.Fatal(err)
	}
	got := setconsensus.SummaryTable(st.Summary).Render()
	if local := setconsensus.SummaryTable(want).Render(); got != local {
		t.Fatalf("remote summary differs from local:\nremote:\n%s\nlocal:\n%s", got, local)
	}

	// The finished result is also served from the store.
	st2, err := c.Get(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != StateDone || setconsensus.SummaryTable(st2.Summary).Render() != got {
		t.Fatalf("stored status diverged from terminal event")
	}
}

// TestAnalysisJobMatchesLocalEngine runs a bounded deviation search as a
// job and checks the report against a local AnalyzeStream of the same
// reference, plus that stage progress actually streamed.
func TestAnalysisJobMatchesLocalEngine(t *testing.T) {
	_, c := newTestServer(t, nil)
	ctx := context.Background()
	const ref = "search:optmin:n=3,t=2,r=2,width=2"

	var stages []string
	st, err := c.SubmitAndWait(ctx, JobRequest{Kind: KindAnalysis, Analysis: ref},
		func(p JobProgress) {
			if len(stages) == 0 || stages[len(stages)-1] != p.Stage {
				stages = append(stages, p.Stage)
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("analysis job finished %s (%s)", st.State, st.Error)
	}
	if st.Analysis == nil || !st.Analysis.OK() {
		t.Fatalf("analysis job report not OK: %+v", st.Analysis)
	}

	eng := setconsensus.New()
	want, err := eng.Analyze(ctx, ref)
	if err != nil {
		t.Fatal(err)
	}
	got := setconsensus.AnalysisTable(st.Analysis).Render()
	if local := setconsensus.AnalysisTable(want).Render(); got != local {
		t.Fatalf("remote analysis differs from local:\nremote:\n%s\nlocal:\n%s", got, local)
	}
	// A fast job may finish before the SSE subscription lands, so live
	// progress events are best-effort; the terminal status always
	// retains the last stage snapshot.
	if st.Progress == nil || st.Progress.Stage == "" {
		t.Errorf("terminal status carries no stage progress: %+v", st.Progress)
	}
	if len(stages) > 0 && stages[0] == "" {
		t.Errorf("streamed empty stage name: %v", stages)
	}
}

// TestSubmissionErrors pins the HTTP error contract of POST /v1/jobs:
// malformed payloads and unknown references are 400, out-of-budget
// spaces are 422 with the typed error's message.
func TestSubmissionErrors(t *testing.T) {
	_, c := newTestServer(t, func(p *Params) { p.MaxSpaceSize = 10 })
	ctx := context.Background()

	post := func(body string) (int, string) {
		t.Helper()
		resp, err := c.http().Post(c.url("/v1/jobs"), "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	cases := []struct {
		name     string
		body     string
		wantCode int
		wantMsg  string
	}{
		{"malformed json", `{"kind":`, http.StatusBadRequest, "bad job payload"},
		{"unknown kind", `{"kind":"bogus"}`, http.StatusBadRequest, "unknown job kind"},
		{"sweep without workload", `{"kind":"sweep","refs":["optmin"]}`, http.StatusBadRequest, "needs a workload"},
		{"sweep without refs", `{"kind":"sweep","workload":"collapse:k=1,r=2"}`, http.StatusBadRequest, "protocol ref"},
		{"unknown workload", `{"kind":"sweep","refs":["optmin"],"workload":"nonsense"}`, http.StatusBadRequest, "unknown name"},
		{"unknown analysis", `{"kind":"analysis","analysis":"nonsense"}`, http.StatusBadRequest, "unknown name"},
		{"unknown backend", `{"kind":"analysis","analysis":"search:optmin","params":{"backend":"quantum"}}`, http.StatusBadRequest, "backend"},
		{"space over budget", `{"kind":"sweep","refs":["optmin"],"workload":"space:n=3,t=1,r=2,v=0..1"}`,
			http.StatusUnprocessableEntity, "budget"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := post(tc.body)
			if code != tc.wantCode {
				t.Fatalf("status = %d, want %d (body %s)", code, tc.wantCode, body)
			}
			if !strings.Contains(body, tc.wantMsg) {
				t.Fatalf("body %q does not mention %q", body, tc.wantMsg)
			}
		})
	}

	if _, err := c.Get(ctx, "zzz"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("GET unknown job = %v, want 404", err)
	}
	if _, err := c.Cancel(ctx, "zzz"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("DELETE unknown job = %v, want 404", err)
	}
}

// TestBadProtocolRefFailsJob pins that references admission cannot
// resolve synchronously (protocol refs bind at sweep time) surface as a
// failed job, not a hung one.
func TestBadProtocolRefFailsJob(t *testing.T) {
	_, c := newTestServer(t, nil)
	st, err := c.SubmitAndWait(context.Background(), JobRequest{
		Kind: KindSweep, Refs: []string{"no-such-protocol"}, Workload: "collapse:k=1,r=2",
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed || st.Error == "" {
		t.Fatalf("job with bad protocol ref finished %s (%q)", st.State, st.Error)
	}
}

// TestQueueFullRejects pins the bounded queue: with one worker held and
// the one-deep queue occupied, the next submission is rejected with 429
// + Retry-After instead of buffering without bound.
func TestQueueFullRejects(t *testing.T) {
	registerSlowWorkload(t)
	_, c := newTestServer(t, func(p *Params) {
		p.Workers = 1
		p.QueueDepth = 1
	})
	ctx := context.Background()
	slow := JobRequest{Kind: KindSweep, Refs: []string{"optmin"},
		Workload: slowWorkload + ":steps=100000,delayus=1000"}

	running, err := c.Submit(ctx, slow)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to claim it so the queue slot is free again.
	waitState(t, c, running.ID, StateRunning)

	queued, err := c.Submit(ctx, slow)
	if err != nil {
		t.Fatal(err)
	}
	// 429 is transient (the client would retry with Retry-After
	// backoff), so probe with a no-retry copy to see the rejection.
	direct := &Client{Base: c.Base, HTTP: c.HTTP, Retries: -1}
	if _, err := direct.Submit(ctx, slow); err == nil || !strings.Contains(err.Error(), "429") {
		t.Fatalf("third submission = %v, want 429 queue full", err)
	} else if !IsOverload(err) {
		t.Fatalf("third submission error %v not classified as overload", err)
	}

	// Cancelling the queued job frees it without a worker ever claiming
	// it; cancelling the running one releases the worker slot (cleanup's
	// clean drain is the proof).
	for _, id := range []string{queued.ID, running.ID} {
		if _, err := c.Cancel(ctx, id); err != nil {
			t.Fatal(err)
		}
		st := waitTerminal(t, c, id)
		if st.State != StateCancelled {
			t.Fatalf("job %s finished %s, want cancelled", id, st.State)
		}
	}
}

// TestResultStoreEviction pins the bounded result store: with a bound of
// two, the third finished job evicts the first, FIFO.
func TestResultStoreEviction(t *testing.T) {
	_, c := newTestServer(t, func(p *Params) { p.ResultBound = 2 })
	ctx := context.Background()
	quick := JobRequest{Kind: KindSweep, Refs: []string{"optmin"}, Workload: "collapse:k=1,r=2"}

	var ids []string
	for i := 0; i < 3; i++ {
		st, err := c.SubmitAndWait(ctx, quick, nil)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Fatalf("quick job finished %s (%s)", st.State, st.Error)
		}
		ids = append(ids, st.ID)
	}
	if _, err := c.Get(ctx, ids[0]); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("evicted job Get = %v, want 404", err)
	}
	for _, id := range ids[1:] {
		if _, err := c.Get(ctx, id); err != nil {
			t.Fatalf("retained job %s: %v", id, err)
		}
	}
}

// TestObservability pins the monitoring surface: /healthz, /v1/stats
// counters moving with work, and expvar exposing the service map.
func TestObservability(t *testing.T) {
	_, c := newTestServer(t, nil)
	ctx := context.Background()

	if _, err := c.SubmitAndWait(ctx, JobRequest{
		Kind: KindSweep, Refs: []string{"optmin"}, Workload: "collapse:k=1,r=2",
	}, nil); err != nil {
		t.Fatal(err)
	}

	get := func(path string) string {
		t.Helper()
		resp, err := c.http().Get(c.url(path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}

	if body := get("/healthz"); !strings.Contains(body, "ok") {
		t.Fatalf("healthz = %q", body)
	}
	var stats map[string]int64
	if err := json.Unmarshal([]byte(get("/v1/stats")), &stats); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"jobs_queued", "jobs_running", "jobs_done", "jobs_failed",
		"jobs_cancelled", "queue_depth", "runs_total", "runs_per_sec",
		"graphs_rebuilt", "graphs_revived", "graphs_patched"} {
		if _, ok := stats[key]; !ok {
			t.Errorf("stats missing %q: %v", key, stats)
		}
	}
	if stats["jobs_done"] < 1 {
		t.Errorf("jobs_done = %d after a finished job", stats["jobs_done"])
	}
	if stats["runs_total"] < 1 {
		t.Errorf("runs_total = %d after a finished sweep", stats["runs_total"])
	}
	if body := get("/debug/vars"); !strings.Contains(body, "setconsensusd") {
		t.Error("expvar does not expose the setconsensusd map")
	}
	if body := get("/debug/pprof/cmdline"); body == "" {
		t.Error("pprof cmdline empty")
	}
}

// TestSSEWireFormat pins the raw stream shape a non-Go consumer sees:
// text/event-stream, an immediate state frame, and a terminal frame
// that closes the stream even for a job that finished long ago.
func TestSSEWireFormat(t *testing.T) {
	_, c := newTestServer(t, nil)
	ctx := context.Background()
	st, err := c.SubmitAndWait(ctx, JobRequest{
		Kind: KindSweep, Refs: []string{"optmin"}, Workload: "collapse:k=1,r=2",
	}, nil)
	if err != nil {
		t.Fatal(err)
	}

	resp, err := c.http().Get(c.url("/v1/jobs/" + st.ID + "/events"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	stateAt := strings.Index(text, "event: state\n")
	doneAt := strings.Index(text, "event: done\n")
	if stateAt < 0 || doneAt < 0 || doneAt < stateAt {
		t.Fatalf("stream missing ordered state/done frames:\n%s", text)
	}
	if !strings.Contains(text, `"summary"`) {
		t.Fatalf("terminal frame carries no summary:\n%s", text)
	}
}

// waitState polls until the job reports the wanted state.
func waitState(t *testing.T, c *Client, id string, want JobState) *JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := c.Get(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return st
		}
		if st.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("job %s is %s, want %s", id, st.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// waitTerminal polls until the job reaches any terminal state.
func waitTerminal(t *testing.T, c *Client, id string) *JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := c.Get(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestRangeScopedSweepJob pins the Offset/Limit window contract behind
// coordinated sweeps: a range job sweeps exactly its window, two
// complementary windows merge to the whole-workload summary, and a
// range job over a space beyond the budget is admitted on its window.
func TestRangeScopedSweepJob(t *testing.T) {
	// Budget far below the space's enumeration bound: whole-workload
	// submissions must bounce while range jobs pass on their windows.
	_, c := newTestServer(t, func(p *Params) { p.MaxSpaceSize = 10 })
	ctx := context.Background()
	refs := []string{"optmin"}
	const workload = "space:n=3,t=1,r=2,v=0..1"

	if _, err := c.Submit(ctx, JobRequest{Kind: KindSweep, Refs: refs, Workload: workload}); err == nil {
		t.Fatal("whole-space job passed a 10-adversary budget")
	}

	src, err := setconsensus.ParseWorkload(workload)
	if err != nil {
		t.Fatal(err)
	}
	eng := setconsensus.New(setconsensus.WithCrashBound(setconsensus.PatternCrashBound))
	whole, err := eng.SweepSource(ctx, refs, src)
	if err != nil {
		t.Fatal(err)
	}
	total := whole.Adversaries()

	merged, err := eng.NewAggregator(src.Label(), refs)
	if err != nil {
		t.Fatal(err)
	}
	sum := merged.Summary()
	for off := 0; off <= total; off += 10 { // last window runs short / empty
		st, err := c.SubmitAndWait(ctx, JobRequest{
			Kind: KindSweep, Refs: refs, Workload: workload, Offset: off, Limit: 10,
		}, nil)
		if err != nil {
			t.Fatalf("range job at offset %d: %v", off, err)
		}
		if st.State != StateDone || st.Summary == nil {
			t.Fatalf("range job at offset %d finished %s (%s)", off, st.State, st.Error)
		}
		if err := sum.Merge(st.Summary); err != nil {
			t.Fatalf("merging window at %d: %v", off, err)
		}
	}
	if got, want := setconsensus.SummaryTable(sum).Render(), setconsensus.SummaryTable(whole).Render(); got != want {
		t.Fatalf("merged range jobs differ from whole sweep:\nmerged:\n%s\nwhole:\n%s", got, want)
	}

	// Shape validation: analysis jobs cannot carry windows, negatives die.
	for _, bad := range []JobRequest{
		{Kind: KindAnalysis, Analysis: "forced", Offset: 1},
		{Kind: KindSweep, Refs: refs, Workload: workload, Offset: -1},
		{Kind: KindSweep, Refs: refs, Workload: workload, Limit: -2},
	} {
		if _, err := c.Submit(ctx, bad); err == nil {
			t.Errorf("invalid range request accepted: %+v", bad)
		}
	}
}
