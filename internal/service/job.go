package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	setconsensus "setconsensus"
)

// JobKind discriminates what a job runs: an aggregating workload sweep
// or a named unbeatability analysis.
const (
	KindSweep    = "sweep"
	KindAnalysis = "analysis"
)

// JobState is the lifecycle of a job. Transitions are monotone:
// queued → running → one of the three terminal states (done, failed,
// cancelled); a queued job cancelled before a worker claims it skips
// running.
type JobState string

const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// JobParams carries the engine knobs of one job, mirroring the CLI
// flags: k is the coordination degree, t the crash bound (absent means
// each adversary's own failure count, the workload-sweep default),
// backend the execution backend name, timeoutMs an optional per-job
// deadline below the server's hard JobDeadline.
type JobParams struct {
	K         int    `json:"k,omitempty"`
	T         *int   `json:"t,omitempty"`
	Backend   string `json:"backend,omitempty"`
	TimeoutMS int64  `json:"timeoutMs,omitempty"`
}

// JobRequest is the POST /v1/jobs payload: a kind, the protocol refs
// and workload reference (sweeps) or the analysis reference (analyses),
// and the engine parameters. References resolve through the same
// Workload/Analysis registries as the CLIs, so anything expressible as
// `setconsensus -workload/-analyze` is expressible as a job.
type JobRequest struct {
	Kind     string    `json:"kind"`
	Refs     []string  `json:"refs,omitempty"`
	Workload string    `json:"workload,omitempty"`
	Analysis string    `json:"analysis,omitempty"`
	Params   JobParams `json:"params"`

	// Offset/Limit scope a sweep job to the workload's offset window
	// [offset, offset+limit) — the range jobs a sweep coordinator
	// (internal/coord) fans out across a fleet. Limit 0 with a nonzero
	// offset means "the rest of the stream"; both zero means the whole
	// workload, the ordinary un-scoped job. Range-scoped jobs are sized
	// against MaxSpaceSize by their window, not the full space, so a
	// fleet can collectively sweep a space far beyond any one server's
	// per-job budget.
	Offset int `json:"offset,omitempty"`
	Limit  int `json:"limit,omitempty"`
}

// validate checks the request shape (not the budgets — admission does
// that with the resolved workload in hand).
func (r *JobRequest) validate() error {
	switch r.Kind {
	case KindSweep:
		if r.Workload == "" {
			return fmt.Errorf("service: sweep job needs a workload reference")
		}
		if len(r.Refs) == 0 {
			return fmt.Errorf("service: sweep job needs at least one protocol ref")
		}
		if r.Analysis != "" {
			return fmt.Errorf("service: sweep job cannot carry an analysis reference")
		}
	case KindAnalysis:
		if r.Analysis == "" {
			return fmt.Errorf("service: analysis job needs an analysis reference")
		}
		if r.Workload != "" || len(r.Refs) > 0 {
			return fmt.Errorf("service: analysis job cannot carry workload/refs")
		}
		if r.Offset != 0 || r.Limit != 0 {
			return fmt.Errorf("service: analysis job cannot carry an offset range")
		}
	default:
		return fmt.Errorf("service: unknown job kind %q (want %q | %q)", r.Kind, KindSweep, KindAnalysis)
	}
	if r.Params.TimeoutMS < 0 {
		return fmt.Errorf("service: negative timeoutMs %d", r.Params.TimeoutMS)
	}
	if r.Offset < 0 || r.Limit < 0 {
		return fmt.Errorf("service: negative job range offset=%d limit=%d", r.Offset, r.Limit)
	}
	return nil
}

// JobProgress is the unified progress snapshot streamed over SSE: sweep
// jobs fill Adversaries/Runs (stage "sweep"), analysis jobs fill
// Stage/Done/Total with the pipeline stage snapshots ("compile",
// "width-1", "width-2", "certify").
type JobProgress struct {
	Stage       string `json:"stage"`
	Done        int    `json:"done,omitempty"`
	Total       int    `json:"total,omitempty"`
	Adversaries int    `json:"adversaries,omitempty"`
	Runs        int    `json:"runs,omitempty"`
}

// JobStatus is the wire representation of a job: GET /v1/jobs/{id}
// returns it, SSE terminal events carry it, and the result payload
// (Summary or AnalysisReport) is embedded once the job is done.
type JobStatus struct {
	ID       string       `json:"id"`
	Kind     string       `json:"kind"`
	State    JobState     `json:"state"`
	Request  JobRequest   `json:"request"`
	Created  time.Time    `json:"created"`
	Started  *time.Time   `json:"started,omitempty"`
	Finished *time.Time   `json:"finished,omitempty"`
	Error    string       `json:"error,omitempty"`
	Progress *JobProgress `json:"progress,omitempty"`

	Summary  *setconsensus.Summary        `json:"summary,omitempty"`
	Analysis *setconsensus.AnalysisReport `json:"analysis,omitempty"`
}

// job is the server-side state of one submitted job. The mutex guards
// every mutable field; subscribers receive coalesced progress updates
// and a guaranteed terminal event.
type job struct {
	id  string
	req JobRequest

	cancel context.CancelCauseFunc

	mu       sync.Mutex
	state    JobState
	created  time.Time
	started  time.Time
	finished time.Time
	err      error
	progress *JobProgress
	summary  *setconsensus.Summary
	analysis *setconsensus.AnalysisReport
	subs     map[chan Event]struct{}
}

// Event is one SSE frame: Name is the event field ("state", "progress",
// or a terminal state name), Status the payload snapshot.
type Event struct {
	Name   string
	Status *JobStatus
}

// ErrCancelled is the cancellation cause a DELETE installs; jobs whose
// context dies with it finish in StateCancelled rather than StateFailed.
var ErrCancelled = errors.New("service: job cancelled")

// status snapshots the job under its lock.
func (j *job) status() *JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

func (j *job) statusLocked() *JobStatus {
	s := &JobStatus{
		ID:      j.id,
		Kind:    j.req.Kind,
		State:   j.state,
		Request: j.req,
		Created: j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		s.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		s.Finished = &t
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	if j.progress != nil {
		p := *j.progress
		s.Progress = &p
	}
	s.Summary = j.summary
	s.Analysis = j.analysis
	return s
}

// subscribe registers an SSE consumer. The returned channel immediately
// carries a "state" snapshot (including, for already-terminal jobs, the
// final state, so late subscribers never hang), then coalesced progress
// events, then exactly one terminal event, after which it is closed.
func (j *job) subscribe() chan Event {
	ch := make(chan Event, 8)
	j.mu.Lock()
	defer j.mu.Unlock()
	ch <- Event{Name: "state", Status: j.statusLocked()}
	if j.state.Terminal() {
		ch <- Event{Name: string(j.state), Status: j.statusLocked()}
		close(ch)
		return ch
	}
	if j.subs == nil {
		j.subs = make(map[chan Event]struct{})
	}
	j.subs[ch] = struct{}{}
	return ch
}

// unsubscribe detaches a consumer (client went away mid-stream).
func (j *job) unsubscribe(ch chan Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.subs[ch]; ok {
		delete(j.subs, ch)
		close(ch)
	}
}

// publishLocked fans an event out without blocking the runner: a slow
// subscriber's buffer drops the oldest progress frame first (terminal
// events are delivered after progress frames are drained by the SSE
// writer, and the channel close is the backstop).
func (j *job) publishLocked(ev Event) {
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
			select {
			case <-ch: // drop the oldest frame
			default:
			}
			select {
			case ch <- ev:
			default:
			}
		}
	}
}

// setRunning transitions queued → running.
func (j *job) setRunning() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateRunning
	j.started = time.Now()
	j.publishLocked(Event{Name: "state", Status: j.statusLocked()})
}

// setProgress records and publishes a coalesced progress snapshot.
func (j *job) setProgress(p JobProgress) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.progress = &p
	j.publishLocked(Event{Name: "progress", Status: j.statusLocked()})
}

// finish transitions to a terminal state, publishes the terminal event,
// and closes every subscriber channel.
func (j *job) finish(state JobState, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = state
	j.err = err
	j.finished = time.Now()
	j.publishLocked(Event{Name: string(state), Status: j.statusLocked()})
	for ch := range j.subs {
		close(ch)
	}
	j.subs = nil
}
