package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"setconsensus/internal/chaos"
)

// TestClientDefaultIsNotDefaultClient pins the satellite fix: the
// zero-value client must get the package's transport-configured client,
// never the bare no-timeout http.DefaultClient.
func TestClientDefaultIsNotDefaultClient(t *testing.T) {
	c := &Client{Base: "http://127.0.0.1:0"}
	if c.http() == http.DefaultClient {
		t.Fatal("zero-value client uses http.DefaultClient")
	}
	if c.http() != defaultHTTPClient {
		t.Fatal("zero-value client did not get the shared default")
	}
	tr, ok := defaultHTTPClient.Transport.(*http.Transport)
	if !ok {
		t.Fatal("default client has no configured transport")
	}
	if tr.ResponseHeaderTimeout <= 0 || tr.TLSHandshakeTimeout <= 0 {
		t.Errorf("default transport missing timeouts: %+v", tr)
	}
	own := &http.Client{}
	if (&Client{HTTP: own}).http() != own {
		t.Error("explicit HTTP client not respected")
	}
}

// TestClientPerRequestTimeout: a hung server must not hang a unary
// call — the per-request deadline fires even with a plain background
// ctx.
func TestClientPerRequestTimeout(t *testing.T) {
	block := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	defer ts.Close()
	defer close(block) // unblock the handler before Close waits on it
	c := &Client{Base: ts.URL, HTTP: ts.Client(), Timeout: 30 * time.Millisecond, Retries: -1}
	start := time.Now()
	_, err := c.Get(context.Background(), "x")
	if err == nil {
		t.Fatal("Get against a hung server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Get took %v; per-request timeout did not fire", elapsed)
	}
}

// TestClientCtxDeadlineRespected: a ctx deadline shorter than the
// client timeout wins.
func TestClientCtxDeadlineRespected(t *testing.T) {
	block := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	defer ts.Close()
	defer close(block) // unblock the handler before Close waits on it
	c := &Client{Base: ts.URL, HTTP: ts.Client(), Retries: -1}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := c.Get(ctx, "x"); err == nil {
		t.Fatal("Get outlived its ctx deadline")
	} else if !errors.Is(err, context.DeadlineExceeded) {
		t.Logf("error %v (deadline surfaced through transport)", err)
	}
}

// TestClientRetriesTransientStatus: 503s are retried with backoff until
// the budget runs out; a success mid-budget wins.
func TestClientRetriesTransientStatus(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"draining"}`)
			return
		}
		fmt.Fprint(w, `{"id":"x","kind":"sweep","state":"running","request":{"kind":"sweep","params":{}},"created":"2026-01-01T00:00:00Z"}`)
	}))
	defer ts.Close()
	c := &Client{Base: ts.URL, HTTP: ts.Client(), RetryBase: time.Millisecond, RetryCap: 2 * time.Millisecond}
	st, err := c.Get(context.Background(), "x")
	if err != nil {
		t.Fatalf("Get with transient 503s failed: %v", err)
	}
	if st.ID != "x" {
		t.Errorf("status = %+v", st)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d requests, want 3", got)
	}
	if got := c.Stats().HTTPRetries; got != 2 {
		t.Errorf("HTTPRetries = %d, want 2", got)
	}
}

// TestClientRetryBudgetExhausted: permanent 503 fails after the budget,
// and a non-transient status (404) is never retried.
func TestClientRetryBudgetExhausted(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	c := &Client{Base: ts.URL, HTTP: ts.Client(), Retries: 2, RetryBase: time.Millisecond}
	if _, err := c.Get(context.Background(), "x"); err == nil {
		t.Fatal("Get against permanent 503 succeeded")
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d requests, want 3 (1 + 2 retries)", got)
	}

	calls.Store(0)
	ts2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, `{"error":"no such job"}`)
	}))
	defer ts2.Close()
	c2 := &Client{Base: ts2.URL, HTTP: ts2.Client(), RetryBase: time.Millisecond}
	if _, err := c2.Get(context.Background(), "x"); err == nil {
		t.Fatal("Get for missing job succeeded")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("404 retried: server saw %d requests, want 1", got)
	}
}

// TestClientInjectedHTTPError: the chaos injection point fails the
// request before it reaches the wire, and the retry path absorbs it.
func TestClientInjectedHTTPError(t *testing.T) {
	inj, err := chaos.NewSeeded(chaos.Config{Budget: map[chaos.Point]int{chaos.PointHTTPError: 1}})
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		fmt.Fprint(w, `{"id":"x","kind":"sweep","state":"running","request":{"kind":"sweep","params":{}},"created":"2026-01-01T00:00:00Z"}`)
	}))
	defer ts.Close()
	c := &Client{Base: ts.URL, HTTP: ts.Client(), RetryBase: time.Millisecond, Chaos: inj}
	if _, err := c.Get(context.Background(), "x"); err != nil {
		t.Fatalf("Get with one injected fault failed: %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d requests, want 1 (injection fires before the wire)", got)
	}
	if got := c.Stats().HTTPRetries; got != 1 {
		t.Errorf("HTTPRetries = %d, want 1", got)
	}
}

// TestWaitReconnectsBrokenStream: a stream that dies before the
// terminal event must be reconnected (after a status reconcile), and
// the terminal event of the second stream wins.
func TestWaitReconnectsBrokenStream(t *testing.T) {
	var streams atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/x", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"id":"x","kind":"sweep","state":"running","request":{"kind":"sweep","params":{}},"created":"2026-01-01T00:00:00Z"}`)
	})
	mux.HandleFunc("GET /v1/jobs/x/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		if streams.Add(1) == 1 {
			// First stream: one progress frame, then the connection dies
			// with no terminal event.
			fmt.Fprint(w, "event: progress\ndata: {\"id\":\"x\",\"state\":\"running\",\"kind\":\"sweep\",\"request\":{\"kind\":\"sweep\",\"params\":{}},\"created\":\"2026-01-01T00:00:00Z\",\"progress\":{\"stage\":\"sweep\",\"runs\":7}}\n\n")
			return
		}
		fmt.Fprint(w, "event: done\ndata: {\"id\":\"x\",\"state\":\"done\",\"kind\":\"sweep\",\"request\":{\"kind\":\"sweep\",\"params\":{}},\"created\":\"2026-01-01T00:00:00Z\"}\n\n")
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := &Client{Base: ts.URL, HTTP: ts.Client(), RetryBase: time.Millisecond}
	var sawProgress atomic.Bool
	st, err := c.Wait(context.Background(), "x", func(JobProgress) { sawProgress.Store(true) })
	if err != nil {
		t.Fatalf("Wait across a broken stream failed: %v", err)
	}
	if st.State != StateDone {
		t.Errorf("state = %s, want %s", st.State, StateDone)
	}
	if !sawProgress.Load() {
		t.Error("progress event from the first stream lost")
	}
	if got := streams.Load(); got != 2 {
		t.Errorf("server saw %d streams, want 2", got)
	}
	if got := c.Stats().SSEReconnects; got != 1 {
		t.Errorf("SSEReconnects = %d, want 1", got)
	}
}

// TestWaitReconcilesTerminalDuringGap: if the job finishes while the
// stream is down, the status reconcile returns it without reconnecting.
func TestWaitReconcilesTerminalDuringGap(t *testing.T) {
	var streams atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/x", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"id":"x","kind":"sweep","state":"done","request":{"kind":"sweep","params":{}},"created":"2026-01-01T00:00:00Z"}`)
	})
	mux.HandleFunc("GET /v1/jobs/x/events", func(w http.ResponseWriter, r *http.Request) {
		streams.Add(1)
		w.Header().Set("Content-Type", "text/event-stream")
		// Dies immediately, terminal never delivered over SSE.
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	c := &Client{Base: ts.URL, HTTP: ts.Client(), RetryBase: time.Millisecond}
	st, err := c.Wait(context.Background(), "x", nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Errorf("state = %s, want %s", st.State, StateDone)
	}
	if got := streams.Load(); got != 1 {
		t.Errorf("server saw %d streams, want 1 (terminal found by reconcile)", got)
	}
	if got := c.Stats().SSEReconnects; got != 0 {
		t.Errorf("SSEReconnects = %d, want 0", got)
	}
}

// TestInjectedSSEDisconnectEndToEnd severs every stream of a real job
// service via the chaos point; SubmitAndWait must still return the
// job's terminal state through reconcile/reconnect.
func TestInjectedSSEDisconnectEndToEnd(t *testing.T) {
	srv, err := New(Default())
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	inj, err := chaos.NewSeeded(chaos.Config{Prob: map[chaos.Point]float64{chaos.PointSSEDisconnect: 1}})
	if err != nil {
		t.Fatal(err)
	}
	c := &Client{Base: ts.URL, HTTP: ts.Client(), RetryBase: time.Millisecond, Chaos: inj}
	st, err := c.SubmitAndWait(context.Background(), JobRequest{
		Kind: KindSweep, Refs: []string{"optmin"}, Workload: "space:n=3,t=1,r=2,v=0..1",
	}, nil)
	if err != nil {
		t.Fatalf("SubmitAndWait with severed streams failed: %v", err)
	}
	if st.State != StateDone {
		t.Fatalf("state = %s (%s), want done", st.State, st.Error)
	}
	if st.Summary == nil {
		t.Fatal("no summary")
	}
	if inj.Counts()[chaos.PointSSEDisconnect] == 0 {
		t.Error("sse disconnect never fired")
	}
}

// TestTransientDetection pins the classifier.
func TestTransientDetection(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"injected", errInjectedHTTP, true},
		{"502", &statusError{code: 502, msg: "bad gateway"}, true},
		{"503", &statusError{code: 503, msg: "unavailable"}, true},
		{"504", &statusError{code: 504, msg: "gw timeout"}, true},
		{"404", &statusError{code: 404, msg: "not found"}, false},
		{"400", &statusError{code: 400, msg: "bad request"}, false},
		{"conn refused", errors.New("dial tcp 127.0.0.1:1: connection refused"), true},
		{"plain", errors.New("something else"), false},
	} {
		if got := transient(ctx, tc.err); got != tc.want {
			t.Errorf("transient(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if transient(cctx, errInjectedHTTP) {
		t.Error("cancelled ctx still retried")
	}
	if !strings.Contains((&statusError{code: 503, msg: "service: server 503: x"}).Error(), "503") {
		t.Error("statusError lost its message")
	}
}
