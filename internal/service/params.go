// Package service implements setconsensusd's job layer: a long-running
// HTTP/JSON server that accepts sweep and analysis jobs over the Engine
// facade, runs them on a bounded queue with per-job deadlines and a
// configurable worker pool, streams incremental progress snapshots over
// SSE, and serves finished Summary/AnalysisReport JSON from a bounded
// in-memory result store.
//
// The package follows the repo's configuration idiom end to end: a typed
// Params with Default and Validate enforcing hard budgets (max space
// size per job, queue depth, worker count, per-job deadline, result
// bound), so a misconfigured server refuses to start instead of failing
// under load, and an out-of-budget job is rejected at submission with a
// typed error instead of running away with the machine.
package service

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"setconsensus/internal/chaos"
)

// The typed budget errors. Validate and job admission wrap them with
// detail, so callers branch with errors.Is while logs keep the numbers.
var (
	// ErrNoWorkers rejects a worker pool of zero: a server that can
	// accept jobs but never run them is a misconfiguration, not a mode.
	ErrNoWorkers = errors.New("service: need at least one job worker")
	// ErrNoDeadline rejects an absent per-job deadline. Every job runs
	// under a context deadline — unbounded jobs would pin worker slots
	// forever and starve the queue.
	ErrNoDeadline = errors.New("service: need a positive per-job deadline")
	// ErrQueueDepth rejects a non-positive queue bound.
	ErrQueueDepth = errors.New("service: need a positive queue depth")
	// ErrResultBound rejects a non-positive result-store bound.
	ErrResultBound = errors.New("service: need a positive result-store bound")
	// ErrSpaceBudget rejects (at admission) or aborts (at runtime) a job
	// whose adversary space exceeds MaxSpaceSize.
	ErrSpaceBudget = errors.New("service: adversary space exceeds the per-job budget")
	// ErrMemCeiling rejects an inverted memory-ceiling pair: a soft
	// ceiling above the hard one could reject admissions before ever
	// shedding, which is the degradation order backwards.
	ErrMemCeiling = errors.New("service: soft memory ceiling must not exceed the hard ceiling")
	// ErrShedding rejects a submission while live metered bytes exceed
	// the soft memory ceiling: the server keeps running what it
	// admitted and answers new work with HTTP 429 + Retry-After until
	// the account drains.
	ErrShedding = errors.New("service: shedding load over the soft memory ceiling")
)

// Params is the full configuration of a job server. Construct it with
// Default and override fields; New validates it.
type Params struct {
	// Addr is the listen address of cmd/setconsensusd (the embedded
	// Server itself is transport-agnostic — tests mount Handler on
	// httptest). Empty is valid for embedded use.
	Addr string

	// Workers is the number of jobs run concurrently. Each running job
	// gets its own Engine whose sweep/analysis stages parallelize to
	// EngineParallelism, so total CPU demand is roughly
	// Workers × EngineParallelism.
	Workers int

	// QueueDepth bounds the jobs accepted but not yet running. A full
	// queue rejects submissions with ErrQueueFull (HTTP 503) instead of
	// buffering without bound.
	QueueDepth int

	// MaxSpaceSize is the per-job adversary budget. Jobs whose workload
	// reports a known count, or an enumeration upper bound
	// (CountUpperBound — the pre-deduplication size, so size the budget
	// to the bound, not the canonical count), above this are rejected at
	// submission; sources that cannot be sized up front are cancelled
	// mid-run the moment they exceed it. Both paths surface
	// ErrSpaceBudget.
	MaxSpaceSize int

	// JobDeadline is the hard per-job context deadline. Requests may ask
	// for less via timeoutMs, never more.
	JobDeadline time.Duration

	// ResultBound bounds the finished (done/failed/cancelled) jobs the
	// store retains, FIFO-evicted; queued and running jobs are always
	// retained.
	ResultBound int

	// EngineParallelism is the per-job Engine worker-pool size.
	EngineParallelism int

	// ProgressInterval throttles the progress snapshots a running job
	// publishes to its SSE subscribers.
	ProgressInterval time.Duration

	// SoftMemBytes is the governor's soft memory ceiling: while live
	// metered bytes (builder arenas, run-kit slabs, sweep chunks) exceed
	// it, engines stop recycling pooled buffers and the server sheds new
	// submissions with 429 (+Retry-After) and flips /readyz to 503.
	// Running jobs are never disturbed. 0 disables the ceiling.
	SoftMemBytes int64

	// HardMemBytes is the governor's hard memory ceiling: submissions
	// arriving while live bytes exceed it are rejected with a typed
	// govern.ErrMemoryBudget (HTTP 429). It only gates admission — the
	// enforcement backstop for total process memory is
	// debug.SetMemoryLimit/GOMEMLIMIT, which cmd/setconsensusd wires to
	// the same flag. 0 disables the ceiling.
	HardMemBytes int64

	// ProgressDeadline is the stuck-job watchdog: a running job whose
	// progress feed has not advanced within this duration is cancelled
	// with govern.ErrStalled as the cause and fails typed. 0 disables
	// the watchdog.
	ProgressDeadline time.Duration

	// Chaos optionally injects faults into the job path (the "panic"
	// point fires inside a running job's worker); nil injects nothing.
	// Test and smoke surface only.
	Chaos chaos.Injector
}

// Default returns the documented defaults: 2 concurrent jobs, a queue of
// 64, a 1e7-adversary space budget, a 10-minute deadline, 256 retained
// results, engine parallelism NumCPU, 100ms progress snapshots.
func Default() Params {
	return Params{
		Addr:              ":8372",
		Workers:           2,
		QueueDepth:        64,
		MaxSpaceSize:      10_000_000,
		JobDeadline:       10 * time.Minute,
		ResultBound:       256,
		EngineParallelism: runtime.NumCPU(),
		ProgressInterval:  100 * time.Millisecond,
	}
}

// Validate ensures the parameters fall within operating ranges,
// wrapping the typed budget errors with the offending values.
func (p Params) Validate() error {
	if p.Workers < 1 {
		return fmt.Errorf("%w (got %d)", ErrNoWorkers, p.Workers)
	}
	if p.JobDeadline <= 0 {
		return fmt.Errorf("%w (got %v)", ErrNoDeadline, p.JobDeadline)
	}
	if p.QueueDepth < 1 {
		return fmt.Errorf("%w (got %d)", ErrQueueDepth, p.QueueDepth)
	}
	if p.ResultBound < 1 {
		return fmt.Errorf("%w (got %d)", ErrResultBound, p.ResultBound)
	}
	if p.MaxSpaceSize < 1 {
		return fmt.Errorf("%w: budget must be ≥ 1 (got %d)", ErrSpaceBudget, p.MaxSpaceSize)
	}
	if p.EngineParallelism < 1 {
		return fmt.Errorf("service: need engine parallelism ≥ 1, got %d", p.EngineParallelism)
	}
	if p.ProgressInterval <= 0 {
		return fmt.Errorf("service: need a positive progress interval, got %v", p.ProgressInterval)
	}
	if p.SoftMemBytes < 0 || p.HardMemBytes < 0 {
		return fmt.Errorf("service: memory ceilings must be ≥ 0 (0 = unlimited), got soft %d hard %d",
			p.SoftMemBytes, p.HardMemBytes)
	}
	if p.SoftMemBytes > 0 && p.HardMemBytes > 0 && p.SoftMemBytes > p.HardMemBytes {
		return fmt.Errorf("%w (soft %d > hard %d)", ErrMemCeiling, p.SoftMemBytes, p.HardMemBytes)
	}
	if p.ProgressDeadline < 0 {
		return fmt.Errorf("service: progress deadline must be ≥ 0 (0 = no watchdog), got %v", p.ProgressDeadline)
	}
	return nil
}
