package service

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"setconsensus/internal/govern"
)

// ErrQueueFull rejects a submission when the bounded job queue is at
// QueueDepth; clients see HTTP 429 with Retry-After and retry with
// backoff — the saturation is transient, unlike the terminal 503 of
// ErrClosed.
var ErrQueueFull = errors.New("service: job queue full")

// ErrClosed rejects submissions during and after shutdown.
var ErrClosed = errors.New("service: server shutting down")

// Server is the job service: a bounded queue of sweep/analysis jobs, a
// worker pool executing them on per-job Engines, a bounded result
// store, and the HTTP surface (REST + SSE + expvar/pprof) over all of
// it. Construct with New, mount Handler, call Start, and Shutdown to
// drain.
type Server struct {
	params  Params
	store   *store
	metrics *metrics
	gov     *govern.Governor // always non-nil; zero ceilings = unlimited
	mux     *http.ServeMux

	queue chan *job

	mu      sync.Mutex
	closed  bool
	started bool

	baseCtx    context.Context
	baseCancel context.CancelFunc
	workerWG   sync.WaitGroup // job workers: exit when the queue closes
	samplerWG  sync.WaitGroup // runs/s sampler: exits on baseCancel
}

// New validates p and builds a stopped server; call Start to spin the
// worker pool.
func New(p Params) (*Server, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		params:     p,
		store:      newStore(p.ResultBound),
		metrics:    &metrics{},
		gov:        govern.New(p.SoftMemBytes, p.HardMemBytes),
		queue:      make(chan *job, p.QueueDepth),
		baseCtx:    ctx,
		baseCancel: cancel,
	}
	s.routes()
	publishExpvar(s.metrics, s.gov)
	return s, nil
}

// Governor exposes the server's resource governor, e.g. for tests and
// embedded observers.
func (s *Server) Governor() *govern.Governor { return s.gov }

// snapshot merges the job counters with the governor gauges — the one
// map /v1/stats, expvar, and /metrics all render.
func (s *Server) snapshot() map[string]int64 {
	return mergeSnapshot(s.metrics, s.gov)
}

// Params returns the server's validated configuration.
func (s *Server) Params() Params { return s.params }

// Handler returns the server's HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Start spins the worker pool and the runs/s sampler. Idempotent.
func (s *Server) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started || s.closed {
		return
	}
	s.started = true
	for w := 0; w < s.params.Workers; w++ {
		s.workerWG.Add(1)
		go func() {
			defer s.workerWG.Done()
			for j := range s.queue {
				s.metrics.queueDepth.Add(-1)
				if j.status().State.Terminal() {
					continue // cancelled while queued
				}
				s.run(s.baseCtx, j)
			}
		}()
	}
	s.samplerWG.Add(1)
	go func() {
		defer s.samplerWG.Done()
		t := time.NewTicker(time.Second)
		defer t.Stop()
		prev := s.metrics.runsTotal.Load()
		last := time.Now()
		for {
			select {
			case <-s.baseCtx.Done():
				return
			case now := <-t.C:
				prev = s.metrics.sample(prev, now.Sub(last))
				last = now
			}
		}
	}()
}

// Shutdown drains the server: submissions are rejected immediately,
// queued-but-unclaimed jobs are cancelled, and running jobs get until
// ctx's deadline to finish before their contexts are cancelled. Returns
// nil on a clean drain, ctx.Err() when the grace expired.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	// Cancel everything still waiting in the queue, then close it so
	// workers exit once their current job finishes.
	for {
		select {
		case j := <-s.queue:
			s.metrics.queueDepth.Add(-1)
			s.finishJob(j, StateCancelled, ErrCancelled)
			continue
		default:
		}
		break
	}
	close(s.queue)
	started := s.started
	s.mu.Unlock()

	if !started {
		s.baseCancel()
		return nil
	}
	done := make(chan struct{})
	go func() {
		s.workerWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	// Cancel the sampler — and, when the grace expired, every running
	// job — then wait for the pool to unwind.
	s.baseCancel()
	<-done
	s.samplerWG.Wait()
	return err
}

// routes mounts the HTTP surface: the v1 job API, health, per-server
// stats, and the debug endpoints (expvar, pprof) capacity planning
// reads.
func (s *Server) routes() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleDelete)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	s.mux = mux
}

// Submit admits, stores, and enqueues a job, returning its initial
// status. It is the Go-level submission path behind POST /v1/jobs.
// Memory governance gates admission first: over the hard ceiling the
// typed govern.ErrMemoryBudget rejects, over the soft ceiling
// ErrShedding does — both map to HTTP 429 with Retry-After, since the
// account drains as running jobs finish.
func (s *Server) Submit(req JobRequest) (*JobStatus, error) {
	if err := s.gov.Admit(0); err != nil {
		s.gov.NoteShed()
		return nil, err
	}
	if s.gov.Shedding() {
		s.gov.NoteShed()
		return nil, fmt.Errorf("%w (%d live bytes)", ErrShedding, s.gov.Live())
	}
	if _, err := s.admit(&req); err != nil {
		return nil, err
	}
	j := &job{req: req, state: StateQueued, created: time.Now()}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	s.store.add(j)
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		s.store.remove(j.id)
		return nil, fmt.Errorf("%w (depth %d)", ErrQueueFull, s.params.QueueDepth)
	}
	s.mu.Unlock()
	s.metrics.queued.Add(1)
	s.metrics.queueDepth.Add(1)
	return j.status(), nil
}

// Cancel cancels an active job or removes a terminal one, returning the
// job's status after the action (nil when the id is unknown). The
// Go-level path behind DELETE /v1/jobs/{id}.
func (s *Server) Cancel(id string) *JobStatus {
	j, ok := s.store.get(id)
	if !ok {
		return nil
	}
	j.mu.Lock()
	state := j.state
	cancel := j.cancel
	j.mu.Unlock()
	switch {
	case state == StateQueued:
		// Not yet claimed: finish it here; the claiming worker skips
		// terminal jobs.
		s.finishJob(j, StateCancelled, ErrCancelled)
	case state == StateRunning && cancel != nil:
		cancel(ErrCancelled)
	case state.Terminal():
		s.store.remove(id)
	}
	return j.status()
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		httpError(w, fmt.Errorf("service: bad job payload: %w", err), http.StatusBadRequest)
		return
	}
	st, err := s.Submit(req)
	if err != nil {
		code := submitStatus(err)
		if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
			// Saturation and shedding are transient: tell well-behaved
			// clients when to come back instead of letting them hammer.
			w.Header().Set("Retry-After", "1")
		}
		httpError(w, err, code)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, st)
}

// submitStatus maps a submission error to its HTTP status: overload
// conditions (full queue, shedding, hard memory ceiling) are 429 —
// transient, retry later; only shutdown is 503 — this server is going
// away.
func submitStatus(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrShedding),
		errors.Is(err, govern.ErrMemoryBudget):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrSpaceBudget):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusBadRequest
	}
}

// IsOverload reports whether err is a transient too-busy rejection — a
// full queue, a shedding/over-ceiling server, or their HTTP renderings
// (429, 503) seen through the Client. Coordinators back off and retry
// on these instead of charging the worker's circuit breaker: a governed
// fleet sheds, it does not quarantine healthy-but-busy workers.
func IsOverload(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrQueueFull) || errors.Is(err, ErrShedding) ||
		errors.Is(err, govern.ErrMemoryBudget) {
		return true
	}
	var se *statusError
	if errors.As(err, &se) {
		return se.code == http.StatusTooManyRequests || se.code == http.StatusServiceUnavailable
	}
	return false
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{"jobs": s.store.list()})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.get(r.PathValue("id"))
	if !ok {
		httpError(w, fmt.Errorf("service: no such job %q", r.PathValue("id")), http.StatusNotFound)
		return
	}
	writeJSON(w, j.status())
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	st := s.Cancel(r.PathValue("id"))
	if st == nil {
		httpError(w, fmt.Errorf("service: no such job %q", r.PathValue("id")), http.StatusNotFound)
		return
	}
	writeJSON(w, st)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.get(r.PathValue("id"))
	if !ok {
		httpError(w, fmt.Errorf("service: no such job %q", r.PathValue("id")), http.StatusNotFound)
		return
	}
	ch := j.subscribe()
	s.metrics.sseOpened.Add(1)
	if !serveSSE(w, r, ch) {
		// Client went away (or the write failed) before the terminal
		// event: a broken stream the client is expected to reconnect.
		s.metrics.sseBroken.Add(1)
		j.unsubscribe(ch)
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.snapshot())
}

// handleReady is the load-balancer readiness probe, distinct from the
// liveness /healthz (which stays 200 as long as the process serves):
// 503 while draining or shedding over the soft memory ceiling, 200
// otherwise. Taking a shedding server out of rotation lets its live
// account drain instead of bouncing 429s at clients.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	switch {
	case closed:
		http.Error(w, "draining", http.StatusServiceUnavailable)
	case s.gov.Shedding():
		w.Header().Set("Retry-After", "1")
		http.Error(w, fmt.Sprintf("shedding (%d live bytes over soft ceiling)", s.gov.Live()),
			http.StatusServiceUnavailable)
	default:
		fmt.Fprintln(w, "ready")
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	if w.Header().Get("Content-Type") == "" {
		w.Header().Set("Content-Type", "application/json")
	}
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, err error, code int) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
