package service

import (
	"context"
	"testing"
	"time"
)

// BenchmarkServiceSubmit measures the service overhead per job — admit,
// enqueue, claim, engine construction, run, terminal fan-out — on the
// smallest real sweep (one adversary, one protocol), i.e. the fixed cost
// a job pays on top of its sweep. Gated in CI by benchguard under the
// pr6_post baseline.
func BenchmarkServiceSubmit(b *testing.B) {
	p := Default()
	p.Workers = 2
	p.QueueDepth = 64
	p.JobDeadline = time.Minute
	p.EngineParallelism = 2
	p.ProgressInterval = time.Second
	s, err := New(p)
	if err != nil {
		b.Fatal(err)
	}
	s.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			b.Fatal(err)
		}
	}()

	req := JobRequest{Kind: KindSweep, Refs: []string{"optmin"}, Workload: "collapse:k=1,r=2"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := s.Submit(req)
		if err != nil {
			b.Fatal(err)
		}
		j, ok := s.store.get(st.ID)
		if !ok {
			b.Fatalf("submitted job %s not in store", st.ID)
		}
		for range j.subscribe() {
		}
		if final := j.status(); final.State != StateDone {
			b.Fatalf("job %s finished %s (%s)", st.ID, final.State, final.Error)
		}
	}
}
