package service

import (
	"fmt"
	"sync"
)

// store is the bounded in-memory job index: every job lives here from
// submission until it is deleted or evicted. Queued and running jobs
// are always retained; terminal jobs are bounded FIFO (oldest finished
// evicted first), the service analogue of the engine's insertBounded
// caches.
type store struct {
	mu       sync.Mutex
	bound    int // retained terminal jobs
	jobs     map[string]*job
	order    []string // insertion order, for listings
	finished []string // terminal ids in finish order, for eviction
	nextID   int
}

func newStore(bound int) *store {
	return &store{bound: bound, jobs: make(map[string]*job)}
}

// add registers a new job under a fresh monotone id.
func (s *store) add(j *job) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	j.id = fmt.Sprintf("j-%06d", s.nextID)
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	return j.id
}

// get looks a job up by id.
func (s *store) get(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// remove deletes a job outright (DELETE on a terminal job).
func (s *store) remove(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.jobs[id]; !ok {
		return false
	}
	delete(s.jobs, id)
	s.dropOrderLocked(id)
	return true
}

// markFinished records a terminal transition and evicts the oldest
// finished jobs beyond the bound.
func (s *store) markFinished(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.jobs[id]; !ok {
		return // removed while running
	}
	s.finished = append(s.finished, id)
	for len(s.finished) > s.bound {
		victim := s.finished[0]
		n := copy(s.finished, s.finished[1:])
		s.finished[n] = ""
		s.finished = s.finished[:n]
		delete(s.jobs, victim)
		s.dropOrderLocked(victim)
	}
}

// dropOrderLocked removes id from the listing and finish orders, copying
// down so evicted ids are not pinned by the backing arrays.
func (s *store) dropOrderLocked(id string) {
	for i, v := range s.order {
		if v == id {
			n := copy(s.order[i:], s.order[i+1:]) + i
			s.order[n] = ""
			s.order = s.order[:n]
			break
		}
	}
	for i, v := range s.finished {
		if v == id {
			n := copy(s.finished[i:], s.finished[i+1:]) + i
			s.finished[n] = ""
			s.finished = s.finished[:n]
			break
		}
	}
}

// list snapshots every retained job's status in submission order.
func (s *store) list() []*JobStatus {
	s.mu.Lock()
	ids := make([]string, len(s.order))
	copy(ids, s.order)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		if j, ok := s.jobs[id]; ok {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	out := make([]*JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.status()
	}
	return out
}
