package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	setconsensus "setconsensus"

	"setconsensus/internal/chaos"
	"setconsensus/internal/govern"
)

// runner.go executes one admitted job on the Engine facade: it builds a
// per-job engine from the request's parameters (validated eagerly via
// NewEngine), runs the sweep or analysis under the job's context
// deadline, relays the engine's progress snapshots
// (SweepProgress/AnalysisProgress) into the job's SSE feed, and maps the
// outcome onto the terminal states.

// engineFor builds the per-job engine. Sweep jobs disable the graph
// cache: the aggregating path then recycles builder arenas per worker
// (the revive fast path), which is both the fast configuration for
// exhaustive spaces and the one that feeds the rebuilt/revived counters.
func (s *Server) engineFor(req *JobRequest) (*setconsensus.Engine, error) {
	p := setconsensus.DefaultEngineParams()
	p.Parallelism = s.params.EngineParallelism
	if req.Params.K > 0 {
		p.K = req.Params.K
	}
	if req.Params.Backend != "" {
		b, err := setconsensus.ParseBackend(req.Params.Backend)
		if err != nil {
			return nil, err
		}
		p.Backend = b
	}
	switch {
	case req.Params.T != nil:
		p.T = *req.Params.T
	case req.Kind == KindSweep:
		// The workload-sweep default, as in the CLIs: each adversary's
		// own failure count.
		p.T = setconsensus.PatternCrashBound
	}
	if req.Kind == KindSweep {
		p.GraphCache = 0
	}
	return setconsensus.NewEngine(p, setconsensus.WithGovernor(s.gov))
}

// admit resolves and budget-checks a request before it is queued,
// returning the resolved source for sweep jobs. Unknown references and
// over-budget spaces fail here, synchronously, so a bad submission is a
// 4xx instead of a failed job.
func (s *Server) admit(req *JobRequest) (setconsensus.Source, error) {
	if err := req.validate(); err != nil {
		return nil, err
	}
	if _, err := s.engineFor(req); err != nil {
		return nil, err
	}
	if req.Kind == KindAnalysis {
		if _, err := setconsensus.ParseAnalysis(req.Analysis); err != nil {
			return nil, err
		}
		return nil, nil
	}
	src, err := resolveWorkload(req)
	if err != nil {
		return nil, err
	}
	if n, known := src.Count(); known && n > s.params.MaxSpaceSize {
		return nil, fmt.Errorf("%w: workload %q yields %d adversaries, budget %d",
			ErrSpaceBudget, req.Workload, n, s.params.MaxSpaceSize)
	}
	if b, ok := src.(interface{ CountUpperBound() float64 }); ok {
		if ub := b.CountUpperBound(); ub > float64(s.params.MaxSpaceSize) {
			return nil, fmt.Errorf("%w: workload %q enumerates up to %.0f adversaries, budget %d",
				ErrSpaceBudget, req.Workload, ub, s.params.MaxSpaceSize)
		}
	}
	return src, nil
}

// resolveWorkload parses a sweep job's workload reference and scopes it
// to the request's offset window, when one is set. The window applies
// before budget sizing, so a range-scoped job over an unboundedly large
// space is admitted on its window (RangeSource.CountUpperBound is at
// most the limit) — the admission contract coordinated fleets rely on.
// A zero limit with a nonzero offset means the rest of the stream.
func resolveWorkload(req *JobRequest) (setconsensus.Source, error) {
	src, err := setconsensus.ParseWorkload(req.Workload)
	if err != nil {
		return nil, err
	}
	if req.Offset == 0 && req.Limit == 0 {
		return src, nil
	}
	limit := req.Limit
	if limit == 0 {
		limit = math.MaxInt
	}
	return setconsensus.RangeSource(src, req.Offset, limit), nil
}

// deadlineFor picks the job's context deadline: the server's hard bound,
// tightened by the request's timeoutMs when smaller.
func (s *Server) deadlineFor(req *JobRequest) time.Duration {
	d := s.params.JobDeadline
	if req.Params.TimeoutMS > 0 {
		if r := time.Duration(req.Params.TimeoutMS) * time.Millisecond; r < d {
			d = r
		}
	}
	return d
}

// run executes one claimed job to a terminal state. baseCtx is the
// server's lifetime context: server shutdown after the drain grace
// cancels it, which cancels every running job.
//
// The body is a panic boundary: engines recover their own worker
// panics into typed errors, and anything that still escapes (the job
// switch itself, progress relays, a workload's Count) is converted
// here into a failed job with the stack retained — one bad workload
// must never take the daemon down.
func (s *Server) run(baseCtx context.Context, j *job) {
	j.setRunning()
	s.metrics.running.Add(1)
	defer s.metrics.running.Add(-1)

	jobCtx, cancel := context.WithCancelCause(baseCtx)
	j.mu.Lock()
	j.cancel = cancel
	j.mu.Unlock()
	ctx, cancelTimeout := context.WithTimeout(jobCtx, s.deadlineFor(&j.req))
	defer cancelTimeout()
	defer cancel(nil)

	// The stuck-job watchdog: wd.Touch in the progress relays marks
	// advancement; Watch cancels the job with govern.ErrStalled as the
	// cause when the feed goes quiet past the deadline. cancelTimeout
	// runs before the <-wdDone wait (LIFO defers), so Watch's context is
	// dead by the time we block on its exit — no shutdown deadlock.
	var wd *govern.Watchdog
	if d := s.params.ProgressDeadline; d > 0 {
		wd = govern.NewWatchdog()
		wdDone := make(chan struct{})
		defer func() { cancelTimeout(); <-wdDone }()
		go func() {
			defer close(wdDone)
			wd.Watch(ctx, d, func(idle time.Duration) {
				s.gov.NoteWatchdog()
				cancel(fmt.Errorf("%w: no progress for %v (deadline %v)", govern.ErrStalled, idle.Round(time.Millisecond), d))
			})
		}()
	}

	eng, err := s.engineFor(&j.req)
	if err != nil {
		s.finishJob(j, StateFailed, err)
		return
	}
	// Return the engine's pooled bytes to the governor whatever path the
	// job leaves by — a panicking job must not strand its account.
	defer eng.Close()

	err = func() (err error) {
		defer govern.Capture("service: job "+j.id, &err)
		if fire, _ := chaos.Fire(s.params.Chaos, chaos.PointPanic); fire {
			panic("chaos: injected job panic")
		}
		switch j.req.Kind {
		case KindSweep:
			return s.runSweep(ctx, cancel, eng, wd, j)
		case KindAnalysis:
			return s.runAnalysis(ctx, eng, wd, j)
		default:
			return fmt.Errorf("service: unknown job kind %q", j.req.Kind)
		}
	}()

	st := eng.Stats()
	s.metrics.graphsRebuilt.Add(st.GraphsRebuilt)
	s.metrics.graphsRevived.Add(st.GraphsRevived)
	s.metrics.graphsPatched.Add(st.GraphsPatched)
	s.metrics.runKitHits.Add(st.RunKitHits)
	s.metrics.runKitMisses.Add(st.RunKitMisses)
	s.metrics.chunkHits.Add(st.ChunkHits)
	s.metrics.chunkMisses.Add(st.ChunkMisses)

	switch {
	case err == nil:
		s.finishJob(j, StateDone, nil)
	case errors.Is(context.Cause(ctx), ErrCancelled):
		s.finishJob(j, StateCancelled, ErrCancelled)
	case errors.Is(err, context.DeadlineExceeded):
		s.finishJob(j, StateFailed, fmt.Errorf("service: job deadline exceeded: %w", err))
	default:
		if _, ok := govern.AsPanic(err); ok {
			s.gov.NotePanic()
		}
		if cause := context.Cause(ctx); cause != nil && !errors.Is(cause, err) && !errors.Is(cause, context.Canceled) {
			err = fmt.Errorf("%w (%v)", cause, err)
		}
		s.finishJob(j, StateFailed, err)
	}
}

// finishJob applies the terminal transition, updates the store and
// counters, and lets the metrics loop observe the final run totals.
func (s *Server) finishJob(j *job, state JobState, err error) {
	j.finish(state, err)
	s.store.markFinished(j.id)
	switch state {
	case StateDone:
		s.metrics.done.Add(1)
	case StateCancelled:
		s.metrics.cancelled.Add(1)
	default:
		s.metrics.failed.Add(1)
	}
}

// runSweep streams the workload through the engine's aggregating sweep,
// relaying SweepProgress snapshots and enforcing the space budget at
// runtime for sources that could not be sized at admission: the moment
// the fold passes MaxSpaceSize adversaries, the job's context is
// cancelled with ErrSpaceBudget.
func (s *Server) runSweep(ctx context.Context, cancel context.CancelCauseFunc, eng *setconsensus.Engine, wd *govern.Watchdog, j *job) error {
	src, err := resolveWorkload(&j.req)
	if err != nil {
		return err
	}
	budget := s.params.MaxSpaceSize
	var lastRuns int64
	sum, err := eng.SweepSourceProgress(ctx, j.req.Refs, src, s.params.ProgressInterval,
		func(p setconsensus.SweepProgress) {
			wd.Touch()
			if p.Adversaries > budget {
				cancel(fmt.Errorf("%w: workload %q passed %d adversaries, budget %d",
					ErrSpaceBudget, j.req.Workload, p.Adversaries, budget))
			}
			s.metrics.runsTotal.Add(int64(p.Runs) - lastRuns)
			lastRuns = int64(p.Runs)
			j.setProgress(JobProgress{Stage: "sweep", Adversaries: p.Adversaries, Runs: p.Runs, Total: p.Total})
		})
	if err != nil {
		if cause := context.Cause(ctx); cause != nil && errors.Is(cause, ErrSpaceBudget) {
			return cause
		}
		return err
	}
	j.mu.Lock()
	j.summary = sum
	j.mu.Unlock()
	return nil
}

// runAnalysis executes a named analysis, relaying the pipeline's stage
// snapshots.
func (s *Server) runAnalysis(ctx context.Context, eng *setconsensus.Engine, wd *govern.Watchdog, j *job) error {
	var lastDone int
	var lastStage string
	rep, err := eng.AnalyzeStream(ctx, j.req.Analysis, func(p setconsensus.AnalysisProgress) {
		wd.Touch()
		if p.Stage != lastStage {
			lastStage, lastDone = p.Stage, 0
		}
		s.metrics.runsTotal.Add(int64(p.Done - lastDone))
		lastDone = p.Done
		j.setProgress(JobProgress{Stage: p.Stage, Done: p.Done, Total: p.Total})
	})
	if err != nil {
		return err
	}
	j.mu.Lock()
	j.analysis = rep
	j.mu.Unlock()
	return nil
}
