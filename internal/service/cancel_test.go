package service

import (
	"context"
	"fmt"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCancelMidSSE pins the cancellation path end to end: a DELETE
// against a running job whose SSE stream is being consumed yields a
// final "cancelled" event that closes the stream, the job lands in
// StateCancelled, and the worker slot is released (the next job runs;
// the helper's clean-drain teardown backs it up).
func TestCancelMidSSE(t *testing.T) {
	registerSlowWorkload(t)
	_, c := newTestServer(t, nil)
	ctx := context.Background()

	st, err := c.Submit(ctx, JobRequest{
		Kind: KindSweep, Refs: []string{"optmin"},
		Workload: slowWorkload + ":steps=100000,delayus=500",
	})
	if err != nil {
		t.Fatal(err)
	}

	progressed := make(chan struct{})
	var once sync.Once
	var events []string
	done := make(chan struct{})
	var final *JobStatus
	var evErr error
	go func() {
		defer close(done)
		final, evErr = c.Events(ctx, st.ID, func(ev Event) {
			events = append(events, ev.Name)
			if ev.Name == "progress" {
				once.Do(func() { close(progressed) })
			}
		})
	}()

	select {
	case <-progressed:
	case <-time.After(10 * time.Second):
		t.Fatal("no progress event within 10s")
	}
	if _, err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}

	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("SSE stream did not terminate after cancel")
	}
	if evErr != nil {
		t.Fatalf("Events: %v", evErr)
	}
	if final.State != StateCancelled {
		t.Fatalf("final state = %s (%s), want cancelled", final.State, final.Error)
	}
	if final.Finished == nil {
		t.Error("cancelled job has no finished timestamp")
	}
	if last := events[len(events)-1]; last != "cancelled" {
		t.Fatalf("last SSE event = %q, want cancelled (saw %v)", last, events)
	}

	// The slot is free again: a quick job completes promptly.
	quick, err := c.SubmitAndWait(ctx, JobRequest{
		Kind: KindSweep, Refs: []string{"optmin"}, Workload: "collapse:k=1,r=2",
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if quick.State != StateDone {
		t.Fatalf("post-cancel job finished %s (%s)", quick.State, quick.Error)
	}
}

// TestRuntimeSpaceBudget pins the mid-run budget: an unknown-count
// source sails through admission but is cut down with ErrSpaceBudget the
// moment the fold passes MaxSpaceSize adversaries — a failed job with
// the budget in its error, not a cancelled one.
func TestRuntimeSpaceBudget(t *testing.T) {
	registerSlowWorkload(t)
	_, c := newTestServer(t, func(p *Params) { p.MaxSpaceSize = 20 })
	st, err := c.SubmitAndWait(context.Background(), JobRequest{
		Kind: KindSweep, Refs: []string{"optmin"},
		Workload: slowWorkload + ":steps=100000,delayus=100",
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed {
		t.Fatalf("over-budget job finished %s, want failed", st.State)
	}
	if !strings.Contains(st.Error, "budget") {
		t.Fatalf("error %q does not carry the budget cause", st.Error)
	}
}

// TestRequestTimeout pins the per-job deadline tightening: a request's
// timeoutMs below the server's hard deadline expires the job into
// StateFailed with the deadline in its error.
func TestRequestTimeout(t *testing.T) {
	registerSlowWorkload(t)
	_, c := newTestServer(t, nil)
	st, err := c.SubmitAndWait(context.Background(), JobRequest{
		Kind: KindSweep, Refs: []string{"optmin"},
		Workload: slowWorkload + ":steps=100000,delayus=500",
		Params:   JobParams{TimeoutMS: 100},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed || !strings.Contains(st.Error, "deadline") {
		t.Fatalf("timed-out job finished %s (%q), want failed with deadline", st.State, st.Error)
	}
}

// TestNoGoroutineLeaks runs a full lifecycle — quick job, cancelled slow
// job with an SSE consumer, drain — and checks the goroutine count
// returns to its baseline, so neither workers, SSE writers, progress
// tickers, nor the sampler outlive the server.
func TestNoGoroutineLeaks(t *testing.T) {
	registerSlowWorkload(t)
	before := runtime.NumGoroutine()

	p := Default()
	p.Workers = 2
	p.QueueDepth = 8
	p.JobDeadline = 30 * time.Second
	p.EngineParallelism = 2
	p.ProgressInterval = 2 * time.Millisecond
	s, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	c := &Client{Base: ts.URL, HTTP: ts.Client()}
	ctx := context.Background()

	if st, err := c.SubmitAndWait(ctx, JobRequest{
		Kind: KindSweep, Refs: []string{"optmin"}, Workload: "collapse:k=1,r=2",
	}, nil); err != nil || st.State != StateDone {
		t.Fatalf("quick job: %v / %+v", err, st)
	}
	slow, err := c.Submit(ctx, JobRequest{
		Kind: KindSweep, Refs: []string{"optmin"},
		Workload: slowWorkload + ":steps=100000,delayus=500",
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, slow.ID, StateRunning)
	if _, err := c.Cancel(ctx, slow.ID); err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, c, slow.ID); st.State != StateCancelled {
		t.Fatalf("slow job finished %s", st.State)
	}

	sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Fatalf("drain not clean: %v", err)
	}
	ts.Close()
	c.http().CloseIdleConnections()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines: %d before, %d after shutdown\n%s",
				before, runtime.NumGoroutine(), dumpForeign(string(buf)))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// dumpForeign trims a full stack dump to the non-testing goroutines, so
// a leak failure names the culprit instead of drowning it.
func dumpForeign(dump string) string {
	var keep []string
	for _, g := range strings.Split(dump, "\n\n") {
		if strings.Contains(g, "testing.") || strings.Contains(g, "runtime.Stack") {
			continue
		}
		keep = append(keep, g)
	}
	return fmt.Sprintf("%d foreign goroutines:\n%s", len(keep), strings.Join(keep, "\n\n"))
}
