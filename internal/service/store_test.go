package service

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestStoreFIFOEviction pins the terminal-job bound: finished jobs
// beyond the bound are evicted oldest-first, while unfinished jobs are
// always retained regardless of how many terminals pass through.
func TestStoreFIFOEviction(t *testing.T) {
	s := newStore(2)
	running := &job{state: StateRunning, created: time.Now()}
	s.add(running)

	var finished []string
	for i := 0; i < 5; i++ {
		j := &job{state: StateQueued, created: time.Now()}
		id := s.add(j)
		j.finish(StateDone, nil)
		s.markFinished(id)
		finished = append(finished, id)
	}

	// Oldest three of the five evicted, newest two retained.
	for _, id := range finished[:3] {
		if _, ok := s.get(id); ok {
			t.Errorf("job %s retained beyond the bound", id)
		}
	}
	for _, id := range finished[3:] {
		if _, ok := s.get(id); !ok {
			t.Errorf("job %s evicted within the bound", id)
		}
	}
	if _, ok := s.get(running.id); !ok {
		t.Error("running job evicted by terminal churn")
	}
	if got := len(s.list()); got != 3 {
		t.Errorf("list reports %d jobs, want 3", got)
	}
}

// TestStoreEvictionUnpinsBackingArrays pins dropOrderLocked's contract:
// removed and evicted ids are copied down and the vacated tail slots
// zeroed, so the backing arrays of order/finished do not pin evicted
// strings (or grow a ghost tail of live references).
func TestStoreEvictionUnpinsBackingArrays(t *testing.T) {
	s := newStore(1)
	var ids []string
	for i := 0; i < 4; i++ {
		j := &job{state: StateQueued, created: time.Now()}
		id := s.add(j)
		j.finish(StateDone, nil)
		s.markFinished(id)
		ids = append(ids, id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.finished) != 1 || s.finished[0] != ids[3] {
		t.Fatalf("finished = %v, want [%s]", s.finished, ids[3])
	}
	for _, sl := range [][]string{s.order, s.finished} {
		tail := sl[len(sl):cap(sl)]
		for i, v := range tail {
			if v != "" {
				t.Errorf("backing array slot %d past len still pins %q", i, v)
			}
		}
	}
}

// TestStoreConcurrentAccess hammers add/get/remove/markFinished/list
// from many goroutines; run under -race it pins the store's locking
// discipline, and afterwards the retained terminal count must respect
// the bound.
func TestStoreConcurrentAccess(t *testing.T) {
	const (
		workers = 8
		perW    = 50
		bound   = 10
	)
	s := newStore(bound)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				j := &job{state: StateQueued, created: time.Now()}
				id := s.add(j)
				if _, ok := s.get(id); !ok {
					t.Errorf("job %s vanished before finishing", id)
					return
				}
				j.finish(StateDone, nil)
				s.markFinished(id)
				switch i % 3 {
				case 0:
					s.remove(id) // may already be evicted: both fine
				case 1:
					s.list()
				default:
					s.get(fmt.Sprintf("j-%06d", i+1))
				}
			}
		}(w)
	}
	wg.Wait()

	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.finished) > bound {
		t.Errorf("retained %d terminal jobs, bound %d", len(s.finished), bound)
	}
	if len(s.jobs) != len(s.order) {
		t.Errorf("jobs map (%d) and order (%d) disagree", len(s.jobs), len(s.order))
	}
	for _, id := range s.order {
		if _, ok := s.jobs[id]; !ok {
			t.Errorf("order lists %s but the map lost it", id)
		}
	}
}
