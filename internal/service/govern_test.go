package service

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	setconsensus "setconsensus"

	"setconsensus/internal/chaos"
	"setconsensus/internal/govern"
	"setconsensus/internal/knowledge"
	"setconsensus/internal/model"
)

// The panicking test protocol: Decide panics on its first consultation,
// so the panic originates inside an engine sweep worker — the deepest
// layer the daemon's isolation must survive.
const panicProto = "svc-test-panic"

type panicProtocol struct{}

func (panicProtocol) Name() string { return panicProto }
func (panicProtocol) Decide(*knowledge.Graph, model.Proc, int) (model.Value, bool) {
	panic("test: injected protocol panic")
}
func (panicProtocol) WorstCaseDecisionTime() int { return 1 }

var registerPanicOnce sync.Once

func registerPanicProtocol(t *testing.T) {
	t.Helper()
	registerPanicOnce.Do(func() {
		setconsensus.DefaultRegistry().MustRegister(setconsensus.ProtocolSpec{
			Name:          panicProto,
			Summary:       "test-only protocol that panics in Decide",
			WorstCaseTime: func(setconsensus.Params) int { return 1 },
			New: func(setconsensus.Params) (setconsensus.Protocol, error) {
				return panicProtocol{}, nil
			},
		})
	})
}

// TestPanicIsolationProtocol pins the tentpole's isolation contract: a
// protocol panicking inside a sweep worker becomes a typed failed job
// with the panic site's stack retained, the recovery is counted, and
// the daemon keeps serving — the next job on the same server finishes.
func TestPanicIsolationProtocol(t *testing.T) {
	registerPanicProtocol(t)
	s, c := newTestServer(t, nil)
	ctx := context.Background()

	st, err := c.SubmitAndWait(ctx, JobRequest{
		Kind: KindSweep, Refs: []string{panicProto}, Workload: "collapse:k=1,r=2",
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed {
		t.Fatalf("panicking job finished %s, want failed", st.State)
	}
	if !strings.Contains(st.Error, "panic") || !strings.Contains(st.Error, "injected protocol panic") {
		t.Fatalf("panicking job error lost the panic value: %q", st.Error)
	}
	// The stack must retain the panic origin, not the recovery site.
	if !strings.Contains(st.Error, "Decide") {
		t.Fatalf("panicking job error lost the panic-origin stack frame:\n%s", st.Error)
	}
	if got := s.snapshot()["panics_recovered"]; got < 1 {
		t.Fatalf("panics_recovered = %d after a recovered panic, want ≥ 1", got)
	}

	// The daemon survived: a healthy job on the same server completes.
	st2, err := c.SubmitAndWait(ctx, JobRequest{
		Kind: KindSweep, Refs: []string{"optmin"}, Workload: "collapse:k=1,r=2",
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != StateDone {
		t.Fatalf("follow-up job finished %s (%s), want done", st2.State, st2.Error)
	}
}

// TestChaosPanicPoint drives the same isolation through the chaos
// injector's "panic" point — the smoke test's mechanism — with a budget
// of one, so the first job fails typed and the second runs clean.
func TestChaosPanicPoint(t *testing.T) {
	inj, err := chaos.NewSeeded(chaos.Config{Budget: map[chaos.Point]int{chaos.PointPanic: 1}})
	if err != nil {
		t.Fatal(err)
	}
	_, c := newTestServer(t, func(p *Params) { p.Chaos = inj })
	ctx := context.Background()
	quick := JobRequest{Kind: KindSweep, Refs: []string{"optmin"}, Workload: "collapse:k=1,r=2"}

	st, err := c.SubmitAndWait(ctx, quick, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed || !strings.Contains(st.Error, "panic") {
		t.Fatalf("chaos-panicked job finished %s (%q), want failed with panic", st.State, st.Error)
	}
	st2, err := c.SubmitAndWait(ctx, quick, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != StateDone {
		t.Fatalf("post-chaos job finished %s (%s), want done", st2.State, st2.Error)
	}
	if got := inj.Counts()[chaos.PointPanic]; got != 1 {
		t.Fatalf("chaos panic point fired %d times, want exactly 1", got)
	}
}

// TestWatchdogCancelsStalledJob pins the stuck-job watchdog: a sweep
// whose progress feed goes quiet past ProgressDeadline is cancelled with
// govern.ErrStalled as the cause and fails typed, and the cancellation
// is counted.
func TestWatchdogCancelsStalledJob(t *testing.T) {
	registerSlowWorkload(t)
	s, c := newTestServer(t, func(p *Params) {
		p.ProgressDeadline = 150 * time.Millisecond
	})
	ctx := context.Background()

	// One-second steps stall the progress feed far past the deadline.
	st, err := c.SubmitAndWait(ctx, JobRequest{
		Kind: KindSweep, Refs: []string{"optmin"},
		Workload: slowWorkload + ":steps=2,delayus=1000000",
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed || !strings.Contains(st.Error, "no progress") {
		t.Fatalf("stalled job finished %s (%q), want failed with stall cause", st.State, st.Error)
	}
	if got := s.snapshot()["watchdog_cancels"]; got < 1 {
		t.Fatalf("watchdog_cancels = %d after a stall cancel, want ≥ 1", got)
	}
}

// TestWatchdogLeavesLiveJobsAlone: a job that keeps reporting progress
// within the deadline runs to completion under a tight watchdog.
func TestWatchdogLeavesLiveJobsAlone(t *testing.T) {
	registerSlowWorkload(t)
	_, c := newTestServer(t, func(p *Params) {
		p.ProgressDeadline = 500 * time.Millisecond
	})
	st, err := c.SubmitAndWait(context.Background(), JobRequest{
		Kind: KindSweep, Refs: []string{"optmin"},
		Workload: slowWorkload + ":steps=20,delayus=10000",
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("live job finished %s (%s), want done", st.State, st.Error)
	}
}

// TestMemoryCeilingRejectsSubmissions pins the admission ceilings from
// the governor side: live bytes over the hard ceiling reject with the
// typed govern.ErrMemoryBudget (429 over HTTP with Retry-After), live
// bytes over only the soft ceiling shed with ErrShedding, /readyz flips
// to 503 while shedding, and draining the account restores service.
func TestMemoryCeilingRejectsSubmissions(t *testing.T) {
	s, c := newTestServer(t, func(p *Params) {
		p.SoftMemBytes = 1 << 20
		p.HardMemBytes = 2 << 20
	})
	ctx := context.Background()
	quick := JobRequest{Kind: KindSweep, Refs: []string{"optmin"}, Workload: "collapse:k=1,r=2"}
	direct := &Client{Base: c.Base, HTTP: c.HTTP, Retries: -1}

	// Over the hard ceiling: typed rejection, 429 over HTTP.
	s.Governor().Grow(3 << 20)
	if _, err := s.Submit(quick); !errors.Is(err, govern.ErrMemoryBudget) {
		t.Fatalf("submit over hard ceiling = %v, want govern.ErrMemoryBudget", err)
	}
	if _, err := direct.Submit(ctx, quick); err == nil || !strings.Contains(err.Error(), "429") {
		t.Fatalf("HTTP submit over hard ceiling = %v, want 429", err)
	} else if !IsOverload(err) {
		t.Fatalf("hard-ceiling rejection %v not classified as overload", err)
	}

	// Between soft and hard: shedding, and /readyz is 503.
	s.Governor().Shrink(3 << 20)
	s.Governor().Grow(3 << 19) // 1.5 MiB
	if _, err := s.Submit(quick); err == nil || !strings.Contains(err.Error(), "shedding") {
		t.Fatalf("submit while shedding = %v, want ErrShedding", err)
	}
	if code := readyCode(t, c); code != 503 {
		t.Fatalf("/readyz while shedding = %d, want 503", code)
	}
	if got := s.snapshot()["mem_sheds"]; got < 2 {
		t.Fatalf("mem_sheds = %d after two shed submissions, want ≥ 2", got)
	}

	// Drained: the shed latch holds for govern.ShedHoldoff past the
	// last over-ceiling observation, then admission and readiness
	// recover on their own.
	s.Governor().Shrink(3 << 19)
	if code := readyCode(t, c); code != 503 {
		t.Fatalf("/readyz inside the shed holdoff = %d, want 503", code)
	}
	deadline := time.Now().Add(8 * govern.ShedHoldoff)
	for readyCode(t, c) != 200 {
		if time.Now().After(deadline) {
			t.Fatal("/readyz never recovered after the account drained")
		}
		time.Sleep(10 * time.Millisecond)
	}
	st, err := c.SubmitAndWait(ctx, quick, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("post-drain job finished %s (%s), want done", st.State, st.Error)
	}
}

func readyCode(t *testing.T, c *Client) int {
	t.Helper()
	resp, err := c.http().Get(c.url("/readyz"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}
