package service

import (
	"errors"
	"testing"
	"time"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default().Validate() = %v", err)
	}
}

// TestValidateTypedErrors pins the budget contract: every out-of-range
// parameter is rejected with its typed error, matchable with errors.Is
// through the detail wrapping.
func TestValidateTypedErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Params)
		want   error
	}{
		{"zero workers", func(p *Params) { p.Workers = 0 }, ErrNoWorkers},
		{"negative workers", func(p *Params) { p.Workers = -4 }, ErrNoWorkers},
		{"absent deadline", func(p *Params) { p.JobDeadline = 0 }, ErrNoDeadline},
		{"negative deadline", func(p *Params) { p.JobDeadline = -time.Second }, ErrNoDeadline},
		{"zero queue", func(p *Params) { p.QueueDepth = 0 }, ErrQueueDepth},
		{"zero results", func(p *Params) { p.ResultBound = 0 }, ErrResultBound},
		{"zero space budget", func(p *Params) { p.MaxSpaceSize = 0 }, ErrSpaceBudget},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := Default()
			c.mutate(&p)
			err := p.Validate()
			if !errors.Is(err, c.want) {
				t.Fatalf("Validate() = %v, want errors.Is(%v)", err, c.want)
			}
		})
	}
	t.Run("zero parallelism", func(t *testing.T) {
		p := Default()
		p.EngineParallelism = 0
		if p.Validate() == nil {
			t.Fatal("zero engine parallelism must be rejected")
		}
	})
	t.Run("zero progress interval", func(t *testing.T) {
		p := Default()
		p.ProgressInterval = 0
		if p.Validate() == nil {
			t.Fatal("zero progress interval must be rejected")
		}
	})
}

// TestNewRejectsInvalid pins that a misconfigured server refuses to
// construct — the error-from-New half of the contract.
func TestNewRejectsInvalid(t *testing.T) {
	p := Default()
	p.Workers = 0
	if _, err := New(p); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("New with zero workers = %v, want ErrNoWorkers", err)
	}
	p = Default()
	p.JobDeadline = 0
	if _, err := New(p); !errors.Is(err, ErrNoDeadline) {
		t.Fatalf("New without a deadline = %v, want ErrNoDeadline", err)
	}
}
