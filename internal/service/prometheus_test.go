package service

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestPrometheusExposition pins the exact text shape of GET /metrics on
// a fresh server: every snapshot key present, sorted, each as a
// HELP/TYPE/value triplet with the setconsensusd_ prefix, gauges and
// counters classified, and the exposition content type negotiated.
func TestPrometheusExposition(t *testing.T) {
	srv, err := New(Default())
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))

	if got := rec.Header().Get("Content-Type"); got != promContentType {
		t.Fatalf("Content-Type = %q, want %q", got, promContentType)
	}
	want := `# HELP setconsensusd_graphs_patched Knowledge graphs delta-patched from the previous input assignment, cumulative.
# TYPE setconsensusd_graphs_patched counter
setconsensusd_graphs_patched 0
# HELP setconsensusd_graphs_rebuilt Knowledge graphs built from scratch on the arena-recycling path, cumulative.
# TYPE setconsensusd_graphs_rebuilt counter
setconsensusd_graphs_rebuilt 0
# HELP setconsensusd_graphs_revived Knowledge graphs revived from a same-pattern arena, cumulative.
# TYPE setconsensusd_graphs_revived counter
setconsensusd_graphs_revived 0
# HELP setconsensusd_jobs_cancelled Jobs cancelled before completion, cumulative.
# TYPE setconsensusd_jobs_cancelled counter
setconsensusd_jobs_cancelled 0
# HELP setconsensusd_jobs_done Jobs finished successfully, cumulative.
# TYPE setconsensusd_jobs_done counter
setconsensusd_jobs_done 0
# HELP setconsensusd_jobs_failed Jobs finished in failure, cumulative.
# TYPE setconsensusd_jobs_failed counter
setconsensusd_jobs_failed 0
# HELP setconsensusd_jobs_queued Jobs accepted for execution, cumulative.
# TYPE setconsensusd_jobs_queued counter
setconsensusd_jobs_queued 0
# HELP setconsensusd_jobs_running Jobs executing right now.
# TYPE setconsensusd_jobs_running gauge
setconsensusd_jobs_running 0
# HELP setconsensusd_mem_hard_limit_bytes Hard memory ceiling gating admission; 0 means unlimited.
# TYPE setconsensusd_mem_hard_limit_bytes gauge
setconsensusd_mem_hard_limit_bytes 0
# HELP setconsensusd_mem_live_bytes Metered arena/pool bytes live across the server's engines.
# TYPE setconsensusd_mem_live_bytes gauge
setconsensusd_mem_live_bytes 0
# HELP setconsensusd_mem_sheds Submissions shed over a memory ceiling, cumulative.
# TYPE setconsensusd_mem_sheds counter
setconsensusd_mem_sheds 0
# HELP setconsensusd_mem_soft_limit_bytes Soft memory ceiling; 0 means unlimited.
# TYPE setconsensusd_mem_soft_limit_bytes gauge
setconsensusd_mem_soft_limit_bytes 0
# HELP setconsensusd_panics_recovered Worker panics recovered into typed job failures, cumulative.
# TYPE setconsensusd_panics_recovered counter
setconsensusd_panics_recovered 0
# HELP setconsensusd_pool_chunk_hits Sweep feeder chunk pool checkouts served warm, cumulative.
# TYPE setconsensusd_pool_chunk_hits counter
setconsensusd_pool_chunk_hits 0
# HELP setconsensusd_pool_chunk_miss Sweep feeder chunk pool checkouts that allocated fresh, cumulative.
# TYPE setconsensusd_pool_chunk_miss counter
setconsensusd_pool_chunk_miss 0
# HELP setconsensusd_pool_runkit_hits Per-worker run-kit (RunBuffer + builder arena) pool checkouts served warm, cumulative.
# TYPE setconsensusd_pool_runkit_hits counter
setconsensusd_pool_runkit_hits 0
# HELP setconsensusd_pool_runkit_miss Per-worker run-kit pool checkouts that allocated fresh, cumulative.
# TYPE setconsensusd_pool_runkit_miss counter
setconsensusd_pool_runkit_miss 0
# HELP setconsensusd_queue_depth Jobs accepted but not yet claimed by a worker.
# TYPE setconsensusd_queue_depth gauge
setconsensusd_queue_depth 0
# HELP setconsensusd_runs_per_sec Protocol runs folded per second, sampled every second.
# TYPE setconsensusd_runs_per_sec gauge
setconsensusd_runs_per_sec 0
# HELP setconsensusd_runs_total Protocol runs folded across all jobs, cumulative.
# TYPE setconsensusd_runs_total counter
setconsensusd_runs_total 0
# HELP setconsensusd_sse_broken Job event streams that ended before delivering the terminal event, cumulative.
# TYPE setconsensusd_sse_broken counter
setconsensusd_sse_broken 0
# HELP setconsensusd_sse_opened Job event streams opened, cumulative.
# TYPE setconsensusd_sse_opened counter
setconsensusd_sse_opened 0
# HELP setconsensusd_watchdog_cancels Stuck jobs cancelled by the progress watchdog, cumulative.
# TYPE setconsensusd_watchdog_cancels counter
setconsensusd_watchdog_cancels 0
`
	if got := rec.Body.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestPrometheusReflectsCounters checks that mutated counters show up
// in the rendered values — the exposition reads the live snapshot, not
// a copy at mount time.
func TestPrometheusReflectsCounters(t *testing.T) {
	srv, err := New(Default())
	if err != nil {
		t.Fatal(err)
	}
	srv.metrics.queued.Add(3)
	srv.metrics.runsTotal.Add(12345)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, line := range []string{
		"setconsensusd_jobs_queued 3\n",
		"setconsensusd_runs_total 12345\n",
	} {
		if !strings.Contains(body, line) {
			t.Errorf("exposition missing %q:\n%s", line, body)
		}
	}
}
