package service

import (
	"expvar"
	"sync"
	"sync/atomic"
	"time"

	"setconsensus/internal/govern"
)

// metrics is the server's observability surface: plain atomics sampled
// by /v1/stats (per server) and expvar (process-global), so capacity
// planning is measurement. runsPerSec is maintained by a 1s sampler
// over runsTotal while the server is started.
type metrics struct {
	queued     atomic.Int64 // jobs accepted, cumulative
	running    atomic.Int64 // jobs running now (gauge)
	done       atomic.Int64
	failed     atomic.Int64
	cancelled  atomic.Int64
	queueDepth atomic.Int64 // jobs queued but not yet claimed (gauge)

	runsTotal     atomic.Int64 // protocol runs folded across all jobs
	runsPerSec    atomic.Int64 // sampled once per second
	graphsRebuilt atomic.Int64 // harvested per finished job from EngineStats
	graphsRevived atomic.Int64
	graphsPatched atomic.Int64
	runKitHits    atomic.Int64 // run-buffer kit pool hits/misses, per EngineStats
	runKitMisses  atomic.Int64
	chunkHits     atomic.Int64 // feeder chunk pool hits/misses, per EngineStats
	chunkMisses   atomic.Int64

	sseOpened atomic.Int64 // event streams opened, cumulative
	sseBroken atomic.Int64 // event streams that ended before the terminal event
}

// snapshot renders every counter for JSON and expvar consumers.
func (m *metrics) snapshot() map[string]int64 {
	return map[string]int64{
		"jobs_queued":      m.queued.Load(),
		"jobs_running":     m.running.Load(),
		"jobs_done":        m.done.Load(),
		"jobs_failed":      m.failed.Load(),
		"jobs_cancelled":   m.cancelled.Load(),
		"queue_depth":      m.queueDepth.Load(),
		"runs_total":       m.runsTotal.Load(),
		"runs_per_sec":     m.runsPerSec.Load(),
		"graphs_rebuilt":   m.graphsRebuilt.Load(),
		"graphs_revived":   m.graphsRevived.Load(),
		"graphs_patched":   m.graphsPatched.Load(),
		"pool_runkit_hits": m.runKitHits.Load(),
		"pool_runkit_miss": m.runKitMisses.Load(),
		"pool_chunk_hits":  m.chunkHits.Load(),
		"pool_chunk_miss":  m.chunkMisses.Load(),
		"sse_opened":       m.sseOpened.Load(),
		"sse_broken":       m.sseBroken.Load(),
	}
}

// sample updates the runs/s gauge from the runs-total delta since the
// previous sample, elapsed seconds apart.
func (m *metrics) sample(prev int64, elapsed time.Duration) int64 {
	cur := m.runsTotal.Load()
	if secs := elapsed.Seconds(); secs > 0 {
		m.runsPerSec.Store(int64(float64(cur-prev) / secs))
	}
	return cur
}

// mergeSnapshot joins the job counters with the governor's gauges into
// the single flat map served by /v1/stats, /metrics, and expvar.
func mergeSnapshot(m *metrics, g *govern.Governor) map[string]int64 {
	out := m.snapshot()
	gs := g.Stats()
	out["mem_live_bytes"] = gs.LiveBytes
	out["mem_soft_limit_bytes"] = gs.SoftLimitBytes
	out["mem_hard_limit_bytes"] = gs.HardLimitBytes
	out["mem_sheds"] = gs.Sheds
	out["panics_recovered"] = gs.PanicsRecovered
	out["watchdog_cancels"] = gs.WatchdogCancels
	return out
}

// serverVitals is the pair published through expvar: the most recently
// registered server's counters and its governor.
type serverVitals struct {
	m   *metrics
	gov *govern.Governor
}

// expvar publication is process-global and append-only, while tests
// build many servers — so the package publishes one "setconsensusd" Func
// that reads whichever server registered most recently.
var (
	expvarOnce   sync.Once
	activeServer atomic.Pointer[serverVitals]
)

func publishExpvar(m *metrics, g *govern.Governor) {
	activeServer.Store(&serverVitals{m: m, gov: g})
	expvarOnce.Do(func() {
		expvar.Publish("setconsensusd", expvar.Func(func() any {
			if v := activeServer.Load(); v != nil {
				return mergeSnapshot(v.m, v.gov)
			}
			return map[string]int64{}
		}))
	})
}
