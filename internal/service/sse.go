package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// sse.go implements the server-sent-events side of the job stream: a
// subscription channel rendered as `event:`/`data:` frames, flushed per
// event, with comment heartbeats so intermediaries do not idle-close a
// quiet stream. The client-side parser lives in client.go.

// sseHeartbeat is the keepalive period of an idle event stream.
const sseHeartbeat = 15 * time.Second

// serveSSE streams ch to w until the channel closes (the job reached a
// terminal state) or the client goes away. Returns whether the stream
// completed (terminal event delivered).
func serveSSE(w http.ResponseWriter, r *http.Request, ch chan Event) bool {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "service: streaming unsupported by this connection", http.StatusNotImplemented)
		return false
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	hb := time.NewTicker(sseHeartbeat)
	defer hb.Stop()
	for {
		select {
		case <-r.Context().Done():
			return false
		case <-hb.C:
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return false
			}
			fl.Flush()
		case ev, ok := <-ch:
			if !ok {
				return true
			}
			if err := writeEvent(w, ev); err != nil {
				return false
			}
			fl.Flush()
		}
	}
}

// writeEvent renders one SSE frame. Payloads are single-line JSON, so
// one data: field suffices.
func writeEvent(w http.ResponseWriter, ev Event) error {
	data, err := json.Marshal(ev.Status)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Name, data)
	return err
}
