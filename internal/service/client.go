package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"setconsensus/internal/chaos"
)

// defaultTransport backs the zero-value Client: connection-level
// timeouts (dial, TLS, response headers) guard every request, while the
// deliberate absence of a whole-body http.Client.Timeout keeps
// long-lived SSE streams alive. Unary calls get their per-request
// deadline from Client.Timeout instead.
var defaultHTTPClient = &http.Client{
	Transport: &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: (&net.Dialer{
			Timeout:   10 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		TLSHandshakeTimeout:   10 * time.Second,
		ResponseHeaderTimeout: 30 * time.Second,
		IdleConnTimeout:       90 * time.Second,
		MaxIdleConnsPerHost:   8,
	},
}

// errInjectedHTTP is the synthetic transient failure raised by the
// chaos PointHTTPError injection point; it is retried like a network
// error.
var errInjectedHTTP = errors.New("service: chaos: injected transient http error")

// errInjectedSSE severs an event stream mid-flight at the chaos
// PointSSEDisconnect injection point; Wait's reconnect loop absorbs it.
var errInjectedSSE = errors.New("service: chaos: injected sse disconnect")

// statusError carries the server's HTTP status so the retry loop can
// distinguish transient failures (429 overload, gateway 502/503/504)
// from real rejections, plus the server's Retry-After hint when one was
// sent.
type statusError struct {
	code       int
	msg        string
	retryAfter time.Duration
}

func (e *statusError) Error() string { return e.msg }

// Client is the Go consumer of a setconsensusd server: it submits jobs,
// follows their SSE streams, and fetches finished results. The CLIs'
// -server mode is built on it, so a remote sweep renders exactly like a
// local one. The zero value (plus Base) is production-ready: default
// transport with connection timeouts, a 30s per-request deadline on
// unary calls, transient-error retries, and SSE reconnection. A Client
// must not be copied after first use (it carries counters).
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8372".
	Base string
	// HTTP is the underlying client; nil means a shared default with
	// transport-level timeouts but no whole-body timeout (which would
	// sever long SSE streams).
	HTTP *http.Client
	// Timeout bounds each unary request (submit, status, cancel); 0
	// means 30s, negative disables. Event streams are bounded only by
	// ctx — they are meant to live for the whole job.
	Timeout time.Duration
	// Retries is the transient-failure retry budget per unary request
	// (network errors, injected faults, 502/503/504); 0 means 2,
	// negative disables.
	Retries int
	// RetryBase and RetryCap shape the exponential backoff between
	// retries and stream reconnects: base doubles per attempt, capped.
	// Zero means 100ms base, 2s cap.
	RetryBase time.Duration
	RetryCap  time.Duration
	// Chaos, when non-nil, injects faults on the request path
	// (PointHTTPError) and the event stream (PointSSEDisconnect). Nil —
	// the default — never fires.
	Chaos chaos.Injector

	httpRetries   atomic.Int64
	sseReconnects atomic.Int64
}

// ClientStats snapshots the client's robustness counters.
type ClientStats struct {
	// HTTPRetries counts unary requests re-sent after a transient
	// failure.
	HTTPRetries int64 `json:"httpRetries"`
	// SSEReconnects counts event streams re-established after a break.
	SSEReconnects int64 `json:"sseReconnects"`
}

// Stats reports how often the client had to retry or reconnect.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		HTTPRetries:   c.httpRetries.Load(),
		SSEReconnects: c.sseReconnects.Load(),
	}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return defaultHTTPClient
}

func (c *Client) timeout() time.Duration {
	switch {
	case c.Timeout > 0:
		return c.Timeout
	case c.Timeout < 0:
		return 0
	default:
		return 30 * time.Second
	}
}

func (c *Client) retries() int {
	switch {
	case c.Retries > 0:
		return c.Retries
	case c.Retries < 0:
		return 0
	default:
		return 2
	}
}

// retryDelay is the capped exponential backoff before retry attempt
// n (n ≥ 1).
func (c *Client) retryDelay(n int) time.Duration {
	base, ceil := c.RetryBase, c.RetryCap
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if ceil <= 0 {
		ceil = 2 * time.Second
	}
	d := base
	for i := 1; i < n && d < ceil; i++ {
		d *= 2
	}
	if d > ceil {
		d = ceil
	}
	return d
}

// transient reports whether err is worth retrying: injected faults,
// network-level failures, and gateway-style 502/503/504 statuses.
// Context cancellation and deadline expiry are the caller's signal, not
// the server's weather, and are never retried here (the per-request
// deadline is re-armed per attempt, so a slow attempt fails with a
// net timeout error, which is transient).
func transient(ctx context.Context, err error) bool {
	if err == nil || ctx.Err() != nil {
		return false
	}
	if errors.Is(err, errInjectedHTTP) {
		return true
	}
	var se *statusError
	if errors.As(err, &se) {
		return se.code == http.StatusTooManyRequests || se.code == http.StatusBadGateway ||
			se.code == http.StatusServiceUnavailable || se.code == http.StatusGatewayTimeout
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	// url.Error wraps io/syscall errors that don't implement net.Error
	// (connection refused during a server restart, unexpected EOF).
	return errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) ||
		strings.Contains(err.Error(), "connection refused") ||
		strings.Contains(err.Error(), "connection reset")
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.Base, "/") + path
}

// decodeError surfaces the server's {"error": ...} payload, keeping the
// Retry-After hint (seconds form) a shedding server attaches to 429/503.
func decodeError(resp *http.Response) error {
	defer resp.Body.Close()
	var after time.Duration
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			after = time.Duration(secs) * time.Second
		}
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e); err == nil && e.Error != "" {
		return &statusError{code: resp.StatusCode, retryAfter: after,
			msg: fmt.Sprintf("service: server %s: %s", resp.Status, e.Error)}
	}
	return &statusError{code: resp.StatusCode, retryAfter: after,
		msg: fmt.Sprintf("service: server returned %s", resp.Status)}
}

// doJSON performs one unary request with a per-attempt deadline,
// retrying transient failures with capped exponential backoff, and
// decodes the wantStatus response body into out.
func (c *Client) doJSON(ctx context.Context, method, path string, body []byte, wantStatus int, out any) error {
	var lastErr error
	for attempt := 0; attempt <= c.retries(); attempt++ {
		if attempt > 0 {
			c.httpRetries.Add(1)
			delay := c.retryDelay(attempt)
			// A server-sent Retry-After is authoritative: back off at
			// least that long before re-submitting to a shedding server.
			var se *statusError
			if errors.As(lastErr, &se) && se.retryAfter > delay {
				delay = se.retryAfter
			}
			if err := chaos.Sleep(ctx, delay); err != nil {
				return err
			}
		}
		err := c.doOnce(ctx, method, path, body, wantStatus, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if !transient(ctx, err) {
			return err
		}
	}
	return lastErr
}

func (c *Client) doOnce(ctx context.Context, method, path string, body []byte, wantStatus int, out any) error {
	if fire, _ := chaos.Fire(c.Chaos, chaos.PointHTTPError); fire {
		return errInjectedHTTP
	}
	rctx := ctx
	if t := c.timeout(); t > 0 {
		var cancel context.CancelFunc
		rctx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	hr, err := http.NewRequestWithContext(rctx, method, c.url(path), rd)
	if err != nil {
		return err
	}
	if body != nil {
		hr.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(hr)
	if err != nil {
		return err
	}
	if resp.StatusCode != wantStatus {
		return decodeError(resp)
	}
	defer resp.Body.Close()
	if out == nil {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit posts a job and returns its accepted status.
func (c *Client) Submit(ctx context.Context, req JobRequest) (*JobStatus, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var st JobStatus
	if err := c.doJSON(ctx, http.MethodPost, "/v1/jobs", body, http.StatusAccepted, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Get fetches a job's current status.
func (c *Client) Get(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.doJSON(ctx, http.MethodGet, "/v1/jobs/"+id, nil, http.StatusOK, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Cancel DELETEs a job: an active job is cancelled, a finished one
// removed. Returns the job's status after the action.
func (c *Client) Cancel(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.doJSON(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, http.StatusOK, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Events follows a job's SSE stream, invoking fn per event, until the
// job reaches a terminal state (returned), the stream breaks (error),
// or ctx is cancelled. fn may be nil. Events makes a single connection
// attempt and does not reconnect — that is Wait's job, which also knows
// how to reconcile the job's status across the gap.
func (c *Client) Events(ctx context.Context, id string, fn func(Event)) (*JobStatus, error) {
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/jobs/"+id+"/events"), nil)
	if err != nil {
		return nil, err
	}
	hr.Header.Set("Accept", "text/event-stream")
	resp, err := c.http().Do(hr)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var name string
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = []byte(strings.TrimPrefix(line, "data: "))
		case strings.HasPrefix(line, ":"):
			// heartbeat comment
		case line == "" && name != "":
			if fire, _ := chaos.Fire(c.Chaos, chaos.PointSSEDisconnect); fire {
				return nil, errInjectedSSE
			}
			var st JobStatus
			if err := json.Unmarshal(data, &st); err != nil {
				return nil, fmt.Errorf("service: bad %s event payload: %w", name, err)
			}
			ev := Event{Name: name, Status: &st}
			if fn != nil {
				fn(ev)
			}
			if JobState(name).Terminal() {
				return &st, nil
			}
			name, data = "", nil
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("service: event stream for %s ended without a terminal event", id)
}

// Wait runs a job to completion and returns the terminal status.
// It follows the event stream; when the stream breaks (proxy hiccup,
// injected disconnect, server listener restart) it reconciles via a
// status fetch — the job may have finished during the gap — and then
// reconnects with capped exponential backoff. Reconnection is safe
// because a fresh subscription always replays the job's current state
// and, for finished jobs, the terminal event. progress, when non-nil,
// receives each progress event.
func (c *Client) Wait(ctx context.Context, id string, progress func(JobProgress)) (*JobStatus, error) {
	for attempt := 0; ; attempt++ {
		st, err := c.Events(ctx, id, func(ev Event) {
			if progress != nil && ev.Name == "progress" && ev.Status.Progress != nil {
				progress(*ev.Status.Progress)
			}
		})
		if err == nil {
			return st, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		// The stream broke mid-job. The job may have reached its terminal
		// state during the gap, so reconcile before reconnecting.
		st, gerr := c.Get(ctx, id)
		if gerr != nil {
			return nil, fmt.Errorf("service: event stream failed (%v); status check failed: %w", err, gerr)
		}
		if st.State.Terminal() {
			return st, nil
		}
		c.sseReconnects.Add(1)
		if err := chaos.Sleep(ctx, c.retryDelay(attempt+1)); err != nil {
			return nil, err
		}
	}
}

// SubmitAndWait submits a job and waits for its terminal state.
func (c *Client) SubmitAndWait(ctx context.Context, req JobRequest, progress func(JobProgress)) (*JobStatus, error) {
	st, err := c.Submit(ctx, req)
	if err != nil {
		return nil, err
	}
	return c.Wait(ctx, st.ID, progress)
}
