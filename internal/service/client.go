package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client is the Go consumer of a setconsensusd server: it submits jobs,
// follows their SSE streams, and fetches finished results. The CLIs'
// -server mode is built on it, so a remote sweep renders exactly like a
// local one.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8372".
	Base string
	// HTTP is the underlying client; nil means http.DefaultClient.
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.Base, "/") + path
}

// decodeError surfaces the server's {"error": ...} payload.
func decodeError(resp *http.Response) error {
	defer resp.Body.Close()
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e); err == nil && e.Error != "" {
		return fmt.Errorf("service: server %s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("service: server returned %s", resp.Status)
}

// Submit posts a job and returns its accepted status.
func (c *Client) Submit(ctx context.Context, req JobRequest) (*JobStatus, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url("/v1/jobs"), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hr.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(hr)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusAccepted {
		return nil, decodeError(resp)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Get fetches a job's current status.
func (c *Client) Get(ctx context.Context, id string) (*JobStatus, error) {
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/jobs/"+id), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(hr)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Cancel DELETEs a job: an active job is cancelled, a finished one
// removed. Returns the job's status after the action.
func (c *Client) Cancel(ctx context.Context, id string) (*JobStatus, error) {
	hr, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.url("/v1/jobs/"+id), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(hr)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Events follows a job's SSE stream, invoking fn per event, until the
// job reaches a terminal state (returned), the stream breaks (error),
// or ctx is cancelled. fn may be nil.
func (c *Client) Events(ctx context.Context, id string, fn func(Event)) (*JobStatus, error) {
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/jobs/"+id+"/events"), nil)
	if err != nil {
		return nil, err
	}
	hr.Header.Set("Accept", "text/event-stream")
	resp, err := c.http().Do(hr)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var name string
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = []byte(strings.TrimPrefix(line, "data: "))
		case strings.HasPrefix(line, ":"):
			// heartbeat comment
		case line == "" && name != "":
			var st JobStatus
			if err := json.Unmarshal(data, &st); err != nil {
				return nil, fmt.Errorf("service: bad %s event payload: %w", name, err)
			}
			ev := Event{Name: name, Status: &st}
			if fn != nil {
				fn(ev)
			}
			if JobState(name).Terminal() {
				return &st, nil
			}
			name, data = "", nil
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("service: event stream for %s ended without a terminal event", id)
}

// Wait runs a job to completion: it follows the event stream (falling
// back to polling if the stream breaks) and returns the terminal
// status. progress, when non-nil, receives each progress event.
func (c *Client) Wait(ctx context.Context, id string, progress func(JobProgress)) (*JobStatus, error) {
	st, err := c.Events(ctx, id, func(ev Event) {
		if progress != nil && ev.Name == "progress" && ev.Status.Progress != nil {
			progress(*ev.Status.Progress)
		}
	})
	if err == nil {
		return st, nil
	}
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	// Stream broke mid-job (proxy hiccup, server restart of the
	// listener, ...): poll until terminal.
	for {
		st, gerr := c.Get(ctx, id)
		if gerr != nil {
			return nil, fmt.Errorf("service: event stream failed (%v); poll failed: %w", err, gerr)
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(250 * time.Millisecond):
		}
	}
}

// SubmitAndWait submits a job and waits for its terminal state.
func (c *Client) SubmitAndWait(ctx context.Context, req JobRequest, progress func(JobProgress)) (*JobStatus, error) {
	st, err := c.Submit(ctx, req)
	if err != nil {
		return nil, err
	}
	return c.Wait(ctx, st.ID, progress)
}
