package service

import (
	"fmt"
	"io"
	"net/http"
	"sort"
)

// prometheus.go renders the server's counters — the same snapshot the
// expvar "setconsensusd" map publishes — in the Prometheus text
// exposition format (version 0.0.4), so a scrape target needs nothing
// beyond GET /metrics. Every metric is prefixed "setconsensusd_"; the
// point-in-time values (running jobs, queue depth, runs/s) are gauges,
// everything else a monotone counter.

// promContentType is the text exposition content type Prometheus
// scrapers negotiate.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// promGauges marks the snapshot keys whose values can go down; all
// other keys are counters.
var promGauges = map[string]bool{
	"jobs_running":         true,
	"queue_depth":          true,
	"runs_per_sec":         true,
	"mem_live_bytes":       true,
	"mem_soft_limit_bytes": true,
	"mem_hard_limit_bytes": true,
}

// promHelp is the one-line HELP text per snapshot key. Keys without an
// entry still render (with a generic HELP line), so a new counter can
// never silently vanish from the scrape surface.
var promHelp = map[string]string{
	"jobs_queued":      "Jobs accepted for execution, cumulative.",
	"jobs_running":     "Jobs executing right now.",
	"jobs_done":        "Jobs finished successfully, cumulative.",
	"jobs_failed":      "Jobs finished in failure, cumulative.",
	"jobs_cancelled":   "Jobs cancelled before completion, cumulative.",
	"queue_depth":      "Jobs accepted but not yet claimed by a worker.",
	"runs_total":       "Protocol runs folded across all jobs, cumulative.",
	"runs_per_sec":     "Protocol runs folded per second, sampled every second.",
	"graphs_rebuilt":   "Knowledge graphs built from scratch on the arena-recycling path, cumulative.",
	"graphs_revived":   "Knowledge graphs revived from a same-pattern arena, cumulative.",
	"graphs_patched":   "Knowledge graphs delta-patched from the previous input assignment, cumulative.",
	"pool_runkit_hits": "Per-worker run-kit (RunBuffer + builder arena) pool checkouts served warm, cumulative.",
	"pool_runkit_miss": "Per-worker run-kit pool checkouts that allocated fresh, cumulative.",
	"pool_chunk_hits":  "Sweep feeder chunk pool checkouts served warm, cumulative.",
	"pool_chunk_miss":  "Sweep feeder chunk pool checkouts that allocated fresh, cumulative.",
	"sse_opened":       "Job event streams opened, cumulative.",
	"sse_broken":       "Job event streams that ended before delivering the terminal event, cumulative.",

	"mem_live_bytes":       "Metered arena/pool bytes live across the server's engines.",
	"mem_soft_limit_bytes": "Soft memory ceiling; 0 means unlimited.",
	"mem_hard_limit_bytes": "Hard memory ceiling gating admission; 0 means unlimited.",
	"mem_sheds":            "Submissions shed over a memory ceiling, cumulative.",
	"panics_recovered":     "Worker panics recovered into typed job failures, cumulative.",
	"watchdog_cancels":     "Stuck jobs cancelled by the progress watchdog, cumulative.",
}

// writePrometheus renders one snapshot in deterministic (sorted) key
// order — the shape the exposition test pins.
func writePrometheus(w io.Writer, snap map[string]int64) {
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		help, ok := promHelp[k]
		if !ok {
			help = "setconsensusd counter " + k + "."
		}
		kind := "counter"
		if promGauges[k] {
			kind = "gauge"
		}
		fmt.Fprintf(w, "# HELP setconsensusd_%s %s\n", k, help)
		fmt.Fprintf(w, "# TYPE setconsensusd_%s %s\n", k, kind)
		fmt.Fprintf(w, "setconsensusd_%s %d\n", k, snap[k])
	}
}

// handleMetrics is GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", promContentType)
	writePrometheus(w, s.snapshot())
}
