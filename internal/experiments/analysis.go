package experiments

import (
	"fmt"

	"setconsensus/internal/unbeat"
)

// AnalysisTable renders a structured AnalysisReport as a Table — the
// presentation bridge that lets cmd/setconsensus -analyze and
// cmd/experiments -analyze share the E1–E10 table format, exactly as
// SweepTable does for streamed sweep summaries. Deviation-search reports
// and certificate reports carry different statistics, so the column set
// follows the populated section.
func AnalysisTable(r *unbeat.AnalysisReport) *Table {
	t := &Table{
		ID:    "ANALYZE",
		Title: fmt.Sprintf("analysis %s over %s", r.Family, r.Workload),
	}
	params := fmt.Sprintf("n=%d t=%d k=%d", r.N, r.T, r.K)
	if s := r.Search; s != nil {
		t.Columns = []string{"family", "model", "runs", "deviation points", "candidates", "pairs pruned", "pairs tested", "verdict"}
		verdict := "unbeaten"
		if s.Beaten {
			verdict = "BEATEN: " + s.Witness.String()
		}
		t.AddRow(r.Family, params, s.Runs, s.Views, s.Candidates, s.PairsPruned, s.PairsTested, verdict)
		t.Notes = append(t.Notes,
			"candidates = deviation rules tested; when beaten, counters cover the canonical prefix through the witness")
		return t
	}
	t.Columns = []string{"family", "model", "nodes", "certified", "orders", "verdict"}
	verdict := "all certified"
	if !r.OK() {
		verdict = "INCOMPLETE"
	}
	t.AddRow(r.Family, params, r.Nodes, r.Certified, r.Orders, verdict)
	if r.Family == "forced" {
		t.Notes = append(t.Notes, "orders = change-run orderings validated across all forcing recursions")
	}
	return t
}
