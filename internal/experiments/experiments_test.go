package experiments

import (
	"strings"
	"testing"
)

// Every experiment generator must run green and produce a non-trivial
// table; each generator internally asserts its paper-shape claims (who
// wins, bounds met, counts odd, certificates complete) and errors out on
// any deviation, so this test is the end-to-end reproduction gate.
func TestAllExperiments(t *testing.T) {
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl, err := e.Gen()
			if err != nil {
				t.Fatal(err)
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("empty table")
			}
			if tbl.ID != e.ID {
				t.Fatalf("table id %q under registry id %q", tbl.ID, e.ID)
			}
			out := tbl.Render()
			if !strings.Contains(out, tbl.Title) {
				t.Error("render must include the title")
			}
			t.Logf("\n%s", out)
		})
	}
}

func TestRunByID(t *testing.T) {
	tbl, err := Run("E1")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.ID != "E1" {
		t.Fatalf("got %s", tbl.ID)
	}
	if _, err := Run("E99"); err == nil {
		t.Error("unknown id must error")
	}
}

func TestTableRenderAlignment(t *testing.T) {
	tbl := &Table{ID: "X", Title: "t", Columns: []string{"a", "long-column"}}
	tbl.AddRow("wide-cell", 1)
	out := tbl.Render()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4", len(lines))
	}
}
