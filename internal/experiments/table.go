// Package experiments regenerates every figure- and theorem-level claim
// of the paper as a table (DESIGN.md §4, EXPERIMENTS.md). Each experiment
// E1–E10 is a pure generator: deterministic, seeded, and cheap enough to
// re-run on every invocation of cmd/experiments.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one experiment's output.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.Rows = append(t.Rows, row)
}

// Render formats the table as aligned text with a markdown-style header.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len([]rune(c))
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if w := len([]rune(cell)); i < len(widths) && w > widths[i] {
				widths[i] = w
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Generator produces one experiment table.
type Generator func() (*Table, error)

// Registry maps experiment ids to generators, in presentation order.
func Registry() []struct {
	ID  string
	Gen Generator
} {
	return []struct {
		ID  string
		Gen Generator
	}{
		{"E1", E1HiddenPath},
		{"E2", E2HiddenCapacity},
		{"E3", E3ForcedDecisions},
		{"E4", E4Separation},
		{"E5", E5Sperner},
		{"E6", E6Bounds},
		{"E7", E7Unbeatability},
		{"E8", E8StarConnectivity},
		{"E9", E9LastDecider},
		{"E10", E10WireCost},
	}
}

// Run looks up and executes one experiment by id.
func Run(id string) (*Table, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e.Gen()
		}
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q", id)
}
