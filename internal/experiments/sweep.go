package experiments

import (
	"fmt"

	"setconsensus/internal/agg"
)

// SweepTable renders an online-aggregated sweep Summary as a Table: one
// row per protocol with run counts, decision-time statistics, the full
// decision-time histogram, and — when the wire backend contributed —
// bandwidth totals. It is how ad-hoc workload sweeps (cmd/experiments
// -workload, cmd/setconsensus -workload) join the E1–E10 presentation
// format.
func SweepTable(s *agg.Summary) *Table {
	t := &Table{
		ID:      "SWEEP",
		Title:   fmt.Sprintf("workload %s — %d adversaries", s.Workload, s.Adversaries()),
		Columns: []string{"protocol", "runs", "undecided", "violations", "max time", "mean time", "decision times"},
	}
	bits := false
	for _, p := range s.Protocols {
		if p.TotalBits > 0 {
			bits = true
		}
	}
	if bits {
		t.Columns = append(t.Columns, "total bits", "max bits/pair")
	}
	for _, p := range s.Protocols {
		cells := []any{
			p.Ref, p.Runs, p.Undecided, p.Violations, p.MaxTime,
			fmt.Sprintf("%.2f", p.MeanTime()), p.HistString(),
		}
		if bits {
			cells = append(cells, p.TotalBits, p.MaxPair)
		}
		t.AddRow(cells...)
	}
	if v := s.Violations(); v > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("%d task verification FAILURES", v))
	}
	return t
}
