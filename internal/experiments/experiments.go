package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"setconsensus/internal/baseline"
	"setconsensus/internal/check"
	"setconsensus/internal/core"
	"setconsensus/internal/enum"
	"setconsensus/internal/knowledge"
	"setconsensus/internal/model"
	"setconsensus/internal/sim"
	"setconsensus/internal/topology"
	"setconsensus/internal/unbeat"
)

// E1HiddenPath reproduces Fig. 1: on the hidden-path family the observer
// of a depth-d path cannot decide before time d+1 under Opt0, while the
// chain tail (which sees the hidden 0) decides as soon as it does.
func E1HiddenPath() (*Table, error) {
	t := &Table{
		ID:      "E1",
		Title:   "Fig. 1 — hidden paths block decisions in Opt0 (n = depth+3)",
		Columns: []string{"depth", "observer decides", "chain tail decides", "value"},
		Notes: []string{
			"observer decision time = depth+1: exactly when the hidden path is exhausted",
		},
	}
	for depth := 1; depth <= 5; depth++ {
		n := depth + 3
		adv, err := model.HiddenPath(n, depth)
		if err != nil {
			return nil, err
		}
		p, err := core.NewOpt0(n, n-1)
		if err != nil {
			return nil, err
		}
		res := sim.Run(p, adv)
		tail := 1 + depth // process index of the chain tail
		t.AddRow(depth, res.DecisionTime(0), res.DecisionTime(tail), res.Decisions[0].Value)
		if res.DecisionTime(0) != depth+1 {
			return nil, fmt.Errorf("E1: observer decided at %d, want %d", res.DecisionTime(0), depth+1)
		}
	}
	return t, nil
}

// E2HiddenCapacity reproduces Fig. 2 / Lemma 2: hidden chains give the
// observer hidden capacity c, and the constructive run r′ carrying
// arbitrary values through the chains is indistinguishable at ⟨i,m⟩.
func E2HiddenCapacity() (*Table, error) {
	t := &Table{
		ID:      "E2",
		Title:   "Fig. 2 / Lemma 2 — hidden capacity and the constructed run r′",
		Columns: []string{"chains c", "depth m", "HC⟨0,m⟩", "r′ verified", "indistinguishable"},
	}
	for _, cfg := range []struct{ c, m int }{{1, 1}, {2, 1}, {2, 2}, {3, 2}, {3, 3}} {
		n := 1 + cfg.c*(cfg.m+1) + 2
		high := make([]model.Value, cfg.c)
		for b := range high {
			high[b] = cfg.c // all chains start high; r′ injects the lows
		}
		adv, err := model.HiddenChains(n, cfg.c, cfg.m, high, cfg.c)
		if err != nil {
			return nil, err
		}
		g := knowledge.New(adv, cfg.m)
		hc := g.HiddenCapacity(0, cfg.m)
		values := make([]model.Value, cfg.c)
		for b := range values {
			values[b] = b
		}
		h, err := unbeat.HiddenRun(g, 0, cfg.m, values)
		if err != nil {
			return nil, fmt.Errorf("E2: construction (c=%d m=%d): %w", cfg.c, cfg.m, err)
		}
		_, err = h.Verify(context.Background(), g)
		t.AddRow(cfg.c, cfg.m, hc, err == nil, err == nil)
		if err != nil {
			return nil, fmt.Errorf("E2: verification (c=%d m=%d): %w", cfg.c, cfg.m, err)
		}
	}
	return t, nil
}

// E3ForcedDecisions reproduces Fig. 3 / Lemma 1 / Lemma 3: on each
// family, every node at which Optmin[k] is undecided carries a
// machine-checked cannot-decide certificate.
func E3ForcedDecisions() (*Table, error) {
	t := &Table{
		ID:      "E3",
		Title:   "Fig. 3 / Lemmas 1+3 — forcing certificates at every Optmin-undecided node",
		Columns: []string{"family", "k", "horizon", "undecided nodes", "certified"},
	}
	type fam struct {
		name string
		adv  *model.Adversary
		k, m int
	}
	var fams []fam
	hp, err := model.HiddenPath(6, 2)
	if err != nil {
		return nil, err
	}
	fams = append(fams, fam{"hidden-path", hp, 1, 2})
	hc2, err := model.HiddenChains(10, 2, 2, []model.Value{2, 2}, 2)
	if err != nil {
		return nil, err
	}
	fams = append(fams, fam{"hidden-chains", hc2, 2, 2})
	col, err := model.Collapse(model.CollapseParams{K: 2, R: 2, ExtraCorrect: 3})
	if err != nil {
		return nil, err
	}
	fams = append(fams, fam{"collapse", col, 2, 2})

	for _, f := range fams {
		g := knowledge.New(f.adv, f.m)
		undecided, certified := 0, 0
		for i := 0; i < f.adv.N(); i++ {
			for m := 0; m <= f.m; m++ {
				if !f.adv.Pattern.Active(i, m) {
					continue
				}
				if g.Min(i, m) < f.k || g.HiddenCapacity(i, m) < f.k {
					continue
				}
				undecided++
				if _, err := unbeat.CannotDecide(context.Background(), g, i, m, f.k); err == nil {
					certified++
				}
			}
		}
		t.AddRow(f.name, f.k, f.m, undecided, certified)
		if certified != undecided {
			return nil, fmt.Errorf("E3: %s: %d/%d certified", f.name, certified, undecided)
		}
	}
	return t, nil
}

// E4Separation reproduces Fig. 4 and the §5 headline: on the collapse
// family, u-Pmin[k] decides at time 2 (3 in the low variant) while every
// literature protocol needs ⌊t/k⌋+1.
func E4Separation() (*Table, error) {
	t := &Table{
		ID:      "E4",
		Title:   "Fig. 4 — u-Pmin decides at 2; all known protocols need ⌊t/k⌋+1",
		Columns: []string{"k", "t", "variant", "u-Pmin", "Optmin", "FloodMin", "u-EarlyCount", "u-PerRound", "⌊t/k⌋+1"},
	}
	for _, cfg := range []struct {
		k, r int
		low  bool
	}{
		{2, 2, false}, {2, 4, false}, {3, 3, false}, {3, 7, false}, {3, 19, false},
		{2, 2, true}, {3, 7, true},
	} {
		cp := model.CollapseParams{K: cfg.k, R: cfg.r, ExtraCorrect: cfg.k + 2, LowVariant: cfg.low}
		adv, err := model.Collapse(cp)
		if err != nil {
			return nil, err
		}
		tb := model.CollapseT(cp)
		params := core.Params{N: adv.N(), T: tb, K: cfg.k}
		variant := "all-high"
		if cfg.low {
			variant = "low"
		}
		// One knowledge graph serves all five protocols: they share the
		// worst-case horizon ⌊t/k⌋+1.
		g := knowledge.New(adv, params.T/params.K+1)
		upmin := sim.RunWithGraph(core.MustUPmin(params), g).MaxCorrectDecisionTime()
		optmin := sim.RunWithGraph(core.MustOptmin(params), g).MaxCorrectDecisionTime()
		flood := sim.RunWithGraph(baseline.Must(baseline.FloodMin, params), g).MaxCorrectDecisionTime()
		uec := sim.RunWithGraph(baseline.Must(baseline.UEarlyCount, params), g).MaxCorrectDecisionTime()
		upr := sim.RunWithGraph(baseline.Must(baseline.UPerRound, params), g).MaxCorrectDecisionTime()
		t.AddRow(cfg.k, tb, variant, upmin, optmin, flood, uec, upr, tb/cfg.k+1)

		wantU := 2
		if cfg.low {
			wantU = 3
		}
		if upmin != wantU {
			return nil, fmt.Errorf("E4: u-Pmin decided at %d, want %d (k=%d t=%d)", upmin, wantU, cfg.k, tb)
		}
		if flood != tb/cfg.k+1 || uec != tb/cfg.k+1 {
			return nil, fmt.Errorf("E4: baselines decided early (flood=%d uec=%d)", flood, uec)
		}
	}
	t.Notes = append(t.Notes,
		"the margin ⌊t/k⌋+1 vs 2 grows without bound in t — 'beats by a large margin' (§5)")
	return t, nil
}

// E5Sperner reproduces Fig. 5 / Lemma 4: the paper's subdivision Div σ,
// Sperner colorings, and the odd fully-colored count, for k = 1..3, with
// randomized colorings.
func E5Sperner() (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "Fig. 5 / Lemma 4 — Div σ and Sperner's lemma",
		Columns: []string{"k", "vertices", "top simplices", "canonical count", "random colorings", "all odd"},
	}
	rng := rand.New(rand.NewSource(99))
	for k := 1; k <= 3; k++ {
		s, err := topology.DivK(k)
		if err != nil {
			return nil, err
		}
		if err := s.CheckSubdivision(); err != nil {
			return nil, err
		}
		canonical, err := s.SpernerCount(s.CanonicalColoring())
		if err != nil {
			return nil, err
		}
		trials := 500
		allOdd := true
		for i := 0; i < trials; i++ {
			n, err := s.SpernerCount(s.RandomColoring(rng))
			if err != nil {
				return nil, err
			}
			if n%2 == 0 {
				allOdd = false
			}
		}
		t.AddRow(k, len(s.Complex.Vertices()), len(s.Complex.Simplices(k)), canonical, trials, allOdd)
		if !allOdd || canonical%2 == 0 {
			return nil, fmt.Errorf("E5: even Sperner count at k=%d", k)
		}
	}
	t.Notes = append(t.Notes,
		"the B.1.2 proof maps Div σ into the star complex of ⟨i,m⟩; a fully colored simplex is a k-Agreement violation")
	return t, nil
}

// E6Bounds reproduces Proposition 1 and Theorem 3: decision-time bounds
// over random sweeps plus the exact-tightness family.
func E6Bounds() (*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   "Prop. 1 / Thm. 3 — decision-time bounds (500 seeded random adversaries per row)",
		Columns: []string{"n", "k", "t", "max Optmin", "max ⌊f/k⌋+1 bound", "max u-Pmin", "max min{⌊t/k⌋+1,⌊f/k⌋+2}", "violations"},
	}
	rng := rand.New(rand.NewSource(7))
	for _, cfg := range []struct{ n, k, tb int }{{5, 1, 3}, {6, 2, 4}, {7, 3, 5}, {8, 2, 6}} {
		params := core.Params{N: cfg.n, T: cfg.tb, K: cfg.k}
		maxOpt, maxOptBound, maxU, maxUBound, violations := 0, 0, 0, 0, 0
		for trial := 0; trial < 500; trial++ {
			adv := model.Random(rng, model.RandomParams{N: cfg.n, T: cfg.tb, MaxValue: cfg.k, MaxRound: cfg.tb})
			f := adv.Pattern.NumFailures()
			g := knowledge.New(adv, params.T/params.K+1)
			oRes := sim.RunWithGraph(core.MustOptmin(params), g)
			uRes := sim.RunWithGraph(core.MustUPmin(params), g)
			oT, uT := oRes.MaxCorrectDecisionTime(), uRes.MaxCorrectDecisionTime()
			oB, uB := f/cfg.k+1, min(cfg.tb/cfg.k+1, f/cfg.k+2)
			if oT > maxOpt {
				maxOpt = oT
			}
			if oB > maxOptBound {
				maxOptBound = oB
			}
			if uT > maxU {
				maxU = uT
			}
			if uB > maxUBound {
				maxUBound = uB
			}
			if oT > oB || uT > uB || oT < 0 || uT < 0 {
				violations++
			}
		}
		t.AddRow(cfg.n, cfg.k, cfg.tb, maxOpt, maxOptBound, maxU, maxUBound, violations)
		if violations > 0 {
			return nil, fmt.Errorf("E6: %d bound violations at n=%d k=%d", violations, cfg.n, cfg.k)
		}
	}
	// Tightness rows: the silent-rounds family meets the bound exactly.
	for _, cfg := range []struct{ k, r int }{{1, 3}, {2, 3}, {3, 2}} {
		adv, err := model.SilentRounds(cfg.k, cfg.r, cfg.k+1)
		if err != nil {
			return nil, err
		}
		f := adv.Pattern.NumFailures()
		params := core.Params{N: adv.N(), T: f, K: cfg.k}
		oT := sim.Run(core.MustOptmin(params), adv).MaxCorrectDecisionTime()
		uT := sim.Run(core.MustUPmin(params), adv).MaxCorrectDecisionTime()
		t.AddRow(adv.N(), cfg.k, f, oT, f/cfg.k+1, uT, min(f/cfg.k+1, f/cfg.k+2), 0)
		if oT != f/cfg.k+1 {
			return nil, fmt.Errorf("E6: tightness broken: Optmin at %d, want %d", oT, f/cfg.k+1)
		}
	}
	t.Notes = append(t.Notes, "last three rows: SilentRounds family — the bounds are met with equality")
	return t, nil
}

var _ = check.Task{} // keep the import local to this file's siblings
var _ = enum.Space{}
