package experiments

import (
	"context"
	"fmt"
	"math"

	"setconsensus/internal/baseline"
	"setconsensus/internal/check"
	"setconsensus/internal/core"
	"setconsensus/internal/enum"
	"setconsensus/internal/knowledge"
	"setconsensus/internal/model"
	"setconsensus/internal/sim"
	"setconsensus/internal/topology"
	"setconsensus/internal/unbeat"
	"setconsensus/internal/wire"
)

// E7Unbeatability reproduces Theorem 1 empirically: Optmin strictly
// dominates every baseline over an exhaustive space, and the bounded
// protocol-space search finds no dominating deviation.
func E7Unbeatability() (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   "Thm. 1 — Optmin dominates everything; no deviation beats it",
		Columns: []string{"comparison", "model", "adversaries", "verdict", "strict wins"},
	}
	space := enum.Space{N: 3, T: 2, MaxRound: 2, Values: []model.Value{0, 1}}
	params := core.Params{N: 3, T: 2, K: 1}
	opt := core.MustOptmin(params)
	modelName := "n=3 t=2 k=1 R≤2"

	for _, b := range baseline.All(params) {
		dom := check.NewDomination(opt.Name(), b.Name(), false)
		err := space.ForEach(func(adv *model.Adversary) bool {
			g := knowledge.New(adv, params.T/params.K+1)
			dom.Add(sim.RunWithGraph(opt, g), sim.RunWithGraph(b, g))
			return true
		})
		if err != nil {
			return nil, err
		}
		verdict := "strictly dominates"
		if !dom.StrictlyDominates() {
			if dom.Dominates() {
				verdict = "dominates (non-strict)"
			} else {
				verdict = "VIOLATION"
				return nil, fmt.Errorf("E7: %s", dom.Summary())
			}
		}
		t.AddRow(opt.Name()+" vs "+b.Name(), modelName, dom.Compared, verdict, len(dom.StrictWins))
	}

	// Protocol-space searches.
	searches := []struct {
		name string
		base sim.Protocol
		p    unbeat.SearchParams
	}{
		{"Opt0 deviation search (width 2)", core.MustOptmin(core.Params{N: 3, T: 2, K: 1}),
			unbeat.SearchParams{Space: enum.Space{N: 3, T: 2, MaxRound: 3, Values: []model.Value{0, 1}}, K: 1, T: 2, Width: 2}},
		{"Optmin[2] deviation search (width 1)", core.MustOptmin(core.Params{N: 4, T: 2, K: 2}),
			unbeat.SearchParams{Space: enum.Space{N: 4, T: 2, MaxRound: 2, Values: []model.Value{0, 1, 2}}, K: 2, T: 2, Width: 1}},
		{"u-Pmin[1] conjecture probe (width 2)", core.MustUPmin(core.Params{N: 3, T: 2, K: 1}),
			unbeat.SearchParams{Space: enum.Space{N: 3, T: 2, MaxRound: 2, Values: []model.Value{0, 1}}, K: 1, T: 2, Uniform: true, Width: 2}},
	}
	for _, s := range searches {
		rep, err := unbeat.Search(context.Background(), s.base, s.p)
		if err != nil {
			return nil, err
		}
		verdict := "unbeaten"
		if rep.Beaten {
			verdict = "BEATEN: " + rep.Witness.String()
			return nil, fmt.Errorf("E7: %s %s", s.name, verdict)
		}
		t.AddRow(s.name, fmt.Sprintf("n=%d t=%d k=%d", s.p.Space.N, s.p.T, s.p.K), rep.Runs, verdict, rep.Candidates)
	}
	t.Notes = append(t.Notes,
		"final column for searches = candidate deviation rules tested (all violate the task)")
	return t, nil
}

// E8StarConnectivity reproduces Proposition 2: every local state with
// hidden capacity ≥ k has a homologically (k−1)-connected star complex;
// the converse (open in the paper) is probed by also measuring HC < k
// states.
func E8StarConnectivity() (*Table, error) {
	t := &Table{
		ID:      "E8",
		Title:   "Prop. 2 — HC ≥ k ⟹ star complex (k−1)-connected (GF(2) homology)",
		Columns: []string{"space", "k", "m", "HC≥k states", "connected", "HC<k states", "also connected"},
	}
	type cfg struct {
		space enum.Space
		k, m  int
	}
	for _, c := range []cfg{
		{enum.Space{N: 3, T: 1, MaxRound: 1, Values: []model.Value{0, 1}}, 1, 1},
		{enum.Space{N: 4, T: 2, MaxRound: 2, Values: []model.Value{0, 1}}, 1, 2},
		{enum.Space{N: 5, T: 2, MaxRound: 1, Values: []model.Value{0, 2}}, 2, 1},
	} {
		type nodeRef struct {
			g  *knowledge.Graph
			i  model.Proc
			hc int
		}
		var nodes []nodeRef
		pc, err := topology.BuildProtocolComplex(c.space, c.m, func(g *knowledge.Graph) {
			for i := 0; i < g.Adv.N(); i++ {
				if g.Adv.Pattern.Active(i, c.m) {
					nodes = append(nodes, nodeRef{g, i, g.HiddenCapacity(i, c.m)})
				}
			}
		})
		if err != nil {
			return nil, err
		}
		seen := map[int]bool{}
		qual, qualConn, rest, restConn := 0, 0, 0, 0
		for _, nd := range nodes {
			v, ok := pc.Vertex(nd.g, nd.i)
			if !ok || seen[v] {
				continue
			}
			seen[v] = true
			conn, _ := pc.StarConnectivity(v, c.k)
			if nd.hc >= c.k {
				qual++
				if conn {
					qualConn++
				}
			} else {
				rest++
				if conn {
					restConn++
				}
			}
		}
		label := fmt.Sprintf("n=%d t=%d R=%d", c.space.N, c.space.T, c.space.MaxRound)
		t.AddRow(label, c.k, c.m, qual, qualConn, rest, restConn)
		if qual == 0 || qualConn != qual {
			return nil, fmt.Errorf("E8: %s: %d/%d qualifying stars connected", label, qualConn, qual)
		}
	}
	t.Notes = append(t.Notes,
		"'also connected' probes the open converse: connectivity of HC<k stars neither confirms nor refutes it")
	return t, nil
}

// E9LastDecider reproduces Theorem 2: Optmin last-decider dominates every
// baseline over the exhaustive space, strictly.
func E9LastDecider() (*Table, error) {
	t := &Table{
		ID:      "E9",
		Title:   "Thm. 2 — last-decider domination of Optmin over the baselines",
		Columns: []string{"comparison", "adversaries", "dominates", "strict wins"},
	}
	space := enum.Space{N: 3, T: 2, MaxRound: 2, Values: []model.Value{0, 1}}
	params := core.Params{N: 3, T: 2, K: 1}
	opt := core.MustOptmin(params)
	for _, b := range baseline.All(params) {
		ld := check.NewLastDecider(opt.Name(), b.Name())
		err := space.ForEach(func(adv *model.Adversary) bool {
			g := knowledge.New(adv, params.T/params.K+1)
			ld.Add(sim.RunWithGraph(opt, g), sim.RunWithGraph(b, g))
			return true
		})
		if err != nil {
			return nil, err
		}
		if !ld.Dominates() {
			return nil, fmt.Errorf("E9: %s does not last-decider dominate %s", opt.Name(), b.Name())
		}
		t.AddRow(opt.Name()+" vs "+b.Name(), ld.Compared, true, len(ld.StrictWins))
	}
	return t, nil
}

// E10WireCost reproduces Lemma 6 (Appendix E): the compact protocol's
// decisions match the oracle exactly while each ordered pair exchanges
// O(n log n) bits over the whole run.
func E10WireCost() (*Table, error) {
	t := &Table{
		ID:      "E10",
		Title:   "Lemma 6 — compact wire protocol: identical decisions, O(n log n) bits/pair",
		Columns: []string{"family", "n", "t", "k", "decisions match", "max bits/pair", "bits / (n·log₂n)"},
	}
	type cfg struct {
		name string
		adv  *model.Adversary
		k    int
		tb   int
	}
	var cfgs []cfg
	for _, rounds := range []int{2, 4, 6, 8, 10} {
		adv, err := model.SilentRounds(2, rounds, 3)
		if err != nil {
			return nil, err
		}
		cfgs = append(cfgs, cfg{fmt.Sprintf("silent-rounds R=%d", rounds), adv, 2, 2 * rounds})
	}
	colP := model.CollapseParams{K: 3, R: 4, ExtraCorrect: 4}
	col, err := model.Collapse(colP)
	if err != nil {
		return nil, err
	}
	cfgs = append(cfgs, cfg{"collapse k=3 R=4", col, 3, model.CollapseT(colP)})

	for _, c := range cfgs {
		params := core.Params{N: c.adv.N(), T: c.tb, K: c.k}
		res, err := wire.Run(wire.RuleOptmin, params, c.adv)
		if err != nil {
			return nil, err
		}
		oracle := sim.Run(core.MustOptmin(params), c.adv)
		match := true
		for i := 0; i < c.adv.N(); i++ {
			wd, od := res.Decisions[i], oracle.Decisions[i]
			if (wd == nil) != (od == nil) || (wd != nil && (wd.Value != od.Value || wd.Time != od.Time)) {
				match = false
			}
		}
		if !match {
			return nil, fmt.Errorf("E10: wire/oracle decision mismatch on %s", c.name)
		}
		n := c.adv.N()
		ratio := float64(res.MaxPairBits()) / (float64(n) * math.Log2(float64(n)))
		t.AddRow(c.name, n, c.tb, c.k, match, res.MaxPairBits(), fmt.Sprintf("%.2f", ratio))
	}
	t.Notes = append(t.Notes,
		"the ratio column stays bounded as n grows — the Θ(n·log n) shape of Lemma 6")
	return t, nil
}
