package wire

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"setconsensus/internal/core"
	"setconsensus/internal/enum"
	"setconsensus/internal/knowledge"
	"setconsensus/internal/model"
	"setconsensus/internal/sim"
)

func TestCodecRoundTrip(t *testing.T) {
	facts := []Fact{
		{Kind: FactValue, Proc: 3, Arg: 2},
		{Kind: FactMyMiss, Proc: 1, Arg: 4},
		{Kind: FactCrash, Proc: 1, Arg: 3},
		{Kind: FactSeen, Proc: 5, Arg: 2},
	}
	got, err := Decode(Encode(facts))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, facts) {
		t.Fatalf("round trip: %v != %v", got, facts)
	}
	// Alive heartbeat: one byte.
	if b := Encode(nil); len(b) != 1 {
		t.Fatalf("alive message is %d bytes, want 1", len(b))
	}
	alive, err := Decode(Encode(nil))
	if err != nil || len(alive) != 0 {
		t.Fatalf("alive decode: %v, %v", alive, err)
	}
	if _, err := Decode([]byte{0x05}); err == nil {
		t.Error("truncated message must fail")
	}
	if _, err := Decode(append(Encode(nil), 0x01)); err == nil {
		t.Error("trailing bytes must fail")
	}
}

func TestFactStrings(t *testing.T) {
	for f, want := range map[Fact]string{
		{Kind: FactValue, Proc: 3, Arg: 2}:  "value(3)=2",
		{Kind: FactMyMiss, Proc: 1, Arg: 4}: "myMiss(1)=r4",
		{Kind: FactCrash, Proc: 1, Arg: 3}:  "crash(1)≤r3",
		{Kind: FactSeen, Proc: 5, Arg: 2}:   "seen(5)=2",
	} {
		if got := f.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
}

// stateMatchesOracle compares every reconstructed quantity at ⟨i,m⟩ with
// the full-information oracle.
func stateMatchesOracle(t *testing.T, g *knowledge.Graph, st *State, i model.Proc, m, k int) {
	t.Helper()
	adv := g.Adv
	if got, want := st.Min(), g.Min(i, m); got != want {
		t.Fatalf("⟨%d,%d⟩ Min: wire %d oracle %d (%s)", i, m, got, want, adv)
	}
	if got, want := st.HiddenCapacity(), g.HiddenCapacity(i, m); got != want {
		t.Fatalf("⟨%d,%d⟩ HC: wire %d oracle %d (%s)", i, m, got, want, adv)
	}
	if got, want := st.FailuresKnown(), g.FailuresKnown(i, m); got != want {
		t.Fatalf("⟨%d,%d⟩ failures: wire %d oracle %d (%s)", i, m, got, want, adv)
	}
	for j := 0; j < adv.N(); j++ {
		if got, want := st.LastSeen(j), g.LastSeen(i, m, j); got != want {
			t.Fatalf("⟨%d,%d⟩ lastSeen(%d): wire %d oracle %d (%s)", i, m, j, got, want, adv)
		}
		if got, want := st.KnownCrashRound(j), g.KnownCrashRound(i, m, j); got != want {
			t.Fatalf("⟨%d,%d⟩ crashRound(%d): wire %d oracle %d (%s)", i, m, j, got, want, adv)
		}
		for l := 0; l <= m; l++ {
			if got, want := st.Hidden(j, l), g.Hidden(i, m, j, l); got != want {
				t.Fatalf("⟨%d,%d⟩ hidden(%d,%d): wire %v oracle %v (%s)", i, m, j, l, got, want, adv)
			}
		}
	}
	gv := g.Vals(i, m)
	wv := st.Vals()
	if len(wv) != gv.Count() {
		t.Fatalf("⟨%d,%d⟩ Vals: wire %v oracle %s (%s)", i, m, wv, gv, adv)
	}
	for _, v := range wv {
		if !gv.Contains(v) {
			t.Fatalf("⟨%d,%d⟩ Vals: wire has %d, oracle %s (%s)", i, m, v, gv, adv)
		}
	}
	_ = k
}

func checkEquivalence(t *testing.T, adv *model.Adversary, p core.Params) {
	t.Helper()
	g := knowledge.New(adv, p.T/p.K+1)
	hook := func(m int, states []*State) {
		for i := 0; i < adv.N(); i++ {
			if adv.Pattern.Active(i, m) {
				stateMatchesOracle(t, g, states[i], i, m, p.K)
			}
		}
	}
	res, err := RunHooked(RuleOptmin, p, adv, hook)
	if err != nil {
		t.Fatal(err)
	}
	oracle := sim.RunWithGraph(core.MustOptmin(p), g)
	compareDecisions(t, adv, res, oracle, "Optmin")

	uRes, err := Run(RuleUPmin, p, adv)
	if err != nil {
		t.Fatal(err)
	}
	uOracle := sim.RunWithGraph(core.MustUPmin(p), g)
	compareDecisions(t, adv, uRes, uOracle, "u-Pmin")
}

func compareDecisions(t *testing.T, adv *model.Adversary, w *Result, o *sim.Result, label string) {
	t.Helper()
	for i := 0; i < adv.N(); i++ {
		wd, od := w.Decisions[i], o.Decisions[i]
		switch {
		case wd == nil && od == nil:
		case wd == nil || od == nil:
			t.Fatalf("%s process %d: wire %+v oracle %+v (%s)", label, i, wd, od, adv)
		case wd.Value != od.Value || wd.Time != od.Time:
			t.Fatalf("%s process %d: wire %d@%d oracle %d@%d (%s)",
				label, i, wd.Value, wd.Time, od.Value, od.Time, adv)
		}
	}
}

// TestWireEquivalenceExhaustive: Lemma 6's "identical decision times",
// checked at every node of every canonical adversary of a small space —
// including the full knowledge reconstruction, not just decisions.
func TestWireEquivalenceExhaustive(t *testing.T) {
	p := core.Params{N: 4, T: 2, K: 1}
	space := enum.Space{N: 4, T: 2, MaxRound: 2, Values: []model.Value{0, 1}}
	count := 0
	err := space.ForEach(func(adv *model.Adversary) bool {
		checkEquivalence(t, adv, p)
		count++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("verified wire/oracle equivalence on %d adversaries", count)
}

func TestWireEquivalenceExhaustiveK2(t *testing.T) {
	p := core.Params{N: 4, T: 2, K: 2}
	space := enum.Space{N: 4, T: 2, MaxRound: 2, Values: []model.Value{0, 2}}
	err := space.ForEach(func(adv *model.Adversary) bool {
		checkEquivalence(t, adv, p)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWireEquivalenceRandom stresses deeper runs (more rounds, more
// processes, k up to 3) on random adversaries.
func TestWireEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 250; trial++ {
		k := 1 + rng.Intn(3)
		n := 5 + rng.Intn(3)
		tB := min(4, n-1)
		adv := model.Random(rng, model.RandomParams{N: n, T: tB, MaxValue: k, MaxRound: 3})
		checkEquivalence(t, adv, core.Params{N: n, T: tB, K: k})
	}
}

func TestWireEquivalenceFamilies(t *testing.T) {
	col, err := model.Collapse(model.CollapseParams{K: 3, R: 3, ExtraCorrect: 4})
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalence(t, col, core.Params{N: col.N(), T: model.CollapseT(model.CollapseParams{K: 3, R: 3, ExtraCorrect: 4}), K: 3})

	sil, err := model.SilentRounds(2, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalence(t, sil, core.Params{N: sil.N(), T: 6, K: 2})

	hp, err := model.HiddenPath(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalence(t, hp, core.Params{N: 6, T: 4, K: 1})
}

// TestWireBitsBound: Lemma 6's O(n log n) bits per ordered pair. We assert
// the concrete budget: each sender emits ≤ n value facts, ≤ n myMiss
// facts, ≤ 2n crash facts, ≤ 2n seen facts and ≤ t+2 heartbeats, each
// fact ≤ 3·(varint ≤ 5 bytes): comfortably under C·n·log₂(n) bits with
// C = 64.
func TestWireBitsBound(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(10)
		tB := n - 1
		k := 1 + rng.Intn(2)
		adv := model.Random(rng, model.RandomParams{N: n, T: tB, MaxValue: k, MaxRound: 3})
		res, err := Run(RuleOptmin, core.Params{N: n, T: tB, K: k}, adv)
		if err != nil {
			t.Fatal(err)
		}
		bound := int(64 * float64(n) * math.Log2(float64(n)))
		if got := res.MaxPairBits(); got > bound {
			t.Fatalf("n=%d: max pair bits %d > %d (%s)", n, got, bound, adv)
		}
	}
}

// TestWireBitsScaling reports the growth of the per-pair maximum with n
// on the worst-case silent-rounds family (for EXPERIMENTS.md E10).
func TestWireBitsScaling(t *testing.T) {
	prevRatio := 0.0
	for _, rounds := range []int{2, 4, 6, 8} {
		adv, err := model.SilentRounds(2, rounds, 3)
		if err != nil {
			t.Fatal(err)
		}
		n := adv.N()
		res, err := Run(RuleOptmin, core.Params{N: n, T: 2 * rounds, K: 2}, adv)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(res.MaxPairBits()) / (float64(n) * math.Log2(float64(n)))
		t.Logf("n=%2d: max pair bits %5d, ratio to n·log n = %.2f", n, res.MaxPairBits(), ratio)
		if prevRatio > 0 && ratio > prevRatio*3 {
			t.Errorf("super-n·log n growth: ratio %f after %f", ratio, prevRatio)
		}
		prevRatio = ratio
	}
}

func TestRunValidation(t *testing.T) {
	adv := model.NewBuilder(3, 0).MustBuild()
	if _, err := Run(RuleOptmin, core.Params{N: 4, T: 1, K: 1}, adv); err == nil {
		t.Error("mismatched n must error")
	}
	if _, err := Run(RuleOptmin, core.Params{N: 3, T: 5, K: 1}, adv); err == nil {
		t.Error("invalid params must error")
	}
}

func BenchmarkWireCollapse(b *testing.B) {
	p := model.CollapseParams{K: 3, R: 5, ExtraCorrect: 4}
	adv, err := model.Collapse(p)
	if err != nil {
		b.Fatal(err)
	}
	params := core.Params{N: adv.N(), T: model.CollapseT(p), K: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(RuleOptmin, params, adv); err != nil {
			b.Fatal(err)
		}
	}
}
