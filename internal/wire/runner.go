package wire

import (
	"fmt"

	"setconsensus/internal/core"
	"setconsensus/internal/model"
)

// Rule selects which of the paper's protocols drives decisions over the
// compact state.
type Rule int

// The decision rules runnable over the wire protocol.
const (
	RuleOptmin Rule = iota + 1
	RuleUPmin
)

// Decision mirrors sim.Decision for cross-checking.
type Decision struct {
	Value model.Value
	Time  int
}

// Result is the outcome of a compact-protocol run with bit accounting.
type Result struct {
	Decisions []*Decision
	// BitsSent[i][j] counts the bits i sent to j over the whole run
	// (delivered messages; i ≠ j).
	BitsSent [][]int
}

// MaxPairBits returns the largest per-ordered-pair bit total.
func (r *Result) MaxPairBits() int {
	max := 0
	for _, row := range r.BitsSent {
		for _, b := range row {
			if b > max {
				max = b
			}
		}
	}
	return max
}

// Run executes the compact protocol under the given decision rule against
// an adversary, deterministically, and returns decisions plus per-link
// bit counts. Decisions must (and, per the equivalence tests, do) match
// the full-information oracle exactly.
func Run(rule Rule, p core.Params, adv *model.Adversary) (*Result, error) {
	return RunHooked(rule, p, adv, nil)
}

// RunHooked is Run with an inspection hook invoked after every time step
// (including time 0) with the current states; the equivalence tests use
// it to compare the reconstructed knowledge against the oracle at every
// node, not just at decisions.
func RunHooked(rule Rule, p core.Params, adv *model.Adversary, hook func(m int, states []*State)) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if adv.N() != p.N {
		return nil, fmt.Errorf("wire: adversary over %d processes, params say %d", adv.N(), p.N)
	}
	n := adv.N()
	horizon := p.T/p.K + 1

	states := make([]*State, n)
	for i := 0; i < n; i++ {
		states[i] = NewState(n, i, adv.Inputs[i])
	}
	res := &Result{Decisions: make([]*Decision, n), BitsSent: make([][]int, n)}
	for i := range res.BitsSent {
		res.BitsSent[i] = make([]int, n)
	}

	// Previous-time snapshots for u-Pmin's second rule and persistence.
	prevLow := make([]bool, n)
	prevHC := make([]int, n)
	prevMin := make([]model.Value, n)
	prevVals := make([][]model.Value, n)

	decide := func(i model.Proc, m int) {
		if res.Decisions[i] != nil {
			return
		}
		st := states[i]
		switch rule {
		case RuleOptmin:
			if st.Low(p.K) || st.HiddenCapacity() < p.K {
				res.Decisions[i] = &Decision{Value: st.Min(), Time: m}
			}
		case RuleUPmin:
			low, hc := st.Low(p.K), st.HiddenCapacity()
			if low || hc < p.K {
				if min := st.Min(); st.Persists(min, prevVals[i], p.T) {
					res.Decisions[i] = &Decision{Value: min, Time: m}
					return
				}
			}
			if m > 0 && (prevLow[i] || prevHC[i] < p.K) {
				res.Decisions[i] = &Decision{Value: prevMin[i], Time: m}
				return
			}
			if m == p.T/p.K+1 {
				res.Decisions[i] = &Decision{Value: st.Min(), Time: m}
			}
		}
	}

	snapshot := func() {
		for i := 0; i < n; i++ {
			if !adv.Pattern.Active(i, states[i].Time()) {
				continue
			}
			prevLow[i] = states[i].Low(p.K)
			prevHC[i] = states[i].HiddenCapacity()
			prevMin[i] = states[i].Min()
			prevVals[i] = states[i].Vals()
		}
	}

	// Time 0 decisions, then rounds 1..horizon.
	for i := 0; i < n; i++ {
		if adv.Pattern.Active(i, 0) {
			decide(i, 0)
		}
	}
	if hook != nil {
		hook(0, states)
	}
	for m := 1; m <= horizon; m++ {
		snapshot()
		// Collect outboxes of processes alive at send time m−1.
		outbox := make([][]Fact, n)
		for i := 0; i < n; i++ {
			if adv.Pattern.CrashRound(i) >= m { // sends (possibly partially) in round m
				outbox[i] = states[i].Outbox()
			}
		}
		// Deliver per the failure pattern, with bit accounting.
		for j := 0; j < n; j++ {
			if !adv.Pattern.Active(j, m) {
				continue
			}
			var msgs []Message
			for i := 0; i < n; i++ {
				if i == j || !adv.Pattern.Delivered(i, j, m) {
					continue
				}
				msgs = append(msgs, Message{From: i, Round: m, Facts: outbox[i]})
				res.BitsSent[i][j] += 8 * len(Encode(outbox[i]))
			}
			states[j].Deliver(m, msgs)
		}
		for i := 0; i < n; i++ {
			if adv.Pattern.Active(i, m) {
				decide(i, m)
			}
		}
		if hook != nil {
			hook(m, states)
		}
	}
	return res, nil
}
