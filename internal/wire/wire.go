// Package wire implements the efficient protocol of Appendix E (Lemma 6):
// instead of full-information views, processes gossip O(log n)-bit facts,
// with every process sending every other process O(n log n) bits over the
// whole run, while reconstructing exactly the knowledge the decision
// rules consume — seen/hidden classification, hidden capacity, minima,
// known failures, and persistence.
//
// Fact set (each reported a bounded number of times per sender):
//
//   - value(j)=v   — j's initial value; once per (sender, j);
//   - myMiss(j)=ρ  — "I personally first missed j's round-ρ message";
//     once per (sender, j). It is crash evidence (j crashed in a round
//     ≤ ρ) and, by its absence from a sender's stream, receipt evidence;
//   - crash(j)≤ρ   — relayed crash bound; emitted on improvement, so at
//     most twice per (sender, j) (bounds only take values c and c+1 for
//     true crash round c);
//   - seen(j)=ℓ    — "⟨j,ℓ⟩ is seen" (a message chain from it exists);
//     emitted once j is a known crasher and the bound improved: at most
//     twice per (sender, j);
//   - alive        — the empty heartbeat.
//
// Receipt deduction: links are reliable, so when i receives x's round-ρ
// message it holds x's complete personal fact stream; if that stream
// contains no myMiss(j)=ρ′ with ρ′ ≤ ρ−1, then x received j's round-(ρ−1)
// message, so ⟨j,ρ−2⟩ is seen by i — exactly the Lamport chain j → x → i
// of the full-information protocol, with no timing lag. Longer chains
// arrive as relayed seen facts, emitted the round after the deduction,
// which matches full-information propagation timing. The equivalence
// tests against the oracle simulator check this exhaustively.
package wire

import (
	"fmt"
	"sort"

	"setconsensus/internal/model"
)

// FactKind tags a gossiped fact.
type FactKind byte

// The wire fact kinds. Alive is represented by an empty fact list.
const (
	FactValue FactKind = iota + 1
	FactMyMiss
	FactCrash
	FactSeen
)

// Fact is one gossiped statement.
type Fact struct {
	Kind FactKind
	Proc model.Proc // the process the fact is about
	Arg  int        // value, miss round, crash bound, or seen layer
}

func (f Fact) String() string {
	switch f.Kind {
	case FactValue:
		return fmt.Sprintf("value(%d)=%d", f.Proc, f.Arg)
	case FactMyMiss:
		return fmt.Sprintf("myMiss(%d)=r%d", f.Proc, f.Arg)
	case FactCrash:
		return fmt.Sprintf("crash(%d)≤r%d", f.Proc, f.Arg)
	case FactSeen:
		return fmt.Sprintf("seen(%d)=%d", f.Proc, f.Arg)
	}
	return fmt.Sprintf("fact(%d,%d,%d)", f.Kind, f.Proc, f.Arg)
}

// Message is one round's fact bundle from one sender.
type Message struct {
	From  model.Proc
	Round int
	Facts []Fact
}

// senderTrack is what a process remembers about one peer's fact stream.
type senderTrack struct {
	// myMissRound[j] = round of this sender's personal myMiss(j) fact,
	// or NoCrash. Personal facts are never relayed, so absence up to a
	// received round is receipt evidence.
	myMissRound []int
	// vals[j] = value this sender has reported for j (−1 none); the
	// union equals the sender's Vals at its last send time.
	vals []model.Value
	// lastHeardRound = last round we received from this sender.
	lastHeardRound int
}

// State is the compact-protocol knowledge state of one process. It
// mirrors the queries of knowledge.Graph, reconstructed from facts.
type State struct {
	n    int
	self model.Proc
	time int

	val       []model.Value // known initial values, −1 unknown
	lastSeen  []int         // max ℓ with ⟨j,ℓ⟩ seen, −1 if none
	missKnown []int         // earliest known crash bound for j
	myMiss    []int         // personal first-miss round per j
	senders   []*senderTrack

	// emission bookkeeping (diff gossip)
	sentValue []bool
	sentSeen  []int
	sentCrash []int
	pending   []Fact
}

// NewState initializes process self of n processes with its input value.
func NewState(n int, self model.Proc, input model.Value) *State {
	s := &State{n: n, self: self}
	s.val = make([]model.Value, n)
	s.lastSeen = make([]int, n)
	s.missKnown = make([]int, n)
	s.myMiss = make([]int, n)
	s.sentValue = make([]bool, n)
	s.sentSeen = make([]int, n)
	s.sentCrash = make([]int, n)
	s.senders = make([]*senderTrack, n)
	for j := 0; j < n; j++ {
		s.val[j] = -1
		s.lastSeen[j] = -1
		s.missKnown[j] = model.NoCrash
		s.myMiss[j] = model.NoCrash
		s.sentSeen[j] = -1
		s.sentCrash[j] = model.NoCrash
		tr := &senderTrack{myMissRound: make([]int, n), vals: make([]model.Value, n), lastHeardRound: -1}
		for q := 0; q < n; q++ {
			tr.myMissRound[q] = model.NoCrash
			tr.vals[q] = -1
		}
		s.senders[j] = tr
	}
	s.val[self] = input
	s.lastSeen[self] = 0
	s.pending = append(s.pending, Fact{Kind: FactValue, Proc: self, Arg: input})
	return s
}

// Outbox returns the facts to send in round time+1 (the diff since the
// last send). An empty slice is the "alive" heartbeat.
func (s *State) Outbox() []Fact {
	out := s.pending
	s.pending = nil
	return out
}

// Deliver ingests the messages received at time `round` (sent in round
// `round`) and advances local time. Senders absent from msgs were missed
// this round.
func (s *State) Deliver(round int, msgs []Message) {
	heard := make([]bool, s.n)
	heard[s.self] = true
	for _, m := range msgs {
		heard[m.From] = true
	}
	s.lastSeen[s.self] = round

	// Personal misses observed this round.
	for j := 0; j < s.n; j++ {
		if heard[j] || s.myMiss[j] != model.NoCrash {
			continue
		}
		s.myMiss[j] = round
		s.pending = append(s.pending, Fact{Kind: FactMyMiss, Proc: j, Arg: round})
		s.noteCrash(j, round)
	}

	// Ingest facts, then apply stream deductions.
	for _, m := range msgs {
		tr := s.senders[m.From]
		tr.lastHeardRound = round
		for _, f := range m.Facts {
			s.ingest(m.From, f)
		}
	}
	for _, m := range msgs {
		x := m.From
		// Direct receipt: x's round-`round` message conveys ⟨x,round−1⟩.
		s.noteSeen(x, round-1)
		if round < 2 {
			continue
		}
		// Stream deduction: no personal miss of j in rounds ≤ round−1
		// means x received j's round-(round−1) message — the chain
		// j → x → self conveys ⟨j, round−2⟩.
		tr := s.senders[x]
		for j := 0; j < s.n; j++ {
			if j == x || j == s.self {
				continue
			}
			if tr.myMissRound[j] > round-1 {
				s.noteSeen(j, round-2)
			}
		}
	}
	s.time = round
}

// ingest merges one fact from sender x.
func (s *State) ingest(x model.Proc, f Fact) {
	tr := s.senders[x]
	switch f.Kind {
	case FactValue:
		tr.vals[f.Proc] = f.Arg
		if s.val[f.Proc] == -1 {
			s.val[f.Proc] = f.Arg
			if !s.sentValue[f.Proc] && f.Proc != s.self {
				s.pending = append(s.pending, Fact{Kind: FactValue, Proc: f.Proc, Arg: f.Arg})
				s.sentValue[f.Proc] = true
			}
		}
	case FactMyMiss:
		if f.Arg < tr.myMissRound[f.Proc] {
			tr.myMissRound[f.Proc] = f.Arg
		}
		s.noteCrash(f.Proc, f.Arg)
	case FactCrash:
		s.noteCrash(f.Proc, f.Arg)
	case FactSeen:
		s.noteSeen(f.Proc, f.Arg)
	}
}

// noteCrash merges crash evidence "j crashed in a round ≤ ρ", relaying
// improvements and unlocking seen-fact emission for j.
func (s *State) noteCrash(j model.Proc, rho int) {
	if rho < s.missKnown[j] {
		s.missKnown[j] = rho
	}
	if s.missKnown[j] < s.sentCrash[j] && j != s.self {
		s.pending = append(s.pending, Fact{Kind: FactCrash, Proc: j, Arg: s.missKnown[j]})
		s.sentCrash[j] = s.missKnown[j]
	}
	s.maybeEmitSeen(j)
}

// noteSeen merges "⟨j,ℓ⟩ is seen".
func (s *State) noteSeen(j model.Proc, l int) {
	if l > s.lastSeen[j] {
		s.lastSeen[j] = l
	}
	s.maybeEmitSeen(j)
}

// maybeEmitSeen relays the seen bound for known crashers. Before a crash
// is known, every receiver deduces the bound from streams alone; after,
// the bound is frozen, so at most two emissions occur per process.
func (s *State) maybeEmitSeen(j model.Proc) {
	if j == s.self || s.missKnown[j] == model.NoCrash {
		return
	}
	if s.lastSeen[j] > s.sentSeen[j] {
		s.pending = append(s.pending, Fact{Kind: FactSeen, Proc: j, Arg: s.lastSeen[j]})
		s.sentSeen[j] = s.lastSeen[j]
	}
}

// ---- knowledge queries (mirroring knowledge.Graph) ----

// Time returns the local time (rounds delivered).
func (s *State) Time() int { return s.time }

// Vals returns the set of known initial values in ascending order.
func (s *State) Vals() []model.Value {
	seen := map[model.Value]bool{}
	var out []model.Value
	for j := 0; j < s.n; j++ {
		if v := s.val[j]; v >= 0 && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

// Min returns the minimal known value.
func (s *State) Min() model.Value {
	min := model.Value(1 << 30)
	for j := 0; j < s.n; j++ {
		if s.val[j] >= 0 && s.val[j] < min {
			min = s.val[j]
		}
	}
	return min
}

// Low reports Min < k.
func (s *State) Low(k int) bool { return s.Min() < k }

// Hidden reports whether ⟨j,ℓ⟩ is hidden from the local process now:
// not seen (ℓ beyond the seen bound) and not provably crashed before ℓ.
func (s *State) Hidden(j model.Proc, l int) bool {
	if j == s.self {
		return false
	}
	return l > s.lastSeen[j] && s.missKnown[j] > l
}

// HiddenCount counts hidden layer-ℓ nodes.
func (s *State) HiddenCount(l int) int {
	c := 0
	for j := 0; j < s.n; j++ {
		if s.Hidden(j, l) {
			c++
		}
	}
	return c
}

// HiddenCapacity returns HC at the current time.
func (s *State) HiddenCapacity() int {
	hc := s.n
	for l := 0; l <= s.time; l++ {
		if c := s.HiddenCount(l); c < hc {
			hc = c
		}
	}
	return hc
}

// FailuresKnown counts processes with known crash evidence.
func (s *State) FailuresKnown() int {
	d := 0
	for j := 0; j < s.n; j++ {
		if s.missKnown[j] != model.NoCrash {
			d++
		}
	}
	return d
}

// KnownCrashRound returns the earliest known crash bound for j.
func (s *State) KnownCrashRound(j model.Proc) int { return s.missKnown[j] }

// LastSeen returns the seen bound for j.
func (s *State) LastSeen(j model.Proc) int { return s.lastSeen[j] }

// Persists implements Definition 3 on the compact state. valsPrev is the
// local Vals snapshot at time−1 (the caller keeps it; the first disjunct
// is "I knew v already").
func (s *State) Persists(v model.Value, valsPrev []model.Value, t int) bool {
	if s.time > 0 && containsValue(valsPrev, v) {
		return true
	}
	need := t - s.FailuresKnown()
	if need <= 0 {
		return true
	}
	if s.time == 0 {
		return false
	}
	count := 0
	for j := 0; j < s.n; j++ {
		if j == s.self {
			if containsValue(valsPrev, v) {
				count++
			}
			continue
		}
		tr := s.senders[j]
		if tr.lastHeardRound != s.time {
			continue // ⟨j,time−1⟩ not seen directly
		}
		for q := 0; q < s.n; q++ {
			if tr.vals[q] == v {
				count++
				break
			}
		}
	}
	return count >= need
}

func containsValue(vals []model.Value, v model.Value) bool {
	for _, x := range vals {
		if x == v {
			return true
		}
	}
	return false
}
