package wire

import (
	"encoding/binary"
	"fmt"
)

// Binary codec for fact messages: a varint fact count followed by
// (kind, proc, arg) varint triples. An "alive" heartbeat is the single
// byte 0x00. Every field is O(log n) bits, so with O(1) facts per
// (sender, subject) pair the per-link total is O(n log n) bits — the
// Lemma 6 budget, asserted by the accounting tests.

// Encode serializes a message's facts.
func Encode(facts []Fact) []byte {
	buf := make([]byte, 0, 1+len(facts)*6)
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	put(uint64(len(facts)))
	for _, f := range facts {
		put(uint64(f.Kind))
		put(uint64(f.Proc))
		put(uint64(f.Arg))
	}
	return buf
}

// Decode parses a fact bundle.
func Decode(b []byte) ([]Fact, error) {
	get := func() (uint64, error) {
		v, n := binary.Uvarint(b)
		if n <= 0 {
			return 0, fmt.Errorf("wire: truncated message")
		}
		b = b[n:]
		return v, nil
	}
	count, err := get()
	if err != nil {
		return nil, err
	}
	facts := make([]Fact, 0, count)
	for i := uint64(0); i < count; i++ {
		kind, err := get()
		if err != nil {
			return nil, err
		}
		proc, err := get()
		if err != nil {
			return nil, err
		}
		arg, err := get()
		if err != nil {
			return nil, err
		}
		facts = append(facts, Fact{Kind: FactKind(kind), Proc: int(proc), Arg: int(arg)})
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes", len(b))
	}
	return facts, nil
}
