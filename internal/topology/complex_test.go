package topology

import (
	"testing"
)

func TestAddClosesUnderFaces(t *testing.T) {
	c := NewComplex()
	c.Add(2, 0, 1) // unsorted on purpose
	if c.Size() != 7 {
		t.Fatalf("triangle closure has %d simplices, want 7", c.Size())
	}
	for _, face := range [][]int{{0}, {1}, {2}, {0, 1}, {0, 2}, {1, 2}, {0, 1, 2}} {
		if !c.Has(face...) {
			t.Errorf("missing face %v", face)
		}
	}
	if c.Dim() != 2 {
		t.Errorf("dim = %d", c.Dim())
	}
}

func TestAddDeduplicates(t *testing.T) {
	c := NewComplex()
	c.Add(0, 1)
	c.Add(1, 0)
	c.Add(0, 0, 1)
	if c.Size() != 3 {
		t.Fatalf("size = %d, want 3", c.Size())
	}
}

func TestVerticesAndSimplices(t *testing.T) {
	c := NewComplex()
	c.Add(0, 1, 2)
	c.Add(2, 3)
	if got := c.Vertices(); len(got) != 4 {
		t.Errorf("vertices = %v", got)
	}
	if got := c.Simplices(1); len(got) != 4 {
		t.Errorf("edges = %v", got)
	}
	if got := c.Simplices(5); got != nil {
		t.Errorf("no 5-simplices expected, got %v", got)
	}
}

func TestFacets(t *testing.T) {
	c := NewComplex()
	c.Add(0, 1, 2)
	c.Add(2, 3)
	f := c.Facets()
	if len(f) != 2 {
		t.Fatalf("facets = %v", f)
	}
	if c.IsPure() {
		t.Error("triangle+dangling edge is not pure")
	}
	pure := NewComplex()
	pure.Add(0, 1)
	pure.Add(1, 2)
	if !pure.IsPure() {
		t.Error("path graph is pure")
	}
}

func TestStar(t *testing.T) {
	c := NewComplex()
	c.Add(0, 1, 2)
	c.Add(2, 3)
	c.Add(3, 4)
	st := c.Star(2)
	if !st.Has(0, 1, 2) || !st.Has(2, 3) || !st.Has(0, 1) {
		t.Error("star must contain cofaces of 2 and their faces")
	}
	if st.Has(3, 4) {
		t.Error("star must not contain simplices avoiding 2's cofaces")
	}
}

func TestJoin(t *testing.T) {
	a := NewComplex()
	a.Add(0)
	b := NewComplex()
	b.Add(1, 2)
	j, err := a.Join(b)
	if err != nil {
		t.Fatal(err)
	}
	if !j.Has(0, 1, 2) {
		t.Error("join must contain the full triangle")
	}
	if _, err := a.Join(a); err == nil {
		t.Error("self-join must be rejected (shared vertices)")
	}
}

func TestBoundary(t *testing.T) {
	bd := Boundary([]int{0, 1, 2})
	if bd.Has(0, 1, 2) {
		t.Error("boundary must not contain the simplex itself")
	}
	for _, e := range [][]int{{0, 1}, {0, 2}, {1, 2}} {
		if !bd.Has(e...) {
			t.Errorf("boundary missing %v", e)
		}
	}
	if Boundary([]int{7}).Size() != 0 {
		t.Error("boundary of a vertex is empty")
	}
}

func TestBettiSphereAndDisk(t *testing.T) {
	// Full triangle (disk): β = (1, 0, 0); boundary circle: β = (1, 1).
	disk := FullSimplex([]int{0, 1, 2})
	if got := disk.BettiNumbers(2); got[0] != 1 || got[1] != 0 || got[2] != 0 {
		t.Errorf("disk Betti = %v", got)
	}
	circle := Boundary([]int{0, 1, 2})
	if got := circle.BettiNumbers(1); got[0] != 1 || got[1] != 1 {
		t.Errorf("circle Betti = %v", got)
	}
	// Boundary of a tetrahedron: the 2-sphere, β = (1, 0, 1).
	sphere := Boundary([]int{0, 1, 2, 3})
	if got := sphere.BettiNumbers(2); got[0] != 1 || got[1] != 0 || got[2] != 1 {
		t.Errorf("sphere Betti = %v", got)
	}
}

func TestBettiDisconnected(t *testing.T) {
	c := NewComplex()
	c.Add(0, 1)
	c.Add(2, 3)
	if got := c.BettiNumbers(1); got[0] != 2 || got[1] != 0 {
		t.Errorf("two segments Betti = %v", got)
	}
	if cc := c.ConnectedComponents(); cc != 2 {
		t.Errorf("components = %d", cc)
	}
	if c.IsHomologicallyQConnected(0) {
		t.Error("disconnected complex is not 0-connected")
	}
}

func TestConnectivityChecks(t *testing.T) {
	disk := FullSimplex([]int{0, 1, 2})
	if !disk.IsHomologicallyQConnected(1) {
		t.Error("disk is 1-connected")
	}
	circle := Boundary([]int{0, 1, 2})
	if !circle.IsHomologicallyQConnected(0) {
		t.Error("circle is 0-connected")
	}
	if circle.IsHomologicallyQConnected(1) {
		t.Error("circle is not 1-connected (β̃₁ = 1)")
	}
	if NewComplex().IsHomologicallyQConnected(0) {
		t.Error("empty complex is not connected")
	}
}

func TestEulerCharacteristic(t *testing.T) {
	if chi := FullSimplex([]int{0, 1, 2}).EulerCharacteristic(); chi != 1 {
		t.Errorf("disk χ = %d, want 1", chi)
	}
	if chi := Boundary([]int{0, 1, 2, 3}).EulerCharacteristic(); chi != 2 {
		t.Errorf("sphere χ = %d, want 2", chi)
	}
	if chi := Boundary([]int{0, 1, 2}).EulerCharacteristic(); chi != 0 {
		t.Errorf("circle χ = %d, want 0", chi)
	}
}
