// Package topology implements the combinatorial-topology substrate of the
// paper's second unbeatability proof (Appendix B.1): abstract simplicial
// complexes, joins and stars, the paper's subdivision Div σ and the
// barycentric subdivision, Sperner colorings and Sperner's lemma counting,
// GF(2) simplicial homology for connectivity checks, and protocol
// complexes built from enumerated runs (for Proposition 2).
package topology

import (
	"fmt"
	"sort"
	"strings"
)

// Complex is a finite abstract simplicial complex over integer vertices.
// It stores every simplex (closed under faces). The zero value is an
// empty complex ready to use.
type Complex struct {
	simplices map[string][]int // canonical key → sorted vertex slice
	dim       int
}

// NewComplex returns an empty complex.
func NewComplex() *Complex {
	return &Complex{simplices: map[string][]int{}, dim: -1}
}

func key(simplex []int) string {
	var b strings.Builder
	for i, v := range simplex {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	return b.String()
}

// normalize sorts and deduplicates a vertex list.
func normalize(simplex []int) []int {
	s := append([]int(nil), simplex...)
	sort.Ints(s)
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// Add inserts a simplex and all of its faces.
func (c *Complex) Add(simplex ...int) {
	s := normalize(simplex)
	if len(s) == 0 {
		return
	}
	c.addClosed(s)
}

func (c *Complex) addClosed(s []int) {
	k := key(s)
	if _, ok := c.simplices[k]; ok {
		return
	}
	c.simplices[k] = s
	if len(s)-1 > c.dim {
		c.dim = len(s) - 1
	}
	if len(s) == 1 {
		return
	}
	face := make([]int, len(s)-1)
	for drop := range s {
		copy(face, s[:drop])
		copy(face[drop:], s[drop+1:])
		c.addClosed(append([]int(nil), face...))
	}
}

// AddComplex inserts every simplex of o.
func (c *Complex) AddComplex(o *Complex) {
	for _, s := range o.simplices {
		c.addClosed(append([]int(nil), s...))
	}
}

// Has reports whether the given simplex is present.
func (c *Complex) Has(simplex ...int) bool {
	_, ok := c.simplices[key(normalize(simplex))]
	return ok
}

// Dim returns the dimension of the complex (−1 if empty).
func (c *Complex) Dim() int { return c.dim }

// Size returns the number of simplices (all dimensions).
func (c *Complex) Size() int { return len(c.simplices) }

// Simplices returns all simplices of the given dimension, in a
// deterministic order.
func (c *Complex) Simplices(dim int) [][]int {
	var out [][]int
	for _, s := range c.simplices {
		if len(s)-1 == dim {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return key(out[i]) < key(out[j]) })
	return out
}

// Vertices returns the vertex set in increasing order.
func (c *Complex) Vertices() []int {
	var out []int
	for _, s := range c.simplices {
		if len(s) == 1 {
			out = append(out, s[0])
		}
	}
	sort.Ints(out)
	return out
}

// Facets returns the inclusion-maximal simplices.
func (c *Complex) Facets() [][]int {
	var out [][]int
	for _, s := range c.simplices {
		maximal := true
		for _, t := range c.simplices {
			if len(t) > len(s) && contains(t, s) {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return key(out[i]) < key(out[j]) })
	return out
}

// contains reports whether sorted slice t contains sorted slice s.
func contains(t, s []int) bool {
	i := 0
	for _, v := range s {
		for i < len(t) && t[i] < v {
			i++
		}
		if i == len(t) || t[i] != v {
			return false
		}
	}
	return true
}

// IsPure reports whether all facets share the complex's dimension.
func (c *Complex) IsPure() bool {
	for _, f := range c.Facets() {
		if len(f)-1 != c.dim {
			return false
		}
	}
	return true
}

// Star returns the star complex St(v, c): every simplex containing v,
// together with all faces (Appendix B.1.1).
func (c *Complex) Star(v int) *Complex {
	st := NewComplex()
	for _, s := range c.simplices {
		if sortedContains(s, v) {
			st.addClosed(append([]int(nil), s...))
		}
	}
	return st
}

func sortedContains(s []int, v int) bool {
	i := sort.SearchInts(s, v)
	return i < len(s) && s[i] == v
}

// Join returns c ∗ o for vertex-disjoint complexes: all unions σ ∪ τ with
// σ ∈ c (or empty) and τ ∈ o (or empty).
func (c *Complex) Join(o *Complex) (*Complex, error) {
	for _, v := range c.Vertices() {
		if o.Has(v) {
			return nil, fmt.Errorf("topology: join operands share vertex %d", v)
		}
	}
	out := NewComplex()
	out.AddComplex(c)
	out.AddComplex(o)
	for _, s := range c.simplices {
		for _, t := range o.simplices {
			out.Add(append(append([]int(nil), s...), t...)...)
		}
	}
	return out, nil
}

// Boundary returns Bd σ for a single simplex: the complex of its proper
// faces.
func Boundary(simplex []int) *Complex {
	s := normalize(simplex)
	c := NewComplex()
	if len(s) <= 1 {
		return c
	}
	for drop := range s {
		face := make([]int, 0, len(s)-1)
		face = append(face, s[:drop]...)
		face = append(face, s[drop+1:]...)
		c.Add(face...)
	}
	return c
}

// FullSimplex returns the complex of one simplex and all its faces.
func FullSimplex(simplex []int) *Complex {
	c := NewComplex()
	c.Add(simplex...)
	return c
}
