package topology

import (
	"testing"

	"setconsensus/internal/enum"
	"setconsensus/internal/knowledge"
	"setconsensus/internal/model"
)

func TestProtocolComplexBasic(t *testing.T) {
	space := enum.Space{N: 3, T: 1, MaxRound: 1, Values: []model.Value{0, 1}}
	pc, err := BuildProtocolComplex(space, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pc.NumVertices() == 0 || pc.Complex.Size() == 0 {
		t.Fatal("empty protocol complex")
	}
	// The failure-free facet has all 3 processes; runs with a crash in
	// round 1 leave 2 active — the complex has dimension 2.
	if pc.Complex.Dim() != 2 {
		t.Errorf("dim = %d, want 2", pc.Complex.Dim())
	}
	// Vertex lookup round-trips.
	adv := model.NewBuilder(3, 0).MustBuild()
	g := knowledge.New(adv, 1)
	id, ok := pc.Vertex(g, 0)
	if !ok {
		t.Fatal("failure-free state must appear in the complex")
	}
	if pc.Label(id).Proc != 0 {
		t.Errorf("label = %+v", pc.Label(id))
	}
}

// TestProp2StarConnectivityK1 sweeps the k=1 statement of Proposition 2:
// for every local state with hidden capacity ≥ 1 at time m, the star
// complex is 0-connected (here checked exactly via components as well as
// homologically).
func TestProp2StarConnectivityK1(t *testing.T) {
	// At time 1 with one crash, HC⟨i,1⟩ = 1 states exist (a round-1
	// crasher delivering only to the third process is hidden at layer 0,
	// and the third process itself is hidden at layer 1).
	space := enum.Space{N: 3, T: 1, MaxRound: 1, Values: []model.Value{0, 1}}
	m := 1
	type node struct {
		g *knowledge.Graph
		i model.Proc
	}
	var qualifying []node
	pc, err := BuildProtocolComplex(space, m, func(g *knowledge.Graph) {
		for i := 0; i < g.Adv.N(); i++ {
			if g.Adv.Pattern.Active(i, m) && g.HiddenCapacity(i, m) >= 1 {
				qualifying = append(qualifying, node{g, i})
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(qualifying) == 0 {
		t.Fatal("no qualifying nodes; space too small")
	}
	checked := map[int]bool{}
	for _, q := range qualifying {
		v, ok := pc.Vertex(q.g, q.i)
		if !ok {
			t.Fatalf("qualifying state missing from complex")
		}
		if checked[v] {
			continue
		}
		checked[v] = true
		conn, st := pc.StarConnectivity(v, 1)
		if !conn {
			t.Errorf("star of vertex %d (proc %d) not 0-connected", v, pc.Label(v).Proc)
		}
		if cc := st.ConnectedComponents(); cc != 1 {
			t.Errorf("star of vertex %d has %d components", v, cc)
		}
	}
	t.Logf("checked %d distinct HC≥1 states (of %d vertices)", len(checked), pc.NumVertices())
}

// TestProp2StarConnectivityK2 sweeps Proposition 2 for k=2 at time 1 over
// a 5-process space: every state with HC ≥ 2 has a 1-connected star
// (vanishing reduced β₀ and β₁ over GF(2)).
func TestProp2StarConnectivityK2(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol-complex sweep skipped in -short")
	}
	space := enum.Space{N: 5, T: 2, MaxRound: 1, Values: []model.Value{0, 2}}
	m := 1
	type node struct {
		g *knowledge.Graph
		i model.Proc
	}
	var qualifying []node
	pc, err := BuildProtocolComplex(space, m, func(g *knowledge.Graph) {
		for i := 0; i < g.Adv.N(); i++ {
			if g.Adv.Pattern.Active(i, m) && g.HiddenCapacity(i, m) >= 2 {
				qualifying = append(qualifying, node{g, i})
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(qualifying) == 0 {
		t.Fatal("no qualifying nodes; space too small")
	}
	checked := map[int]bool{}
	for _, q := range qualifying {
		v, ok := pc.Vertex(q.g, q.i)
		if !ok {
			t.Fatal("qualifying state missing from complex")
		}
		if checked[v] {
			continue
		}
		checked[v] = true
		if conn, _ := pc.StarConnectivity(v, 2); !conn {
			t.Errorf("star of HC≥2 vertex %d (proc %d) not 1-connected", v, pc.Label(v).Proc)
		}
	}
	t.Logf("checked %d distinct HC≥2 states (of %d vertices)", len(checked), pc.NumVertices())
}
