package topology

import (
	"fmt"

	"setconsensus/internal/enum"
	"setconsensus/internal/knowledge"
	"setconsensus/internal/model"
)

// ProtocolComplex is the m-round protocol complex Pm of the
// full-information protocol over an adversary space: one vertex per
// distinct local state ⟨process, view⟩ at time m, one facet per run —
// the global state restricted to its active processes.
type ProtocolComplex struct {
	Time    int
	Complex *Complex

	ids    map[string]int
	labels []VertexLabel
}

// VertexLabel identifies a protocol-complex vertex.
type VertexLabel struct {
	Proc        model.Proc
	Fingerprint string
}

// BuildProtocolComplex enumerates the space and assembles Pm. The
// callback, when non-nil, receives each run's knowledge graph so callers
// can collect per-node statistics (e.g. hidden capacities) in the same
// pass.
func BuildProtocolComplex(space enum.Space, m int, visit func(g *knowledge.Graph)) (*ProtocolComplex, error) {
	pc := &ProtocolComplex{Time: m, Complex: NewComplex(), ids: map[string]int{}}
	err := space.ForEach(func(adv *model.Adversary) bool {
		g := knowledge.New(adv, m)
		if visit != nil {
			visit(g)
		}
		var facet []int
		for i := 0; i < adv.N(); i++ {
			if !adv.Pattern.Active(i, m) {
				continue
			}
			facet = append(facet, pc.intern(i, g.Fingerprint(i, m)))
		}
		if len(facet) > 0 {
			pc.Complex.Add(facet...)
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return pc, nil
}

// intern returns the vertex id for a (process, view) pair.
func (pc *ProtocolComplex) intern(i model.Proc, fp string) int {
	k := fmt.Sprintf("%d|%s", i, fp)
	if id, ok := pc.ids[k]; ok {
		return id
	}
	id := len(pc.labels)
	pc.ids[k] = id
	pc.labels = append(pc.labels, VertexLabel{Proc: i, Fingerprint: fp})
	return id
}

// Vertex looks up the vertex id of ⟨i,m⟩'s local state in g, if that
// state occurs in the complex.
func (pc *ProtocolComplex) Vertex(g *knowledge.Graph, i model.Proc) (int, bool) {
	id, ok := pc.ids[fmt.Sprintf("%d|%s", i, g.Fingerprint(i, pc.Time))]
	return id, ok
}

// Label returns the label of a vertex id.
func (pc *ProtocolComplex) Label(id int) VertexLabel { return pc.labels[id] }

// NumVertices returns the number of distinct local states.
func (pc *ProtocolComplex) NumVertices() int { return len(pc.labels) }

// StarConnectivity extracts St(v, Pm) and reports whether it is
// homologically (k−1)-connected (vanishing reduced GF(2) Betti numbers in
// dimensions 0..k−1), the computational proxy used for Proposition 2.
func (pc *ProtocolComplex) StarConnectivity(v, k int) (bool, *Complex) {
	st := pc.Complex.Star(v)
	return st.IsHomologicallyQConnected(k - 1), st
}
