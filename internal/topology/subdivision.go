package topology

import (
	"fmt"
	"sort"
	"strings"
)

// Subdivision is a subdivision of one base simplex σ, with carrier
// tracking: every subdivision vertex maps to the smallest face of σ it
// subdivides. Vertex ids are interned; original vertices of σ keep their
// ids, face-center vertices get fresh ones.
type Subdivision struct {
	Base    []int // σ, sorted
	Complex *Complex
	// Carrier[v] is Car(v): the face of σ (sorted) carrying vertex v.
	Carrier map[int][]int

	nextID  int
	centers map[string]int // face key → center vertex id
}

func newSubdivision(base []int) *Subdivision {
	b := normalize(base)
	maxV := 0
	for _, v := range b {
		if v > maxV {
			maxV = v
		}
	}
	s := &Subdivision{
		Base:    b,
		Complex: NewComplex(),
		Carrier: map[int][]int{},
		nextID:  maxV + 1,
		centers: map[string]int{},
	}
	for _, v := range b {
		s.Carrier[v] = []int{v}
	}
	return s
}

// center returns (allocating if needed) the center vertex of a face.
func (s *Subdivision) center(face []int) int {
	k := key(face)
	if id, ok := s.centers[k]; ok {
		return id
	}
	id := s.nextID
	s.nextID++
	s.centers[k] = id
	s.Carrier[id] = append([]int(nil), face...)
	return id
}

// CenterOf returns the center vertex allocated for a face, if any.
func (s *Subdivision) CenterOf(face ...int) (int, bool) {
	id, ok := s.centers[key(normalize(face))]
	return id, ok
}

// DivK builds the paper's subdivision Div σ of σ = {0,…,k} (Appendix
// B.1.2): faces not containing k — and the edge {0,k} — stay whole; every
// other face containing k is coned from a fresh center vertex over the
// subdivision of its boundary.
func DivK(k int) (*Subdivision, error) {
	if k < 1 {
		return nil, fmt.Errorf("topology: DivK needs k ≥ 1, got %d", k)
	}
	base := make([]int, k+1)
	for i := range base {
		base[i] = i
	}
	s := newSubdivision(base)
	s.divFace(base, k)
	return s, nil
}

// divFace returns nothing but populates s.Complex with the subdivision of
// the given face; it returns the list of simplices (vertex sets) that
// subdivide the face, for use in cones over boundaries.
func (s *Subdivision) divFace(face []int, k int) [][]int {
	if len(face) == 1 {
		s.Complex.Add(face[0])
		return [][]int{{face[0]}}
	}
	whole := !sortedContains(face, k) || (len(face) == 2 && face[0] == 0 && face[1] == k)
	if whole {
		s.Complex.Add(face...)
		return [][]int{append([]int(nil), face...)}
	}
	// Cone: fresh center over the subdivided boundary.
	c := s.center(face)
	var out [][]int
	for drop := range face {
		sub := make([]int, 0, len(face)-1)
		sub = append(sub, face[:drop]...)
		sub = append(sub, face[drop+1:]...)
		for _, piece := range s.divFace(sub, k) {
			coned := append(append([]int(nil), piece...), c)
			s.Complex.Add(coned...)
			out = append(out, normalize(coned))
		}
	}
	return out
}

// Barycentric builds the (first) barycentric subdivision of an arbitrary
// simplex: vertices are the nonempty faces, simplices are chains of faces
// under strict inclusion.
func Barycentric(simplex []int) *Subdivision {
	base := normalize(simplex)
	s := newSubdivision(base)
	// Allocate a vertex per face: original vertices keep their id, larger
	// faces get centers.
	faces := allFaces(base)
	vertexOf := func(face []int) int {
		if len(face) == 1 {
			return face[0]
		}
		return s.center(face)
	}
	// Chains of faces: enumerate maximal chains (flags) recursively; each
	// flag of length d+1 is a d-simplex, and the complex closure adds the
	// rest.
	var extend func(chain [][]int, last []int)
	extend = func(chain [][]int, last []int) {
		if len(last) == len(base) {
			ids := make([]int, len(chain))
			for i, f := range chain {
				ids[i] = vertexOf(f)
			}
			s.Complex.Add(ids...)
			return
		}
		for _, f := range faces {
			if len(f) == len(last)+1 && contains(f, last) {
				extend(append(chain, f), f)
			}
		}
	}
	for _, f := range faces {
		if len(f) == 1 {
			extend([][]int{f}, f)
		}
	}
	return s
}

// allFaces lists the nonempty faces of a sorted simplex.
func allFaces(base []int) [][]int {
	var out [][]int
	n := len(base)
	for mask := 1; mask < 1<<uint(n); mask++ {
		var f []int
		for b := 0; b < n; b++ {
			if mask&(1<<uint(b)) != 0 {
				f = append(f, base[b])
			}
		}
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		return key(out[i]) < key(out[j])
	})
	return out
}

// CheckSubdivision verifies structural sanity: the complex is pure of
// dim |σ|−1, every vertex's carrier is a face of σ containing it
// geometrically (carrier membership for originals), and every facet's
// vertices have carriers whose union is σ-compatible.
func (s *Subdivision) CheckSubdivision() error {
	d := len(s.Base) - 1
	if s.Complex.Dim() != d {
		return fmt.Errorf("topology: subdivision of %d-simplex has dim %d", d, s.Complex.Dim())
	}
	if !s.Complex.IsPure() {
		return fmt.Errorf("topology: subdivision is not pure")
	}
	for _, v := range s.Complex.Vertices() {
		car, ok := s.Carrier[v]
		if !ok {
			return fmt.Errorf("topology: vertex %d has no carrier", v)
		}
		if !contains(s.Base, car) {
			return fmt.Errorf("topology: carrier %v of %d is not a face of σ", car, v)
		}
	}
	return nil
}

// String renders the subdivision compactly for debugging.
func (s *Subdivision) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Div%v: %d simplices, %d vertices", s.Base, s.Complex.Size(), len(s.Complex.Vertices()))
	return b.String()
}
