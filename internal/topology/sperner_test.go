package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDivKStructure(t *testing.T) {
	// k = 2 (Fig. 5): vertices 0,1,2 plus centers for {1,2} and {0,1,2};
	// exactly 4 triangles.
	s, err := DivK(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CheckSubdivision(); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Complex.Vertices()); got != 5 {
		t.Errorf("vertices = %d, want 5", got)
	}
	if got := len(s.Complex.Simplices(2)); got != 4 {
		t.Errorf("triangles = %d, want 4", got)
	}
	if _, ok := s.CenterOf(1, 2); !ok {
		t.Error("edge {1,2} must have a center")
	}
	if _, ok := s.CenterOf(0, 2); ok {
		t.Error("edge {0,2} = {0,k} must stay whole")
	}
	if _, ok := s.CenterOf(0, 1); ok {
		t.Error("edge {0,1} (k ∉ σ′) must stay whole")
	}
	if _, ok := s.CenterOf(0, 1, 2); !ok {
		t.Error("the full face must have a center")
	}
}

func TestDivK1(t *testing.T) {
	// k = 1: σ = {0,1}; the only faces containing k=1 are {1} and {0,1},
	// and {0,1} = {0,k} stays whole — Div σ = σ itself.
	s, err := DivK(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CheckSubdivision(); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Complex.Simplices(1)); got != 1 {
		t.Errorf("edges = %d, want 1", got)
	}
	if _, err := DivK(0); err == nil {
		t.Error("k=0 must be rejected")
	}
}

func TestDivK3Valid(t *testing.T) {
	s, err := DivK(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CheckSubdivision(); err != nil {
		t.Fatal(err)
	}
	// A subdivision of the solid 3-simplex is contractible-like:
	// β = (1,0,0,0).
	if got := s.Complex.BettiNumbers(3); got[0] != 1 || got[1] != 0 || got[2] != 0 || got[3] != 0 {
		t.Errorf("Div σ (k=3) Betti = %v", got)
	}
}

func TestBarycentricStructure(t *testing.T) {
	s := Barycentric([]int{0, 1, 2})
	if err := s.CheckSubdivision(); err != nil {
		t.Fatal(err)
	}
	// Barycentric subdivision of a triangle: 7 vertices, 6 triangles.
	if got := len(s.Complex.Vertices()); got != 7 {
		t.Errorf("vertices = %d, want 7", got)
	}
	if got := len(s.Complex.Simplices(2)); got != 6 {
		t.Errorf("triangles = %d, want 6", got)
	}
	if got := s.Complex.BettiNumbers(2); got[0] != 1 || got[1] != 0 || got[2] != 0 {
		t.Errorf("Betti = %v", got)
	}
}

func TestSpernerCanonical(t *testing.T) {
	for k := 1; k <= 3; k++ {
		s, err := DivK(k)
		if err != nil {
			t.Fatal(err)
		}
		n, err := s.SpernerCount(s.CanonicalColoring())
		if err != nil {
			t.Fatal(err)
		}
		if n%2 == 0 {
			t.Errorf("k=%d: canonical Sperner count %d is even", k, n)
		}
	}
}

func TestSpernerRejectsInvalidColoring(t *testing.T) {
	s, err := DivK(2)
	if err != nil {
		t.Fatal(err)
	}
	c := s.CanonicalColoring()
	c[0] = 1 // vertex 0's carrier is {0}; coloring it 1 breaks Sperner
	if _, err := s.SpernerCount(c); err == nil {
		t.Error("invalid coloring must be rejected")
	}
	delete(c, 0)
	if _, err := s.SpernerCount(c); err == nil {
		t.Error("partial coloring must be rejected")
	}
}

// Property (Lemma 4): every random Sperner coloring of DivK and of the
// barycentric subdivision yields an odd number of fully colored simplices.
func TestQuickSpernerOddness(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := 1 + int(kRaw%3)
		s, err := DivK(k)
		if err != nil {
			return false
		}
		n, err := s.SpernerCount(s.RandomColoring(rand.New(rand.NewSource(seed))))
		if err != nil {
			return false
		}
		return n%2 == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickSpernerOddnessBarycentric(t *testing.T) {
	f := func(seed int64) bool {
		s := Barycentric([]int{0, 1, 2})
		n, err := s.SpernerCount(s.RandomColoring(rand.New(rand.NewSource(seed))))
		if err != nil {
			return false
		}
		return n%2 == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDivK3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := DivK(3)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.SpernerCount(s.CanonicalColoring()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBettiSphere(b *testing.B) {
	sphere := Boundary([]int{0, 1, 2, 3, 4})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sphere.BettiNumbers(3)
	}
}
