package topology

import "setconsensus/internal/bitset"

// GF(2) simplicial homology. Over GF(2) the boundary operator needs no
// signs, and Betti numbers follow from boundary-matrix ranks:
//
//	β_p = dim ker ∂_p − rank ∂_{p+1}
//	    = (#p-simplices − rank ∂_p) − rank ∂_{p+1}.
//
// Vanishing REDUCED homology in dimensions 0..q is the standard
// computational proxy for q-connectivity (it is implied by it); see
// DESIGN.md §5 for the substitution note on Proposition 2.

// BettiNumbers returns the GF(2) Betti numbers β_0..β_maxDim of the
// complex. An empty complex yields all zeros.
func (c *Complex) BettiNumbers(maxDim int) []int {
	out := make([]int, maxDim+1)
	if c.Size() == 0 {
		return out
	}
	// Index simplices per dimension.
	index := make([]map[string]int, maxDim+2)
	counts := make([]int, maxDim+2)
	for d := 0; d <= maxDim+1; d++ {
		index[d] = map[string]int{}
		for i, s := range c.Simplices(d) {
			index[d][key(s)] = i
		}
		counts[d] = len(index[d])
	}
	// rank[d] = rank of ∂_d (maps d-simplices to (d−1)-simplices);
	// ∂_0 = 0.
	rank := make([]int, maxDim+2)
	for d := 1; d <= maxDim+1; d++ {
		if counts[d] == 0 || counts[d-1] == 0 {
			continue
		}
		rows := make([]*bitset.Set, 0, counts[d])
		for _, s := range c.Simplices(d) {
			row := bitset.New(counts[d-1])
			face := make([]int, len(s)-1)
			for drop := range s {
				copy(face, s[:drop])
				copy(face[drop:], s[drop+1:])
				row.Add(index[d-1][key(face)])
			}
			rows = append(rows, row)
		}
		rank[d] = gf2Rank(rows, counts[d-1])
	}
	for p := 0; p <= maxDim; p++ {
		if counts[p] == 0 {
			out[p] = 0
			continue
		}
		out[p] = counts[p] - rank[p] - rank[p+1]
	}
	return out
}

// gf2Rank computes the rank of a GF(2) matrix given as bitset rows over
// `cols` columns, by Gaussian elimination.
func gf2Rank(rows []*bitset.Set, cols int) int {
	rank := 0
	for col := 0; col < cols && rank < len(rows); col++ {
		pivot := -1
		for r := rank; r < len(rows); r++ {
			if rows[r].Contains(col) {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		rows[rank], rows[pivot] = rows[pivot], rows[rank]
		for r := 0; r < len(rows); r++ {
			if r != rank && rows[r].Contains(col) {
				xorInto(rows[r], rows[rank])
			}
		}
		rank++
	}
	return rank
}

// xorInto computes dst ^= src over the shared column universe.
func xorInto(dst, src *bitset.Set) {
	// a ^ b = (a ∪ b) ∖ (a ∩ b)
	inter := bitset.Intersect(dst, src)
	dst.UnionWith(src)
	dst.SubtractWith(inter)
}

// ReducedBetti returns the reduced GF(2) Betti numbers β̃_0..β̃_maxDim:
// β̃_0 = β_0 − 1 (for nonempty complexes), β̃_p = β_p otherwise.
func (c *Complex) ReducedBetti(maxDim int) []int {
	b := c.BettiNumbers(maxDim)
	if c.Size() > 0 && maxDim >= 0 {
		b[0]--
	}
	return b
}

// IsHomologicallyQConnected reports whether all reduced Betti numbers in
// dimensions 0..q vanish — the computational proxy for q-connectivity.
// q = −1 is vacuous (nonempty complex).
func (c *Complex) IsHomologicallyQConnected(q int) bool {
	if c.Size() == 0 {
		return false
	}
	if q < 0 {
		return true
	}
	for _, b := range c.ReducedBetti(q) {
		if b != 0 {
			return false
		}
	}
	return true
}

// ConnectedComponents counts connected components of the 1-skeleton via
// union-find — exact 0-connectivity, cross-checking β_0.
func (c *Complex) ConnectedComponents() int {
	verts := c.Vertices()
	if len(verts) == 0 {
		return 0
	}
	idx := make(map[int]int, len(verts))
	for i, v := range verts {
		idx[v] = i
	}
	parent := make([]int, len(verts))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range c.Simplices(1) {
		a, b := find(idx[e[0]]), find(idx[e[1]])
		if a != b {
			parent[a] = b
		}
	}
	seen := map[int]bool{}
	for i := range parent {
		seen[find(i)] = true
	}
	return len(seen)
}

// EulerCharacteristic returns Σ (−1)^p · #p-simplices.
func (c *Complex) EulerCharacteristic() int {
	chi := 0
	for d := 0; d <= c.dim; d++ {
		n := len(c.Simplices(d))
		if d%2 == 0 {
			chi += n
		} else {
			chi -= n
		}
	}
	return chi
}
