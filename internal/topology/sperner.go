package topology

import (
	"fmt"
	"math/rand"
)

// Sperner machinery (Lemma 4): a Sperner coloring of a subdivision maps
// every vertex to a vertex of its carrier; Sperner's lemma guarantees an
// odd number of fully colored top-dimensional simplices.

// Coloring maps subdivision vertices to colors (vertices of σ).
type Coloring map[int]int

// IsSperner reports whether the coloring is a Sperner coloring of s:
// every vertex colored, with a color from its carrier.
func (s *Subdivision) IsSperner(c Coloring) error {
	for _, v := range s.Complex.Vertices() {
		col, ok := c[v]
		if !ok {
			return fmt.Errorf("topology: vertex %d uncolored", v)
		}
		if !sortedContains(s.Carrier[v], col) {
			return fmt.Errorf("topology: vertex %d colored %d ∉ carrier %v", v, col, s.Carrier[v])
		}
	}
	return nil
}

// FullyColored returns the top-dimensional simplices whose vertices carry
// pairwise distinct colors.
func (s *Subdivision) FullyColored(c Coloring) [][]int {
	d := len(s.Base) - 1
	var out [][]int
	for _, simplex := range s.Complex.Simplices(d) {
		seen := map[int]bool{}
		full := true
		for _, v := range simplex {
			if seen[c[v]] {
				full = false
				break
			}
			seen[c[v]] = true
		}
		if full {
			out = append(out, simplex)
		}
	}
	return out
}

// SpernerCount verifies the coloring is Sperner and returns the number of
// fully colored top simplices (odd, by Sperner's lemma — callers assert).
func (s *Subdivision) SpernerCount(c Coloring) (int, error) {
	if err := s.IsSperner(c); err != nil {
		return 0, err
	}
	return len(s.FullyColored(c)), nil
}

// CanonicalColoring colors every vertex with the minimum of its carrier —
// always a valid Sperner coloring.
func (s *Subdivision) CanonicalColoring() Coloring {
	c := Coloring{}
	for _, v := range s.Complex.Vertices() {
		c[v] = s.Carrier[v][0]
	}
	return c
}

// RandomColoring draws a uniform Sperner coloring (each vertex gets a
// uniformly random element of its carrier), deterministic given rng.
func (s *Subdivision) RandomColoring(rng *rand.Rand) Coloring {
	c := Coloring{}
	for _, v := range s.Complex.Vertices() {
		car := s.Carrier[v]
		c[v] = car[rng.Intn(len(car))]
	}
	return c
}
