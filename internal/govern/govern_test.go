package govern

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilGovernorIsNoOp(t *testing.T) {
	var g *Governor
	g.Grow(100)
	g.Shrink(50)
	g.NoteShed()
	g.NotePanic()
	g.NoteWatchdog()
	if g.Live() != 0 {
		t.Fatalf("nil governor Live = %d", g.Live())
	}
	if g.Shedding() {
		t.Fatal("nil governor sheds")
	}
	if !g.Retain() {
		t.Fatal("nil governor refuses retention")
	}
	if err := g.Admit(1 << 40); err != nil {
		t.Fatalf("nil governor rejects: %v", err)
	}
	if g.Stats() != (Stats{}) {
		t.Fatalf("nil governor stats = %+v", g.Stats())
	}
}

func TestCeilings(t *testing.T) {
	g := New(100, 200)

	g.Grow(90)
	if g.Shedding() {
		t.Fatal("shedding below the soft ceiling")
	}
	if !g.Retain() {
		t.Fatal("retention refused below the soft ceiling")
	}
	if err := g.Admit(0); err != nil {
		t.Fatalf("admit under both ceilings: %v", err)
	}

	g.Grow(20) // live 110 > soft 100
	if !g.Shedding() {
		t.Fatal("not shedding above the soft ceiling")
	}
	if g.Retain() {
		t.Fatal("retaining above the soft ceiling")
	}
	if err := g.Admit(0); err != nil {
		t.Fatalf("soft ceiling must not reject admissions: %v", err)
	}
	if err := g.Admit(100); !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("admit over the hard ceiling = %v, want ErrMemoryBudget", err)
	}

	g.Grow(100) // live 210 > hard 200
	if err := g.Admit(0); !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("admit at live>hard = %v, want ErrMemoryBudget", err)
	}

	g.Shrink(150) // live 60: the admission level clears immediately...
	if err := g.Admit(0); err != nil {
		t.Fatalf("still rejecting after shrink: %v", err)
	}
	if g.Live() != 60 {
		t.Fatalf("Live = %d, want 60", g.Live())
	}
	// ...but the shed latch holds for ShedHoldoff past the last
	// over-ceiling observation, then decays on its own.
	if !g.Shedding() {
		t.Fatal("shed latch released on the first dip below the ceiling")
	}
	waitNotShedding(t, g)
}

// waitNotShedding polls until the shed latch decays, failing the test
// if it outlives several holdoffs.
func waitNotShedding(t *testing.T, g *Governor) {
	t.Helper()
	deadline := time.Now().Add(8 * ShedHoldoff)
	for g.Shedding() {
		if time.Now().After(deadline) {
			t.Fatal("shed latch never decayed")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestShedLatchReArms(t *testing.T) {
	g := New(100, 0)
	g.Grow(150)
	g.Shrink(150)
	if !g.Shedding() {
		t.Fatal("not shedding within the holdoff")
	}
	// A fresh over-ceiling observation re-arms the latch: the shed
	// state must outlive the *last* spike, not the first.
	time.Sleep(ShedHoldoff / 2)
	g.Grow(150)
	g.Shrink(150)
	time.Sleep(3 * ShedHoldoff / 4)
	if !g.Shedding() {
		t.Fatal("latch decayed relative to the first spike, not the last")
	}
	waitNotShedding(t, g)
}

func TestUnlimitedCeilings(t *testing.T) {
	g := New(0, 0)
	g.Grow(1 << 40)
	if g.Shedding() {
		t.Fatal("unlimited governor sheds")
	}
	if err := g.Admit(1 << 40); err != nil {
		t.Fatalf("unlimited governor rejects: %v", err)
	}
}

func TestStatsCounters(t *testing.T) {
	g := New(10, 20)
	g.Grow(15)
	g.NoteShed()
	g.NoteShed()
	g.NotePanic()
	g.NoteWatchdog()
	st := g.Stats()
	want := Stats{LiveBytes: 15, SoftLimitBytes: 10, HardLimitBytes: 20,
		Sheds: 2, PanicsRecovered: 1, WatchdogCancels: 1}
	if st != want {
		t.Fatalf("Stats = %+v, want %+v", st, want)
	}
}

func TestConcurrentAccounting(t *testing.T) {
	g := New(0, 0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.Grow(7)
				g.Shrink(7)
			}
		}()
	}
	wg.Wait()
	if g.Live() != 0 {
		t.Fatalf("Live = %d after balanced grow/shrink", g.Live())
	}
}

func TestCaptureConvertsPanic(t *testing.T) {
	run := func() (err error) {
		defer Capture("test op", &err)
		panic("boom")
	}
	err := run()
	pe, ok := AsPanic(err)
	if !ok {
		t.Fatalf("Capture produced %T, want *PanicError", err)
	}
	if pe.Op != "test op" || pe.Value != "boom" {
		t.Fatalf("PanicError = %+v", pe)
	}
	// The stack must retain the panic-origin frame, not just the
	// recovery site: that is the whole point of capturing inside the
	// recovering defer.
	if !strings.Contains(string(pe.Stack), "TestCaptureConvertsPanic") {
		t.Fatalf("stack lost the panic origin:\n%s", pe.Stack)
	}
	if !strings.Contains(err.Error(), "boom") || !strings.Contains(err.Error(), "test op") {
		t.Fatalf("Error() = %q", err.Error())
	}
}

func TestCaptureNoPanicLeavesError(t *testing.T) {
	sentinel := errors.New("ordinary failure")
	run := func() (err error) {
		defer Capture("test op", &err)
		return sentinel
	}
	if err := run(); !errors.Is(err, sentinel) {
		t.Fatalf("Capture clobbered the ordinary error: %v", err)
	}
}

func TestRecoveredNil(t *testing.T) {
	if pe := Recovered("op", nil); pe != nil {
		t.Fatalf("Recovered(nil) = %v", pe)
	}
}

func TestWatchdogFiresOnStall(t *testing.T) {
	w := NewWatchdog()
	fired := make(chan time.Duration, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	w.Watch(ctx, 20*time.Millisecond, func(idle time.Duration) { fired <- idle })
	select {
	case idle := <-fired:
		if idle < 20*time.Millisecond {
			t.Fatalf("fired with idle %v < deadline", idle)
		}
	default:
		t.Fatal("watchdog returned without firing")
	}
}

func TestWatchdogQuietWhileTouched(t *testing.T) {
	w := NewWatchdog()
	ctx, cancel := context.WithCancel(context.Background())
	var fired bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Watch(ctx, 80*time.Millisecond, func(time.Duration) { fired = true })
	}()
	for i := 0; i < 10; i++ {
		time.Sleep(15 * time.Millisecond)
		w.Touch()
	}
	cancel()
	<-done
	if fired {
		t.Fatal("watchdog fired despite steady Touches")
	}
}

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		err  bool
	}{
		{"", 0, false},
		{"0", 0, false},
		{"1024", 1024, false},
		{"64K", 64 << 10, false},
		{"64k", 64 << 10, false},
		{"512M", 512 << 20, false},
		{"512MiB", 512 << 20, false},
		{"512mb", 512 << 20, false},
		{"2G", 2 << 30, false},
		{"1T", 1 << 40, false},
		{" 2G ", 2 << 30, false},
		{"-1", 0, true},
		{"12x", 0, true},
		{"G", 0, true},
		{"9999999999G", 0, true},
	}
	for _, c := range cases {
		got, err := ParseBytes(c.in)
		if c.err {
			if err == nil {
				t.Errorf("ParseBytes(%q) = %d, want error", c.in, got)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("ParseBytes(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
	}
}
