// Package govern is the engine-wide resource governor: byte-metered
// memory ceilings over the arena/pool allocation choke points, panic
// isolation for protocol and workload code, and a stuck-job watchdog.
//
// The governor is deliberately dumb: it is a single atomic live-byte
// account with two configurable ceilings. Metered allocation sites
// (knowledge storage arenas, run-kit buffers, sweep chunk arrays) call
// Grow when capacity is created and Shrink when it is freed. Crossing
// the soft ceiling flips Retain to false — pools stop recycling and
// release their buffers back to the GC, and the job service starts
// shedding new submissions (HTTP 429) while staying ready for the work
// it already admitted. The shed state is latched with ShedHoldoff of
// hysteresis: the account oscillates at allocation cadence (arenas are
// built and freed every few microseconds), so shedding decays only
// after a full holdoff passes with no over-ceiling observation, keeping
// readiness and retention decisions stable. Crossing the hard ceiling
// makes Admit reject new
// admissions with ErrMemoryBudget. Neither ceiling ever aborts running
// work: degradation is monotone (recycle → shed → reject), never
// destructive.
//
// All Governor methods are safe on a nil receiver (everything
// ungoverned is a no-op that retains and admits), so callers thread a
// possibly-nil *Governor without branching.
package govern

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// ErrMemoryBudget rejects a new admission while live metered bytes
// exceed the hard ceiling. The job service maps it to HTTP 429 with a
// Retry-After header: the condition is transient — it clears as running
// jobs finish and release their arenas.
var ErrMemoryBudget = errors.New("govern: live arena bytes exceed the hard memory ceiling")

// ErrStalled is the cancellation cause the watchdog uses for a job
// whose progress feed has not advanced within the progress deadline.
var ErrStalled = errors.New("govern: no progress within the deadline")

// ShedHoldoff is the hysteresis window of the soft ceiling: once live
// bytes are observed over the ceiling, the governor stays in shedding
// mode until a full holdoff passes with no further over-ceiling
// observation. Without it the shed signal flaps at allocation cadence —
// a sweep's account oscillates between zero and its working set every
// few microseconds as arenas are built and freed, so an instantaneous
// live>soft comparison is true at release sites but almost never at the
// instants /readyz probes or submissions happen to sample.
const ShedHoldoff = 250 * time.Millisecond

// Governor is the shared byte account. One Governor serves a whole
// process (every per-job Engine of the service meters into the same
// instance); all methods are safe for concurrent use and on a nil
// receiver.
type Governor struct {
	soft int64 // retention/shedding ceiling; 0 = unlimited
	hard int64 // admission ceiling; 0 = unlimited

	live            atomic.Int64 // metered bytes currently allocated
	shedUntil       atomic.Int64 // UnixNano the shed latch holds until
	sheds           atomic.Int64 // submissions shed (soft or hard ceiling)
	panicsRecovered atomic.Int64
	watchdogCancels atomic.Int64
}

// New builds a Governor with the given ceilings in bytes; zero (or
// negative) disables the respective ceiling. Ceiling ordering is the
// caller's contract to validate — the governor itself only compares.
func New(soft, hard int64) *Governor {
	g := &Governor{}
	if soft > 0 {
		g.soft = soft
	}
	if hard > 0 {
		g.hard = hard
	}
	return g
}

// Grow records n freshly allocated metered bytes. Crossing the soft
// ceiling arms the shed latch for ShedHoldoff from now; a sweep that
// keeps allocating over the ceiling re-arms it continuously, so the
// shed state holds steady for its whole duration instead of flickering
// with the per-run account.
func (g *Governor) Grow(n int64) {
	if g == nil || n == 0 {
		return
	}
	if live := g.live.Add(n); g.soft > 0 && live > g.soft {
		g.shedUntil.Store(time.Now().Add(ShedHoldoff).UnixNano())
	}
}

// Shrink records n metered bytes released back to the GC.
func (g *Governor) Shrink(n int64) {
	if g == nil || n == 0 {
		return
	}
	g.live.Add(-n)
}

// Live reports the metered bytes currently allocated.
func (g *Governor) Live() int64 {
	if g == nil {
		return 0
	}
	return g.live.Load()
}

// Shedding reports whether the governor is in shedding mode — the
// state in which pools free instead of recycling and the service
// answers new submissions with 429 and /readyz with 503. It is true
// while live bytes exceed the soft ceiling and, by hysteresis, for
// ShedHoldoff after the last over-ceiling observation: the shed state
// decays by time, not on the first instantaneous dip of the account,
// so readiness is a stable signal rather than an allocation-rate strobe.
func (g *Governor) Shedding() bool {
	if g == nil || g.soft == 0 {
		return false
	}
	if g.live.Load() > g.soft {
		return true
	}
	return time.Now().UnixNano() < g.shedUntil.Load()
}

// Retain reports whether pools may keep released buffers. It is the
// inverse of Shedding, named for the call sites: release paths ask
// "may I retain this?" and drop the buffer on false.
func (g *Governor) Retain() bool { return !g.Shedding() }

// Admit checks whether n more metered bytes fit under the hard
// ceiling, returning a wrapped ErrMemoryBudget when they do not. n may
// be zero: "is there any headroom at all", the admission check of a
// job whose footprint cannot be sized up front.
func (g *Governor) Admit(n int64) error {
	if g == nil || g.hard == 0 {
		return nil
	}
	if live := g.live.Load(); live+n > g.hard {
		return fmt.Errorf("%w: %d live + %d requested > %d", ErrMemoryBudget, live, n, g.hard)
	}
	return nil
}

// NoteShed counts one shed submission.
func (g *Governor) NoteShed() {
	if g != nil {
		g.sheds.Add(1)
	}
}

// NotePanic counts one recovered worker panic.
func (g *Governor) NotePanic() {
	if g != nil {
		g.panicsRecovered.Add(1)
	}
}

// NoteWatchdog counts one stuck-job cancellation.
func (g *Governor) NoteWatchdog() {
	if g != nil {
		g.watchdogCancels.Add(1)
	}
}

// Stats is a point-in-time snapshot of the governor's gauges, the feed
// behind the service's expvar map and /metrics exposition.
type Stats struct {
	LiveBytes       int64 `json:"liveBytes"`
	SoftLimitBytes  int64 `json:"softLimitBytes"`
	HardLimitBytes  int64 `json:"hardLimitBytes"`
	Sheds           int64 `json:"sheds"`
	PanicsRecovered int64 `json:"panicsRecovered"`
	WatchdogCancels int64 `json:"watchdogCancels"`
}

// Stats snapshots the governor; a nil governor snapshots to zeros.
func (g *Governor) Stats() Stats {
	if g == nil {
		return Stats{}
	}
	return Stats{
		LiveBytes:       g.live.Load(),
		SoftLimitBytes:  g.soft,
		HardLimitBytes:  g.hard,
		Sheds:           g.sheds.Load(),
		PanicsRecovered: g.panicsRecovered.Load(),
		WatchdogCancels: g.watchdogCancels.Load(),
	}
}

// PanicError is a worker panic converted into an ordinary, typed job
// failure: the panic value and the panicking goroutine's stack,
// captured at the recovery site so the panic-origin frames are
// retained. It flows out of the engine like any other run error and
// ends the job in StateFailed instead of ending the process.
type PanicError struct {
	Op    string // what was running, e.g. "engine: sweep worker"
	Value any    // the recover() value
	Stack []byte // debug.Stack() at the recovery site
}

// Error renders the panic with its stack — the job's Error string is
// the operator's only copy of the evidence.
func (e *PanicError) Error() string {
	return fmt.Sprintf("govern: panic in %s: %v\n%s", e.Op, e.Value, e.Stack)
}

// Recovered converts a recover() result into a *PanicError, nil when r
// is nil (no panic in flight). It must be called from the recovering
// defer itself so debug.Stack() still includes the panic-origin frames.
func Recovered(op string, r any) *PanicError {
	if r == nil {
		return nil
	}
	return &PanicError{Op: op, Value: r, Stack: debug.Stack()}
}

// Capture is the one-line defer form of Recovered:
//
//	defer govern.Capture("engine: sweep worker", &err)
//
// It recovers an in-flight panic and stores the typed conversion into
// *errp, leaving an already-set error alone only if no panic occurred.
func Capture(op string, errp *error) {
	if pe := Recovered(op, recover()); pe != nil {
		*errp = pe
	}
}

// AsPanic unwraps err to its *PanicError, if any.
func AsPanic(err error) (*PanicError, bool) {
	var pe *PanicError
	if errors.As(err, &pe) {
		return pe, true
	}
	return nil, false
}

// Watchdog cancels jobs whose progress feed has gone quiet. Progress
// callbacks call Touch; Watch ticks and fires the stalled callback once
// when no Touch has arrived within the deadline. Touch is one atomic
// store, cheap enough for any progress cadence, and safe on a nil
// receiver so ungoverned paths need no branch.
type Watchdog struct {
	last atomic.Int64 // UnixNano of the most recent Touch
}

// NewWatchdog returns a watchdog whose clock starts now: a job that
// never reports progress at all still trips after one deadline.
func NewWatchdog() *Watchdog {
	w := &Watchdog{}
	w.Touch()
	return w
}

// Touch records a progress advance.
func (w *Watchdog) Touch() {
	if w != nil {
		w.last.Store(time.Now().UnixNano())
	}
}

// Watch blocks until ctx ends or the deadline passes without a Touch,
// invoking stalled (once, with the observed idle time) in the latter
// case. The check period is a quarter of the deadline, so a stall is
// detected within 1.25 deadlines.
func (w *Watchdog) Watch(ctx context.Context, deadline time.Duration, stalled func(idle time.Duration)) {
	if w == nil || deadline <= 0 {
		return
	}
	period := deadline / 4
	if period < time.Millisecond {
		period = time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if idle := time.Since(time.Unix(0, w.last.Load())); idle >= deadline {
				stalled(idle)
				return
			}
		}
	}
}

// ParseBytes parses a human byte quantity for the -memlimit flags:
// a plain integer is bytes, and a K/M/G/T suffix (optionally followed
// by "B" or "iB", case-insensitive) scales by powers of 1024 — the
// same units debug.SetMemoryLimit's GOMEMLIMIT syntax uses. Empty and
// "0" mean no limit.
func ParseBytes(s string) (int64, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, nil
	}
	upper := strings.ToUpper(t)
	upper = strings.TrimSuffix(upper, "IB")
	upper = strings.TrimSuffix(upper, "B")
	shift := 0
	switch {
	case strings.HasSuffix(upper, "K"):
		shift, upper = 10, upper[:len(upper)-1]
	case strings.HasSuffix(upper, "M"):
		shift, upper = 20, upper[:len(upper)-1]
	case strings.HasSuffix(upper, "G"):
		shift, upper = 30, upper[:len(upper)-1]
	case strings.HasSuffix(upper, "T"):
		shift, upper = 40, upper[:len(upper)-1]
	}
	n, err := strconv.ParseInt(upper, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("govern: bad byte quantity %q (want e.g. 512M, 2G, or plain bytes)", s)
	}
	if n < 0 {
		return 0, fmt.Errorf("govern: byte quantity must be ≥ 0, got %q", s)
	}
	if shift > 0 && n > (1<<62)>>shift {
		return 0, fmt.Errorf("govern: byte quantity %q overflows", s)
	}
	return n << shift, nil
}
