package runtime

import (
	"math/rand"
	"strings"
	"testing"

	"setconsensus/internal/core"
	"setconsensus/internal/model"
	"setconsensus/internal/sim"
	"setconsensus/internal/wire"
)

func checkAgainstOracle(t *testing.T, rule wire.Rule, p core.Params, adv *model.Adversary) {
	t.Helper()
	res, err := Run(rule, p, adv)
	if err != nil {
		t.Fatal(err)
	}
	var oracle *sim.Result
	if rule == wire.RuleOptmin {
		oracle = sim.Run(core.MustOptmin(p), adv)
	} else {
		oracle = sim.Run(core.MustUPmin(p), adv)
	}
	for i := 0; i < adv.N(); i++ {
		ed, od := res.Decisions[i], oracle.Decisions[i]
		switch {
		case ed == nil && od == nil:
		case ed == nil || od == nil:
			t.Fatalf("process %d: engine %+v oracle %+v (%s)", i, ed, od, adv)
		case ed.Value != od.Value || ed.Time != od.Time:
			t.Fatalf("process %d: engine %d@%d oracle %d@%d (%s)",
				i, ed.Value, ed.Time, od.Value, od.Time, adv)
		}
	}
}

func TestEngineMatchesOracleFailureFree(t *testing.T) {
	adv := model.NewBuilder(5, 2).Input(0, 1).MustBuild()
	checkAgainstOracle(t, wire.RuleOptmin, core.Params{N: 5, T: 2, K: 2}, adv)
	checkAgainstOracle(t, wire.RuleUPmin, core.Params{N: 5, T: 2, K: 2}, adv)
}

func TestEngineMatchesOracleFamilies(t *testing.T) {
	cp := model.CollapseParams{K: 2, R: 3, ExtraCorrect: 3}
	col, err := model.Collapse(cp)
	if err != nil {
		t.Fatal(err)
	}
	p := core.Params{N: col.N(), T: model.CollapseT(cp), K: 2}
	checkAgainstOracle(t, wire.RuleOptmin, p, col)
	checkAgainstOracle(t, wire.RuleUPmin, p, col)

	hp, err := model.HiddenPath(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, wire.RuleOptmin, core.Params{N: 6, T: 4, K: 1}, hp)
	checkAgainstOracle(t, wire.RuleUPmin, core.Params{N: 6, T: 4, K: 1}, hp)
}

func TestEngineMatchesOracleRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 60; trial++ {
		k := 1 + rng.Intn(2)
		adv := model.Random(rng, model.RandomParams{N: 6, T: 4, MaxValue: k, MaxRound: 3})
		p := core.Params{N: 6, T: 4, K: k}
		checkAgainstOracle(t, wire.RuleOptmin, p, adv)
		checkAgainstOracle(t, wire.RuleUPmin, p, adv)
	}
}

func TestEngineValidation(t *testing.T) {
	adv := model.NewBuilder(3, 0).MustBuild()
	if _, err := Run(wire.RuleOptmin, core.Params{N: 5, T: 1, K: 1}, adv); err == nil {
		t.Error("mismatched n must error")
	}
	if _, err := Run(wire.RuleOptmin, core.Params{N: 3, T: 9, K: 1}, adv); err == nil {
		t.Error("invalid params must error")
	}
}

func TestEngineDeterministic(t *testing.T) {
	adv := model.Random(rand.New(rand.NewSource(5)), model.RandomParams{N: 6, T: 3, MaxValue: 2, MaxRound: 2})
	p := core.Params{N: 6, T: 3, K: 2}
	a, err := Run(wire.RuleOptmin, p, adv)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 10; rep++ {
		b, err := Run(wire.RuleOptmin, p, adv)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Decisions {
			da, db := a.Decisions[i], b.Decisions[i]
			if (da == nil) != (db == nil) || (da != nil && *da != *db) {
				t.Fatalf("nondeterministic engine at process %d", i)
			}
		}
	}
}

func BenchmarkEngineCollapse(b *testing.B) {
	cp := model.CollapseParams{K: 3, R: 4, ExtraCorrect: 4}
	adv, err := model.Collapse(cp)
	if err != nil {
		b.Fatal(err)
	}
	p := core.Params{N: adv.N(), T: model.CollapseT(cp), K: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(wire.RuleOptmin, p, adv); err != nil {
			b.Fatal(err)
		}
	}
}

func TestEngineCorruptPayloadError(t *testing.T) {
	defer func() { encodePayload = wire.Encode }()
	// A count of 1 with no fact triples fails Decode as truncated.
	encodePayload = func([]wire.Fact) []byte { return []byte{1} }
	adv := model.NewBuilder(4, 1).Input(0, 0).MustBuild()
	res, err := Run(wire.RuleOptmin, core.Params{N: 4, T: 2, K: 1}, adv)
	if err == nil {
		t.Fatalf("corrupt payload must surface as an error, got result %+v", res)
	}
	if !strings.Contains(err.Error(), "corrupt payload") {
		t.Fatalf("unexpected error: %v", err)
	}
}
