// Package runtime executes the compact wire protocol on a real
// message-passing engine: one goroutine per process, channels as links, a
// router applying the failure pattern, and lock-step round barriers —
// the synchronous model of §2.1 made concrete. Results are bit-for-bit
// cross-checked against the deterministic oracle simulator by the tests;
// the engine exists to demonstrate that the protocols run unchanged on
// actual concurrent message passing, not just on the oracle.
package runtime

import (
	"fmt"
	"sync"

	"setconsensus/internal/core"
	"setconsensus/internal/model"
	"setconsensus/internal/wire"
)

// encodePayload serializes a round's outbox. It is a variable so the
// corrupt-payload error path can be exercised by tests.
var encodePayload = wire.Encode

// Inbound is one received message.
type Inbound struct {
	From    model.Proc
	Payload []byte
}

// Decision mirrors sim.Decision.
type Decision struct {
	Value model.Value
	Time  int
}

// Result collects the engine's decisions.
type Result struct {
	Decisions []*Decision
}

// process is one goroutine's protocol instance: the compact wire state
// plus the chosen decision rule.
type process struct {
	id    model.Proc
	rule  wire.Rule
	p     core.Params
	state *wire.State

	prevLow  bool
	prevHC   int
	prevMin  model.Value
	prevVals []model.Value

	decided  bool
	decision *Decision
	err      error
}

func (pr *process) snapshot() {
	pr.prevLow = pr.state.Low(pr.p.K)
	pr.prevHC = pr.state.HiddenCapacity()
	pr.prevMin = pr.state.Min()
	pr.prevVals = pr.state.Vals()
}

func (pr *process) maybeDecide(m int) {
	if pr.decided {
		return
	}
	st := pr.state
	switch pr.rule {
	case wire.RuleOptmin:
		if st.Low(pr.p.K) || st.HiddenCapacity() < pr.p.K {
			pr.decision = &Decision{Value: st.Min(), Time: m}
			pr.decided = true
		}
	case wire.RuleUPmin:
		if st.Low(pr.p.K) || st.HiddenCapacity() < pr.p.K {
			if min := st.Min(); st.Persists(min, pr.prevVals, pr.p.T) {
				pr.decision = &Decision{Value: min, Time: m}
				pr.decided = true
				return
			}
		}
		if m > 0 && (pr.prevLow || pr.prevHC < pr.p.K) {
			pr.decision = &Decision{Value: pr.prevMin, Time: m}
			pr.decided = true
			return
		}
		if m == pr.p.T/pr.p.K+1 {
			pr.decision = &Decision{Value: st.Min(), Time: m}
			pr.decided = true
		}
	}
}

// Run executes the protocol on goroutines against the adversary. The
// router goroutine enforces the failure pattern; each process goroutine
// computes rounds concurrently, synchronized by channel barriers.
func Run(rule wire.Rule, p core.Params, adv *model.Adversary) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if adv.N() != p.N {
		return nil, fmt.Errorf("runtime: adversary over %d processes, params say %d", adv.N(), p.N)
	}
	n := adv.N()
	horizon := p.T/p.K + 1

	type outMsg struct {
		from    model.Proc
		payload []byte
	}
	outCh := make(chan outMsg, n)       // round outboxes to the router
	inCh := make([]chan []Inbound, n)   // per-process round deliveries
	barrier := make([]chan struct{}, n) // per-process "round done" release
	procs := make([]*process, n)
	for i := 0; i < n; i++ {
		inCh[i] = make(chan []Inbound, 1)
		barrier[i] = make(chan struct{})
		procs[i] = &process{id: i, rule: rule, p: p, state: wire.NewState(n, i, adv.Inputs[i])}
	}

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(pr *process) {
			defer wg.Done()
			// Time 0: local decision attempt, no messages yet.
			pr.maybeDecide(0)
			for m := 1; m <= horizon; m++ {
				if !adv.Pattern.Active(pr.id, m-1) {
					// Dead at send time: participate in barriers only.
					outCh <- outMsg{from: pr.id, payload: nil}
					<-inCh[pr.id]
					<-barrier[pr.id]
					continue
				}
				pr.snapshot()
				outCh <- outMsg{from: pr.id, payload: encodePayload(pr.state.Outbox())}
				msgs := <-inCh[pr.id]
				// A decode failure poisons this process but must not stop
				// it from draining barriers: the router and the other
				// goroutines would deadlock otherwise. The first error is
				// threaded back through Run's error return.
				if adv.Pattern.Active(pr.id, m) && pr.err == nil {
					inbound := make([]wire.Message, 0, len(msgs))
					for _, im := range msgs {
						facts, err := wire.Decode(im.Payload)
						if err != nil {
							pr.err = fmt.Errorf("runtime: corrupt payload from %d in round %d: %w", im.From, m, err)
							break
						}
						inbound = append(inbound, wire.Message{From: im.From, Round: m, Facts: facts})
					}
					if pr.err == nil {
						pr.state.Deliver(m, inbound)
						pr.maybeDecide(m)
					}
				}
				<-barrier[pr.id]
			}
		}(procs[i])
	}

	// Router: per round, gather every outbox, apply the pattern, deliver,
	// release the barrier.
	routerDone := make(chan struct{})
	go func() {
		defer close(routerDone)
		for m := 1; m <= horizon; m++ {
			payloads := make([][]byte, n)
			for c := 0; c < n; c++ {
				om := <-outCh
				payloads[om.from] = om.payload
			}
			for j := 0; j < n; j++ {
				var msgs []Inbound
				for i := 0; i < n; i++ {
					if i == j || payloads[i] == nil {
						continue
					}
					if adv.Pattern.Delivered(i, j, m) && adv.Pattern.Active(j, m) {
						msgs = append(msgs, Inbound{From: i, Payload: payloads[i]})
					}
				}
				inCh[j] <- msgs
			}
			for j := 0; j < n; j++ {
				barrier[j] <- struct{}{}
			}
		}
	}()

	wg.Wait()
	<-routerDone
	res := &Result{Decisions: make([]*Decision, n)}
	for i, pr := range procs {
		if pr.err != nil {
			return nil, pr.err
		}
		res.Decisions[i] = pr.decision
	}
	return res, nil
}
