package core

import (
	"math/rand"
	"testing"

	"setconsensus/internal/model"
	"setconsensus/internal/sim"
)

func TestParamsValidate(t *testing.T) {
	for _, bad := range []Params{{N: 1, T: 0, K: 1}, {N: 3, T: 3, K: 1}, {N: 3, T: -1, K: 1}, {N: 3, T: 1, K: 0}} {
		if bad.Validate() == nil {
			t.Errorf("params %+v must be invalid", bad)
		}
	}
	if (Params{N: 3, T: 2, K: 1}).Validate() != nil {
		t.Error("valid params rejected")
	}
	if _, err := NewOptmin(Params{N: 1, T: 0, K: 1}); err == nil {
		t.Error("NewOptmin must propagate validation")
	}
	if _, err := NewUPmin(Params{N: 3, T: 1, K: 0}); err == nil {
		t.Error("NewUPmin must propagate validation")
	}
}

func TestNames(t *testing.T) {
	if got := MustOptmin(Params{N: 4, T: 2, K: 2}).Name(); got != "Optmin[2]" {
		t.Errorf("name = %q", got)
	}
	o, err := NewOpt0(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if o.Name() != "Opt0" || o.Params().K != 1 {
		t.Errorf("Opt0 wrapper: name=%q k=%d", o.Name(), o.Params().K)
	}
	u, err := NewUOpt0(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if u.Name() != "u-Opt0" || u.Params().K != 1 {
		t.Errorf("u-Opt0 wrapper: name=%q k=%d", u.Name(), u.Params().K)
	}
}

func TestOptminFailureFree(t *testing.T) {
	// All-high inputs, no failures: high processes decide k at time 1
	// (hidden capacity collapses to 0 after one clean round).
	adv := model.NewBuilder(5, 2).MustBuild()
	res := sim.Run(MustOptmin(Params{N: 5, T: 3, K: 2}), adv)
	for i := 0; i < 5; i++ {
		d := res.Decisions[i]
		if d == nil || d.Value != 2 || d.Time != 1 {
			t.Errorf("process %d: %+v, want 2@1", i, d)
		}
	}
}

func TestOptminLowDecidesImmediately(t *testing.T) {
	// A low process decides at time 0 on its own value.
	adv := model.NewBuilder(5, 2).Input(3, 0).Input(4, 1).MustBuild()
	res := sim.Run(MustOptmin(Params{N: 5, T: 3, K: 2}), adv)
	if d := res.Decisions[3]; d.Value != 0 || d.Time != 0 {
		t.Errorf("low process 3: %+v, want 0@0", d)
	}
	if d := res.Decisions[4]; d.Value != 1 || d.Time != 0 {
		t.Errorf("low process 4: %+v, want 1@0", d)
	}
	// High processes learn both lows in round 1 and decide min = 0 at 1.
	if d := res.Decisions[0]; d.Value != 0 || d.Time != 1 {
		t.Errorf("high process 0: %+v, want 0@1", d)
	}
}

func TestOptminHiddenPathBlocksOpt0(t *testing.T) {
	// Fig. 1: with a hidden path of depth 2, the observer cannot decide
	// before time 3 in Opt0 (= Optmin[1]); the chain tail (which saw 0)
	// decides 0 immediately.
	adv, err := model.HiddenPath(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewOpt0(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run(p, adv)
	// The tail receives 0 via the round-2 message of the dying chain
	// process — it decides 0 at time 2, exactly as in Fig. 1.
	if d := res.Decisions[3]; d.Value != 0 || d.Time != 2 {
		t.Errorf("chain tail 3: %+v, want 0@2", d)
	}
	if d := res.Decisions[0]; d == nil || d.Time < 3 {
		t.Errorf("observer 0 decided %+v; the hidden path must block it through time 2", d)
	}
	if d := res.Decisions[0]; d.Value != 0 {
		t.Errorf("observer must learn 0 once the path dies: %+v", d)
	}
}

func TestOptminHiddenChainsBlockHigh(t *testing.T) {
	// Fig. 2 with c = k = 3 chains of depth 2: observer 0 has HC = 3 at
	// time 2, so it must still be undecided at time 2; the chain tails are
	// low and decide their unique low values immediately upon seeing them.
	adv, err := model.HiddenChains(12, 3, 2, []model.Value{0, 1, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	p := MustOptmin(Params{N: 12, T: 8, K: 3})
	res := sim.RunToHorizon(p, adv, 4)
	for b := 0; b < 3; b++ {
		tail := model.ChainWitness(b, 2, 2)
		d := res.Decisions[tail]
		if d == nil || d.Value != b || d.Time != 2 {
			t.Errorf("chain %d tail: %+v, want %d@2", b, d, b)
		}
	}
	if d := res.Decisions[0]; d != nil && d.Time <= 2 {
		t.Errorf("observer with HC=3 decided early: %+v", d)
	}
}

func TestOptminCollapseSchedule(t *testing.T) {
	// Fig. 4 family, all-high variant: relays decide k at time 1 (their
	// hidden capacity is k−1), every correct process decides k at time 2.
	p := model.CollapseParams{K: 3, R: 3, ExtraCorrect: 4}
	adv, err := model.Collapse(p)
	if err != nil {
		t.Fatal(err)
	}
	tB := model.CollapseT(p)
	res := sim.Run(MustOptmin(Params{N: adv.N(), T: tB, K: 3}), adv)
	for b := 0; b < 3; b++ {
		relay := p.ExtraCorrect + 3 + b
		d := res.Decisions[relay]
		if d == nil || d.Value != 3 || d.Time != 1 {
			t.Errorf("relay %d: %+v, want 3@1", relay, d)
		}
	}
	for i := 0; i < p.ExtraCorrect; i++ {
		d := res.Decisions[i]
		if d == nil || d.Value != 3 || d.Time != 2 {
			t.Errorf("correct %d: %+v, want 3@2", i, d)
		}
	}
}

func TestOptminSilentRoundsTight(t *testing.T) {
	// Worst-case family: k silent crashes per round for R rounds keeps
	// HC = k through time R; everyone decides exactly at R+1 = ⌊f/k⌋+1.
	k, R := 2, 3
	adv, err := model.SilentRounds(k, R, k+1)
	if err != nil {
		t.Fatal(err)
	}
	f := adv.Pattern.NumFailures()
	res := sim.Run(MustOptmin(Params{N: adv.N(), T: f, K: k}), adv)
	want := f/k + 1
	for i := 0; i < adv.N(); i++ {
		if !adv.Pattern.Correct(i) {
			continue
		}
		d := res.Decisions[i]
		if d == nil || d.Time != want {
			t.Errorf("correct %d: %+v, want decision at %d", i, d, want)
		}
	}
}

func TestUPminFailureFree(t *testing.T) {
	// All-high failure-free: decide k at time 1 — persistence holds via
	// the first disjunct (own value seen since time 0, complete round-1
	// send guarantees it cannot fade).
	adv := model.NewBuilder(5, 2).MustBuild()
	res := sim.Run(MustUPmin(Params{N: 5, T: 3, K: 2}), adv)
	for i := 0; i < 5; i++ {
		d := res.Decisions[i]
		if d == nil || d.Value != 2 || d.Time != 1 {
			t.Errorf("process %d: %+v, want 2@1", i, d)
		}
	}
}

func TestUPminFreshLowWaitsForPersistence(t *testing.T) {
	// Failure-free, t=3: one process holds 0. The holder decides at
	// time 1 (own old value persists). A non-holder learns 0 at time 1
	// but cannot yet know it persists (d=0, needs t−d = 3 holders at
	// time 0); it decides at time 2 via rule 1.
	adv := model.NewBuilder(5, 1).Input(0, 0).MustBuild()
	res := sim.Run(MustUPmin(Params{N: 5, T: 3, K: 1}), adv)
	if d := res.Decisions[0]; d.Value != 0 || d.Time != 1 {
		t.Errorf("holder: %+v, want 0@1", d)
	}
	for i := 1; i < 5; i++ {
		d := res.Decisions[i]
		if d == nil || d.Value != 0 || d.Time != 2 {
			t.Errorf("non-holder %d: %+v, want 0@2", i, d)
		}
	}
}

func TestUPminNobodyDecidesAtTimeZero(t *testing.T) {
	// With t ≥ 1 persistence can never be known at time 0.
	adv := model.NewBuilder(4, 0).MustBuild() // everyone low (value 0)
	res := sim.Run(MustUPmin(Params{N: 4, T: 2, K: 1}), adv)
	for i := 0; i < 4; i++ {
		if d := res.Decisions[i]; d.Time == 0 {
			t.Errorf("process %d decided at time 0 in uniform consensus with t>0", i)
		}
	}
}

func TestUPminCollapseScheduleHigh(t *testing.T) {
	// Fig. 4 family, all-high: correct processes decide k at time 2;
	// relays decide k at time 1. This is the headline separation run.
	p := model.CollapseParams{K: 3, R: 4, ExtraCorrect: 4}
	adv, err := model.Collapse(p)
	if err != nil {
		t.Fatal(err)
	}
	tB := model.CollapseT(p)
	res := sim.Run(MustUPmin(Params{N: adv.N(), T: tB, K: 3}), adv)
	for i := 0; i < p.ExtraCorrect; i++ {
		d := res.Decisions[i]
		if d == nil || d.Value != 3 || d.Time != 2 {
			t.Errorf("correct %d: %+v, want 3@2", i, d)
		}
	}
	for b := 0; b < 3; b++ {
		relay := p.ExtraCorrect + 3 + b
		d := res.Decisions[relay]
		if d == nil || d.Value != 3 || d.Time != 1 {
			t.Errorf("relay %d: %+v, want 3@1", relay, d)
		}
	}
}

func TestUPminCollapseScheduleLow(t *testing.T) {
	// Low variant: the chain heads' low values are revealed to everyone
	// at time 2 by the relays' complete round-2 send, but their
	// persistence is only knowable at time 3; relays crash undecided.
	p := model.CollapseParams{K: 3, R: 3, ExtraCorrect: 4, LowVariant: true}
	adv, err := model.Collapse(p)
	if err != nil {
		t.Fatal(err)
	}
	tB := model.CollapseT(p)
	res := sim.Run(MustUPmin(Params{N: adv.N(), T: tB, K: 3}), adv)
	for i := 0; i < p.ExtraCorrect; i++ {
		d := res.Decisions[i]
		if d == nil || d.Value != 0 || d.Time != 3 {
			t.Errorf("correct %d: %+v, want 0@3", i, d)
		}
	}
	for b := 0; b < 3; b++ {
		relay := p.ExtraCorrect + 3 + b
		if d := res.Decisions[relay]; d != nil {
			t.Errorf("relay %d decided %+v; it must crash undecided", relay, d)
		}
	}
}

func TestUPminSilentRoundsTight(t *testing.T) {
	// Thm. 3 tightness: on SilentRounds with f = t = kR, u-Pmin decides at
	// R+1 = min{⌊t/k⌋+1, ⌊f/k⌋+2}.
	k, R := 2, 3
	adv, err := model.SilentRounds(k, R, k+1)
	if err != nil {
		t.Fatal(err)
	}
	f := adv.Pattern.NumFailures()
	res := sim.Run(MustUPmin(Params{N: adv.N(), T: f, K: k}), adv)
	want := R + 1
	for i := 0; i < adv.N(); i++ {
		if !adv.Pattern.Correct(i) {
			continue
		}
		d := res.Decisions[i]
		if d == nil || d.Time != want {
			t.Errorf("correct %d: %+v, want decision at %d", i, d, want)
		}
	}
}

func TestProp1BoundRandom(t *testing.T) {
	// Proposition 1: every process decides by ⌊f/k⌋+1 under Optmin[k].
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 150; trial++ {
		k := 1 + rng.Intn(3)
		adv := model.Random(rng, model.RandomParams{N: 6, T: 4, MaxValue: k, MaxRound: 4})
		f := adv.Pattern.NumFailures()
		res := sim.Run(MustOptmin(Params{N: 6, T: 4, K: k}), adv)
		bound := f/k + 1
		for i := 0; i < 6; i++ {
			if !adv.Pattern.Correct(i) {
				continue
			}
			d := res.Decisions[i]
			if d == nil {
				t.Fatalf("trial %d (k=%d, %s): correct %d undecided", trial, k, adv, i)
			}
			if d.Time > bound {
				t.Fatalf("trial %d (k=%d, %s): correct %d decided at %d > ⌊f/k⌋+1 = %d",
					trial, k, adv, i, d.Time, bound)
			}
		}
	}
}

func TestThm3BoundRandom(t *testing.T) {
	// Theorem 3: every process decides by min{⌊t/k⌋+1, ⌊f/k⌋+2} under
	// u-Pmin[k].
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 150; trial++ {
		k := 1 + rng.Intn(3)
		adv := model.Random(rng, model.RandomParams{N: 6, T: 4, MaxValue: k, MaxRound: 4})
		f := adv.Pattern.NumFailures()
		res := sim.Run(MustUPmin(Params{N: 6, T: 4, K: k}), adv)
		bound := min(4/k+1, f/k+2)
		for i := 0; i < 6; i++ {
			if !adv.Pattern.Correct(i) {
				continue
			}
			d := res.Decisions[i]
			if d == nil {
				t.Fatalf("trial %d (k=%d, %s): correct %d undecided", trial, k, adv, i)
			}
			if d.Time > bound {
				t.Fatalf("trial %d (k=%d, %s): correct %d decided at %d > bound %d",
					trial, k, adv, i, d.Time, bound)
			}
		}
	}
}

func TestOptminDecidesOnlyWhenRuleHolds(t *testing.T) {
	// The decision time equals the first time at which (low ∨ HC<k) —
	// Optmin neither hesitates nor jumps the rule.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 80; trial++ {
		k := 1 + rng.Intn(2)
		adv := model.Random(rng, model.RandomParams{N: 5, T: 3, MaxValue: k, MaxRound: 3})
		p := MustOptmin(Params{N: 5, T: 3, K: k})
		res := sim.Run(p, adv)
		g := res.Graph
		for i := 0; i < 5; i++ {
			d := res.Decisions[i]
			if d == nil {
				continue
			}
			if !(g.Low(i, d.Time, k) || g.HiddenCapacity(i, d.Time) < k) {
				t.Fatalf("decision without rule at ⟨%d,%d⟩ (%s)", i, d.Time, adv)
			}
			for m := 0; m < d.Time; m++ {
				if g.Low(i, m, k) || g.HiddenCapacity(i, m) < k {
					t.Fatalf("rule held at ⟨%d,%d⟩ but decision at %d (%s)", i, m, d.Time, adv)
				}
			}
		}
	}
}

func BenchmarkOptminCollapse(b *testing.B) {
	p := model.CollapseParams{K: 3, R: 5, ExtraCorrect: 4}
	adv, err := model.Collapse(p)
	if err != nil {
		b.Fatal(err)
	}
	proto := MustOptmin(Params{N: adv.N(), T: model.CollapseT(p), K: 3})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(proto, adv)
	}
}

func BenchmarkUPminCollapse(b *testing.B) {
	p := model.CollapseParams{K: 3, R: 5, ExtraCorrect: 4}
	adv, err := model.Collapse(p)
	if err != nil {
		b.Fatal(err)
	}
	proto := MustUPmin(Params{N: adv.N(), T: model.CollapseT(p), K: 3})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(proto, adv)
	}
}
