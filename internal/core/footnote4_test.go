package core

// Footnote 4: all results hold verbatim when the value domain is
// {0,…,d} for d ≥ k, with every value ≥ k considered high. The protocols
// never special-case the domain, so this exhaustively re-verifies the
// tasks and bounds with d > k.

import (
	"testing"

	"setconsensus/internal/check"
	"setconsensus/internal/enum"
	"setconsensus/internal/knowledge"
	"setconsensus/internal/model"
	"setconsensus/internal/sim"
)

func TestFootnote4LargerValueDomain(t *testing.T) {
	// k = 2 with values {0, 1, 3, 4}: two distinct high values, both of
	// which may be decided by high processes.
	p := Params{N: 4, T: 2, K: 2}
	space := enum.Space{N: 4, T: 2, MaxRound: 2, Values: []int{0, 1, 3, 4}}
	opt := MustOptmin(p)
	upmin := MustUPmin(p)
	total := 0
	err := space.ForEach(func(adv *model.Adversary) bool {
		total++
		g := knowledge.New(adv, p.T/p.K+1)
		if err := check.VerifyRun(sim.RunWithGraph(opt, g), check.Task{K: 2}); err != nil {
			t.Fatalf("Optmin: %v", err)
		}
		if err := check.VerifyRun(sim.RunWithGraph(upmin, g), check.Task{K: 2, Uniform: true}); err != nil {
			t.Fatalf("u-Pmin: %v", err)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("footnote-4 domain verified on %d adversaries", total)
}
