package core

// Ablation tests (DESIGN.md §7): each component of the Optmin decision
// rule is load-bearing. Removing the hidden-capacity test loses
// termination on all-high runs; loosening the threshold by one breaks
// k-Agreement on hidden-chain adversaries.

import (
	"testing"

	"setconsensus/internal/check"
	"setconsensus/internal/knowledge"
	"setconsensus/internal/model"
	"setconsensus/internal/sim"
)

// lowOnly is Optmin without the hidden-capacity clause.
func lowOnly(p Params) *sim.Func {
	return &sim.Func{
		ProtoName: "ablation:low-only",
		Horizon:   p.T/p.K + 1,
		Rule: func(g *knowledge.Graph, i model.Proc, m int) (model.Value, bool) {
			if g.Low(i, m, p.K) {
				return g.Min(i, m), true
			}
			return 0, false
		},
	}
}

// offByOne is Optmin with HC ≤ k instead of HC < k.
func offByOne(p Params) *sim.Func {
	return &sim.Func{
		ProtoName: "ablation:hc-off-by-one",
		Horizon:   p.T/p.K + 1,
		Rule: func(g *knowledge.Graph, i model.Proc, m int) (model.Value, bool) {
			if g.Low(i, m, p.K) || g.HiddenCapacity(i, m) <= p.K {
				return g.Min(i, m), true
			}
			return 0, false
		},
	}
}

func TestOptminAblationLowOnlyNeverTerminatesHighRuns(t *testing.T) {
	// All inputs high: without the HC clause nobody ever decides, so the
	// Decision property fails.
	p := Params{N: 5, T: 3, K: 2}
	adv := model.NewBuilder(5, 2).MustBuild()
	res := sim.Run(lowOnly(p), adv)
	if err := check.VerifyRun(res, check.Task{K: 2}); err == nil {
		t.Fatal("low-only ablation must violate Decision on all-high runs")
	}
	// The real protocol of course terminates.
	if err := check.VerifyRun(sim.Run(MustOptmin(p), adv), check.Task{K: 2}); err != nil {
		t.Fatalf("Optmin itself failed: %v", err)
	}
}

func TestOptminAblationOffByOneViolatesAgreement(t *testing.T) {
	// The Fig. 2 situation realized: k = 2 hidden chains of depth 1 carry
	// the low values 0 and 1 while the observer family is high. With the
	// threshold loosened to HC ≤ k, high processes decide the high value
	// at time 1 even though both chains may still surface, and the chain
	// receivers decide 0 and 1 — three values under 2-set consensus.
	k := 2
	adv := model.NewBuilder(8, k).
		Input(1, 0).Input(2, 1).
		CrashSendingTo(1, 1, 3).
		CrashSendingTo(2, 1, 4).
		MustBuild()
	p := Params{N: 8, T: 7, K: k}
	res := sim.Run(offByOne(p), adv)
	if err := check.VerifyRun(res, check.Task{K: k}); err == nil {
		t.Fatalf("off-by-one ablation must violate %d-Agreement: %s", k, res)
	}
	// The real rule is safe on the same adversary.
	if err := check.VerifyRun(sim.Run(MustOptmin(p), adv), check.Task{K: k}); err != nil {
		t.Fatalf("Optmin itself failed: %v", err)
	}
}

func TestUPminAblationNoPersistenceViolatesUniformAgreement(t *testing.T) {
	// u-Pmin without the persistence guard: a process that decides a
	// freshly learned low value and then crashes can leave the system
	// deciding a different value — uniform agreement breaks.
	k := 1
	p := Params{N: 4, T: 3, K: k}
	noPersist := &sim.Func{
		ProtoName: "ablation:no-persistence",
		Horizon:   p.T/p.K + 1,
		Rule: func(g *knowledge.Graph, i model.Proc, m int) (model.Value, bool) {
			if g.Low(i, m, k) || g.HiddenCapacity(i, m) < k {
				return g.Min(i, m), true
			}
			if m == p.T/p.K+1 {
				return g.Min(i, m), true
			}
			return 0, false
		},
	}
	// Process 0 holds 0, crashes in round 1 reaching only process 1;
	// process 1 decides 0 at time 1 (it is low) and crashes in round 2
	// silently. The survivors never learn 0 and decide 1.
	adv := model.NewBuilder(4, 1).
		Input(0, 0).
		CrashSendingTo(0, 1, 1).
		CrashSilent(1, 2).
		MustBuild()
	res := sim.Run(noPersist, adv)
	if err := check.VerifyRun(res, check.Task{K: k, Uniform: true}); err == nil {
		t.Fatalf("no-persistence ablation must violate uniform agreement: %s", res)
	}
	// u-Pmin handles the same adversary.
	if err := check.VerifyRun(sim.Run(MustUPmin(p), adv), check.Task{K: k, Uniform: true}); err != nil {
		t.Fatalf("u-Pmin itself failed: %v", err)
	}
}
