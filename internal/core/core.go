// Package core implements the paper's protocols: Optmin[k], the unbeatable
// protocol for nonuniform k-set consensus (§4), and u-Pmin[k], the uniform
// k-set consensus protocol that strictly dominates all prior early-deciding
// solutions (§5), together with their k=1 specializations Opt0 and u-Opt0
// from the authors' earlier unbeatable-consensus paper (§3).
//
// Both protocols are stated exactly as in the paper, as decision rules of
// a full-information protocol over the knowledge substrate:
//
//	Optmin[k]  (undecided i at time m):
//	    if i is low or HC⟨i,m⟩ < k then decide(Min⟨i,m⟩)
//
//	u-Pmin[k]  (undecided i at time m):
//	    if (i is low or HC⟨i,m⟩ < k) and i knows Min⟨i,m⟩ will persist
//	        then decide(Min⟨i,m⟩)
//	    elseif m > 0 and (⟨i,m−1⟩ was low or HC⟨i,m−1⟩ < k)
//	        then decide(Min⟨i,m−1⟩)
//	    elseif m = ⌊t/k⌋+1 then decide(Min⟨i,m⟩)
package core

import (
	"fmt"

	"setconsensus/internal/knowledge"
	"setconsensus/internal/model"
)

// Params configures a protocol instance: n processes, an a-priori bound of
// t crashes, and coordination degree k.
type Params struct {
	N int
	T int
	K int
}

// Validate checks the parameter ranges of §2.
func (p Params) Validate() error {
	if p.N < 2 {
		return fmt.Errorf("core: need n ≥ 2, got %d", p.N)
	}
	if p.T < 0 || p.T > p.N-1 {
		return fmt.Errorf("core: need 0 ≤ t ≤ n−1, got t=%d n=%d", p.T, p.N)
	}
	if p.K < 1 {
		return fmt.Errorf("core: need k ≥ 1, got %d", p.K)
	}
	return nil
}

// Optmin is the unbeatable nonuniform k-set consensus protocol of §4.1.
// A process decides its minimum seen value as soon as it is low (has seen
// a value < k) or its hidden capacity drops below k. Every process decides
// by time ⌊f/k⌋+1 (Proposition 1), and by Theorem 1 no protocol solving
// nonuniform k-set consensus can have any process decide earlier in any
// run without some process deciding later in another.
type Optmin struct {
	p    Params
	name string
}

// NewOptmin builds Optmin[k] for the given parameters.
func NewOptmin(p Params) (*Optmin, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Optmin{p: p, name: fmt.Sprintf("Optmin[%d]", p.K)}, nil
}

// MustOptmin is NewOptmin for fixed test/experiment parameters.
func MustOptmin(p Params) *Optmin {
	o, err := NewOptmin(p)
	if err != nil {
		panic(err)
	}
	return o
}

// NewOpt0 builds the k=1 specialization: the unbeatable (1-set) consensus
// protocol Opt0 reviewed in §3 ("if seen 0 decide 0; else if some time
// contains no hidden node decide 1"), which is exactly Optmin[1].
func NewOpt0(n, t int) (*Optmin, error) {
	o, err := NewOptmin(Params{N: n, T: t, K: 1})
	if err != nil {
		return nil, err
	}
	o.name = "Opt0"
	return o, nil
}

// Name implements sim.Protocol.
func (o *Optmin) Name() string { return o.name }

// Params returns the protocol parameters.
func (o *Optmin) Params() Params { return o.p }

// WorstCaseDecisionTime implements sim.Protocol: ⌊t/k⌋+1 bounds ⌊f/k⌋+1.
func (o *Optmin) WorstCaseDecisionTime() int { return o.p.T/o.p.K + 1 }

// Decide implements sim.Protocol with the Optmin[k] rule.
func (o *Optmin) Decide(g *knowledge.Graph, i model.Proc, m int) (model.Value, bool) {
	if g.Low(i, m, o.p.K) || g.HiddenCapacity(i, m) < o.p.K {
		return g.Min(i, m), true
	}
	return 0, false
}

// UPmin is the uniform k-set consensus protocol u-Pmin[k] of §5. Every
// process decides by time min{⌊t/k⌋+1, ⌊f/k⌋+2} (Theorem 3), and the
// protocol strictly dominates the early-deciding uniform protocols of the
// literature; on the Fig. 4 family it decides at time 2 where they need
// ⌊t/k⌋+1.
type UPmin struct {
	p    Params
	name string
}

// NewUPmin builds u-Pmin[k] for the given parameters.
func NewUPmin(p Params) (*UPmin, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &UPmin{p: p, name: fmt.Sprintf("u-Pmin[%d]", p.K)}, nil
}

// MustUPmin is NewUPmin for fixed test/experiment parameters.
func MustUPmin(p Params) *UPmin {
	u, err := NewUPmin(p)
	if err != nil {
		panic(err)
	}
	return u
}

// NewUOpt0 builds the k=1 specialization u-Opt0 (uniform consensus).
func NewUOpt0(n, t int) (*UPmin, error) {
	u, err := NewUPmin(Params{N: n, T: t, K: 1})
	if err != nil {
		return nil, err
	}
	u.name = "u-Opt0"
	return u, nil
}

// Name implements sim.Protocol.
func (u *UPmin) Name() string { return u.name }

// Params returns the protocol parameters.
func (u *UPmin) Params() Params { return u.p }

// WorstCaseDecisionTime implements sim.Protocol: the unconditional
// deadline of the third rule.
func (u *UPmin) WorstCaseDecisionTime() int { return u.p.T/u.p.K + 1 }

// Decide implements sim.Protocol with the u-Pmin[k] rule.
func (u *UPmin) Decide(g *knowledge.Graph, i model.Proc, m int) (model.Value, bool) {
	k, t := u.p.K, u.p.T
	if g.Low(i, m, k) || g.HiddenCapacity(i, m) < k {
		if min := g.Min(i, m); g.Persists(i, m, min, t) {
			return min, true
		}
	}
	if m > 0 && (g.Low(i, m-1, k) || g.HiddenCapacity(i, m-1) < k) {
		return g.Min(i, m-1), true
	}
	if m == t/k+1 {
		return g.Min(i, m), true
	}
	return 0, false
}
