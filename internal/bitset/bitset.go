// Package bitset provides a compact dynamic bit set keyed by small
// non-negative integers. It is the kernel under the knowledge substrate:
// every "set of processes" in a view (seen, hidden, crashed, delivered)
// is a Set, so the per-layer classification work in hidden-capacity
// computations is word-parallel.
package bitset

import (
	"math/bits"
	"strconv"
	"strings"
)

const wordBits = 64

// Set is a growable bit set. The zero value is an empty set ready to use.
// Methods with a Set result mutate and return the receiver to allow
// chaining; use Clone first when the original must be preserved.
type Set struct {
	words []uint64
}

// New returns an empty set with capacity preallocated for values in [0, n).
func New(n int) *Set {
	if n < 0 {
		n = 0
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromSlice returns a set holding exactly the given elements.
func FromSlice(elems []int) *Set {
	s := &Set{}
	for _, e := range elems {
		s.Add(e)
	}
	return s
}

// Full returns the set {0, 1, …, n−1}.
func Full(n int) *Set {
	s := New(n)
	for i := 0; i < n; i++ {
		s.Add(i)
	}
	return s
}

func (s *Set) grow(word int) {
	for len(s.words) <= word {
		s.words = append(s.words, 0)
	}
}

// Add inserts i into the set. Negative values are ignored.
func (s *Set) Add(i int) *Set {
	if i < 0 {
		return s
	}
	w := i / wordBits
	s.grow(w)
	s.words[w] |= 1 << uint(i%wordBits)
	return s
}

// Remove deletes i from the set if present.
func (s *Set) Remove(i int) *Set {
	if i < 0 {
		return s
	}
	w := i / wordBits
	if w < len(s.words) {
		s.words[w] &^= 1 << uint(i%wordBits)
	}
	return s
}

// Contains reports whether i is in the set.
func (s *Set) Contains(i int) bool {
	if s == nil || i < 0 {
		return false
	}
	w := i / wordBits
	return w < len(s.words) && s.words[w]&(1<<uint(i%wordBits)) != 0
}

// Count returns the number of elements in the set.
func (s *Set) Count() int {
	if s == nil {
		return 0
	}
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool { return s.Count() == 0 }

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	if s == nil {
		return &Set{}
	}
	c := &Set{words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// UnionWith adds every element of o to s and returns s.
func (s *Set) UnionWith(o *Set) *Set {
	if o == nil {
		return s
	}
	s.grow(len(o.words) - 1)
	for i, w := range o.words {
		s.words[i] |= w
	}
	return s
}

// IntersectWith removes from s every element not in o and returns s.
func (s *Set) IntersectWith(o *Set) *Set {
	for i := range s.words {
		if o == nil || i >= len(o.words) {
			s.words[i] = 0
		} else {
			s.words[i] &= o.words[i]
		}
	}
	return s
}

// SubtractWith removes every element of o from s and returns s.
func (s *Set) SubtractWith(o *Set) *Set {
	if o == nil {
		return s
	}
	for i := range s.words {
		if i < len(o.words) {
			s.words[i] &^= o.words[i]
		}
	}
	return s
}

// Clear removes every element, keeping the backing storage, and returns
// s. It is the reset step of scratch sets on hot paths: after the first
// few calls a Clear-then-Add cycle allocates nothing.
func (s *Set) Clear() *Set {
	for i := range s.words {
		s.words[i] = 0
	}
	return s
}

// CopyFrom makes s hold exactly the elements of o, reusing s's backing
// array when it is large enough, and returns s. It is the in-place
// counterpart of Clone for scratch buffers on hot paths.
func (s *Set) CopyFrom(o *Set) *Set {
	if o == nil {
		for i := range s.words {
			s.words[i] = 0
		}
		return s
	}
	if cap(s.words) < len(o.words) {
		s.words = make([]uint64, len(o.words))
	}
	s.words = s.words[:len(o.words)]
	copy(s.words, o.words)
	return s
}

// Words returns the backing word slice: bit j of Words()[i] is element
// i*64+j. The slice aliases the set — callers must not grow it, and
// writes through it are writes to the set. It exists so flat-arena
// layouts (internal/knowledge) can run word-parallel kernels without
// copying.
func (s *Set) Words() []uint64 {
	if s == nil {
		return nil
	}
	return s.words
}

// Wrap returns a Set value whose storage is exactly the given word slice,
// aliasing it: mutations of the set write into words. The capacity is
// clipped to len(words), so a mutating method that needs to grow
// reallocates and detaches from the arena rather than appending into a
// shared slab's spare capacity; arena owners should still size words for
// the full element range to keep aliasing writes aliased.
func Wrap(words []uint64) Set { return Set{words: words[:len(words):len(words)]} }

// AndNotCount returns |s \ o| without materializing the difference.
func AndNotCount(s, o *Set) int {
	if s == nil {
		return 0
	}
	n := 0
	for i, w := range s.words {
		if o != nil && i < len(o.words) {
			w &^= o.words[i]
		}
		n += bits.OnesCount64(w)
	}
	return n
}

// OrCount returns |s ∪ o| without materializing the union.
func OrCount(s, o *Set) int {
	a, b := s, o
	if a == nil {
		a = &Set{}
	}
	if b == nil {
		b = &Set{}
	}
	long, short := a.words, b.words
	if len(short) > len(long) {
		long, short = short, long
	}
	n := 0
	for i, w := range short {
		n += bits.OnesCount64(w | long[i])
	}
	for _, w := range long[len(short):] {
		n += bits.OnesCount64(w)
	}
	return n
}

// Union returns a fresh set holding s ∪ o.
func Union(s, o *Set) *Set { return s.Clone().UnionWith(o) }

// Intersect returns a fresh set holding s ∩ o.
func Intersect(s, o *Set) *Set { return s.Clone().IntersectWith(o) }

// Subtract returns a fresh set holding s \ o.
func Subtract(s, o *Set) *Set { return s.Clone().SubtractWith(o) }

// Equal reports whether s and o hold exactly the same elements.
func (s *Set) Equal(o *Set) bool {
	a, b := s, o
	if a == nil {
		a = &Set{}
	}
	if b == nil {
		b = &Set{}
	}
	long, short := a.words, b.words
	if len(short) > len(long) {
		long, short = short, long
	}
	for i, w := range short {
		if w != long[i] {
			return false
		}
	}
	for _, w := range long[len(short):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every element of s is in o.
func (s *Set) SubsetOf(o *Set) bool {
	if s == nil {
		return true
	}
	for i, w := range s.words {
		var ow uint64
		if o != nil && i < len(o.words) {
			ow = o.words[i]
		}
		if w&^ow != 0 {
			return false
		}
	}
	return true
}

// Elems returns the elements in increasing order.
func (s *Set) Elems() []int {
	if s == nil {
		return nil
	}
	out := make([]int, 0, s.Count())
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*wordBits+b)
			w &^= 1 << uint(b)
		}
	}
	return out
}

// ForEach calls fn for each element in increasing order, stopping early if
// fn returns false.
func (s *Set) ForEach(fn func(i int) bool) {
	if s == nil {
		return
	}
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &^= 1 << uint(b)
		}
	}
}

// Min returns the smallest element and true, or (0, false) when empty.
func (s *Set) Min() (int, bool) {
	if s == nil {
		return 0, false
	}
	for wi, w := range s.words {
		if w != 0 {
			return wi*wordBits + bits.TrailingZeros64(w), true
		}
	}
	return 0, false
}

// String renders the set as "{a, b, c}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString(strconv.Itoa(i))
		return true
	})
	b.WriteByte('}')
	return b.String()
}
