package bitset

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestZeroValueUsable(t *testing.T) {
	var s Set
	if !s.Empty() {
		t.Fatal("zero value should be empty")
	}
	s.Add(5)
	if !s.Contains(5) || s.Count() != 1 {
		t.Fatalf("after Add(5): contains=%v count=%d", s.Contains(5), s.Count())
	}
}

func TestAddRemoveContains(t *testing.T) {
	s := New(10)
	for _, v := range []int{0, 3, 63, 64, 65, 200} {
		s.Add(v)
	}
	for _, v := range []int{0, 3, 63, 64, 65, 200} {
		if !s.Contains(v) {
			t.Errorf("missing %d", v)
		}
	}
	for _, v := range []int{1, 2, 62, 66, 199, 201} {
		if s.Contains(v) {
			t.Errorf("unexpected %d", v)
		}
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Error("64 not removed")
	}
	if got := s.Count(); got != 5 {
		t.Errorf("count = %d, want 5", got)
	}
}

func TestNegativeIgnored(t *testing.T) {
	s := New(4)
	s.Add(-1)
	if !s.Empty() {
		t.Error("Add(-1) must be a no-op")
	}
	if s.Contains(-3) {
		t.Error("Contains(-3) must be false")
	}
	s.Remove(-2) // must not panic
}

func TestFull(t *testing.T) {
	s := Full(70)
	if s.Count() != 70 {
		t.Fatalf("count = %d, want 70", s.Count())
	}
	for i := 0; i < 70; i++ {
		if !s.Contains(i) {
			t.Fatalf("missing %d", i)
		}
	}
	if s.Contains(70) {
		t.Fatal("should not contain 70")
	}
}

func TestSetOps(t *testing.T) {
	a := FromSlice([]int{1, 2, 3, 100})
	b := FromSlice([]int{2, 3, 4})
	if got := Union(a, b).Elems(); !equalInts(got, []int{1, 2, 3, 4, 100}) {
		t.Errorf("union = %v", got)
	}
	if got := Intersect(a, b).Elems(); !equalInts(got, []int{2, 3}) {
		t.Errorf("intersect = %v", got)
	}
	if got := Subtract(a, b).Elems(); !equalInts(got, []int{1, 100}) {
		t.Errorf("subtract = %v", got)
	}
	// operands unchanged
	if !equalInts(a.Elems(), []int{1, 2, 3, 100}) || !equalInts(b.Elems(), []int{2, 3, 4}) {
		t.Error("non-mutating ops changed operands")
	}
}

func TestEqualAcrossCapacities(t *testing.T) {
	a := New(4).Add(1)
	b := New(500).Add(1)
	if !a.Equal(b) || !b.Equal(a) {
		t.Error("sets with same elements but different capacity must be Equal")
	}
	b.Add(400)
	if a.Equal(b) {
		t.Error("differing sets reported Equal")
	}
}

func TestSubsetOf(t *testing.T) {
	a := FromSlice([]int{1, 2})
	b := FromSlice([]int{1, 2, 3})
	if !a.SubsetOf(b) {
		t.Error("a ⊆ b expected")
	}
	if b.SubsetOf(a) {
		t.Error("b ⊄ a expected")
	}
	var empty Set
	if !empty.SubsetOf(a) {
		t.Error("∅ ⊆ a expected")
	}
}

func TestNilReceiverSafety(t *testing.T) {
	var s *Set
	if s.Contains(1) || s.Count() != 0 || !s.Empty() {
		t.Error("nil set should behave as empty for read ops")
	}
	if got := s.Elems(); len(got) != 0 {
		t.Errorf("nil Elems = %v", got)
	}
	if _, ok := s.Min(); ok {
		t.Error("nil Min must report empty")
	}
	c := s.Clone()
	if !c.Empty() {
		t.Error("nil Clone should be empty")
	}
}

func TestMin(t *testing.T) {
	s := FromSlice([]int{130, 5, 64})
	if v, ok := s.Min(); !ok || v != 5 {
		t.Errorf("Min = %d,%v want 5,true", v, ok)
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := FromSlice([]int{1, 2, 3, 4})
	var seen []int
	s.ForEach(func(i int) bool {
		seen = append(seen, i)
		return len(seen) < 2
	})
	if !equalInts(seen, []int{1, 2}) {
		t.Errorf("seen = %v", seen)
	}
}

func TestString(t *testing.T) {
	if got := FromSlice([]int{2, 0}).String(); got != "{0, 2}" {
		t.Errorf("String = %q", got)
	}
	if got := New(3).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

// Property: Elems is sorted and round-trips through FromSlice.
func TestQuickRoundTrip(t *testing.T) {
	f := func(raw []uint16) bool {
		elems := make([]int, len(raw))
		for i, r := range raw {
			elems[i] = int(r % 512)
		}
		s := FromSlice(elems)
		got := s.Elems()
		if !sort.IntsAreSorted(got) {
			return false
		}
		return FromSlice(got).Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: De Morgan-ish identity |A∪B| = |A| + |B| − |A∩B|.
func TestQuickInclusionExclusion(t *testing.T) {
	f := func(as, bs []uint16) bool {
		a, b := fromRaw(as), fromRaw(bs)
		return Union(a, b).Count() == a.Count()+b.Count()-Intersect(a, b).Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: A \ B is disjoint from B and A = (A\B) ∪ (A∩B).
func TestQuickSubtractPartition(t *testing.T) {
	f := func(as, bs []uint16) bool {
		a, b := fromRaw(as), fromRaw(bs)
		diff := Subtract(a, b)
		if !Intersect(diff, b).Empty() {
			return false
		}
		return Union(diff, Intersect(a, b)).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func fromRaw(raw []uint16) *Set {
	s := &Set{}
	for _, r := range raw {
		s.Add(int(r % 300))
	}
	return s
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkUnionWith(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := New(1024)
	c := New(1024)
	for i := 0; i < 512; i++ {
		a.Add(rng.Intn(1024))
		c.Add(rng.Intn(1024))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.UnionWith(c)
	}
}

func BenchmarkCount(b *testing.B) {
	s := Full(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Count() != 4096 {
			b.Fatal("bad count")
		}
	}
}

func TestCopyFrom(t *testing.T) {
	src := FromSlice([]int{1, 63, 64, 130})
	dst := FromSlice([]int{2, 200, 500})
	if got := dst.CopyFrom(src); got != dst {
		t.Fatal("CopyFrom must return the receiver")
	}
	if !dst.Equal(src) {
		t.Fatalf("copy mismatch: %s vs %s", dst, src)
	}
	// The copy must be independent of the source.
	src.Add(7)
	if dst.Contains(7) {
		t.Error("CopyFrom aliased the source")
	}
	// Shrinking copy into a larger buffer must clear the tail.
	big := FromSlice([]int{500})
	big.CopyFrom(FromSlice([]int{3}))
	if big.Contains(500) || !big.Contains(3) || big.Count() != 1 {
		t.Errorf("stale tail after shrinking CopyFrom: %s", big)
	}
	// nil source empties the receiver in place.
	big.CopyFrom(nil)
	if !big.Empty() {
		t.Errorf("CopyFrom(nil) left %s", big)
	}
}

func TestWordsAliases(t *testing.T) {
	s := New(128).Add(0).Add(64)
	w := s.Words()
	if len(w) != 2 || w[0] != 1 || w[1] != 1 {
		t.Fatalf("unexpected words %v", w)
	}
	w[0] |= 1 << 5
	if !s.Contains(5) {
		t.Error("Words must alias the set storage")
	}
	var nilSet *Set
	if nilSet.Words() != nil {
		t.Error("nil set must have nil words")
	}
}

func TestWrapAliases(t *testing.T) {
	arena := make([]uint64, 2)
	s := Wrap(arena)
	s.Add(70)
	if arena[1] != 1<<6 {
		t.Fatalf("Wrap set must write into the arena, got %v", arena)
	}
	arena[0] = 1 << 3
	if !s.Contains(3) {
		t.Error("arena writes must be visible through the wrapped set")
	}
}

func TestAndNotCountPartialWords(t *testing.T) {
	cases := []struct {
		a, b []int
		want int
	}{
		{nil, nil, 0},
		{[]int{0, 63, 64, 127, 128}, nil, 5},
		{[]int{0, 63, 64, 127, 128}, []int{63, 128}, 3},
		{[]int{5}, []int{5, 700}, 0},
		// a longer than b: the tail beyond b's words counts fully.
		{[]int{10, 300, 301}, []int{10}, 2},
		// b longer than a: b's tail is irrelevant.
		{[]int{1}, []int{1, 2, 900}, 0},
	}
	for _, c := range cases {
		a, b := FromSlice(c.a), FromSlice(c.b)
		if got := AndNotCount(a, b); got != c.want {
			t.Errorf("AndNotCount(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := Subtract(a, b).Count(); got != c.want {
			t.Errorf("materialized subtract disagrees on (%v, %v): %d vs %d", c.a, c.b, got, c.want)
		}
	}
	if got := AndNotCount(nil, FromSlice([]int{1})); got != 0 {
		t.Errorf("AndNotCount(nil, x) = %d", got)
	}
}

func TestOrCountPartialWords(t *testing.T) {
	cases := []struct {
		a, b []int
		want int
	}{
		{nil, nil, 0},
		{[]int{0, 63}, nil, 2},
		{nil, []int{64, 65}, 2},
		{[]int{0, 63, 64}, []int{63, 64, 200}, 4},
		// Unequal word lengths in both orders.
		{[]int{1}, []int{1, 500}, 2},
		{[]int{1, 500}, []int{1}, 2},
	}
	for _, c := range cases {
		a, b := FromSlice(c.a), FromSlice(c.b)
		if got := OrCount(a, b); got != c.want {
			t.Errorf("OrCount(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := Union(a, b).Count(); got != c.want {
			t.Errorf("materialized union disagrees on (%v, %v): %d vs %d", c.a, c.b, got, c.want)
		}
	}
}

func TestQuickCountKernelsMatchMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		a, b := &Set{}, &Set{}
		for i := 0; i < rng.Intn(40); i++ {
			a.Add(rng.Intn(192))
		}
		for i := 0; i < rng.Intn(40); i++ {
			b.Add(rng.Intn(192))
		}
		if got, want := AndNotCount(a, b), Subtract(a, b).Count(); got != want {
			t.Fatalf("AndNotCount(%s, %s) = %d, want %d", a, b, got, want)
		}
		if got, want := OrCount(a, b), Union(a, b).Count(); got != want {
			t.Fatalf("OrCount(%s, %s) = %d, want %d", a, b, got, want)
		}
		c := New(0).CopyFrom(a)
		if !c.Equal(a) {
			t.Fatalf("CopyFrom(%s) = %s", a, c)
		}
	}
}
