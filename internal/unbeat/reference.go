package unbeat

import (
	"fmt"

	"setconsensus/internal/bitset"
	"setconsensus/internal/knowledge"
	"setconsensus/internal/model"
	"setconsensus/internal/sim"
)

// referenceSearch is the pre-pipeline deviation search, kept verbatim as
// the behavioral reference for the staged implementation (the same
// arrangement internal/knowledge uses for its arena rewrite): a single
// sequential pass that allocates a deviation map per candidate and a
// decided-value bitset per (candidate, run). Equivalence tests pin the
// pipeline's verdicts and counters against it, and the benchmark pair
// BenchmarkAnalyze / BenchmarkSearchReference measures what the staged,
// scratch-based rework buys. Counters follow the pipeline's beaten-case
// convention (canonical prefix through the winner) so reports compare
// field for field; the witness is typed the same way.
func referenceSearch(base sim.Protocol, p SearchParams) (*SearchReport, error) {
	if p.Width < 1 || p.Width > 2 {
		return nil, fmt.Errorf("unbeat: search width must be 1 or 2, got %d", p.Width)
	}
	ids := map[string]int{}
	var viewVals []*bitset.Set // per view id: Vals of the view
	var viewPre []bool         // ever occurs strictly before a base decision
	var runs []*searchRun

	horizon := p.T/p.K + 1
	builder := knowledge.NewBuilder()
	err := p.Space.ForEach(func(adv *model.Adversary) bool {
		g := builder.Build(adv, horizon)
		defer g.Release()
		res := sim.RunWithGraph(base, g)
		sr := &searchRun{
			adv:      adv,
			seq:      make([][]int, adv.N()),
			decTime:  make([]int, adv.N()),
			decValue: make([]model.Value, adv.N()),
			correct:  make([]bool, adv.N()),
			present:  &bitset.Set{},
		}
		for _, v := range adv.Inputs {
			sr.present.Add(v)
		}
		for i := 0; i < adv.N(); i++ {
			sr.correct[i] = adv.Pattern.Correct(i)
			sr.decTime[i] = res.DecisionTime(i)
			if d := res.Decisions[i]; d != nil {
				sr.decValue[i] = d.Value
			}
			last := sr.decTime[i]
			if last < 0 {
				last = adv.Pattern.CrashRound(i) - 1
				if last > horizon {
					last = horizon
				}
			}
			for m := 0; m <= last; m++ {
				fp := g.Fingerprint(i, m)
				id, ok := ids[fp]
				if !ok {
					id = len(viewVals)
					ids[fp] = id
					viewVals = append(viewVals, g.Vals(i, m))
					viewPre = append(viewPre, false)
				}
				if m < sr.decTime[i] || sr.decTime[i] < 0 {
					viewPre[id] = true
				}
				sr.seq[i] = append(sr.seq[i], id)
			}
		}
		runs = append(runs, sr)
		return true
	})
	if err != nil {
		return nil, err
	}

	var devs []Deviation
	for id, pre := range viewPre {
		if !pre {
			continue
		}
		viewVals[id].ForEach(func(v int) bool {
			devs = append(devs, Deviation{View: id, Value: v})
			return true
		})
	}
	report := &SearchReport{Runs: len(runs), Views: len(devs)}

	// The seed's map-keyed candidate simulation: one map per candidate,
	// one bitset per (candidate, run).
	violates := func(dv map[int]model.Value, sr *searchRun) (bool, bool) {
		decided := &bitset.Set{}
		strict := false
		undecidedCorrect := false
		for i := range sr.seq {
			dTime, dVal := sr.decTime[i], sr.decValue[i]
			final := dTime
			finalVal := dVal
			for m, id := range sr.seq[i] {
				if v, hit := dv[id]; hit {
					final, finalVal = m, v
					if dTime < 0 || m < dTime {
						strict = true
					}
					break
				}
			}
			if final < 0 {
				if sr.correct[i] {
					undecidedCorrect = true
				}
				continue
			}
			if !sr.present.Contains(finalVal) {
				return true, strict // Validity broken
			}
			if p.Uniform || sr.correct[i] {
				decided.Add(finalVal)
			}
		}
		if undecidedCorrect {
			return true, strict // Decision broken
		}
		return decided.Count() > p.K, strict
	}
	testCandidate := func(dv map[int]model.Value) bool {
		strictAnywhere := false
		for _, sr := range runs {
			bad, strict := violates(dv, sr)
			if bad {
				return false
			}
			strictAnywhere = strictAnywhere || strict
		}
		return strictAnywhere
	}
	witness := func(ds []Deviation) *Witness {
		w := &Witness{Deviations: append([]Deviation(nil), ds...)}
		dv := map[int]model.Value{}
		for _, d := range ds {
			dv[d.View] = d.Value
		}
		for _, sr := range runs {
			if _, strict := violates(dv, sr); strict {
				w.AdvFingerprint = advFingerprintHex(sr.adv)
				w.Adversary = sr.adv.String()
				break
			}
		}
		return w
	}

	// Width 1.
	singleViolated := make([]*bitset.Set, len(devs))
	for di, d := range devs {
		dv := map[int]model.Value{d.View: d.Value}
		vio := &bitset.Set{}
		strictAnywhere := false
		for ri, sr := range runs {
			bad, strict := violates(dv, sr)
			if bad {
				vio.Add(ri)
			}
			strictAnywhere = strictAnywhere || strict
		}
		singleViolated[di] = vio
		if vio.Empty() && strictAnywhere {
			report.Beaten = true
			report.Candidates = di + 1
			report.Witness = witness(devs[di : di+1])
			return report, nil
		}
	}
	report.Candidates = len(devs)
	if p.Width == 1 {
		return report, nil
	}

	// Width 2 with the locality prune.
	occurs := make([]*bitset.Set, len(viewVals))
	for i := range occurs {
		occurs[i] = &bitset.Set{}
	}
	for ri, sr := range runs {
		for _, row := range sr.seq {
			for _, id := range row {
				occurs[id].Add(ri)
			}
		}
	}
	for ai := 0; ai < len(devs); ai++ {
		for bi := ai + 1; bi < len(devs); bi++ {
			if devs[ai].View == devs[bi].View {
				continue // one decision per view
			}
			if !singleViolated[ai].SubsetOf(occurs[devs[bi].View]) ||
				!singleViolated[bi].SubsetOf(occurs[devs[ai].View]) {
				report.PairsPruned++
				continue
			}
			report.PairsTested++
			dv := map[int]model.Value{devs[ai].View: devs[ai].Value, devs[bi].View: devs[bi].Value}
			if testCandidate(dv) {
				report.Beaten = true
				report.Candidates = len(devs) + report.PairsTested
				report.Witness = witness([]Deviation{devs[ai], devs[bi]})
				return report, nil
			}
		}
	}
	report.Candidates = len(devs) + report.PairsTested
	return report, nil
}
