package unbeat

import (
	"testing"

	"setconsensus/internal/baseline"
	"setconsensus/internal/core"
	"setconsensus/internal/enum"
	"setconsensus/internal/model"
	"setconsensus/internal/sim"
)

func TestSearchOptminUnbeatenK1(t *testing.T) {
	// Binary consensus over n=3, t=2, rounds ≤ 3: no rule deviating from
	// Opt0 at up to two views survives the task — Theorem 1 on the
	// bounded model.
	p := SearchParams{
		Space: enum.Space{N: 3, T: 2, MaxRound: 3, Values: []model.Value{0, 1}},
		K:     1, T: 2, Width: 2,
	}
	base := core.MustOptmin(core.Params{N: 3, T: 2, K: 1})
	rep, err := Search(base, p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Beaten {
		t.Fatalf("Optmin[1] beaten: %s", rep.Witness)
	}
	if rep.Views == 0 || rep.Candidates == 0 {
		t.Fatalf("degenerate search: %+v", rep)
	}
	t.Logf("runs=%d deviation-points=%d candidates=%d pairs(pruned=%d tested=%d)",
		rep.Runs, rep.Views, rep.Candidates, rep.PairsPruned, rep.PairsTested)
}

func TestSearchOptminUnbeatenK2(t *testing.T) {
	// 2-set consensus over n=4, t=2, crash rounds ≤ 2, width 1.
	p := SearchParams{
		Space: enum.Space{N: 4, T: 2, MaxRound: 2, Values: []model.Value{0, 1, 2}},
		K:     2, T: 2, Width: 1,
	}
	base := core.MustOptmin(core.Params{N: 4, T: 2, K: 2})
	rep, err := Search(base, p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Beaten {
		t.Fatalf("Optmin[2] beaten: %s", rep.Witness)
	}
	t.Logf("runs=%d deviation-points=%d candidates=%d", rep.Runs, rep.Views, rep.Candidates)
}

func TestSearchUPminConjectureProbe(t *testing.T) {
	// Conjecture 1 probe: u-Pmin[1] (uniform consensus) — the search
	// must find no width-2 beat on the bounded model either.
	p := SearchParams{
		Space: enum.Space{N: 3, T: 2, MaxRound: 2, Values: []model.Value{0, 1}},
		K:     1, T: 2, Uniform: true, Width: 2,
	}
	base := core.MustUPmin(core.Params{N: 3, T: 2, K: 1})
	rep, err := Search(base, p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Beaten {
		t.Fatalf("u-Pmin[1] beaten on the bounded model — Conjecture 1 witness? %s", rep.Witness)
	}
	t.Logf("runs=%d deviation-points=%d candidates=%d pairs tested=%d",
		rep.Runs, rep.Views, rep.Candidates, rep.PairsTested)
}

func TestSearchFindsBeatOfBeatableProtocol(t *testing.T) {
	// Sanity: FloodMin[1] (always waits until ⌊t/k⌋+1) IS beatable, and
	// the search must find a beating deviation.
	p := SearchParams{
		Space: enum.Space{N: 3, T: 1, MaxRound: 1, Values: []model.Value{0, 1}},
		K:     1, T: 1, Width: 1,
	}
	base := baseline.Must(baseline.FloodMin, core.Params{N: 3, T: 1, K: 1})
	rep, err := Search(base, p)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Beaten {
		t.Fatal("search failed to beat FloodMin — the search itself is broken")
	}
	t.Logf("beat: %s", rep.Witness)
}

func TestSearchWidthValidation(t *testing.T) {
	base := core.MustOptmin(core.Params{N: 3, T: 1, K: 1})
	_, err := Search(base, SearchParams{
		Space: enum.Space{N: 3, T: 1, MaxRound: 1, Values: []model.Value{0}},
		K:     1, T: 1, Width: 3,
	})
	if err == nil {
		t.Error("width 3 must be rejected")
	}
	var _ sim.Protocol = base
}
