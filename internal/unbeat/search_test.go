package unbeat

import (
	"context"
	"reflect"
	"testing"

	"setconsensus/internal/baseline"
	"setconsensus/internal/core"
	"setconsensus/internal/enum"
	"setconsensus/internal/knowledge"
	"setconsensus/internal/model"
	"setconsensus/internal/sim"
)

func TestSearchOptminUnbeatenK1(t *testing.T) {
	// Binary consensus over n=3, t=2, rounds ≤ 3: no rule deviating from
	// Opt0 at up to two views survives the task — Theorem 1 on the
	// bounded model.
	p := SearchParams{
		Space: enum.Space{N: 3, T: 2, MaxRound: 3, Values: []model.Value{0, 1}},
		K:     1, T: 2, Width: 2,
	}
	base := core.MustOptmin(core.Params{N: 3, T: 2, K: 1})
	rep, err := Search(context.Background(), base, p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Beaten {
		t.Fatalf("Optmin[1] beaten: %s", rep.Witness)
	}
	if rep.Views == 0 || rep.Candidates == 0 {
		t.Fatalf("degenerate search: %+v", rep)
	}
	t.Logf("runs=%d deviation-points=%d candidates=%d pairs(pruned=%d tested=%d)",
		rep.Runs, rep.Views, rep.Candidates, rep.PairsPruned, rep.PairsTested)
}

func TestSearchOptminUnbeatenK2(t *testing.T) {
	// 2-set consensus over n=4, t=2, crash rounds ≤ 2, width 1.
	p := SearchParams{
		Space: enum.Space{N: 4, T: 2, MaxRound: 2, Values: []model.Value{0, 1, 2}},
		K:     2, T: 2, Width: 1,
	}
	base := core.MustOptmin(core.Params{N: 4, T: 2, K: 2})
	rep, err := Search(context.Background(), base, p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Beaten {
		t.Fatalf("Optmin[2] beaten: %s", rep.Witness)
	}
	t.Logf("runs=%d deviation-points=%d candidates=%d", rep.Runs, rep.Views, rep.Candidates)
}

func TestSearchUPminConjectureProbe(t *testing.T) {
	// Conjecture 1 probe: u-Pmin[1] (uniform consensus) — the search
	// must find no width-2 beat on the bounded model either.
	p := SearchParams{
		Space: enum.Space{N: 3, T: 2, MaxRound: 2, Values: []model.Value{0, 1}},
		K:     1, T: 2, Uniform: true, Width: 2,
	}
	base := core.MustUPmin(core.Params{N: 3, T: 2, K: 1})
	rep, err := Search(context.Background(), base, p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Beaten {
		t.Fatalf("u-Pmin[1] beaten on the bounded model — Conjecture 1 witness? %s", rep.Witness)
	}
	t.Logf("runs=%d deviation-points=%d candidates=%d pairs tested=%d",
		rep.Runs, rep.Views, rep.Candidates, rep.PairsTested)
}

func TestSearchFindsBeatOfBeatableProtocol(t *testing.T) {
	// Sanity: FloodMin[1] (always waits until ⌊t/k⌋+1) IS beatable, and
	// the search must find a beating deviation with a typed witness.
	p := SearchParams{
		Space: enum.Space{N: 3, T: 1, MaxRound: 1, Values: []model.Value{0, 1}},
		K:     1, T: 1, Width: 1,
	}
	base := baseline.Must(baseline.FloodMin, core.Params{N: 3, T: 1, K: 1})
	rep, err := Search(context.Background(), base, p)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Beaten {
		t.Fatal("search failed to beat FloodMin — the search itself is broken")
	}
	w := rep.Witness
	if w == nil || len(w.Deviations) != 1 {
		t.Fatalf("width-1 beat must carry one typed deviation, got %+v", w)
	}
	if w.AdvFingerprint == "" || w.Adversary == "" {
		t.Fatalf("witness must identify the strict-win adversary, got %+v", w)
	}
	t.Logf("beat: %s", w)
}

func TestSearchWidthValidation(t *testing.T) {
	base := core.MustOptmin(core.Params{N: 3, T: 1, K: 1})
	_, err := Search(context.Background(), base, SearchParams{
		Space: enum.Space{N: 3, T: 1, MaxRound: 1, Values: []model.Value{0}},
		K:     1, T: 1, Width: 3,
	})
	if err == nil {
		t.Error("width 3 must be rejected")
	}
	var _ sim.Protocol = base
}

func TestSearchCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	base := core.MustOptmin(core.Params{N: 3, T: 2, K: 1})
	_, err := Search(ctx, base, SearchParams{
		Space: enum.Space{N: 3, T: 2, MaxRound: 2, Values: []model.Value{0, 1}},
		K:     1, T: 2, Width: 2,
	})
	if err != context.Canceled {
		t.Fatalf("cancelled search returned %v, want context.Canceled", err)
	}
}

// compileFor builds the compiled space of a search configuration the way
// Search does, so tests can drive the test stage at several parallelism
// levels over one compilation.
func compileFor(t *testing.T, base sim.Protocol, p SearchParams) *Compiled {
	t.Helper()
	c, err := NewCompiler(p)
	if err != nil {
		t.Fatal(err)
	}
	builder := knowledge.NewBuilder()
	var sc sim.Scratch
	var res sim.Result
	err = p.Space.ForEach(func(adv *model.Adversary) bool {
		g := builder.Build(adv, c.Horizon())
		sim.RunWithGraphInto(base, g, &sc, &res)
		c.Add(adv, g, res.Decisions)
		g.Release()
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return c.Compiled()
}

// TestSearchParallelEquivalence pins the determinism contract: the
// report of a parallel search is identical — field for field, witness
// included — to the sequential one, on both unbeaten and beaten spaces.
// Run under -race this also exercises the sharded accumulators.
func TestSearchParallelEquivalence(t *testing.T) {
	cases := []struct {
		name string
		base sim.Protocol
		p    SearchParams
	}{
		{"optmin-unbeaten", core.MustOptmin(core.Params{N: 3, T: 2, K: 1}),
			SearchParams{Space: enum.Space{N: 3, T: 2, MaxRound: 3, Values: []model.Value{0, 1}}, K: 1, T: 2, Width: 2}},
		{"upmin-unbeaten", core.MustUPmin(core.Params{N: 3, T: 2, K: 1}),
			SearchParams{Space: enum.Space{N: 3, T: 2, MaxRound: 2, Values: []model.Value{0, 1}}, K: 1, T: 2, Uniform: true, Width: 2}},
		{"floodmin-beaten-w1", baseline.Must(baseline.FloodMin, core.Params{N: 3, T: 1, K: 1}),
			SearchParams{Space: enum.Space{N: 3, T: 1, MaxRound: 1, Values: []model.Value{0, 1}}, K: 1, T: 1, Width: 1}},
		{"floodmin-beaten-w2", baseline.Must(baseline.FloodMin, core.Params{N: 3, T: 1, K: 1}),
			SearchParams{Space: enum.Space{N: 3, T: 1, MaxRound: 1, Values: []model.Value{0, 1}}, K: 1, T: 1, Width: 2}},
	}
	ctx := context.Background()
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cs := compileFor(t, c.base, c.p)
			seq, err := cs.Search(ctx, SearchOptions{Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, par := range []int{2, 4, 8} {
				got, err := cs.Search(ctx, SearchOptions{Parallelism: par})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(seq, got) {
					t.Fatalf("parallelism %d report diverges:\nseq: %+v (witness %s)\npar: %+v (witness %s)",
						par, seq, seq.Witness, got, got.Witness)
				}
			}
		})
	}
}

// TestSearchMatchesReference pins the staged pipeline node for node
// against the retained pre-pipeline implementation (reference.go): same
// verdict, same counters, same witness, on unbeaten and beaten spaces.
func TestSearchMatchesReference(t *testing.T) {
	cases := []struct {
		name string
		base sim.Protocol
		p    SearchParams
	}{
		{"optmin-w2", core.MustOptmin(core.Params{N: 3, T: 2, K: 1}),
			SearchParams{Space: enum.Space{N: 3, T: 2, MaxRound: 3, Values: []model.Value{0, 1}}, K: 1, T: 2, Width: 2}},
		{"upmin-w2", core.MustUPmin(core.Params{N: 3, T: 2, K: 1}),
			SearchParams{Space: enum.Space{N: 3, T: 2, MaxRound: 2, Values: []model.Value{0, 1}}, K: 1, T: 2, Uniform: true, Width: 2}},
		{"optmin-k2-w1", core.MustOptmin(core.Params{N: 4, T: 2, K: 2}),
			SearchParams{Space: enum.Space{N: 4, T: 2, MaxRound: 2, Values: []model.Value{0, 1, 2}}, K: 2, T: 2, Width: 1}},
		{"floodmin-beaten", baseline.Must(baseline.FloodMin, core.Params{N: 3, T: 1, K: 1}),
			SearchParams{Space: enum.Space{N: 3, T: 1, MaxRound: 1, Values: []model.Value{0, 1}}, K: 1, T: 1, Width: 2}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			want, err := referenceSearch(c.base, c.p)
			if err != nil {
				t.Fatal(err)
			}
			for _, par := range []int{1, 4} {
				cs := compileFor(t, c.base, c.p)
				got, err := cs.Search(context.Background(), SearchOptions{Parallelism: par})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("parallelism %d diverges from reference:\nref: %+v\ngot: %+v", par, want, got)
				}
			}
		})
	}
}

// TestSearchProgressSnapshots checks the streamed stage snapshots:
// stages arrive in pipeline order and Done never decreases within one.
func TestSearchProgressSnapshots(t *testing.T) {
	base := core.MustOptmin(core.Params{N: 3, T: 2, K: 1})
	p := SearchParams{
		Space: enum.Space{N: 3, T: 2, MaxRound: 2, Values: []model.Value{0, 1}},
		K:     1, T: 2, Width: 2,
	}
	cs := compileFor(t, base, p)
	var stages []string
	lastDone := -1
	_, err := cs.Search(context.Background(), SearchOptions{
		Parallelism: 1,
		Progress: func(pr Progress) {
			if len(stages) == 0 || stages[len(stages)-1] != pr.Stage {
				stages = append(stages, pr.Stage)
				lastDone = -1
			}
			if pr.Done < lastDone {
				t.Fatalf("stage %s: done went backwards (%d after %d)", pr.Stage, pr.Done, lastDone)
			}
			lastDone = pr.Done
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) == 0 || stages[0] != "width-1" {
		t.Fatalf("expected a width-1 stage first, got %v", stages)
	}
	for _, s := range stages[1:] {
		if s != "width-2" {
			t.Fatalf("unexpected stage %q in %v", s, stages)
		}
	}
}
