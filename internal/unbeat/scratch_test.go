package unbeat

import (
	"context"
	"testing"

	"setconsensus/internal/core"
	"setconsensus/internal/enum"
	"setconsensus/internal/model"
)

// The width-2 test stage reuses one per-worker testScratch — the
// candidate pair and the decided-value set — instead of allocating a
// deviation map per pair and a bitset per (pair, run) as the
// pre-pipeline search did. These pins keep that contract honest, in the
// style of the sim/check scratch pins.

func width2Compiled(t *testing.T) *Compiled {
	t.Helper()
	base := core.MustOptmin(core.Params{N: 3, T: 2, K: 1})
	return compileFor(t, base, SearchParams{
		Space: enum.Space{N: 3, T: 2, MaxRound: 2, Values: []model.Value{0, 1}},
		K:     1, T: 2, Width: 2,
	})
}

// TestViolatesScratchAllocFree pins the innermost operation: simulating
// one pair candidate against one compiled run allocates nothing once
// the worker's scratch is warm.
func TestViolatesScratchAllocFree(t *testing.T) {
	cs := width2Compiled(t)
	if len(cs.devs) < 2 || len(cs.runs) == 0 {
		t.Fatalf("degenerate compiled space: %d devs, %d runs", len(cs.devs), len(cs.runs))
	}
	sc := &testScratch{}
	sc.devs[0], sc.devs[1] = cs.devs[0], cs.devs[1]
	sr := cs.runs[0]
	cs.violates(sc.devs[:2], sr, sc) // warm the decided set
	allocs := testing.AllocsPerRun(100, func() {
		for _, sr := range cs.runs {
			cs.violates(sc.devs[:2], sr, sc)
		}
	})
	if allocs != 0 {
		t.Fatalf("violates allocated %.1f objects per full-run pass, want 0", allocs)
	}
}

// TestTestCandidateScratchAllocFree pins the per-pair path end to end:
// testing a full pair candidate over every run is allocation-free.
func TestTestCandidateScratchAllocFree(t *testing.T) {
	cs := width2Compiled(t)
	sc := &testScratch{}
	// Pick a distinct-view pair, as the width-2 stage does.
	var a, b Deviation
	found := false
	for ai := 0; ai < len(cs.devs) && !found; ai++ {
		for bi := ai + 1; bi < len(cs.devs); bi++ {
			if cs.devs[ai].View != cs.devs[bi].View {
				a, b, found = cs.devs[ai], cs.devs[bi], true
				break
			}
		}
	}
	if !found {
		t.Skip("no distinct-view pair in this space")
	}
	sc.devs[0], sc.devs[1] = a, b
	relevant := sc.relevant.CopyFrom(&cs.occurs[a.View]).UnionWith(&cs.occurs[b.View])
	cs.testCandidate(sc.devs[:2], relevant, sc) // warm
	allocs := testing.AllocsPerRun(100, func() {
		sc.devs[0], sc.devs[1] = a, b
		relevant := sc.relevant.CopyFrom(&cs.occurs[a.View]).UnionWith(&cs.occurs[b.View])
		cs.testCandidate(sc.devs[:2], relevant, sc)
	})
	if allocs != 0 {
		t.Fatalf("testCandidate allocated %.1f objects per pair, want 0", allocs)
	}
}

// TestSearchWidth2AllocationBounded pins the whole width-2 stage from
// above: a full search allocates proportionally to runs and views (the
// compile outputs and stage bookkeeping), never to pairs × runs — the
// regime the per-pair map and per-run bitset of the old search lived in.
func TestSearchWidth2AllocationBounded(t *testing.T) {
	// The uniform probe is the configuration whose pairs survive the
	// locality prune, so the bound covers the tested-pair path too.
	base := core.MustUPmin(core.Params{N: 3, T: 2, K: 1})
	p := SearchParams{
		Space: enum.Space{N: 3, T: 2, MaxRound: 2, Values: []model.Value{0, 1}},
		K:     1, T: 2, Uniform: true, Width: 2,
	}
	cs := compileFor(t, base, p)
	rep, err := cs.Search(context.Background(), SearchOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	pairWork := rep.PairsTested * rep.Runs
	if pairWork == 0 {
		t.Fatalf("degenerate space: %+v", rep)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := cs.Search(context.Background(), SearchOptions{Parallelism: 1}); err != nil {
			t.Fatal(err)
		}
	})
	// Stage bookkeeping (violation sets, occurs table, report) scales
	// with views + runs; the old code paid ≥ one allocation per tested
	// candidate plus one per (candidate, run).
	bound := float64(4*(rep.Views+len(cs.viewVals)) + rep.Runs/4 + 64)
	if allocs > bound {
		t.Fatalf("width-2 search allocated %.0f objects (bound %.0f) for %d pair-runs — per-pair scratch regressed",
			allocs, bound, pairWork)
	}
	var _ = model.Value(0)
}
