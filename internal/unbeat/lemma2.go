// Package unbeat implements the computational content of the paper's
// unbeatability results (Theorem 1, Theorem 2):
//
//   - the Lemma 2 construction: from any run r and node ⟨i,m⟩ with hidden
//     capacity c, build the run r′ — indistinguishable to ⟨i,m⟩ — in which
//     the c hidden chains carry c arbitrary values (lemma2.go);
//   - Lemma 1 / Lemma 3 forcing certificates: machine-checked evidence
//     that a high node with hidden capacity ≥ k cannot decide in any
//     protocol dominating Optmin[k] (forced.go);
//   - a bounded protocol-space search: over small models, every decision
//     rule that deviates from Optmin by deciding earlier at up to w views
//     violates the task somewhere (search.go).
package unbeat

import (
	"context"
	"fmt"

	"setconsensus/internal/bitset"
	"setconsensus/internal/knowledge"
	"setconsensus/internal/model"
)

// HiddenRunResult packages the Lemma 2 construction: the run r′, the
// witness matrix (Witnesses[l][b] is the chain-b witness at layer l, the
// i_b^l of Definition 2), and the values carried by the chains.
type HiddenRunResult struct {
	Base      *model.Adversary
	Run       *model.Adversary // r′
	Node      model.Proc       // i
	Time      int              // m
	Values    []model.Value    // v_1..v_c (chain b carries Values[b])
	Witnesses [][]model.Proc   // [layer][chain]
}

// String renders the construction's conclusion in the report convention.
func (h *HiddenRunResult) String() string {
	if h == nil {
		return "<no construction>"
	}
	return fmt.Sprintf("lemma2: r′ indistinguishable at ⟨%d,%d⟩ carrying %d hidden chains %v",
		h.Node, h.Time, len(h.Values), h.Values)
}

// HiddenRun performs the constructive step of Lemma 2: given the knowledge
// graph of a run r, a node ⟨i,m⟩ with hidden capacity ≥ len(values), it
// builds the run r′ in which, for each chain b, the witnesses i_b^0 → …
// → i_b^m form a hidden chain relaying values[b], while ⟨i,m⟩'s view is
// unchanged: r′_i(m) = r_i(m).
//
// Construction (Appendix B, proof of Lemma 2), as failure-pattern edits:
//  1. witness i_b^0 starts with values[b];
//  2. for l < m, witness i_b^l crashes in round l+1 delivering only to
//     i_b^{l+1};
//  3. every other crashing sender's crash-round-ρ delivery to a layer-ρ
//     witness is rewritten to match its delivery to i, so each witness
//     receives at its layer exactly what i receives (plus the chain
//     message); earlier rounds are untouched;
//  4. i and the layer-m witnesses never fail in r′ (the w.l.o.g. of the
//     paper's usage).
func HiddenRun(g *knowledge.Graph, i model.Proc, m int, values []model.Value) (*HiddenRunResult, error) {
	adv := g.Adv
	c := len(values)
	if c == 0 {
		return nil, fmt.Errorf("unbeat: need at least one chain value")
	}
	if !adv.Pattern.Active(i, m) {
		return nil, fmt.Errorf("unbeat: ⟨%d,%d⟩ is not active", i, m)
	}
	if hc := g.HiddenCapacity(i, m); hc < c {
		return nil, fmt.Errorf("unbeat: HC⟨%d,%d⟩ = %d < %d chains", i, m, hc, c)
	}

	// Choose witnesses: the c lowest-numbered hidden processes per layer.
	// For an active observer the hidden sets of distinct layers are
	// disjoint (a crashed process is hidden at exactly one layer), which
	// the construction requires; verify rather than assume.
	witnesses := make([][]model.Proc, m+1)
	used := bitset.New(adv.N())
	for l := 0; l <= m; l++ {
		hidden := g.HiddenSet(i, m, l)
		picked := make([]model.Proc, 0, c)
		hidden.ForEach(func(j int) bool {
			if !used.Contains(j) {
				picked = append(picked, j)
				used.Add(j)
			}
			return len(picked) < c
		})
		if len(picked) < c {
			return nil, fmt.Errorf("unbeat: layer %d has only %d unused hidden nodes, need %d (overlapping hidden layers?)", l, len(picked), c)
		}
		witnesses[l] = picked
	}

	run := adv.Clone()
	isWitnessAt := make(map[model.Proc]int) // proc → its layer
	for l := 0; l <= m; l++ {
		for _, w := range witnesses[l] {
			isWitnessAt[w] = l
		}
	}

	// (1) chain heads carry the prescribed values.
	for b := 0; b < c; b++ {
		run.Inputs[witnesses[0][b]] = values[b]
	}
	// (4) i and layer-m witnesses never fail.
	delete(run.Pattern.Crashes, i)
	for _, w := range witnesses[m] {
		delete(run.Pattern.Crashes, w)
	}
	// (2) chain witnesses at layers < m crash in round l+1, delivering
	// only to their successor.
	for l := 0; l < m; l++ {
		for b := 0; b < c; b++ {
			w := witnesses[l][b]
			run.Pattern.Crashes[w] = model.Crash{
				Round:     l + 1,
				Delivered: bitset.New(adv.N()).Add(witnesses[l+1][b]),
			}
		}
	}
	// (3) align every other crasher's crash-round deliveries to witnesses
	// with its deliveries to i.
	for p, cr := range run.Pattern.Crashes {
		if wl, isW := isWitnessAt[p]; isW && wl < m {
			continue // chain crashes are fully prescribed above
		}
		rho := cr.Round
		if rho > m {
			continue // invisible to anyone at or before time m
		}
		d := cr.Delivered.Clone()
		deliversToI := d.Contains(i)
		for _, w := range witnesses[rho] {
			if deliversToI {
				d.Add(w)
			} else {
				d.Remove(w)
			}
		}
		// Deliveries to dead witnesses are unobservable; drop them so the
		// pattern stays canonical.
		for wp, wlayer := range isWitnessAt {
			if wlayer < m && rho > wlayer+1 {
				d.Remove(wp)
			}
		}
		run.Pattern.Crashes[p] = model.Crash{Round: rho, Delivered: d}
	}

	return &HiddenRunResult{
		Base: adv, Run: run, Node: i, Time: m,
		Values: append([]model.Value(nil), values...), Witnesses: witnesses,
	}, nil
}

// Verify checks every guarantee of Lemma 2 on the constructed run:
//
//	(i)   indistinguishability: r′_i(m) = r_i(m) (view fingerprints);
//	(a)   values[b] ∈ Vals⟨i_b^l, l⟩ for all l, b;
//	(b)   Vals⟨i_b^l, l⟩ \ {values[b]} ⊆ Vals⟨i, l⟩;
//	(c)   ⟨i_b^l, l⟩ has hidden capacity ≥ c−1 in r′, and the other
//	      chains' witnesses are hidden from it.
//
// It returns the knowledge graph of r′ so callers can continue reasoning
// in the constructed run. The per-layer condition loop polls the
// context, so cancelling aborts a deep verification promptly.
func (h *HiddenRunResult) Verify(ctx context.Context, gBase *knowledge.Graph) (*knowledge.Graph, error) {
	m, i, c := h.Time, h.Node, len(h.Values)
	gNew := knowledge.New(h.Run, max(m, gBase.Horizon))

	if got, want := gNew.Fingerprint(i, m), gBase.Fingerprint(i, m); got != want {
		return nil, fmt.Errorf("unbeat: r′ distinguishable at ⟨%d,%d⟩:\n r′: %s\n r:  %s", i, m, got, want)
	}
	for l := 0; l <= m; l++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for b := 0; b < c; b++ {
			w := h.Witnesses[l][b]
			vals := gNew.Vals(w, l)
			if !vals.Contains(h.Values[b]) {
				return nil, fmt.Errorf("unbeat: (a) fails: value %d ∉ Vals⟨%d,%d⟩ = %s", h.Values[b], w, l, vals)
			}
			rest := vals.Clone().Remove(h.Values[b])
			if !rest.SubsetOf(gNew.Vals(i, l)) {
				return nil, fmt.Errorf("unbeat: (b) fails: Vals⟨%d,%d⟩∖{%d} = %s ⊄ Vals⟨%d,%d⟩ = %s",
					w, l, h.Values[b], rest, i, l, gNew.Vals(i, l))
			}
			if hc := gNew.HiddenCapacity(w, l); hc < c-1 {
				return nil, fmt.Errorf("unbeat: (c) fails: HC⟨%d,%d⟩ = %d < %d", w, l, hc, c-1)
			}
			for b2 := 0; b2 < c; b2++ {
				if b2 == b {
					continue
				}
				for l2 := 0; l2 <= l; l2++ {
					if !gNew.Hidden(w, l, h.Witnesses[l2][b2], l2) {
						return nil, fmt.Errorf("unbeat: (c) fails: ⟨%d,%d⟩ not hidden from ⟨%d,%d⟩",
							h.Witnesses[l2][b2], l2, w, l)
					}
				}
			}
		}
	}
	return gNew, nil
}
