package unbeat

import (
	"context"

	"strings"
	"testing"

	"setconsensus/internal/knowledge"
	"setconsensus/internal/model"
)

func TestForcedLowBaseCase(t *testing.T) {
	// n=4, k=2: process 1 holds low value 0 at time 0; everyone else is
	// high. Lemma 1 base: validity forces 0 at time 0.
	adv := model.NewBuilder(4, 2).Input(1, 0).MustBuild()
	g := knowledge.New(adv, 1)
	cert, err := ForcedLow(context.Background(), g, 1, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Value != 0 || cert.Time != 0 || cert.Node != 1 {
		t.Errorf("cert = %+v", cert)
	}
	if cert.Hidden != nil || len(cert.Sub) != 0 {
		t.Error("base case must not recurse")
	}
}

func TestForcedLowConditionsRejected(t *testing.T) {
	// A process with two low values fails condition 2.
	adv := model.NewBuilder(4, 2).Input(1, 0).Input(2, 1).MustBuild()
	g := knowledge.New(adv, 1)
	if _, err := ForcedLow(context.Background(), g, 1, 1, 2); err == nil {
		t.Error("two low values must be rejected")
	}
	// A high process fails condition 1/2.
	if _, err := ForcedLow(context.Background(), g, 3, 0, 2); err == nil {
		t.Error("high process must be rejected")
	}
}

func TestForcedLowStepFig3Style(t *testing.T) {
	// The Fig. 3 situation for k = 2: process w becomes low at time 1 for
	// the first time, via a hidden chain head that crashed in round 1
	// delivering only to w. One more hidden chain (value 1) gives
	// HC ≥ k−1 = 1, and enough high hidden processes serve as the j's.
	//
	// Layout (n = 8, k = 2): head 1 (value 0) crashes r1 → only to 2;
	// head 3 (value 1) crashes r1 → only to 4. At time 1, process 2 is
	// low-for-the-first-time with Lows = {0}, HC⟨2,1⟩ ≥ 1, and the other
	// processes are high with hidden time-1 nodes.
	adv := model.NewBuilder(8, 2).
		Input(1, 0).Input(3, 1).
		CrashSendingTo(1, 1, 2).
		CrashSendingTo(3, 1, 4).
		MustBuild()
	g := knowledge.New(adv, 2)
	cert, err := ForcedLow(context.Background(), g, 2, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Value != 0 {
		t.Errorf("forced value = %d, want 0", cert.Value)
	}
	if cert.Hidden == nil {
		t.Fatal("induction step must build the Lemma-2 run")
	}
	if len(cert.Sub) != 2 {
		t.Fatalf("need sub-certificates for both low values, got %d", len(cert.Sub))
	}
	if cert.Sub[0].Time != 0 || cert.Sub[1].Time != 0 {
		t.Error("sub-certificates must be at time 0")
	}
	// k! = 2 orderings of the change phase.
	if cert.Orders != 2 {
		t.Errorf("orders = %d, want 2", cert.Orders)
	}
}

func TestForcedLowK1HiddenPath(t *testing.T) {
	// k = 1 (consensus): the Fig. 1 chain tail (process 3) becomes low at
	// time 2 for the first time; Lemma 1 forces it to decide 0.
	adv, err := model.HiddenPath(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := knowledge.New(adv, 3)
	cert, err := ForcedLow(context.Background(), g, 3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Value != 0 {
		t.Errorf("forced value = %d, want 0", cert.Value)
	}
	// k=1: no extra chains, but a two-level recursion down the v-chain.
	if cert.Hidden != nil {
		t.Error("k=1 needs no auxiliary chains")
	}
	sub := cert.Sub[0]
	if sub == nil || sub.Time != 1 {
		t.Fatalf("level-1 sub-cert missing: %+v", sub)
	}
	if sub.Sub[0] == nil || sub.Sub[0].Time != 0 {
		t.Fatalf("level-0 sub-cert missing")
	}
}

func TestCannotDecideFig2(t *testing.T) {
	// The Lemma 3 certificate for the Fig. 2 observer: ⟨0,2⟩ is high with
	// HC = 3 = k, hence cannot decide in any protocol dominating
	// Optmin[3].
	adv, err := model.HiddenChains(14, 3, 2, []model.Value{3, 3, 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	g := knowledge.New(adv, 2)
	cert, err := CannotDecide(context.Background(), g, 0, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cert.Forced) != 3 {
		t.Fatalf("need 3 forced witnesses, got %d", len(cert.Forced))
	}
	for b, fc := range cert.Forced {
		if fc.Value != b || fc.Time != 2 {
			t.Errorf("witness %d forced to %d@%d, want %d@2", b, fc.Value, fc.Time, b)
		}
	}
}

func TestCannotDecideSimple(t *testing.T) {
	// k=2 at time 1: two silent round-1 crashes keep HC⟨0,1⟩ = 2.
	adv := model.NewBuilder(7, 2).CrashSilent(5, 1).CrashSilent(6, 1).MustBuild()
	g := knowledge.New(adv, 1)
	if hc := g.HiddenCapacity(0, 1); hc != 2 {
		t.Fatalf("HC⟨0,1⟩ = %d, want 2", hc)
	}
	cert, err := CannotDecide(context.Background(), g, 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cert.Forced) != 2 {
		t.Fatalf("forced = %d", len(cert.Forced))
	}
}

func TestCertificatesCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	adv, err := model.HiddenChains(10, 2, 2, []model.Value{2, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := knowledge.New(adv, 2)
	if _, err := CannotDecide(ctx, g, 0, 2, 2); err != context.Canceled {
		t.Errorf("CannotDecide on cancelled ctx: %v, want context.Canceled", err)
	}
	h, err := HiddenRun(g, 0, 2, []model.Value{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Verify(ctx, g); err != context.Canceled {
		t.Errorf("Verify on cancelled ctx: %v, want context.Canceled", err)
	}
	gp, err := h.Verify(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ForcedLow(ctx, gp, h.Witnesses[2][0], 2, 2); err != context.Canceled {
		t.Errorf("ForcedLow on cancelled ctx: %v, want context.Canceled", err)
	}
}

func TestCannotDecideRejectsLowOrLowHC(t *testing.T) {
	adv := model.NewBuilder(5, 0).MustBuild() // all inputs 0 (low for k≥1)
	g := knowledge.New(adv, 1)
	_, err := CannotDecide(context.Background(), g, 0, 0, 1)
	if err == nil || !strings.Contains(err.Error(), "low") {
		t.Errorf("low node must be rejected: %v", err)
	}
	high := model.NewBuilder(5, 1).MustBuild()
	gh := knowledge.New(high, 1)
	// Failure-free at time 1: HC = 0 < k.
	if _, err := CannotDecide(context.Background(), gh, 0, 1, 1); err == nil {
		t.Error("HC < k must be rejected")
	}
}

// TestOptminUndecidedNodesAllCertified is the empirical heart of
// Theorem 1: in every run of the interesting families, EVERY node at which
// Optmin[k] is still undecided admits a Lemma-3 certificate — no protocol
// dominating Optmin can decide there either.
func TestOptminUndecidedNodesAllCertified(t *testing.T) {
	type tc struct {
		name string
		adv  *model.Adversary
		k    int
		m    int
	}
	var cases []tc
	hp, err := model.HiddenPath(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, tc{"hidden-path k=1", hp, 1, 2})
	hc3, err := model.HiddenChains(14, 3, 2, []model.Value{3, 3, 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, tc{"hidden-chains k=3", hc3, 3, 2})
	col, err := model.Collapse(model.CollapseParams{K: 2, R: 2, ExtraCorrect: 3})
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, tc{"collapse k=2", col, 2, 2})

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := knowledge.New(c.adv, c.m)
			certified := 0
			for i := 0; i < c.adv.N(); i++ {
				for m := 0; m <= c.m; m++ {
					if !c.adv.Pattern.Active(i, m) {
						continue
					}
					low := lowsOf(g, i, m, c.k).Count() > 0
					hc := g.HiddenCapacity(i, m)
					if low || hc < c.k {
						continue // Optmin decides here; nothing to certify
					}
					if _, err := CannotDecide(context.Background(), g, i, m, c.k); err != nil {
						t.Errorf("⟨%d,%d⟩ undecided by Optmin but uncertified: %v", i, m, err)
					} else {
						certified++
					}
				}
			}
			if certified == 0 {
				t.Fatal("no undecided nodes exercised")
			}
			t.Logf("certified %d undecided nodes", certified)
		})
	}
}
