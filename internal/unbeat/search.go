package unbeat

import (
	"fmt"

	"setconsensus/internal/bitset"
	"setconsensus/internal/enum"
	"setconsensus/internal/knowledge"
	"setconsensus/internal/model"
	"setconsensus/internal/sim"
)

// The bounded protocol-space search complements the Lemma-3 certificates:
// over an exhaustively enumerated adversary space, it tries EVERY decision
// rule that follows a base protocol (Optmin[k] or u-Pmin[k]) except for
// deciding strictly earlier at up to `width` distinct local views, with
// any valid value at each. Because full-information protocols are exactly
// functions of the view, such a rule IS a protocol; if it solved the task
// it would strictly dominate the base protocol. The search verifies that
// every candidate violates the task on some run — i.e. the base protocol
// is unbeatable within this (bounded, but for small n meaningful)
// protocol class.

// SearchParams configures the deviation search.
type SearchParams struct {
	Space   enum.Space
	K       int
	T       int
	Uniform bool // check uniform agreement (for u-Pmin conjecture probes)
	Width   int  // maximum number of deviating views (1 or 2)
}

// SearchReport summarizes the search outcome.
type SearchReport struct {
	Runs        int // adversaries enumerated
	Views       int // distinct pre-decision views (deviation points)
	Candidates  int // deviation sets tested
	Beaten      bool
	Witness     string // description of a successful dominating deviation
	PairsPruned int    // width-2 pairs eliminated by the locality rule
	PairsTested int
}

// searchRun is one adversary's compiled form: per process, the interned
// view id at each active time up to the base protocol's decision, plus
// the base decision itself.
type searchRun struct {
	adv      *model.Adversary
	seq      [][]int // seq[i][m] = view id, m ≤ decision time (or last active)
	decTime  []int   // base decision time, −1 if none
	decValue []model.Value
	correct  []bool
	present  *bitset.Set // values present in the input vector
}

// Search enumerates the space, compiles all runs of the base protocol,
// and tests every ≤Width-view early-deviation rule.
func Search(base sim.Protocol, p SearchParams) (*SearchReport, error) {
	if p.Width < 1 || p.Width > 2 {
		return nil, fmt.Errorf("unbeat: search width must be 1 or 2, got %d", p.Width)
	}
	ids := map[string]int{}
	var viewVals []*bitset.Set // per view id: Vals of the view
	var viewPre []bool         // ever occurs strictly before a base decision
	var runs []*searchRun

	horizon := p.T/p.K + 1
	// One builder for the whole enumeration: each adversary's graph is
	// interned into ids/viewVals (copies) within its iteration and then
	// released, so the enumeration reuses a single arena instead of
	// allocating a forest per adversary.
	builder := knowledge.NewBuilder()
	err := p.Space.ForEach(func(adv *model.Adversary) bool {
		g := builder.Build(adv, horizon)
		defer g.Release()
		res := sim.RunWithGraph(base, g)
		sr := &searchRun{
			adv:      adv,
			seq:      make([][]int, adv.N()),
			decTime:  make([]int, adv.N()),
			decValue: make([]model.Value, adv.N()),
			correct:  make([]bool, adv.N()),
			present:  &bitset.Set{},
		}
		for _, v := range adv.Inputs {
			sr.present.Add(v)
		}
		for i := 0; i < adv.N(); i++ {
			sr.correct[i] = adv.Pattern.Correct(i)
			sr.decTime[i] = res.DecisionTime(i)
			if d := res.Decisions[i]; d != nil {
				sr.decValue[i] = d.Value
			}
			last := sr.decTime[i]
			if last < 0 {
				// Crashed before deciding: views until last active time.
				last = adv.Pattern.CrashRound(i) - 1
				if last > horizon {
					last = horizon
				}
			}
			for m := 0; m <= last; m++ {
				fp := g.Fingerprint(i, m)
				id, ok := ids[fp]
				if !ok {
					id = len(viewVals)
					ids[fp] = id
					viewVals = append(viewVals, g.Vals(i, m))
					viewPre = append(viewPre, false)
				}
				if m < sr.decTime[i] || sr.decTime[i] < 0 {
					viewPre[id] = true
				}
				sr.seq[i] = append(sr.seq[i], id)
			}
		}
		runs = append(runs, sr)
		return true
	})
	if err != nil {
		return nil, err
	}

	// Deviation points: views that occur strictly before a base decision
	// (deciding there is a strict improvement), with any value the view
	// has seen (anything else instantly violates Validity).
	type deviation struct {
		view  int
		value model.Value
	}
	var devs []deviation
	for id, pre := range viewPre {
		if !pre {
			continue
		}
		viewVals[id].ForEach(func(v int) bool {
			devs = append(devs, deviation{view: id, value: v})
			return true
		})
	}
	report := &SearchReport{Runs: len(runs), Views: len(devs)}

	// violates simulates a candidate (deviation map) on one run and
	// reports (taskViolated, strictWinObserved).
	violates := func(dv map[int]model.Value, sr *searchRun) (bool, bool) {
		decided := &bitset.Set{}
		strict := false
		undecidedCorrect := false
		for i := range sr.seq {
			dTime, dVal := sr.decTime[i], sr.decValue[i]
			final := dTime
			finalVal := dVal
			// A candidate is a function of the view: whenever a deviating
			// view occurs while the process is undecided, it decides the
			// deviation's value — strictly early if before the base
			// decision, as a value override if at it.
			for m, id := range sr.seq[i] {
				if v, hit := dv[id]; hit {
					final, finalVal = m, v
					if dTime < 0 || m < dTime {
						strict = true
					}
					break
				}
			}
			if final < 0 {
				if sr.correct[i] {
					undecidedCorrect = true
				}
				continue
			}
			if !sr.present.Contains(finalVal) {
				return true, strict // Validity broken
			}
			if p.Uniform || sr.correct[i] {
				decided.Add(finalVal)
			}
		}
		if undecidedCorrect {
			return true, strict // Decision broken
		}
		return decided.Count() > p.K, strict
	}

	// testCandidate returns true if the candidate solves the task on every
	// run while strictly beating the base protocol somewhere.
	testCandidate := func(dv map[int]model.Value) bool {
		strictAnywhere := false
		for _, sr := range runs {
			bad, strict := violates(dv, sr)
			if bad {
				return false
			}
			strictAnywhere = strictAnywhere || strict
		}
		return strictAnywhere
	}

	// Width 1.
	singleViolated := make([]*bitset.Set, len(devs)) // runs violated by each single deviation
	for di, d := range devs {
		report.Candidates++
		dv := map[int]model.Value{d.view: d.value}
		vio := &bitset.Set{}
		strictAnywhere := false
		for ri, sr := range runs {
			bad, strict := violates(dv, sr)
			if bad {
				vio.Add(ri)
			}
			strictAnywhere = strictAnywhere || strict
		}
		singleViolated[di] = vio
		if vio.Empty() && strictAnywhere {
			report.Beaten = true
			report.Witness = fmt.Sprintf("single deviation: decide %d at view #%d", d.value, d.view)
			return report, nil
		}
	}
	if p.Width == 1 {
		return report, nil
	}

	// Width 2 with the locality prune: deviation B can only repair A's
	// violated runs if B's view occurs in every one of them.
	occurs := make([]*bitset.Set, len(viewVals))
	for i := range occurs {
		occurs[i] = &bitset.Set{}
	}
	for ri, sr := range runs {
		for _, row := range sr.seq {
			for _, id := range row {
				occurs[id].Add(ri)
			}
		}
	}
	for ai := 0; ai < len(devs); ai++ {
		for bi := ai + 1; bi < len(devs); bi++ {
			if devs[ai].view == devs[bi].view {
				continue // one decision per view
			}
			if !singleViolated[ai].SubsetOf(occurs[devs[bi].view]) ||
				!singleViolated[bi].SubsetOf(occurs[devs[ai].view]) {
				report.PairsPruned++
				continue
			}
			report.PairsTested++
			report.Candidates++
			dv := map[int]model.Value{devs[ai].view: devs[ai].value, devs[bi].view: devs[bi].value}
			if testCandidate(dv) {
				report.Beaten = true
				report.Witness = fmt.Sprintf("pair deviation: decide %d at view #%d and %d at view #%d",
					devs[ai].value, devs[ai].view, devs[bi].value, devs[bi].view)
				return report, nil
			}
		}
	}
	return report, nil
}
