package unbeat

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"setconsensus/internal/bitset"
	"setconsensus/internal/enum"
	"setconsensus/internal/govern"
	"setconsensus/internal/knowledge"
	"setconsensus/internal/model"
	"setconsensus/internal/sim"
)

// The bounded protocol-space search complements the Lemma-3 certificates:
// over an exhaustively enumerated adversary space, it tries EVERY decision
// rule that follows a base protocol (Optmin[k] or u-Pmin[k]) except for
// deciding strictly earlier at up to `width` distinct local views, with
// any valid value at each. Because full-information protocols are exactly
// functions of the view, such a rule IS a protocol; if it solved the task
// it would strictly dominate the base protocol. The search verifies that
// every candidate violates the task on some run — i.e. the base protocol
// is unbeatable within this (bounded, but for small n meaningful)
// protocol class.
//
// The search is a staged pipeline:
//
//	compile — every run of the space is executed once and flattened into
//	          interned view-id sequences plus the base protocol's
//	          decisions (Compiler.Add; any graph/run machinery feeds it,
//	          which is how Engine.Analyze drives it through the pooled
//	          Backend.RunInto / knowledge.Builder revive path);
//	shard   — deviation candidates are strided across a worker pool in
//	          canonical enumeration order, each worker folding into
//	          private accumulators merged once (the internal/agg
//	          contract);
//	test    — each candidate is simulated against every compiled run in
//	          per-worker scratch (no per-candidate or per-run
//	          allocations); the first dominating candidate in canonical
//	          order short-circuits the remaining work.
//
// Reports are deterministic regardless of parallelism: counters describe
// either the full enumeration (unbeaten) or the canonical prefix ending
// at the minimal dominating candidate (beaten).

// SearchParams configures the deviation search.
type SearchParams struct {
	Space   enum.Space
	K       int
	T       int
	Uniform bool // check uniform agreement (for u-Pmin conjecture probes)
	Width   int  // maximum number of deviating views (1 or 2)
}

// SearchReport summarizes the search outcome. Every field is
// deterministic in the compiled space alone: parallel and sequential
// searches of one space produce identical reports. When Beaten, the
// Candidates/Pairs counters cover the canonical enumeration prefix up to
// and including the minimal dominating candidate (the witness), not
// whatever subset in-flight workers happened to touch.
type SearchReport struct {
	Runs        int      `json:"runs"`       // adversaries enumerated
	Views       int      `json:"views"`      // distinct pre-decision deviation points
	Candidates  int      `json:"candidates"` // deviation sets tested
	Beaten      bool     `json:"beaten"`     // a dominating deviation exists
	Witness     *Witness `json:"witness,omitempty"`
	PairsPruned int      `json:"pairsPruned"` // width-2 pairs eliminated by the locality rule
	PairsTested int      `json:"pairsTested"`
}

// SearchOptions configures the test stage of a compiled search.
type SearchOptions struct {
	// Parallelism is the worker-pool size; values < 1 mean 1.
	Parallelism int
	// Progress, when non-nil, receives throttled stage snapshots. Calls
	// are serialized; the callback must not block for long.
	Progress func(Progress)
}

// searchRun is one adversary's compiled form: per process, the interned
// view id at each active time up to the base protocol's decision, plus
// the base decision itself.
type searchRun struct {
	adv      *model.Adversary
	seq      [][]int // seq[i][m] = view id, m ≤ decision time (or last active)
	decTime  []int   // base decision time, −1 if none
	decValue []model.Value
	correct  []bool
	present  *bitset.Set // values present in the input vector
}

// Compiler is the compile stage of the search pipeline: it folds one
// executed run at a time into the interned view table and the compiled
// run list. Feed it with Add — the engine does so through its pooled
// run path — then seal it with Compiled. A Compiler is not safe for
// concurrent use; compilation is the cheap, sequential stage (one pass
// over the space) ahead of the candidate-testing fan-out.
type Compiler struct {
	p        SearchParams
	horizon  int
	ids      map[string]int
	viewVals []*bitset.Set // per view id: Vals of the view
	viewPre  []bool        // ever occurs strictly before a base decision
	runs     []*searchRun
	fpBuf    []byte // reused fingerprint build buffer (zero-copy interning)

	// prevRun supports delta reuse across consecutive Adds: when the
	// incoming run shares the previous run's failure pattern (by pointer)
	// and differs in at most one process's input — the enumeration's
	// Gray-code delta order makes that the common case — every view that
	// has not seen the changed input has a fingerprint identical to the
	// previous run's view at the same (proc, time), so its interned id is
	// copied instead of recomputed. Only ids already interned are reused,
	// never assigned, so the interning order (and with it deviation
	// ordinals and report determinism) is byte-identical to a cold
	// compile.
	prevRun *searchRun

	// Compiled runs are carved out of block allocations: one compiled
	// space holds thousands of runs whose row lengths are known before
	// filling, so per-run make calls would dominate the compile stage's
	// allocation profile (they did: ~16 allocations per run before the
	// slabs).
	runSlab  []searchRun
	rowSlab  [][]int
	intSlab  []int
	valSlab  []model.Value
	boolSlab []bool
	setSlab  []bitset.Set
	wordSlab []uint64
	presentW int // words per present set, fixed by the space's value range
}

// NewCompiler validates the parameters and returns an empty compiler.
func NewCompiler(p SearchParams) (*Compiler, error) {
	if p.Width < 1 || p.Width > 2 {
		return nil, fmt.Errorf("unbeat: search width must be 1 or 2, got %d", p.Width)
	}
	if err := p.Space.Validate(); err != nil {
		return nil, err
	}
	maxV := 0
	for _, v := range p.Space.Values {
		if v > maxV {
			maxV = v
		}
	}
	return &Compiler{p: p, horizon: p.T/p.K + 1, ids: make(map[string]int, 1<<10), presentW: maxV>>6 + 1}, nil
}

// carve cuts an exact-capacity slice of n elements off a slab,
// reblocking when the slab runs dry. Carved slices are independent
// values; the slab is only the backing memory (the enum.advSlab
// arrangement).
func carve[T any](slab *[]T, n, block int) []T {
	if len(*slab) < n {
		if block < n {
			block = n
		}
		*slab = make([]T, block)
	}
	out := (*slab)[:n:n]
	*slab = (*slab)[n:]
	return out
}

// compileSlabRuns sizes the compile slabs: runs per struct block, and
// the element blocks scaled to cover that many typical runs.
const compileSlabRuns = 128

// Horizon is the knowledge-graph horizon compiled runs must be built to.
func (c *Compiler) Horizon() int { return c.horizon }

// Runs reports how many runs have been compiled so far.
func (c *Compiler) Runs() int { return len(c.runs) }

// Add compiles one run: adv's knowledge graph g (built to Horizon, by
// any construction — the engine feeds revived Builder arenas) and the
// base protocol's decisions on it. Add copies everything it keeps, so g
// may be released and decisions reused immediately after the call.
func (c *Compiler) Add(adv *model.Adversary, g *knowledge.Graph, decisions []*sim.Decision) {
	n := adv.N()
	if len(c.runSlab) == 0 {
		c.runSlab = make([]searchRun, compileSlabRuns)
	}
	sr := &c.runSlab[0]
	c.runSlab = c.runSlab[1:]
	sr.adv = adv
	sr.seq = carve(&c.rowSlab, n, compileSlabRuns*n)
	sr.decTime = carve(&c.intSlab, n, compileSlabRuns*n*(c.horizon+2))
	sr.decValue = carve(&c.valSlab, n, compileSlabRuns*n)
	sr.correct = carve(&c.boolSlab, n, compileSlabRuns*n)
	if len(c.setSlab) == 0 {
		c.setSlab = make([]bitset.Set, compileSlabRuns)
	}
	sr.present = &c.setSlab[0]
	c.setSlab = c.setSlab[1:]
	*sr.present = bitset.Wrap(carve(&c.wordSlab, c.presentW, compileSlabRuns*c.presentW))
	for _, v := range adv.Inputs {
		sr.present.Add(v)
	}
	// Delta reuse (see prevRun): diff this run's inputs against the
	// previous run's when the failure pattern is shared. changed is the
	// single differing process, -1 when the inputs are identical; any
	// wider diff (or a pattern change) disables reuse for this run.
	prev := c.prevRun
	changed, reuse := -1, false
	if prev != nil && prev.adv.Pattern == adv.Pattern && prev.adv.N() == n {
		reuse = true
		for p, v := range adv.Inputs {
			if v != prev.adv.Inputs[p] {
				if changed >= 0 {
					reuse, changed = false, -1
					break
				}
				changed = p
			}
		}
	}
	for i := 0; i < n; i++ {
		if reuse {
			sr.correct[i] = prev.correct[i] // pattern-derived: same pattern, same answer
		} else {
			sr.correct[i] = adv.Pattern.Correct(i)
		}
		sr.decTime[i] = -1
		if i < len(decisions) && decisions[i] != nil {
			sr.decTime[i] = decisions[i].Time
			sr.decValue[i] = decisions[i].Value
		}
		last := sr.decTime[i]
		if last < 0 {
			// Crashed before deciding: views until last active time.
			last = adv.Pattern.CrashRound(i) - 1
			if last > c.horizon {
				last = c.horizon
			}
		}
		var prow []int
		if reuse {
			prow = prev.seq[i]
		}
		row := carve(&c.intSlab, last+1, compileSlabRuns*n*(c.horizon+2))
		for m := 0; m <= last; m++ {
			var id int
			if m < len(prow) && (changed < 0 || !g.Seen(i, m, changed, 0)) {
				// The view has not seen the changed input (or nothing
				// changed): its fingerprint — layers and sender masks are
				// pattern-fixed, and it encodes only the inputs of layer-0
				// processes — matches the previous run's view here, whose
				// id is already interned.
				id = prow[m]
			} else {
				// Interning is the compile hot path: the fingerprint is
				// built into the compiler's reused buffer and looked up
				// zero-copy; only a first-seen view materializes a key
				// string.
				c.fpBuf = g.AppendFingerprint(c.fpBuf[:0], i, m)
				var ok bool
				if id, ok = c.ids[string(c.fpBuf)]; !ok {
					id = len(c.viewVals)
					c.ids[string(c.fpBuf)] = id
					c.viewVals = append(c.viewVals, g.Vals(i, m))
					c.viewPre = append(c.viewPre, false)
				}
			}
			if m < sr.decTime[i] || sr.decTime[i] < 0 {
				c.viewPre[id] = true
			}
			row[m] = id
		}
		sr.seq[i] = row
	}
	c.runs = append(c.runs, sr)
	c.prevRun = sr
}

// Compiled seals the compiler into the shard/test stages' input: the
// deviation-point list in canonical order (view-interning order, value
// ascending within a view), the compiled runs, the per-view occurrence
// sets that let candidate testing touch only the runs a deviation can
// change, and the base protocol's own violation set (normally empty —
// it is the premise of the whole search). The compiler must not be
// Added to afterwards.
func (c *Compiler) Compiled() *Compiled {
	cs := &Compiled{p: c.p, runs: c.runs, viewVals: c.viewVals}
	// Deviation points: views that occur strictly before a base decision
	// (deciding there is a strict improvement), with any value the view
	// has seen (anything else instantly violates Validity).
	for id, pre := range c.viewPre {
		if !pre {
			continue
		}
		c.viewVals[id].ForEach(func(v int) bool {
			cs.devs = append(cs.devs, Deviation{View: id, Value: v})
			return true
		})
	}
	// occurs[view] = runs whose interned sequences contain the view.
	cs.occurs = make([]bitset.Set, len(c.viewVals))
	for ri, sr := range c.runs {
		for _, row := range sr.seq {
			for _, id := range row {
				cs.occurs[id].Add(ri)
			}
		}
	}
	// baseBad = runs the base protocol itself violates. A candidate is
	// the base rule verbatim on every run outside its views' occurrence
	// sets, so these runs stay violated for every candidate that does
	// not touch them.
	sc := &testScratch{}
	for ri, sr := range c.runs {
		if bad, _ := cs.violates(nil, sr, sc); bad {
			cs.baseBad.Add(ri)
		}
	}
	return cs
}

// Compiled is the sealed output of the compile stage, ready for
// (repeated) candidate testing.
type Compiled struct {
	p        SearchParams
	runs     []*searchRun
	viewVals []*bitset.Set
	devs     []Deviation
	occurs   []bitset.Set // [view] → runs containing the view
	baseBad  bitset.Set   // runs violated by the base protocol itself
}

// testScratch is the per-worker scratch of the test stage: the candidate
// under test (at most two deviations), the decided-value set of the run
// being simulated, and the relevant-run set of a pair candidate. One
// scratch serves every candidate a worker tests; nothing in the hot
// loop allocates.
type testScratch struct {
	devs     [2]Deviation
	decided  bitset.Set
	relevant bitset.Set
}

// violates simulates a candidate (deviation list, distinct views) on one
// run and reports (taskViolated, strictWinObserved).
func (cs *Compiled) violates(devs []Deviation, sr *searchRun, sc *testScratch) (bool, bool) {
	decided := sc.decided.Clear()
	strict := false
	undecidedCorrect := false
	for i := range sr.seq {
		dTime, dVal := sr.decTime[i], sr.decValue[i]
		final := dTime
		finalVal := dVal
		// A candidate is a function of the view: whenever a deviating
		// view occurs while the process is undecided, it decides the
		// deviation's value — strictly early if before the base
		// decision, as a value override if at it.
	seq:
		for m, id := range sr.seq[i] {
			for _, d := range devs {
				if d.View != id {
					continue
				}
				final, finalVal = m, d.Value
				if dTime < 0 || m < dTime {
					strict = true
				}
				break seq
			}
		}
		if final < 0 {
			if sr.correct[i] {
				undecidedCorrect = true
			}
			continue
		}
		if !sr.present.Contains(finalVal) {
			return true, strict // Validity broken
		}
		if cs.p.Uniform || sr.correct[i] {
			decided.Add(finalVal)
		}
	}
	if undecidedCorrect {
		return true, strict // Decision broken
	}
	return decided.Count() > cs.p.K, strict
}

// testCandidate returns true if the candidate solves the task on every
// run while strictly beating the base protocol somewhere. Only the runs
// in relevant — those containing one of the candidate's views — are
// simulated: on every other run the candidate is the base protocol
// verbatim, so it violates there iff the base does (baseBad, normally
// empty), and can never win strictly there.
func (cs *Compiled) testCandidate(devs []Deviation, relevant *bitset.Set, sc *testScratch) bool {
	if !cs.baseBad.SubsetOf(relevant) {
		return false // an untouched run already violates under the base rule
	}
	strictAnywhere := false
	ok := true
	relevant.ForEach(func(ri int) bool {
		bad, strict := cs.violates(devs, cs.runs[ri], sc)
		if bad {
			ok = false
			return false
		}
		strictAnywhere = strictAnywhere || strict
		return true
	})
	return ok && strictAnywhere
}

// witness builds the typed witness of a dominating candidate: its
// deviations plus the first enumerated run on which it strictly wins.
func (cs *Compiled) witness(devs []Deviation) *Witness {
	w := &Witness{Deviations: append([]Deviation(nil), devs...)}
	sc := &testScratch{}
	for _, sr := range cs.runs {
		if _, strict := cs.violates(devs, sr, sc); strict {
			w.AdvFingerprint = advFingerprintHex(sr.adv)
			w.Adversary = sr.adv.String()
			break
		}
	}
	return w
}

// noWinner is the atomic sentinel for "no dominating candidate found".
const noWinner = int64(math.MaxInt64)

// bestMin lowers best to ord if ord is smaller — the lock-free minimal-
// ordinal merge that keeps the reported winner deterministic under
// parallel testing: a candidate is only skipped when its ordinal exceeds
// the current best, so every ordinal below the final winner is always
// tested, and the final best is exactly the canonical first winner.
func bestMin(best *atomic.Int64, ord int64) {
	for {
		cur := best.Load()
		if ord >= cur || best.CompareAndSwap(cur, ord) {
			return
		}
	}
}

// Shards runs body once per worker with strided work assignment and
// funnels out the first error; a body error cancels the derived context
// of every other worker. Parallelism ≤ 1 runs inline — the sequential
// search is the parallel search with one shard, not a separate code
// path. It is the worker-pool primitive of the analysis pipeline,
// shared by the search stages and the engine's certificate families.
func Shards(ctx context.Context, workers int, body func(ctx context.Context, w int) error) error {
	if workers <= 1 {
		return body(ctx, 0)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Candidate tests execute protocol decision rules, so a
			// panicking rule is isolated here: converted into a typed
			// analysis error instead of crashing the process, with the
			// shared cancel draining the other shards.
			err := func() (err error) {
				defer govern.Capture("unbeat: analysis worker", &err)
				return body(ctx, w)
			}()
			if err != nil {
				errOnce.Do(func() { firstErr = err })
				cancel()
			}
		}(w)
	}
	wg.Wait()
	return firstErr
}

// ProgressSink throttles and serializes Progress callbacks for a staged
// analysis — the one implementation behind the search stages and the
// engine's certificate families. A nil sink (no progress consumer)
// costs one pointer check per unit. Snapshots are monotone within a
// stage: the emitted Done is re-read under the serializing mutex and
// never goes backwards, regardless of worker interleaving.
type ProgressSink struct {
	mu       sync.Mutex
	fn       func(Progress)
	stage    string
	total    int
	done     atomic.Int64
	lastEmit int
}

const progressEvery = 64

// NewProgressSink wraps fn; a nil fn yields a nil (no-op) sink.
func NewProgressSink(fn func(Progress)) *ProgressSink {
	if fn == nil {
		return nil
	}
	return &ProgressSink{fn: fn}
}

// Stage opens a new stage and emits its zero snapshot. Stages are
// sequential (barriers between them), so no worker bumps concurrently
// with a Stage call.
func (p *ProgressSink) Stage(stage string, total int) {
	if p == nil {
		return
	}
	p.stage = stage
	p.total = total
	p.done.Store(0)
	p.lastEmit = -1
	p.emit()
}

// Bump records one processed unit, emitting every progressEvery units.
// Safe for concurrent use by stage workers.
func (p *ProgressSink) Bump() {
	if p == nil {
		return
	}
	if d := p.done.Add(1); d%progressEvery == 0 || int(d) == p.total {
		p.emit()
	}
}

// Finish closes an unknown-total stage (Stage total 0): the final count
// becomes the total and the closing snapshot is emitted. Known-total
// stages close themselves when the last unit bumps.
func (p *ProgressSink) Finish() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	done := int(p.done.Load())
	p.total = done
	p.lastEmit = done
	p.fn(Progress{Stage: p.stage, Done: done, Total: done})
}

// emit re-reads the counter under the mutex so a preempted worker can
// never publish a snapshot older than one already delivered.
func (p *ProgressSink) emit() {
	p.mu.Lock()
	defer p.mu.Unlock()
	done := int(p.done.Load())
	if done <= p.lastEmit {
		return
	}
	p.lastEmit = done
	p.fn(Progress{Stage: p.stage, Done: done, Total: p.total})
}

// pairPrunable applies the width-2 locality rule: deviation B can only
// repair A's violated runs if B's view occurs in every one of them.
func (cs *Compiled) pairPrunable(singleViolated []bitset.Set, a, b Deviation, ai, bi int) bool {
	return !singleViolated[ai].SubsetOf(&cs.occurs[b.View]) ||
		!singleViolated[bi].SubsetOf(&cs.occurs[a.View])
}

// Search runs the shard/test stages over the compiled space: width-1
// candidates first (their violation sets feed the width-2 locality
// prune), then all distinct-view pairs. Candidates are strided across
// the workers in canonical order; each worker owns private scratch and
// counters merged once when its stride is drained. The moment a
// dominating candidate is found its ordinal is published, in-flight
// workers skip every larger ordinal, and the stages after the current
// one are cancelled through the derived context — early termination with
// a deterministic (canonical-first) witness.
func (cs *Compiled) Search(ctx context.Context, opts SearchOptions) (*SearchReport, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	workers := opts.Parallelism
	if workers < 1 {
		workers = 1
	}
	prog := NewProgressSink(opts.Progress)
	report := &SearchReport{Runs: len(cs.runs), Views: len(cs.devs)}
	nd := len(cs.devs)

	// Stage: width-1. Runs to completion even when a winner appears
	// mid-stage (skipping ordinals above it): the violation sets of ALL
	// single deviations are the width-2 prune input, and a full stage
	// keeps the counters deterministic. Each candidate simulates only
	// the runs its view occurs in — elsewhere it is the base rule
	// verbatim, so those runs contribute exactly the base's own
	// violations (baseBad) and no strict win.
	singleViolated := make([]bitset.Set, nd) // [di] written only by di's worker
	var best atomic.Int64
	best.Store(noWinner)
	prog.Stage("width-1", nd)
	err := Shards(ctx, workers, func(ctx context.Context, w int) error {
		sc := &testScratch{}
		for di := w; di < nd; di += workers {
			if err := ctx.Err(); err != nil {
				return err
			}
			if int64(di) > best.Load() {
				continue // a smaller winner already exists; sets past it are never read
			}
			d := cs.devs[di]
			sc.devs[0] = d
			vio := &singleViolated[di]
			strictAnywhere := false
			cs.occurs[d.View].ForEach(func(ri int) bool {
				bad, strict := cs.violates(sc.devs[:1], cs.runs[ri], sc)
				if bad {
					vio.Add(ri)
				}
				strictAnywhere = strictAnywhere || strict
				return true
			})
			if !cs.baseBad.Empty() {
				vio.UnionWith(sc.relevant.CopyFrom(&cs.baseBad).SubtractWith(&cs.occurs[d.View]))
			}
			if strictAnywhere && vio.Empty() {
				bestMin(&best, int64(di))
			}
			prog.Bump()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if b := best.Load(); b != noWinner {
		report.Beaten = true
		report.Candidates = int(b) + 1 // canonical prefix through the winner
		report.Witness = cs.witness(cs.devs[b : b+1])
		return report, nil
	}
	report.Candidates = nd
	if cs.p.Width == 1 {
		return report, nil
	}

	// Stage: width-2 over all distinct-view pairs, in canonical ordinal
	// order.
	totalPairs := 0
	for ai := 0; ai < nd; ai++ {
		for bi := ai + 1; bi < nd; bi++ {
			if cs.devs[ai].View != cs.devs[bi].View {
				totalPairs++
			}
		}
	}
	type pairAcc struct{ pruned, tested int }
	accs := make([]pairAcc, workers)
	best.Store(noWinner)
	prog.Stage("width-2", totalPairs)
	err = Shards(ctx, workers, func(ctx context.Context, w int) error {
		sc := &testScratch{}
		acc := &accs[w]
		ord := -1
		for ai := 0; ai < nd; ai++ {
			for bi := ai + 1; bi < nd; bi++ {
				a, b := cs.devs[ai], cs.devs[bi]
				if a.View == b.View {
					continue // one decision per view
				}
				ord++
				if ord%workers != w {
					continue
				}
				if err := ctx.Err(); err != nil {
					return err
				}
				if int64(ord) > best.Load() {
					continue // a smaller winner already exists
				}
				if cs.pairPrunable(singleViolated, a, b, ai, bi) {
					acc.pruned++
					prog.Bump()
					continue
				}
				acc.tested++
				sc.devs[0], sc.devs[1] = a, b
				relevant := sc.relevant.CopyFrom(&cs.occurs[a.View]).UnionWith(&cs.occurs[b.View])
				if cs.testCandidate(sc.devs[:2], relevant, sc) {
					bestMin(&best, int64(ord))
				}
				prog.Bump()
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if b := best.Load(); b != noWinner {
		// Deterministic counters for the beaten case: re-derive the
		// prune/test split of the canonical prefix below the winner (the
		// prune predicate reads only the completed width-1 sets, so this
		// is a pure recount, no run simulation).
		report.Beaten = true
		cs.recountPrefix(report, singleViolated, int(b))
		return report, nil
	}
	for _, acc := range accs {
		report.PairsPruned += acc.pruned
		report.PairsTested += acc.tested
	}
	report.Candidates = nd + report.PairsTested
	return report, nil
}

// recountPrefix fills the beaten-case width-2 counters and witness: the
// prune/test split over pair ordinals strictly below the winner, plus
// the winner itself (tested by definition).
func (cs *Compiled) recountPrefix(report *SearchReport, singleViolated []bitset.Set, winner int) {
	nd := len(cs.devs)
	ord := -1
	for ai := 0; ai < nd; ai++ {
		for bi := ai + 1; bi < nd; bi++ {
			a, b := cs.devs[ai], cs.devs[bi]
			if a.View == b.View {
				continue
			}
			ord++
			if ord == winner {
				report.PairsTested++
				report.Candidates = nd + report.PairsTested
				report.Witness = cs.witness([]Deviation{a, b})
				return
			}
			if cs.pairPrunable(singleViolated, a, b, ai, bi) {
				report.PairsPruned++
			} else {
				report.PairsTested++
			}
		}
	}
}

// Search enumerates the space, compiles all runs of the base protocol
// through a recycled Builder arena and pooled run scratch, and tests
// every ≤Width-view early-deviation rule sequentially. It is the
// single-call convenience form of the pipeline; Engine.Analyze runs the
// same stages with the engine's backend, worker pool, and streaming
// progress.
func Search(ctx context.Context, base sim.Protocol, p SearchParams) (*SearchReport, error) {
	c, err := NewCompiler(p)
	if err != nil {
		return nil, err
	}
	builder := knowledge.NewBuilder()
	var (
		sc   sim.Scratch
		res  sim.Result
		cerr error
	)
	err = p.Space.ForEach(func(adv *model.Adversary) bool {
		if cerr = ctx.Err(); cerr != nil {
			return false
		}
		g := builder.Build(adv, c.Horizon())
		sim.RunWithGraphInto(base, g, &sc, &res)
		c.Add(adv, g, res.Decisions)
		g.Release()
		return true
	})
	if cerr != nil {
		return nil, cerr
	}
	if err != nil {
		return nil, err
	}
	return c.Compiled().Search(ctx, SearchOptions{Parallelism: 1})
}
