package unbeat

import (
	"context"
	"fmt"
	"sort"

	"setconsensus/internal/bitset"
	"setconsensus/internal/knowledge"
	"setconsensus/internal/model"
)

// This file executes the constructive combinatorial proof of Lemma 1 and
// Lemma 3 (Appendix B) as machine-checked certificates. A certificate does
// not quantify over protocols symbolically; instead it materializes every
// run the proof constructs (the Lemma 2 run r′, the per-witness
// recursions, and the "change" runs r^k, …, r^0 for every possible order
// in which a dominating protocol could assign low values to the hidden
// processes j_1..j_k) and checks every side condition the proof relies
// on: view-fingerprint indistinguishability, the exact low-value sets, and
// the hidden/high classifications. A successfully built certificate is
// precisely the paper's argument instantiated on this run.

// ForcedCert certifies that, in any protocol P that solves nonuniform
// k-set consensus and decides every low process immediately (as any
// protocol dominating Optmin[k] must), the process Node decides its unique
// low value Value at time Time in the run it was built from (Lemma 1).
type ForcedCert struct {
	Node  model.Proc
	Time  int
	Value model.Value
	K     int

	// Hidden is the Lemma 2 construction used by the induction step
	// (nil at the base case m = 0, and for k = 1 where no extra chains
	// are needed).
	Hidden *HiddenRunResult
	// Senders maps each low value to the process that carries it at time
	// Time−1 in the constructed run (the i_w of the proof; Senders[Value]
	// is the i_v message sender). Empty at the base case.
	Senders map[model.Value]model.Proc
	// Sub holds the induction-hypothesis certificates, one per low value,
	// forcing Senders[w] to decide w by Time−1.
	Sub map[model.Value]*ForcedCert
	// Js are the k hidden high processes of condition 4.
	Js []model.Proc
	// Orders counts the change-run orderings explored (k! at an
	// induction step, 0 at the base).
	Orders int
}

// String renders the certificate's conclusion in the report convention
// (typed fields carry the data; String is the display form).
func (c *ForcedCert) String() string {
	if c == nil {
		return "<no certificate>"
	}
	s := fmt.Sprintf("forced: ⟨%d,%d⟩ decides %d (k=%d", c.Node, c.Time, c.Value, c.K)
	if c.Orders > 0 {
		s += fmt.Sprintf(", %d change orderings", c.Orders)
	}
	if len(c.Senders) > 0 {
		vals := make([]int, 0, len(c.Senders))
		for v := range c.Senders {
			vals = append(vals, v)
		}
		sort.Ints(vals)
		s += ", senders"
		for _, v := range vals {
			s += fmt.Sprintf(" %d←%d", v, c.Senders[v])
		}
	}
	return s + ")"
}

// TotalOrders sums the change-run orderings validated by this
// certificate and its whole induction tree — the work metric the
// "forced" analysis family aggregates.
func (c *ForcedCert) TotalOrders() int {
	if c == nil {
		return 0
	}
	total := c.Orders
	for _, sub := range c.Sub {
		total += sub.TotalOrders()
	}
	return total
}

// conditions verifies the four hypotheses of Lemma 1 for ⟨w,m⟩ in g and
// returns the unique low value and the k condition-4 processes.
func conditions(g *knowledge.Graph, w model.Proc, m, k int) (model.Value, []model.Proc, error) {
	lows := lowsOf(g, w, m, k)
	if lows.Count() != 1 {
		return 0, nil, fmt.Errorf("unbeat: ⟨%d,%d⟩ has %d low values, need exactly 1", w, m, lows.Count())
	}
	v, _ := lows.Min()
	if m > 0 && lowsOf(g, w, m-1, k).Count() != 0 {
		return 0, nil, fmt.Errorf("unbeat: ⟨%d,%d⟩ is not low for the first time", w, m)
	}
	if hc := g.HiddenCapacity(w, m); hc < k-1 {
		return 0, nil, fmt.Errorf("unbeat: HC⟨%d,%d⟩ = %d < k−1 = %d", w, m, hc, k-1)
	}
	var js []model.Proc
	for j := 0; j < g.Adv.N() && len(js) < k; j++ {
		if j == w || !g.Active(j, m) || !g.Hidden(w, m, j, m) {
			continue
		}
		if m > 0 && lowsOf(g, j, m-1, k).Count() != 0 {
			continue // must be high at m−1
		}
		js = append(js, j)
	}
	if len(js) < k {
		return 0, nil, fmt.Errorf("unbeat: condition 4 fails at ⟨%d,%d⟩: only %d hidden high processes", w, m, len(js))
	}
	return v, js, nil
}

func lowsOf(g *knowledge.Graph, i model.Proc, m, k int) *bitset.Set {
	out := &bitset.Set{}
	g.Vals(i, m).ForEach(func(v int) bool {
		if v < k {
			out.Add(v)
		}
		return true
	})
	return out
}

// ForcedLow builds the Lemma 1 certificate for ⟨w,m⟩ in the run of g: the
// full induction of the paper, materialized. The context is checked at
// every induction step and change-run ordering, so cancelling it aborts
// a deep certificate promptly.
func ForcedLow(ctx context.Context, g *knowledge.Graph, w model.Proc, m, k int) (*ForcedCert, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	v, js, err := conditions(g, w, m, k)
	if err != nil {
		return nil, err
	}
	cert := &ForcedCert{Node: w, Time: m, Value: v, K: k, Js: js}
	if m == 0 {
		// Base: Vals⟨w,0⟩ = {v}; Validity alone forces the decision.
		if c := g.Vals(w, 0).Count(); c != 1 {
			return nil, fmt.Errorf("unbeat: base case needs Vals⟨%d,0⟩ = {v}, have %d values", w, c)
		}
		return cert, nil
	}

	// Induction step. Build r′ carrying the other low values through
	// hidden chains (Lemma 2); for k = 1 there are none and r′ = r.
	gp := g
	var otherLows []model.Value
	for lw := 0; lw < k; lw++ {
		if lw != v {
			otherLows = append(otherLows, lw)
		}
	}
	if len(otherLows) > 0 {
		h, err := HiddenRun(g, w, m, otherLows)
		if err != nil {
			return nil, fmt.Errorf("unbeat: step Lemma-2 run at ⟨%d,%d⟩: %w", w, m, err)
		}
		gp, err = h.Verify(ctx, g)
		if err != nil {
			return nil, fmt.Errorf("unbeat: step Lemma-2 verification: %w", err)
		}
		cert.Hidden = h
	}

	// Locate the senders i_w carrying each low value at time m−1 in r′.
	senders := make(map[model.Value]model.Proc, k)
	if cert.Hidden != nil {
		for b, lw := range otherLows {
			iw := cert.Hidden.Witnesses[m-1][b]
			if got := lowsOf(gp, iw, m-1, k); got.Count() != 1 || !got.Contains(lw) {
				return nil, fmt.Errorf("unbeat: witness ⟨%d,%d⟩ carries lows %s, want {%d}", iw, m-1, got, lw)
			}
			senders[lw] = iw
		}
	}
	iv, err := findValueSender(gp, w, m, v, k)
	if err != nil {
		return nil, err
	}
	senders[v] = iv
	cert.Senders = senders

	// Induction hypothesis: each sender is forced to decide its value at
	// m−1 in r′.
	cert.Sub = make(map[model.Value]*ForcedCert, k)
	for lw, s := range senders {
		sub, err := ForcedLow(ctx, gp, s, m-1, k)
		if err != nil {
			return nil, fmt.Errorf("unbeat: recursion on sender %d of value %d at time %d: %w", s, lw, m-1, err)
		}
		if sub.Value != lw {
			return nil, fmt.Errorf("unbeat: recursion forced %d, want %d", sub.Value, lw)
		}
		cert.Sub[lw] = sub
	}

	// Change phase: for every order in which a dominating protocol could
	// assign low values to j_1..j_k, the corresponding chain of change
	// runs exists and is locally invisible. The proof processes changes
	// k, k−1, …, 1, each pinning j_b's decision into the complement of
	// the already-taken values.
	base := gp.Adv
	wFp := gp.Fingerprint(w, m)
	orders, err := exploreChanges(ctx, base, gp, w, m, k, js, senders, wFp)
	if err != nil {
		return nil, err
	}
	cert.Orders = orders
	return cert, nil
}

// findValueSender locates i_v: a process whose round-m message brought v
// to w, with Lows⟨i_v,m−1⟩ = {v} (as the proof derives).
func findValueSender(g *knowledge.Graph, w model.Proc, m int, v model.Value, k int) (model.Proc, error) {
	for x := 0; x < g.Adv.N(); x++ {
		if x == w || !g.Adv.Pattern.Delivered(x, w, m) {
			continue
		}
		lows := lowsOf(g, x, m-1, k)
		if lows.Count() == 1 && lows.Contains(v) {
			return x, nil
		}
	}
	return 0, fmt.Errorf("unbeat: no round-%d sender of value %d to process %d", m, v, w)
}

// exploreChanges walks every order in which values can be taken by
// j_k, …, j_1, materializing each change run and checking the proof's
// invariants. It returns the number of complete orderings validated.
// The walk is the k!-sized inner loop of a forced certificate, so the
// context is polled at every frame.
func exploreChanges(ctx context.Context, base *model.Adversary, gBase *knowledge.Graph, w model.Proc, m, k int,
	js []model.Proc, senders map[model.Value]model.Proc, wFp string) (int, error) {

	type frame struct {
		run   *model.Adversary
		jFps  map[model.Proc]string // pinned fingerprints of processed j's
		taken *bitset.Set
	}
	var walk func(fr frame, b int) (int, error)
	walk = func(fr frame, b int) (int, error) {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		if b == 0 {
			return 1, nil
		}
		jb := js[b-1]
		next, g2, err := applyChange(fr.run, jb, m, k, js, senders, fr.taken)
		if err != nil {
			return 0, err
		}
		// Invariants: w's view at m is unchanged, and so is every
		// already-processed j's.
		if got := g2.Fingerprint(w, m); got != wFp {
			return 0, fmt.Errorf("unbeat: change for j=%d altered ⟨%d,%d⟩'s view", jb, w, m)
		}
		for jp, fp := range fr.jFps {
			if got := g2.Fingerprint(jp, m); got != fp {
				return 0, fmt.Errorf("unbeat: change for j=%d altered pinned ⟨%d,%d⟩", jb, jp, m)
			}
		}
		// j_b's low set must be exactly the untaken values.
		gotLows := lowsOf(g2, jb, m, k)
		want := bitset.New(k)
		for lw := 0; lw < k; lw++ {
			if !fr.taken.Contains(lw) {
				want.Add(lw)
			}
		}
		if !gotLows.Equal(want) {
			return 0, fmt.Errorf("unbeat: change for j=%d: Lows⟨%d,%d⟩ = %s, want %s", jb, jb, m, gotLows, want)
		}
		// Auxiliary run s (the proof's agreement-forcing step): j_b and
		// every process it hears from at time m never fail, yet j_b's view
		// at m is unchanged — so, with the untaken senders now correct and
		// deciding their values (their time-(m−1) views are intact), j_b
		// cannot decide a high value without a (k+1)-st correct decision.
		aux := next.Clone()
		for _, s := range senders {
			if cr, faulty := aux.Pattern.Crashes[s]; faulty && cr.Round >= m && cr.Delivered.Contains(jb) {
				delete(aux.Pattern.Crashes, s)
			}
		}
		gAux := knowledge.New(aux, m)
		if gAux.Fingerprint(jb, m) != g2.Fingerprint(jb, m) {
			return 0, fmt.Errorf("unbeat: auxiliary run distinguishable to ⟨%d,%d⟩", jb, m)
		}
		for lw, s := range senders {
			if fr.taken.Contains(lw) {
				continue
			}
			if gAux.Fingerprint(s, m-1) != gBase.Fingerprint(s, m-1) {
				return 0, fmt.Errorf("unbeat: auxiliary run altered sender ⟨%d,%d⟩", s, m-1)
			}
		}
		// The protocol may assign j_b any untaken value; recurse over all.
		total := 0
		pinned := g2.Fingerprint(jb, m)
		var decideErr error
		want.ForEach(func(lw int) bool {
			fps := make(map[model.Proc]string, len(fr.jFps)+1)
			for p, fp := range fr.jFps {
				fps[p] = fp
			}
			fps[jb] = pinned
			sub, err := walk(frame{run: next, jFps: fps, taken: fr.taken.Clone().Add(lw)}, b-1)
			if err != nil {
				decideErr = err
				return false
			}
			total += sub
			return true
		})
		if decideErr != nil {
			return 0, decideErr
		}
		return total, nil
	}
	return walk(frame{run: base, jFps: map[model.Proc]string{}, taken: &bitset.Set{}}, k)
}

// applyChange materializes "change b" of the proof: j never fails, and its
// round-m receipts are exactly the untaken senders, plus every correct
// process (which necessarily includes i and the other j's).
func applyChange(run *model.Adversary, j model.Proc, m, k int, js []model.Proc,
	senders map[model.Value]model.Proc, taken *bitset.Set) (*model.Adversary, *knowledge.Graph, error) {

	out := run.Clone()
	if cr, faulty := out.Pattern.Crashes[j]; faulty {
		if cr.Round <= m {
			return nil, nil, fmt.Errorf("unbeat: j=%d crashed in round %d ≤ m=%d; cannot be revived invisibly", j, cr.Round, m)
		}
		delete(out.Pattern.Crashes, j)
	}
	isJ := make(map[model.Proc]bool, len(js))
	for _, p := range js {
		isJ[p] = true
	}
	isSender := make(map[model.Proc]model.Value, len(senders))
	for lw, p := range senders {
		isSender[p] = lw
	}
	for x := 0; x < out.N(); x++ {
		if x == j {
			continue
		}
		if lw, ok := isSender[x]; ok {
			if taken.Contains(lw) {
				if err := suppressDelivery(out, x, m, j); err != nil {
					return nil, nil, err
				}
			} else if err := forceDelivery(out, x, m, j); err != nil {
				return nil, nil, err
			}
			continue
		}
		if isJ[x] {
			continue // the j's stay mutually connected
		}
		// "Exactly": any other process that crashes in round m must not
		// reach j — its time-(m−1) state could carry stray low values.
		if cr, faulty := out.Pattern.Crashes[x]; faulty && cr.Round == m {
			cr.Delivered.Remove(j)
		}
	}
	g := knowledge.New(out, gHorizon(out, m))
	return out, g, nil
}

// suppressDelivery makes x's round-m message not reach j: by trimming a
// crash-round delivery set, or by crashing a correct x in round m with a
// full send except to j (invisible to everyone else's time-m view).
func suppressDelivery(adv *model.Adversary, x model.Proc, m int, j model.Proc) error {
	if cr, faulty := adv.Pattern.Crashes[x]; faulty {
		switch {
		case cr.Round == m:
			cr.Delivered.Remove(j)
			return nil
		case cr.Round < m:
			return nil // already silent in round m
		default: // crashes later: pull the crash forward to round m
			adv.Pattern.Crashes[x] = model.Crash{Round: m, Delivered: bitset.Full(adv.N()).Remove(j)}
			return nil
		}
	}
	adv.Pattern.Crashes[x] = model.Crash{Round: m, Delivered: bitset.Full(adv.N()).Remove(j)}
	return nil
}

// forceDelivery makes x's round-m message reach j.
func forceDelivery(adv *model.Adversary, x model.Proc, m int, j model.Proc) error {
	if cr, faulty := adv.Pattern.Crashes[x]; faulty {
		switch {
		case cr.Round == m:
			cr.Delivered.Add(j)
			return nil
		case cr.Round < m:
			return fmt.Errorf("unbeat: sender %d is dead before round %d; cannot deliver", x, m)
		}
	}
	return nil // correct (or crashing later): delivers anyway
}

func gHorizon(adv *model.Adversary, m int) int {
	return m
}

// CannotDecideCert certifies Lemma 3 for one node: a high process with
// hidden capacity ≥ k cannot decide at ⟨i,m⟩ in any protocol that solves
// nonuniform k-set consensus and decides low processes immediately.
type CannotDecideCert struct {
	Node   model.Proc
	Time   int
	K      int
	Hidden *HiddenRunResult
	// Forced certifies, per low value b, that the layer-m witness of
	// chain b decides b at time m in the Lemma 2 run — so a decision by
	// ⟨i,m⟩ (necessarily on a high value, by Validity) would be a
	// (k+1)-st distinct value among correct processes.
	Forced []*ForcedCert
}

// String renders the certificate's conclusion.
func (c *CannotDecideCert) String() string {
	if c == nil {
		return "<no certificate>"
	}
	return fmt.Sprintf("cannot-decide: ⟨%d,%d⟩ undecidable in any protocol dominating Optmin[%d] (%d forced witnesses, %d change orderings)",
		c.Node, c.Time, c.K, len(c.Forced), c.TotalOrders())
}

// TotalOrders sums the change-run orderings validated across the
// certificate's forced witnesses.
func (c *CannotDecideCert) TotalOrders() int {
	if c == nil {
		return 0
	}
	total := 0
	for _, f := range c.Forced {
		total += f.TotalOrders()
	}
	return total
}

// CannotDecide builds the Lemma 3 certificate for ⟨i,m⟩ in the run of g.
// Cancelling the context aborts the certificate's forcing recursions
// promptly.
func CannotDecide(ctx context.Context, g *knowledge.Graph, i model.Proc, m, k int) (*CannotDecideCert, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if lows := lowsOf(g, i, m, k); lows.Count() != 0 {
		return nil, fmt.Errorf("unbeat: ⟨%d,%d⟩ is low; Lemma 3 concerns high nodes", i, m)
	}
	if hc := g.HiddenCapacity(i, m); hc < k {
		return nil, fmt.Errorf("unbeat: HC⟨%d,%d⟩ = %d < k = %d", i, m, hc, k)
	}
	values := make([]model.Value, k)
	for b := range values {
		values[b] = b
	}
	h, err := HiddenRun(g, i, m, values)
	if err != nil {
		return nil, err
	}
	gp, err := h.Verify(ctx, g)
	if err != nil {
		return nil, err
	}
	cert := &CannotDecideCert{Node: i, Time: m, K: k, Hidden: h}
	for b := 0; b < k; b++ {
		wb := h.Witnesses[m][b]
		sub, err := ForcedLow(ctx, gp, wb, m, k)
		if err != nil {
			return nil, fmt.Errorf("unbeat: forcing witness %d (value %d): %w", wb, b, err)
		}
		if sub.Value != b {
			return nil, fmt.Errorf("unbeat: witness %d forced to %d, want %d", wb, sub.Value, b)
		}
		cert.Forced = append(cert.Forced, sub)
	}
	return cert, nil
}
