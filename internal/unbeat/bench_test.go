package unbeat

import (
	"context"
	"testing"

	"setconsensus/internal/core"
	"setconsensus/internal/enum"
	"setconsensus/internal/knowledge"
	"setconsensus/internal/model"
	"setconsensus/internal/sim"
)

// The ablation pair behind the analysis pipeline: the staged
// compile/shard/test search versus the retained pre-pipeline reference
// (reference.go — map per candidate, bitset per (candidate, run),
// allocating run path). The uniform n=4 probe is the seeded space whose
// candidate testing is heavy enough to exercise the stage the pipeline
// reworked; BenchmarkAnalyze in the root package measures the same
// space through Engine.Analyze.

func benchSearchConfig() (sim.Protocol, SearchParams) {
	return core.MustUPmin(core.Params{N: 4, T: 2, K: 1}), SearchParams{
		Space: enum.Space{N: 4, T: 2, MaxRound: 2, Values: []model.Value{0, 1}},
		K:     1, T: 2, Uniform: true, Width: 2,
	}
}

func BenchmarkSearchPipeline(b *testing.B) {
	base, p := benchSearchConfig()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := Search(ctx, base, p)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Beaten {
			b.Fatal("u-Pmin beaten — search broken")
		}
	}
}

func BenchmarkSearchReference(b *testing.B) {
	base, p := benchSearchConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := referenceSearch(base, p)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Beaten {
			b.Fatal("u-Pmin beaten — search broken")
		}
	}
}

// BenchmarkCompile isolates the compile stage: pooled Builder revive +
// scratch simulation + zero-copy view interning over the whole space.
func BenchmarkCompile(b *testing.B) {
	base, p := benchSearchConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := NewCompiler(p)
		if err != nil {
			b.Fatal(err)
		}
		builder := knowledge.NewBuilder()
		var sc sim.Scratch
		var res sim.Result
		err = p.Space.ForEach(func(adv *model.Adversary) bool {
			g := builder.Build(adv, c.Horizon())
			sim.RunWithGraphInto(base, g, &sc, &res)
			c.Add(adv, g, res.Decisions)
			g.Release()
			return true
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileDelta isolates the steady-state delta kernels of the
// compile stage: one pattern block of the probe space, cycled in its
// Gray-code order, so after the priming build every adversary differs
// from its predecessor in a single input — Build rides the patch kernel
// and Add copies interned view ids forward wherever the view has not
// seen the changed process. Per-adversary cost here, against
// BenchmarkCompile's whole-space figure (which pays a full build and
// fresh interning at every pattern boundary), is the delta machinery's
// margin.
func BenchmarkCompileDelta(b *testing.B) {
	base, p := benchSearchConfig()
	c, err := NewCompiler(p)
	if err != nil {
		b.Fatal(err)
	}
	block := p.Space.PatternBlock()
	advs := make([]*model.Adversary, 0, block)
	for _, d := range p.Space.DeltaOrder(0) {
		advs = append(advs, d.Adv)
		if len(advs) == block {
			break
		}
	}
	builder := knowledge.NewBuilder()
	var sc sim.Scratch
	var res sim.Result
	builder.Build(advs[0], c.Horizon()).Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adv := advs[i%block]
		g := builder.Build(adv, c.Horizon())
		sim.RunWithGraphInto(base, g, &sc, &res)
		c.Add(adv, g, res.Decisions)
		g.Release()
	}
}
