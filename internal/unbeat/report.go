package unbeat

import (
	"fmt"
	"strings"

	"setconsensus/internal/model"
)

// This file holds the typed report vocabulary of the analysis pipeline.
// Reports are data, not prose: a Witness carries the interned view ids,
// decision values, and the fingerprint of the adversary on which the
// deviation strictly wins, and every report type renders itself through
// an explicit String method. The root package aliases these types so
// Engine.Analyze, the CLIs, and internal/experiments all speak the same
// schema without an import cycle (the same arrangement internal/agg uses
// for sweep summaries).

// Deviation is one early-decision override of a candidate rule: at the
// interned view View, decide Value.
type Deviation struct {
	View  int         `json:"view"`
	Value model.Value `json:"value"`
}

// Witness is a dominating deviation found by the search: the deviation
// set (one or two entries, by search width) plus the identity of the run
// on which it strictly beats the base protocol.
type Witness struct {
	// Deviations lists the candidate's view overrides in enumeration
	// order.
	Deviations []Deviation `json:"deviations"`
	// AdvFingerprint is the hex-rendered canonical fingerprint of the
	// first enumerated adversary on which the candidate decides strictly
	// earlier than the base protocol — an opaque identity key, stable
	// across runs of the same space.
	AdvFingerprint string `json:"advFingerprint"`
	// Adversary is the display rendering of that adversary.
	Adversary string `json:"adversary"`
}

// String renders the witness compactly.
func (w *Witness) String() string {
	if w == nil {
		return "<no witness>"
	}
	var b strings.Builder
	for i, d := range w.Deviations {
		if i > 0 {
			b.WriteString(" and ")
		}
		fmt.Fprintf(&b, "decide %d at view #%d", d.Value, d.View)
	}
	if w.Adversary != "" {
		fmt.Fprintf(&b, " (strict win on %s)", w.Adversary)
	}
	return b.String()
}

// Progress is one streamed snapshot of a running analysis, emitted by
// Engine.AnalyzeStream the way SweepSourceStream emits Results: Stage
// names the pipeline stage ("compile", "width-1", "width-2", "certify"),
// Done counts processed units of that stage, and Total is the stage size
// (0 when unknown up front, as during a compile over a space whose
// canonical count is discovered by walking it).
type Progress struct {
	Stage string `json:"stage"`
	Done  int    `json:"done"`
	Total int    `json:"total"`
}

// AnalysisReport is the structured outcome of one analysis family run —
// the unified schema behind Engine.Analyze. Exactly one of the payload
// sections is populated: Search for the deviation-search families,
// the certificate counters for "lemma2" and "forced".
type AnalysisReport struct {
	// Family is the registry name the analysis was resolved from, e.g.
	// "search:optmin".
	Family string `json:"family"`
	// Workload labels the adversary space or family the analysis ran
	// over.
	Workload string `json:"workload"`
	// N, T, K are the model parameters of the run.
	N int `json:"n"`
	T int `json:"t"`
	K int `json:"k"`

	// Search is the deviation-search outcome (search:* families).
	Search *SearchReport `json:"search,omitempty"`

	// Nodes is the number of graph nodes examined by a certificate
	// family; Certified of them carried a complete certificate.
	Nodes     int `json:"nodes,omitempty"`
	Certified int `json:"certified,omitempty"`
	// Orders totals the change-run orderings validated by "forced"
	// (the k! per-certificate walks of the Lemma 1 proof).
	Orders int `json:"orders,omitempty"`
}

// OK reports whether the analysis upheld the paper's claim: no beating
// deviation found, and every examined node certified.
func (r *AnalysisReport) OK() bool {
	if r.Search != nil && r.Search.Beaten {
		return false
	}
	return r.Certified == r.Nodes
}

// String renders the report's headline.
func (r *AnalysisReport) String() string {
	if r.Search != nil {
		verdict := "unbeaten"
		if r.Search.Beaten {
			verdict = "BEATEN: " + r.Search.Witness.String()
		}
		return fmt.Sprintf("%s over %s: %d runs, %d deviation points, %d candidates — %s",
			r.Family, r.Workload, r.Search.Runs, r.Search.Views, r.Search.Candidates, verdict)
	}
	return fmt.Sprintf("%s over %s: %d/%d nodes certified", r.Family, r.Workload, r.Certified, r.Nodes)
}

// advFingerprintHex renders an adversary's canonical binary fingerprint
// as hex for report fields (the raw bytes are an opaque map key, not
// printable).
func advFingerprintHex(adv *model.Adversary) string {
	return fmt.Sprintf("%x", adv.Fingerprint())
}
