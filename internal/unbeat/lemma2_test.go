package unbeat

import (
	"context"

	"math/rand"
	"testing"

	"setconsensus/internal/enum"
	"setconsensus/internal/knowledge"
	"setconsensus/internal/model"
)

func TestHiddenRunFig2(t *testing.T) {
	// Fig. 2 exactly: observer ⟨0,2⟩ with hidden capacity 3 in a run
	// where all inputs are 3; build r′ carrying values 0,1,2 through the
	// three chains and verify Lemma 2's guarantees.
	adv, err := model.HiddenChains(12, 3, 2, []model.Value{3, 3, 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	g := knowledge.New(adv, 2)
	if hc := g.HiddenCapacity(0, 2); hc != 3 {
		t.Fatalf("HC⟨0,2⟩ = %d, want 3", hc)
	}
	h, err := HiddenRun(g, 0, 2, []model.Value{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	gNew, err := h.Verify(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	// In r′ the chain tails know exactly their chain value among lows.
	for b := 0; b < 3; b++ {
		tail := h.Witnesses[2][b]
		vals := gNew.Vals(tail, 2)
		if !vals.Contains(b) {
			t.Errorf("tail of chain %d missing value %d: %s", b, b, vals)
		}
	}
	// And the observer still believes everyone has 3.
	if gNew.Min(0, 2) != 3 {
		t.Errorf("observer Min = %d in r′, want 3", gNew.Min(0, 2))
	}
}

func TestHiddenRunAtTimeZero(t *testing.T) {
	adv := model.NewBuilder(4, 1).MustBuild()
	g := knowledge.New(adv, 1)
	h, err := HiddenRun(g, 0, 0, []model.Value{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Verify(context.Background(), g); err != nil {
		t.Fatal(err)
	}
	// The three other processes carry 0, 1, 2 in r′.
	got := map[model.Value]bool{}
	for _, w := range h.Witnesses[0] {
		got[h.Run.Inputs[w]] = true
	}
	for v := 0; v < 3; v++ {
		if !got[v] {
			t.Errorf("value %d not placed at time 0", v)
		}
	}
}

func TestHiddenRunErrors(t *testing.T) {
	adv := model.NewBuilder(3, 1).MustBuild()
	g := knowledge.New(adv, 1)
	// HC⟨0,1⟩ = 0 in a failure-free run: no chain can be built.
	if _, err := HiddenRun(g, 0, 1, []model.Value{0}); err == nil {
		t.Error("HC=0 must refuse chain construction")
	}
	if _, err := HiddenRun(g, 0, 0, nil); err == nil {
		t.Error("empty value list must error")
	}
	dead := model.NewBuilder(3, 1).CrashSilent(0, 1).MustBuild()
	gd := knowledge.New(dead, 1)
	if _, err := HiddenRun(gd, 0, 1, []model.Value{0}); err == nil {
		t.Error("inactive node must error")
	}
}

// TestHiddenRunExhaustiveSmall reproduces Lemma 2 over an exhaustive small
// space: for EVERY adversary, every active node with HC ≥ c admits the
// construction, and every guarantee verifies.
func TestHiddenRunExhaustiveSmall(t *testing.T) {
	space := enum.Space{N: 4, T: 2, MaxRound: 2, Values: []model.Value{2}}
	built := 0
	err := space.ForEach(func(adv *model.Adversary) bool {
		g := knowledge.New(adv, 2)
		for i := 0; i < adv.N(); i++ {
			for m := 0; m <= 2; m++ {
				if !adv.Pattern.Active(i, m) {
					continue
				}
				hc := g.HiddenCapacity(i, m)
				for c := 1; c <= hc && c <= 2; c++ {
					values := make([]model.Value, c)
					for b := range values {
						values[b] = b
					}
					h, err := HiddenRun(g, i, m, values)
					if err != nil {
						t.Fatalf("construction failed at ⟨%d,%d⟩ HC=%d c=%d on %s: %v", i, m, hc, c, adv, err)
					}
					if _, err := h.Verify(context.Background(), g); err != nil {
						t.Fatalf("verification failed at ⟨%d,%d⟩ c=%d on %s: %v", i, m, c, adv, err)
					}
					built++
				}
			}
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if built == 0 {
		t.Fatal("no constructions exercised")
	}
	t.Logf("verified %d Lemma-2 constructions", built)
}

// TestHiddenRunRandom stresses the construction on random adversaries with
// larger n, deeper m, and more chains.
func TestHiddenRunRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	built := 0
	for trial := 0; trial < 120; trial++ {
		adv := model.Random(rng, model.RandomParams{N: 7, T: 5, MaxValue: 3, MaxRound: 3})
		g := knowledge.New(adv, 3)
		for i := 0; i < adv.N(); i++ {
			for m := 0; m <= 3; m++ {
				if !adv.Pattern.Active(i, m) {
					continue
				}
				hc := g.HiddenCapacity(i, m)
				if hc < 1 {
					continue
				}
				c := min(hc, 3)
				values := make([]model.Value, c)
				for b := range values {
					values[b] = b
				}
				h, err := HiddenRun(g, i, m, values)
				if err != nil {
					t.Fatalf("construction failed at ⟨%d,%d⟩ on %s: %v", i, m, adv, err)
				}
				if _, err := h.Verify(context.Background(), g); err != nil {
					t.Fatalf("verification failed at ⟨%d,%d⟩ on %s: %v", i, m, adv, err)
				}
				built++
			}
		}
	}
	t.Logf("verified %d Lemma-2 constructions on random adversaries", built)
}
