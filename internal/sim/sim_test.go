package sim

import (
	"strings"
	"testing"

	"setconsensus/internal/bitset"
	"setconsensus/internal/knowledge"
	"setconsensus/internal/model"
)

// minAtTime decides the current minimum at a fixed time.
func minAtTime(name string, when int) *Func {
	return &Func{
		ProtoName: name,
		Horizon:   when,
		Rule: func(g *knowledge.Graph, i model.Proc, m int) (model.Value, bool) {
			if m == when {
				return g.Min(i, m), true
			}
			return 0, false
		},
	}
}

func TestRunRecordsDecisions(t *testing.T) {
	adv := model.NewBuilder(3, 1).Input(0, 0).MustBuild()
	res := Run(minAtTime("fixed@1", 1), adv)
	for i := 0; i < 3; i++ {
		d := res.Decisions[i]
		if d == nil || d.Time != 1 {
			t.Fatalf("process %d: %+v", i, d)
		}
		if d.Value != 0 {
			t.Errorf("process %d decided %d, want 0 (flooded min)", i, d.Value)
		}
	}
	if res.ProtocolName != "fixed@1" {
		t.Errorf("name = %q", res.ProtocolName)
	}
}

func TestCrashedProcessesDoNotDecide(t *testing.T) {
	adv := model.NewBuilder(3, 1).CrashSilent(2, 1).MustBuild()
	res := Run(minAtTime("fixed@1", 1), adv)
	if res.Decisions[2] != nil {
		t.Error("process dead at time 1 must not decide at time 1")
	}
	if res.DecisionTime(2) != -1 {
		t.Error("DecisionTime of undecided must be −1")
	}
}

func TestFaultyDecisionBeforeCrashIsRecorded(t *testing.T) {
	// Crash in round 2 ⟹ active at times 0 and 1 ⟹ a time-1 decision
	// by the faulty process counts (it matters for uniform agreement).
	adv := model.NewBuilder(3, 1).CrashSilent(2, 2).MustBuild()
	res := Run(minAtTime("fixed@1", 1), adv)
	if d := res.Decisions[2]; d == nil || d.Time != 1 {
		t.Errorf("faulty-but-alive process decision: %+v", d)
	}
}

func TestDecisionIsIrrevocable(t *testing.T) {
	calls := map[model.Proc]int{}
	p := &Func{
		ProtoName: "count-calls",
		Horizon:   3,
		Rule: func(g *knowledge.Graph, i model.Proc, m int) (model.Value, bool) {
			calls[i]++
			return g.Min(i, m), m >= 1
		},
	}
	adv := model.NewBuilder(2, 0).MustBuild()
	Run(p, adv)
	for i, c := range calls {
		if c != 2 { // consulted at m=0 (declines) and m=1 (decides), then never again
			t.Errorf("process %d consulted %d times, want 2", i, c)
		}
	}
}

func TestDecidedValuesAndMaxTime(t *testing.T) {
	adv := model.NewBuilder(3, 2).Inputs(0, 1, 2).CrashSilent(2, 2).MustBuild()
	p := &Func{
		ProtoName: "own-value",
		Horizon:   2,
		Rule: func(g *knowledge.Graph, i model.Proc, m int) (model.Value, bool) {
			// Process 1 decides late, others immediately.
			if i == 1 {
				return g.Adv.Inputs[i], m == 2
			}
			return g.Adv.Inputs[i], m == 0
		},
	}
	res := Run(p, adv)
	correct := adv.Pattern.CorrectProcs()
	if got := res.DecidedValues(correct).Elems(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("correct decided values = %v", got)
	}
	if got := res.AllDecidedValues().Elems(); len(got) != 3 {
		t.Errorf("all decided values = %v", got)
	}
	if got := res.MaxCorrectDecisionTime(); got != 2 {
		t.Errorf("MaxCorrectDecisionTime = %d", got)
	}
}

func TestMaxCorrectDecisionTimeUndecided(t *testing.T) {
	adv := model.NewBuilder(2, 0).MustBuild()
	never := &Func{ProtoName: "never", Horizon: 2,
		Rule: func(*knowledge.Graph, model.Proc, int) (model.Value, bool) { return 0, false }}
	res := Run(never, adv)
	if got := res.MaxCorrectDecisionTime(); got != -1 {
		t.Errorf("undecided correct ⟹ −1, got %d", got)
	}
}

func TestRunWithGraphSharing(t *testing.T) {
	adv := model.NewBuilder(3, 1).MustBuild()
	g := knowledge.New(adv, 2)
	r1 := RunWithGraph(minAtTime("a", 1), g)
	r2 := RunWithGraph(minAtTime("b", 2), g)
	if r1.Graph != g || r2.Graph != g {
		t.Error("results must share the provided graph")
	}
	if r1.DecisionTime(0) != 1 || r2.DecisionTime(0) != 2 {
		t.Error("protocols over shared graph misbehaved")
	}
}

func TestResultString(t *testing.T) {
	adv := model.NewBuilder(2, 1).CrashSilent(1, 1).MustBuild()
	res := Run(minAtTime("p", 1), adv)
	s := res.String()
	if !strings.Contains(s, "0:1@1") || !strings.Contains(s, "1:⊥") {
		t.Errorf("String = %q", s)
	}
	_ = bitset.New(0) // keep import for DecidedValues use above
}
