// Package sim runs decision protocols against adversaries in the
// synchronous crash-failure model and records every decision.
//
// Because every protocol in this repository is a full-information protocol
// (§2.1 of the paper), a protocol is a pure decision rule over the
// knowledge graph: the simulator computes the graph once and consults the
// rule at every node ⟨i,m⟩ with i active and undecided. This "oracle"
// simulator is deterministic and is the reference semantics; the
// goroutine-and-channels engine in internal/runtime is cross-checked
// against it.
package sim

import (
	"fmt"
	"unsafe"

	"setconsensus/internal/bitset"
	"setconsensus/internal/knowledge"
	"setconsensus/internal/model"
)

// Protocol is a deterministic full-information decision protocol.
type Protocol interface {
	// Name identifies the protocol in reports, e.g. "Optmin[2]".
	Name() string
	// Decide is consulted for each active, still-undecided process i at
	// each time m in increasing order. Returning ok=true decides value v
	// at time m. The rule may only use information visible in ⟨i,m⟩'s
	// view; that discipline is enforced by the indistinguishability tests
	// in internal/unbeat, not by this interface.
	Decide(g *knowledge.Graph, i model.Proc, m int) (v model.Value, ok bool)
	// WorstCaseDecisionTime bounds the time by which every correct
	// process has decided, in every run of the protocol's context; the
	// simulator uses it as the horizon.
	WorstCaseDecisionTime() int
}

// Decision records one process's irrevocable decision.
type Decision struct {
	Value model.Value
	Time  int
}

// Result is the outcome of running a protocol against an adversary.
type Result struct {
	ProtocolName string
	Adv          *model.Adversary
	Graph        *knowledge.Graph
	// Decisions[i] is nil if process i never decided (it crashed first,
	// or the protocol failed to decide within the horizon).
	Decisions []*Decision
}

// Run executes p against adv up to p.WorstCaseDecisionTime() and returns
// all decisions. It never errors: absent decisions are visible in the
// Result and are judged by internal/check.
func Run(p Protocol, adv *model.Adversary) *Result {
	return RunToHorizon(p, adv, p.WorstCaseDecisionTime())
}

// RunToHorizon is Run with an explicit horizon (used by experiments that
// deliberately cut runs short, e.g. to examine prefixes).
func RunToHorizon(p Protocol, adv *model.Adversary, horizon int) *Result {
	return RunWithGraph(p, knowledge.New(adv, horizon))
}

// RunWithGraph runs p over an already-computed knowledge graph, to its
// full horizon. Exhaustive sweeps that run many protocols against the
// same adversary share one graph this way.
func RunWithGraph(p Protocol, g *knowledge.Graph) *Result {
	adv := g.Adv
	horizon := g.Horizon
	res := &Result{ProtocolName: p.Name(), Adv: adv, Graph: g, Decisions: make([]*Decision, adv.N())}
	// One slab for all decisions: at most n are made, and the capacity is
	// never exceeded, so the interior pointers stay valid.
	slab := make([]Decision, 0, adv.N())
	for m := 0; m <= horizon; m++ {
		for i := 0; i < adv.N(); i++ {
			if res.Decisions[i] != nil || !adv.Pattern.Active(i, m) {
				continue
			}
			if v, ok := p.Decide(g, i, m); ok {
				slab = append(slab, Decision{Value: v, Time: m})
				res.Decisions[i] = &slab[len(slab)-1]
			}
		}
	}
	return res
}

// Scratch is reusable decision storage for RunWithGraphInto and for
// backends converting foreign decision records into []*Decision without
// per-run allocation. One Scratch serves one goroutine; Reset hands out
// the pointer slice for a run of n processes and Put records decisions
// into a slab whose capacity Reset guarantees, so the interior pointers
// stay valid for the whole run. Everything returned aliases the scratch
// and is overwritten by the next Reset.
type Scratch struct {
	ptrs []*Decision
	slab []Decision
	cr   []int // crash round per process, hoisted from the pattern map
}

// Reset prepares storage for one run over n processes and returns the
// nil-filled Decisions slice. At most n Puts may follow before the next
// Reset.
func (sc *Scratch) Reset(n int) []*Decision {
	if cap(sc.ptrs) < n {
		sc.ptrs = make([]*Decision, n)
	}
	sc.ptrs = sc.ptrs[:n]
	for i := range sc.ptrs {
		sc.ptrs[i] = nil
	}
	if cap(sc.slab) < n {
		sc.slab = make([]Decision, 0, n)
	}
	sc.slab = sc.slab[:0]
	return sc.ptrs
}

// Put appends d to the slab and records it as process i's decision.
func (sc *Scratch) Put(i model.Proc, d Decision) {
	sc.slab = append(sc.slab, d)
	sc.ptrs[i] = &sc.slab[len(sc.slab)-1]
}

// Bytes reports the capacity the scratch currently pins, for the
// engine's memory governor. Capacities only grow, so the delta between
// two snapshots is the allocation the interval created.
func (sc *Scratch) Bytes() int64 {
	return int64(cap(sc.ptrs))*int64(unsafe.Sizeof((*Decision)(nil))) +
		int64(cap(sc.slab))*int64(unsafe.Sizeof(Decision{})) +
		int64(cap(sc.cr))*int64(unsafe.Sizeof(int(0)))
}

// RunWithGraphInto is RunWithGraph with pooled storage: it fills res in
// place and stores all decisions in sc, allocating nothing once the
// scratch has warmed up. res.Decisions aliases sc and is valid only
// until the next Reset/RunWithGraphInto on the same scratch — callers
// that retain results use RunWithGraph. The crash rounds are hoisted
// out of the pattern map once per run, so the inner loop does no map
// lookups the protocol itself doesn't make.
func RunWithGraphInto(p Protocol, g *knowledge.Graph, sc *Scratch, res *Result) {
	adv, horizon := g.Adv, g.Horizon
	n := adv.N()
	decs := sc.Reset(n)
	if cap(sc.cr) < n {
		sc.cr = make([]int, n)
	}
	sc.cr = sc.cr[:n]
	for i := 0; i < n; i++ {
		sc.cr[i] = adv.Pattern.CrashRound(i)
	}
	for m := 0; m <= horizon; m++ {
		for i := 0; i < n; i++ {
			if decs[i] != nil || sc.cr[i] <= m {
				continue
			}
			if v, ok := p.Decide(g, i, m); ok {
				sc.Put(i, Decision{Value: v, Time: m})
			}
		}
	}
	res.ProtocolName, res.Adv, res.Graph, res.Decisions = p.Name(), adv, g, decs
}

// DecisionTime returns the time at which i decided, or −1.
func (r *Result) DecisionTime(i model.Proc) int {
	if r.Decisions[i] == nil {
		return -1
	}
	return r.Decisions[i].Time
}

// AppendDecidedValues adds the values decided by the given processes
// into dst and returns dst. It is the allocation-free form of
// DecidedValues for check paths that verify every run of a sweep with
// one reused set.
func (r *Result) AppendDecidedValues(dst *bitset.Set, procs *bitset.Set) *bitset.Set {
	procs.ForEach(func(i int) bool {
		if d := r.Decisions[i]; d != nil {
			dst.Add(d.Value)
		}
		return true
	})
	return dst
}

// DecidedValues returns the set of values decided by the given processes
// (e.g. the correct set for nonuniform agreement, everyone for uniform).
func (r *Result) DecidedValues(procs *bitset.Set) *bitset.Set {
	return r.AppendDecidedValues(&bitset.Set{}, procs)
}

// AllDecidedValues returns the set of values decided by any process.
func (r *Result) AllDecidedValues() *bitset.Set {
	return r.DecidedValues(bitset.Full(r.Adv.N()))
}

// MaxCorrectDecisionTime returns the latest decision time among correct
// processes, or −1 if some correct process never decided.
func (r *Result) MaxCorrectDecisionTime() int {
	max := 0
	for i := 0; i < r.Adv.N(); i++ {
		if !r.Adv.Pattern.Correct(i) {
			continue
		}
		d := r.Decisions[i]
		if d == nil {
			return -1
		}
		if d.Time > max {
			max = d.Time
		}
	}
	return max
}

// String renders the decision table compactly.
func (r *Result) String() string {
	s := r.ProtocolName + ":"
	for i, d := range r.Decisions {
		if d == nil {
			s += fmt.Sprintf(" %d:⊥", i)
		} else {
			s += fmt.Sprintf(" %d:%d@%d", i, d.Value, d.Time)
		}
	}
	return s
}

// Func adapts a plain function (plus metadata) into a Protocol. It is the
// building block for the protocol-space search in internal/unbeat and for
// ablations.
type Func struct {
	ProtoName string
	Horizon   int
	Rule      func(g *knowledge.Graph, i model.Proc, m int) (model.Value, bool)
}

// Name implements Protocol.
func (f *Func) Name() string { return f.ProtoName }

// WorstCaseDecisionTime implements Protocol.
func (f *Func) WorstCaseDecisionTime() int { return f.Horizon }

// Decide implements Protocol.
func (f *Func) Decide(g *knowledge.Graph, i model.Proc, m int) (model.Value, bool) {
	return f.Rule(g, i, m)
}
