package sim

import (
	"testing"

	"setconsensus/internal/bitset"
	"setconsensus/internal/knowledge"
	"setconsensus/internal/model"
)

// TestRunWithGraphIntoMatchesRunWithGraph pins the pooled run path
// against the allocating one, decision for decision, across adversaries
// of different shapes run through one reused scratch.
func TestRunWithGraphIntoMatchesRunWithGraph(t *testing.T) {
	advs := []*model.Adversary{
		model.NewBuilder(3, 1).Input(0, 0).MustBuild(),
		model.NewBuilder(3, 1).CrashSilent(2, 1).MustBuild(),
		model.NewBuilder(4, 2).Inputs(0, 1, 2, 1).CrashSilent(3, 2).MustBuild(),
		model.NewBuilder(2, 0).MustBuild(),
	}
	var sc Scratch
	var pooled Result
	for _, adv := range advs {
		for _, when := range []int{1, 2} {
			p := minAtTime("p", when)
			g := knowledge.New(adv, when)
			want := RunWithGraph(p, g)
			RunWithGraphInto(p, g, &sc, &pooled)
			if pooled.ProtocolName != want.ProtocolName || pooled.Adv != want.Adv || pooled.Graph != want.Graph {
				t.Fatalf("pooled metadata diverged: %+v vs %+v", pooled, want)
			}
			if len(pooled.Decisions) != len(want.Decisions) {
				t.Fatalf("decision count %d vs %d", len(pooled.Decisions), len(want.Decisions))
			}
			for i := range want.Decisions {
				got, exp := pooled.Decisions[i], want.Decisions[i]
				switch {
				case (got == nil) != (exp == nil):
					t.Fatalf("process %d: pooled %v vs fresh %v", i, got, exp)
				case got != nil && (got.Value != exp.Value || got.Time != exp.Time):
					t.Fatalf("process %d: pooled %+v vs fresh %+v", i, *got, *exp)
				}
			}
			if got, exp := pooled.MaxCorrectDecisionTime(), want.MaxCorrectDecisionTime(); got != exp {
				t.Fatalf("MaxCorrectDecisionTime %d vs %d", got, exp)
			}
		}
	}
}

// TestRunWithGraphIntoAllocationFree asserts the steady state: once the
// scratch is warm, a pooled run allocates nothing.
func TestRunWithGraphIntoAllocationFree(t *testing.T) {
	adv := model.NewBuilder(4, 1).CrashSilent(3, 1).MustBuild()
	p := minAtTime("p", 2)
	g := knowledge.New(adv, 2)
	var sc Scratch
	var res Result
	RunWithGraphInto(p, g, &sc, &res) // warm up
	avg := testing.AllocsPerRun(50, func() {
		RunWithGraphInto(p, g, &sc, &res)
	})
	if avg != 0 {
		t.Fatalf("pooled run allocated %.1f objects per run, want 0", avg)
	}
}

// TestAppendDecidedValues pins the append variant against DecidedValues
// and its accumulate-into-dst contract.
func TestAppendDecidedValues(t *testing.T) {
	adv := model.NewBuilder(3, 2).Inputs(0, 1, 2).CrashSilent(2, 2).MustBuild()
	p := &Func{
		ProtoName: "own-value",
		Horizon:   1,
		Rule: func(g *knowledge.Graph, i model.Proc, m int) (model.Value, bool) {
			return g.Adv.Inputs[i], m == 0
		},
	}
	res := Run(p, adv)
	procs := adv.Pattern.CorrectProcs()
	want := res.DecidedValues(procs)
	dst := &bitset.Set{}
	if got := res.AppendDecidedValues(dst, procs); got != dst {
		t.Fatal("AppendDecidedValues must return dst")
	}
	if !dst.Equal(want) {
		t.Fatalf("AppendDecidedValues = %s, DecidedValues = %s", dst, want)
	}
	// Accumulation: pre-seeded elements stay.
	dst.Clear().Add(63)
	res.AppendDecidedValues(dst, procs)
	if !dst.Contains(63) || dst.Count() != want.Count()+1 {
		t.Fatalf("append did not accumulate: %s", dst)
	}
}
