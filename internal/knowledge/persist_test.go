package knowledge

import (
	"math/rand"
	"testing"

	"setconsensus/internal/model"
)

// TestPersistsSemantics validates the claim the paper attaches to
// Definition 3: "if i knows at time m that v will persist, then all
// active nodes at time m+1 will know ∃v". Checked over seeded random
// adversaries whose crash count respects the bound t the predicate is
// evaluated with.
func TestPersistsSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	checked := 0
	for trial := 0; trial < 400; trial++ {
		tBound := 1 + rng.Intn(4)
		adv := model.Random(rng, model.RandomParams{N: 6, T: tBound, MaxValue: 3, MaxRound: 3})
		g := New(adv, 4)
		for i := 0; i < 6; i++ {
			for m := 0; m < 4; m++ {
				if !adv.Pattern.Active(i, m) {
					continue
				}
				g.Vals(i, m).ForEach(func(v int) bool {
					if !g.Persists(i, m, v, tBound) {
						return true
					}
					checked++
					for j := 0; j < 6; j++ {
						if adv.Pattern.Active(j, m+1) && !g.Vals(j, m+1).Contains(v) {
							t.Fatalf("Persists⟨%d,%d⟩(%d) but ⟨%d,%d⟩ lacks it (t=%d, %s)",
								i, m, v, j, m+1, tBound, adv)
						}
					}
					return true
				})
			}
		}
	}
	if checked == 0 {
		t.Fatal("no persistence instances exercised")
	}
	t.Logf("validated %d persistence claims", checked)
}
