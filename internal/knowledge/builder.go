package knowledge

import (
	"math/bits"
	"sync"
	"unsafe"

	"setconsensus/internal/bitset"
	"setconsensus/internal/model"
)

// Meter observes the byte deltas of builder-owned storage — the
// engine's resource governor, reduced to the three calls this package
// needs. Grow/Shrink report capacity created and freed at the
// allocation choke points (storage.ensure, the lazy senders slab);
// Retain gates recycling: when it reports false, Release frees the
// graph's storage back to the GC instead of parking it as the spare.
type Meter interface {
	Grow(bytes int64)
	Shrink(bytes int64)
	Retain() bool
}

// Builder constructs knowledge graphs with buffer reuse: the build-time
// scratch (hoisted per-round crash sets, assignment frontiers, hidden
// buckets) lives in the Builder across calls, and storage released by
// Graph.Release is recycled into the next Build. A Builder is not safe
// for concurrent use — engines hold one per worker.
//
// Graphs from Build are indistinguishable from graphs from New; the only
// difference is the lifecycle contract that Release adds.
type Builder struct {
	sc       buildScratch
	spare    storage
	hasSpare bool
	// spareG and lastPat remember the released graph and the failure
	// pattern it was built over, enabling the revive fast path: a
	// rebuild over the same pattern (by pointer — patterns are immutable
	// by repo-wide contract) at the same horizon reuses every
	// pattern-derived table verbatim and recomputes only the value
	// layer. Exhaustive enumerations yield all input vectors of one
	// canonical pattern consecutively, sharing the *FailurePattern, so
	// aggregating sweep workers hit this path for all but the first
	// adversary of each pattern block.
	spareG  *Graph
	lastPat *model.FailurePattern
	// scPat/scHorizon/scN record which (pattern, horizon, n) the build
	// scratch currently describes — only full builds mutate sc, and
	// revive's fillValues reads sc.cr and sc.base, so reviving is only
	// sound while the scratch still matches the spare graph. An
	// interleaved full build over another adversary (legal: multiple
	// graphs from one Builder may be live) invalidates the scratch
	// without touching the spare, and these fields are how revive
	// notices.
	scPat     *model.FailurePattern
	scHorizon int
	scN       int

	// built, revived, and patched count the full builds, revive
	// fast-path hits, and delta-patch hits this builder has served. A
	// Builder belongs to one worker, so plain ints suffice; engines
	// harvest them with TakeCounts when the worker returns its kit,
	// turning per-build bookkeeping into three adds.
	built   int
	revived int
	patched int

	// meter, when set, observes every storage byte this builder's graphs
	// hold; accounted is the running total reported and not yet
	// shrunk — Discard's receipt for returning everything at once.
	meter     Meter
	accounted int64
}

// NewBuilder returns an empty Builder. The zero value is also usable.
func NewBuilder() *Builder { return &Builder{} }

// SetMeter attaches a byte meter to the builder. Set it before the
// first Build: storage allocated while unmetered is never reported.
func (b *Builder) SetMeter(m Meter) { b.meter = m }

// account reports a storage byte delta to the meter and keeps the
// builder's receipt in sync.
func (b *Builder) account(delta int64) {
	if b == nil || b.meter == nil || delta == 0 {
		return
	}
	b.accounted += delta
	if delta > 0 {
		b.meter.Grow(delta)
	} else {
		b.meter.Shrink(-delta)
	}
}

// Discard drops the builder's retained storage — the parked spare and
// its revive state — and shrinks the meter by everything the builder
// still has accounted, covering graphs a panic left un-Released. The
// builder stays usable; its next Build simply starts cold. Engines call
// it when a worker kit is retired (shedding, shutdown, or a recovered
// panic that may have corrupted the kit).
func (b *Builder) Discard() {
	b.spare, b.hasSpare, b.spareG, b.lastPat = storage{}, false, nil, nil
	b.scPat, b.scHorizon, b.scN = nil, 0, 0
	if b.meter != nil && b.accounted != 0 {
		if b.accounted > 0 {
			b.meter.Shrink(b.accounted)
		} else {
			b.meter.Grow(-b.accounted)
		}
		b.accounted = 0
	}
}

// bytes sums the capacity of every storage slab — the quantity the
// meter accounts. Element sizes come from unsafe.Sizeof, so the account
// tracks real slab footprints, not guesses.
func (st *storage) bytes() int64 {
	const wordSize = int64(unsafe.Sizeof(uint64(0)))
	return int64(cap(st.arena))*wordSize +
		int64(cap(st.sets))*int64(unsafe.Sizeof(bitset.Set{})) +
		int64(cap(st.ptrs))*int64(unsafe.Sizeof((*bitset.Set)(nil))) +
		int64(cap(st.views))*int64(unsafe.Sizeof(View{})) +
		int64(cap(st.ints))*int64(unsafe.Sizeof(int(0))) +
		int64(cap(st.senders))*wordSize
}

// Build computes the communication graph of adv up to horizon, reusing
// the builder's scratch and any storage a previous graph released. When
// the released graph was built over the same failure pattern at the
// same horizon, only the input-dependent tables (value sets, minima)
// are recomputed.
func (b *Builder) Build(adv *model.Adversary, horizon int) *Graph {
	if g := b.revive(adv, horizon); g != nil {
		return g
	}
	b.built++
	return build(adv, horizon, &b.sc, b)
}

// TakeCounts returns the full-build, revive, and patch counts accumulated
// since the last call and resets them. Engines fold the counts into their
// observability counters when a worker's builder is returned to the
// pool.
func (b *Builder) TakeCounts() (built, revived, patched int) {
	built, revived, patched = b.built, b.revived, b.patched
	b.built, b.revived, b.patched = 0, 0, 0
	return built, revived, patched
}

// spareMatches reports whether the parked spare graph can be rebuilt for
// adv at horizon: same pattern (by pointer — patterns are immutable by
// repo-wide contract), same horizon and process count, scratch still
// describing that pattern's full build, and adv's inputs narrow enough
// for the reused value-set layout. When it can, changed and diffs
// describe how adv's inputs differ from the spare's: diffs is the number
// of differing positions capped at 2, and changed is the single differing
// index when diffs == 1 (-1 when diffs == 0).
func (b *Builder) spareMatches(adv *model.Adversary, horizon int) (changed, diffs int, ok bool) {
	g := b.spareG
	if g == nil || !b.hasSpare || adv.Pattern != b.lastPat || horizon != g.Horizon || adv.N() != g.n {
		return -1, 0, false
	}
	if b.scPat != adv.Pattern || b.scHorizon != horizon || b.scN != adv.N() {
		return -1, 0, false
	}
	maxV := -1
	for _, v := range adv.Inputs {
		if v > maxV {
			maxV = v
		}
	}
	if maxV >= 0 && (maxV>>6)+1 > g.wv {
		return -1, 0, false
	}
	changed = -1
	old := g.Adv.Inputs
	for p, v := range adv.Inputs {
		if v != old[p] {
			changed = p
			if diffs++; diffs > 1 {
				changed = -1
				break
			}
		}
	}
	return changed, diffs, true
}

// attachSpare reattaches the released spare graph's storage for adv and
// re-slices the int tables over it. The value region is left exactly as
// the spare parked it — still describing the spare's old inputs — so the
// caller decides how much of it to recompute: nothing (identical inputs),
// the touched rows (single-input patch), or all of it (revive refill).
func (b *Builder) attachSpare(adv *model.Adversary) *Graph {
	g := b.spareG
	g.store = b.spare
	b.spare, b.hasSpare, b.spareG, b.lastPat = storage{}, false, nil, nil
	g.owner = b
	g.Adv = adv
	nodes := (g.Horizon + 1) * g.n
	kcLen := nodes * g.n
	hidLen := nodes * (g.Horizon + 1)
	ints := g.store.ints
	g.knownCrash = ints[:kcLen]
	g.hiddenCount = ints[kcLen : kcLen+hidLen]
	g.hc = ints[kcLen+hidLen : kcLen+hidLen+nodes]
	g.fails = ints[kcLen+hidLen+nodes : kcLen+hidLen+2*nodes]
	g.minVal = ints[kcLen+hidLen+2*nodes : kcLen+hidLen+3*nodes]
	g.cr = ints[kcLen+hidLen+3*nodes : kcLen+hidLen+3*nodes+g.n]
	return g
}

// revive reattaches the released spare graph for a same-pattern,
// same-horizon rebuild: the views, knownCrash, and hidden tables depend
// only on the failure pattern and are reused verbatim, and the value
// layer is recomputed as cheaply as the input diff allows. Identical
// inputs keep the parked value rows untouched; a single differing input
// takes the patch kernel, rewriting only the rows of views that have
// seen the changed process (both counted as patched); anything wider
// zeroes the value region and refills it (counted as revived). Returns
// nil when the spare does not match (different pattern, horizon, process
// count, stale scratch, or inputs too wide for the reused value-set
// layout) — the caller then runs a full build.
func (b *Builder) revive(adv *model.Adversary, horizon int) *Graph {
	changed, diffs, ok := b.spareMatches(adv, horizon)
	if !ok {
		return nil
	}
	g := b.attachSpare(adv)
	switch diffs {
	case 0:
		b.patched++
	case 1:
		patchValues(g, &b.sc, changed)
		b.patched++
	default:
		nodes := (g.Horizon + 1) * g.n
		vals := g.store.arena[g.valsOff : g.valsOff+nodes*g.wv]
		for i := range vals {
			vals[i] = 0
		}
		fillValues(g, &b.sc)
		b.revived++
	}
	return g
}

// Patch is the explicit form of the delta fast path Build engages
// automatically: it reattaches the released spare graph for adv and
// rewrites only the value rows of views that have seen changedProc,
// using the per-pattern touched-views table the pattern's full build
// precomputed. It returns nil — never falling back to a refill or a full
// build — when the kernels do not apply: no matching spare (pattern,
// horizon, process count, stale scratch, or value width), or the spare's
// inputs differ from adv's anywhere but changedProc. Identical inputs
// succeed trivially (the parked value rows are already correct).
func (b *Builder) Patch(adv *model.Adversary, horizon, changedProc int) *Graph {
	changed, diffs, ok := b.spareMatches(adv, horizon)
	if !ok || diffs > 1 || (diffs == 1 && changed != changedProc) {
		return nil
	}
	g := b.attachSpare(adv)
	if diffs == 1 {
		patchValues(g, &b.sc, changed)
	}
	b.patched++
	return g
}

// Release returns the graph's storage to the Builder that built it, for
// reuse by its next Build. The caller asserts that nothing reachable
// retains the graph: its views, sets, and tables are invalidated, and
// any later query on it will panic or read another graph's data. Graphs
// built by New do not recycle; Release on them is a no-op.
//
// Under a metered builder whose meter refuses retention (the governor's
// soft ceiling is crossed), Release frees the storage back to the GC
// instead of parking it as the spare — recycling is the first thing
// memory pressure turns off.
func (g *Graph) Release() {
	if g.owner == nil {
		return
	}
	o := g.owner
	if o.meter != nil && !o.meter.Retain() {
		o.account(-g.store.bytes())
		g.store = storage{}
		g.knownCrash, g.hiddenCount, g.hc, g.fails, g.minVal, g.cr = nil, nil, nil, nil, nil, nil
		g.owner = nil
		return
	}
	o.spare = g.store
	o.hasSpare = true
	o.spareG = g
	o.lastPat = g.Adv.Pattern
	g.store = storage{}
	g.knownCrash, g.hiddenCount, g.hc, g.fails, g.minVal, g.cr = nil, nil, nil, nil, nil, nil
	g.owner = nil
}

// crasher pairs a faulty process with its crash-round delivery set.
type crasher struct {
	proc int
	del  *bitset.Set
}

// buildScratch is the per-build working memory, reused across builds by
// Builders and pooled for New. Everything here is dead once build
// returns; nothing in a Graph aliases it.
type buildScratch struct {
	cr    []int         // crash round per process (hoisted map lookups)
	delOf []*bitset.Set // crash-round delivery set per faulty process
	base  []int         // arena offset of each node's layer block
	dead  []bitset.Set  // dead[ρ] = {j : crashRound(j) < ρ}, the hoisted "silent senders"
	deadW []uint64      // slab behind dead
	crash [][]crasher   // crash[ρ] = processes crashing in round ρ
	bkt   [][]int       // bkt[ρ] = {j : knownCrash(j) == ρ} while filling hidden tables

	// touched-views table (CSR): touchNodes[touchOff[p]:touchOff[p+1]]
	// lists, in increasing node order, every node whose layer-0 view
	// contains process p — exactly the nodes whose value row depends on
	// p's input. Pattern-derived (layer-0 membership never depends on
	// inputs), so it is precomputed once per full build and shares the
	// scratch's scPat/scHorizon/scN validity; patchValues walks one row
	// of it instead of every node. Increasing node order guarantees a
	// frozen node's predecessor — same layer-0 block, hence same
	// membership — is patched before the frozen node copies its row.
	touchOff   []int
	touchNodes []int

	// word-width frontier sets, re-wrapped over the slabs below per build
	seen, assigned, u, newly, gset bitset.Set
	assignedW, uW, newlyW, gsetW   []uint64
}

var scratchPool = sync.Pool{New: func() any { return &buildScratch{} }}

func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func resizeWords(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// prepare hoists everything build derives from the failure pattern alone:
// crash rounds, per-round crasher lists with their delivery sets, and the
// cumulative dead-before-ρ bitsets that computeKnownCrash previously
// re-derived by scanning all n processes per seen node.
func (sc *buildScratch) prepare(pat *model.FailurePattern, n, w, h int) {
	sc.cr = resizeInts(sc.cr, n)
	for i := 0; i < n; i++ {
		sc.cr[i] = model.NoCrash
	}
	if cap(sc.delOf) < n {
		sc.delOf = make([]*bitset.Set, n)
	}
	sc.delOf = sc.delOf[:n]
	for i := range sc.delOf {
		sc.delOf[i] = nil
	}
	if cap(sc.crash) < h+1 {
		sc.crash = make([][]crasher, h+1)
	}
	sc.crash = sc.crash[:h+1]
	for i := range sc.crash {
		sc.crash[i] = sc.crash[i][:0]
	}
	sc.deadW = resizeWords(sc.deadW, (h+1)*w)
	if cap(sc.dead) < h+1 {
		sc.dead = make([]bitset.Set, h+1)
	}
	sc.dead = sc.dead[:h+1]
	for rho := 0; rho <= h; rho++ {
		sc.dead[rho] = bitset.Wrap(sc.deadW[rho*w : (rho+1)*w])
	}
	for p, c := range pat.Crashes {
		sc.cr[p] = c.Round
		sc.delOf[p] = c.Delivered
		if c.Round <= h {
			sc.crash[c.Round] = append(sc.crash[c.Round], crasher{proc: p, del: c.Delivered})
		}
		for rho := c.Round + 1; rho <= h; rho++ {
			sc.deadW[rho*w+p>>6] |= 1 << uint(p&63)
		}
	}

	sc.base = resizeInts(sc.base, (h+1)*n)
	if cap(sc.bkt) < h+1 {
		sc.bkt = make([][]int, h+1)
	}
	sc.bkt = sc.bkt[:h+1]
	sc.assignedW = resizeWords(sc.assignedW, w)
	sc.uW = resizeWords(sc.uW, w)
	sc.newlyW = resizeWords(sc.newlyW, w)
	sc.gsetW = resizeWords(sc.gsetW, w)
	sc.assigned = bitset.Wrap(sc.assignedW)
	sc.u = bitset.Wrap(sc.uW)
	sc.newly = bitset.Wrap(sc.newlyW)
	sc.gset = bitset.Wrap(sc.gsetW)
}

// ensure sizes the storage slabs, reusing released capacity when it fits.
// Only the arena needs zeroing: every other slab is fully overwritten by
// build, and the stale hiddenCount entries at layers l > m are unreachable
// through the bounds-checked accessors. When the owning builder carries
// a meter, the capacity delta this call creates is accounted — ensure is
// the arena allocation choke point the governor watches.
func (st *storage) ensure(arenaLen, sets, views, ints int, owner *Builder) {
	var pre int64
	metered := owner != nil && owner.meter != nil
	if metered {
		pre = st.bytes()
	}
	st.arena = resizeWords(st.arena, arenaLen)
	if cap(st.sets) < sets {
		st.sets = make([]bitset.Set, sets)
	}
	st.sets = st.sets[:sets]
	if cap(st.ptrs) < sets {
		st.ptrs = make([]*bitset.Set, sets)
	}
	st.ptrs = st.ptrs[:sets]
	if cap(st.views) < views {
		st.views = make([]View, views)
	}
	st.views = st.views[:views]
	if cap(st.ints) < ints {
		st.ints = make([]int, ints)
	}
	st.ints = st.ints[:ints]
	if metered {
		owner.account(st.bytes() - pre)
	}
}

// build is the shared core behind New and Builder.Build. It lays the
// whole graph into flat storage: views first (word-parallel unions over
// contiguous layer blocks), then knownCrash via the hoisted dead/crasher
// sets, then the hidden tables as union popcounts, then value sets and
// minima. Frozen nodes copy their predecessor's rows instead of
// recomputing them.
func build(adv *model.Adversary, horizon int, sc *buildScratch, owner *Builder) *Graph {
	n := adv.N()
	w := (n + 63) >> 6
	h := horizon
	maxV := -1
	for _, v := range adv.Inputs {
		if v > maxV {
			maxV = v
		}
	}
	wv := 1
	if maxV >= 0 {
		wv = (maxV >> 6) + 1
	}

	sc.prepare(adv.Pattern, n, w, h)
	if owner != nil {
		owner.scPat, owner.scHorizon, owner.scN = adv.Pattern, h, n
	}

	// Count layer sets: every process has one layer at time 0; an active
	// node at time m ≥ 1 owns m+1 fresh layers, a frozen node shares its
	// predecessor's block.
	totalSets := n
	for m := 1; m <= h; m++ {
		for i := 0; i < n; i++ {
			if sc.cr[i] > m {
				totalSets += m + 1
			}
		}
	}
	valsOff := totalSets * w
	arenaLen := valsOff + (h+1)*n*wv
	nodes := (h + 1) * n
	kcLen := nodes * n
	hidLen := nodes * (h + 1)
	intsLen := kcLen + hidLen + 3*nodes + n

	var st storage
	if owner != nil && owner.hasSpare {
		st = owner.spare
		owner.spare, owner.hasSpare = storage{}, false
		owner.spareG, owner.lastPat = nil, nil
	}
	st.ensure(arenaLen, totalSets, nodes, intsLen, owner)

	g := &Graph{
		Adv: adv, Horizon: h,
		n: n, w: w, wv: wv,
		store: st, owner: owner,
		valsOff: valsOff,
	}
	ints := g.store.ints
	g.knownCrash = ints[:kcLen]
	g.hiddenCount = ints[kcLen : kcLen+hidLen]
	g.hc = ints[kcLen+hidLen : kcLen+hidLen+nodes]
	g.fails = ints[kcLen+hidLen+nodes : kcLen+hidLen+2*nodes]
	g.minVal = ints[kcLen+hidLen+2*nodes : kcLen+hidLen+3*nodes]
	g.cr = ints[kcLen+hidLen+3*nodes : kcLen+hidLen+3*nodes+n]
	copy(g.cr, sc.cr)
	arena := g.store.arena

	// ---- views ----
	cursor, setIdx := 0, 0
	newLayerBlock := func(count int) []*bitset.Set {
		first := setIdx
		for l := 0; l < count; l++ {
			g.store.sets[setIdx] = bitset.Wrap(arena[cursor : cursor+w])
			g.store.ptrs[setIdx] = &g.store.sets[setIdx]
			cursor += w
			setIdx++
		}
		return g.store.ptrs[first:setIdx:setIdx]
	}
	for i := 0; i < n; i++ {
		sc.base[i] = cursor
		layers := newLayerBlock(1)
		arena[sc.base[i]+i>>6] |= 1 << uint(i&63)
		g.store.views[i] = View{Proc: i, Time: 0, Layers: layers}
	}
	for m := 1; m <= h; m++ {
		for i := 0; i < n; i++ {
			node := m*n + i
			if sc.cr[i] <= m { // frozen: no round-m receive
				sc.base[node] = sc.base[node-n]
				g.store.views[node] = View{Proc: i, Time: m, Layers: g.store.views[node-n].Layers}
				continue
			}
			nb := cursor
			sc.base[node] = nb
			layers := newLayerBlock(m + 1)
			for j := 0; j < n; j++ {
				// Delivered(j, i, m) unrolled over the hoisted crash
				// rounds: alive senders (and i itself) always deliver,
				// round-m crashers per their delivery set.
				if sc.cr[j] < m || (sc.cr[j] == m && !sc.delOf[j].Contains(i)) {
					continue
				}
				prev := node - n - i + j // (m-1)*n + j
				pl := len(g.store.views[prev].Layers)
				src := arena[sc.base[prev] : sc.base[prev]+pl*w]
				dst := arena[nb : nb+pl*w]
				for x, sw := range src {
					dst[x] |= sw
				}
			}
			arena[nb+m*w+i>>6] |= 1 << uint(i&63)
			g.store.views[node] = View{Proc: i, Time: m, Layers: layers}
		}
	}

	// ---- knownCrash + failures known ----
	for m := 0; m <= h; m++ {
		for i := 0; i < n; i++ {
			node := m*n + i
			row := g.knownCrash[node*n : node*n+n]
			if m > 0 && sc.cr[i] <= m {
				copy(row, g.knownCrash[(node-n)*n:(node-n)*n+n])
				g.fails[node] = g.fails[node-n]
				continue
			}
			for j := range row {
				row[j] = NoKnownCrash
			}
			sc.assigned.CopyFrom(nil)
			nb := sc.base[node]
			for rho := 1; rho <= m; rho++ {
				seenW := arena[nb+rho*w : nb+(rho+1)*w]
				empty := true
				for _, sw := range seenW {
					if sw != 0 {
						empty = false
						break
					}
				}
				if empty {
					continue
				}
				sc.seen = bitset.Wrap(seenW)
				// U(ρ) = every process provably crashed by some seen
				// ⟨h,ρ⟩: all senders silent since before ρ, plus each
				// round-ρ crasher whose delivery set misses a seen node.
				sc.u.CopyFrom(&sc.dead[rho])
				for _, c := range sc.crash[rho] {
					if bitset.AndNotCount(&sc.seen, c.del) > 0 {
						sc.u.Add(c.proc)
					}
				}
				// Ascending ρ ⇒ first assignment is the minimum.
				sc.newly.CopyFrom(&sc.u).SubtractWith(&sc.assigned)
				for wi, word := range sc.newly.Words() {
					for word != 0 {
						b := bits.TrailingZeros64(word)
						row[wi*64+b] = rho
						word &^= 1 << uint(b)
					}
				}
				sc.assigned.UnionWith(&sc.u)
			}
			g.fails[node] = sc.assigned.Count()
		}
	}

	// ---- hidden tables: count = n − |seen(ℓ) ∪ {j : knownCrash ≤ ℓ}| ----
	hStride := h + 1
	for m := 0; m <= h; m++ {
		for i := 0; i < n; i++ {
			node := m*n + i
			row := g.knownCrash[node*n : node*n+n]
			for l := 0; l <= m; l++ {
				sc.bkt[l] = sc.bkt[l][:0]
			}
			for j := 0; j < n; j++ {
				if r := row[j]; r <= m {
					sc.bkt[r] = append(sc.bkt[r], j)
				}
			}
			sc.gset.CopyFrom(nil)
			L := len(g.store.views[node].Layers)
			nb := sc.base[node]
			hrow := g.hiddenCount[node*hStride : node*hStride+m+1]
			minC := n
			for l := 0; l <= m; l++ {
				for _, j := range sc.bkt[l] {
					sc.gset.Add(j)
				}
				var cnt int
				if l < L {
					sc.seen = bitset.Wrap(arena[nb+l*w : nb+(l+1)*w])
					cnt = n - bitset.OrCount(&sc.seen, &sc.gset)
				} else {
					cnt = n - sc.gset.Count()
				}
				hrow[l] = cnt
				if cnt < minC {
					minC = cnt
				}
			}
			g.hc[node] = minC
		}
	}

	if owner != nil {
		sc.buildTouch(arena, n, w, nodes)
	}
	fillValues(g, sc)
	return g
}

// buildTouch precomputes the per-pattern touched-views table: for each
// process p, the nodes whose layer-0 view contains p, in increasing node
// order. Two passes over the layer-0 words (count, then fill) lay the
// lists out as CSR in two reused int slabs; the end-cursor trick turns
// the fill cursors back into offsets with one shift.
func (sc *buildScratch) buildTouch(arena []uint64, n, w, nodes int) {
	sc.touchOff = resizeInts(sc.touchOff, n+1)
	for p := 0; p <= n; p++ {
		sc.touchOff[p] = 0
	}
	for node := 0; node < nodes; node++ {
		layer0 := arena[sc.base[node] : sc.base[node]+w]
		for wi, word := range layer0 {
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &^= 1 << uint(b)
				sc.touchOff[wi*64+b+1]++
			}
		}
	}
	for p := 0; p < n; p++ {
		sc.touchOff[p+1] += sc.touchOff[p]
	}
	sc.touchNodes = resizeInts(sc.touchNodes, sc.touchOff[n])
	for node := 0; node < nodes; node++ {
		layer0 := arena[sc.base[node] : sc.base[node]+w]
		for wi, word := range layer0 {
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &^= 1 << uint(b)
				p := wi*64 + b
				sc.touchNodes[sc.touchOff[p]] = node
				sc.touchOff[p]++
			}
		}
	}
	copy(sc.touchOff[1:], sc.touchOff[:n])
	sc.touchOff[0] = 0
}

// patchValues rewrites the value rows of exactly the nodes whose layer-0
// view contains changed — the only rows that can depend on its input —
// leaving every other row as the previous adversary left it. Each
// touched active node zeroes and recomputes its row as fillValues would;
// touched frozen nodes copy their predecessor's row, already patched
// because the touched-views list is in increasing node order.
func patchValues(g *Graph, sc *buildScratch, changed int) {
	adv := g.Adv
	n, w, wv, valsOff := g.n, g.w, g.wv, g.valsOff
	arena := g.store.arena
	for _, node := range sc.touchNodes[sc.touchOff[changed]:sc.touchOff[changed+1]] {
		m, i := node/n, node%n
		vrow := arena[valsOff+node*wv : valsOff+(node+1)*wv]
		if m > 0 && sc.cr[i] <= m {
			copy(vrow, arena[valsOff+(node-n)*wv:valsOff+(node-n+1)*wv])
			g.minVal[node] = g.minVal[node-n]
			continue
		}
		for x := range vrow {
			vrow[x] = 0
		}
		minV := model.Value(NoKnownCrash)
		layer0 := arena[sc.base[node] : sc.base[node]+w]
		for wi, word := range layer0 {
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &^= 1 << uint(b)
				v := adv.Inputs[wi*64+b]
				if v < 0 {
					continue
				}
				vrow[v>>6] |= 1 << uint(v&63)
				if v < minV {
					minV = v
				}
			}
		}
		g.minVal[node] = minV
	}
}

// fillValues computes the input-dependent tables — per-node value sets
// and minima — into g's arena and minVal slab, both already zeroed. It
// is the build step revive repeats for a new input vector over a reused
// pattern, reading the crash rounds and layer-0 offsets the pattern's
// full build left in sc.
func fillValues(g *Graph, sc *buildScratch) {
	adv := g.Adv
	n, h, w, wv, valsOff := g.n, g.Horizon, g.w, g.wv, g.valsOff
	arena := g.store.arena
	for m := 0; m <= h; m++ {
		for i := 0; i < n; i++ {
			node := m*n + i
			vrow := arena[valsOff+node*wv : valsOff+(node+1)*wv]
			if m > 0 && sc.cr[i] <= m {
				copy(vrow, arena[valsOff+(node-n)*wv:valsOff+(node-n+1)*wv])
				g.minVal[node] = g.minVal[node-n]
				continue
			}
			minV := model.Value(NoKnownCrash)
			layer0 := arena[sc.base[node] : sc.base[node]+w]
			for wi, word := range layer0 {
				for word != 0 {
					b := bits.TrailingZeros64(word)
					word &^= 1 << uint(b)
					v := adv.Inputs[wi*64+b]
					if v < 0 {
						continue
					}
					vrow[v>>6] |= 1 << uint(v&63)
					if v < minV {
						minV = v
					}
				}
			}
			g.minVal[node] = minV
		}
	}
}
