package knowledge

import (
	"math/rand"
	"testing"

	"setconsensus/internal/bitset"
	"setconsensus/internal/model"
)

// randomAdversary draws an adversary over n processes: up to t crashers
// with uniform crash rounds in 1..maxRound and uniform delivery subsets,
// inputs uniform in 0..maxVal.
func randomAdversary(rng *rand.Rand, n, t, maxRound, maxVal int) *model.Adversary {
	inputs := make([]model.Value, n)
	for i := range inputs {
		inputs[i] = rng.Intn(maxVal + 1)
	}
	pat := model.NewFailurePattern(n)
	crashers := rng.Perm(n)[:rng.Intn(t+1)]
	for _, p := range crashers {
		del := bitset.New(n)
		for q := 0; q < n; q++ {
			if rng.Intn(2) == 0 {
				del.Add(q)
			}
		}
		pat.Crashes[p] = model.Crash{Round: 1 + rng.Intn(maxRound), Delivered: del}
	}
	return model.NewAdversary(inputs, pat)
}

// checkEquivalent asserts every query of the arena graph agrees with the
// retained naive reference, node for node.
func checkEquivalent(t *testing.T, g *Graph, ref *referenceGraph) {
	t.Helper()
	n, h := g.Adv.N(), g.Horizon
	for m := 0; m <= h; m++ {
		for i := 0; i < n; i++ {
			gv, rv := g.View(i, m), ref.view(i, m)
			if gv.Proc != rv.Proc || gv.Time != rv.Time || len(gv.Layers) != len(rv.Layers) {
				t.Fatalf("⟨%d,%d⟩: view shape (proc=%d time=%d layers=%d) vs reference (proc=%d time=%d layers=%d)",
					i, m, gv.Proc, gv.Time, len(gv.Layers), rv.Proc, rv.Time, len(rv.Layers))
			}
			for l := range gv.Layers {
				if !gv.Layers[l].Equal(rv.Layers[l]) {
					t.Fatalf("⟨%d,%d⟩ layer %d: %s vs reference %s", i, m, l, gv.Layers[l], rv.Layers[l])
				}
			}
			if got, want := g.HiddenCapacity(i, m), ref.hiddenCapacity(i, m); got != want {
				t.Fatalf("HiddenCapacity⟨%d,%d⟩ = %d, reference %d", i, m, got, want)
			}
			if got, want := g.FailuresKnown(i, m), ref.failuresKnown(i, m); got != want {
				t.Fatalf("FailuresKnown⟨%d,%d⟩ = %d, reference %d", i, m, got, want)
			}
			if got, want := g.Min(i, m), ref.min(i, m); got != want {
				t.Fatalf("Min⟨%d,%d⟩ = %d, reference %d", i, m, got, want)
			}
			if got, want := g.Vals(i, m), ref.vals(i, m); !got.Equal(want) {
				t.Fatalf("Vals⟨%d,%d⟩ = %s, reference %s", i, m, got, want)
			}
			for j := 0; j < n; j++ {
				if got, want := g.KnownCrashRound(i, m, j), ref.knownCrashRound(i, m, j); got != want {
					t.Fatalf("KnownCrashRound⟨%d,%d⟩(%d) = %d, reference %d", i, m, j, got, want)
				}
				if got, want := g.LastSeen(i, m, j), ref.lastSeen(i, m, j); got != want {
					t.Fatalf("LastSeen⟨%d,%d⟩(%d) = %d, reference %d", i, m, j, got, want)
				}
				for l := 0; l <= m; l++ {
					if got, want := g.Seen(i, m, j, l), ref.seen(i, m, j, l); got != want {
						t.Fatalf("Seen⟨%d,%d⟩(%d,%d) = %v, reference %v", i, m, j, l, got, want)
					}
					if got, want := g.Hidden(i, m, j, l), ref.hidden(i, m, j, l); got != want {
						t.Fatalf("Hidden⟨%d,%d⟩(%d,%d) = %v, reference %v", i, m, j, l, got, want)
					}
				}
			}
			for l := 0; l <= m; l++ {
				want := 0
				for j := 0; j < n; j++ {
					if ref.hidden(i, m, j, l) {
						want++
					}
				}
				if got := g.HiddenCount(i, m, l); got != want {
					t.Fatalf("HiddenCount⟨%d,%d⟩(%d) = %d, reference %d", i, m, l, got, want)
				}
			}
			for v := 0; v <= 3; v++ {
				for tt := 0; tt <= n; tt++ {
					if got, want := g.Persists(i, m, v, tt), ref.persists(i, m, v, tt); got != want {
						t.Fatalf("Persists⟨%d,%d⟩(v=%d,t=%d) = %v, reference %v", i, m, v, tt, got, want)
					}
				}
			}
		}
	}
}

// TestEquivalenceRandomized is the gate on the arena rewrite: seeded
// random adversaries, every query cross-checked against the naive
// reference implementation.
func TestEquivalenceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(0xC0FFEE))
	trials := 120
	if testing.Short() {
		trials = 30
	}
	for trial := 0; trial < trials; trial++ {
		n := 2 + rng.Intn(7) // 2..8 processes
		tCr := rng.Intn(n)   // up to n−1 crashers
		maxRound := 1 + rng.Intn(4)
		maxVal := 1 + rng.Intn(3)
		horizon := rng.Intn(6)
		adv := randomAdversary(rng, n, tCr, maxRound, maxVal)
		g := New(adv, horizon)
		ref := newReference(adv, horizon)
		checkEquivalent(t, g, ref)
	}
}

// TestEquivalenceBuilderReuse rebuilds through one Builder with Release
// between adversaries, so every trial after the first runs on recycled
// storage — stale-state bugs in the arena reuse path surface here.
func TestEquivalenceBuilderReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	b := NewBuilder()
	var prev *Graph
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(6)
		adv := randomAdversary(rng, n, rng.Intn(n), 1+rng.Intn(3), 2)
		horizon := rng.Intn(5)
		if prev != nil {
			prev.Release()
		}
		g := b.Build(adv, horizon)
		checkEquivalent(t, g, newReference(adv, horizon))
		prev = g
	}
}

// TestFingerprintEquivalenceClasses asserts the binary fingerprint
// induces exactly the partition of nodes the reference string encoding
// does — within one adversary and across two adversaries of the same n,
// the regime the view-interning searches rely on.
func TestFingerprintEquivalenceClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(5)
		horizon := 1 + rng.Intn(4)
		a1 := randomAdversary(rng, n, rng.Intn(n), 1+rng.Intn(3), 2)
		a2 := randomAdversary(rng, n, rng.Intn(n), 1+rng.Intn(3), 2)
		type node struct{ ref, bin string }
		var nodes []node
		for _, adv := range []*model.Adversary{a1, a2} {
			g := New(adv, horizon)
			ref := newReference(adv, horizon)
			for m := 0; m <= horizon; m++ {
				for i := 0; i < n; i++ {
					nodes = append(nodes, node{ref.fingerprint(i, m), g.Fingerprint(i, m)})
				}
			}
		}
		for x := range nodes {
			for y := x + 1; y < len(nodes); y++ {
				refEq := nodes[x].ref == nodes[y].ref
				binEq := nodes[x].bin == nodes[y].bin
				if refEq != binEq {
					t.Fatalf("fingerprint partition diverged: reference equal=%v binary equal=%v\nref x: %q\nref y: %q",
						refEq, binEq, nodes[x].ref, nodes[y].ref)
				}
			}
		}
	}
}

// TestNewConcurrent exercises the pooled build scratch from many
// goroutines; run under -race this guards the sync.Pool usage.
func TestNewConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	advs := make([]*model.Adversary, 16)
	refs := make([]*referenceGraph, len(advs))
	for i := range advs {
		advs[i] = randomAdversary(rng, 5, 3, 3, 2)
		refs[i] = newReference(advs[i], 4)
	}
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			defer func() { done <- nil }()
			for rep := 0; rep < 20; rep++ {
				idx := (w + rep) % len(advs)
				g := New(advs[idx], 4)
				for i := 0; i < 5; i++ {
					if g.HiddenCapacity(i, 4) != refs[idx].hiddenCapacity(i, 4) {
						t.Errorf("worker %d: HC mismatch on adversary %d", w, idx)
						return
					}
					_ = g.Fingerprint(i, 4)
				}
			}
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
}
