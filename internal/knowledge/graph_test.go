package knowledge

import (
	"math/rand"
	"testing"
	"testing/quick"

	"setconsensus/internal/model"
)

// chainExists is an independent reference implementation of "seen":
// a Lamport message chain ⟨j,ℓ⟩ → ⟨i,m⟩ through delivered messages.
func chainExists(adv *model.Adversary, j model.Proc, l int, i model.Proc, m int) bool {
	if l > m {
		return false
	}
	if l == m {
		return i == j
	}
	// One step: ⟨j,ℓ⟩ → ⟨h,ℓ+1⟩ for every h that received j's round-ℓ+1
	// message and was alive to receive it (active at ℓ+1), plus j itself
	// if alive.
	for h := 0; h < adv.N(); h++ {
		if !adv.Pattern.Delivered(j, h, l+1) {
			continue
		}
		if !adv.Pattern.Active(h, l+1) {
			continue // dead receivers never read their inbox
		}
		if chainExists(adv, h, l+1, i, m) {
			return true
		}
	}
	return false
}

func TestFailureFreeViews(t *testing.T) {
	adv := model.NewBuilder(4, 0).Inputs(3, 1, 2, 0).MustBuild()
	g := New(adv, 2)
	// At time 0: each process sees only itself.
	for i := 0; i < 4; i++ {
		if got := g.SeenSet(i, 0, 0).Count(); got != 1 {
			t.Errorf("⟨%d,0⟩ sees %d layer-0 nodes, want 1", i, got)
		}
		if g.Min(i, 0) != adv.Inputs[i] {
			t.Errorf("Min⟨%d,0⟩ = %d", i, g.Min(i, 0))
		}
	}
	// After one failure-free round: everyone sees all initial nodes.
	for i := 0; i < 4; i++ {
		if got := g.SeenSet(i, 1, 0).Count(); got != 4 {
			t.Errorf("⟨%d,1⟩ sees %d layer-0 nodes, want 4", i, got)
		}
		if g.Min(i, 1) != 0 {
			t.Errorf("Min⟨%d,1⟩ = %d, want 0", i, g.Min(i, 1))
		}
		if hc := g.HiddenCapacity(i, 1); hc != 0 {
			t.Errorf("HC⟨%d,1⟩ = %d, want 0 (layer 0 fully seen)", i, hc)
		}
	}
	// At time 0 everything else is hidden: HC = n−1.
	if hc := g.HiddenCapacity(0, 0); hc != 3 {
		t.Errorf("HC⟨0,0⟩ = %d, want 3", hc)
	}
}

func TestHiddenPathFig1(t *testing.T) {
	// Fig. 1: chain 1→2→3 passes value 0; observer 0 has a hidden path at
	// time 2.
	adv, err := model.HiddenPath(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := New(adv, 3)

	if g.Vals(0, 2).Contains(0) {
		t.Error("observer must not know ∃0 at time 2")
	}
	if !g.Hidden(0, 2, 1, 0) {
		t.Error("⟨1,0⟩ (chain head) must be hidden from ⟨0,2⟩")
	}
	if !g.Hidden(0, 2, 2, 1) {
		t.Error("⟨2,1⟩ must be hidden from ⟨0,2⟩")
	}
	if !g.Hidden(0, 2, 3, 2) {
		t.Error("⟨3,2⟩ must be hidden from ⟨0,2⟩ (current layer)")
	}
	if hc := g.HiddenCapacity(0, 2); hc < 1 {
		t.Errorf("hidden path ⟹ HC⟨0,2⟩ ≥ 1, got %d", hc)
	}
	// The chain end saw the hidden value.
	if !g.Vals(3, 2).Contains(0) {
		t.Error("process 3 must have seen 0 at time 2")
	}
	if g.Min(3, 2) != 0 {
		t.Errorf("Min⟨3,2⟩ = %d, want 0", g.Min(3, 2))
	}
	// One round later the path is exhausted: 3 is correct, so it floods 0.
	if !g.Vals(0, 3).Contains(0) {
		t.Error("observer must learn ∃0 at time 3")
	}
}

func TestHiddenChainsFig2(t *testing.T) {
	// Fig. 2: c = 3 chains of depth m = 2 over n = 10: HC⟨0,2⟩ = 3.
	adv, err := model.HiddenChains(10, 3, 2, []model.Value{0, 1, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	g := New(adv, 2)
	if hc := g.HiddenCapacity(0, 2); hc != 3 {
		t.Fatalf("HC⟨0,2⟩ = %d, want 3", hc)
	}
	// The designated witnesses are hidden at each layer.
	for b := 0; b < 3; b++ {
		for l := 0; l <= 2; l++ {
			w := model.ChainWitness(b, l, 2)
			if !g.Hidden(0, 2, w, l) {
				t.Errorf("witness ⟨%d,%d⟩ (chain %d) not hidden from ⟨0,2⟩", w, l, b)
			}
		}
	}
	// Each chain tail knows exactly its chain value among the low values.
	for b := 0; b < 3; b++ {
		tail := model.ChainWitness(b, 2, 2)
		vals := g.Vals(tail, 2)
		if !vals.Contains(b) {
			t.Errorf("chain %d tail missing value %d", b, b)
		}
		for other := 0; other < 3; other++ {
			if other != b && vals.Contains(other) {
				t.Errorf("chain %d tail leaked value %d", b, other)
			}
		}
	}
	// Witness sets per layer have exactly HC elements.
	w := g.HiddenCapacityWitnesses(0, 2)
	for l, ws := range w {
		if len(ws) != 3 {
			t.Errorf("layer %d witnesses = %v", l, ws)
		}
	}
}

func TestGuaranteedCrashedSilent(t *testing.T) {
	// Process 1 crashes silently in round 2 of a 3-process system.
	adv := model.NewBuilder(3, 0).CrashSilent(1, 2).MustBuild()
	g := New(adv, 3)

	// At time 1 nobody can prove anything (round 1 was clean).
	if g.KnownCrashRound(0, 1, 1) != NoKnownCrash {
		t.Error("no proof should exist at time 1")
	}
	// At time 2, everyone missed 1's round-2 message: crashed in round ≤ 2.
	if got := g.KnownCrashRound(0, 2, 1); got != 2 {
		t.Errorf("KnownCrashRound = %d, want 2", got)
	}
	if !g.GuaranteedCrashed(0, 2, 1, 2) {
		t.Error("⟨1,2⟩ must be guaranteed crashed at ⟨0,2⟩")
	}
	if g.GuaranteedCrashed(0, 2, 1, 1) {
		t.Error("⟨1,1⟩ must NOT be guaranteed crashed (1 completed round 1)")
	}
	// ⟨1,1⟩ is hidden from ⟨0,2⟩ forever: unseen, never provably crashed
	// before time 1.
	if !g.Hidden(0, 2, 1, 1) || !g.Hidden(0, 3, 1, 1) {
		t.Error("⟨1,1⟩ must stay hidden")
	}
	if g.Hidden(0, 2, 1, 2) {
		t.Error("⟨1,2⟩ is guaranteed crashed, not hidden")
	}
	if g.FailuresKnown(0, 2) != 1 {
		t.Errorf("FailuresKnown = %d", g.FailuresKnown(0, 2))
	}
}

func TestGuaranteedCrashedViaGossip(t *testing.T) {
	// 1 crashes in round 1 delivering only to 2. Process 0 observes the
	// miss directly; process 3 hears about it from 0 or 2's round-2 state.
	adv := model.NewBuilder(4, 0).CrashSendingTo(1, 1, 2).MustBuild()
	g := New(adv, 2)
	if got := g.KnownCrashRound(0, 1, 1); got != 1 {
		t.Errorf("direct observer: round = %d, want 1", got)
	}
	// Receiver 2 saw 1's message, so at time 1 it has no proof.
	if g.KnownCrashRound(2, 1, 1) != NoKnownCrash {
		t.Error("receiver 2 should have no proof at time 1")
	}
	// After gossip at time 2, 2 knows (it sees ⟨0,1⟩ which missed 1).
	if got := g.KnownCrashRound(2, 2, 1); got != 1 {
		t.Errorf("gossiped proof: round = %d, want 1", got)
	}
	// ⟨1,0⟩ seen by 2 (via the delivered round-1 message) and later by all.
	if !g.Seen(2, 1, 1, 0) {
		t.Error("⟨1,0⟩ must be seen by ⟨2,1⟩")
	}
	if !g.Seen(0, 2, 1, 0) {
		t.Error("⟨1,0⟩ must reach ⟨0,2⟩ via 2's relay")
	}
}

func TestFrozenViews(t *testing.T) {
	adv := model.NewBuilder(3, 0).Inputs(0, 1, 2).CrashSilent(1, 1).MustBuild()
	g := New(adv, 3)
	v := g.View(1, 3)
	if len(v.Layers) != 1 {
		t.Fatalf("crashed-in-round-1 view has %d layers, want 1 (frozen at time 0)", len(v.Layers))
	}
	if g.Min(1, 3) != 1 {
		t.Errorf("frozen Min = %d", g.Min(1, 3))
	}
	// Nobody ever sees 1's initial node.
	if g.Seen(0, 3, 1, 0) {
		t.Error("silent round-1 crasher's initial node must be unseen")
	}
}

func TestLastSeen(t *testing.T) {
	// 1 crashes round 2 delivering only to 2: everyone saw ⟨1,0⟩ (round 1
	// was complete); only 2 (and, after relay, everyone) sees ⟨1,1⟩.
	adv := model.NewBuilder(4, 0).CrashSendingTo(1, 2, 2).MustBuild()
	g := New(adv, 3)
	if got := g.LastSeen(0, 1, 1); got != 0 {
		t.Errorf("LastSeen⟨0,1⟩(1) = %d, want 0", got)
	}
	if got := g.LastSeen(2, 2, 1); got != 1 {
		t.Errorf("LastSeen⟨2,2⟩(1) = %d, want 1", got)
	}
	if got := g.LastSeen(0, 3, 1); got != 1 {
		t.Errorf("after relay LastSeen⟨0,3⟩(1) = %d, want 1", got)
	}
	if got := g.LastSeen(0, 0, 1); got != -1 {
		t.Errorf("LastSeen⟨0,0⟩(1) = %d, want −1", got)
	}
}

func TestPersists(t *testing.T) {
	// t = 2; 4 processes, no crashes.
	adv := model.NewBuilder(4, 1).Input(0, 0).MustBuild()
	g := New(adv, 3)
	// At time 0 nothing persists (d=0 < t and no previous knowledge).
	if g.Persists(0, 0, 0, 2) {
		t.Error("nothing persists at time 0 with t>0")
	}
	// But with t = 0 everything known persists vacuously.
	if !g.Persists(0, 0, 0, 0) {
		t.Error("t=0 ⟹ persistence vacuous")
	}
	// At time 1, process 0 has seen 0 since time 0: first disjunct.
	if !g.Persists(0, 1, 0, 2) {
		t.Error("own old value must persist")
	}
	// Process 1 first sees 0 at time 1; it saw ≥ t−d = 2 time-0 nodes that
	// had seen… only ⟨0,0⟩ had seen value 0, so count 1 < 2: not persistent.
	if g.Persists(1, 1, 0, 2) {
		t.Error("freshly learned value must not persist at t=2 with one holder")
	}
	// At time 2 everyone saw 0 by time 1: persists.
	if !g.Persists(1, 2, 0, 2) {
		t.Error("value must persist at time 2")
	}
	// Second disjunct: with t = 1, process 1 at time 1 sees ≥ t−d = 1
	// time-0 node that saw 0 (namely ⟨0,0⟩).
	if !g.Persists(1, 1, 0, 1) {
		t.Error("t−d=1 holder suffices")
	}
}

func TestPersistsVacuousOnKnownFailures(t *testing.T) {
	// t = 1 and the single allowed crash is already known: vacuous.
	adv := model.NewBuilder(3, 1).Input(0, 0).CrashSilent(2, 1).MustBuild()
	g := New(adv, 2)
	if g.FailuresKnown(1, 1) != 1 {
		t.Fatalf("FailuresKnown = %d", g.FailuresKnown(1, 1))
	}
	if !g.Persists(1, 1, 0, 1) {
		t.Error("d ≥ t ⟹ everything persists")
	}
}

func TestFingerprintEquality(t *testing.T) {
	// Two adversaries that differ only in a region invisible to ⟨0,1⟩:
	// process 3's input, which 0 sees at time 1… so change something it
	// cannot see: whether 2 crashed in round 2.
	a1 := model.NewBuilder(4, 1).Input(0, 0).MustBuild()
	a2 := model.NewBuilder(4, 1).Input(0, 0).CrashSilent(2, 2).MustBuild()
	g1, g2 := New(a1, 2), New(a2, 2)
	if g1.Fingerprint(0, 1) != g2.Fingerprint(0, 1) {
		t.Error("⟨0,1⟩ cannot distinguish a round-2 crash it has not observed")
	}
	if g1.Fingerprint(0, 2) == g2.Fingerprint(0, 2) {
		t.Error("⟨0,2⟩ observes 2's silence and must distinguish")
	}
	// Different inputs at a seen node must distinguish.
	a3 := model.NewBuilder(4, 1).Input(0, 1).MustBuild()
	if New(a3, 1).Fingerprint(0, 1) == g1.Fingerprint(0, 1) {
		t.Error("different seen inputs must change the fingerprint")
	}
}

func TestSeenMatchesChainReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		adv := model.Random(rng, model.RandomParams{N: 5, T: 3, MaxValue: 2, MaxRound: 3})
		g := New(adv, 4)
		for i := 0; i < 5; i++ {
			for m := 0; m <= 4; m++ {
				if !adv.Pattern.Active(i, m) {
					continue
				}
				for j := 0; j < 5; j++ {
					for l := 0; l <= m; l++ {
						want := chainExists(adv, j, l, i, m)
						if got := g.Seen(i, m, j, l); got != want {
							t.Fatalf("adv=%s: Seen(⟨%d,%d⟩ sees ⟨%d,%d⟩) = %v, reference %v",
								adv, i, m, j, l, got, want)
						}
					}
				}
			}
		}
	}
}

// Property (Remark 1): hidden capacity is weakly decreasing in m for
// processes that stay active.
func TestQuickHCMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		adv := model.Random(rng, model.RandomParams{N: 6, T: 4, MaxValue: 2, MaxRound: 3})
		g := New(adv, 4)
		for i := 0; i < 6; i++ {
			prev := -1
			for m := 0; m <= 4; m++ {
				if !adv.Pattern.Active(i, m) {
					break
				}
				hc := g.HiddenCapacity(i, m)
				if prev >= 0 && hc > prev {
					return false
				}
				prev = hc
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: knowledge of crashes is sound — a process is never "proven"
// crashed in a round earlier than its true crash round, and correct
// processes are never accused.
func TestQuickKnownCrashSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		adv := model.Random(rng, model.RandomParams{N: 6, T: 5, MaxValue: 1, MaxRound: 3})
		g := New(adv, 4)
		for i := 0; i < 6; i++ {
			for m := 0; m <= 4; m++ {
				if !adv.Pattern.Active(i, m) {
					continue
				}
				for j := 0; j < 6; j++ {
					kr := g.KnownCrashRound(i, m, j)
					if kr == NoKnownCrash {
						continue
					}
					if adv.Pattern.Correct(j) {
						return false // accused a correct process
					}
					if adv.Pattern.CrashRound(j) > kr {
						return false // proof earlier than reality
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Vals grows monotonically over time for active processes, and
// always contains the process's own input.
func TestQuickValsMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		adv := model.Random(rng, model.RandomParams{N: 5, T: 3, MaxValue: 3, MaxRound: 2})
		g := New(adv, 3)
		for i := 0; i < 5; i++ {
			for m := 0; m <= 3; m++ {
				if !adv.Pattern.Active(i, m) {
					break
				}
				vals := g.Vals(i, m)
				if !vals.Contains(adv.Inputs[i]) {
					return false
				}
				if m > 0 && !g.Vals(i, m-1).SubsetOf(vals) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGraphConstruction(b *testing.B) {
	adv, err := model.Collapse(model.CollapseParams{K: 3, R: 5, ExtraCorrect: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		New(adv, 8)
	}
}

func BenchmarkHiddenCapacity(b *testing.B) {
	adv, err := model.Collapse(model.CollapseParams{K: 3, R: 5, ExtraCorrect: 4})
	if err != nil {
		b.Fatal(err)
	}
	g := New(adv, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.HiddenCapacity(0, 8)
	}
}
