package knowledge

import (
	"testing"

	"setconsensus/internal/model"
)

func TestSeenSetDefensiveCopy(t *testing.T) {
	adv := model.NewBuilder(3, 0).MustBuild()
	g := New(adv, 1)
	s := g.SeenSet(0, 1, 0)
	s.Remove(1)
	if !g.Seen(0, 1, 1, 0) {
		t.Error("mutating a SeenSet copy must not alter the graph")
	}
	if got := g.SeenSet(0, 1, 5).Count(); got != 0 {
		t.Errorf("out-of-range layer must be empty, got %d", got)
	}
}

func TestHorizonPanics(t *testing.T) {
	adv := model.NewBuilder(3, 0).MustBuild()
	g := New(adv, 1)
	for name, fn := range map[string]func(){
		"View":           func() { g.View(0, 2) },
		"HiddenCapacity": func() { g.HiddenCapacity(0, -1) },
		"KnownCrash":     func() { g.KnownCrashRound(0, 9, 1) },
		"HiddenCount":    func() { g.HiddenCount(0, 3, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s beyond horizon must panic (caller bug)", name)
				}
			}()
			fn()
		}()
	}
}

func TestWitnessesMatchHiddenSets(t *testing.T) {
	adv, err := model.HiddenChains(10, 2, 2, []model.Value{0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := New(adv, 2)
	ws := g.HiddenCapacityWitnesses(0, 2)
	hc := g.HiddenCapacity(0, 2)
	if len(ws) != 3 {
		t.Fatalf("layers = %d", len(ws))
	}
	for l, layer := range ws {
		if len(layer) != hc {
			t.Errorf("layer %d has %d witnesses, want %d", l, len(layer), hc)
		}
		for _, w := range layer {
			if !g.Hidden(0, 2, w, l) {
				t.Errorf("witness %d not hidden at layer %d", w, l)
			}
		}
	}
}

func TestFingerprintDistinguishesProcAndTime(t *testing.T) {
	adv := model.NewBuilder(3, 0).MustBuild()
	g := New(adv, 2)
	if g.Fingerprint(0, 1) == g.Fingerprint(1, 1) {
		t.Error("fingerprints of different processes must differ")
	}
	if g.Fingerprint(0, 1) == g.Fingerprint(0, 2) {
		t.Error("fingerprints of different times must differ")
	}
}
