package knowledge

import (
	"setconsensus/internal/model"

	"math/rand"
	"testing"
)

// The benchmarks share one mid-size randomized adversary: 10 processes,
// up to 6 crashers over 4 rounds — large enough that the word-parallel
// kernels and the scalar reference visibly diverge.

func BenchmarkBuildArena(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	adv := randomAdversary(rng, 10, 6, 4, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		New(adv, 6)
	}
}

// BenchmarkBuildArenaReused measures the same-pattern revive path: the
// two adversaries share a failure pattern but differ in two inputs, so
// every Build refills the spare's value layer in place (more than one
// diff defeats the patch kernel, an identical vector would hit the
// zero-diff skip, and either would understate a real rebuild).
func BenchmarkBuildArenaReused(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	adv := randomAdversary(rng, 10, 6, 4, 3)
	other := flip(flip(adv, 0, adv.Inputs[0]^1), 1, adv.Inputs[1]^1)
	builder := NewBuilder()
	builder.Build(adv, 6).Release()
	pair := [2]*model.Adversary{other, adv}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		builder.Build(pair[i&1], 6).Release()
	}
	if _, revived, _ := builder.TakeCounts(); revived != b.N {
		b.Fatalf("revived %d of %d builds — revive path not taken", revived, b.N)
	}
}

// BenchmarkBuildReference is the retained naive implementation on the
// same adversary: the denominator of the arena rewrite's win.
func BenchmarkBuildReference(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	adv := randomAdversary(rng, 10, 6, 4, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		newReference(adv, 6)
	}
}

func BenchmarkPersists(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	adv := randomAdversary(rng, 10, 6, 4, 3)
	g := New(adv, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for p := 0; p < 10; p++ {
			g.Persists(p, 6, 1, 6)
		}
	}
}

// BenchmarkDeltaPatch is the patch kernel against the full rebuild it
// replaces (BenchmarkBuildArenaReused, same adversary size): the builder
// holds a spare of the same failure pattern and every iteration flips a
// single input, so Build takes the one-diff patch path — only the value
// and knowledge words of the views that ever see the changed process are
// rewritten — instead of refilling the whole arena.
func BenchmarkDeltaPatch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	adv := randomAdversary(rng, 10, 6, 4, 3)
	flipped := flip(adv, 0, adv.Inputs[0]^1)
	builder := NewBuilder()
	builder.Build(adv, 6).Release()
	pair := [2]*model.Adversary{flipped, adv}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		builder.Build(pair[i&1], 6).Release()
	}
	built, _, patched := builder.TakeCounts()
	if built != 1 || patched != b.N {
		b.Fatalf("built=%d patched=%d over %d iterations — patch path not taken", built, patched, b.N)
	}
}
