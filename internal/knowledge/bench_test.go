package knowledge

import (
	"math/rand"
	"testing"
)

// The benchmarks share one mid-size randomized adversary: 10 processes,
// up to 6 crashers over 4 rounds — large enough that the word-parallel
// kernels and the scalar reference visibly diverge.

func BenchmarkBuildArena(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	adv := randomAdversary(rng, 10, 6, 4, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		New(adv, 6)
	}
}

func BenchmarkBuildArenaReused(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	adv := randomAdversary(rng, 10, 6, 4, 3)
	builder := NewBuilder()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		builder.Build(adv, 6).Release()
	}
}

// BenchmarkBuildReference is the retained naive implementation on the
// same adversary: the denominator of the arena rewrite's win.
func BenchmarkBuildReference(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	adv := randomAdversary(rng, 10, 6, 4, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		newReference(adv, 6)
	}
}

func BenchmarkPersists(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	adv := randomAdversary(rng, 10, 6, 4, 3)
	g := New(adv, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for p := 0; p < 10; p++ {
			g.Persists(p, 6, 1, 6)
		}
	}
}
