package knowledge

import (
	"math/rand"
	"testing"

	"setconsensus/internal/model"
)

// TestBuilderReviveEquivalence pins the revive fast path: rebuilding
// through one Builder over the same failure pattern with varying input
// vectors — the exact accesses of an aggregating sweep walking one
// canonical pattern block — must produce graphs indistinguishable from
// the naive reference, query for query. A stale value table or a
// pattern-derived table corrupted by the value-only rebuild diverges
// here.
func TestBuilderReviveEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := NewBuilder()
	for trial := 0; trial < 12; trial++ {
		base := randomAdversary(rng, 5, 3, 3, 3)
		horizon := 4
		// Walk several input vectors over the shared pattern, releasing
		// between builds as the sweep path does. The first build is full,
		// the rest revive.
		for vec := 0; vec < 5; vec++ {
			inputs := make([]model.Value, base.N())
			for i := range inputs {
				inputs[i] = rng.Intn(4)
			}
			adv := &model.Adversary{Inputs: inputs, Pattern: base.Pattern}
			g := b.Build(adv, horizon)
			checkEquivalent(t, g, newReference(adv, horizon))
			g.Release()
		}
	}
}

// TestBuilderReviveRejectsMismatch asserts the revive path refuses
// anything but the same pattern at the same horizon: a different
// pattern, a different horizon, or wider inputs must fall back to a
// full (correct) build rather than reuse stale tables.
func TestBuilderReviveRejectsMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	b := NewBuilder()
	a1 := randomAdversary(rng, 4, 2, 2, 2)
	b.Build(a1, 3).Release()

	// Different horizon over the same pattern.
	g := b.Build(a1, 4)
	checkEquivalent(t, g, newReference(a1, 4))
	g.Release()

	// Different pattern entirely.
	a2 := randomAdversary(rng, 4, 2, 2, 2)
	for a2.Pattern.Fingerprint() == a1.Pattern.Fingerprint() {
		a2 = randomAdversary(rng, 4, 2, 2, 2)
	}
	g = b.Build(a2, 4)
	checkEquivalent(t, g, newReference(a2, 4))
	g.Release()

	// Same pattern, inputs too wide for the reused value layout (value
	// ≥ 64 needs a second value word).
	wide := &model.Adversary{Inputs: []model.Value{70, 0, 1, 2}, Pattern: a2.Pattern}
	g = b.Build(wide, 4)
	checkEquivalent(t, g, newReference(wide, 4))
	g.Release()
}

// TestBuilderReviveSurvivesInterleavedBuilds pins the stale-scratch
// guard: multiple graphs from one Builder may be live at once, and a
// full build over adversary B between A's Release and A's same-pattern
// rebuild overwrites the build scratch that fillValues would read. The
// revive path must notice the scratch no longer describes A's pattern
// and fall back to a full (correct) build — before the guard, this
// sequence silently produced wrong value tables.
func TestBuilderReviveSurvivesInterleavedBuilds(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	b := NewBuilder()
	advA := randomAdversary(rng, 5, 3, 3, 3)
	// A deliberately different shape (fewer processes, other pattern) so
	// a stale-scratch read would be loudly wrong, not coincidentally right.
	advB := randomAdversary(rng, 3, 1, 2, 2)

	gA := b.Build(advA, 4)
	gB := b.Build(advB, 2) // overwrites the scratch while gA is live
	gA.Release()
	advA2 := &model.Adversary{Inputs: []model.Value{3, 1, 0, 2, 1}, Pattern: advA.Pattern}
	gA2 := b.Build(advA2, 4) // same pattern as the spare, but scratch is B's
	checkEquivalent(t, gA2, newReference(advA2, 4))
	gA2.Release()
	gB.Release()

	// Same-pattern different-horizon interleaving: the spare graph keeps
	// horizon 4 but the scratch now describes horizon 2 of the same
	// pattern; reviving the horizon-4 spare off the horizon-2 scratch
	// would read misindexed layer-0 offsets.
	gH4 := b.Build(advA, 4)
	gH2 := b.Build(&model.Adversary{Inputs: advA.Inputs, Pattern: advA.Pattern}, 2)
	gH4.Release()
	gH4b := b.Build(advA2, 4)
	checkEquivalent(t, gH4b, newReference(advA2, 4))
	gH4b.Release()
	gH2.Release()
}

// TestBuilderReviveAllocationFree asserts the steady state of a pattern
// block costs no allocations at all: after the full build, each
// release-and-rebuild over the same pattern reuses graph, storage, and
// scratch verbatim.
func TestBuilderReviveAllocationFree(t *testing.T) {
	adv, err := model.Collapse(model.CollapseParams{K: 2, R: 3, ExtraCorrect: 2})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder()
	b.Build(adv, 5).Release()
	avg := testing.AllocsPerRun(50, func() {
		b.Build(adv, 5).Release()
	})
	if avg != 0 {
		t.Fatalf("revive build allocated %.1f objects per run, want 0", avg)
	}
}
