package knowledge

import (
	"math/rand"
	"testing"

	"setconsensus/internal/model"
)

// flip returns a copy of adv with process p's input replaced by v —
// adversaries are immutable, so single-input walks build fresh ones.
func flip(adv *model.Adversary, p int, v model.Value) *model.Adversary {
	inputs := make([]model.Value, adv.N())
	copy(inputs, adv.Inputs)
	inputs[p] = v
	return &model.Adversary{Inputs: inputs, Pattern: adv.Pattern}
}

// TestBuilderPatchEquivalence pins the delta fast path node for node:
// rebuilding through one Builder over the same failure pattern with a
// single input flipped per step — the exact accesses of a sweep walking
// one pattern block in Gray-code delta order — must produce graphs
// indistinguishable from the naive reference, query for query. A patch
// kernel that misses a touched view, or touches one it should not,
// diverges here.
func TestBuilderPatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	b := NewBuilder()
	for trial := 0; trial < 12; trial++ {
		adv := randomAdversary(rng, 5, 3, 3, 3)
		horizon := 4
		g := b.Build(adv, horizon)
		checkEquivalent(t, g, newReference(adv, horizon))
		g.Release()
		for step := 0; step < 8; step++ {
			adv = flip(adv, rng.Intn(adv.N()), rng.Intn(4))
			g = b.Build(adv, horizon)
			checkEquivalent(t, g, newReference(adv, horizon))
			g.Release()
		}
	}
	built, revived, patched := b.TakeCounts()
	// Each trial full-builds once; every flip is a 0- or 1-diff rebuild.
	if built != 12 || revived != 0 || patched != 12*8 {
		t.Fatalf("counts built=%d revived=%d patched=%d, want 12/0/96", built, revived, patched)
	}
}

// TestBuilderPatchExplicit covers the exported Patch entry point: it
// must succeed exactly when the spare matches and the inputs differ
// nowhere but the declared process, and never fall back to a full build.
func TestBuilderPatchExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	b := NewBuilder()
	adv := randomAdversary(rng, 4, 2, 2, 3)

	// No spare parked at all.
	if g := b.Patch(adv, 3, 0); g != nil {
		t.Fatal("Patch without a spare must return nil")
	}
	b.Build(adv, 3).Release()

	// Identical inputs: trivially patchable for any declared process.
	g := b.Patch(adv, 3, 2)
	if g == nil {
		t.Fatal("Patch with identical inputs must succeed")
	}
	checkEquivalent(t, g, newReference(adv, 3))
	g.Release()

	// Single flip at the declared process.
	next := flip(adv, 1, adv.Inputs[1]^1)
	g = b.Patch(next, 3, 1)
	if g == nil {
		t.Fatal("Patch with a single declared flip must succeed")
	}
	checkEquivalent(t, g, newReference(next, 3))
	g.Release()

	// Flip at a process other than the declared one.
	wrong := flip(next, 2, next.Inputs[2]^1)
	if g := b.Patch(wrong, 3, 0); g != nil {
		t.Fatal("Patch must reject a flip at an undeclared process")
	}

	// Two flips at once.
	two := flip(flip(next, 0, next.Inputs[0]^1), 2, next.Inputs[2]^1)
	if g := b.Patch(two, 3, 0); g != nil {
		t.Fatal("Patch must reject a multi-input diff")
	}

	// Different horizon and different pattern.
	if g := b.Patch(next, 2, 1); g != nil {
		t.Fatal("Patch must reject a horizon mismatch")
	}
	other := randomAdversary(rng, 4, 2, 2, 3)
	for other.Pattern.Fingerprint() == adv.Pattern.Fingerprint() {
		other = randomAdversary(rng, 4, 2, 2, 3)
	}
	if g := b.Patch(other, 3, 0); g != nil {
		t.Fatal("Patch must reject a pattern mismatch")
	}

	// Inputs too wide for the reused value layout.
	widened := flip(next, 1, 70)
	if g := b.Patch(widened, 3, 1); g != nil {
		t.Fatal("Patch must reject inputs wider than the spare's value words")
	}

	// The rejections above must have left the spare parked and correct.
	g = b.Patch(next, 3, 1)
	if g == nil {
		t.Fatal("spare must survive rejected Patch calls")
	}
	checkEquivalent(t, g, newReference(next, 3))
	g.Release()
}

// TestBuilderPatchSurvivesInterleavedBuilds mirrors the revive
// stale-scratch guard for the patch path: a full build over another
// adversary between Release and a same-pattern single-flip rebuild
// overwrites the scratch (and its touched-views table); both Build's
// auto-detection and the explicit Patch must notice.
func TestBuilderPatchSurvivesInterleavedBuilds(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	b := NewBuilder()
	advA := randomAdversary(rng, 5, 3, 3, 3)
	advB := randomAdversary(rng, 3, 1, 2, 2)

	gA := b.Build(advA, 4)
	gB := b.Build(advB, 2) // overwrites the scratch while gA is live
	gA.Release()
	advA2 := flip(advA, 0, advA.Inputs[0]^1)
	if g := b.Patch(advA2, 4, 0); g != nil {
		t.Fatal("Patch must reject a stale scratch")
	}
	gA2 := b.Build(advA2, 4) // full build: scratch describes B's pattern
	checkEquivalent(t, gA2, newReference(advA2, 4))
	gA2.Release()
	gB.Release()
}

// TestBuilderPatchDegenerateEdges covers the corners of the kernel:
// horizon 0 (only layer-0 nodes — every node with the flipped process in
// view is itself layer 0) and a flip on a crashed process whose frozen
// successors must copy patched predecessor rows in order.
func TestBuilderPatchDegenerateEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	b := NewBuilder()

	// Horizon 0.
	adv := randomAdversary(rng, 4, 2, 3, 3)
	b.Build(adv, 0).Release()
	for p := 0; p < adv.N(); p++ {
		adv = flip(adv, p, rng.Intn(4))
		g := b.Build(adv, 0)
		checkEquivalent(t, g, newReference(adv, 0))
		g.Release()
	}
	_, _, patched := b.TakeCounts()
	if patched == 0 {
		t.Fatal("horizon-0 flips never took the patch path")
	}

	// Flips on every process of a pattern where every possible process
	// crashes — maximizing frozen nodes — at a horizon past every crash.
	adv = randomAdversary(rng, 5, 4, 2, 2)
	b.Build(adv, 5).Release()
	for p := 0; p < adv.N(); p++ {
		adv = flip(adv, p, adv.Inputs[p]^1)
		g := b.Build(adv, 5)
		checkEquivalent(t, g, newReference(adv, 5))
		g.Release()
	}
}

// TestBuilderPatchAllocationFree asserts the steady state of a delta
// walk costs no allocations: after the full build, alternating between
// two single-flip neighbours patches in place with zero garbage.
func TestBuilderPatchAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	b := NewBuilder()
	a := randomAdversary(rng, 5, 3, 3, 3)
	bAdv := flip(a, 2, a.Inputs[2]^1)
	b.Build(a, 4).Release()
	advs := [2]*model.Adversary{bAdv, a}
	i := 0
	avg := testing.AllocsPerRun(50, func() {
		b.Build(advs[i&1], 4).Release()
		i++
	})
	if avg != 0 {
		t.Fatalf("patch build allocated %.1f objects per run, want 0", avg)
	}
}
