// Package knowledge implements the epistemic substrate of the paper: the
// communication graph Gα of an adversary, the full-information views
// Gα(i,m), and the derived classifications — seen, guaranteed crashed,
// hidden — together with Vals/Min/low-high, the hidden capacity HC⟨i,m⟩
// of Definition 2, known-failure counts, and the persistence predicate of
// Definition 3.
//
// All protocols in this repository are full-information protocols
// (following Coan's reduction, §2.1), so a protocol is exactly a decision
// rule over the queries exposed here.
package knowledge

import (
	"fmt"
	"strings"

	"setconsensus/internal/bitset"
	"setconsensus/internal/model"
)

// NoKnownCrash is the sentinel "i has no proof j ever crashed".
const NoKnownCrash = model.NoCrash

// View is the full-information view Gα(i,m): for each layer ℓ ≤ m, the set
// of processes j whose node ⟨j,ℓ⟩ is seen by ⟨i,m⟩ (i.e. a Lamport message
// chain ⟨j,ℓ⟩ → ⟨i,m⟩ exists). Views of crashed processes are frozen at
// their last active time: their Layers slice simply stays short.
type View struct {
	Proc model.Proc
	Time int
	// Layers[ℓ] = processes whose layer-ℓ node is seen. For a process
	// crashed in round c, len(Layers) == c (layers 0..c−1 only).
	Layers []*bitset.Set
}

// SeenAt reports whether ⟨j,ℓ⟩ is seen in this view.
func (v *View) SeenAt(j model.Proc, l int) bool {
	return l >= 0 && l < len(v.Layers) && v.Layers[l].Contains(j)
}

// Graph holds the communication graph of one adversary together with every
// process's view at every time up to Horizon, plus the per-node
// guaranteed-crash knowledge. It is immutable after construction.
type Graph struct {
	Adv     *model.Adversary
	Horizon int

	views [][]*View // views[m][i]
	// knownCrash[m][i][j] = earliest round ρ such that ⟨i,m⟩ has proof
	// that j crashed in a round ≤ ρ, or NoKnownCrash.
	knownCrash [][][]int
	// hiddenCount[m][i][l] = #{j : ⟨j,l⟩ hidden from ⟨i,m⟩}, l ≤ m.
	hiddenCount [][][]int
	// hc[m][i] = HC⟨i,m⟩ (Definition 2).
	hc [][]int
}

// New computes the communication graph and all views of adv up to time
// horizon (inclusive).
func New(adv *model.Adversary, horizon int) *Graph {
	n := adv.N()
	g := &Graph{Adv: adv, Horizon: horizon}
	g.views = make([][]*View, horizon+1)
	g.knownCrash = make([][][]int, horizon+1)

	g.views[0] = make([]*View, n)
	for i := 0; i < n; i++ {
		g.views[0][i] = &View{Proc: i, Time: 0, Layers: []*bitset.Set{bitset.New(n).Add(i)}}
	}
	for m := 1; m <= horizon; m++ {
		g.views[m] = make([]*View, n)
		for i := 0; i < n; i++ {
			if !adv.Pattern.Active(i, m) {
				// Frozen: the process performed no round-m receive.
				g.views[m][i] = &View{Proc: i, Time: m, Layers: g.views[m-1][i].Layers}
				continue
			}
			layers := make([]*bitset.Set, m+1)
			for l := range layers {
				layers[l] = bitset.New(n)
			}
			for j := 0; j < n; j++ {
				if !adv.Pattern.Delivered(j, i, m) {
					continue
				}
				prev := g.views[m-1][j]
				for l, set := range prev.Layers {
					layers[l].UnionWith(set)
				}
			}
			layers[m].Add(i)
			g.views[m][i] = &View{Proc: i, Time: m, Layers: layers}
		}
	}
	for m := 0; m <= horizon; m++ {
		g.knownCrash[m] = make([][]int, n)
		for i := 0; i < n; i++ {
			g.knownCrash[m][i] = g.computeKnownCrash(i, m)
		}
	}
	g.hiddenCount = make([][][]int, horizon+1)
	g.hc = make([][]int, horizon+1)
	for m := 0; m <= horizon; m++ {
		g.hiddenCount[m] = make([][]int, n)
		g.hc[m] = make([]int, n)
		for i := 0; i < n; i++ {
			counts := make([]int, m+1)
			minC := n
			for l := 0; l <= m; l++ {
				c := 0
				for j := 0; j < n; j++ {
					if g.hiddenAt(i, m, j, l) {
						c++
					}
				}
				counts[l] = c
				if c < minC {
					minC = c
				}
			}
			g.hiddenCount[m][i] = counts
			g.hc[m][i] = minC
		}
	}
	return g
}

// hiddenAt is the raw classification used to build the tables: neither
// seen nor guaranteed crashed.
func (g *Graph) hiddenAt(i model.Proc, m int, j model.Proc, l int) bool {
	return !g.views[m][i].SeenAt(j, l) && g.knownCrash[m][i][j] > l
}

// computeKnownCrash derives, from ⟨i,m⟩'s view, for each process j the
// earliest round ρ for which the view contains proof that j crashed in a
// round ≤ ρ: some seen node ⟨h,ρ⟩ (h receiving at time ρ) did not receive
// j's round-ρ message.
func (g *Graph) computeKnownCrash(i model.Proc, m int) []int {
	n := g.Adv.N()
	out := make([]int, n)
	for j := range out {
		out[j] = NoKnownCrash
	}
	v := g.views[m][i]
	for rho := 1; rho < len(v.Layers); rho++ {
		v.Layers[rho].ForEach(func(h int) bool {
			// ⟨h,ρ⟩ seen implies h was receiving at time ρ (it either
			// relayed afterwards, requiring crashRound(h) > ρ, or h == i
			// active at m ≥ ρ).
			for j := 0; j < n; j++ {
				if j == h {
					continue
				}
				if !g.Adv.Pattern.Delivered(j, h, rho) && rho < out[j] {
					out[j] = rho
				}
			}
			return true
		})
	}
	return out
}

// View returns the view of process i at time m. It panics if m exceeds the
// horizon: that is a programming error in the caller, not a run condition.
func (g *Graph) View(i model.Proc, m int) *View {
	if m < 0 || m > g.Horizon {
		panic(fmt.Sprintf("knowledge: view ⟨%d,%d⟩ outside horizon %d", i, m, g.Horizon))
	}
	return g.views[m][i]
}

// Seen reports whether ⟨j,ℓ⟩ is seen by ⟨i,m⟩.
func (g *Graph) Seen(i model.Proc, m int, j model.Proc, l int) bool {
	return g.View(i, m).SeenAt(j, l)
}

// SeenSet returns the set of processes whose layer-ℓ node is seen by
// ⟨i,m⟩ (a defensive copy).
func (g *Graph) SeenSet(i model.Proc, m, l int) *bitset.Set {
	v := g.View(i, m)
	if l < 0 || l >= len(v.Layers) {
		return bitset.New(g.Adv.N())
	}
	return v.Layers[l].Clone()
}

// KnownCrashRound returns the earliest round ρ such that ⟨i,m⟩ can prove j
// crashed in a round ≤ ρ, or NoKnownCrash.
func (g *Graph) KnownCrashRound(i model.Proc, m int, j model.Proc) int {
	if m < 0 || m > g.Horizon {
		panic(fmt.Sprintf("knowledge: ⟨%d,%d⟩ outside horizon %d", i, m, g.Horizon))
	}
	return g.knownCrash[m][i][j]
}

// GuaranteedCrashed reports whether ⟨j,ℓ⟩ is guaranteed crashed at ⟨i,m⟩:
// i has proof at time m that j crashed before time ℓ (in a round ≤ ℓ).
func (g *Graph) GuaranteedCrashed(i model.Proc, m int, j model.Proc, l int) bool {
	return g.KnownCrashRound(i, m, j) <= l
}

// Hidden reports whether ⟨j,ℓ⟩ is hidden from ⟨i,m⟩: neither seen nor
// guaranteed crashed.
func (g *Graph) Hidden(i model.Proc, m int, j model.Proc, l int) bool {
	return !g.Seen(i, m, j, l) && !g.GuaranteedCrashed(i, m, j, l)
}

// HiddenSet returns the processes j with ⟨j,ℓ⟩ hidden from ⟨i,m⟩.
func (g *Graph) HiddenSet(i model.Proc, m, l int) *bitset.Set {
	n := g.Adv.N()
	out := bitset.New(n)
	for j := 0; j < n; j++ {
		if g.Hidden(i, m, j, l) {
			out.Add(j)
		}
	}
	return out
}

// HiddenCount returns |HiddenSet(i,m,ℓ)| from the precomputed table.
func (g *Graph) HiddenCount(i model.Proc, m, l int) int {
	if m < 0 || m > g.Horizon {
		panic(fmt.Sprintf("knowledge: ⟨%d,%d⟩ outside horizon %d", i, m, g.Horizon))
	}
	return g.hiddenCount[m][i][l]
}

// HiddenCapacity returns HC⟨i,m⟩ of Definition 2: the maximum c such that
// every layer ℓ ≤ m holds at least c nodes hidden from ⟨i,m⟩ — that is,
// the minimum over layers of the per-layer hidden count.
func (g *Graph) HiddenCapacity(i model.Proc, m int) int {
	if m < 0 || m > g.Horizon {
		panic(fmt.Sprintf("knowledge: ⟨%d,%d⟩ outside horizon %d", i, m, g.Horizon))
	}
	return g.hc[m][i]
}

// HiddenCapacityWitnesses returns, for each layer ℓ ≤ m, a set of exactly
// HC⟨i,m⟩ hidden witnesses at that layer (the i_b^ℓ of Definition 2),
// chosen as the lowest-numbered hidden processes.
func (g *Graph) HiddenCapacityWitnesses(i model.Proc, m int) [][]model.Proc {
	hc := g.HiddenCapacity(i, m)
	out := make([][]model.Proc, m+1)
	for l := 0; l <= m; l++ {
		hs := g.HiddenSet(i, m, l).Elems()
		out[l] = hs[:hc]
	}
	return out
}

// FailuresKnown returns the number of distinct processes that ⟨i,m⟩ can
// prove to have crashed (the d of Definition 3).
func (g *Graph) FailuresKnown(i model.Proc, m int) int {
	d := 0
	for _, r := range g.knownCrash[m][i] {
		if r != NoKnownCrash {
			d++
		}
	}
	return d
}

// Vals returns the set of initial values v such that Ki∃v holds at ⟨i,m⟩:
// the values of the layer-0 nodes seen by ⟨i,m⟩ (Definition 5).
func (g *Graph) Vals(i model.Proc, m int) *bitset.Set {
	out := &bitset.Set{}
	g.View(i, m).Layers[0].ForEach(func(j int) bool {
		out.Add(g.Adv.Inputs[j])
		return true
	})
	return out
}

// Min returns Min⟨i,m⟩, the minimal value i has seen by time m. Every view
// contains at least the process's own initial node, so Min is total.
func (g *Graph) Min(i model.Proc, m int) model.Value {
	v, ok := g.Vals(i, m).Min()
	if !ok {
		panic(fmt.Sprintf("knowledge: empty Vals at ⟨%d,%d⟩", i, m))
	}
	return v
}

// Low reports whether i is low at time m for parameter k: Min⟨i,m⟩ < k.
func (g *Graph) Low(i model.Proc, m, k int) bool { return g.Min(i, m) < k }

// LastSeen returns the maximum ℓ such that ⟨j,ℓ⟩ is seen by ⟨i,m⟩, or −1
// if no node of j is seen at all.
func (g *Graph) LastSeen(i model.Proc, m int, j model.Proc) int {
	v := g.View(i, m)
	for l := len(v.Layers) - 1; l >= 0; l-- {
		if v.Layers[l].Contains(j) {
			return l
		}
	}
	return -1
}

// Persists implements Definition 3: whether i knows at time m that value v
// will persist, given the a-priori crash bound t. The second disjunct is
// vacuously true once i knows of at least t failures.
func (g *Graph) Persists(i model.Proc, m int, v model.Value, t int) bool {
	if m > 0 && g.Adv.Pattern.Active(i, m) && g.Vals(i, m-1).Contains(v) {
		return true
	}
	d := g.FailuresKnown(i, m)
	need := t - d
	if need <= 0 {
		return true
	}
	if m == 0 {
		return false
	}
	count := 0
	g.SeenSet(i, m, m-1).ForEach(func(j int) bool {
		if g.Vals(j, m-1).Contains(v) {
			count++
		}
		return count < need
	})
	return count >= need
}

// Fingerprint returns a canonical string encoding of the view Gα(i,m) —
// its node set, the in-neighbourhood of every non-initial node, and the
// initial values labelling layer 0. Two nodes across (possibly different)
// adversaries have equal local states in the full-information protocol iff
// their fingerprints are equal. (The in-neighbourhoods determine the edge
// set of the view: whenever ⟨h,ρ⟩ is in a view, all of h's round-ρ
// senders are too.)
func (g *Graph) Fingerprint(i model.Proc, m int) string {
	v := g.View(i, m)
	var b strings.Builder
	fmt.Fprintf(&b, "⟨%d,%d⟩|", i, m)
	v.Layers[0].ForEach(func(j int) bool {
		fmt.Fprintf(&b, "0:%d=%d;", j, g.Adv.Inputs[j])
		return true
	})
	for l := 1; l < len(v.Layers); l++ {
		v.Layers[l].ForEach(func(h int) bool {
			fmt.Fprintf(&b, "%d:%d<", l, h)
			for j := 0; j < g.Adv.N(); j++ {
				if g.Adv.Pattern.Delivered(j, h, l) {
					fmt.Fprintf(&b, "%d,", j)
				}
			}
			b.WriteByte(';')
			return true
		})
	}
	return b.String()
}
