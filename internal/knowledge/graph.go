// Package knowledge implements the epistemic substrate of the paper: the
// communication graph Gα of an adversary, the full-information views
// Gα(i,m), and the derived classifications — seen, guaranteed crashed,
// hidden — together with Vals/Min/low-high, the hidden capacity HC⟨i,m⟩
// of Definition 2, known-failure counts, and the persistence predicate of
// Definition 3.
//
// All protocols in this repository are full-information protocols
// (following Coan's reduction, §2.1), so a protocol is exactly a decision
// rule over the queries exposed here.
//
// # Layout
//
// A Graph is arena-backed: every layer bitset of every view and every
// per-node value set lives in one flat []uint64 slab, and the derived
// tables (knownCrash, hiddenCount, hc, failures known, minima) are flat
// []int slabs indexed by (m,i,·) stride arithmetic. Construction runs
// word-parallel — the per-round "dead before ρ" and per-crasher
// non-delivery sets are hoisted once per graph, and the hidden tables are
// union popcounts — so building a graph costs a handful of allocations
// regardless of n and horizon. The naive implementation it replaced is
// retained in reference.go and the two are cross-checked node-for-node
// over randomized adversaries in equiv_test.go.
package knowledge

import (
	"encoding/binary"
	"fmt"
	"sync"

	"setconsensus/internal/bitset"
	"setconsensus/internal/model"
)

// NoKnownCrash is the sentinel "i has no proof j ever crashed".
const NoKnownCrash = model.NoCrash

// View is the full-information view Gα(i,m): for each layer ℓ ≤ m, the set
// of processes j whose node ⟨j,ℓ⟩ is seen by ⟨i,m⟩ (i.e. a Lamport message
// chain ⟨j,ℓ⟩ → ⟨i,m⟩ exists). Views of crashed processes are frozen at
// their last active time: their Layers slice simply stays short.
type View struct {
	Proc model.Proc
	Time int
	// Layers[ℓ] = processes whose layer-ℓ node is seen. For a process
	// crashed in round c, len(Layers) == c (layers 0..c−1 only). The sets
	// alias the graph's arena and must not be mutated.
	Layers []*bitset.Set
}

// SeenAt reports whether ⟨j,ℓ⟩ is seen in this view.
func (v *View) SeenAt(j model.Proc, l int) bool {
	return l >= 0 && l < len(v.Layers) && v.Layers[l].Contains(j)
}

// storage is the recyclable backing memory of one Graph: the bitset
// arena, the set-header and view slabs, and one []int slab partitioned
// into the derived tables. Builder.Build reuses a released storage when
// its capacity fits.
type storage struct {
	arena []uint64
	sets  []bitset.Set
	ptrs  []*bitset.Set
	views []View
	ints  []int
	// senders is the lazily-built fingerprint sender-mask slab; it rides
	// along in storage so fingerprint-heavy loops (view interning)
	// recycle it with everything else.
	senders []uint64
}

// Graph holds the communication graph of one adversary together with every
// process's view at every time up to Horizon, plus the per-node
// guaranteed-crash knowledge. It is immutable after construction and safe
// for concurrent readers.
type Graph struct {
	Adv     *model.Adversary
	Horizon int

	n  int // processes
	w  int // uint64 words per process set
	wv int // uint64 words per value set

	store storage
	owner *Builder // set when built by a Builder; enables Release

	// valsOff is the arena offset of the value-set region: the value set
	// of node (m,i) occupies wv words at valsOff + node(m,i)*wv.
	valsOff int

	// Flat derived tables, all indexed through node(m,i) = m*n + i:
	knownCrash  []int         // [node*n + j] = earliest provable crash round of j, or NoKnownCrash
	hiddenCount []int         // [node*(Horizon+1) + l] = #hidden at layer l, l ≤ m
	hc          []int         // [node] = HC⟨i,m⟩ (Definition 2)
	fails       []int         // [node] = #processes provably crashed (d of Definition 3)
	minVal      []model.Value // [node] = Min⟨i,m⟩, NoKnownCrash when Vals is empty
	cr          []int         // [j] = crash round of j (model.NoCrash if correct), hoisted off the pattern map

	// sendersOnce guards the lazy build of store.senders —
	// senders[(ρ*n+h)*w : +w] = {j : Delivered(j,h,ρ)} — which only
	// Fingerprint needs (sweeps never pay for it).
	sendersOnce sync.Once
}

// node maps (i,m) to its flat table index, panicking on out-of-range
// coordinates: the old nested slices crashed on bad indices, and the
// stride arithmetic must not quietly alias another node's data instead.
// The panic body lives in badNode so node itself stays within the
// inlining budget — it runs on every graph query, and a call frame per
// bounds check is measurable across a sweep.
func (g *Graph) node(i model.Proc, m int) int {
	// Unsigned compares fold each "negative or too large" pair into one
	// branch, and the panic value renders itself lazily: both keep this
	// under the inlining budget, where a fmt.Sprintf call would not.
	if uint(i) >= uint(g.n) || uint(m) > uint(g.Horizon) {
		panic(&nodeError{i, m, g.n, g.Horizon})
	}
	return m*g.n + i
}

// nodeError is the panic value of an out-of-range node query; the
// message is built only when the panic is printed or inspected.
type nodeError struct{ i, m, n, horizon int }

func (e *nodeError) Error() string {
	return fmt.Sprintf("knowledge: node ⟨%d,%d⟩ outside %d processes × horizon %d", e.i, e.m, e.n, e.horizon)
}

// proc bounds-checks a process argument j the same way.
func (g *Graph) proc(j model.Proc) model.Proc {
	if uint(j) >= uint(g.n) {
		panic(&procError{j, g.n})
	}
	return j
}

// procError is the panic value of an out-of-range process argument.
type procError struct{ j, n int }

func (e *procError) Error() string {
	return fmt.Sprintf("knowledge: process %d outside 0..%d", e.j, e.n-1)
}

// New computes the communication graph and all views of adv up to time
// horizon (inclusive). The per-build scratch comes from a package-level
// pool; the graph's own storage is freshly allocated and never recycled,
// so graphs from New may be retained indefinitely (results and caches
// do). Loops that build and drop many graphs should use a Builder.
func New(adv *model.Adversary, horizon int) *Graph {
	sc := scratchPool.Get().(*buildScratch)
	g := build(adv, horizon, sc, nil)
	scratchPool.Put(sc)
	return g
}

// View returns the view of process i at time m. It panics if m exceeds the
// horizon: that is a programming error in the caller, not a run condition.
func (g *Graph) View(i model.Proc, m int) *View {
	return &g.store.views[g.node(i, m)]
}

// Seen reports whether ⟨j,ℓ⟩ is seen by ⟨i,m⟩.
func (g *Graph) Seen(i model.Proc, m int, j model.Proc, l int) bool {
	return g.View(i, m).SeenAt(j, l)
}

// SeenSet returns the set of processes whose layer-ℓ node is seen by
// ⟨i,m⟩ (a defensive copy). Hot paths iterate with ForEachSeen instead.
func (g *Graph) SeenSet(i model.Proc, m, l int) *bitset.Set {
	v := g.View(i, m)
	if l < 0 || l >= len(v.Layers) {
		return bitset.New(g.n)
	}
	return v.Layers[l].Clone()
}

// ForEachSeen calls fn for every process whose layer-ℓ node is seen by
// ⟨i,m⟩, in increasing order, stopping early if fn returns false. It is
// the allocation-free form of SeenSet(i, m, l).ForEach(fn).
func (g *Graph) ForEachSeen(i model.Proc, m, l int, fn func(j model.Proc) bool) {
	v := g.View(i, m)
	if l < 0 || l >= len(v.Layers) {
		return
	}
	v.Layers[l].ForEach(fn)
}

// KnownCrashRound returns the earliest round ρ such that ⟨i,m⟩ can prove j
// crashed in a round ≤ ρ, or NoKnownCrash.
func (g *Graph) KnownCrashRound(i model.Proc, m int, j model.Proc) int {
	return g.knownCrash[g.node(i, m)*g.n+g.proc(j)]
}

// GuaranteedCrashed reports whether ⟨j,ℓ⟩ is guaranteed crashed at ⟨i,m⟩:
// i has proof at time m that j crashed before time ℓ (in a round ≤ ℓ).
func (g *Graph) GuaranteedCrashed(i model.Proc, m int, j model.Proc, l int) bool {
	return g.KnownCrashRound(i, m, j) <= l
}

// Hidden reports whether ⟨j,ℓ⟩ is hidden from ⟨i,m⟩: neither seen nor
// guaranteed crashed.
func (g *Graph) Hidden(i model.Proc, m int, j model.Proc, l int) bool {
	return !g.Seen(i, m, j, l) && !g.GuaranteedCrashed(i, m, j, l)
}

// HiddenSet returns the processes j with ⟨j,ℓ⟩ hidden from ⟨i,m⟩.
func (g *Graph) HiddenSet(i model.Proc, m, l int) *bitset.Set {
	out := bitset.New(g.n)
	for j := 0; j < g.n; j++ {
		if g.Hidden(i, m, j, l) {
			out.Add(j)
		}
	}
	return out
}

// HiddenCount returns |HiddenSet(i,m,ℓ)| from the precomputed table.
func (g *Graph) HiddenCount(i model.Proc, m, l int) int {
	if l < 0 || l > m {
		panic(fmt.Sprintf("knowledge: hidden count of layer %d at ⟨%d,%d⟩", l, i, m))
	}
	return g.hiddenCount[g.node(i, m)*(g.Horizon+1)+l]
}

// HiddenCapacity returns HC⟨i,m⟩ of Definition 2: the maximum c such that
// every layer ℓ ≤ m holds at least c nodes hidden from ⟨i,m⟩ — that is,
// the minimum over layers of the per-layer hidden count.
func (g *Graph) HiddenCapacity(i model.Proc, m int) int {
	return g.hc[g.node(i, m)]
}

// HiddenCapacityWitnesses returns, for each layer ℓ ≤ m, a set of exactly
// HC⟨i,m⟩ hidden witnesses at that layer (the i_b^ℓ of Definition 2),
// chosen as the lowest-numbered hidden processes.
func (g *Graph) HiddenCapacityWitnesses(i model.Proc, m int) [][]model.Proc {
	hc := g.HiddenCapacity(i, m)
	out := make([][]model.Proc, m+1)
	for l := 0; l <= m; l++ {
		hs := g.HiddenSet(i, m, l).Elems()
		out[l] = hs[:hc]
	}
	return out
}

// FailuresKnown returns the number of distinct processes that ⟨i,m⟩ can
// prove to have crashed (the d of Definition 3), from the precomputed
// table.
func (g *Graph) FailuresKnown(i model.Proc, m int) int {
	return g.fails[g.node(i, m)]
}

// valsWords returns the arena-backed value-set words of node (i,m).
func (g *Graph) valsWords(i model.Proc, m int) []uint64 {
	off := g.valsOff + g.node(i, m)*g.wv
	return g.store.arena[off : off+g.wv]
}

// valsContains reports v ∈ Vals⟨i,m⟩ without allocating.
func (g *Graph) valsContains(i model.Proc, m int, v model.Value) bool {
	if v < 0 || v >= g.wv*64 {
		return false
	}
	return g.valsWords(i, m)[v>>6]&(1<<uint(v&63)) != 0
}

// Vals returns the set of initial values v such that Ki∃v holds at ⟨i,m⟩:
// the values of the layer-0 nodes seen by ⟨i,m⟩ (Definition 5). The set
// is an independent copy of the precomputed table.
func (g *Graph) Vals(i model.Proc, m int) *bitset.Set {
	s := bitset.Wrap(append([]uint64(nil), g.valsWords(i, m)...))
	return &s
}

// Min returns Min⟨i,m⟩, the minimal value i has seen by time m. Every view
// contains at least the process's own initial node, so Min is total.
func (g *Graph) Min(i model.Proc, m int) model.Value {
	v := g.minVal[g.node(i, m)]
	if v == NoKnownCrash {
		panic(fmt.Sprintf("knowledge: empty Vals at ⟨%d,%d⟩", i, m))
	}
	return v
}

// Low reports whether i is low at time m for parameter k: Min⟨i,m⟩ < k.
func (g *Graph) Low(i model.Proc, m, k int) bool { return g.Min(i, m) < k }

// LastSeen returns the maximum ℓ such that ⟨j,ℓ⟩ is seen by ⟨i,m⟩, or −1
// if no node of j is seen at all.
func (g *Graph) LastSeen(i model.Proc, m int, j model.Proc) int {
	v := g.View(i, m)
	for l := len(v.Layers) - 1; l >= 0; l-- {
		if v.Layers[l].Contains(j) {
			return l
		}
	}
	return -1
}

// CrashRound returns j's crash round under the graph's adversary, or
// model.NoCrash if j never crashes — the pattern map lookup hoisted into
// a flat table at build time, for decision rules running once per
// (node, sweep adversary).
func (g *Graph) CrashRound(j model.Proc) int { return g.cr[g.proc(j)] }

// Active reports whether i is still active (has not crashed) in round m
// under the graph's adversary — Pattern.Active off the hoisted table.
func (g *Graph) Active(i model.Proc, m int) bool { return g.cr[g.proc(i)] > m }

// Persists implements Definition 3: whether i knows at time m that value v
// will persist, given the a-priori crash bound t. The second disjunct is
// vacuously true once i knows of at least t failures. All queries run on
// the precomputed tables; nothing allocates.
func (g *Graph) Persists(i model.Proc, m int, v model.Value, t int) bool {
	if m > 0 && g.cr[i] > m && g.valsContains(i, m-1, v) {
		return true
	}
	need := t - g.FailuresKnown(i, m)
	if need <= 0 {
		return true
	}
	if m == 0 {
		return false
	}
	count := 0
	g.ForEachSeen(i, m, m-1, func(j model.Proc) bool {
		if g.valsContains(j, m-1, v) {
			count++
		}
		return count < need
	})
	return count >= need
}

// buildSenders fills the lazily-constructed per-(h,ρ) sender masks that
// Fingerprint encodes. Sweeps never call Fingerprint and never pay this;
// the slab reuses recycled storage capacity when a Builder provides it.
func (g *Graph) buildSenders() {
	pat := g.Adv.Pattern
	need := (g.Horizon + 1) * g.n * g.w
	if prev := cap(g.store.senders); prev < need {
		g.store.senders = make([]uint64, need)
		if g.owner != nil {
			g.owner.account(int64(cap(g.store.senders)-prev) * 8)
		}
	} else {
		g.store.senders = g.store.senders[:need]
		for i := range g.store.senders {
			g.store.senders[i] = 0
		}
	}
	for rho := 1; rho <= g.Horizon; rho++ {
		for h := 0; h < g.n; h++ {
			row := g.store.senders[(rho*g.n+h)*g.w:][:g.w]
			for j := 0; j < g.n; j++ {
				if pat.Delivered(j, h, rho) {
					row[j>>6] |= 1 << uint(j&63)
				}
			}
		}
	}
}

// fpBufPool recycles fingerprint build buffers across calls.
var fpBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

// Fingerprint returns a canonical encoding of the view Gα(i,m) — its node
// set, the in-neighbourhood of every non-initial node, and the initial
// values labelling layer 0. Two nodes across (possibly different)
// adversaries over the same number of processes have equal local states
// in the full-information protocol iff their fingerprints are equal.
// (The in-neighbourhoods determine the edge set of the view: whenever
// ⟨h,ρ⟩ is in a view, all of h's round-ρ senders are too.)
//
// The encoding is compact binary — varint header plus raw bitset words —
// built in one pooled buffer; it replaced a fmt-rendered decimal string
// whose construction dominated view-interning workloads. The bytes are
// an opaque key: compare and hash them, do not parse them.
func (g *Graph) Fingerprint(i model.Proc, m int) string {
	bp := fpBufPool.Get().(*[]byte)
	b := g.AppendFingerprint((*bp)[:0], i, m)
	s := string(b)
	*bp = b
	fpBufPool.Put(bp)
	return s
}

// AppendFingerprint appends the Fingerprint encoding of ⟨i,m⟩ to b and
// returns the extended slice — the allocation-free form for interning
// loops, which look the bytes up in a map[string]T via the compiler's
// zero-copy string(b) conversion and materialize a key only on a miss.
// The view-interning compile stage of the unbeatability search calls
// this once per (run, node); with Fingerprint it paid a string
// allocation per call whether or not the view was already interned.
func (g *Graph) AppendFingerprint(b []byte, i model.Proc, m int) []byte {
	v := g.View(i, m)
	g.sendersOnce.Do(g.buildSenders)

	var tmp [binary.MaxVarintLen64]byte
	putU := func(x uint64) {
		b = append(b, tmp[:binary.PutUvarint(tmp[:], x)]...)
	}
	putWords := func(words []uint64) {
		for _, w := range words {
			binary.LittleEndian.PutUint64(tmp[:8], w)
			b = append(b, tmp[:8]...)
		}
	}
	putU(uint64(i))
	putU(uint64(m))
	putU(uint64(len(v.Layers)))
	layer0 := v.Layers[0]
	putWords(layer0.Words())
	layer0.ForEach(func(j int) bool {
		b = append(b, tmp[:binary.PutVarint(tmp[:], int64(g.Adv.Inputs[j]))]...)
		return true
	})
	for l := 1; l < len(v.Layers); l++ {
		putWords(v.Layers[l].Words())
		v.Layers[l].ForEach(func(h int) bool {
			putWords(g.store.senders[(l*g.n+h)*g.w:][:g.w])
			return true
		})
	}
	return b
}
