package knowledge

import (
	"fmt"
	"strings"

	"setconsensus/internal/bitset"
	"setconsensus/internal/model"
)

// referenceGraph is the naive pointer-forest implementation the arena
// Graph replaced. It is retained verbatim as the executable
// specification: the randomized equivalence tests (equiv_test.go) check
// every Graph query node-for-node against it, so any optimization of the
// arena layout or the word-parallel kernels is gated by agreement with
// this transparent O(n) -per-query code. It allocates freely and must
// never be used on a hot path.
type referenceGraph struct {
	adv     *model.Adversary
	horizon int

	views       [][]*View // views[m][i]
	knownCrash  [][][]int // knownCrash[m][i][j]
	hiddenCount [][][]int // hiddenCount[m][i][l], l ≤ m
	hc          [][]int   // hc[m][i]
}

// newReference computes the communication graph of adv exactly as the
// pre-arena implementation did: one heap-allocated bitset per (view,
// layer) and scalar per-(i,m,j,ℓ) classification loops.
func newReference(adv *model.Adversary, horizon int) *referenceGraph {
	n := adv.N()
	g := &referenceGraph{adv: adv, horizon: horizon}
	g.views = make([][]*View, horizon+1)
	g.knownCrash = make([][][]int, horizon+1)

	g.views[0] = make([]*View, n)
	for i := 0; i < n; i++ {
		g.views[0][i] = &View{Proc: i, Time: 0, Layers: []*bitset.Set{bitset.New(n).Add(i)}}
	}
	for m := 1; m <= horizon; m++ {
		g.views[m] = make([]*View, n)
		for i := 0; i < n; i++ {
			if !adv.Pattern.Active(i, m) {
				// Frozen: the process performed no round-m receive.
				g.views[m][i] = &View{Proc: i, Time: m, Layers: g.views[m-1][i].Layers}
				continue
			}
			layers := make([]*bitset.Set, m+1)
			for l := range layers {
				layers[l] = bitset.New(n)
			}
			for j := 0; j < n; j++ {
				if !adv.Pattern.Delivered(j, i, m) {
					continue
				}
				prev := g.views[m-1][j]
				for l, set := range prev.Layers {
					layers[l].UnionWith(set)
				}
			}
			layers[m].Add(i)
			g.views[m][i] = &View{Proc: i, Time: m, Layers: layers}
		}
	}
	for m := 0; m <= horizon; m++ {
		g.knownCrash[m] = make([][]int, n)
		for i := 0; i < n; i++ {
			g.knownCrash[m][i] = g.computeKnownCrash(i, m)
		}
	}
	g.hiddenCount = make([][][]int, horizon+1)
	g.hc = make([][]int, horizon+1)
	for m := 0; m <= horizon; m++ {
		g.hiddenCount[m] = make([][]int, n)
		g.hc[m] = make([]int, n)
		for i := 0; i < n; i++ {
			counts := make([]int, m+1)
			minC := n
			for l := 0; l <= m; l++ {
				c := 0
				for j := 0; j < n; j++ {
					if g.hiddenAt(i, m, j, l) {
						c++
					}
				}
				counts[l] = c
				if c < minC {
					minC = c
				}
			}
			g.hiddenCount[m][i] = counts
			g.hc[m][i] = minC
		}
	}
	return g
}

func (g *referenceGraph) hiddenAt(i model.Proc, m int, j model.Proc, l int) bool {
	return !g.views[m][i].SeenAt(j, l) && g.knownCrash[m][i][j] > l
}

// computeKnownCrash is the scalar per-seen-node rescan the word-parallel
// build replaced: for every seen ⟨h,ρ⟩ it walks all n candidate senders.
func (g *referenceGraph) computeKnownCrash(i model.Proc, m int) []int {
	n := g.adv.N()
	out := make([]int, n)
	for j := range out {
		out[j] = NoKnownCrash
	}
	v := g.views[m][i]
	for rho := 1; rho < len(v.Layers); rho++ {
		v.Layers[rho].ForEach(func(h int) bool {
			for j := 0; j < n; j++ {
				if j == h {
					continue
				}
				if !g.adv.Pattern.Delivered(j, h, rho) && rho < out[j] {
					out[j] = rho
				}
			}
			return true
		})
	}
	return out
}

func (g *referenceGraph) view(i model.Proc, m int) *View { return g.views[m][i] }

func (g *referenceGraph) seen(i model.Proc, m int, j model.Proc, l int) bool {
	return g.views[m][i].SeenAt(j, l)
}

func (g *referenceGraph) knownCrashRound(i model.Proc, m int, j model.Proc) int {
	return g.knownCrash[m][i][j]
}

func (g *referenceGraph) hidden(i model.Proc, m int, j model.Proc, l int) bool {
	return !g.seen(i, m, j, l) && g.knownCrash[m][i][j] > l
}

func (g *referenceGraph) hiddenCapacity(i model.Proc, m int) int { return g.hc[m][i] }

func (g *referenceGraph) failuresKnown(i model.Proc, m int) int {
	d := 0
	for _, r := range g.knownCrash[m][i] {
		if r != NoKnownCrash {
			d++
		}
	}
	return d
}

func (g *referenceGraph) vals(i model.Proc, m int) *bitset.Set {
	out := &bitset.Set{}
	g.views[m][i].Layers[0].ForEach(func(j int) bool {
		out.Add(g.adv.Inputs[j])
		return true
	})
	return out
}

func (g *referenceGraph) min(i model.Proc, m int) model.Value {
	v, _ := g.vals(i, m).Min()
	return v
}

func (g *referenceGraph) lastSeen(i model.Proc, m int, j model.Proc) int {
	v := g.views[m][i]
	for l := len(v.Layers) - 1; l >= 0; l-- {
		if v.Layers[l].Contains(j) {
			return l
		}
	}
	return -1
}

// persists is Definition 3 exactly as the pre-arena Persists computed it,
// including the defensive SeenSet clone it paid per call.
func (g *referenceGraph) persists(i model.Proc, m int, v model.Value, t int) bool {
	if m > 0 && g.adv.Pattern.Active(i, m) && g.vals(i, m-1).Contains(v) {
		return true
	}
	d := g.failuresKnown(i, m)
	need := t - d
	if need <= 0 {
		return true
	}
	if m == 0 {
		return false
	}
	count := 0
	seen := &bitset.Set{}
	if view := g.views[m][i]; m-1 < len(view.Layers) {
		seen = view.Layers[m-1].Clone()
	}
	seen.ForEach(func(j int) bool {
		if g.vals(j, m-1).Contains(v) {
			count++
		}
		return count < need
	})
	return count >= need
}

// fingerprint is the old fmt-built canonical string encoding. The arena
// Graph's binary Fingerprint must induce exactly the same equivalence
// classes over nodes; the encodings themselves differ.
func (g *referenceGraph) fingerprint(i model.Proc, m int) string {
	v := g.views[m][i]
	var b strings.Builder
	fmt.Fprintf(&b, "⟨%d,%d⟩|", i, m)
	v.Layers[0].ForEach(func(j int) bool {
		fmt.Fprintf(&b, "0:%d=%d;", j, g.adv.Inputs[j])
		return true
	})
	for l := 1; l < len(v.Layers); l++ {
		v.Layers[l].ForEach(func(h int) bool {
			fmt.Fprintf(&b, "%d:%d<", l, h)
			for j := 0; j < g.adv.N(); j++ {
				if g.adv.Pattern.Delivered(j, h, l) {
					fmt.Fprintf(&b, "%d,", j)
				}
			}
			b.WriteByte(';')
			return true
		})
	}
	return b.String()
}
