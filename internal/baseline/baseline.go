// Package baseline implements the literature comparators for k-set
// consensus in the synchronous crash model — the protocols that the
// paper's Optmin[k] and u-Pmin[k] dominate.
//
// The defining characteristic the paper ascribes to all of them (§5): "a
// process remains undecided as long as it discovers at least k new
// failures in every round". We implement the canonical decision rules:
//
//   - FloodMin[k]      — worst-case optimal: flood minima and decide at
//     time ⌊t/k⌋+1 (the classic protocol, cf. Chaudhuri et al. [7]).
//   - EarlyCount[k]    — nonuniform early deciding ([7,14]-style): decide
//     Min⟨i,m⟩ at the first time m ≥ 1 with fewer than k·m known
//     failures. (By the hidden-capacity argument, failures < k·m implies
//     HC < k, so this is a strictly weaker trigger than Optmin's.)
//   - UEarlyCount[k]   — uniform variant ([14,16]-style): after observing
//     the count condition at time m−1, decide Min⟨i,m−1⟩ at time m — one
//     round later, by which point the decided value has provably
//     persisted; unconditional deadline ⌊t/k⌋+1.
//   - PerRound[k]      — nonuniform ([27]-style): decide Min⟨i,m⟩ at the
//     first time m ≥ 1 that reveals fewer than k new failures.
//   - UPerRound[k]     — uniform variant: one round after a quiet round,
//     decide the persisted Min⟨i,m−1⟩; deadline ⌊t/k⌋+1.
//
// Every baseline is verified against the task checkers over exhaustively
// enumerated adversaries in conformance_test.go; on the Fig. 4 family all
// of them decide only at ⌊t/k⌋+1, which is exactly the behaviour the
// paper's separation claim relies on.
package baseline

import (
	"fmt"

	"setconsensus/internal/core"
	"setconsensus/internal/knowledge"
	"setconsensus/internal/model"
)

// Kind selects a baseline decision rule.
type Kind int

// The implemented baseline rules.
const (
	FloodMin Kind = iota + 1
	EarlyCount
	UEarlyCount
	PerRound
	UPerRound
)

var kindNames = map[Kind]string{
	FloodMin:    "FloodMin",
	EarlyCount:  "EarlyCount",
	UEarlyCount: "u-EarlyCount",
	PerRound:    "PerRound",
	UPerRound:   "u-PerRound",
}

// Uniform reports whether the rule solves the uniform task.
func (k Kind) Uniform() bool { return k == FloodMin || k == UEarlyCount || k == UPerRound }

// String returns the rule's literature-style name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Protocol is one configured baseline.
type Protocol struct {
	kind Kind
	p    core.Params
	name string
}

// New builds a baseline protocol of the given kind.
func New(kind Kind, p core.Params) (*Protocol, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if _, ok := kindNames[kind]; !ok {
		return nil, fmt.Errorf("baseline: unknown kind %d", int(kind))
	}
	return &Protocol{kind: kind, p: p, name: fmt.Sprintf("%s[%d]", kind, p.K)}, nil
}

// Must is New for fixed test/experiment parameters.
func Must(kind Kind, p core.Params) *Protocol {
	b, err := New(kind, p)
	if err != nil {
		panic(err)
	}
	return b
}

// All returns one instance of every baseline for the given parameters.
func All(p core.Params) []*Protocol {
	return []*Protocol{
		Must(FloodMin, p),
		Must(EarlyCount, p),
		Must(UEarlyCount, p),
		Must(PerRound, p),
		Must(UPerRound, p),
	}
}

// AllUniform returns the baselines that solve the uniform task.
func AllUniform(p core.Params) []*Protocol {
	return []*Protocol{
		Must(FloodMin, p),
		Must(UEarlyCount, p),
		Must(UPerRound, p),
	}
}

// Name implements sim.Protocol.
func (b *Protocol) Name() string { return b.name }

// Kind returns the baseline's rule kind.
func (b *Protocol) Kind() Kind { return b.kind }

// Params returns the protocol parameters.
func (b *Protocol) Params() core.Params { return b.p }

// WorstCaseDecisionTime implements sim.Protocol: every baseline carries
// the unconditional ⌊t/k⌋+1 deadline.
func (b *Protocol) WorstCaseDecisionTime() int { return b.p.T/b.p.K + 1 }

// Decide implements sim.Protocol.
func (b *Protocol) Decide(g *knowledge.Graph, i model.Proc, m int) (model.Value, bool) {
	k := b.p.K
	deadline := b.p.T/k + 1
	switch b.kind {
	case FloodMin:
		if m == deadline {
			return g.Min(i, m), true
		}
	case EarlyCount:
		if m >= 1 && g.FailuresKnown(i, m) < k*m {
			return g.Min(i, m), true
		}
		// The count condition is automatic at the deadline
		// (k(⌊t/k⌋+1) > t ≥ f), so no extra clause is needed; kept
		// explicit for clarity of the worst-case contract.
		if m == deadline {
			return g.Min(i, m), true
		}
	case UEarlyCount:
		if m >= 2 && g.FailuresKnown(i, m-1) < k*(m-1) {
			return g.Min(i, m-1), true
		}
		if m == deadline {
			return g.Min(i, m), true
		}
	case PerRound:
		if m >= 1 && newFailures(g, i, m) < k {
			return g.Min(i, m), true
		}
		if m == deadline {
			return g.Min(i, m), true
		}
	case UPerRound:
		if m >= 2 && newFailures(g, i, m-1) < k {
			return g.Min(i, m-1), true
		}
		if m == deadline {
			return g.Min(i, m), true
		}
	}
	return 0, false
}

// newFailures counts the failures i discovered in round m: processes it
// can prove crashed at time m but could not at time m−1.
func newFailures(g *knowledge.Graph, i model.Proc, m int) int {
	return g.FailuresKnown(i, m) - g.FailuresKnown(i, m-1)
}
