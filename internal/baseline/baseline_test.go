package baseline

import (
	"strings"
	"testing"

	"setconsensus/internal/check"
	"setconsensus/internal/core"
	"setconsensus/internal/model"
	"setconsensus/internal/sim"
)

func TestKindStringsAndUniformity(t *testing.T) {
	cases := map[Kind]struct {
		name    string
		uniform bool
	}{
		FloodMin:    {"FloodMin", true},
		EarlyCount:  {"EarlyCount", false},
		UEarlyCount: {"u-EarlyCount", true},
		PerRound:    {"PerRound", false},
		UPerRound:   {"u-PerRound", true},
	}
	for kind, want := range cases {
		if kind.String() != want.name {
			t.Errorf("%d: name %q, want %q", kind, kind.String(), want.name)
		}
		if kind.Uniform() != want.uniform {
			t.Errorf("%s: uniform %v", kind, kind.Uniform())
		}
	}
	if got := Kind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind string = %q", got)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Kind(99), core.Params{N: 3, T: 1, K: 1}); err == nil {
		t.Error("unknown kind must error")
	}
	if _, err := New(FloodMin, core.Params{N: 1, T: 0, K: 1}); err == nil {
		t.Error("invalid params must error")
	}
	b := Must(FloodMin, core.Params{N: 4, T: 2, K: 2})
	if b.Name() != "FloodMin[2]" || b.Kind() != FloodMin || b.Params().N != 4 {
		t.Errorf("metadata: %s %v %+v", b.Name(), b.Kind(), b.Params())
	}
}

func TestAllFamilies(t *testing.T) {
	p := core.Params{N: 4, T: 2, K: 1}
	if got := len(All(p)); got != 5 {
		t.Errorf("All = %d protocols", got)
	}
	for _, b := range AllUniform(p) {
		if !b.Kind().Uniform() {
			t.Errorf("%s in AllUniform but not uniform", b.Name())
		}
	}
}

func TestFloodMinAlwaysDecidesAtDeadline(t *testing.T) {
	p := core.Params{N: 4, T: 2, K: 1}
	adv := model.NewBuilder(4, 1).Input(0, 0).MustBuild()
	res := sim.Run(Must(FloodMin, p), adv)
	for i := 0; i < 4; i++ {
		if d := res.Decisions[i]; d == nil || d.Time != 3 || d.Value != 0 {
			t.Errorf("process %d: %+v, want 0@3", i, d)
		}
	}
}

func TestEarlyCountFailureFree(t *testing.T) {
	// Failure-free: zero known failures < k·1, so EarlyCount decides at
	// time 1; the uniform variant one round later; PerRound at 1 too.
	p := core.Params{N: 5, T: 3, K: 2}
	adv := model.NewBuilder(5, 2).MustBuild()
	for kind, want := range map[Kind]int{EarlyCount: 1, UEarlyCount: 2, PerRound: 1, UPerRound: 2} {
		res := sim.Run(Must(kind, p), adv)
		for i := 0; i < 5; i++ {
			if d := res.Decisions[i]; d == nil || d.Time != want {
				t.Errorf("%s process %d: %+v, want time %d", kind, i, d, want)
			}
		}
	}
}

func TestBaselinesStallOnCollapseFamily(t *testing.T) {
	// The defining behaviour the separation relies on: with ≥ k new
	// failures discovered every round, every baseline stays undecided
	// until ⌊t/k⌋+1 on the Fig. 4 family.
	cp := model.CollapseParams{K: 2, R: 3, ExtraCorrect: 4}
	adv, err := model.Collapse(cp)
	if err != nil {
		t.Fatal(err)
	}
	tb := model.CollapseT(cp)
	p := core.Params{N: adv.N(), T: tb, K: 2}
	deadline := tb/2 + 1
	// The family's crashes end in round R = t/k − 1, so the nonuniform
	// per-round rule sees its first quiet round at R+1 = deadline−1; all
	// count-based and uniform baselines stall to the deadline itself.
	want := map[Kind]int{
		FloodMin:    deadline,
		EarlyCount:  deadline,
		UEarlyCount: deadline,
		PerRound:    deadline - 1,
		UPerRound:   deadline,
	}
	for _, b := range All(p) {
		res := sim.Run(b, adv)
		for i := 0; i < adv.N(); i++ {
			if !adv.Pattern.Correct(i) {
				continue
			}
			if d := res.Decisions[i]; d == nil || d.Time != want[b.Kind()] {
				t.Errorf("%s correct process %d: %+v, want decision at %d", b.Name(), i, d, want[b.Kind()])
			}
		}
	}
}

func TestEarlyCountImpliesOptminCondition(t *testing.T) {
	// The domination mechanism: whenever the EarlyCount trigger holds
	// (failures < k·m), the hidden capacity is already < k — so Optmin's
	// rule fires no later. Spot-check across the collapse run.
	cp := model.CollapseParams{K: 2, R: 3, ExtraCorrect: 4}
	adv, err := model.Collapse(cp)
	if err != nil {
		t.Fatal(err)
	}
	tb := model.CollapseT(cp)
	p := core.Params{N: adv.N(), T: tb, K: 2}
	res := sim.Run(Must(EarlyCount, p), adv)
	g := res.Graph
	for i := 0; i < adv.N(); i++ {
		for m := 1; m <= tb/2+1; m++ {
			if !adv.Pattern.Active(i, m) {
				continue
			}
			if g.FailuresKnown(i, m) < 2*m && g.HiddenCapacity(i, m) >= 2 {
				t.Fatalf("⟨%d,%d⟩: count condition without HC<k", i, m)
			}
		}
	}
}

func TestBaselinesSatisfyTasksOnFamilies(t *testing.T) {
	hp, err := model.HiddenPath(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	p := core.Params{N: 6, T: 4, K: 1}
	for _, b := range All(p) {
		task := check.Task{K: 1, Uniform: b.Kind().Uniform()}
		if err := check.VerifyRun(sim.Run(b, hp), task); err != nil {
			t.Errorf("%s on hidden path: %v", b.Name(), err)
		}
	}
}
