package model

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestDeliveredCorrectSender(t *testing.T) {
	f := NewFailurePattern(4)
	for r := 1; r <= 5; r++ {
		for to := 0; to < 4; to++ {
			if !f.Delivered(1, to, r) {
				t.Errorf("correct sender must deliver (round %d, to %d)", r, to)
			}
		}
	}
	if f.Delivered(1, 2, 0) {
		t.Error("round 0 has no messages")
	}
}

func TestDeliveredCrashingSender(t *testing.T) {
	adv := NewBuilder(4, 0).CrashSendingTo(1, 2, 3).MustBuild()
	f := adv.Pattern
	// Before crash round: full delivery.
	if !f.Delivered(1, 0, 1) || !f.Delivered(1, 2, 1) {
		t.Error("round before crash must deliver fully")
	}
	// Crash round: only the delivery set.
	if f.Delivered(1, 0, 2) || f.Delivered(1, 2, 2) {
		t.Error("crash round must deliver only to chosen set")
	}
	if !f.Delivered(1, 3, 2) {
		t.Error("crash round must deliver to chosen receiver 3")
	}
	// After crash: silence.
	if f.Delivered(1, 3, 3) {
		t.Error("post-crash rounds must be silent")
	}
}

func TestSelfDelivery(t *testing.T) {
	adv := NewBuilder(3, 0).CrashSilent(1, 2).MustBuild()
	f := adv.Pattern
	if !f.Delivered(1, 1, 1) {
		t.Error("process hears itself while alive (round 1, crash round 2)")
	}
	// In its crash round 2 (sent at time 1, while still alive) the
	// process still carries its own state forward conceptually, but it is
	// dead at receive time; crash round self-delivery is reported false
	// because the process is not alive at sending time 1? It is: crash
	// round 2 means alive at time 1. Self-delivery holds in round 2.
	if !f.Delivered(1, 1, 2) {
		t.Error("self-delivery in the crash round (alive at send time)")
	}
	if f.Delivered(1, 1, 3) {
		t.Error("no self-delivery after death")
	}
}

func TestActiveCorrectFaulty(t *testing.T) {
	adv := NewBuilder(3, 0).CrashSilent(2, 3).MustBuild()
	f := adv.Pattern
	if !f.Active(2, 0) || !f.Active(2, 2) {
		t.Error("crash round 3 ⟹ active at times 0..2")
	}
	if f.Active(2, 3) {
		t.Error("crash round 3 ⟹ dead at time 3")
	}
	if !f.Correct(0) || f.Correct(2) {
		t.Error("correctness misreported")
	}
	if got := f.CorrectProcs().Elems(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("CorrectProcs = %v", got)
	}
	if f.NumFailures() != 1 {
		t.Errorf("NumFailures = %d", f.NumFailures())
	}
	if f.MaxCrashRound() != 3 {
		t.Errorf("MaxCrashRound = %d", f.MaxCrashRound())
	}
}

func TestValidate(t *testing.T) {
	adv := NewBuilder(3, 0).CrashSilent(1, 1).MustBuild()
	if err := adv.Validate(1, 1); err != nil {
		t.Errorf("valid adversary rejected: %v", err)
	}
	if err := adv.Validate(0, 1); err == nil {
		t.Error("crash bound t=0 should reject one crash")
	}
	bad := NewBuilder(3, 5).MustBuild()
	if err := bad.Validate(-1, 1); err == nil {
		t.Error("value 5 outside {0..1} should be rejected")
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder(3, 0).CrashSilent(1, 1).CrashSilent(1, 2).Build(); err == nil {
		t.Error("double crash must error")
	}
	if _, err := NewBuilder(3, 0).Input(9, 1).Build(); err == nil {
		t.Error("out-of-range input must error")
	}
	if _, err := NewBuilder(3, 0).Inputs(1, 2).Build(); err == nil {
		t.Error("wrong arity Inputs must error")
	}
}

func TestBuilderAllBut(t *testing.T) {
	adv := NewBuilder(4, 0).CrashSendingToAllBut(1, 1, 2).MustBuild()
	f := adv.Pattern
	if f.Delivered(1, 2, 1) {
		t.Error("victim 2 must miss the message")
	}
	if !f.Delivered(1, 0, 1) || !f.Delivered(1, 3, 1) {
		t.Error("non-victims must receive")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := NewBuilder(3, 0).CrashSendingTo(1, 1, 2).MustBuild()
	c := a.Clone()
	c.Inputs[0] = 9
	c.Pattern.Crashes[1].Delivered.Add(0)
	if a.Inputs[0] == 9 {
		t.Error("inputs aliased after Clone")
	}
	if a.Pattern.Crashes[1].Delivered.Contains(0) {
		t.Error("pattern aliased after Clone")
	}
}

func TestString(t *testing.T) {
	a := NewBuilder(3, 1).Input(0, 0).CrashSendingTo(2, 1, 0).MustBuild()
	s := a.String()
	for _, want := range []string{"inputs=[0 1 1]", "2@r1", "{0}"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
	if got := NewFailurePattern(3).String(); got != "crash()" {
		t.Errorf("empty pattern String = %q", got)
	}
}

func TestHiddenPathFamily(t *testing.T) {
	adv, err := HiddenPath(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if adv.Inputs[1] != 0 {
		t.Error("chain head must hold 0")
	}
	f := adv.Pattern
	if f.CrashRound(1) != 1 || f.CrashRound(2) != 2 {
		t.Errorf("chain crash rounds: %d, %d", f.CrashRound(1), f.CrashRound(2))
	}
	if !f.Delivered(1, 2, 1) || f.Delivered(1, 0, 1) {
		t.Error("head must deliver only to its successor")
	}
	if _, err := HiddenPath(3, 2); err == nil {
		t.Error("too-small n must error")
	}
	if _, err := HiddenPath(5, 0); err == nil {
		t.Error("depth 0 must error")
	}
}

func TestHiddenChainsFamily(t *testing.T) {
	adv, err := HiddenChains(8, 2, 2, []Value{0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// chain 0: procs 1,2,3; chain 1: procs 4,5,6.
	if adv.Inputs[1] != 0 || adv.Inputs[4] != 1 {
		t.Errorf("chain head values: %v", adv.Inputs)
	}
	f := adv.Pattern
	if f.CrashRound(1) != 1 || f.CrashRound(2) != 2 || f.CrashRound(3) != NoCrash {
		t.Error("chain 0 crash rounds wrong")
	}
	if !f.Delivered(1, 2, 1) || f.Delivered(1, 5, 1) {
		t.Error("chain 0 head delivers only within its chain")
	}
	if _, err := HiddenChains(8, 2, 2, []Value{0}, 2); err == nil {
		t.Error("value arity mismatch must error")
	}
	if _, err := HiddenChains(4, 2, 2, []Value{0, 1}, 2); err == nil {
		t.Error("too-small n must error")
	}
}

func TestCollapseFamilyShape(t *testing.T) {
	p := CollapseParams{K: 2, R: 3, ExtraCorrect: 3}
	adv, err := Collapse(p)
	if err != nil {
		t.Fatal(err)
	}
	k, tBound := p.K, CollapseT(p)
	if tBound != 8 {
		t.Fatalf("t = %d, want 8", tBound)
	}
	if adv.N() != tBound+p.ExtraCorrect {
		t.Fatalf("n = %d", adv.N())
	}
	if adv.Pattern.NumFailures() != tBound {
		t.Fatalf("failures = %d, want %d", adv.Pattern.NumFailures(), tBound)
	}
	if err := adv.Validate(tBound, k); err != nil {
		t.Fatalf("invalid adversary: %v", err)
	}
	// Heads crash round 1 delivering to exactly one relay.
	head := p.ExtraCorrect
	relay := p.ExtraCorrect + k
	if adv.Pattern.CrashRound(head) != 1 {
		t.Error("head must crash in round 1")
	}
	if !adv.Pattern.Delivered(head, relay, 1) || adv.Pattern.Delivered(head, 0, 1) {
		t.Error("head delivers only to its relay")
	}
	// Relays crash round 2 with full sends.
	if adv.Pattern.CrashRound(relay) != 2 || !adv.Pattern.Delivered(relay, 0, 2) {
		t.Error("relay must crash round 2 after complete send")
	}
	// Parameter validation.
	for _, bad := range []CollapseParams{{K: 0, R: 2, ExtraCorrect: 2}, {K: 1, R: 1, ExtraCorrect: 2}, {K: 1, R: 2, ExtraCorrect: 1}} {
		if _, err := Collapse(bad); err == nil {
			t.Errorf("params %+v must error", bad)
		}
	}
}

func TestCollapseLowVariant(t *testing.T) {
	adv, err := Collapse(CollapseParams{K: 3, R: 2, ExtraCorrect: 2, LowVariant: true})
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 3; b++ {
		if adv.Inputs[2+b] != b {
			t.Errorf("head %d value = %d, want %d", b, adv.Inputs[2+b], b)
		}
	}
	if adv.Inputs[0] != 3 {
		t.Errorf("correct process value = %d, want 3", adv.Inputs[0])
	}
}

func TestSilentRoundsFamily(t *testing.T) {
	adv, err := SilentRounds(2, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if adv.N() != 9 || adv.Pattern.NumFailures() != 6 {
		t.Fatalf("n=%d failures=%d", adv.N(), adv.Pattern.NumFailures())
	}
	byRound := map[int]int{}
	for _, c := range adv.Pattern.Crashes {
		byRound[c.Round]++
		if c.Delivered.Count() != 0 {
			t.Error("silent crashers must deliver nothing")
		}
	}
	for r := 1; r <= 3; r++ {
		if byRound[r] != 2 {
			t.Errorf("round %d crashes = %d, want 2", r, byRound[r])
		}
	}
	if _, err := SilentRounds(0, 1, 3); err == nil {
		t.Error("k=0 must error")
	}
	if _, err := SilentRounds(1, 1, 1); err == nil {
		t.Error("extraCorrect=0 must error")
	}
}

func TestRandomAdversaryValid(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := RandomParams{N: 6, T: 3, MaxValue: 2, MaxRound: 3}
	for i := 0; i < 200; i++ {
		adv := Random(rng, p)
		if err := adv.Validate(p.T, p.MaxValue); err != nil {
			t.Fatalf("sample %d invalid: %v", i, err)
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	p := RandomParams{N: 5, T: 2, MaxValue: 3, MaxRound: 2}
	a := Random(rand.New(rand.NewSource(42)), p)
	b := Random(rand.New(rand.NewSource(42)), p)
	if a.String() != b.String() {
		t.Errorf("same seed produced different adversaries:\n%s\n%s", a, b)
	}
}

// Property: Delivered is monotone in the sense that a message delivered in
// the crash round implies all earlier rounds delivered too.
func TestQuickDeliveryMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		adv := Random(rng, RandomParams{N: 5, T: 4, MaxValue: 1, MaxRound: 3})
		for from := 0; from < 5; from++ {
			for to := 0; to < 5; to++ {
				if from == to {
					continue
				}
				for r := 2; r <= 4; r++ {
					if adv.Pattern.Delivered(from, to, r) && !adv.Pattern.Delivered(from, to, r-1) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCanonicalStripsUnobservableDeliveries(t *testing.T) {
	// Process 0 crashes in round 1 delivering to 1 (also crashing in
	// round 1, i.e. dead at receipt time 1) and to 2 (alive). The
	// delivery to 1 and any self-delivery are unobservable.
	full := NewBuilder(4, 0).
		CrashSendingTo(0, 1, 1, 2).
		CrashSilent(1, 1).
		MustBuild()
	canon := full.Pattern.Canonical()
	if canon.Crashes[0].Delivered.Contains(1) {
		t.Error("delivery to a dead receiver survived canonicalization")
	}
	if !canon.Crashes[0].Delivered.Contains(2) {
		t.Error("delivery to a live receiver was stripped")
	}
	if canon.CrashRound(0) != 1 || canon.CrashRound(1) != 1 {
		t.Error("canonicalization changed crash rounds")
	}
	// Canonicalization is idempotent.
	if canon.Canonical().String() != canon.String() {
		t.Error("Canonical is not idempotent")
	}
	// The original pattern is untouched.
	if !full.Pattern.Crashes[0].Delivered.Contains(1) {
		t.Error("Canonical mutated its receiver")
	}
}

func TestFingerprintIdentifiesEqualAdversaries(t *testing.T) {
	build := func() *Adversary {
		return NewBuilder(5, 1).Input(0, 0).CrashSendingTo(4, 1, 3).MustBuild()
	}
	if build().Fingerprint() != build().Fingerprint() {
		t.Error("separately built equal adversaries must share a fingerprint")
	}
	// Observably equal but structurally different: delivering to a dead
	// process is unobservable.
	a := NewBuilder(4, 1).CrashSendingTo(0, 1, 2).CrashSilent(1, 1).MustBuild()
	b := NewBuilder(4, 1).CrashSendingTo(0, 1, 1, 2).CrashSilent(1, 1).MustBuild()
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("unobservable delivery changed the fingerprint:\n%s\n%s", a.Fingerprint(), b.Fingerprint())
	}
	// Different inputs or patterns must differ.
	c := NewBuilder(5, 1).Input(0, 1).CrashSendingTo(4, 1, 3).MustBuild()
	if c.Fingerprint() == build().Fingerprint() {
		t.Error("different inputs share a fingerprint")
	}
	d := NewBuilder(5, 1).Input(0, 0).CrashSendingTo(4, 2, 3).MustBuild()
	if d.Fingerprint() == build().Fingerprint() {
		t.Error("different crash rounds share a fingerprint")
	}
}

func TestFamiliesMetadata(t *testing.T) {
	fams := Families()
	if len(fams) != 5 {
		t.Fatalf("got %d families", len(fams))
	}
	seen := map[string]bool{}
	for _, f := range fams {
		if f.Name == "" || f.Summary == "" {
			t.Errorf("incomplete family metadata: %+v", f)
		}
		if seen[f.Name] {
			t.Errorf("duplicate family %q", f.Name)
		}
		seen[f.Name] = true
	}
}
