package model

import (
	"fmt"

	"setconsensus/internal/bitset"
)

// Builder assembles adversaries fluently. It exists because the paper's
// constructions (Figs. 1–4, Lemma 2) are stated as "process p crashes in
// round c sending only to q"; tests and experiments read far better when
// they can say the same thing.
type Builder struct {
	inputs  []Value
	pattern *FailurePattern
	err     error
}

// NewBuilder starts an adversary over n processes, all with initial value
// defaultValue and no crashes.
func NewBuilder(n int, defaultValue Value) *Builder {
	in := make([]Value, n)
	for i := range in {
		in[i] = defaultValue
	}
	return &Builder{inputs: in, pattern: NewFailurePattern(n)}
}

// Input sets process p's initial value.
func (b *Builder) Input(p Proc, v Value) *Builder {
	if b.err != nil {
		return b
	}
	if p < 0 || p >= len(b.inputs) {
		b.err = fmt.Errorf("model: Input(%d) out of range", p)
		return b
	}
	b.inputs[p] = v
	return b
}

// Inputs sets all initial values at once.
func (b *Builder) Inputs(vs ...Value) *Builder {
	if b.err != nil {
		return b
	}
	if len(vs) != len(b.inputs) {
		b.err = fmt.Errorf("model: Inputs got %d values for %d processes", len(vs), len(b.inputs))
		return b
	}
	copy(b.inputs, vs)
	return b
}

// CrashSendingTo makes p crash in round `round`, delivering its round-
// `round` message only to the listed receivers.
func (b *Builder) CrashSendingTo(p Proc, round int, receivers ...Proc) *Builder {
	if b.err != nil {
		return b
	}
	if _, dup := b.pattern.Crashes[p]; dup {
		b.err = fmt.Errorf("model: process %d crashes twice", p)
		return b
	}
	b.pattern.Crashes[p] = Crash{Round: round, Delivered: bitset.FromSlice(receivers)}
	return b
}

// CrashSilent makes p crash in round `round` delivering nothing.
func (b *Builder) CrashSilent(p Proc, round int) *Builder {
	return b.CrashSendingTo(p, round)
}

// CrashSendingToAll makes p crash in round `round` after a complete send:
// the crash is first observable in round round+1, when p falls silent.
func (b *Builder) CrashSendingToAll(p Proc, round int) *Builder {
	if b.err != nil {
		return b
	}
	if _, dup := b.pattern.Crashes[p]; dup {
		b.err = fmt.Errorf("model: process %d crashes twice", p)
		return b
	}
	b.pattern.Crashes[p] = Crash{Round: round, Delivered: bitset.Full(len(b.inputs))}
	return b
}

// CrashSendingToAllBut makes p crash in round `round`, delivering to
// everyone except the listed victims.
func (b *Builder) CrashSendingToAllBut(p Proc, round int, victims ...Proc) *Builder {
	if b.err != nil {
		return b
	}
	if _, dup := b.pattern.Crashes[p]; dup {
		b.err = fmt.Errorf("model: process %d crashes twice", p)
		return b
	}
	d := bitset.Full(len(b.inputs))
	for _, v := range victims {
		d.Remove(v)
	}
	b.pattern.Crashes[p] = Crash{Round: round, Delivered: d}
	return b
}

// Build returns the adversary, or the first recorded construction error.
func (b *Builder) Build() (*Adversary, error) {
	if b.err != nil {
		return nil, b.err
	}
	return NewAdversary(b.inputs, b.pattern), nil
}

// MustBuild is Build for tests and fixed constructions; it panics on error.
func (b *Builder) MustBuild() *Adversary {
	a, err := b.Build()
	if err != nil {
		panic(err)
	}
	return a
}
