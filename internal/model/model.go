// Package model defines the synchronous crash-failure computation model of
// the paper: input vectors, failure patterns, and adversaries.
//
// Terminology follows Section 2.1 of Castañeda–Gonczarowski–Moses:
// round m+1 takes place between time m and time m+1; a process crashing in
// round c behaves correctly in rounds 1..c−1, delivers an arbitrary subset
// of its round-c messages, and is silent from round c+1 on. A pair
// (input vector, failure pattern) is an adversary.
package model

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"
	"strconv"

	"setconsensus/internal/bitset"
)

// Proc identifies a process. Processes are numbered 0..n−1. (The paper
// numbers them 1..n; zero-basing is an implementation convenience and is
// reflected everywhere consistently.)
type Proc = int

// Value is an initial or decided value. In k-set consensus values range
// over {0,…,k} by default, and {0,…,d} with d ≥ k under the footnote-4
// generalization; values < k are "low", values ≥ k are "high".
type Value = int

// NoCrash is the crash round recorded for correct processes; it compares
// greater than every real round.
const NoCrash = int(^uint(0) >> 1) // max int

// Crash describes the failure of one process: the round in which it
// crashes (≥ 1) and the set of processes that still receive its crash-round
// message. Deliveries to itself are meaningless and ignored.
type Crash struct {
	Round     int
	Delivered *bitset.Set
}

// FailurePattern maps each faulty process to its Crash. It corresponds to
// the layered graph F of the paper restricted to crash failures.
type FailurePattern struct {
	N       int
	Crashes map[Proc]Crash
}

// NewFailurePattern returns a failure-free pattern over n processes.
func NewFailurePattern(n int) *FailurePattern {
	return &FailurePattern{N: n, Crashes: make(map[Proc]Crash)}
}

// Clone returns a deep copy of the pattern.
func (f *FailurePattern) Clone() *FailurePattern {
	c := NewFailurePattern(f.N)
	for p, cr := range f.Crashes {
		c.Crashes[p] = Crash{Round: cr.Round, Delivered: cr.Delivered.Clone()}
	}
	return c
}

// CrashRound returns the round in which p crashes, or NoCrash.
func (f *FailurePattern) CrashRound(p Proc) int {
	if c, ok := f.Crashes[p]; ok {
		return c.Round
	}
	return NoCrash
}

// Faulty reports whether p crashes at all.
func (f *FailurePattern) Faulty(p Proc) bool {
	_, ok := f.Crashes[p]
	return ok
}

// NumFailures returns f, the number of processes that crash.
func (f *FailurePattern) NumFailures() int { return len(f.Crashes) }

// Active reports whether p is alive at time m: it has not crashed in any
// round ≤ m. A process crashing in round c is active at times 0..c−1.
func (f *FailurePattern) Active(p Proc, m int) bool {
	return f.CrashRound(p) > m
}

// Correct reports whether p never crashes.
func (f *FailurePattern) Correct(p Proc) bool { return !f.Faulty(p) }

// CorrectProcs returns the set of processes that never crash.
func (f *FailurePattern) CorrectProcs() *bitset.Set {
	s := bitset.New(f.N)
	for p := 0; p < f.N; p++ {
		if f.Correct(p) {
			s.Add(p)
		}
	}
	return s
}

// Delivered reports whether the message sent by `from` in round `round`
// (sent at time round−1, received at time round) reaches `to`. Processes
// always "hear" themselves while alive. Delivery to a crashed receiver is
// reported as the pattern dictates; receivers that are dead simply never
// look at their inbox.
func (f *FailurePattern) Delivered(from, to Proc, round int) bool {
	if round < 1 {
		return false
	}
	c, faulty := f.Crashes[from]
	if from == to {
		// Self-communication persists while the process is alive at
		// sending time (time round−1).
		return !faulty || c.Round > round-1
	}
	if !faulty || round < c.Round {
		return true
	}
	if round == c.Round {
		return c.Delivered.Contains(to)
	}
	return false
}

// MaxCrashRound returns the latest round in which any process crashes,
// or 0 for a failure-free pattern.
func (f *FailurePattern) MaxCrashRound() int {
	max := 0
	for _, c := range f.Crashes {
		if c.Round > max {
			max = c.Round
		}
	}
	return max
}

// Validate checks structural sanity: process indices in range, crash
// rounds ≥ 1, at most t crashes if t ≥ 0 (pass t < 0 to skip the bound).
func (f *FailurePattern) Validate(t int) error {
	if f.N < 2 {
		return fmt.Errorf("model: need n ≥ 2 processes, have %d", f.N)
	}
	if t >= 0 && len(f.Crashes) > t {
		return fmt.Errorf("model: %d crashes exceed bound t=%d", len(f.Crashes), t)
	}
	for p, c := range f.Crashes {
		if p < 0 || p >= f.N {
			return fmt.Errorf("model: crash of out-of-range process %d", p)
		}
		if c.Round < 1 {
			return fmt.Errorf("model: process %d crashes in round %d < 1", p, c.Round)
		}
		bad := -1
		c.Delivered.ForEach(func(q int) bool {
			if q >= f.N {
				bad = q
				return false
			}
			return true
		})
		if bad >= 0 {
			return fmt.Errorf("model: process %d delivers to out-of-range process %d", p, bad)
		}
	}
	return nil
}

// String renders the pattern compactly, e.g. "crash(1@r1→{2}, 3@r2→{})".
// It is rendered by hand (strconv, not fmt): the string is built once per
// Result and once per enumerated pattern, which made reflection-driven
// formatting a measurable slice of sweep throughput.
func (f *FailurePattern) String() string {
	if len(f.Crashes) == 0 {
		return "crash()"
	}
	procs := f.sortedFaulty()
	b := make([]byte, 0, 16+24*len(procs))
	b = append(b, "crash("...)
	for i, p := range procs {
		if i > 0 {
			b = append(b, ", "...)
		}
		c := f.Crashes[p]
		b = strconv.AppendInt(b, int64(p), 10)
		b = append(b, "@r"...)
		b = strconv.AppendInt(b, int64(c.Round), 10)
		b = append(b, "→"...)
		b = append(b, c.Delivered.String()...)
	}
	b = append(b, ')')
	return string(b)
}

// sortedFaulty returns the faulty processes in increasing order.
func (f *FailurePattern) sortedFaulty() []int {
	procs := make([]int, 0, len(f.Crashes))
	for p := range f.Crashes {
		procs = append(procs, p)
	}
	sort.Ints(procs)
	return procs
}

// Canonical returns a copy of the pattern with unobservable deliveries
// stripped: a crash-round delivery to a receiver that is already dead at
// receipt time is never read, and delivery to oneself is implicit. Two
// patterns whose Canonical forms render identically are observably equal
// — no protocol can distinguish the runs they induce.
func (f *FailurePattern) Canonical() *FailurePattern {
	out := NewFailurePattern(f.N)
	for p, c := range f.Crashes {
		d := bitset.New(f.N)
		c.Delivered.ForEach(func(q int) bool {
			if q != p && f.Active(q, c.Round) {
				d.Add(q)
			}
			return true
		})
		out.Crashes[p] = Crash{Round: c.Round, Delivered: d}
	}
	return out
}

// Adversary couples an input vector with a failure pattern: the pair
// α = (v⃗, F) of the paper. It fully determines a run of any deterministic
// protocol.
type Adversary struct {
	Inputs  []Value
	Pattern *FailurePattern
}

// NewAdversary builds an adversary over len(inputs) processes.
func NewAdversary(inputs []Value, pattern *FailurePattern) *Adversary {
	return &Adversary{Inputs: append([]Value(nil), inputs...), Pattern: pattern}
}

// N returns the number of processes.
func (a *Adversary) N() int { return len(a.Inputs) }

// Clone returns a deep copy.
func (a *Adversary) Clone() *Adversary {
	return &Adversary{
		Inputs:  append([]Value(nil), a.Inputs...),
		Pattern: a.Pattern.Clone(),
	}
}

// Validate checks the adversary against a value domain {0..maxValue} and
// crash bound t (t < 0 skips the bound, maxValue < 0 skips the domain).
func (a *Adversary) Validate(t, maxValue int) error {
	if a.Pattern == nil {
		return fmt.Errorf("model: adversary has nil failure pattern")
	}
	if a.Pattern.N != a.N() {
		return fmt.Errorf("model: pattern over %d processes but %d inputs", a.Pattern.N, a.N())
	}
	if err := a.Pattern.Validate(t); err != nil {
		return err
	}
	if maxValue >= 0 {
		for p, v := range a.Inputs {
			if v < 0 || v > maxValue {
				return fmt.Errorf("model: input %d of process %d outside {0..%d}", v, p, maxValue)
			}
		}
	}
	return nil
}

// String renders the adversary, e.g. "adv(inputs=[0 1 2], crash())".
// Hand-rendered like FailurePattern.String: every Result carries this
// string, so it is on the sweep hot path.
func (a *Adversary) String() string {
	b := make([]byte, 0, 32+4*len(a.Inputs))
	b = append(b, "adv(inputs=["...)
	for i, v := range a.Inputs {
		if i > 0 {
			b = append(b, ' ')
		}
		b = strconv.AppendInt(b, int64(v), 10)
	}
	b = append(b, "], "...)
	b = append(b, a.Pattern.String()...)
	b = append(b, ')')
	return string(b)
}

// AppendFingerprint appends the pattern's canonical binary encoding to
// b and returns the extended buffer. Observably equal patterns — equal
// up to deliveries to the crasher itself or to receivers already dead
// at receipt time, which no protocol can distinguish — append identical
// bytes, exactly the Canonical equivalence, without materializing the
// canonical pattern. The encoding is varints (crasher, round) plus raw
// delivery-mask words, sorted by crasher; it is an opaque key to hash
// and compare, never to parse. The call itself allocates nothing beyond
// growing b (up to 8 crashers sort in a stack buffer), so enumeration
// hot loops can dedup millions of patterns through one reused buffer.
func (f *FailurePattern) AppendFingerprint(b []byte) []byte {
	var stack [8]Proc
	var procs []Proc
	if len(f.Crashes) <= len(stack) {
		procs = stack[:0]
		for p := range f.Crashes {
			procs = append(procs, p)
		}
		sort.Ints(procs)
	} else {
		procs = f.sortedFaulty()
	}
	return f.AppendFingerprintSorted(b, procs)
}

// AppendFingerprintSorted is AppendFingerprint for callers that already
// hold the faulty processes in increasing order — the enumeration walks
// crasher subsets in exactly that order and fingerprints every raw
// configuration it generates, so skipping the map iteration and sort
// that otherwise start each call matters there. procs must be exactly
// the faulty set, ascending; the appended bytes are identical to
// AppendFingerprint's.
func (f *FailurePattern) AppendFingerprintSorted(b []byte, procs []Proc) []byte {
	w := (f.N + 63) >> 6
	var tmp [binary.MaxVarintLen64]byte
	if w == 1 && len(procs) <= 8 {
		// Single-word pattern: the unobservable bits — self-delivery and
		// receivers dead at receipt time, the latter exactly the crashers
		// with round ≤ this crash's round — strip with one mask instead
		// of a per-bit liveness test.
		var rounds [8]int
		for k, p := range procs {
			rounds[k] = f.Crashes[p].Round
		}
		nMask := ^uint64(0) >> uint(64-f.N)
		for _, p := range procs {
			c := f.Crashes[p]
			b = append(b, tmp[:binary.PutUvarint(tmp[:], uint64(p))]...)
			b = append(b, tmp[:binary.PutUvarint(tmp[:], uint64(c.Round))]...)
			var word uint64
			if dw := c.Delivered.Words(); len(dw) > 0 {
				word = dw[0]
			}
			dead := uint64(1) << uint(p)
			for k, q := range procs {
				if rounds[k] <= c.Round {
					dead |= 1 << uint(q)
				}
			}
			binary.LittleEndian.PutUint64(tmp[:8], word&nMask&^dead)
			b = append(b, tmp[:8]...)
		}
		return b
	}
	for _, p := range procs {
		c := f.Crashes[p]
		b = append(b, tmp[:binary.PutUvarint(tmp[:], uint64(p))]...)
		b = append(b, tmp[:binary.PutUvarint(tmp[:], uint64(c.Round))]...)
		for wi := 0; wi < w; wi++ {
			var word uint64
			dw := c.Delivered.Words()
			if wi < len(dw) {
				word = dw[wi]
			}
			// Strip the unobservable bits word by word: self-delivery and
			// receivers dead at receipt time.
			var keep uint64
			for word != 0 {
				bit := word & (-word)
				q := wi*64 + bits.TrailingZeros64(word)
				word &^= bit
				if q != p && q < f.N && f.Active(q, c.Round) {
					keep |= bit
				}
			}
			binary.LittleEndian.PutUint64(tmp[:8], keep)
			b = append(b, tmp[:8]...)
		}
	}
	return b
}

// Fingerprint returns the pattern's canonical binary key as a string —
// AppendFingerprint materialized for map use.
func (f *FailurePattern) Fingerprint() string {
	return string(f.AppendFingerprint(make([]byte, 0, 64)))
}

// Fingerprint returns a canonical identity key for the adversary:
// structurally equal adversaries — equal inputs and observably equal
// failure patterns, however they were built — share a fingerprint.
// Caches keyed by adversary should use it instead of pointer identity.
//
// The key is a compact binary encoding (varints plus raw delivery-mask
// words), not a rendered string: it is hashed by the map that holds it
// and compared byte-wise, never parsed or displayed. The failure-pattern
// suffix is FailurePattern.AppendFingerprint, so unobservable deliveries
// are stripped during encoding without materializing the canonical
// pattern.
func (a *Adversary) Fingerprint() string {
	f := a.Pattern
	w := (f.N + 63) >> 6
	b := make([]byte, 0, 2*binary.MaxVarintLen64*(len(a.Inputs)+1)+len(f.Crashes)*(2*binary.MaxVarintLen64+8*w))
	var tmp [binary.MaxVarintLen64]byte
	b = append(b, tmp[:binary.PutUvarint(tmp[:], uint64(len(a.Inputs)))]...)
	for _, v := range a.Inputs {
		b = append(b, tmp[:binary.PutVarint(tmp[:], int64(v))]...)
	}
	return string(f.AppendFingerprint(b))
}
