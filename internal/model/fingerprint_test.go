package model

import (
	"math/rand"
	"testing"

	"setconsensus/internal/bitset"
)

// TestPatternFingerprintCanonicalEquivalence pins the property the
// binary-keyed enumeration rests on: a raw pattern and its Canonical()
// form fingerprint identically, and observably different patterns do
// not. The randomized sweep compares fingerprint equality against
// canonical-string equality — the dedup scheme it replaced — over many
// pattern pairs.
func TestPatternFingerprintCanonicalEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	randomPat := func() *FailurePattern {
		n := 3 + rng.Intn(3)
		pat := NewFailurePattern(n)
		for _, p := range rng.Perm(n)[:rng.Intn(3)] {
			del := bitset.New(n)
			for q := 0; q < n; q++ {
				if rng.Intn(2) == 0 {
					del.Add(q)
				}
			}
			pat.Crashes[p] = Crash{Round: 1 + rng.Intn(3), Delivered: del}
		}
		return pat
	}
	for trial := 0; trial < 500; trial++ {
		a, b := randomPat(), randomPat()
		if got, want := a.Fingerprint() == b.Fingerprint(), a.Canonical().String() == b.Canonical().String(); got != want {
			t.Fatalf("fingerprint equality %v but canonical-string equality %v for\n%s\n%s", got, want, a, b)
		}
		if a.Fingerprint() != a.Canonical().Fingerprint() {
			t.Fatalf("pattern and its canonical form fingerprint differently: %s", a)
		}
	}
}

// TestAppendFingerprintReusesBuffer asserts the append form builds into
// the provided buffer without allocating when capacity suffices.
func TestAppendFingerprintReusesBuffer(t *testing.T) {
	pat := NewFailurePattern(4)
	pat.Crashes[1] = Crash{Round: 2, Delivered: bitset.New(4).Add(0).Add(2)}
	buf := make([]byte, 0, 128)
	avg := testing.AllocsPerRun(50, func() {
		buf = pat.AppendFingerprint(buf[:0])
	})
	if avg != 0 {
		t.Fatalf("AppendFingerprint allocated %.1f objects per call with a warm buffer", avg)
	}
}
