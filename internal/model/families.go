package model

import (
	"fmt"
	"math/rand"
)

// This file holds the named adversary families used throughout the
// experiments. Each corresponds to a figure or proof construction of the
// paper; the comments state which.

// FamilyInfo is the registration metadata of one named adversary family:
// the canonical workload name and a one-line summary. The root package's
// workload registry builds its built-in entries from Families, so the
// model package stays the single source of truth for what exists.
type FamilyInfo struct {
	Name    string
	Summary string
}

// Families lists the named adversary families of this package in
// presentation order.
func Families() []FamilyInfo {
	return []FamilyInfo{
		{"hiddenpath", "Fig. 1 hidden path — a chain of crashes hides the lone low value"},
		{"hiddenchains", "Fig. 2 / Lemma 2 hidden chains — hidden capacity c at time m"},
		{"collapse", "Fig. 4 separation family — u-Pmin decides at 2, baselines need ⌊t/k⌋+1"},
		{"silentrounds", "worst-case family — k silent crashes per round, bounds tight"},
		{"random", "seeded random adversaries — uniform inputs, crashes, deliveries"},
	}
}

// HiddenPath builds the Fig. 1 adversary for (1-set) consensus: a chain of
// processes crashing one per round, each passing the lone initial value 0
// to its successor only, so that the observer (process 0) has a hidden path
// up to time `depth` and never learns ∃0 while the chain survives.
//
// Layout over n ≥ depth+2 processes: process 1+ℓ is the chain process for
// layer ℓ (ℓ = 0..depth−1); it crashes in round ℓ+1 delivering only to
// process 2+ℓ. Process 1 holds value 0; everyone else holds value 1.
func HiddenPath(n, depth int) (*Adversary, error) {
	if depth < 1 {
		return nil, fmt.Errorf("model: HiddenPath needs depth ≥ 1, got %d", depth)
	}
	if n < depth+2 {
		return nil, fmt.Errorf("model: HiddenPath needs n ≥ depth+2 = %d, got %d", depth+2, n)
	}
	b := NewBuilder(n, 1).Input(1, 0)
	for l := 0; l < depth; l++ {
		b.CrashSendingTo(1+l, l+1, 2+l)
	}
	return b.Build()
}

// HiddenChains builds the Fig. 2 / Lemma 2 adversary: c disjoint hidden
// chains of depth m. Chain b consists of witnesses w(b,0), …, w(b,m); for
// ℓ < m the witness w(b,ℓ) crashes in round ℓ+1 delivering only to
// w(b,ℓ+1), so ⟨w(b,ℓ), ℓ⟩ is hidden from every process outside the chain,
// and the observer (process 0) has hidden capacity ≥ c at time m. Chain b's
// head starts with chainValues[b]; everyone else starts with defaultValue.
//
// Witness numbering: w(b,ℓ) = 1 + b*(m+1) + ℓ over n processes,
// n ≥ 1 + c*(m+1).
func HiddenChains(n, c, m int, chainValues []Value, defaultValue Value) (*Adversary, error) {
	if c < 1 || m < 1 {
		return nil, fmt.Errorf("model: HiddenChains needs c ≥ 1, m ≥ 1 (got c=%d m=%d)", c, m)
	}
	if len(chainValues) != c {
		return nil, fmt.Errorf("model: HiddenChains needs %d chain values, got %d", c, len(chainValues))
	}
	if n < 1+c*(m+1) {
		return nil, fmt.Errorf("model: HiddenChains needs n ≥ %d, got %d", 1+c*(m+1), n)
	}
	b := NewBuilder(n, defaultValue)
	for chain := 0; chain < c; chain++ {
		head := ChainWitness(chain, 0, m)
		b.Input(head, chainValues[chain])
		for l := 0; l < m; l++ {
			b.CrashSendingTo(ChainWitness(chain, l, m), l+1, ChainWitness(chain, l+1, m))
		}
	}
	return b.Build()
}

// ChainWitness returns the process index of witness w(b,ℓ) in the
// HiddenChains layout with depth m.
func ChainWitness(b, l, m int) Proc { return 1 + b*(m+1) + l }

// CollapseParams configures the Fig. 4 separation family; see Collapse.
type CollapseParams struct {
	K            int  // coordination degree k ≥ 1
	R            int  // crash rounds; t = K*(R+1), R ≥ 2
	ExtraCorrect int  // number of never-crashing processes, ≥ 2
	LowVariant   bool // chain heads carry low values 0..K−1 instead of K
}

// Collapse builds the headline Fig. 4-style family: an adversary on which
// every correct process discovers ≥ k new failures in every round
// 1..⌊t/k⌋ (so every literature protocol that waits while "at least k new
// failures per round" remains undecided until ⌊t/k⌋+1), yet the hidden
// capacity of every correct process collapses to 0 at time 2, letting
// u-Pmin[k] decide at time 2 (time 3 in the low variant) and Optmin[k] at
// time 2.
//
// Construction (t = k(R+1), n = t + ExtraCorrect):
//   - round 1: k "chain heads" c_b crash, each delivering only to its
//     relay d_b — every correct process misses them (k failures seen at
//     time 1), and their initial states stay hidden for one round;
//   - round 2: the k relays d_b crash after a complete send — their crash
//     is invisible until time 3, but their round-2 broadcast reveals every
//     ⟨c_b, 0⟩, emptying hidden layer 0 — and k auxiliary processes e_b
//     crash silently, keeping the time-2 new-failure count at k;
//   - rounds 3..R: k silent crashes per round keep the per-round failure
//     count at k (time 3 sees 2k: the d's silence plus the round-3 batch).
//
// All inputs are K except, in the low variant, head c_b holds value b.
func Collapse(p CollapseParams) (*Adversary, error) {
	if p.K < 1 {
		return nil, fmt.Errorf("model: Collapse needs K ≥ 1, got %d", p.K)
	}
	if p.R < 2 {
		return nil, fmt.Errorf("model: Collapse needs R ≥ 2, got %d", p.R)
	}
	if p.ExtraCorrect < 2 {
		return nil, fmt.Errorf("model: Collapse needs ExtraCorrect ≥ 2, got %d", p.ExtraCorrect)
	}
	k := p.K
	t := k * (p.R + 1)
	n := t + p.ExtraCorrect
	b := NewBuilder(n, k)
	base := p.ExtraCorrect // crashers start after the correct block
	heads := base
	relays := base + k
	silent2 := base + 2*k
	for i := 0; i < k; i++ {
		if p.LowVariant {
			b.Input(heads+i, i)
		}
		b.CrashSendingTo(heads+i, 1, relays+i)
		b.CrashSendingToAll(relays+i, 2)
		b.CrashSilent(silent2+i, 2)
	}
	next := base + 3*k
	for round := 3; round <= p.R; round++ {
		for i := 0; i < k; i++ {
			b.CrashSilent(next, round)
			next++
		}
	}
	return b.Build()
}

// CollapseT returns the crash bound t for the family (all of which crash).
func CollapseT(p CollapseParams) int { return p.K * (p.R + 1) }

// SilentRounds builds the worst-case family: k silent crashes in every
// round 1..R, all inputs = k. Here hidden layer ℓ keeps exactly k hidden
// nodes forever (the round-(ℓ+1) crashers), so hidden capacity stays
// exactly k until the crashes stop, and both Optmin[k] and u-Pmin[k]
// decide only at time R+1 = ⌊f/k⌋+1 — the Prop. 1 / Thm. 3 bounds are
// tight on this family. Tightness needs extraCorrect ≥ k+1: at time R the
// current layer must still hold ≥ k hidden nodes, and it holds exactly
// extraCorrect−1 of them.
func SilentRounds(k, rounds, extraCorrect int) (*Adversary, error) {
	if k < 1 || rounds < 1 {
		return nil, fmt.Errorf("model: SilentRounds needs k ≥ 1, rounds ≥ 1 (got k=%d rounds=%d)", k, rounds)
	}
	if extraCorrect < k+1 {
		return nil, fmt.Errorf("model: SilentRounds needs extraCorrect ≥ k+1 = %d, got %d", k+1, extraCorrect)
	}
	n := k*rounds + extraCorrect
	b := NewBuilder(n, k)
	next := extraCorrect
	for r := 1; r <= rounds; r++ {
		for i := 0; i < k; i++ {
			b.CrashSilent(next, r)
			next++
		}
	}
	return b.Build()
}

// RandomParams bounds the Random adversary sampler.
type RandomParams struct {
	N        int // processes
	T        int // max crashes
	MaxValue int // values drawn from {0..MaxValue}
	MaxRound int // crash rounds drawn from {1..MaxRound}
}

// Random samples an adversary: a uniformly random number of crashes in
// [0, T], each with a uniform crash round and an independently random
// delivery subset, over uniform inputs. Deterministic given rng's seed.
func Random(rng *rand.Rand, p RandomParams) *Adversary {
	b := NewBuilder(p.N, 0)
	for i := 0; i < p.N; i++ {
		b.Input(i, rng.Intn(p.MaxValue+1))
	}
	crashes := 0
	if p.T > 0 {
		crashes = rng.Intn(p.T + 1)
	}
	perm := rng.Perm(p.N)
	for c := 0; c < crashes; c++ {
		victim := perm[c]
		round := 1 + rng.Intn(p.MaxRound)
		var recv []Proc
		for q := 0; q < p.N; q++ {
			if q != victim && rng.Intn(2) == 0 {
				recv = append(recv, q)
			}
		}
		b.CrashSendingTo(victim, round, recv...)
	}
	return b.MustBuild()
}
