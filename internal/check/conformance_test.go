package check_test

// Exhaustive conformance: every protocol in the repository solves its task
// on EVERY canonical adversary of small spaces, and meets its decision-time
// bound. This is the computational content of Proposition 1, Theorem 3,
// and the correctness half of the baseline substitutions (DESIGN.md §5).

import (
	"testing"

	"setconsensus/internal/baseline"
	"setconsensus/internal/check"
	"setconsensus/internal/core"
	"setconsensus/internal/enum"
	"setconsensus/internal/knowledge"
	"setconsensus/internal/model"
	"setconsensus/internal/sim"
)

type protoCase struct {
	proto sim.Protocol
	task  check.Task
	bound func(f int) int
}

func conformanceCases(p core.Params) []protoCase {
	nonuniform := check.Task{K: p.K}
	uniform := check.Task{K: p.K, Uniform: true}
	worst := p.T/p.K + 1
	uniBound := func(f int) int { return min(worst, f/p.K+2) }
	cases := []protoCase{
		{core.MustOptmin(p), nonuniform, func(f int) int { return f/p.K + 1 }},
		{core.MustUPmin(p), uniform, uniBound},
	}
	for _, b := range baseline.All(p) {
		task := nonuniform
		if b.Kind().Uniform() {
			task = uniform
		}
		cases = append(cases, protoCase{b, task, func(int) int { return worst }})
	}
	return cases
}

func runConformance(t *testing.T, space enum.Space, p core.Params) {
	t.Helper()
	cases := conformanceCases(p)
	horizon := p.T/p.K + 1
	total := 0
	err := space.ForEach(func(adv *model.Adversary) bool {
		total++
		g := knowledge.New(adv, horizon)
		for _, c := range cases {
			res := sim.RunWithGraph(c.proto, g)
			if err := check.VerifyRun(res, c.task); err != nil {
				t.Fatalf("conformance: %v", err)
			}
			if err := check.VerifyDecisionBound(res, c.bound); err != nil {
				t.Fatalf("bound: %v", err)
			}
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("verified %d protocols on %d adversaries (n=%d t=%d k=%d)",
		len(cases), total, p.N, p.T, p.K)
}

func TestConformanceExhaustiveN3K1(t *testing.T) {
	// Binary consensus, n=3, up to 2 crashes in rounds 1..3.
	space := enum.Space{N: 3, T: 2, MaxRound: 3, Values: []int{0, 1}}
	runConformance(t, space, core.Params{N: 3, T: 2, K: 1})
}

func TestConformanceExhaustiveN4K2(t *testing.T) {
	// 2-set consensus, n=4, up to 2 crashes, values {0,1,2}.
	space := enum.Space{N: 4, T: 2, MaxRound: 2, Values: []int{0, 1, 2}}
	runConformance(t, space, core.Params{N: 4, T: 2, K: 2})
}

func TestConformanceExhaustiveN4K1Deep(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive deep space skipped in -short")
	}
	// Consensus with up to 3 crashes over 3 rounds: the deep space where
	// hidden paths of length 3 exist.
	space := enum.Space{N: 4, T: 3, MaxRound: 3, Values: []int{0, 1}}
	runConformance(t, space, core.Params{N: 4, T: 3, K: 1})
}

func TestConformanceExhaustiveN5K2(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive n=5 space skipped in -short")
	}
	// 2-set consensus with 5 processes, 2 crashes (enough for one full
	// hidden "layer" of two chains).
	space := enum.Space{N: 5, T: 2, MaxRound: 2, Values: []int{0, 1, 2}}
	runConformance(t, space, core.Params{N: 5, T: 2, K: 2})
}
