package check

import (
	"strings"
	"testing"

	"setconsensus/internal/knowledge"
	"setconsensus/internal/model"
	"setconsensus/internal/sim"
)

func fixedDecider(name string, when int, value func(g *knowledge.Graph, i model.Proc, m int) model.Value) *sim.Func {
	return &sim.Func{
		ProtoName: name,
		Horizon:   when,
		Rule: func(g *knowledge.Graph, i model.Proc, m int) (model.Value, bool) {
			if m == when {
				return value(g, i, m), true
			}
			return 0, false
		},
	}
}

func floodMin(when int) *sim.Func {
	return fixedDecider("flood", when, func(g *knowledge.Graph, i model.Proc, m int) model.Value {
		return g.Min(i, m)
	})
}

func TestVerifyRunPasses(t *testing.T) {
	adv := model.NewBuilder(3, 1).Input(0, 0).MustBuild()
	res := sim.Run(floodMin(1), adv)
	if err := VerifyRun(res, Task{K: 1}); err != nil {
		t.Errorf("valid run rejected: %v", err)
	}
	if err := VerifyRun(res, Task{K: 1, Uniform: true}); err != nil {
		t.Errorf("valid uniform run rejected: %v", err)
	}
}

func TestVerifyRunDecisionViolation(t *testing.T) {
	adv := model.NewBuilder(3, 1).MustBuild()
	never := &sim.Func{ProtoName: "never", Horizon: 2,
		Rule: func(*knowledge.Graph, model.Proc, int) (model.Value, bool) { return 0, false }}
	err := VerifyRun(sim.Run(never, adv), Task{K: 1})
	if err == nil || !strings.Contains(err.Error(), "Decision") {
		t.Errorf("want Decision violation, got %v", err)
	}
}

func TestVerifyRunValidityViolation(t *testing.T) {
	adv := model.NewBuilder(3, 1).MustBuild()
	invent := fixedDecider("invent", 1, func(*knowledge.Graph, model.Proc, int) model.Value { return 7 })
	err := VerifyRun(sim.Run(invent, adv), Task{K: 1})
	if err == nil || !strings.Contains(err.Error(), "Validity") {
		t.Errorf("want Validity violation, got %v", err)
	}
}

func TestVerifyRunAgreementViolation(t *testing.T) {
	adv := model.NewBuilder(3, 1).Inputs(0, 1, 1).MustBuild()
	ownValue := fixedDecider("own", 1, func(g *knowledge.Graph, i model.Proc, m int) model.Value {
		return g.Adv.Inputs[i]
	})
	err := VerifyRun(sim.Run(ownValue, adv), Task{K: 1})
	if err == nil || !strings.Contains(err.Error(), "Agreement") {
		t.Errorf("want Agreement violation, got %v", err)
	}
	// k = 2 tolerates two values.
	if err := VerifyRun(sim.Run(ownValue, adv), Task{K: 2}); err != nil {
		t.Errorf("k=2 should accept two values: %v", err)
	}
}

func TestVerifyRunUniformCountsFaultyDeciders(t *testing.T) {
	// Faulty process 2 decides its own value 0 at time 1, then crashes in
	// round 2; the correct processes decide 1. Nonuniform passes (k=1),
	// uniform fails.
	adv := model.NewBuilder(3, 1).Input(2, 0).CrashSilent(2, 2).MustBuild()
	ownValue := fixedDecider("own", 1, func(g *knowledge.Graph, i model.Proc, m int) model.Value {
		if i == 2 {
			return 0
		}
		return 1
	})
	res := sim.Run(ownValue, adv)
	if err := VerifyRun(res, Task{K: 1}); err != nil {
		t.Errorf("nonuniform should ignore the faulty decision: %v", err)
	}
	if err := VerifyRun(res, Task{K: 1, Uniform: true}); err == nil {
		t.Error("uniform must count the faulty decision")
	}
}

func TestVerifyDecisionBound(t *testing.T) {
	adv := model.NewBuilder(3, 1).CrashSilent(2, 1).MustBuild()
	res := sim.Run(floodMin(2), adv)
	if err := VerifyDecisionBound(res, func(f int) int { return f + 2 }); err != nil {
		t.Errorf("bound f+2=3 should pass: %v", err)
	}
	if err := VerifyDecisionBound(res, func(f int) int { return f }); err == nil {
		t.Error("bound f=1 should fail for decisions at 2")
	}
}

func TestDominationVerdicts(t *testing.T) {
	adv := model.NewBuilder(3, 1).Input(0, 0).MustBuild()
	fast, slow := floodMin(1), floodMin(2)

	d := NewDomination("fast", "slow", false)
	d.Add(sim.Run(fast, adv), sim.Run(slow, adv))
	if !d.StrictlyDominates() {
		t.Errorf("fast must strictly dominate slow: %s", d.Summary())
	}

	rev := NewDomination("slow", "fast", false)
	rev.Add(sim.Run(slow, adv), sim.Run(fast, adv))
	if rev.Dominates() {
		t.Errorf("slow must not dominate fast: %s", rev.Summary())
	}
	if !strings.Contains(rev.Summary(), "does NOT dominate") {
		t.Errorf("summary = %q", rev.Summary())
	}

	same := NewDomination("fast", "fast", false)
	same.Add(sim.Run(fast, adv), sim.Run(fast, adv))
	if !same.Dominates() || same.StrictlyDominates() {
		t.Errorf("self-comparison must dominate non-strictly: %s", same.Summary())
	}
}

func TestDominationAbsentDecisionCounts(t *testing.T) {
	// Q decides where P never does: P cannot dominate.
	adv := model.NewBuilder(2, 0).MustBuild()
	never := &sim.Func{ProtoName: "never", Horizon: 2,
		Rule: func(*knowledge.Graph, model.Proc, int) (model.Value, bool) { return 0, false }}
	d := NewDomination("never", "flood", false)
	d.Add(sim.Run(never, adv), sim.Run(floodMin(1), adv))
	if d.Dominates() {
		t.Error("a protocol that never decides cannot dominate one that does")
	}
}

func TestLastDecider(t *testing.T) {
	// fast: everyone at 1. staggered: process 0 at 0, rest at 2 — its
	// FIRST decision is earlier but its LAST is later, so fast strictly
	// last-decider dominates while staggered does not dominate fast.
	adv := model.NewBuilder(3, 1).MustBuild()
	staggered := &sim.Func{ProtoName: "staggered", Horizon: 2,
		Rule: func(g *knowledge.Graph, i model.Proc, m int) (model.Value, bool) {
			if i == 0 {
				return g.Min(i, m), m == 0
			}
			return g.Min(i, m), m == 2
		}}
	fast := floodMin(1)

	ld := NewLastDecider("fast", "staggered")
	ld.Add(sim.Run(fast, adv), sim.Run(staggered, adv))
	if !ld.StrictlyDominates() {
		t.Error("fast must strictly last-decider dominate staggered")
	}

	rev := NewLastDecider("staggered", "fast")
	rev.Add(sim.Run(staggered, adv), sim.Run(fast, adv))
	if rev.Dominates() {
		t.Error("staggered must not last-decider dominate fast")
	}
}

func TestTaskString(t *testing.T) {
	if got := (Task{K: 2}).String(); got != "nonuniform 2-set consensus" {
		t.Errorf("String = %q", got)
	}
	if got := (Task{K: 1, Uniform: true}).String(); got != "uniform 1-set consensus" {
		t.Errorf("String = %q", got)
	}
}
