// Package check verifies runs against the k-set consensus task
// specifications of §2.3 and compares protocols under the domination
// preorder of §2.2.
package check

import (
	"fmt"

	"setconsensus/internal/bitset"
	"setconsensus/internal/model"
	"setconsensus/internal/sim"
)

// Task specifies a decision task instance.
type Task struct {
	K       int  // agreement degree
	Uniform bool // count faulty processes' decisions too
}

// String names the task.
func (t Task) String() string {
	if t.Uniform {
		return fmt.Sprintf("uniform %d-set consensus", t.K)
	}
	return fmt.Sprintf("nonuniform %d-set consensus", t.K)
}

// VerifyRun checks the three properties of §2.3 on one finished run:
//
//	Decision:     every correct process decides;
//	Validity:     only values some process started with are decided;
//	k-Agreement:  the correct (or, for uniform, all) decided values
//	              number at most K.
//
// It returns nil when the run satisfies the task, and a descriptive error
// naming the first violated property otherwise.
func VerifyRun(res *sim.Result, task Task) error {
	var sc Scratch
	return sc.VerifyRun(res, task)
}

// Scratch holds the working sets one VerifyRun call needs. Sweep paths
// that verify every run keep one Scratch per worker and call its
// VerifyRun method: after the first run nothing allocates on the
// satisfied path (errors still render their diagnostics). A Scratch
// serves one goroutine at a time.
type Scratch struct {
	present, deciders, decided bitset.Set
}

// Bytes reports the capacity the scratch's three sets pin, for the
// engine's memory governor.
func (sc *Scratch) Bytes() int64 {
	return 8 * int64(cap(sc.present.Words())+cap(sc.deciders.Words())+cap(sc.decided.Words()))
}

// VerifyRun is the allocation-free form of the package-level VerifyRun:
// identical verdicts and messages, with every intermediate set drawn
// from the scratch.
func (sc *Scratch) VerifyRun(res *sim.Result, task Task) error {
	adv := res.Adv
	// Decision.
	for i := 0; i < adv.N(); i++ {
		if adv.Pattern.Correct(i) && res.Decisions[i] == nil {
			return fmt.Errorf("%s: Decision violated: correct process %d never decides (%s)",
				res.ProtocolName, i, adv)
		}
	}
	// Validity.
	present := sc.present.Clear()
	for _, v := range adv.Inputs {
		present.Add(v)
	}
	for i, d := range res.Decisions {
		if d != nil && !present.Contains(d.Value) {
			return fmt.Errorf("%s: Validity violated: process %d decided %d ∉ inputs (%s)",
				res.ProtocolName, i, d.Value, adv)
		}
	}
	// Agreement.
	deciders := sc.deciders.Clear()
	for i := 0; i < adv.N(); i++ {
		if task.Uniform || adv.Pattern.Correct(i) {
			deciders.Add(i)
		}
	}
	decided := res.AppendDecidedValues(sc.decided.Clear(), deciders)
	if decided.Count() > task.K {
		return fmt.Errorf("%s: %s Agreement violated: values %s decided (%s)",
			res.ProtocolName, task, decided, adv)
	}
	return nil
}

// VerifyDecisionBound checks that every correct process decides no later
// than bound(f), where f is the actual number of crashes in the run.
func VerifyDecisionBound(res *sim.Result, bound func(f int) int) error {
	f := res.Adv.Pattern.NumFailures()
	limit := bound(f)
	for i := 0; i < res.Adv.N(); i++ {
		if !res.Adv.Pattern.Correct(i) {
			continue
		}
		d := res.Decisions[i]
		if d == nil {
			return fmt.Errorf("%s: correct process %d undecided (bound %d, %s)",
				res.ProtocolName, i, limit, res.Adv)
		}
		if d.Time > limit {
			return fmt.Errorf("%s: process %d decided at %d > bound %d (f=%d, %s)",
				res.ProtocolName, i, d.Time, limit, f, res.Adv)
		}
	}
	return nil
}

// Strict records one point where protocol P decided strictly earlier than
// protocol Q.
type Strict struct {
	Adv     *model.Adversary
	Proc    model.Proc
	PTime   int
	QTime   int // −1 when Q never decided for this process
	PName   string
	QName   string
	Uniform bool
}

func (s Strict) String() string {
	return fmt.Sprintf("%s decides ⟨%d⟩ at %d vs %s at %d on %s",
		s.PName, s.Proc, s.PTime, s.QName, s.QTime, s.Adv)
}

// Domination accumulates a pointwise decision-time comparison of two
// protocols over a set of adversaries, following Definition (§2.2):
// P dominates Q iff whenever a process decides in Q[α] at time m, it
// decides in P[α] at some time ≤ m.
type Domination struct {
	PName, QName string
	// Violations: points where Q decided but P was later (or absent).
	Violations []Strict
	// StrictWins: points where P decided strictly earlier than Q (or Q
	// never decided while P did).
	StrictWins []Strict
	Compared   int
	keepAll    bool
}

// NewDomination prepares a comparison of P against Q. If keepAll is false
// only the first few witnesses of each kind are retained (enough for
// reports and tests) to bound memory on exhaustive sweeps.
func NewDomination(pName, qName string, keepAll bool) *Domination {
	return &Domination{PName: pName, QName: qName, keepAll: keepAll}
}

const maxWitnesses = 16

// Add compares the two runs of one adversary. Both results must concern
// the same adversary.
func (d *Domination) Add(p, q *sim.Result) {
	d.Compared++
	for i := 0; i < p.Adv.N(); i++ {
		pt, qt := p.DecisionTime(i), q.DecisionTime(i)
		switch {
		case qt >= 0 && (pt < 0 || pt > qt):
			if d.keepAll || len(d.Violations) < maxWitnesses {
				d.Violations = append(d.Violations, Strict{
					Adv: p.Adv, Proc: i, PTime: pt, QTime: qt, PName: d.PName, QName: d.QName})
			}
		case pt >= 0 && (qt < 0 || pt < qt):
			if d.keepAll || len(d.StrictWins) < maxWitnesses {
				d.StrictWins = append(d.StrictWins, Strict{
					Adv: p.Adv, Proc: i, PTime: pt, QTime: qt, PName: d.PName, QName: d.QName})
			}
		}
	}
}

// Dominates reports whether P decided no later than Q at every compared
// point.
func (d *Domination) Dominates() bool { return len(d.Violations) == 0 }

// StrictlyDominates reports whether P dominates Q and beat it somewhere.
func (d *Domination) StrictlyDominates() bool {
	return d.Dominates() && len(d.StrictWins) > 0
}

// Summary renders a one-line verdict.
func (d *Domination) Summary() string {
	switch {
	case d.StrictlyDominates():
		return fmt.Sprintf("%s strictly dominates %s (%d adversaries, %d strict wins)",
			d.PName, d.QName, d.Compared, len(d.StrictWins))
	case d.Dominates():
		return fmt.Sprintf("%s dominates %s (%d adversaries, no strict win observed)",
			d.PName, d.QName, d.Compared)
	default:
		return fmt.Sprintf("%s does NOT dominate %s: e.g. %s",
			d.PName, d.QName, d.Violations[0])
	}
}

// LastDecider accumulates the last-decider comparison of Definition 6
// (Appendix D): P last-decider dominates Q iff in every run the last
// correct decision in P is no later than the last correct decision in Q.
type LastDecider struct {
	PName, QName string
	Violations   []Strict
	StrictWins   []Strict
	Compared     int
}

// NewLastDecider prepares a last-decider comparison of P against Q.
func NewLastDecider(pName, qName string) *LastDecider {
	return &LastDecider{PName: pName, QName: qName}
}

// Add compares the two runs of one adversary.
func (d *LastDecider) Add(p, q *sim.Result) {
	d.Compared++
	pt, qt := p.MaxCorrectDecisionTime(), q.MaxCorrectDecisionTime()
	switch {
	case qt >= 0 && (pt < 0 || pt > qt):
		if len(d.Violations) < maxWitnesses {
			d.Violations = append(d.Violations, Strict{Adv: p.Adv, PTime: pt, QTime: qt, PName: d.PName, QName: d.QName})
		}
	case pt >= 0 && (qt < 0 || pt < qt):
		if len(d.StrictWins) < maxWitnesses {
			d.StrictWins = append(d.StrictWins, Strict{Adv: p.Adv, PTime: pt, QTime: qt, PName: d.PName, QName: d.QName})
		}
	}
}

// Dominates reports whether P's last correct decision was never later.
func (d *LastDecider) Dominates() bool { return len(d.Violations) == 0 }

// StrictlyDominates reports domination with at least one strict win.
func (d *LastDecider) StrictlyDominates() bool {
	return d.Dominates() && len(d.StrictWins) > 0
}
