package check

import (
	"math/rand"
	"testing"

	"setconsensus/internal/bitset"
	"setconsensus/internal/knowledge"
	"setconsensus/internal/model"
	"setconsensus/internal/sim"
)

// TestScratchVerifyMatchesVerifyRun drives one reused Scratch and the
// allocating VerifyRun over randomized runs — including deliberately
// broken ones — and requires verdict-for-verdict agreement. A stale
// scratch set leaking state between runs diverges here.
func TestScratchVerifyMatchesVerifyRun(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var sc Scratch
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(3)
		inputs := make([]model.Value, n)
		for i := range inputs {
			inputs[i] = rng.Intn(3)
		}
		pat := model.NewFailurePattern(n)
		if rng.Intn(2) == 0 {
			pat.Crashes[rng.Intn(n)] = model.Crash{Round: 1 + rng.Intn(2), Delivered: bitset.New(n)}
		}
		adv := model.NewAdversary(inputs, pat)
		// A deliberately unreliable rule: sometimes undecided, sometimes
		// inventing values outside the inputs, sometimes spreading more
		// values than any k admits.
		mode := rng.Intn(3)
		p := &sim.Func{
			ProtoName: "chaotic",
			Horizon:   2,
			Rule: func(g *knowledge.Graph, i model.Proc, m int) (model.Value, bool) {
				switch mode {
				case 0:
					return g.Min(i, m), m == 1
				case 1:
					return 7, m == 1 // 7 ∉ inputs: validity violation
				default:
					return g.Adv.Inputs[i], m == 0 && i != 0 // process 0 never decides
				}
			},
		}
		res := sim.Run(p, adv)
		for _, task := range []Task{{K: 1}, {K: 2}, {K: 1, Uniform: true}, {K: 2, Uniform: true}} {
			got := sc.VerifyRun(res, task)
			want := VerifyRun(res, task)
			if (got == nil) != (want == nil) {
				t.Fatalf("trial %d task %s: scratch %v vs plain %v", trial, task, got, want)
			}
			if got != nil && got.Error() != want.Error() {
				t.Fatalf("trial %d task %s: messages diverge:\n%v\n%v", trial, task, got, want)
			}
		}
	}
}

// TestScratchVerifyAllocationFree pins the whole point of the scratch:
// verifying a satisfied run allocates nothing once the sets are warm.
func TestScratchVerifyAllocationFree(t *testing.T) {
	adv := model.NewBuilder(4, 1).Inputs(0, 1, 1, 0).MustBuild()
	p := &sim.Func{
		ProtoName: "min@1",
		Horizon:   1,
		Rule: func(g *knowledge.Graph, i model.Proc, m int) (model.Value, bool) {
			return g.Min(i, m), m == 1
		},
	}
	res := sim.Run(p, adv)
	var sc Scratch
	task := Task{K: 1}
	if err := sc.VerifyRun(res, task); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(50, func() {
		if err := sc.VerifyRun(res, task); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("scratch verify allocated %.1f objects per run, want 0", avg)
	}
}
