package chaos

import (
	"context"
	"testing"
	"time"
)

// TestSeededDeterminism: two injectors with the same config visited in
// the same order make identical decisions — the property the chaos soak
// test's "seeded fault schedule" rests on.
func TestSeededDeterminism(t *testing.T) {
	cfg := Config{
		Seed:     42,
		Prob:     map[Point]float64{PointWorkerCrash: 0.3, PointStraggler: 0.2},
		MaxDelay: 5 * time.Millisecond,
	}
	a, err := NewSeeded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSeeded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		p := PointWorkerCrash
		if i%3 == 0 {
			p = PointStraggler
		}
		af, ad := a.Fault(p)
		bf, bd := b.Fault(p)
		if af != bf || ad != bd {
			t.Fatalf("visit %d of %s diverged: (%v,%v) vs (%v,%v)", i, p, af, ad, bf, bd)
		}
	}
	if a.Total() == 0 {
		t.Fatal("schedule fired nothing in 500 visits at p=0.3")
	}
}

// TestBudgetBounds: a budget caps total fires; a budget with no
// probability means "the first N visits fire" — exactly-once faults.
func TestBudgetBounds(t *testing.T) {
	s, err := NewSeeded(Config{Seed: 1, Budget: map[Point]int{PointTornCheckpoint: 1}})
	if err != nil {
		t.Fatal(err)
	}
	var fires int
	for i := 0; i < 50; i++ {
		if f, _ := s.Fault(PointTornCheckpoint); f {
			if i != 0 {
				t.Errorf("budget-only point fired on visit %d, want first", i)
			}
			fires++
		}
	}
	if fires != 1 {
		t.Fatalf("torn fired %d times, budget 1", fires)
	}
	if got := s.Counts()[PointTornCheckpoint]; got != 1 {
		t.Errorf("Counts() = %d, want 1", got)
	}
}

// TestNilInjectorNeverFires pins the production default: nil costs a
// check and never fires.
func TestNilInjectorNeverFires(t *testing.T) {
	for _, p := range Points {
		if f, d := Fire(nil, p); f || d != 0 {
			t.Errorf("nil injector fired at %s", p)
		}
	}
}

// TestStragglerDelayBounded: fired straggler visits carry a delay in
// (0, MaxDelay]; other points never carry a delay.
func TestStragglerDelayBounded(t *testing.T) {
	max := 3 * time.Millisecond
	s, err := NewSeeded(Config{Seed: 9, Prob: map[Point]float64{PointStraggler: 1, PointWorkerCrash: 1}, MaxDelay: max})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		f, d := s.Fault(PointStraggler)
		if !f {
			t.Fatal("p=1 straggler did not fire")
		}
		if d <= 0 || d > max {
			t.Fatalf("straggler delay %v outside (0, %v]", d, max)
		}
	}
	if _, d := s.Fault(PointWorkerCrash); d != 0 {
		t.Errorf("crash point carried delay %v", d)
	}
}

func TestConfigValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"unknown point", Config{Prob: map[Point]float64{"nope": 0.5}}},
		{"probability above 1", Config{Prob: map[Point]float64{PointWorkerCrash: 1.5}}},
		{"negative probability", Config{Prob: map[Point]float64{PointWorkerCrash: -0.1}}},
		{"negative budget", Config{Budget: map[Point]int{PointWorkerCrash: -1}}},
		{"negative delay", Config{MaxDelay: -time.Second}},
	} {
		if _, err := NewSeeded(tc.cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestParseSpec covers the CLI surface: probabilities, budgets, both
// composed, seed and delay clauses, bare names, and rejections.
func TestParseSpec(t *testing.T) {
	s, err := ParseSpec("seed=7,crash=0.5,straggler=0.25,delay=20ms,torn#1,dup=0.5#3,sse")
	if err != nil {
		t.Fatal(err)
	}
	if s.cfg.Seed != 7 {
		t.Errorf("seed = %d, want 7", s.cfg.Seed)
	}
	if s.cfg.MaxDelay != 20*time.Millisecond {
		t.Errorf("delay = %v, want 20ms", s.cfg.MaxDelay)
	}
	if s.cfg.Prob[PointWorkerCrash] != 0.5 || s.cfg.Prob[PointStraggler] != 0.25 {
		t.Errorf("probs = %v", s.cfg.Prob)
	}
	if s.cfg.Budget[PointTornCheckpoint] != 1 || s.cfg.Budget[PointDupCompletion] != 3 {
		t.Errorf("budgets = %v", s.cfg.Budget)
	}
	if s.cfg.Prob[PointDupCompletion] != 0.5 {
		t.Errorf("dup prob = %v, want 0.5", s.cfg.Prob[PointDupCompletion])
	}
	if s.cfg.Prob[PointSSEDisconnect] != 1 {
		t.Errorf("bare sse prob = %v, want 1", s.cfg.Prob[PointSSEDisconnect])
	}

	for _, bad := range []string{
		"bogus=0.5", "crash=2.0", "seed=x", "delay=fast", "torn#x", "crash=0.5#?",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

// TestSeededString renders fired counts in stable order.
func TestSeededString(t *testing.T) {
	s, err := NewSeeded(Config{Prob: map[Point]float64{PointWorkerCrash: 1, PointTornCheckpoint: 1}})
	if err != nil {
		t.Fatal(err)
	}
	s.Fault(PointTornCheckpoint)
	s.Fault(PointWorkerCrash)
	s.Fault(PointWorkerCrash)
	if got, want := s.String(), "crash=2 torn=1"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestSleepCancels: Sleep returns early with ctx's error.
func TestSleepCancels(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Sleep(ctx, time.Minute); err == nil {
		t.Fatal("Sleep outlived a cancelled ctx")
	}
	if err := Sleep(context.Background(), 0); err != nil {
		t.Fatalf("zero-delay Sleep: %v", err)
	}
}
