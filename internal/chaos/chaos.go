// Package chaos is a deterministic, seedable fault injector for the
// distributed-sweep stack. Production code asks the injector, at named
// injection points, whether a fault fires on this visit; the default
// nil injector never fires and costs one nil check, so the chaos
// surface is free in ordinary runs.
//
// The point of the package is reproducibility: a Seeded injector with
// the same Config makes the same decisions in the same visit order, so
// a chaos soak test is a fixed fault schedule, not a flake. Budgets
// bound how many times a point may fire ("exactly one torn checkpoint
// write"), probabilities shape the schedule, and per-point counters
// report what actually fired so tests can assert the schedule was
// exercised rather than silently skipped.
package chaos

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Point names one injection site. The sites are threaded through
// internal/coord (coordinator loop, both worker transports, checkpoint
// save) and internal/service (client request and stream path).
type Point string

const (
	// PointWorkerCrash kills a worker mid-range: the sweep returns an
	// error as if the process died, exercising retry and the breaker.
	PointWorkerCrash Point = "crash"
	// PointStraggler stalls a worker before its range, exercising lease
	// expiry and re-issue.
	PointStraggler Point = "straggler"
	// PointDropCompletion loses a finished range's completion on the way
	// back to the coordinator, exercising lease-expiry re-issue of work
	// that actually succeeded.
	PointDropCompletion Point = "drop"
	// PointDupCompletion delivers a finished range's completion twice,
	// exercising idempotent merge.
	PointDupCompletion Point = "dup"
	// PointHTTPError fails one client HTTP request with a synthetic
	// transient error, exercising the client retry path.
	PointHTTPError Point = "http"
	// PointSSEDisconnect severs a client event stream mid-flight,
	// exercising SSE reconnect.
	PointSSEDisconnect Point = "sse"
	// PointPanic panics inside a running job's worker, exercising the
	// service's panic isolation: the job must fail typed (stack
	// retained) while the daemon keeps serving.
	PointPanic Point = "panic"
	// PointTornCheckpoint tears a checkpoint write: a truncated blob
	// reaches the target path instead of the atomic rename, exercising
	// checksum detection and .bak fallback on the next load.
	PointTornCheckpoint Point = "torn"
)

// Points lists every known injection point in stable order.
var Points = []Point{
	PointWorkerCrash, PointStraggler, PointDropCompletion, PointDupCompletion,
	PointHTTPError, PointSSEDisconnect, PointPanic, PointTornCheckpoint,
}

func knownPoint(p Point) bool {
	for _, q := range Points {
		if q == p {
			return true
		}
	}
	return false
}

// Injector decides, per visit of a named point, whether the fault
// fires and — for delay-flavored points — how long the injected stall
// lasts. Implementations must be safe for concurrent use. A nil
// Injector is the production default; call the package-level Fire so
// nil never fires.
type Injector interface {
	Fault(p Point) (fire bool, delay time.Duration)
}

// Fire consults inj at point p, treating a nil injector as "never".
func Fire(inj Injector, p Point) (bool, time.Duration) {
	if inj == nil {
		return false, 0
	}
	return inj.Fault(p)
}

// Sleep blocks for d or until ctx is cancelled — the ctx-aware stall
// used by straggler injection sites.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Config shapes a Seeded injector: one probability per point (0 = the
// point never fires), an optional per-point budget bounding total
// fires (0 = unbounded), and the delay range for stall points.
type Config struct {
	// Seed fixes the decision stream; two injectors with equal configs
	// make identical decisions in identical visit orders.
	Seed uint64
	// Prob maps a point to its per-visit fire probability in [0,1].
	Prob map[Point]float64
	// Budget bounds the total fires per point; 0 means unbounded. A
	// budget with no probability set implies probability 1 — "the next
	// N visits fire", the shape "exactly one torn write" wants.
	Budget map[Point]int
	// MaxDelay bounds the injected stall of PointStraggler (drawn
	// uniformly from (0, MaxDelay]); 0 disables the delay even when the
	// point fires.
	MaxDelay time.Duration
}

// Validate rejects malformed configurations.
func (c Config) Validate() error {
	for p, pr := range c.Prob {
		if !knownPoint(p) {
			return fmt.Errorf("chaos: unknown injection point %q", p)
		}
		if pr < 0 || pr > 1 {
			return fmt.Errorf("chaos: point %s probability %v outside [0,1]", p, pr)
		}
	}
	for p, b := range c.Budget {
		if !knownPoint(p) {
			return fmt.Errorf("chaos: unknown injection point %q", p)
		}
		if b < 0 {
			return fmt.Errorf("chaos: point %s budget %d, want ≥ 0", p, b)
		}
	}
	if c.MaxDelay < 0 {
		return fmt.Errorf("chaos: negative max delay %v", c.MaxDelay)
	}
	return nil
}

// Seeded is the deterministic Injector: a seeded PRNG drives per-point
// Bernoulli draws, budgets cap total fires, and counters record every
// decision. Safe for concurrent use; concurrency makes the interleaving
// of draws scheduling-dependent, but the schedule is still bounded by
// the budgets and reproducible for a fixed visit order.
type Seeded struct {
	cfg Config

	mu     sync.Mutex
	rng    *rand.Rand
	fired  map[Point]int64
	visits map[Point]int64
}

// NewSeeded builds a Seeded injector from cfg.
func NewSeeded(cfg Config) (*Seeded, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Seeded{
		cfg:    cfg,
		rng:    rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x9e3779b97f4a7c15)),
		fired:  make(map[Point]int64),
		visits: make(map[Point]int64),
	}, nil
}

// Fault implements Injector.
func (s *Seeded) Fault(p Point) (bool, time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.visits[p]++
	prob, probSet := s.cfg.Prob[p]
	budget, budgetSet := s.cfg.Budget[p]
	if !probSet && budgetSet {
		prob = 1 // budget-only points fire on their first visits
	}
	if prob <= 0 {
		return false, 0
	}
	if budgetSet && budget > 0 && s.fired[p] >= int64(budget) {
		return false, 0
	}
	if prob < 1 && s.rng.Float64() >= prob {
		return false, 0
	}
	s.fired[p]++
	var delay time.Duration
	if p == PointStraggler && s.cfg.MaxDelay > 0 {
		delay = time.Duration(s.rng.Int64N(int64(s.cfg.MaxDelay))) + 1
	}
	return true, delay
}

// Counts snapshots how many times each point fired.
func (s *Seeded) Counts() map[Point]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[Point]int64, len(s.fired))
	for p, n := range s.fired {
		out[p] = n
	}
	return out
}

// Total reports the total faults fired across all points.
func (s *Seeded) Total() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, c := range s.fired {
		n += c
	}
	return n
}

// String renders the fired counts in stable point order, e.g.
// "crash=3 straggler=1 torn=1"; empty when nothing fired.
func (s *Seeded) String() string {
	counts := s.Counts()
	parts := make([]string, 0, len(counts))
	for _, p := range Points {
		if n := counts[p]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", p, n))
		}
	}
	return strings.Join(parts, " ")
}

// ParseSpec builds a Seeded injector from a comma-separated spec, the
// CLI surface of the package:
//
//	seed=7,crash=0.1,straggler=0.05,delay=20ms,drop=0.02,dup=0.02,http=0.1,sse=0.1,torn#1
//
// Each point takes either a probability ("crash=0.1") or a budget
// ("torn#1" — fire on the first visit, at most once; "crash=0.5#3"
// composes both). "seed=N" fixes the PRNG, "delay=D" the straggler
// stall bound (Go duration syntax).
func ParseSpec(spec string) (*Seeded, error) {
	cfg := Config{
		Prob:     make(map[Point]float64),
		Budget:   make(map[Point]int),
		MaxDelay: 10 * time.Millisecond,
	}
	for _, f := range strings.Split(spec, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		key, val, hasVal := strings.Cut(f, "=")
		key = strings.TrimSpace(key)
		switch key {
		case "seed":
			if !hasVal {
				return nil, fmt.Errorf("chaos: seed needs a value in %q", f)
			}
			n, err := strconv.ParseUint(strings.TrimSpace(val), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("chaos: bad seed %q: %v", val, err)
			}
			cfg.Seed = n
			continue
		case "delay":
			if !hasVal {
				return nil, fmt.Errorf("chaos: delay needs a value in %q", f)
			}
			d, err := time.ParseDuration(strings.TrimSpace(val))
			if err != nil {
				return nil, fmt.Errorf("chaos: bad delay %q: %v", val, err)
			}
			cfg.MaxDelay = d
			continue
		}
		// Point clause: name[=prob][#budget], budget attached to either
		// the bare name or the probability.
		name, budget, hasBudget := strings.Cut(key, "#")
		probStr := ""
		if hasVal {
			probStr = val
			if !hasBudget {
				probStr, budget, hasBudget = cutBudget(val)
			}
		}
		p := Point(strings.TrimSpace(name))
		if !knownPoint(p) {
			return nil, fmt.Errorf("chaos: unknown injection point %q in %q (known: %v)", name, f, Points)
		}
		if probStr = strings.TrimSpace(probStr); probStr != "" {
			pr, err := strconv.ParseFloat(probStr, 64)
			if err != nil {
				return nil, fmt.Errorf("chaos: bad probability %q for %s: %v", probStr, p, err)
			}
			cfg.Prob[p] = pr
		}
		if hasBudget {
			b, err := strconv.Atoi(strings.TrimSpace(budget))
			if err != nil {
				return nil, fmt.Errorf("chaos: bad budget %q for %s: %v", budget, p, err)
			}
			cfg.Budget[p] = b
		}
		if !hasVal && !hasBudget {
			cfg.Prob[p] = 1 // bare point name: always fire
		}
	}
	return NewSeeded(cfg)
}

func cutBudget(s string) (prob, budget string, ok bool) {
	prob, budget, ok = strings.Cut(s, "#")
	return
}

// SortedPoints returns m's keys in stable order — a rendering helper
// for logs and stats lines.
func SortedPoints(m map[Point]int64) []Point {
	out := make([]Point, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
