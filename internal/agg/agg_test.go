package agg

import "testing"

func TestSummaryObserve(t *testing.T) {
	s := New("test", []string{"a", "b"})
	if err := s.Observe("a", Obs{Time: 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.Observe("a", Obs{Time: 2, Bits: 10, MaxPairBits: 4}); err != nil {
		t.Fatal(err)
	}
	if err := s.Observe("a", Obs{Time: -1, Violation: true}); err != nil {
		t.Fatal(err)
	}
	if err := s.Observe("b", Obs{Time: 3, Bits: 5, MaxPairBits: 9}); err != nil {
		t.Fatal(err)
	}
	if err := s.Observe("zzz", Obs{}); err == nil {
		t.Error("unknown ref must error")
	}

	a := s.Protocols[0]
	if a.Ref != "a" || a.Runs != 3 || a.Undecided != 1 || a.Violations != 1 || a.MaxTime != 2 {
		t.Errorf("row a: %+v", a)
	}
	if a.TimeHist[2] != 2 || a.TimeHist[-1] != 1 {
		t.Errorf("hist a: %v", a.TimeHist)
	}
	if got := a.MeanTime(); got != 2.0 {
		t.Errorf("mean a: %v", got)
	}
	if a.TotalBits != 10 || a.MaxPair != 4 {
		t.Errorf("bits a: %+v", a)
	}
	if got := a.HistString(); got != "⊥:1 2:2" {
		t.Errorf("HistString = %q", got)
	}
	if s.Runs() != 4 || s.Adversaries() != 3 || s.Violations() != 1 {
		t.Errorf("totals: runs=%d advs=%d viol=%d", s.Runs(), s.Adversaries(), s.Violations())
	}
}

func TestSummaryCloneIsDeep(t *testing.T) {
	s := New("w", []string{"a"})
	if err := s.Observe("a", Obs{Time: 1}); err != nil {
		t.Fatal(err)
	}
	c := s.Clone()
	if err := c.Observe("a", Obs{Time: 1}); err != nil {
		t.Fatal(err)
	}
	if s.Protocols[0].Runs != 1 || c.Protocols[0].Runs != 2 {
		t.Error("clone shares state with the original")
	}
	if s.Protocols[0].TimeHist[1] != 1 || c.Protocols[0].TimeHist[1] != 2 {
		t.Error("clone shares the histogram map")
	}
}

func TestMeanTimeNoDecisions(t *testing.T) {
	s := New("w", []string{"a"})
	if err := s.Observe("a", Obs{Time: -1}); err != nil {
		t.Fatal(err)
	}
	if got := s.Protocols[0].MeanTime(); got != 0 {
		t.Errorf("all-undecided mean = %v, want 0", got)
	}
	if (&Summary{}).Adversaries() != 0 {
		t.Error("empty summary Adversaries must be 0")
	}
}

func TestDuplicateRefsCollapse(t *testing.T) {
	s := New("w", []string{"a", "a"})
	if len(s.Protocols) != 1 {
		t.Fatalf("duplicate refs produced %d rows", len(s.Protocols))
	}
}
