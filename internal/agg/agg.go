// Package agg implements constant-memory online aggregation of sweep
// results. A streamed sweep over an unbounded adversary source cannot
// keep its results; instead each finished run folds into a Summary —
// per-protocol decision-time histograms, undecided and violation counts,
// and wire-bit totals — whose size is bounded by the number of protocols
// and the decision-time horizon, never by the number of adversaries.
//
// The package is deliberately free of engine types: a Summary consumes
// plain Obs records, so the root package's Aggregator adapts Results to
// it and internal/experiments renders tables from it without an import
// cycle.
package agg

import (
	"fmt"
	"sort"
)

// Obs is one run's contribution to a Summary.
type Obs struct {
	// Time is the latest decision time among correct processes, or −1 if
	// some correct process never decided.
	Time int
	// Violation records a failed task verification (validity or
	// k-agreement) — the count every unbeatability claim says stays zero.
	Violation bool
	// Bits and MaxPairBits carry the wire backend's accounting; zero on
	// other backends.
	Bits        int64
	MaxPairBits int
}

// ProtocolSummary aggregates every run of one protocol.
type ProtocolSummary struct {
	Ref        string      `json:"ref"`
	Runs       int         `json:"runs"`
	Undecided  int         `json:"undecided"`  // runs with Time < 0
	Violations int         `json:"violations"` // failed task verifications
	MaxTime    int         `json:"maxTime"`    // worst decision time over decided runs
	TimeHist   map[int]int `json:"timeHist"`   // decision time → runs (−1 = undecided)
	SumTime    int64       `json:"sumTime"`    // over decided runs, for MeanTime
	TotalBits  int64       `json:"totalBits,omitempty"`
	MaxPair    int         `json:"maxPairBits,omitempty"`
}

// Observe folds one run into the row.
func (p *ProtocolSummary) Observe(o Obs) {
	p.Runs++
	p.TimeHist[o.Time]++
	if o.Time < 0 {
		p.Undecided++
	} else {
		p.SumTime += int64(o.Time)
		if o.Time > p.MaxTime {
			p.MaxTime = o.Time
		}
	}
	if o.Violation {
		p.Violations++
	}
	p.TotalBits += o.Bits
	if o.MaxPairBits > p.MaxPair {
		p.MaxPair = o.MaxPairBits
	}
}

// MeanTime returns the mean decision time over decided runs (NaN-free:
// zero when nothing decided).
func (p *ProtocolSummary) MeanTime() float64 {
	decided := p.Runs - p.Undecided
	if decided == 0 {
		return 0
	}
	return float64(p.SumTime) / float64(decided)
}

// HistString renders the decision-time histogram compactly in time
// order, e.g. "2:14 3:6 ⊥:1".
func (p *ProtocolSummary) HistString() string {
	times := make([]int, 0, len(p.TimeHist))
	for t := range p.TimeHist {
		times = append(times, t)
	}
	sort.Ints(times)
	s := ""
	for i, t := range times {
		if i > 0 {
			s += " "
		}
		if t < 0 {
			s += fmt.Sprintf("⊥:%d", p.TimeHist[t])
		} else {
			s += fmt.Sprintf("%d:%d", t, p.TimeHist[t])
		}
	}
	return s
}

// Merge folds every run of other into p. Counts and sums add, maxima
// take the larger side, and histograms add bucket-wise; other is left
// untouched. Merging rows of different refs is the caller's bug and is
// rejected so a sharded sweep cannot silently cross-fold protocols.
func (p *ProtocolSummary) Merge(other *ProtocolSummary) error {
	if p.Ref != other.Ref {
		return fmt.Errorf("agg: merging row %q into row %q", other.Ref, p.Ref)
	}
	p.Runs += other.Runs
	p.Undecided += other.Undecided
	p.Violations += other.Violations
	p.SumTime += other.SumTime
	p.TotalBits += other.TotalBits
	if other.MaxTime > p.MaxTime {
		p.MaxTime = other.MaxTime
	}
	if other.MaxPair > p.MaxPair {
		p.MaxPair = other.MaxPair
	}
	if p.TimeHist == nil && len(other.TimeHist) > 0 {
		p.TimeHist = make(map[int]int, len(other.TimeHist))
	}
	for t, n := range other.TimeHist {
		p.TimeHist[t] += n
	}
	return nil
}

// Clone returns a deep copy.
func (p *ProtocolSummary) Clone() *ProtocolSummary {
	c := *p
	c.TimeHist = make(map[int]int, len(p.TimeHist))
	for t, n := range p.TimeHist {
		c.TimeHist[t] = n
	}
	return &c
}

// Summary is the aggregate of one sweep: one row per protocol, in sweep
// order, plus the workload label. It is not safe for concurrent use; the
// root package's Aggregator serializes access.
type Summary struct {
	Workload  string             `json:"workload"`
	Protocols []*ProtocolSummary `json:"protocols"`

	byRef map[string]*ProtocolSummary
}

// New builds an empty summary with one row per protocol ref.
func New(workload string, refs []string) *Summary {
	s := &Summary{Workload: workload, byRef: make(map[string]*ProtocolSummary, len(refs))}
	for _, ref := range refs {
		if _, dup := s.byRef[ref]; dup {
			continue
		}
		row := &ProtocolSummary{Ref: ref, TimeHist: make(map[int]int)}
		s.Protocols = append(s.Protocols, row)
		s.byRef[ref] = row
	}
	return s
}

// Observe folds one run of the named protocol into the summary.
func (s *Summary) Observe(ref string, o Obs) error {
	row, ok := s.byRef[ref]
	if !ok {
		return fmt.Errorf("agg: observation for unknown protocol %q", ref)
	}
	row.Observe(o)
	return nil
}

// Runs returns the total number of runs folded in.
func (s *Summary) Runs() int {
	total := 0
	for _, p := range s.Protocols {
		total += p.Runs
	}
	return total
}

// Adversaries returns the number of adversaries swept, assuming every
// protocol ran against every adversary (as Engine sweeps guarantee).
func (s *Summary) Adversaries() int {
	if len(s.Protocols) == 0 {
		return 0
	}
	return s.Protocols[0].Runs
}

// Violations returns the total verification failures across protocols.
func (s *Summary) Violations() int {
	total := 0
	for _, p := range s.Protocols {
		total += p.Violations
	}
	return total
}

// Undecided returns the total runs in which some correct process never
// decided — a Decision (liveness) failure, tracked apart from the
// validity/agreement Violations.
func (s *Summary) Undecided() int {
	total := 0
	for _, p := range s.Protocols {
		total += p.Undecided
	}
	return total
}

// Merge folds every row of other into s: the result is the summary a
// single aggregator would have produced had it observed both input
// streams. It is the combining step of sharded sweeps — each worker
// folds its shard into a private Summary and the engine merges them
// once at the end — and of any cross-process aggregation. Every ref of
// other must exist in s (rows never appear implicitly: a silent new row
// would hide a protocol mismatch between shards); other is not
// modified. Merge is not safe for concurrent use — callers serialize,
// as with Observe.
func (s *Summary) Merge(other *Summary) error {
	for _, row := range other.Protocols {
		dst, ok := s.byRef[row.Ref]
		if !ok {
			return fmt.Errorf("agg: merge of unknown protocol %q", row.Ref)
		}
		if err := dst.Merge(row); err != nil {
			return err
		}
	}
	return nil
}

// Acc is a flat, map-free accumulator for one protocol's shard of a
// sharded sweep. Workers on the aggregating hot path fold one Obs per
// run into an Acc — plain integer bumps plus a slice-backed histogram,
// no map writes and no locks — and flush the whole shard into the
// shared Summary once, when the shard is drained. The zero value is
// ready to use.
type Acc struct {
	Runs, Undecided, Violations, MaxTime int
	SumTime                              int64
	TotalBits                            int64
	MaxPair                              int
	hist                                 []int // hist[t+1] = runs deciding at time t; hist[0] = undecided
}

// Observe folds one run into the accumulator. It mirrors
// ProtocolSummary.Observe exactly; FlushTo is the bridge between the
// two representations.
func (a *Acc) Observe(o Obs) {
	a.Runs++
	idx := o.Time + 1
	if idx < 0 {
		idx = 0 // defensively bucket nonsense times with undecided
	}
	for len(a.hist) <= idx {
		a.hist = append(a.hist, 0)
	}
	a.hist[idx]++
	if o.Time < 0 {
		a.Undecided++
	} else {
		a.SumTime += int64(o.Time)
		if o.Time > a.MaxTime {
			a.MaxTime = o.Time
		}
	}
	if o.Violation {
		a.Violations++
	}
	a.TotalBits += o.Bits
	if o.MaxPairBits > a.MaxPair {
		a.MaxPair = o.MaxPairBits
	}
}

// FlushTo folds the accumulator into row and resets the accumulator for
// reuse. The histogram translates index-wise: hist[0] lands in the −1
// (undecided) bucket.
func (a *Acc) FlushTo(row *ProtocolSummary) {
	row.Runs += a.Runs
	row.Undecided += a.Undecided
	row.Violations += a.Violations
	row.SumTime += a.SumTime
	row.TotalBits += a.TotalBits
	if a.MaxTime > row.MaxTime {
		row.MaxTime = a.MaxTime
	}
	if a.MaxPair > row.MaxPair {
		row.MaxPair = a.MaxPair
	}
	for idx, n := range a.hist {
		if n > 0 {
			row.TimeHist[idx-1] += n
		}
	}
	hist := a.hist[:0]
	*a = Acc{hist: hist}
}

// Clone returns a deep copy — the snapshot Aggregator.Summary hands out.
func (s *Summary) Clone() *Summary {
	c := &Summary{Workload: s.Workload, byRef: make(map[string]*ProtocolSummary, len(s.Protocols))}
	for _, p := range s.Protocols {
		row := p.Clone()
		c.Protocols = append(c.Protocols, row)
		c.byRef[row.Ref] = row
	}
	return c
}
