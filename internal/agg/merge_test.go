package agg

import (
	"math/rand"
	"testing"
)

func randomObs(rng *rand.Rand) Obs {
	o := Obs{Time: rng.Intn(8) - 1}
	o.Violation = rng.Intn(10) == 0
	if rng.Intn(2) == 0 {
		o.Bits = int64(rng.Intn(500))
		o.MaxPairBits = rng.Intn(40)
	}
	return o
}

func requireRowsEqual(t *testing.T, got, want *ProtocolSummary) {
	t.Helper()
	if got.Ref != want.Ref || got.Runs != want.Runs || got.Undecided != want.Undecided ||
		got.Violations != want.Violations || got.MaxTime != want.MaxTime ||
		got.SumTime != want.SumTime || got.TotalBits != want.TotalBits || got.MaxPair != want.MaxPair {
		t.Fatalf("row %s: got %+v, want %+v", want.Ref, got, want)
	}
	if len(got.TimeHist) != len(want.TimeHist) {
		t.Fatalf("row %s: hist sizes %d vs %d", want.Ref, len(got.TimeHist), len(want.TimeHist))
	}
	for tm, n := range want.TimeHist {
		if got.TimeHist[tm] != n {
			t.Fatalf("row %s: hist[%d] = %d, want %d", want.Ref, tm, got.TimeHist[tm], n)
		}
	}
}

// TestSummaryMergeMatchesSequential feeds one randomized observation
// stream to a single summary, and the same stream split across shards
// that merge at the end: the results must be identical.
func TestSummaryMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	refs := []string{"a", "b"}
	sequential := New("w", refs)
	const shards = 4
	parts := make([]*Summary, shards)
	for i := range parts {
		parts[i] = New("w", refs)
	}
	for i := 0; i < 500; i++ {
		ref := refs[rng.Intn(len(refs))]
		o := randomObs(rng)
		if err := sequential.Observe(ref, o); err != nil {
			t.Fatal(err)
		}
		if err := parts[rng.Intn(shards)].Observe(ref, o); err != nil {
			t.Fatal(err)
		}
	}
	merged := New("w", refs)
	for _, part := range parts {
		if err := merged.Merge(part); err != nil {
			t.Fatal(err)
		}
	}
	for i := range refs {
		requireRowsEqual(t, merged.Protocols[i], sequential.Protocols[i])
	}
}

// TestSummaryMergeRejectsMismatch pins the guard rails: merging unknown
// refs or cross-ref rows is an error, not a silent new row.
func TestSummaryMergeRejectsMismatch(t *testing.T) {
	s := New("w", []string{"a"})
	if err := s.Merge(New("w", []string{"a", "b"})); err == nil {
		t.Error("merging a summary with an unknown ref must error")
	}
	ra := &ProtocolSummary{Ref: "a", TimeHist: map[int]int{}}
	rb := &ProtocolSummary{Ref: "b", TimeHist: map[int]int{}}
	if err := ra.Merge(rb); err == nil {
		t.Error("merging rows of different refs must error")
	}
}

// TestAccMatchesObserve drives the flat accumulator and the map-backed
// row with the same stream; FlushTo must land on the identical row, and
// must reset the accumulator for reuse.
func TestAccMatchesObserve(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var acc Acc
	direct := &ProtocolSummary{Ref: "x", TimeHist: map[int]int{}}
	flushed := &ProtocolSummary{Ref: "x", TimeHist: map[int]int{}}
	for round := 0; round < 3; round++ {
		for i := 0; i < 200; i++ {
			o := randomObs(rng)
			direct.Observe(o)
			acc.Observe(o)
		}
		acc.FlushTo(flushed) // interleaved flushes must accumulate, not overwrite
	}
	requireRowsEqual(t, flushed, direct)
	if acc.Runs != 0 || acc.SumTime != 0 {
		t.Fatalf("FlushTo did not reset the accumulator: %+v", acc)
	}
	// A reused accumulator must not resurrect stale histogram buckets.
	acc.Observe(Obs{Time: 2})
	acc.FlushTo(flushed)
	direct.Observe(Obs{Time: 2})
	requireRowsEqual(t, flushed, direct)
}
